package repro

// One benchmark per table and figure of the paper's evaluation. Each
// iteration runs the corresponding harness experiment on the simulator and
// reports the headline quantity through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every result series. The cmd/ binaries print the full tables
// at paper scale; the benchmarks use bounded parameter sets so the whole
// suite completes in minutes.

import (
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/verbs"
)

// BenchmarkFig02TrafficModel evaluates the analytic traffic model on the
// 1024-node radix-32 fat-tree and reports the ring/multicast savings.
func BenchmarkFig02TrafficModel(b *testing.B) {
	var savings float64
	for i := 0; i < b.N; i++ {
		g, err := model.Fig2Cluster()
		if err != nil {
			b.Fatal(err)
		}
		m, err := model.NewTrafficModel(g)
		if err != nil {
			b.Fatal(err)
		}
		savings = m.Savings(1 << 20)
	}
	b.ReportMetric(savings, "x-savings")
}

// BenchmarkFig05SingleCoreDatapath compares one CPU thread against one DPA
// core on the UD datapath at 1 MiB messages.
func BenchmarkFig05SingleCoreDatapath(b *testing.B) {
	var cpu, dpa float64
	for i := 0; i < b.N; i++ {
		pts := harness.Fig5SingleCore([]int{1 << 20})
		cpu, dpa = pts[0].CPUGbps, pts[0].DPAGbps
	}
	b.ReportMetric(cpu, "cpu-Gbps")
	b.ReportMetric(dpa, "dpa-Gbps")
}

// BenchmarkFig07BitmapModel evaluates the PSN-bits sizing model.
func BenchmarkFig07BitmapModel(b *testing.B) {
	var buf float64
	for i := 0; i < b.N; i++ {
		pts := model.BitmapModel(10, 30, 4096)
		buf = pts[len(pts)-1].MaxRecvBuffer
		_ = model.MaxBufferFittingLLC(4096)
	}
	b.ReportMetric(buf/(1<<30), "max-GiB")
}

// BenchmarkFig10Breakdown measures the critical-path phase split of the
// multicast Allgather at 64 testbed nodes, 256 KiB.
func BenchmarkFig10Breakdown(b *testing.B) {
	var mcastFrac float64
	for i := 0; i < b.N; i++ {
		pts, err := harness.Fig10Breakdown([]int{64}, []int{256 << 10})
		if err != nil {
			b.Fatal(err)
		}
		mcastFrac = pts[0].McastFrac
	}
	b.ReportMetric(mcastFrac*100, "%mcast-phase")
}

// BenchmarkFig11ThroughputAtScale measures per-rank receive throughput of
// every algorithm at 64 nodes, 256 KiB (use cmd/agbench -fig 11 for the
// full 188-node sweep).
func BenchmarkFig11ThroughputAtScale(b *testing.B) {
	byAlgo := map[string]float64{}
	for i := 0; i < b.N; i++ {
		pts, err := harness.Fig11Throughput(64, []int{256 << 10})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			byAlgo[p.Algo] = p.GiBps
		}
	}
	b.ReportMetric(byAlgo["mcast-broadcast"], "mcastBcast-GiB/s")
	b.ReportMetric(byAlgo["knomial-broadcast"], "knomial-GiB/s")
	b.ReportMetric(byAlgo["binary-broadcast"], "binary-GiB/s")
	b.ReportMetric(byAlgo["mcast-allgather"], "mcastAG-GiB/s")
	b.ReportMetric(byAlgo["ring-allgather"], "ringAG-GiB/s")
}

// BenchmarkFig12TrafficSavings reads simulated switch-port counters while
// running multicast and P2P collectives at 64 nodes.
func BenchmarkFig12TrafficSavings(b *testing.B) {
	var bcast, ag float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig12Traffic(64, 64<<10, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Algo == "mcast" {
				if r.Op == "broadcast" {
					bcast = r.Savings
				} else {
					ag = r.Savings
				}
			}
		}
	}
	b.ReportMetric(bcast, "bcast-savings-x")
	b.ReportMetric(ag, "allgather-savings-x")
}

// BenchmarkTable1SingleThread measures both single-thread DPA datapaths.
func BenchmarkTable1SingleThread(b *testing.B) {
	var uc, ud float64
	for i := 0; i < b.N; i++ {
		for _, r := range harness.Table1SingleThread() {
			if r.Datapath == "UC" {
				uc = r.ThroughputGiBps
			} else {
				ud = r.ThroughputGiBps
			}
		}
	}
	b.ReportMetric(uc, "UC-GiB/s")
	b.ReportMetric(ud, "UD-GiB/s")
}

// BenchmarkFig13ThreadScaling reports link saturation points of the DPA
// receive datapaths.
func BenchmarkFig13ThreadScaling(b *testing.B) {
	var ud8, uc4 float64
	for i := 0; i < b.N; i++ {
		pts, _ := harness.Fig13ThreadScaling([]int{4, 8})
		for _, p := range pts {
			if p.Transport == "UD" && p.Threads == 8 {
				ud8 = p.GiBps
			}
			if p.Transport == "UC" && p.Threads == 4 {
				uc4 = p.GiBps
			}
		}
	}
	b.ReportMetric(ud8, "UD@8thr-GiB/s")
	b.ReportMetric(uc4, "UC@4thr-GiB/s")
}

// BenchmarkFig14LinkUtilization reports the single-thread fraction of the
// 200 Gbit/s link for both datapaths (1/256 of DPA capacity).
func BenchmarkFig14LinkUtilization(b *testing.B) {
	var ud, uc float64
	for i := 0; i < b.N; i++ {
		ud = harness.RunRxBench(harness.RxBenchConfig{
			Transport: verbs.UD, Workers: 1, ChunkBytes: 4096, TotalBytes: 8 << 20,
		}).LinkShare
		uc = harness.RunRxBench(harness.RxBenchConfig{
			Transport: verbs.UC, Workers: 1, ChunkBytes: 4096, TotalBytes: 8 << 20,
		}).LinkShare
	}
	b.ReportMetric(ud*100, "UD-%peak")
	b.ReportMetric(uc*100, "UC-%peak")
}

// BenchmarkFig15ChunkSize reports UC throughput with 64 KiB multi-packet
// chunks on a single thread.
func BenchmarkFig15ChunkSize(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		pts := harness.Fig15ChunkSize([]int{64 << 10}, []int{1})
		share = pts[0].LinkShare
	}
	b.ReportMetric(share*100, "UC-64KiB-1thr-%peak")
}

// BenchmarkFig16TbitScaling reports the 64 B chunk processing rate at 128
// threads against the 1.6 Tbit/s requirement.
func BenchmarkFig16TbitScaling(b *testing.B) {
	var udRate, ucRate float64
	for i := 0; i < b.N; i++ {
		for _, p := range harness.Fig16TbitScaling([]int{128}) {
			if p.Transport == "UD" {
				udRate = p.ChunkRate
			} else {
				ucRate = p.ChunkRate
			}
		}
	}
	b.ReportMetric(udRate/1e6, "UD-Mchunks/s")
	b.ReportMetric(ucRate/1e6, "UC-Mchunks/s")
	b.ReportMetric(harness.Tbit16Target/1e6, "target-Mchunks/s")
}

// BenchmarkAllreduce16 runs the composed multicast Allreduce (ring
// Reduce-Scatter + multicast Allgather) at 16 ranks / 1 MiB on a warm
// communicator: the end-to-end event-engine workload the scheduler
// overhaul targets. Reported events/sec is simulated events per wall
// second across the whole stack (fabric, verbs, DPA, protocol); allocs/op
// is the per-operation garbage the pooled engine is gated on in CI.
func BenchmarkAllreduce16(b *testing.B) {
	sys, err := NewSystem(SystemConfig{Hosts: 16, HostsPerLeaf: 4, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	alg, err := NewAlgorithm(sys, "mcast-allreduce", AlgorithmOptions{})
	if err != nil {
		b.Fatal(err)
	}
	op := Op{Kind: Allreduce, Bytes: 1 << 20}
	if _, err := alg.Run(op); err != nil { // warm QPs, buffers, event pool
		b.Fatal(err)
	}
	start := sys.Engine.Executed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Run(op); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	executed := sys.Engine.Executed - start
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(executed)/float64(b.N), "events/op")
}

// BenchmarkChaosSweepWarm measures the warm-start speedup on an 8-point
// chaosbench grid (mcast-allgather under all eight scenarios at 16 nodes /
// 4 KiB): each iteration runs the sweep cold (a fresh model stack per
// point) and warm (one built stack per partition class, forked per
// scenario) and reports the wall-clock ratio. fork-speedup is a
// same-machine ratio — like the sharded-engine speedup metric — and is
// floor-gated in CI; sweep-wall-ms and snapshot-bytes are informational
// trajectory metrics.
func BenchmarkChaosSweepWarm(b *testing.B) {
	g := harness.ResilienceGrid([]string{"mcast-allgather"},
		[]string{"quiet", "flap-spine", "straggler-1pct", "tenant-50load",
			"tenant-20load", "degrade-leaf", "hotspot-drop", "incast-4to1"}, 16, 4096, 7)
	if _, err := harness.WarmResilienceRecords(g, 1); err != nil { // warm caches and the event pool allocator
		b.Fatal(err)
	}
	var cold, warm time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := harness.ResilienceRecords(g, 1); err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		if _, err := harness.WarmResilienceRecords(g, 1); err != nil {
			b.Fatal(err)
		}
		cold += t1.Sub(t0)
		warm += time.Since(t1)
	}
	b.StopTimer()
	b.ReportMetric(float64(cold)/float64(warm), "fork-speedup")
	b.ReportMetric(float64(warm)/float64(b.N)/1e6, "sweep-wall-ms")
	if inst, err := (harness.WarmResilience{}).Build(g.Expand()[0]); err == nil {
		if sz, ok := inst.(interface{ Bytes() int }); ok {
			b.ReportMetric(float64(sz.Bytes()), "snapshot-bytes")
		}
	}
}

// BenchmarkAppBSpeedup measures the concurrent {AG, RS} speedup at P=16
// against the closed-form 2 - 2/P.
func BenchmarkAppBSpeedup(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		pts, err := harness.AppBConcurrent([]int{16}, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		speedup = pts[0].Speedup
	}
	b.ReportMetric(speedup, "measured-x")
	b.ReportMetric(model.SpeedupINC(16), "model-x")
}

// BenchmarkWorkloadStep measures one full FSDP training step — the
// declarative workload DAG with prefetched multicast Allgathers, in-network
// Reduce-Scatters and per-layer compute at 16 ranks / 512 KiB shards —
// including system construction, as an application deploying the library
// would run it. events/op is the deterministic per-step event count the CI
// perf gate pins alongside allocs/op.
func BenchmarkWorkloadStep(b *testing.B) {
	var executed uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(SystemConfig{Hosts: 16, Topology: "star", Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		w, err := NewWorkload("fsdp-inc", WorkloadConfig{Nodes: 16})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.RunWorkload(w); err != nil {
			b.Fatal(err)
		}
		executed += sys.Engine.Executed
	}
	b.StopTimer()
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(executed)/float64(b.N), "events/op")
}
