package sweep

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/collective"
	"repro/internal/telemetry"
)

// Record is the structured result of one sweep point: the spec that
// produced it, the scalar metrics the driver reports (keyed by metric
// name), and — for collective runs — the full unified Result with its
// per-rank critical-path extension.
type Record struct {
	Spec Spec `json:"spec"`
	// Metrics holds the point's scalar results. encoding/json marshals
	// maps with sorted keys, so the serialized form is deterministic.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Result carries the unified collective outcome (with RankStats) when
	// the point ran a registry algorithm; nil for datapath microbenchmarks.
	Result *collective.Result `json:"result,omitempty"`
	// Workload and OverlapFrac are optional application-level metadata,
	// filled by kernels that execute an internal/workload DAG: the preset
	// that ran and the fraction of communication hidden behind compute or
	// other communication. Zero values are omitted, so records from
	// non-workload sweeps serialize exactly as before the fields existed.
	Workload    string  `json:"workload,omitempty"`
	OverlapFrac float64 `json:"overlap_frac,omitempty"`
	// Telemetry is the point's metric snapshot when telemetry is enabled.
	// It is excluded from the BENCH_*.json encoding — those documents are
	// digest-gated byte-identical with telemetry on or off — and surfaces
	// through the separately written canonical metrics.json instead.
	Telemetry *telemetry.Snapshot `json:"-"`
}

// Metric returns the named metric, or 0 when absent.
func (r Record) Metric(name string) float64 { return r.Metrics[name] }

// Report is the on-disk document: a named list of records, the unit CI
// uploads as BENCH_*.json and Compare diffs against a baseline.
type Report struct {
	Name    string   `json:"name"`
	Records []Record `json:"records"`
}

// metricColumns returns the union of metric names across records, sorted.
func metricColumns(recs []Record) []string {
	seen := map[string]bool{}
	for _, r := range recs {
		for k := range r.Metrics {
			seen[k] = true
		}
	}
	cols := make([]string, 0, len(seen))
	for k := range seen {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	return cols
}

// specColumn describes one spec axis for tabular output.
type specColumn struct {
	name string
	get  func(Spec) string
	used func(Spec) bool
}

var specColumns = []specColumn{
	{"algorithm", func(s Spec) string { return s.Algorithm }, func(s Spec) bool { return s.Algorithm != "" }},
	{"workload", func(s Spec) string { return s.Workload }, func(s Spec) bool { return s.Workload != "" }},
	{"op", func(s Spec) string { return s.Op }, func(s Spec) bool { return s.Op != "" }},
	{"transport", func(s Spec) string { return s.Transport }, func(s Spec) bool { return s.Transport != "" }},
	{"nodes", func(s Spec) string { return fmt.Sprint(s.Nodes) }, func(s Spec) bool { return s.Nodes != 0 }},
	{"msg_bytes", func(s Spec) string { return fmt.Sprint(s.MsgBytes) }, func(s Spec) bool { return s.MsgBytes != 0 }},
	{"threads", func(s Spec) string { return fmt.Sprint(s.Threads) }, func(s Spec) bool { return s.Threads != 0 }},
	{"chunk_size", func(s Spec) string { return fmt.Sprint(s.ChunkSize) }, func(s Spec) bool { return s.ChunkSize != 0 }},
	{"scenario", func(s Spec) string { return s.Scenario }, func(s Spec) bool { return s.Scenario != "" }},
}

// activeSpecColumns returns the spec axes any record actually uses.
func activeSpecColumns(recs []Record) []specColumn {
	var out []specColumn
	for _, c := range specColumns {
		for _, r := range recs {
			if c.used(r.Spec) {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// WriteTable renders the records as an aligned human-readable table: the
// spec axes the sweep varies followed by every metric column. It is the
// single table printer shared by all cmd binaries.
func WriteTable(w io.Writer, recs []Record) error {
	if len(recs) == 0 {
		_, err := fmt.Fprintln(w, "(no records)")
		return err
	}
	specs := activeSpecColumns(recs)
	metrics := metricColumns(recs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, c := range specs {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, c.name)
	}
	for _, m := range metrics {
		fmt.Fprint(tw, "\t", m)
	}
	fmt.Fprintln(tw)
	for _, r := range recs {
		for i, c := range specs {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, c.get(r.Spec))
		}
		for _, m := range metrics {
			if v, ok := r.Metrics[m]; ok {
				fmt.Fprintf(tw, "\t%.6g", v)
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
