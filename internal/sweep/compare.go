package sweep

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Delta is one metric's change between a baseline and a current report for
// the same grid point.
type Delta struct {
	Spec   Spec    `json:"spec"`
	Metric string  `json:"metric"`
	Base   float64 `json:"base"`
	Cur    float64 `json:"cur"`
	// Rel is (cur-base)/|base|; +Inf when the baseline is zero and the
	// current value is not.
	Rel float64 `json:"rel"`
}

func (d Delta) String() string {
	return fmt.Sprintf("%s %s: %.6g -> %.6g (%+.1f%%)", d.Spec, d.Metric, d.Base, d.Cur, d.Rel*100)
}

// Compare diffs two reports point by point (matched on Spec.Key, so
// baselines survive base-seed changes as long as the grid shape is the
// same; records sharing a key — e.g. an axis carried as a metric — pair up
// positionally) and returns every metric whose relative change exceeds
// tol, sorted by point index then metric name. Points or metrics present
// in only one report are skipped — Compare answers "what moved", not
// "what changed shape".
func Compare(base, cur Report, tol float64) []Delta {
	baseByKey := make(map[string][]Record, len(base.Records))
	for _, r := range base.Records {
		k := r.Spec.Key()
		baseByKey[k] = append(baseByKey[k], r)
	}
	seen := map[string]int{}
	var out []Delta
	for _, r := range cur.Records {
		k := r.Spec.Key()
		dups := baseByKey[k]
		nth := seen[k]
		seen[k]++
		if nth >= len(dups) {
			continue
		}
		b := dups[nth]
		for name, curV := range r.Metrics {
			baseV, ok := b.Metrics[name]
			if !ok {
				continue
			}
			var rel float64
			switch {
			case baseV == curV:
				rel = 0
			case baseV == 0:
				rel = math.Inf(1)
			default:
				rel = (curV - baseV) / math.Abs(baseV)
			}
			if math.Abs(rel) > tol {
				out = append(out, Delta{Spec: r.Spec, Metric: name, Base: baseV, Cur: curV, Rel: rel})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Spec.Index != out[j].Spec.Index {
			return out[i].Spec.Index < out[j].Spec.Index
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// WriteDeltas prints one line per delta, for CI logs.
func WriteDeltas(w io.Writer, deltas []Delta) error {
	if len(deltas) == 0 {
		_, err := fmt.Fprintln(w, "no metric moved beyond tolerance")
		return err
	}
	for _, d := range deltas {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}
