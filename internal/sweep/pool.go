package sweep

import (
	"errors"
	"runtime"
	"sync"
)

// Func is a sweep kernel: it executes one grid point and returns its
// Record. Kernels run concurrently across the worker pool, so they must
// not share mutable state (each builds its own simulation engine).
type Func func(Spec) (Record, error)

// Map runs fn over every index in [0, n) across a pool of worker
// goroutines and collects the results in index order. workers <= 0 selects
// GOMAXPROCS. Results are written into a slice by index, so the output —
// including which error is reported — is independent of worker count and
// scheduling; errors from distinct points are joined in index order.
// Remaining work still completes after an error (simulations are cheap to
// finish and aborting mid-engine has no benefit).
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// Run executes the kernel over every spec on the worker pool and returns
// the records in spec order. It is the execution half of the engine: expand
// a Grid, then Run the points.
func Run(specs []Spec, workers int, fn Func) ([]Record, error) {
	return Map(len(specs), workers, func(i int) (Record, error) {
		rec, err := fn(specs[i])
		if err != nil {
			return Record{}, &PointError{Spec: specs[i], Err: err}
		}
		return rec, nil
	})
}

// RunGrid expands the grid and runs it: the one-call form drivers use.
func RunGrid(g Grid, workers int, fn Func) ([]Record, error) {
	return Run(g.Expand(), workers, fn)
}

// PointError attributes a kernel failure to its grid point.
type PointError struct {
	Spec Spec
	Err  error
}

func (e *PointError) Error() string { return "sweep: point " + e.Spec.String() + ": " + e.Err.Error() }

func (e *PointError) Unwrap() error { return e.Err }
