package sweep

import (
	"errors"
	"runtime"
	"sync"
)

// Warm-start execution: grid points that share an expensive construction
// prefix (the same fabric, cluster and algorithm stack — everything except
// the seed and the perturbation) can share one built instance per worker
// and fork it per point instead of rebuilding from scratch. The kernel
// supplies the factoring; RunWarm supplies the scheduling.
//
// Determinism contract: a forked continuation must produce the same Record
// a cold run of the same spec would, which makes RunWarm's output — like
// Run's — byte-identical at every worker count. The harness kernels honor
// that by rewinding the instance's engine and model state to the
// construction snapshot and reseeding the RNG tree to the point seed, so
// which worker (and which triggering spec) built the instance is
// unobservable.

// Warmable is a sweep kernel factored into a shared warm prefix and a
// per-point continuation.
type Warmable interface {
	// WarmKey returns the prefix identity of a spec: points with equal keys
	// may share one instance per worker. The key must cover everything the
	// build consumes except the point seed — if two specs with the same key
	// could construct differently (a partition gate, a telemetry gate), the
	// gate's outcome belongs in the key. An empty key opts the point out of
	// sharing; it runs cold.
	WarmKey(Spec) string
	// Build constructs the warm instance for the given spec's key group.
	// It must leave the instance at its fork point (typically construction
	// quiescence, with a snapshot taken).
	Build(Spec) (Instance, error)
	// Cold runs one point without sharing, for specs with an empty key.
	Cold(Spec) (Record, error)
}

// Instance is one built warm prefix; Run forks it to a point's state and
// executes the continuation. Instances are confined to a single worker, so
// Run needs no locking.
type Instance interface {
	Run(Spec) (Record, error)
}

// RunWarm executes the kernel over the specs on a worker pool, sharing
// warm instances between same-key points that land on the same worker.
// Records are collected in spec order; workers <= 0 selects GOMAXPROCS.
// Like Map, remaining work completes after an error and per-point errors
// join in index order, so the reported outcome is scheduling-independent.
func RunWarm(specs []Spec, workers int, k Warmable) ([]Record, error) {
	n := len(specs)
	if n == 0 {
		return nil, nil
	}
	out := make([]Record, n)
	errs := make([]error, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cache := make(map[string]Instance)
			for i := range work {
				out[i], errs[i] = warmPoint(k, specs[i], cache)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// warmPoint runs one spec against the worker-local instance cache.
func warmPoint(k Warmable, s Spec, cache map[string]Instance) (rec Record, err error) {
	defer func() {
		if err != nil {
			err = &PointError{Spec: s, Err: err}
		}
	}()
	key := k.WarmKey(s)
	if key == "" {
		return k.Cold(s)
	}
	inst, ok := cache[key]
	if !ok {
		// A failed build is not cached: the next same-key point retries and
		// reports the same deterministic error, matching the cold behavior
		// of one error per point.
		inst, err = k.Build(s)
		if err != nil {
			return Record{}, err
		}
		cache[key] = inst
	}
	return inst.Run(s)
}
