package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteJSON serializes a report. The encoding is deterministic: records are
// in spec order, map keys are sorted by encoding/json, and nothing
// time- or host-dependent is included, so the same grid produces
// byte-identical output on every run at any worker count.
func WriteJSON(w io.Writer, rep Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteJSONFile writes the report to path (creating or truncating it).
func WriteJSONFile(path string, rep Report) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	if err := WriteJSON(f, rep); err != nil {
		f.Close()
		return fmt.Errorf("sweep: encode %s: %w", path, err)
	}
	return f.Close()
}

// WriteFiles persists the report to the requested paths — JSON and/or CSV;
// empty paths are skipped. It is the output tail shared by every cmd
// binary's -json/-csv flags.
func WriteFiles(rep Report, jsonPath, csvPath string) error {
	if jsonPath != "" {
		if err := WriteJSONFile(jsonPath, rep); err != nil {
			return err
		}
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if err := WriteCSV(f, rep.Records); err != nil {
			f.Close()
			return fmt.Errorf("sweep: encode %s: %w", csvPath, err)
		}
		return f.Close()
	}
	return nil
}

// Load decodes a report written by WriteJSON.
func Load(r io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("sweep: decode report: %w", err)
	}
	return rep, nil
}

// LoadFile reads a BENCH_*.json report from disk.
func LoadFile(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, fmt.Errorf("sweep: %w", err)
	}
	defer f.Close()
	rep, err := Load(f)
	if err != nil {
		return Report{}, fmt.Errorf("sweep: %s: %w", path, err)
	}
	return rep, nil
}

// WriteCSV renders the records as CSV with one row per point: the spec
// axes in use, then the sorted union of metric columns. Missing metrics
// are empty cells. Like the JSON form, the output is deterministic.
func WriteCSV(w io.Writer, recs []Record) error {
	specs := activeSpecColumns(recs)
	metrics := metricColumns(recs)
	row := make([]string, 0, len(specs)+len(metrics))
	for _, c := range specs {
		row = append(row, c.name)
	}
	row = append(row, metrics...)
	if err := writeCSVRow(w, row); err != nil {
		return err
	}
	for _, r := range recs {
		row = row[:0]
		for _, c := range specs {
			row = append(row, c.get(r.Spec))
		}
		for _, m := range metrics {
			if v, ok := r.Metrics[m]; ok {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := writeCSVRow(w, row); err != nil {
			return err
		}
	}
	return nil
}

// writeCSVRow emits one comma-separated line. No field this package
// produces contains commas, quotes or newlines, so no quoting is needed.
func writeCSVRow(w io.Writer, fields []string) error {
	for i, f := range fields {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, f); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}
