// Package sweep is the declarative parameter-grid engine behind every
// benchmark surface in this repository. The paper's evaluation is a grid of
// sweeps — message sizes × node counts × transports × thread counts across
// Figures 5–16 and the tables — and this package turns each of them into
// data instead of code: a Grid declares the axes, Expand produces one Spec
// per grid point (with a deterministic per-point seed derived from the grid
// index), Run executes a kernel over the points on a worker pool, and the
// resulting Records serialize to JSON and CSV for CI artifacts and
// baseline diffing (Load/Compare).
//
// Determinism is the contract: expanding the same Grid always yields the
// same Specs in the same row-major order with the same seeds, and Run
// collects Records in Spec order regardless of worker count, so the same
// grid produces byte-identical JSON on every run — the property the
// BENCH_*.json perf trajectory in CI stands on.
package sweep

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Spec is one fully-resolved point of a sweep: every axis a benchmark in
// this repository varies, plus the deterministic per-point seed. Unused
// axes stay at their zero value and are omitted from JSON.
type Spec struct {
	// Algorithm is a registry name ("mcast-allgather") or a driver-defined
	// scenario label ("ring-pair").
	Algorithm string `json:"algorithm,omitempty"`
	// Workload names the internal/workload preset the point runs
	// ("fsdp-inc", ...). Empty means the point is not an application-level
	// sweep.
	Workload string `json:"workload,omitempty"`
	// Op is the collective operation kind, where applicable.
	Op string `json:"op,omitempty"`
	// Nodes is the participating endpoint count.
	Nodes int `json:"nodes,omitempty"`
	// MsgBytes is the per-rank payload (collectives) or total receive
	// volume (rxbench).
	MsgBytes int `json:"msg_bytes,omitempty"`
	// Transport names the datapath: "ud", "uc", "cpu-ud", "cpu-rc".
	Transport string `json:"transport,omitempty"`
	// Threads is the worker-thread count of the datapath under test.
	Threads int `json:"threads,omitempty"`
	// ChunkSize is the fragmentation unit in bytes.
	ChunkSize int `json:"chunk_size,omitempty"`
	// Scenario names the internal/scenario preset the point runs under
	// ("flap-spine", "tenant-50load", ...). Empty means quiet.
	Scenario string `json:"scenario,omitempty"`
	// Seed is the simulation seed for this point, derived from the grid's
	// base seed and the point's index by PointSeed.
	Seed uint64 `json:"seed"`
	// Index is the point's position in the expanded grid (row-major).
	Index int `json:"index"`
}

// Key returns a stable identity string for the spec — every axis except
// Seed and Index — used to match points across runs of the same grid shape
// (Compare) even when base seeds differ.
func (s Spec) Key() string {
	return fmt.Sprintf("%s/%s/%s/n%d/b%d/%s/t%d/c%d/%s",
		s.Algorithm, s.Workload, s.Op, s.Nodes, s.MsgBytes, s.Transport, s.Threads, s.ChunkSize, s.Scenario)
}

// String renders the non-zero axes, for error messages and labels.
func (s Spec) String() string {
	var parts []string
	add := func(f string, v interface{}) { parts = append(parts, fmt.Sprintf(f, v)) }
	if s.Algorithm != "" {
		add("%s", s.Algorithm)
	}
	if s.Workload != "" {
		add("%s", s.Workload)
	}
	if s.Op != "" {
		add("%s", s.Op)
	}
	if s.Transport != "" {
		add("%s", s.Transport)
	}
	if s.Nodes != 0 {
		add("nodes=%d", s.Nodes)
	}
	if s.MsgBytes != 0 {
		add("bytes=%d", s.MsgBytes)
	}
	if s.Threads != 0 {
		add("threads=%d", s.Threads)
	}
	if s.ChunkSize != 0 {
		add("chunk=%d", s.ChunkSize)
	}
	if s.Scenario != "" {
		add("scenario=%s", s.Scenario)
	}
	if len(parts) == 0 {
		return fmt.Sprintf("point %d", s.Index)
	}
	return strings.Join(parts, " ")
}

// PointSeed derives the simulation seed for grid point index from the
// grid's base seed. The splitmix64 finalizer decorrelates neighboring
// indices, so every point gets an independent stream while remaining a
// pure function of (base, index) — the same grid always reproduces the
// same seeds.
func PointSeed(base uint64, index int) uint64 {
	seed := sim.Splitmix64(base ^ sim.Splitmix64(uint64(index)+1))
	if seed == 0 {
		seed = 1 // engines treat 0 as "default"; keep points distinct from it
	}
	return seed
}
