package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func testGrid() Grid {
	return Grid{
		Algorithms: []string{"a", "b"},
		MsgBytes:   []int{1024, 2048, 4096},
		Threads:    []int{1, 2},
		Seed:       7,
	}
}

func TestGridExpansionCountAndOrder(t *testing.T) {
	g := testGrid()
	specs := g.Expand()
	if got, want := len(specs), g.Points(); got != want {
		t.Fatalf("Expand produced %d specs, Points says %d", got, want)
	}
	if len(specs) != 2*3*2 {
		t.Fatalf("want 12 points, got %d", len(specs))
	}
	// Row-major: Algorithms outermost, Threads innermost here.
	want := []Spec{
		{Algorithm: "a", MsgBytes: 1024, Threads: 1},
		{Algorithm: "a", MsgBytes: 1024, Threads: 2},
		{Algorithm: "a", MsgBytes: 2048, Threads: 1},
	}
	for i, w := range want {
		s := specs[i]
		if s.Algorithm != w.Algorithm || s.MsgBytes != w.MsgBytes || s.Threads != w.Threads {
			t.Fatalf("spec %d = %+v, want axes %+v", i, s, w)
		}
		if s.Index != i {
			t.Fatalf("spec %d has Index %d", i, s.Index)
		}
	}
	// Last point closes the product.
	last := specs[len(specs)-1]
	if last.Algorithm != "b" || last.MsgBytes != 4096 || last.Threads != 2 {
		t.Fatalf("last spec = %+v", last)
	}
}

func TestGridSeedsDeterministicAndDistinct(t *testing.T) {
	a, b := testGrid().Expand(), testGrid().Expand()
	seen := map[uint64]int{}
	for i := range a {
		if a[i].Seed != b[i].Seed {
			t.Fatalf("point %d seed differs across expansions: %d vs %d", i, a[i].Seed, b[i].Seed)
		}
		if a[i].Seed == 0 {
			t.Fatalf("point %d got the zero seed", i)
		}
		if prev, dup := seen[a[i].Seed]; dup {
			t.Fatalf("points %d and %d share seed %d", prev, i, a[i].Seed)
		}
		seen[a[i].Seed] = i
	}
	// A different base seed moves every point.
	g := testGrid()
	g.Seed = 8
	for i, s := range g.Expand() {
		if s.Seed == a[i].Seed {
			t.Fatalf("point %d seed unchanged under a new base seed", i)
		}
	}
}

func TestRunByteIdenticalJSONAcrossWorkerCounts(t *testing.T) {
	kernel := func(s Spec) (Record, error) {
		return Record{Spec: s, Metrics: map[string]float64{
			"gibps": float64(s.MsgBytes) / float64(s.Threads),
			"seed":  float64(s.Seed % 1000),
		}}, nil
	}
	var blobs [][]byte
	for _, workers := range []int{1, 3, 16} {
		recs, err := RunGrid(testGrid(), workers, kernel)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, Report{Name: "t", Records: recs}); err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, buf.Bytes())
	}
	for i := 1; i < len(blobs); i++ {
		if !bytes.Equal(blobs[0], blobs[i]) {
			t.Fatalf("JSON differs between worker counts 1 and %d", []int{1, 3, 16}[i])
		}
	}
}

func TestRunErrorPropagation(t *testing.T) {
	errBoom := errors.New("boom")
	specs := testGrid().Expand()
	var calls atomic.Int64
	_, err := Run(specs, 4, func(s Spec) (Record, error) {
		calls.Add(1)
		if s.Index == 5 || s.Index == 9 {
			return Record{}, fmt.Errorf("%w at %d", errBoom, s.Index)
		}
		return Record{Spec: s}, nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("error %v does not wrap the kernel error", err)
	}
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v carries no PointError", err)
	}
	if pe.Spec.Index != 5 {
		t.Fatalf("first PointError is for index %d, want 5 (deterministic order)", pe.Spec.Index)
	}
	// All points still ran to completion.
	if got := calls.Load(); got != int64(len(specs)) {
		t.Fatalf("kernel ran %d times, want %d", got, len(specs))
	}
}

func TestConcatReindexes(t *testing.T) {
	g1 := Grid{Transports: []string{"cpu-ud"}, MsgBytes: []int{1, 2}, Seed: 1}
	g2 := Grid{Transports: []string{"ud"}, MsgBytes: []int{1, 2}, Seed: 2}
	specs := Concat(g1.Expand(), g2.Expand())
	for i, s := range specs {
		if s.Index != i {
			t.Fatalf("spec %d has Index %d after Concat", i, s.Index)
		}
	}
	if specs[0].Seed == specs[2].Seed {
		t.Fatal("distinct base seeds still collided")
	}
}

func TestCompareFindsMovedMetrics(t *testing.T) {
	recs := func(v float64) []Record {
		var out []Record
		for _, s := range testGrid().Expand() {
			out = append(out, Record{Spec: s, Metrics: map[string]float64{"gibps": v, "stable": 1}})
		}
		return out
	}
	base := Report{Name: "base", Records: recs(10)}
	cur := Report{Name: "cur", Records: recs(12)}
	deltas := Compare(base, cur, 0.05)
	if len(deltas) != len(base.Records) {
		t.Fatalf("got %d deltas, want one per point (%d)", len(deltas), len(base.Records))
	}
	for _, d := range deltas {
		if d.Metric != "gibps" {
			t.Fatalf("unexpected delta on metric %q", d.Metric)
		}
		if d.Rel < 0.19 || d.Rel > 0.21 {
			t.Fatalf("rel = %v, want 0.2", d.Rel)
		}
	}
	if got := Compare(base, cur, 0.5); len(got) != 0 {
		t.Fatalf("tolerance 0.5 still reports %d deltas", len(got))
	}
}

func TestCompareDuplicateKeysPairPositionally(t *testing.T) {
	// Records whose specs differ only by Index share a Key (costmodel's
	// Figure 7 carries its swept axis as a metric); a self-compare must
	// still be clean, and per-position changes must be attributed.
	recs := func(bump int) []Record {
		var out []Record
		for i := 0; i < 5; i++ {
			v := float64(i)
			if i == bump {
				v *= 10
			}
			out = append(out, Record{
				Spec:    Spec{ChunkSize: 4096, Index: i},
				Metrics: map[string]float64{"m": v},
			})
		}
		return out
	}
	same := Report{Records: recs(-1)}
	if d := Compare(same, same, 0); len(d) != 0 {
		t.Fatalf("self-compare of same-key records reports %d deltas: %v", len(d), d)
	}
	deltas := Compare(same, Report{Records: recs(3)}, 0.01)
	if len(deltas) != 1 || deltas[0].Spec.Index != 3 {
		t.Fatalf("want exactly the index-3 delta, got %v", deltas)
	}
}

func TestCSVAndTableDeterministicColumns(t *testing.T) {
	recs, err := RunGrid(testGrid(), 0, func(s Spec) (Record, error) {
		return Record{Spec: s, Metrics: map[string]float64{"b_metric": 1, "a_metric": 2}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(csv.String(), "\n")
	if lines[0] != "algorithm,msg_bytes,threads,a_metric,b_metric" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if len(lines) != len(recs)+2 { // header + rows + trailing newline
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(recs)+2)
	}
	var tbl bytes.Buffer
	if err := WriteTable(&tbl, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "a_metric") || !strings.Contains(tbl.String(), "algorithm") {
		t.Fatalf("table missing columns:\n%s", tbl.String())
	}
}

func TestLoadRoundTrip(t *testing.T) {
	recs, err := RunGrid(testGrid(), 0, func(s Spec) (Record, error) {
		return Record{Spec: s, Metrics: map[string]float64{"m": float64(s.Index)}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/bench.json"
	if err := WriteJSONFile(path, Report{Name: "rt", Records: recs}); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "rt" || len(rep.Records) != len(recs) {
		t.Fatalf("round trip lost data: %+v", rep.Name)
	}
	for i, r := range rep.Records {
		if r.Spec != recs[i].Spec || r.Metrics["m"] != float64(i) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
}

func TestScenarioAxisExpansion(t *testing.T) {
	// The Scenario axis participates in the product (innermost) and in
	// Key/String; leaving it empty reproduces the pre-axis expansion
	// exactly, seeds included, so existing grids are unchanged.
	g := Grid{Algorithms: []string{"a"}, MsgBytes: []int{1, 2},
		Scenarios: []string{"quiet", "flap-spine"}, Seed: 3}
	specs := g.Expand()
	if len(specs) != 4 || g.Points() != 4 {
		t.Fatalf("want 4 points, got %d (Points %d)", len(specs), g.Points())
	}
	wantOrder := []string{"quiet", "flap-spine", "quiet", "flap-spine"}
	for i, s := range specs {
		if s.Scenario != wantOrder[i] {
			t.Fatalf("point %d scenario %q, want %q", i, s.Scenario, wantOrder[i])
		}
	}
	if k0, k1 := specs[0].Key(), specs[1].Key(); k0 == k1 {
		t.Fatalf("scenario not part of Key: %q", k0)
	}
	if s := specs[1].String(); !strings.Contains(s, "scenario=flap-spine") {
		t.Fatalf("String() %q does not name the scenario", s)
	}

	// A grid without the axis must reproduce the pre-axis expansion
	// exactly — pinned against golden seeds captured before the Scenario
	// axis existed (testGrid: 12 points, base seed 7).
	specs = testGrid().Expand()
	golden := map[int]uint64{
		0:  8581286081765471666,
		1:  1988111358474182198,
		11: 10844028036091490113,
	}
	for i, want := range golden {
		if specs[i].Scenario != "" {
			t.Fatalf("axis-free grid produced scenario %q at point %d", specs[i].Scenario, i)
		}
		if got := specs[i].Seed; got != want {
			t.Fatalf("point %d seed = %d, want pre-axis golden %d", i, got, want)
		}
	}
}

func TestWorkloadAxisExpansion(t *testing.T) {
	// The Workload axis participates in the product (after Algorithms) and
	// in Key/String; leaving it empty reproduces the pre-axis expansion
	// exactly, seeds included, so existing grids are unchanged.
	g := Grid{Workloads: []string{"fsdp-ring", "fsdp-inc"}, MsgBytes: []int{1, 2}, Seed: 3}
	specs := g.Expand()
	if len(specs) != 4 || g.Points() != 4 {
		t.Fatalf("want 4 points, got %d (Points %d)", len(specs), g.Points())
	}
	wantOrder := []string{"fsdp-ring", "fsdp-ring", "fsdp-inc", "fsdp-inc"}
	for i, s := range specs {
		if s.Workload != wantOrder[i] {
			t.Fatalf("point %d workload %q, want %q", i, s.Workload, wantOrder[i])
		}
	}
	if k0, k2 := specs[0].Key(), specs[2].Key(); k0 == k2 {
		t.Fatalf("workload not part of Key: %q", k0)
	}
	if s := specs[2].String(); !strings.Contains(s, "fsdp-inc") {
		t.Fatalf("String() %q does not name the workload", s)
	}

	// Axis-free grids keep their pre-axis seeds (same goldens as the
	// Scenario-axis check).
	free := testGrid().Expand()
	golden := map[int]uint64{0: 8581286081765471666, 11: 10844028036091490113}
	for i, want := range golden {
		if free[i].Workload != "" {
			t.Fatalf("axis-free grid produced workload %q at point %d", free[i].Workload, i)
		}
		if got := free[i].Seed; got != want {
			t.Fatalf("point %d seed = %d, want pre-axis golden %d", i, got, want)
		}
	}
}

func TestRecordWorkloadMetadataOmittedWhenEmpty(t *testing.T) {
	// Records without workload metadata must serialize exactly as before
	// the fields existed — the BENCH_*.json byte-identity contract.
	var buf strings.Builder
	rec := Record{Spec: Spec{Algorithm: "a", Seed: 1}, Metrics: map[string]float64{"m": 1}}
	if err := WriteJSON(&buf, Report{Name: "r", Records: []Record{rec}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "workload") || strings.Contains(buf.String(), "overlap_frac") {
		t.Fatalf("empty metadata serialized: %s", buf.String())
	}
	buf.Reset()
	rec.Workload, rec.OverlapFrac = "fsdp-inc", 0.5
	if err := WriteJSON(&buf, Report{Name: "r", Records: []Record{rec}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"workload": "fsdp-inc"`) ||
		!strings.Contains(buf.String(), `"overlap_frac": 0.5`) {
		t.Fatalf("metadata missing: %s", buf.String())
	}
}
