package sweep

// Grid declares a parameter sweep: the cartesian product of every non-empty
// axis, expanded in row-major order (Algorithms outermost, Scenarios
// innermost). An empty axis contributes a single zero value, so a Grid only
// names the dimensions it actually varies — a driver that sweeps message
// sizes for two transports sets just MsgBytes and Transports.
type Grid struct {
	Algorithms []string `json:"algorithms,omitempty"`
	// Workloads names internal/workload presets ("fsdp-inc", ...) for
	// application-level sweeps. Empty means no workload axis, exactly as
	// before the axis existed.
	Workloads  []string `json:"workloads,omitempty"`
	Ops        []string `json:"ops,omitempty"`
	Nodes      []int    `json:"nodes,omitempty"`
	MsgBytes   []int    `json:"msg_bytes,omitempty"`
	Transports []string `json:"transports,omitempty"`
	Threads    []int    `json:"threads,omitempty"`
	ChunkSizes []int    `json:"chunk_sizes,omitempty"`
	// Scenarios names internal/scenario presets to run each point under
	// ("quiet", "flap-spine", ...). Empty means the quiet fabric, exactly
	// as before the axis existed.
	Scenarios []string `json:"scenarios,omitempty"`
	// Seed is the base seed; each expanded point derives its own with
	// PointSeed(Seed, index). Zero is a valid base.
	Seed uint64 `json:"seed,omitempty"`
}

func orStr(axis []string) []string {
	if len(axis) == 0 {
		return []string{""}
	}
	return axis
}

func orInt(axis []int) []int {
	if len(axis) == 0 {
		return []int{0}
	}
	return axis
}

// Points returns the number of specs Expand will produce.
func (g Grid) Points() int {
	n := 1
	for _, k := range []int{
		len(orStr(g.Algorithms)), len(orStr(g.Workloads)), len(orStr(g.Ops)),
		len(orInt(g.Nodes)), len(orInt(g.MsgBytes)), len(orStr(g.Transports)),
		len(orInt(g.Threads)), len(orInt(g.ChunkSizes)), len(orStr(g.Scenarios)),
	} {
		n *= k
	}
	return n
}

// Expand materializes the grid as one Spec per point, in deterministic
// row-major order with per-point seeds derived from the grid index.
func (g Grid) Expand() []Spec {
	specs := make([]Spec, 0, g.Points())
	idx := 0
	for _, alg := range orStr(g.Algorithms) {
		for _, wl := range orStr(g.Workloads) {
			for _, op := range orStr(g.Ops) {
				for _, nodes := range orInt(g.Nodes) {
					for _, msg := range orInt(g.MsgBytes) {
						for _, tr := range orStr(g.Transports) {
							for _, th := range orInt(g.Threads) {
								for _, cs := range orInt(g.ChunkSizes) {
									for _, sc := range orStr(g.Scenarios) {
										specs = append(specs, Spec{
											Algorithm: alg, Workload: wl, Op: op,
											Nodes: nodes, MsgBytes: msg, Transport: tr,
											Threads: th, ChunkSize: cs,
											Scenario: sc,
											Seed:     PointSeed(g.Seed, idx),
											Index:    idx,
										})
										idx++
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return specs
}

// Concat joins several expanded spec lists into one sweep, reindexing the
// points so indices stay unique (seeds are left as derived by each grid —
// give grids distinct base seeds when independence matters). Drivers use it
// to compose sweeps whose axes are linked and so not a pure product, e.g.
// Figure 5's "CPU at 1 thread vs DPA at 16 threads".
func Concat(lists ...[]Spec) []Spec {
	var out []Spec
	for _, l := range lists {
		for _, s := range l {
			s.Index = len(out)
			out = append(out, s)
		}
	}
	return out
}
