package telemetry

import (
	"os"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestNilRegistryIsFree pins the zero-cost-when-disabled contract: every
// handle obtained from a nil registry is a nil-safe no-op, and the whole
// disabled instrumentation path allocates nothing. The harness kernels
// thread nil registries unconditionally, so this gate is what keeps the
// pinned 0-alloc hot-path baselines intact.
func TestNilRegistryIsFree(t *testing.T) {
	var r *Registry
	c := r.Counter("sim", "events", "", Stable)
	g := r.Gauge("fabric", "backlog_ns", "", Stable)
	h := r.Histogram("verbs", "rc_completion_ns", "", Stable, LatencyBounds)
	s := r.NewSampler(nil)
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		c := r.Counter("sim", "events", "", Stable)
		c.Add(1)
		_ = c.Value()
		r.Gauge("fabric", "backlog_ns", "", Stable).Sample(sim.Microsecond, 3)
		r.Histogram("verbs", "rc_completion_ns", "", Stable, LatencyBounds).Observe(sim.Millisecond)
		r.Span("coll", "allgather", 0, sim.Microsecond)
		sp := r.NewSampler(nil)
		sp.Add(func(sim.Time) {})
		sp.Arm()
	}); allocs != 0 {
		t.Fatalf("disabled telemetry path allocates %v per run, want 0", allocs)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry must snapshot to nil")
	}
	if r.Diagnostics() != nil {
		t.Fatal("nil registry must have nil diagnostics")
	}
}

// TestSnapshotCanonical covers the canonical serialization rules: sorted
// keys, Stable-only, filter prefixes, sparse histogram buckets with the
// overflow rendered as Le=-1, and spans sorted by (track, start).
func TestSnapshotCanonical(t *testing.T) {
	r := New(Config{})
	r.Counter("sim", "events", "", Stable).Add(7)
	r.Counter("sim", "epoch_stalls", "", Diagnostic).Add(3)
	r.Counter("fabric", "drops", "ch=0", Stable).Add(1)
	h := r.Histogram("verbs", "rc_completion_ns", "", Stable, []sim.Time{sim.Microsecond, sim.Millisecond})
	h.Observe(500 * sim.Nanosecond) // <= 1µs
	h.Observe(2 * sim.Millisecond)  // overflow
	r.Span("coll", "allgather", 10, 20)
	r.Span("coll", "allgather", 0, 5)

	s := r.Snapshot()
	keys := make([]string, len(s.Metrics))
	for i, m := range s.Metrics {
		keys[i] = m.Key
	}
	want := []string{"fabric/drops{ch=0}", "sim/events", "verbs/rc_completion_ns"}
	if strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Fatalf("snapshot keys %v, want %v (sorted, Stable only)", keys, want)
	}
	var hist Metric
	for _, m := range s.Metrics {
		if m.Key == "verbs/rc_completion_ns" {
			hist = m
		}
	}
	if hist.Count != 2 || len(hist.Buckets) != 2 {
		t.Fatalf("histogram serialized as %+v, want count 2 with 2 sparse buckets", hist)
	}
	if hist.Buckets[0].Le != sim.Microsecond || hist.Buckets[0].N != 1 {
		t.Fatalf("first bucket %+v, want {1µs 1}", hist.Buckets[0])
	}
	if hist.Buckets[1].Le != -1 || hist.Buckets[1].N != 1 {
		t.Fatalf("overflow bucket %+v, want {-1 1}", hist.Buckets[1])
	}
	if len(s.Spans) != 2 || s.Spans[0].Start != 0 {
		t.Fatalf("spans %+v, want sorted by start within track", s.Spans)
	}
	if d := r.Diagnostics(); d["sim/epoch_stalls"] != 3 {
		t.Fatalf("diagnostics %v, want sim/epoch_stalls=3", d)
	}

	f := New(Config{Filters: []string{"fabric/"}})
	f.Counter("sim", "events", "", Stable).Add(1)
	f.Counter("fabric", "drops", "", Stable).Add(1)
	fs := f.Snapshot()
	if len(fs.Metrics) != 1 || fs.Metrics[0].Key != "fabric/drops" {
		t.Fatalf("filtered snapshot %+v, want fabric/drops only", fs.Metrics)
	}
}

// TestKindMismatchPanics pins the registration discipline: one key, one
// metric kind.
func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter key as a gauge must panic")
		}
	}()
	r := New(Config{})
	r.Counter("sim", "events", "", Stable)
	r.Gauge("sim", "events", "", Stable)
}

// drainHost keeps an engine busy for a fixed number of self-events so the
// sampler has model work to interleave with.
type drainHost struct {
	left int
	gap  sim.Time
}

func (h *drainHost) OnEvent(e *sim.Engine, _ sim.Handle, _ uint64, _ int, _ any) {
	if h.left--; h.left > 0 {
		e.AfterHandler(h.gap, h, 0, 0, nil)
	}
}

// TestSamplerDrains checks the termination contract: the sampler ticks at
// its period while the model runs and stops re-arming when the queue
// empties, so Run() returns on its own.
func TestSamplerDrains(t *testing.T) {
	eng := sim.NewEngine(1)
	r := New(Config{SamplePeriod: 10 * sim.Microsecond})
	g := r.Gauge("fabric", "backlog_ns", "", Stable)
	s := r.NewSampler(eng)
	s.Add(func(ts sim.Time) { g.Sample(ts, float64(ts)) })
	s.Arm()
	host := &drainHost{left: 20, gap: 25 * sim.Microsecond}
	eng.AfterHandler(host.gap, host, 0, 0, nil)
	eng.Run()

	snap := r.Snapshot()
	if len(snap.Metrics) != 1 {
		t.Fatalf("want 1 gauge, got %+v", snap.Metrics)
	}
	samples := snap.Metrics[0].Samples
	if len(samples) < 10 {
		t.Fatalf("sampler fired %d times over a ~500µs run at a 10µs period, want >= 10", len(samples))
	}
	for i, sm := range samples {
		if want := sim.Time(i+1) * 10 * sim.Microsecond; sm.T != want {
			t.Fatalf("sample %d at t=%v, want %v", i, sm.T, want)
		}
	}
	last := samples[len(samples)-1].T
	// 20 hops x 25µs = 500µs of model time; sampling must not outlive it
	// by more than one period (the tick in flight when the queue drained).
	if limit := 500*sim.Microsecond + 10*sim.Microsecond; last > limit {
		t.Fatalf("sampler kept the engine alive until %v, limit %v", last, limit)
	}
	// Re-arming while armed must not double-schedule.
	s.Arm()
	s.Arm()
	before := eng.Executed
	eng.Run()
	if eng.Executed-before > 1 {
		t.Fatalf("double Arm scheduled %d events, want 1", eng.Executed-before)
	}
}

// TestDocumentRoundTrip pins Encode/LoadDocument as inverses on the
// canonical form.
func TestDocumentRoundTrip(t *testing.T) {
	doc := Document{Name: "osu", Points: []Point{{
		Key: "mcast-allgather/allgather/n16/b65536",
		Metrics: []Metric{
			{Key: "sim/events", Type: "counter", Value: 42},
			{Key: "fabric/backlog_ns", Type: "gauge", Samples: []Sample{{T: 100, V: 1.5}}},
		},
	}}}
	path := t.TempDir() + "/metrics.json"
	if err := os.WriteFile(path, doc.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDocument(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Encode()) != string(doc.Encode()) {
		t.Fatalf("round trip changed the document:\n%s\nvs\n%s", doc.Encode(), got.Encode())
	}
}
