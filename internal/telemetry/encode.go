package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Document is the on-disk metrics.json: one Point per sweep record that
// carried a snapshot, in record order. The encoding is canonical —
// 2-space-indented JSON, metrics sorted by key within each point, nothing
// wall-clock or host-dependent — so the same run produces byte-identical
// bytes at any -workers or -shards count and CI can pin a digest on it.
type Document struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Point carries one sweep point's Stable metrics, keyed by its spec key.
type Point struct {
	Key     string   `json:"key"`
	Metrics []Metric `json:"metrics"`
}

// Encode renders the document in its canonical form.
func (d Document) Encode() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		// The document has no unmarshalable fields; a failure here is a
		// programming error.
		panic(err)
	}
	return buf.Bytes()
}

// LoadDocument reads a metrics.json written by Encode.
func LoadDocument(path string) (Document, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Document{}, fmt.Errorf("telemetry: %w", err)
	}
	var d Document
	if err := json.Unmarshal(b, &d); err != nil {
		return Document{}, fmt.Errorf("telemetry: decode %s: %w", path, err)
	}
	return d, nil
}
