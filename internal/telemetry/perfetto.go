package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"sort"
	"strconv"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Bundle is everything one traced representative run produced: the
// protocol phase events from internal/trace plus the run's metric
// snapshot. It renders either as the legacy text timeline (-trace) or as a
// Chrome-trace-event/Perfetto JSON document (-perfetto), so one traced run
// feeds both surfaces.
type Bundle struct {
	Events []trace.Event
	Snap   *Snapshot
}

// Timeline renders the protocol events as the Figure-9 text timeline,
// byte-identical to the historical -trace output.
func (b *Bundle) Timeline() string {
	rec := &trace.Recorder{Events: b.Events}
	return rec.Timeline()
}

// tev is one Chrome trace event. Field order and omitempty choices are
// part of the canonical encoding; timestamps are virtual-time microseconds
// (the unit the trace-event format mandates).
type tev struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Args any     `json:"args,omitempty"`
}

type nameArgs struct {
	Name string `json:"name"`
}

type detailArgs struct {
	Detail string `json:"detail,omitempty"`
}

type valueArgs struct {
	Value float64 `json:"value"`
}

// Process ids of the exported tracks. Protocol ranks are threads of pid 1,
// registry span tracks threads of pid 2, metric counters live on pid 3.
const (
	pidProtocol = 1
	pidSpans    = 2
	pidMetrics  = 3
)

func us(t sim.Time) float64 { return float64(t) / 1e3 }

// WritePerfetto renders the bundle as a Chrome trace-event JSON document
// (open at ui.perfetto.dev or chrome://tracing): one named thread per
// protocol rank carrying its phase slices, one per registry span track
// (collective operations, workload phases), and one counter track per
// gauge series. The output is a pure function of the bundle — deterministic
// across -workers and -shards like everything else telemetry emits.
func (b *Bundle) WritePerfetto(w io.Writer) error {
	var evs []tev
	add := func(e tev) { evs = append(evs, e) }

	// Protocol ranks: pid 1, tid = rank. Consecutive events of a rank
	// bound the phase slices: entering phase P at t1 and the next phase at
	// t2 renders P as [t1, t2); the final event becomes an instant.
	ranks := map[int]bool{}
	for _, e := range b.Events {
		ranks[e.Rank] = true
	}
	if len(ranks) > 0 {
		add(tev{Name: "process_name", Ph: "M", Pid: pidProtocol, Args: nameArgs{Name: "protocol"}})
		rankIDs := make([]int, 0, len(ranks))
		for r := range ranks {
			rankIDs = append(rankIDs, r)
		}
		sort.Ints(rankIDs)
		rec := &trace.Recorder{Events: b.Events}
		for _, r := range rankIDs {
			add(tev{Name: "thread_name", Ph: "M", Pid: pidProtocol, Tid: r,
				Args: nameArgs{Name: "rank " + strconv.Itoa(r)}})
			byRank := rec.ByRank(r)
			for i, e := range byRank {
				if i+1 < len(byRank) {
					add(tev{Name: e.Phase, Ph: "X", Ts: us(e.T), Dur: us(byRank[i+1].T - e.T),
						Pid: pidProtocol, Tid: r, Args: detailArgs{Detail: e.Detail}})
				} else {
					add(tev{Name: e.Phase, Ph: "i", Ts: us(e.T),
						Pid: pidProtocol, Tid: r, Args: detailArgs{Detail: e.Detail}})
				}
			}
		}
	}

	// Registry spans: pid 2, one thread per track name (sorted).
	if b.Snap != nil && len(b.Snap.Spans) > 0 {
		add(tev{Name: "process_name", Ph: "M", Pid: pidSpans, Args: nameArgs{Name: "spans"}})
		tracks := map[string]bool{}
		for _, sp := range b.Snap.Spans {
			tracks[sp.Track] = true
		}
		names := make([]string, 0, len(tracks))
		for n := range tracks {
			names = append(names, n)
		}
		sort.Strings(names)
		tid := map[string]int{}
		for i, n := range names {
			tid[n] = i
			add(tev{Name: "thread_name", Ph: "M", Pid: pidSpans, Tid: i, Args: nameArgs{Name: n}})
		}
		for _, sp := range b.Snap.Spans {
			add(tev{Name: sp.Name, Ph: "X", Ts: us(sp.Start), Dur: us(sp.End - sp.Start),
				Pid: pidSpans, Tid: tid[sp.Track]})
		}
	}

	// Gauge series: pid 3 counter tracks, one per metric key, in snapshot
	// (sorted-key) order.
	if b.Snap != nil {
		named := false
		for _, m := range b.Snap.Metrics {
			if m.Type != "gauge" || len(m.Samples) == 0 {
				continue
			}
			if !named {
				add(tev{Name: "process_name", Ph: "M", Pid: pidMetrics, Args: nameArgs{Name: "metrics"}})
				named = true
			}
			for _, s := range m.Samples {
				add(tev{Name: m.Key, Ph: "C", Ts: us(s.T), Pid: pidMetrics, Args: valueArgs{Value: s.V}})
			}
		}
	}

	doc := struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []tev  `json:"traceEvents"`
	}{DisplayTimeUnit: "ns", TraceEvents: evs}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}
