// Package telemetry is the unified observability layer: a deterministic
// metrics registry (counters, gauges, fixed-bucket histograms and spans,
// keyed by subsystem/name{labels}) sampled in *virtual* time, plus a
// Chrome-trace-event/Perfetto exporter over internal/trace protocol events.
//
// Two invariants define the design:
//
//   - Zero cost when disabled. The disabled state is a nil *Registry; every
//     method (and every handle method) is nil-safe and allocation-free on
//     nil, so instrumented hot paths keep their pinned 0-alloc baselines
//     and all goldens stay byte-identical.
//   - Determinism when enabled. Metrics are pure functions of the simulated
//     run — counters count virtual events, gauges sample at virtual times,
//     histograms bucket virtual durations — so enabled output is
//     byte-identical at any -workers or -shards count. Telemetry is part of
//     the determinism contract, not an exception to it.
//
// Metrics carry a Class: Stable metrics are shard- and worker-invariant and
// make up the canonical metrics.json; Diagnostic metrics (per-shard event
// counts, epoch-barrier stalls) legitimately vary with the execution
// configuration and are excluded from the canonical encoding — they surface
// through benchmarks and BENCH_perf.json instead.
package telemetry

import (
	"sort"

	"repro/internal/sim"
)

// Class separates metrics by their determinism scope.
type Class uint8

const (
	// Stable metrics are invariant across -workers and -shards and are
	// included in the canonical metrics.json encoding.
	Stable Class = iota
	// Diagnostic metrics describe the execution configuration itself
	// (per-shard counts, barrier stalls) and are excluded from the
	// canonical encoding.
	Diagnostic
)

// DefaultSamplePeriod is the gauge sampling cadence when the config leaves
// it zero: 100 µs of virtual time.
const DefaultSamplePeriod = 100 * sim.Microsecond

// Config parameterizes a registry.
type Config struct {
	// Enabled gates the whole subsystem; harness helpers return a nil
	// *Registry when false.
	Enabled bool
	// SamplePeriod is the virtual-time gauge sampling cadence. Zero
	// defaults to DefaultSamplePeriod.
	SamplePeriod sim.Time
	// Filters, when non-empty, restricts the canonical Snapshot to metrics
	// whose key has one of these prefixes ("fabric/", "sim/events", ...).
	Filters []string
}

// metric is the registry's internal storage for one key.
type metric struct {
	key     string
	class   Class
	kind    string // "counter", "gauge" or "histogram"
	counter Counter
	gauge   Gauge
	hist    Histogram
}

// Registry holds a run's metrics. A nil *Registry is the disabled state:
// every method is a nil-safe no-op, so instrumentation points need no
// guards and cost nothing when telemetry is off. Registries are not
// goroutine-safe; the sweep engine gives each point its own.
type Registry struct {
	cfg     Config
	metrics map[string]*metric
	spans   []SpanRec
}

// New builds an enabled registry. Callers that want the disabled state use
// a nil *Registry instead (see harness.SetTelemetry).
func New(cfg Config) *Registry {
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = DefaultSamplePeriod
	}
	cfg.Enabled = true
	return &Registry{cfg: cfg, metrics: make(map[string]*metric)}
}

// Key renders the canonical metric key: subsystem/name{labels}, with the
// label block omitted when empty.
func Key(subsystem, name, labels string) string {
	if labels == "" {
		return subsystem + "/" + name
	}
	return subsystem + "/" + name + "{" + labels + "}"
}

// lookup returns (creating on first use) the storage for a key, panicking
// on a kind mismatch — two subsystems disagreeing about a key's type is a
// programming error, not a runtime condition.
func (r *Registry) lookup(subsystem, name, labels string, class Class, kind string) *metric {
	k := Key(subsystem, name, labels)
	if m, ok := r.metrics[k]; ok {
		if m.kind != kind {
			panic("telemetry: " + k + " registered as " + m.kind + ", requested as " + kind)
		}
		return m
	}
	m := &metric{key: k, class: class, kind: kind}
	r.metrics[k] = m
	return m
}

// --- counter ----------------------------------------------------------------------

// Counter is a monotonically increasing event count.
type Counter struct {
	v uint64
}

// Counter returns the named counter handle, nil on a nil registry.
func (r *Registry) Counter(subsystem, name, labels string, class Class) *Counter {
	if r == nil {
		return nil
	}
	return &r.lookup(subsystem, name, labels, class, "counter").counter
}

// Add increments the counter; a no-op on a nil handle.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value reports the accumulated count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// --- gauge ------------------------------------------------------------------------

// Sample is one (virtual time, value) gauge observation.
type Sample struct {
	T sim.Time `json:"t_ns"`
	V float64  `json:"v"`
}

// Gauge is a sampled time series of instantaneous values.
type Gauge struct {
	samples []Sample
}

// Gauge returns the named gauge handle, nil on a nil registry.
func (r *Registry) Gauge(subsystem, name, labels string, class Class) *Gauge {
	if r == nil {
		return nil
	}
	return &r.lookup(subsystem, name, labels, class, "gauge").gauge
}

// Sample appends one observation at virtual time t; a no-op on nil.
func (g *Gauge) Sample(t sim.Time, v float64) {
	if g != nil {
		g.samples = append(g.samples, Sample{T: t, V: v})
	}
}

// --- histogram --------------------------------------------------------------------

// Bucket is one cumulative-style histogram cell: the count of observations
// with value <= Le (the last bucket is the overflow, Le < 0 rendered as
// +Inf).
type Bucket struct {
	Le sim.Time `json:"le_ns"`
	N  uint64   `json:"n"`
}

// Histogram buckets virtual-duration observations into fixed bounds.
type Histogram struct {
	bounds []sim.Time
	counts []uint64 // len(bounds)+1; the last cell is the overflow
	total  uint64
}

// LatencyBounds is the shared exponential nanosecond bucket ladder for
// completion-latency histograms: 1 µs to ~33 ms, doubling.
var LatencyBounds = func() []sim.Time {
	var b []sim.Time
	for t := sim.Microsecond; t <= 33*sim.Millisecond; t *= 2 {
		b = append(b, t)
	}
	return b
}()

// Histogram returns the named histogram handle (with the given bucket
// bounds on first registration), nil on a nil registry.
func (r *Registry) Histogram(subsystem, name, labels string, class Class, bounds []sim.Time) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(subsystem, name, labels, class, "histogram")
	if m.hist.counts == nil {
		m.hist.bounds = bounds
		m.hist.counts = make([]uint64, len(bounds)+1)
	}
	return &m.hist
}

// Observe buckets one duration; a no-op on nil.
func (h *Histogram) Observe(v sim.Time) {
	if h == nil {
		return
	}
	h.total++
	for i, le := range h.bounds {
		if v <= le {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// --- spans ------------------------------------------------------------------------

// SpanRec is one named interval on a named track — collective operations,
// workload phases — rendered as Perfetto slices.
type SpanRec struct {
	Track string   `json:"track"`
	Name  string   `json:"name"`
	Start sim.Time `json:"start_ns"`
	End   sim.Time `json:"end_ns"`
}

// Span records an interval; a no-op on a nil registry.
func (r *Registry) Span(track, name string, start, end sim.Time) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, SpanRec{Track: track, Name: name, Start: start, End: end})
}

// --- snapshot ---------------------------------------------------------------------

// Metric is the serialized form of one registry entry.
type Metric struct {
	Key     string   `json:"key"`
	Type    string   `json:"type"`
	Value   uint64   `json:"value,omitempty"`
	Samples []Sample `json:"samples,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is the end-of-run state of a registry: the Stable metrics that
// survived the config filters, sorted by key, plus the recorded spans (the
// Perfetto payload; spans are not part of the canonical metrics document).
type Snapshot struct {
	Metrics []Metric  `json:"metrics"`
	Spans   []SpanRec `json:"-"`
}

// matchFilters reports whether a key passes the config's prefix filters.
func (r *Registry) matchFilters(key string) bool {
	if len(r.cfg.Filters) == 0 {
		return true
	}
	for _, p := range r.cfg.Filters {
		if len(key) >= len(p) && key[:len(p)] == p {
			return true
		}
	}
	return false
}

// Snapshot serializes the registry. Nil registries snapshot to nil.
// Diagnostic-class metrics are excluded: they describe the execution
// configuration (shard counts, barrier stalls) and would break the
// byte-identity of metrics.json across -shards.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	keys := make([]string, 0, len(r.metrics))
	for k, m := range r.metrics {
		if m.class != Stable || !r.matchFilters(k) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := &Snapshot{Metrics: make([]Metric, 0, len(keys))}
	for _, k := range keys {
		m := r.metrics[k]
		out := Metric{Key: k, Type: m.kind}
		switch m.kind {
		case "counter":
			out.Value = m.counter.v
		case "gauge":
			out.Samples = m.gauge.samples
		case "histogram":
			out.Count = m.hist.total
			for i, le := range m.hist.bounds {
				if m.hist.counts[i] > 0 {
					out.Buckets = append(out.Buckets, Bucket{Le: le, N: m.hist.counts[i]})
				}
			}
			if over := m.hist.counts[len(m.hist.bounds)]; over > 0 {
				out.Buckets = append(out.Buckets, Bucket{Le: -1, N: over})
			}
		}
		s.Metrics = append(s.Metrics, out)
	}
	s.Spans = append(s.Spans, r.spans...)
	sort.SliceStable(s.Spans, func(i, j int) bool {
		a, b := s.Spans[i], s.Spans[j]
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Start < b.Start
	})
	return s
}

// Diagnostics returns the Diagnostic-class counters by key — the per-shard
// and barrier statistics excluded from the canonical snapshot — for tests
// and benchmark reporting.
func (r *Registry) Diagnostics() map[string]uint64 {
	if r == nil {
		return nil
	}
	out := make(map[string]uint64)
	for k, m := range r.metrics {
		if m.class == Diagnostic && m.kind == "counter" {
			out[k] = m.counter.v
		}
	}
	return out
}
