package telemetry

import "repro/internal/sim"

// Sampler drives virtual-time gauge sampling on an engine: once armed it
// fires every SamplePeriod, invokes its sample functions at the current
// virtual time, and re-arms only while the engine still holds other
// pending events — so a run's natural drain (Engine.Run returning when the
// queue empties) is never kept alive by its own telemetry.
//
// Sampling is part of the simulated event stream, so an enabled sampler
// changes engine event counts — deterministically, identically at every
// -workers and -shards value. The disabled path never creates one.
type Sampler struct {
	eng    *sim.Engine
	period sim.Time
	fns    []func(t sim.Time)
	armed  bool
}

// NewSampler builds a sampler on eng with the registry's period; nil on a
// nil registry.
func (r *Registry) NewSampler(eng *sim.Engine) *Sampler {
	if r == nil {
		return nil
	}
	return &Sampler{eng: eng, period: r.cfg.SamplePeriod}
}

// Add registers a sample function; a no-op on nil.
func (s *Sampler) Add(fn func(t sim.Time)) {
	if s != nil {
		s.fns = append(s.fns, fn)
	}
}

// Arm schedules the next sample one period from now. A no-op on nil or
// when already armed, so kernels can re-arm before every iteration without
// double-scheduling.
func (s *Sampler) Arm() {
	if s == nil || s.armed {
		return
	}
	s.armed = true
	s.eng.AfterHandler(s.period, s, 0, 0, nil)
}

// OnEvent fires one sampling tick and conditionally re-arms.
func (s *Sampler) OnEvent(e *sim.Engine, _ sim.Handle, _ uint64, _ int, _ any) {
	s.armed = false
	now := e.Now()
	for _, fn := range s.fns {
		fn(now)
	}
	// Re-arm only while the model still has work: after this event was
	// popped, any remaining queue entry belongs to the model (or to mail
	// already accepted), so sampling continues exactly until the run's
	// natural end.
	if _, ok := e.PeekTime(); ok {
		s.Arm()
	}
}
