package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/verbs"
)

// armCutoff starts the receive cutoff timer (§III-C): the ideal transfer
// time of the whole operation plus a slack alpha that absorbs RNR
// synchronization time and network noise. If the bitmap is incomplete when
// it fires, the slow-path recovery begins.
func (op *opState) armCutoff() {
	r := op.r
	if op.remaining == 0 {
		return
	}
	cfg := r.comm.f.Config()
	// Ideal transfer time of the whole operation: every root's buffer
	// (with header overhead) through one link. The chain schedule
	// serializes roots but does not add bytes, so this already covers the
	// full multicast phase; 2x margin plus alpha absorbs scheduling gaps,
	// synchronization and network noise (§III-C).
	wire := float64(op.roots) * float64(op.n) * (1 + float64(cfg.HeaderBytes)/float64(op.chunk))
	ideal := sim.Time(wire / cfg.LinkBandwidth * 1e9)
	d := 2*ideal + r.comm.cfg.CutoffAlpha
	op.cutoff = r.eng.AfterHandler(d, op, 0, opEvCutoff, nil)
}

// startRecovery scans the bitmap and asks the left ring neighbor for the
// missing chunks. One request is outstanding at a time; the neighbor
// answers with the subset it can serve (recursively recovering the rest
// itself), so the scheme degrades to the ring Allgather bound and never
// incasts the broadcast root (§III-C).
func (op *opState) startRecovery() {
	if op.rxDone || op.fetchWait {
		return
	}
	missing := op.bm.MissingRanges(nil)
	if len(missing) == 0 {
		op.maybeRxDone()
		return
	}
	op.recovering = true
	missing = capRanges(missing, (ctrlSlotBytes-4)/8)
	op.fetchWait = true
	op.rec(trace.PhaseRecovery, fmt.Sprintf("%d ranges missing", len(missing)))
	op.r.sendCtrl(op.r.left(), ctrlFetchReq, 0, marshalRanges(missing))
}

// capRanges bounds the number of ranges to fit a control slot by merging
// the tail into one covering range (over-fetching a few chunks the rank
// already has is harmless; the bitmap filters duplicates).
func capRanges(ranges [][2]int, max int) [][2]int {
	if len(ranges) <= max {
		return ranges
	}
	out := append([][2]int(nil), ranges[:max-1]...)
	out = append(out, [2]int{ranges[max-1][0], ranges[len(ranges)-1][1]})
	return out
}

// onFetchReq runs on the serving (left) side: answer with the requested
// ranges we already hold; if we hold none of them, defer until chunks
// arrive (via multicast or our own recovery).
func (op *opState) onFetchReq(m ctrlMsg) {
	ranges, err := unmarshalRanges(m.payload)
	if err != nil {
		panic(fmt.Sprintf("core: rank %d bad fetch request: %v", op.r.id, err))
	}
	avail := op.availableSubranges(ranges)
	if len(avail) == 0 {
		op.deferredReq = append(op.deferredReq, m)
		return
	}
	op.rec(trace.PhaseFetchServe, fmt.Sprintf("%d ranges -> rank %d", len(avail), m.from))
	op.r.sendCtrl(m.from, ctrlFetchAck, 0, marshalRanges(capRanges(avail, (ctrlSlotBytes-4)/8)))
}

// serveDeferred retries deferred fetch requests after new chunks arrive.
func (op *opState) serveDeferred() {
	if len(op.deferredReq) == 0 {
		return
	}
	pending := op.deferredReq
	op.deferredReq = nil
	for _, m := range pending {
		op.onFetchReq(m)
	}
}

// availableSubranges intersects the requested chunk ranges with the set of
// chunks present in the local bitmap.
func (op *opState) availableSubranges(ranges [][2]int) [][2]int {
	var out [][2]int
	for _, rg := range ranges {
		start := -1
		for c := rg[0]; c < rg[1] && c < op.total; c++ {
			if op.bm.Get(c) {
				if start < 0 {
					start = c
				}
				continue
			}
			if start >= 0 {
				out = append(out, [2]int{start, c})
				start = -1
			}
		}
		if start >= 0 {
			end := rg[1]
			if end > op.total {
				end = op.total
			}
			out = append(out, [2]int{start, end})
		}
	}
	return out
}

// onFetchAck runs on the requesting side: zero-copy RDMA Read each granted
// range from the left neighbor's receive buffer. Read targets use the
// symmetric rkey of the receive MR (exchanged at communicator setup).
func (op *opState) onFetchAck(m ctrlMsg) {
	ranges, err := unmarshalRanges(m.payload)
	if err != nil {
		panic(fmt.Sprintf("core: rank %d bad fetch ack: %v", op.r.id, err))
	}
	op.fetchWait = false
	qp := op.r.ctrl[op.r.left()]
	for _, rg := range ranges {
		// Split at root boundaries so each read is byte-contiguous, then
		// issue one RDMA Read per contiguous byte range.
		for _, sub := range op.splitAtRoots(rg) {
			off, _ := op.chunkByte(sub[0])
			lastOff, lastLen := op.chunkByte(sub[1] - 1)
			length := lastOff + lastLen - off
			idx := len(op.fetchReads)
			op.fetchReads = append(op.fetchReads, sub)
			op.fetchOut++
			qp.PostReadRC(fetchWrID(idx), op.recvMR, off, op.recvMR.Key, off, length)
		}
	}
	if op.fetchOut == 0 {
		// Neighbor granted nothing we still miss (raced with multicast
		// arrivals); re-evaluate.
		op.recheckRecovery()
	}
}

// splitAtRoots breaks a chunk range at root-buffer boundaries (needed when
// the send size is not a chunk multiple, so byte offsets are contiguous
// only within one root's region).
func (op *opState) splitAtRoots(rg [2]int) [][2]int {
	if op.kind == kindBroadcast {
		return [][2]int{rg}
	}
	var out [][2]int
	start := rg[0]
	for start < rg[1] {
		end := (start/op.cpr + 1) * op.cpr
		if end > rg[1] {
			end = rg[1]
		}
		out = append(out, [2]int{start, end})
		start = end
	}
	return out
}

// fetch work-request IDs are offset to distinguish them from other reads.
const fetchWrBase = 1 << 32

func fetchWrID(idx int) uint64 { return fetchWrBase + uint64(idx) }

func isFetchWr(id uint64) (int, bool) {
	if id >= fetchWrBase {
		return int(id - fetchWrBase), true
	}
	return 0, false
}

// onFetchRead accounts a completed recovery read: every chunk in the range
// is now present in the receive buffer.
func (op *opState) onFetchRead(idx int) {
	rg := op.fetchReads[idx]
	for c := rg[0]; c < rg[1]; c++ {
		if op.bm.Set(c) {
			op.remaining--
			op.recovered++
		}
	}
	op.fetchOut--
	op.serveDeferred()
	if op.fetchOut == 0 {
		op.recheckRecovery()
	}
}

// recheckRecovery continues the slow path until the bitmap is complete.
func (op *opState) recheckRecovery() {
	if op.remaining == 0 {
		op.maybeRxDone()
		return
	}
	// Still missing chunks: ask again (the neighbor's own recovery may have
	// progressed meanwhile; the hop-by-hop propagation guarantees progress
	// because every chunk exists at its root).
	op.startRecovery()
}

// handleFetchReadCQE routes OpRead completions from the control CQ.
func (r *Rank) handleFetchReadCQE(e verbs.CQE) bool {
	idx, ok := isFetchWr(e.WrID)
	if !ok || r.op == nil {
		return false
	}
	if e.Op == verbs.OpErr {
		panic(fmt.Sprintf("core: rank %d recovery read failed terminally", r.id))
	}
	r.op.onFetchRead(idx)
	return true
}
