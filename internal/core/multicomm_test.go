package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/verbs"
)

// buildShared creates two communicators over the same hosts sharing one
// cluster runtime.
func buildShared(t *testing.T, p int, cfg Config) (*sim.Engine, *Communicator, *Communicator) {
	t.Helper()
	eng := sim.NewEngine(23)
	g := topology.Star(p)
	f := fabric.New(eng, g, fabric.Config{})
	cl := cluster.New(f, cluster.Config{})
	c1, err := NewCommunicatorOn(cl, g.Hosts(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCommunicatorOn(cl, g.Hosts(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, c1, c2
}

func TestTwoCommunicatorsConcurrentDedicated(t *testing.T) {
	eng, c1, c2 := buildShared(t, 4, Config{Transport: verbs.UD, VerifyData: true})
	var r1, r2 *Result
	if err := c1.StartAllgather(40000, func(r *Result) { r1 = r }); err != nil {
		t.Fatal(err)
	}
	if err := c2.StartAllgather(60000, func(r *Result) { r2 = r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if r1 == nil || r2 == nil {
		t.Fatal("concurrent communicators did not both complete")
	}
	if err := c1.VerifyLast(); err != nil {
		t.Fatalf("comm1: %v", err)
	}
	if err := c2.VerifyLast(); err != nil {
		t.Fatalf("comm2: %v", err)
	}
}

func TestTwoCommunicatorsArbitratedRx(t *testing.T) {
	// The §V-C deployment: both communicators' subgroup CQs are served by
	// the host's shared arbiters (2 threads per host total, instead of
	// 2 communicators x 2 subgroups dedicated threads).
	cfg := Config{Transport: verbs.UD, Subgroups: 2, ArbitratedRx: true, VerifyData: true}
	eng, c1, c2 := buildShared(t, 4, cfg)
	var r1, r2 *Result
	if err := c1.StartAllgather(50000, func(r *Result) { r1 = r }); err != nil {
		t.Fatal(err)
	}
	if err := c2.StartAllgather(50000, func(r *Result) { r2 = r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if r1 == nil || r2 == nil {
		t.Fatal("arbitrated communicators did not both complete")
	}
	if err := c1.VerifyLast(); err != nil {
		t.Fatal(err)
	}
	if err := c2.VerifyLast(); err != nil {
		t.Fatal(err)
	}
}

func TestArbitratedRxUnderDrops(t *testing.T) {
	eng := sim.NewEngine(31)
	g := topology.Star(4)
	f := fabric.New(eng, g, fabric.Config{DropRate: 0.03})
	cl := cluster.New(f, cluster.Config{})
	comm, err := NewCommunicatorOn(cl, g.Hosts(), Config{
		Transport: verbs.UD, Subgroups: 2, ArbitratedRx: true,
		VerifyData: true, CutoffAlpha: 100 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comm.RunAllgather(100000); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
}

func TestArbitratedGeometryMismatchRejected(t *testing.T) {
	eng := sim.NewEngine(1)
	g := topology.Star(2)
	f := fabric.New(eng, g, fabric.Config{})
	cl := cluster.New(f, cluster.Config{})
	if _, err := NewCommunicatorOn(cl, g.Hosts(), Config{
		Transport: verbs.UD, Subgroups: 2, ArbitratedRx: true,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCommunicatorOn(cl, g.Hosts(), Config{
		Transport: verbs.UD, Subgroups: 4, ArbitratedRx: true,
	}); err == nil {
		t.Fatal("mismatched arbiter geometry accepted")
	}
}

func TestArbitratedOnDPA(t *testing.T) {
	eng := sim.NewEngine(5)
	g := topology.Star(4)
	f := fabric.New(eng, g, fabric.Config{})
	cl := cluster.New(f, cluster.Config{})
	comm, err := NewCommunicatorOn(cl, g.Hosts(), Config{
		Transport: verbs.UD, Subgroups: 2, ArbitratedRx: true, RxOnDPA: true,
		VerifyData: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comm.RunAllgather(65536); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
	if comm.Rank(0).dpa == nil {
		t.Fatal("DPA not instantiated for arbitrated offload")
	}
}

// Sequential collectives on two communicators interleaved: exercises the
// opSeq isolation across communicators sharing verbs contexts.
func TestInterleavedSequentialOps(t *testing.T) {
	eng, c1, c2 := buildShared(t, 3, Config{Transport: verbs.UD, VerifyData: true})
	for i := 0; i < 3; i++ {
		var done1, done2 bool
		if err := c1.StartBroadcast(i%3, 20000, func(*Result) { done1 = true }); err != nil {
			t.Fatal(err)
		}
		if err := c2.StartAllgather(10000, func(*Result) { done2 = true }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !done1 || !done2 {
			t.Fatalf("iteration %d incomplete", i)
		}
		if err := c1.VerifyLast(); err != nil {
			t.Fatal(err)
		}
		if err := c2.VerifyLast(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRNRPressureRecovered starves the receive queue (depth far below the
// in-flight chunk count) so genuine receiver-not-ready drops occur, and
// checks the slow path repairs them — the failure mode §III-C's barrier
// and worker scaling normally prevent.
func TestRNRPressureRecovered(t *testing.T) {
	eng := sim.NewEngine(13)
	g := topology.Star(4)
	f := fabric.New(eng, g, fabric.Config{})
	cl := cluster.New(f, cluster.Config{Verbs: verbs.Config{RQDepth: 8}})
	comm, err := NewCommunicatorOn(cl, g.Hosts(), Config{
		Transport: verbs.UD, RQDepth: 8, VerifyData: true,
		CutoffAlpha: 100 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := comm.RunAllgather(400000) // ~98 chunks per rank >> RQ depth 8
	if err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
	var rnr uint64
	for _, s := range res.PerRank {
		rnr += s.RNRDrops
	}
	if rnr == 0 {
		t.Fatal("expected RNR drops with an 8-deep receive queue")
	}
	if res.MaxRecovered() == 0 {
		t.Fatal("RNR drops occurred but nothing was recovered")
	}
}

// TestDropsAndReorderCombined stacks fabric drops on top of adaptive
// reordering — the harshest condition the protocol is designed for.
func TestDropsAndReorderCombined(t *testing.T) {
	eng := sim.NewEngine(77)
	g := topology.Star(4)
	f := fabric.New(eng, g, fabric.Config{
		DropRate:      0.03,
		ReorderJitter: 15 * sim.Microsecond,
	})
	cl := cluster.New(f, cluster.Config{})
	comm, err := NewCommunicatorOn(cl, g.Hosts(), Config{
		Transport: verbs.UD, Subgroups: 2, VerifyData: true,
		CutoffAlpha: 100 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := comm.RunAllgather(120000); err != nil {
			t.Fatal(err)
		}
		if err := comm.VerifyLast(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMemoryFootprint checks the §III-D accounting: one multicast QP per
// subgroup, O(log P) reliable connections, staging bounded by RQ depth x
// chunk, and a bitmap that grows only with the receive buffer.
func TestMemoryFootprint(t *testing.T) {
	eng := sim.NewEngine(3)
	g := topology.Star(8)
	f := fabric.New(eng, g, fabric.Config{})
	comm, err := NewCommunicator(f, g.Hosts(), Config{
		Transport: verbs.UD, Subgroups: 4, RQDepth: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comm.RunAllgather(1 << 20); err != nil {
		t.Fatal(err)
	}
	fp := comm.Footprint(0)
	if fp.DataQPs != 4 {
		t.Fatalf("data QPs = %d, want one per subgroup", fp.DataQPs)
	}
	// Dissemination peers at P=8: ±1, ±2, ±4 -> {1,2,4,6,7} plus ring
	// neighbors already included: 5 connections.
	if fp.CtrlQPs < 2 || fp.CtrlQPs > 2*4 {
		t.Fatalf("ctrl QPs = %d, want within [2, 2 log P]", fp.CtrlQPs)
	}
	if fp.StagingBytes != 4*1024*4096 {
		t.Fatalf("staging bytes = %d, want RQDepth x chunk per subgroup", fp.StagingBytes)
	}
	// 8 MiB receive buffer / 4 KiB chunks = 2048 bits = 256 bytes.
	if fp.BitmapBytes != 256 {
		t.Fatalf("bitmap bytes = %d, want 256", fp.BitmapBytes)
	}
}
