package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dpa"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/verbs"
)

// ctrl message types, encoded in the high nibble of the immediate.
const (
	ctrlBarrier  = 1 // arg = dissemination round
	ctrlActivate = 2 // chain token: receiver becomes the next root
	ctrlFinal    = 3 // final-handshake packet from the right neighbor
	ctrlFetchReq = 4 // payload: missing chunk ranges
	ctrlFetchAck = 5 // left neighbor has every requested chunk
)

// encodeCtrl packs (type, arg, opSeq) into a 32-bit immediate:
// [31:28] type, [27:16] arg, [15:0] sequence.
func encodeCtrl(typ, arg, seq int) uint32 {
	if typ < 0 || typ > 15 || arg < 0 || arg > 0xFFF || seq < 0 {
		panic("core: ctrl field out of range")
	}
	return uint32(typ)<<28 | uint32(arg)<<16 | uint32(seq&0xFFFF)
}

func decodeCtrl(imm uint32) (typ, arg, seq int) {
	return int(imm >> 28), int(imm >> 16 & 0xFFF), int(imm & 0xFFFF)
}

const (
	ctrlSlotBytes = 4096 // one receive slot: enough for ~500 fetch ranges
	ctrlSlots     = 64   // pre-posted receives per control QP
)

// Rank is the per-process runtime: verbs resources, worker threads, and
// the state of the in-flight collective.
type Rank struct {
	comm *Communicator
	id   int
	host topology.NodeID
	ctx  *verbs.Context
	// eng is the engine owning this rank's host — the primary shard on a
	// confined fabric, the host's own shard on a partitioned one. All of
	// the rank's protocol events (dispatch, timers, batch posts) run here.
	eng *sim.Engine

	cpu *dpa.Chip
	dpa *dpa.Chip // nil unless RxOnDPA

	appThread *dpa.Thread
	txThread  *dpa.Thread
	rxThreads []*dpa.Thread

	// Fast path, one entry per subgroup.
	dataQPs []*verbs.QP
	dataCQs []*verbs.CQ
	rxWkrs  []*dpa.Worker
	staging []*verbs.MR // UD only

	// Control plane.
	ctrlCQ   *verbs.CQ
	ctrl     map[int]*verbs.QP // peer rank -> RC QP
	qpPeer   map[verbs.QPN]int // local ctrl QPN -> peer rank
	appWkr   *dpa.Worker
	txCQ     *verbs.CQ
	txWkr    *dpa.Worker
	sendSlot *verbs.MR // ring of marshaling slots for outgoing ctrl payloads
	sendIdx  int
	slotMRs  map[verbs.QPN]*verbs.MR

	// Fetch ring RC QPs are the ctrl QPs to ring neighbors; reads target
	// the neighbor's receive MR whose rkey is exchanged at init (cached
	// per operation).
	op *opState

	// queued ctrl messages for operations that have not started locally.
	pendingCtrl []ctrlMsg

	// mrCache caches buffer registrations by size (§V-A initialization
	// optimizations).
	mrCache map[int]*verbs.MR

	// Stats aggregated across operations.
	TotalRecovered   int
	TotalRNRDrops    uint64
	TotalRetransmits uint64
}

type ctrlMsg struct {
	typ, arg, seq int
	from          int
	payload       []byte
}

func newRank(c *Communicator, id int, host topology.NodeID) (*Rank, error) {
	cfg := c.cfg
	node := c.cl.Node(host)
	r := &Rank{
		comm:    c,
		id:      id,
		host:    host,
		ctx:     node.Ctx,
		eng:     node.Ctx.Engine(),
		ctrl:    make(map[int]*verbs.QP),
		qpPeer:  make(map[verbs.QPN]int),
		slotMRs: make(map[verbs.QPN]*verbs.MR),
		mrCache: make(map[int]*verbs.MR),
		ctrlCQ:  &verbs.CQ{},
		txCQ:    &verbs.CQ{},
	}
	r.cpu = node.CPU
	r.appThread = r.cpu.AllocThreads(1)[0]
	r.txThread = r.cpu.AllocThreads(1)[0]

	rxProfile := r.rxProfile()
	var arbiters []*dpa.Arbiter
	if cfg.ArbitratedRx {
		var err error
		arbiters, err = node.RxArbiters(cfg.Subgroups, cfg.RxOnDPA, rxProfile)
		if err != nil {
			return nil, err
		}
		if cfg.RxOnDPA {
			r.dpa = node.DPA()
		}
	} else {
		rxChip := r.cpu
		if cfg.RxOnDPA {
			r.dpa = node.DPA()
			rxChip = r.dpa
		}
		r.rxThreads = rxChip.AllocThreads(cfg.Subgroups)
	}

	// Fast-path QPs: one per subgroup, each with its own CQ, served either
	// by a dedicated worker or by the host's shared arbiter.
	for s := 0; s < cfg.Subgroups; s++ {
		cq := &verbs.CQ{}
		var qp *verbs.QP
		// Send completions go to the TX worker's CQ, receive completions to
		// the subgroup CQ: flow-direction parallelism (§IV-B).
		if cfg.Transport == verbs.UD {
			qp = r.ctx.NewQP(verbs.UD, r.txCQ, cq, cfg.RQDepth)
		} else {
			qp = r.ctx.NewQP(verbs.UC, r.txCQ, cq, cfg.RQDepth)
			qp.Connect(verbs.Multicast(c.groups[s]))
		}
		if err := qp.AttachMcast(c.groups[s]); err != nil {
			return nil, fmt.Errorf("core: rank %d subgroup %d: %w", id, s, err)
		}
		r.dataQPs = append(r.dataQPs, qp)
		r.dataCQs = append(r.dataCQs, cq)
		s := s
		if cfg.ArbitratedRx {
			arbiters[s].Subscribe(cq, func(e verbs.CQE) { r.handleData(s, e) })
		} else {
			w := dpa.NewWorker(r.eng, r.rxThreads[s], cq, rxProfile)
			w.Handle = func(e verbs.CQE) { r.handleData(s, e) }
			r.rxWkrs = append(r.rxWkrs, w)
			w.Start()
		}

		if cfg.Transport == verbs.UD {
			st := r.registerBuf(cfg.RQDepth * cfg.ChunkBytes)
			r.staging = append(r.staging, st)
		}
	}

	// Control workers.
	r.appWkr = dpa.NewWorker(r.eng, r.appThread, r.ctrlCQ, dpa.TaskDispatch)
	r.appWkr.Handle = func(e verbs.CQE) { r.handleCtrl(e) }
	r.appWkr.Start()
	r.txWkr = dpa.NewWorker(r.eng, r.txThread, r.txCQ, dpa.SendPost)
	r.txWkr.Handle = func(e verbs.CQE) { r.handleTxComp(e) }
	r.txWkr.Start()

	r.sendSlot = r.ctx.RegisterMRData(make([]byte, ctrlSlots*ctrlSlotBytes))
	return r, nil
}

// rxProfile selects the receive-kernel cost model for this rank's
// transport and execution substrate.
func (r *Rank) rxProfile() dpa.Profile {
	switch {
	case r.comm.cfg.RxOnDPA && r.comm.cfg.Transport == verbs.UD:
		return dpa.DPAUDRecv
	case r.comm.cfg.RxOnDPA:
		return dpa.DPAUCRecv
	case r.comm.cfg.Transport == verbs.UD:
		return dpa.CPUUDRecv
	default:
		return dpa.CPURCRecv
	}
}

// registerBuf registers a buffer of the given size, with real bytes when
// the communicator runs in verification mode.
func (r *Rank) registerBuf(size int) *verbs.MR {
	if r.comm.cfg.VerifyData {
		return r.ctx.RegisterMRData(make([]byte, size))
	}
	return r.ctx.RegisterMR(size)
}

// cachedMR returns a (possibly shared) registration of the given size,
// modeling the registration cache of §V-A. Buffers are reused across
// operations of the same size.
func (r *Rank) cachedMR(size int) *verbs.MR {
	if mr, ok := r.mrCache[size]; ok {
		return mr
	}
	mr := r.registerBuf(size)
	r.mrCache[size] = mr
	return mr
}

// prepostCtrl fills a control QP's receive queue with slot buffers.
// Control buffers always carry real bytes: fetch-request payloads must be
// parseable regardless of the data-verification mode.
func (r *Rank) prepostCtrl(qp *verbs.QP) {
	mr := r.ctx.RegisterMRData(make([]byte, ctrlSlots*ctrlSlotBytes))
	r.slotMRs[qp.N] = mr
	for i := 0; i < ctrlSlots; i++ {
		if !qp.PostRecv(uint64(i), mr, i*ctrlSlotBytes, ctrlSlotBytes) {
			panic("core: control RQ shallower than ctrlSlots")
		}
	}
}

// sendCtrl transmits a small reliable control message to a peer rank.
// payload may be nil. The send is unsignaled: control-path completions are
// not interesting, reliability is the transport's job.
func (r *Rank) sendCtrl(peer, typ, arg int, payload []byte) {
	qp, ok := r.ctrl[peer]
	if !ok {
		panic(fmt.Sprintf("core: rank %d has no control QP to %d", r.id, peer))
	}
	n := len(payload)
	if n > ctrlSlotBytes {
		panic("core: control payload exceeds slot")
	}
	// Rotate marshaling slots so concurrent in-flight control payloads do
	// not overwrite each other before delivery.
	off := r.sendIdx * ctrlSlotBytes
	r.sendIdx = (r.sendIdx + 1) % ctrlSlots
	if n > 0 && r.sendSlot.Data != nil {
		copy(r.sendSlot.Data[off:off+n], payload)
	}
	qp.PostSendRC(0, r.sendSlot, off, n, encodeCtrl(typ, arg, r.opSeqFor(typ)), false)
}

// opSeqFor returns the sequence number stamped on outgoing messages: the
// current operation's.
func (r *Rank) opSeqFor(int) int {
	if r.op == nil {
		panic("core: control send with no active operation")
	}
	return r.op.seq & 0xFFFF
}

// handleCtrl runs on the app worker for every control-plane completion.
func (r *Rank) handleCtrl(e verbs.CQE) {
	if e.Op == verbs.OpRead || e.Op == verbs.OpErr {
		r.handleFetchReadCQE(e)
		return
	}
	if e.Op != verbs.OpRecv {
		return // stray send completion; ctrl sends are unsignaled
	}
	peer, ok := r.qpPeerOf(e.QPN)
	if !ok {
		panic("core: ctrl completion on unknown QP")
	}
	typ, arg, seq := decodeCtrl(e.Imm)
	var payload []byte
	if e.Bytes > 0 {
		mr := r.slotMRs[e.QPN]
		if mr.Data != nil {
			slot := int(e.WrID)
			payload = append([]byte(nil), mr.Data[slot*ctrlSlotBytes:slot*ctrlSlotBytes+e.Bytes]...)
		}
	}
	// Re-post the consumed slot immediately.
	mr := r.slotMRs[e.QPN]
	r.ctrlQPByN(e.QPN).PostRecv(e.WrID, mr, int(e.WrID)*ctrlSlotBytes, ctrlSlotBytes)

	msg := ctrlMsg{typ: typ, arg: arg, seq: seq, from: peer, payload: payload}
	r.deliverCtrl(msg)
}

// deliverCtrl dispatches a control message to the active operation, or
// queues it if that operation has not started locally yet (messages can
// arrive from ranks that are ahead of us).
func (r *Rank) deliverCtrl(m ctrlMsg) {
	if r.op == nil || !r.op.begun || m.seq != r.op.seq&0xFFFF {
		r.pendingCtrl = append(r.pendingCtrl, m)
		return
	}
	r.op.handleCtrl(m)
}

// OnEvent runs the rank's deferred operation dispatch (the app-thread
// task-queue handoff scheduled by Communicator.start).
func (r *Rank) OnEvent(_ *sim.Engine, _ sim.Handle, _ uint64, _ int, _ any) {
	r.op.begin()
	r.drainPendingCtrl()
}

// drainPendingCtrl replays queued messages that belong to the (newly
// started) current operation.
func (r *Rank) drainPendingCtrl() {
	if len(r.pendingCtrl) == 0 {
		return
	}
	var rest []ctrlMsg
	for _, m := range r.pendingCtrl {
		if r.op != nil && r.op.begun && m.seq == r.op.seq&0xFFFF {
			r.op.handleCtrl(m)
		} else {
			rest = append(rest, m)
		}
	}
	r.pendingCtrl = rest
}

func (r *Rank) qpPeerOf(n verbs.QPN) (int, bool) {
	if p, ok := r.qpPeer[n]; ok {
		return p, true
	}
	// Lazy index build: ctrl map is small.
	for peer, qp := range r.ctrl {
		r.qpPeer[qp.N] = peer
	}
	p, ok := r.qpPeer[n]
	return p, ok
}

func (r *Rank) ctrlQPByN(n verbs.QPN) *verbs.QP {
	for _, qp := range r.ctrl {
		if qp.N == n {
			return qp
		}
	}
	panic("core: unknown ctrl QPN")
}

// ID returns the rank index within the communicator.
func (r *Rank) ID() int { return r.id }

// Host returns the topology node this rank runs on.
func (r *Rank) Host() topology.NodeID { return r.host }

// Context exposes the rank's verbs context (tests, harnesses).
func (r *Rank) Context() *verbs.Context { return r.ctx }

// left and right ring neighbors.
func (r *Rank) left() int  { p := r.comm.Size(); return (r.id - 1 + p) % p }
func (r *Rank) right() int { return (r.id + 1) % r.comm.Size() }

// marshalRanges encodes [start,end) chunk ranges for a fetch request.
func marshalRanges(ranges [][2]int) []byte {
	buf := make([]byte, 4+8*len(ranges))
	binary.LittleEndian.PutUint32(buf, uint32(len(ranges)))
	for i, rg := range ranges {
		binary.LittleEndian.PutUint32(buf[4+8*i:], uint32(rg[0]))
		binary.LittleEndian.PutUint32(buf[8+8*i:], uint32(rg[1]))
	}
	return buf
}

func unmarshalRanges(b []byte) ([][2]int, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("core: short fetch payload")
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) < 4+8*n {
		return nil, fmt.Errorf("core: truncated fetch payload (%d ranges, %d bytes)", n, len(b))
	}
	out := make([][2]int, n)
	for i := 0; i < n; i++ {
		out[i][0] = int(binary.LittleEndian.Uint32(b[4+8*i:]))
		out[i][1] = int(binary.LittleEndian.Uint32(b[8+8*i:]))
	}
	return out, nil
}
