package core

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/dpa"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/verbs"
)

type opKind uint8

const (
	kindBroadcast opKind = iota
	kindAllgather
	kindBarrier
)

func (k opKind) String() string {
	switch k {
	case kindBroadcast:
		return "broadcast"
	case kindAllgather:
		return "allgather"
	default:
		return "barrier"
	}
}

// opState is the per-rank state of one in-flight collective.
type opState struct {
	r    *Rank
	seq  int
	kind opKind
	root int // broadcast root rank (ignored for allgather)

	n     int // send-buffer bytes per root
	chunk int // fragmentation unit
	cpr   int // chunks per root
	total int // chunks in the whole operation
	roots int // number of transmitting ranks

	sendMR *verbs.MR
	recvMR *verbs.MR

	bm        *bitmap.Bitmap
	remaining int
	dmaOut    int

	isRoot    bool
	begun     bool
	pendAct   bool // activation token arrived before our barrier finished
	txStarted bool
	txDone    bool
	rxDone    bool
	finalRecv bool
	done      bool

	// TX progress.
	txNext int

	// Slow path.
	cutoff      sim.Handle
	recovering  bool
	fetchWait   bool // request sent to the left neighbor, ack pending
	fetchReads  [][2]int
	fetchOut    int
	deferredReq []ctrlMsg
	recovered   int

	// Dissemination barrier.
	barRound int
	barGot   []bool

	// Timestamps for the Figure 10 critical-path breakdown.
	tStart   sim.Time
	tBarrier sim.Time
	tTxStart sim.Time
	tTxDone  sim.Time
	tRxDone  sim.Time
	tDone    sim.Time

	cb func(*Rank)
}

// rec traces a phase transition (no-op when tracing is off).
func (op *opState) rec(phase, detail string) {
	op.r.comm.cfg.Tracer.Record(op.r.eng.Now(), op.r.id, op.seq, phase, detail)
	if m := op.r.comm.cfg.Metrics; m != nil {
		m.Counter("core", "phase_total", "phase="+phase, telemetry.Stable).Add(1)
	}
}

// psn/immediate encoding: [31:24] low bits of the operation sequence (the
// "collective ID" of the paper's footnote 3), [23:0] the chunk PSN.
const maxPSNChunks = 1 << 24

func (op *opState) encPSN(psn int) uint32 {
	return uint32(op.seq&0xFF)<<24 | uint32(psn)
}

func decPSN(imm uint32) (seqLow, psn int) {
	return int(imm >> 24), int(imm & 0xFFFFFF)
}

// chunkSrc returns the root rank that owns global chunk psn.
func (op *opState) chunkSrc(psn int) int {
	if op.kind == kindBroadcast {
		return op.root
	}
	return psn / op.cpr
}

// chunkByte returns the byte range [off, off+len) of chunk psn in the
// receive buffer.
func (op *opState) chunkByte(psn int) (off, length int) {
	src := op.chunkSrc(psn)
	local := psn
	if op.kind == kindAllgather {
		local = psn % op.cpr
	}
	off = local * op.chunk
	length = op.n - off
	if length > op.chunk {
		length = op.chunk
	}
	if op.kind == kindAllgather {
		off += src * op.n
	}
	return off, length
}

// subgroupOf maps a root-local chunk index to its multicast subgroup.
func (op *opState) subgroupOf(local int) int { return local % op.r.comm.cfg.Subgroups }

// ranksPerChain returns R0, the length of each broadcast chain.
func (op *opState) ranksPerChain() int {
	p := op.r.comm.Size()
	m := op.r.comm.cfg.Chains
	return (p + m - 1) / m
}

// chainHead reports whether this rank starts its chain unprompted.
func (op *opState) chainHead() bool {
	return op.kind == kindAllgather && op.r.id%op.ranksPerChain() == 0
}

// chainNext returns the rank to activate after this one finishes
// multicasting, or -1 at the end of the chain.
func (op *opState) chainNext() int {
	if op.kind != kindAllgather {
		return -1
	}
	r0 := op.ranksPerChain()
	next := op.r.id + 1
	if next%r0 == 0 || next >= op.r.comm.Size() {
		return -1
	}
	return next
}

// begin runs on the app thread once the operation is dispatched: register
// buffers, pre-post receives, copy local data, then enter the RNR barrier.
func (op *opState) begin() {
	r := op.r
	op.tStart = r.eng.Now()
	op.rec(trace.PhaseDispatch, op.kind.String())

	// Pre-post the receive queues (UD fast path) before synchronizing, so
	// no multicast datagram can find an empty RQ (§III-C RNR avoidance).
	if op.kind != kindBarrier && r.comm.cfg.Transport == verbs.UD {
		op.prepostData()
	}

	// Local shard: an allgather rank copies its own send buffer into its
	// slot of the receive buffer without touching the network; a broadcast
	// root owns every chunk from the start.
	switch {
	case op.kind == kindBarrier:
		op.remaining = 0
	case op.kind == kindAllgather:
		base := r.id * op.cpr
		for l := 0; l < op.cpr; l++ {
			op.bm.Set(base + l)
		}
		op.remaining = op.total - op.cpr
		op.dmaOut++
		if op.sendMR.Data != nil && op.recvMR.Data != nil {
			copy(op.recvMR.Data[r.id*op.n:r.id*op.n+op.n], op.sendMR.Data[:op.n])
		}
		r.ctx.DMA().Enqueue(op.n, func() {
			op.dmaOut--
			op.maybeRxDone()
		})
	case op.isRoot:
		for l := 0; l < op.cpr; l++ {
			op.bm.Set(l)
		}
		op.remaining = 0
		if op.sendMR != op.recvMR && op.sendMR.Data != nil && op.recvMR.Data != nil {
			copy(op.recvMR.Data[:op.n], op.sendMR.Data[:op.n])
		}
	default:
		op.remaining = op.total
	}

	op.startBarrier()
}

// prepostData fills each subgroup QP's receive queue with staging slots.
func (op *opState) prepostData() {
	r := op.r
	cfg := r.comm.cfg
	for s := 0; s < cfg.Subgroups; s++ {
		expected := op.expectedChunks(s)
		if expected > cfg.RQDepth {
			expected = cfg.RQDepth
		}
		for slot := 0; slot < expected; slot++ {
			if !r.dataQPs[s].PostRecv(uint64(slot), r.staging[s], slot*op.chunk, op.chunk) {
				break // RQ still holds surplus receives from a previous op
			}
		}
	}
}

// expectedChunks returns how many chunks this rank will receive on
// subgroup s.
func (op *opState) expectedChunks(s int) int {
	perRoot := 0
	subgroups := op.r.comm.cfg.Subgroups
	for l := s; l < op.cpr; l += subgroups {
		perRoot++
	}
	senders := op.roots
	if op.isRoot {
		senders-- // never receives its own multicast
	}
	return perRoot * senders
}

// --- barrier ----------------------------------------------------------------

// startBarrier begins the dissemination barrier that implements RNR
// synchronization: ceil(log2 P) rounds; in round k the rank signals
// (id + 2^k) mod P and waits for (id - 2^k) mod P.
func (op *opState) startBarrier() {
	p := op.r.comm.Size()
	rounds := 0
	for d := 1; d < p; d *= 2 {
		rounds++
	}
	op.barGot = make([]bool, rounds)
	op.barRound = 0
	op.begun = true
	if rounds == 0 {
		op.barrierDone()
		return
	}
	op.r.sendCtrl((op.r.id+1)%p, ctrlBarrier, 0, nil)
	op.advanceBarrier()
}

func (op *opState) onBarrierMsg(round int) {
	if round < len(op.barGot) {
		op.barGot[round] = true
	}
	op.advanceBarrier()
}

func (op *opState) advanceBarrier() {
	p := op.r.comm.Size()
	for op.barRound < len(op.barGot) && op.barGot[op.barRound] {
		op.barRound++
		if op.barRound < len(op.barGot) {
			d := 1 << op.barRound
			op.r.sendCtrl((op.r.id+d)%p, ctrlBarrier, op.barRound, nil)
		}
	}
	if op.barRound == len(op.barGot) && op.tBarrier == 0 {
		op.barrierDone()
	}
}

// barrierDone transitions into the multicast phase: arm the cutoff timer,
// and start transmitting if this rank is an initial root.
func (op *opState) barrierDone() {
	op.tBarrier = op.r.eng.Now()
	op.rec(trace.PhaseBarrier, "")
	op.armCutoff()
	if op.isRoot && (op.kind == kindBroadcast || op.chainHead() || op.pendAct) {
		op.startTX()
	}
	// Degenerate cases (single rank, broadcast root) may already be done.
	op.maybeRxDone()
}

// --- TX ---------------------------------------------------------------------

// startTX begins the root datapath: fragment the send buffer and post
// multicast sends in doorbell batches, only the last send of each batch
// signaled (§V-A). The next batch is posted when that completion arrives,
// pacing injection at wire speed.
func (op *opState) startTX() {
	if op.txStarted {
		return
	}
	op.txStarted = true
	op.tTxStart = op.r.eng.Now()
	op.rec(trace.PhaseTxStart, fmt.Sprintf("%d chunks", op.cpr))
	op.postBatch()
}

func (op *opState) postBatch() {
	r := op.r
	cfg := r.comm.cfg
	b := cfg.SendBatch
	if rest := op.cpr - op.txNext; b > rest {
		b = rest
	}
	if b <= 0 {
		op.txComplete()
		return
	}
	t := r.eng.Now()
	for i := 0; i < b; i++ {
		local := op.txNext
		op.txNext++
		signaled := 0
		if i == b-1 {
			signaled = 1
		}
		t = r.txThread.Run(dpa.SendPost, t)
		r.eng.AtHandler(t, op, uint64(local), signaled, nil)
	}
}

// Event kinds dispatched through opState.OnEvent (arg1 on the cutoff path).
const opEvCutoff = -1

// OnEvent is the op's closure-free timer dispatch: the per-chunk TX posts
// (arg0 = local chunk index, arg1 = signaled flag) and the receive cutoff
// (arg1 == opEvCutoff).
func (op *opState) OnEvent(_ *sim.Engine, _ sim.Handle, arg0 uint64, arg1 int, _ any) {
	if arg1 == opEvCutoff {
		op.startRecovery()
		return
	}
	op.postChunk(int(arg0), arg1 == 1)
}

// postChunk injects one multicast chunk on its subgroup QP.
func (op *opState) postChunk(local int, signaled bool) {
	r := op.r
	s := op.subgroupOf(local)
	off := local * op.chunk
	length := op.n - off
	if length > op.chunk {
		length = op.chunk
	}
	psn := local
	if op.kind == kindAllgather {
		psn = r.id*op.cpr + local
	}
	imm := op.encPSN(psn)
	qp := r.dataQPs[s]
	if r.comm.cfg.Transport == verbs.UD {
		qp.PostSendUD(uint64(local), verbs.Multicast(r.comm.groups[s]), op.sendMR, off, length, imm, signaled)
		return
	}
	roff, _ := op.chunkByte(psn)
	qp.PostWriteUC(uint64(local), op.sendMR, off, length, op.recvMR.Key, roff, imm, signaled)
}

// handleTxComp runs on the TX worker for each signaled send completion:
// post the next batch, or finish the send path.
func (r *Rank) handleTxComp(e verbs.CQE) {
	op := r.op
	if op == nil || !op.txStarted || op.txDone {
		return
	}
	if op.txNext < op.cpr {
		op.postBatch()
		return
	}
	op.txComplete()
}

// txComplete marks the send path finished and passes the chain activation
// token to the successor root (§IV-A).
func (op *opState) txComplete() {
	if op.txDone {
		return
	}
	op.txDone = true
	op.tTxDone = op.r.eng.Now()
	op.rec(trace.PhaseTxDone, "")
	if next := op.chainNext(); next >= 0 {
		op.rec(trace.PhaseActivate, fmt.Sprintf("-> rank %d", next))
		op.r.sendCtrl(next, ctrlActivate, 0, nil)
	}
	op.checkDone()
}

// --- RX ---------------------------------------------------------------------

// handleData runs on a receive worker for every fast-path completion.
func (r *Rank) handleData(s int, e verbs.CQE) {
	op := r.op
	switch e.Op {
	case verbs.OpRecv: // UD datagram into the staging ring
		if op != nil && r.comm.cfg.Transport == verbs.UD {
			// Re-post the consumed slot first (keeping the RQ primed), then
			// account the chunk.
			slot := int(e.WrID)
			r.dataQPs[s].PostRecv(e.WrID, r.staging[s], slot*op.chunk, op.chunk)
			seqLow, psn := decPSN(e.Imm)
			if seqLow != op.seq&0xFF {
				return // stale datagram from a previous collective
			}
			op.chunkArrivedUD(s, slot, psn, e.Bytes)
		}
	case verbs.OpRecvWriteImm: // UC zero-copy placement
		if op == nil {
			return
		}
		seqLow, psn := decPSN(e.Imm)
		if seqLow != op.seq&0xFF {
			return
		}
		op.chunkArrived(psn)
	}
}

// chunkArrivedUD accounts a UD chunk: bitmap update plus the non-blocking
// staging-to-user DMA copy (step 4 of Figure 6).
func (op *opState) chunkArrivedUD(s, slot, psn, bytes int) {
	if psn >= op.total {
		panic(fmt.Sprintf("core: PSN %d out of range (%d chunks)", psn, op.total))
	}
	if !op.bm.Set(psn) {
		return // duplicate (e.g. multicast raced the fetch path)
	}
	op.remaining--
	off, length := op.chunkByte(psn)
	if length > bytes {
		length = bytes
	}
	// The copy content is taken now (the slot is re-posted); the DMA engine
	// charges the bandwidth/latency and defers completion accounting.
	if st := op.r.staging[s]; st.Data != nil && op.recvMR.Data != nil {
		copy(op.recvMR.Data[off:off+length], st.Data[slot*op.chunk:slot*op.chunk+length])
	}
	op.dmaOut++
	op.r.ctx.DMA().Enqueue(length, func() {
		op.dmaOut--
		op.maybeRxDone()
	})
	op.serveDeferred()
	op.maybeRxDone()
}

// chunkArrived accounts a UC chunk already placed zero-copy in the user
// buffer by the NIC.
func (op *opState) chunkArrived(psn int) {
	if psn >= op.total {
		panic(fmt.Sprintf("core: PSN %d out of range (%d chunks)", psn, op.total))
	}
	if !op.bm.Set(psn) {
		return
	}
	op.remaining--
	op.serveDeferred()
	op.maybeRxDone()
}

// maybeRxDone fires the receive-complete transition: every chunk present
// and all staging copies drained.
func (op *opState) maybeRxDone() {
	if op.rxDone || op.remaining != 0 || op.dmaOut != 0 || op.fetchOut != 0 {
		return
	}
	if op.tBarrier == 0 {
		return // never complete before RNR synchronization
	}
	op.rxDone = true
	op.tRxDone = op.r.eng.Now()
	op.rec(trace.PhaseRxDone, "")
	op.cutoff.Cancel()
	// Final handshake: tell the left neighbor we have everything.
	if op.r.comm.Size() > 1 {
		op.rec(trace.PhaseFinal, fmt.Sprintf("-> rank %d", op.r.left()))
		op.r.sendCtrl(op.r.left(), ctrlFinal, 0, nil)
	} else {
		op.finalRecv = true
	}
	op.serveDeferred()
	op.checkDone()
}

// checkDone completes the operation when the receive path, send path and
// final handshake have all finished.
func (op *opState) checkDone() {
	if op.done || !op.rxDone || !op.finalRecv {
		return
	}
	if op.isRoot && !op.txDone {
		return
	}
	op.done = true
	op.tDone = op.r.eng.Now()
	op.rec(trace.PhaseDone, "")
	r := op.r
	for _, qp := range r.dataQPs {
		qp.GCAssembly()
	}
	r.TotalRecovered += op.recovered
	if op.cb != nil {
		op.cb(r)
	}
}

// handleCtrl dispatches control-plane messages for this operation.
func (op *opState) handleCtrl(m ctrlMsg) {
	switch m.typ {
	case ctrlBarrier:
		op.onBarrierMsg(m.arg)
	case ctrlActivate:
		if !op.isRoot {
			panic("core: activation token delivered to a non-root")
		}
		if op.tBarrier == 0 {
			op.pendAct = true // predecessor outpaced our barrier tail
			return
		}
		op.startTX()
	case ctrlFinal:
		op.finalRecv = true
		op.checkDone()
	case ctrlFetchReq:
		op.onFetchReq(m)
	case ctrlFetchAck:
		op.onFetchAck(m)
	default:
		panic(fmt.Sprintf("core: unknown ctrl type %d", m.typ))
	}
}
