package core

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/verbs"
)

// TestAppendixASchedule verifies the broadcast-sequencer schedule: with M
// chains over P ranks (R = P/M steps), the active group at step i is
// G_i = {P_i, P_{R+i}, ..., P_{(M-1)R+i}} — i.e. within every chain the
// ranks start transmitting in strictly increasing order, and chain heads
// start without waiting for other chains.
func TestAppendixASchedule(t *testing.T) {
	const p, m = 8, 2
	r0 := p / m // ranks per chain
	_, _, comm := buildComm(t, p, fabric.Config{}, Config{Transport: verbs.UD, Chains: m})
	if _, err := comm.RunAllgather(1 << 20); err != nil {
		t.Fatal(err)
	}
	start := make([]sim.Time, p)
	for i := 0; i < p; i++ {
		op := comm.Rank(i).op
		if !op.txStarted {
			t.Fatalf("rank %d never transmitted", i)
		}
		start[i] = op.tTxStart
	}
	// Within each chain, transmission starts in rank order.
	for c := 0; c < m; c++ {
		for i := 1; i < r0; i++ {
			prev, cur := c*r0+i-1, c*r0+i
			if start[cur] <= start[prev] {
				t.Fatalf("chain %d: rank %d started (%v) before its predecessor %d (%v)",
					c, cur, start[cur], prev, start[prev])
			}
		}
	}
	// Chain heads start long before the other chain's later members: the
	// chains run in parallel, not serialized after one another.
	if start[r0] >= start[r0-1] {
		t.Fatalf("second chain head (%v) waited for the first chain's tail (%v)",
			start[r0], start[r0-1])
	}
}

// TestConstantSendBandwidth verifies Insight 1: the per-rank send-path
// volume of the multicast Allgather stays ~constant as P grows, while a
// ring's grows linearly.
func TestConstantSendBandwidth(t *testing.T) {
	uplinkBytes := func(p int) float64 {
		eng := sim.NewEngine(5)
		g, err := topology.TwoLevelFatTree(topology.FatTreeSpec{Hosts: p, HostsPerLeaf: 4, Spines: 2})
		if err != nil {
			t.Fatal(err)
		}
		f := fabric.New(eng, g, fabric.Config{})
		comm, err := NewCommunicator(f, g.Hosts(), Config{Transport: verbs.UD})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := comm.RunAllgather(1 << 18); err != nil {
			t.Fatal(err)
		}
		h := g.Hosts()[0]
		return float64(f.ChannelStats(h, g.LeafOf(h)).Bytes)
	}
	small, large := uplinkBytes(8), uplinkBytes(16)
	// Doubling P must not meaningfully change the send-path volume
	// (payload is fixed at N; only control traffic grows, logarithmically).
	if large > small*1.2 {
		t.Fatalf("send-path volume grew from %.3g to %.3g when P doubled; want ~constant", small, large)
	}
	// And it is ~N, not N*(P-1).
	wire := float64(1<<18) * (1 + 64.0/4096.0)
	if small > wire*1.25 {
		t.Fatalf("rank 0 injected %.3g bytes, want ≈N=%.3g (Insight 1)", small, wire)
	}
}

// TestConstantTimeBroadcast verifies the "constant-time" property: for a
// fixed buffer, broadcast duration is nearly independent of the number of
// leaves (only synchronization grows, logarithmically).
func TestConstantTimeBroadcast(t *testing.T) {
	duration := func(p int) sim.Time {
		eng := sim.NewEngine(9)
		g, err := topology.TwoLevelFatTree(topology.FatTreeSpec{Hosts: p, HostsPerLeaf: 4, Spines: 2})
		if err != nil {
			t.Fatal(err)
		}
		f := fabric.New(eng, g, fabric.Config{})
		comm, err := NewCommunicator(f, g.Hosts(), Config{Transport: verbs.UD})
		if err != nil {
			t.Fatal(err)
		}
		res, err := comm.RunBroadcast(0, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration()
	}
	d4, d16 := duration(4), duration(16)
	if float64(d16) > 1.25*float64(d4) {
		t.Fatalf("broadcast time grew %v -> %v when P quadrupled; want ~constant", d4, d16)
	}
}

// TestRingSendBandwidthGrowsLinearly is the contrast case for Insight 1,
// pinning the baseline behaviour the paper improves on.
func TestRingSendBandwidthGrowsLinearly(t *testing.T) {
	// Verified through the analytic expectation: each rank forwards P-1
	// blocks; rank 0's uplink carries (P-1)*N bytes.
	// (The coll package measures this directly; here we check the mcast
	// allgather's receive path still scales with P as it must.)
	recvBytes := func(p int) float64 {
		eng := sim.NewEngine(5)
		g, err := topology.TwoLevelFatTree(topology.FatTreeSpec{Hosts: p, HostsPerLeaf: 4, Spines: 2})
		if err != nil {
			t.Fatal(err)
		}
		f := fabric.New(eng, g, fabric.Config{})
		comm, err := NewCommunicator(f, g.Hosts(), Config{Transport: verbs.UD})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := comm.RunAllgather(1 << 18); err != nil {
			t.Fatal(err)
		}
		h := g.Hosts()[0]
		return float64(f.ChannelStats(g.LeafOf(h), h).Bytes)
	}
	small, large := recvBytes(8), recvBytes(16)
	ratio := large / small
	// (16-1)/(8-1) = 2.14.
	if ratio < 1.9 || ratio > 2.4 {
		t.Fatalf("receive-path growth ratio %.2f, want ≈2.14 (scales with P-1)", ratio)
	}
}

// TestFig9ExecutionFlow validates the per-rank phase sequence of Figure 9
// through the trace recorder: dispatch -> RNR sync -> (TX|RX phases) ->
// final handshake -> done, with recovery absent on a lossless fabric.
func TestFig9ExecutionFlow(t *testing.T) {
	rec := &trace.Recorder{}
	eng := sim.NewEngine(11)
	g := topology.Star(4)
	f := fabric.New(eng, g, fabric.Config{})
	comm, err := NewCommunicator(f, g.Hosts(), Config{Transport: verbs.UD, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comm.RunAllgather(65536); err != nil {
		t.Fatal(err)
	}
	for rk := 0; rk < 4; rk++ {
		phases := rec.Phases(rk)
		idx := func(p string) int {
			for i, q := range phases {
				if q == p {
					return i
				}
			}
			return -1
		}
		for _, p := range []string{trace.PhaseDispatch, trace.PhaseBarrier,
			trace.PhaseTxStart, trace.PhaseTxDone, trace.PhaseRxDone,
			trace.PhaseFinal, trace.PhaseDone} {
			if idx(p) < 0 {
				t.Fatalf("rank %d missing phase %s: %v", rk, p, phases)
			}
		}
		if !(idx(trace.PhaseDispatch) < idx(trace.PhaseBarrier) &&
			idx(trace.PhaseBarrier) < idx(trace.PhaseTxStart) &&
			idx(trace.PhaseTxStart) < idx(trace.PhaseTxDone) &&
			idx(trace.PhaseRxDone) < idx(trace.PhaseDone) &&
			idx(trace.PhaseFinal) < idx(trace.PhaseDone)) {
			t.Fatalf("rank %d phases out of order: %v", rk, phases)
		}
		if idx(trace.PhaseRecovery) >= 0 {
			t.Fatalf("rank %d entered recovery on a lossless fabric", rk)
		}
	}
	if rec.Timeline() == "(no events)\n" {
		t.Fatal("empty timeline")
	}
}

// TestTraceRecordsRecovery checks the slow-path events appear under drops.
func TestTraceRecordsRecovery(t *testing.T) {
	rec := &trace.Recorder{}
	eng := sim.NewEngine(21)
	g := topology.Star(4)
	f := fabric.New(eng, g, fabric.Config{DropRate: 0.05})
	comm, err := NewCommunicator(f, g.Hosts(), Config{
		Transport: verbs.UD, Tracer: rec, VerifyData: true,
		CutoffAlpha: 50 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comm.RunAllgather(150000); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
	sawRecovery, sawServe := false, false
	for _, e := range rec.Events {
		if e.Phase == trace.PhaseRecovery {
			sawRecovery = true
		}
		if e.Phase == trace.PhaseFetchServe {
			sawServe = true
		}
	}
	if !sawRecovery || !sawServe {
		t.Fatalf("recovery=%v serve=%v; expected both under 5%% drops", sawRecovery, sawServe)
	}
}

func TestBarrierCollective(t *testing.T) {
	_, _, comm := buildComm(t, 8, fabric.Config{}, Config{Transport: verbs.UD})
	res, err := comm.RunBarrier()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "barrier" || res.Duration() <= 0 {
		t.Fatalf("barrier result: %+v", res)
	}
	for _, s := range res.PerRank {
		if s.BytesReceived != 0 {
			t.Fatalf("barrier moved %d payload bytes", s.BytesReceived)
		}
	}
	// Barriers compose with data collectives on the same communicator.
	if _, err := comm.RunAllgather(8192); err != nil {
		t.Fatal(err)
	}
	if _, err := comm.RunBarrier(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierScalesLogarithmically(t *testing.T) {
	dur := func(p int) sim.Time {
		eng := sim.NewEngine(2)
		g := topology.Star(p)
		f := fabric.New(eng, g, fabric.Config{})
		comm, err := NewCommunicator(f, g.Hosts(), Config{Transport: verbs.UD})
		if err != nil {
			t.Fatal(err)
		}
		res, err := comm.RunBarrier()
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration()
	}
	d4, d32 := dur(4), dur(32)
	// 8x the ranks: dissemination adds ceil(log2 32)-ceil(log2 4) = 3
	// rounds; time must grow far less than linearly.
	if float64(d32) > 4*float64(d4) {
		t.Fatalf("barrier grew %v -> %v for 8x ranks; want logarithmic", d4, d32)
	}
}

// TestSequencerLimitsIncast backs the §IV-A design rationale: running every
// root simultaneously (M = P) builds deep egress backlogs at the receivers,
// while the sequencer (M = 1) keeps in-flight traffic — and thus queueing —
// bounded near one buffer's worth.
func TestSequencerLimitsIncast(t *testing.T) {
	backlog := func(chains int) sim.Time {
		eng := sim.NewEngine(4)
		g := topology.Star(16)
		f := fabric.New(eng, g, fabric.Config{})
		comm, err := NewCommunicator(f, g.Hosts(), Config{
			Transport: verbs.UD, Chains: chains, Subgroups: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := comm.RunAllgather(1 << 20); err != nil {
			t.Fatal(err)
		}
		return f.MaxBacklog()
	}
	serial, allAtOnce := backlog(1), backlog(16)
	if allAtOnce < 4*serial {
		t.Fatalf("incast backlog with all roots (%v) not >> sequenced (%v)", allAtOnce, serial)
	}
}

func TestBroadcastUCTransport(t *testing.T) {
	_, _, comm := buildComm(t, 4, fabric.Config{},
		Config{Transport: verbs.UC, ChunkBytes: 32 << 10, VerifyData: true})
	if _, err := comm.RunBroadcast(1, 200000); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
}

func TestSubgroupTreesSpreadAcrossSpines(t *testing.T) {
	// Packet parallelism maps subgroup trees to distinct spine roots, so
	// trunk traffic spreads: with 2 spines and 2 subgroups, both spines
	// must carry allgather chunks.
	eng := sim.NewEngine(6)
	g, err := topology.TwoLevelFatTree(topology.FatTreeSpec{Hosts: 8, HostsPerLeaf: 4, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := fabric.New(eng, g, fabric.Config{})
	comm, err := NewCommunicator(f, g.Hosts(), Config{Transport: verbs.UD, Subgroups: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comm.RunAllgather(1 << 18); err != nil {
		t.Fatal(err)
	}
	leaf := g.LeafOf(g.Hosts()[0])
	used := 0
	for _, sw := range g.Switches() {
		if g.Nodes[sw].Level == 2 && f.ChannelStats(leaf, sw).Bytes > 1<<17 {
			used++
		}
	}
	if used != 2 {
		t.Fatalf("subgroup trees used %d spines, want both", used)
	}
}
