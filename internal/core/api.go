package core

import (
	"fmt"
	"sync"

	"repro/internal/bitmap"
	"repro/internal/collective"
	"repro/internal/dpa"
)

// RankStats is the per-rank outcome of one collective, including the
// critical-path breakdown reported in Figure 10. It is the shared
// collective.RankStats extension.
type RankStats = collective.RankStats

// Result is the outcome of one collective across all ranks: the unified
// collective.Result, with the PerRank critical-path extension filled in.
type Result = collective.Result

// completion tracks the all-rank countdown of one in-flight operation. It
// hangs off the Communicator rather than living in closure-captured locals
// so a model-state capture (internal/snap) reaches it: a mid-run fork that
// rewinds an in-flight operation must rewind the countdown too, or the
// replayed ranks would decrement an exhausted counter and done would never
// re-fire. Ranks complete on their own shards, possibly inside one epoch:
// the countdown is mutex-guarded and End accumulates as the max of each
// completing rank's clock (equal to the old last-completion reading on a
// confined fabric, where the clock is shared and monotonic).
type completion struct {
	mu        sync.Mutex
	remaining int
	res       *Result
	done      func(*Result)
}

// rankDone retires one rank from the current operation's countdown.
func (c *Communicator) rankDone(rk *Rank) {
	cp := c.compl
	cp.res.PerRank[rk.id] = rk.op.stats()
	rk.TotalRNRDrops = rk.ctx.RNRDrops
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if t := rk.eng.Now(); t > cp.res.End {
		cp.res.End = t
	}
	cp.remaining--
	if cp.remaining == 0 && cp.done != nil {
		cp.done(cp.res)
	}
}

// startOp builds the per-rank op states and dispatches them onto the app
// threads. done runs once every rank has completed.
func (c *Communicator) startOp(kind opKind, root, n int, done func(*Result)) error {
	if n <= 0 {
		return fmt.Errorf("core: non-positive send size %d", n)
	}
	for _, r := range c.ranks {
		if r.op != nil && !r.op.done {
			return fmt.Errorf("core: rank %d still has an operation in flight", r.id)
		}
	}
	seq := c.nextSeq()
	p := c.Size()
	chunk := c.cfg.ChunkBytes
	cpr := (n + chunk - 1) / chunk
	total := cpr
	roots := 1
	switch kind {
	case kindAllgather:
		total = cpr * p
		roots = p
	case kindBarrier:
		cpr, total, roots = 0, 0, 0
	}
	if total >= maxPSNChunks {
		return fmt.Errorf("core: %d chunks exceed the 24-bit PSN space", total)
	}

	res := &Result{
		Kind:      kind.String(),
		Seq:       seq,
		Ranks:     p,
		SendBytes: n,
		Start:     c.eng.Now(),
		PerRank:   make([]RankStats, p),
	}
	c.compl = &completion{remaining: p, res: res, done: done}
	for _, r := range c.ranks {
		op := &opState{
			r:     r,
			seq:   seq,
			kind:  kind,
			root:  root,
			n:     n,
			chunk: chunk,
			cpr:   cpr,
			total: total,
			roots: roots,
		}
		op.isRoot = kind == kindAllgather || (kind == kindBroadcast && r.id == root)
		if kind != kindBarrier {
			recvBytes := n
			if kind == kindAllgather {
				recvBytes = n * p
			}
			op.recvMR = r.cachedMR(recvBytes)
			if op.isRoot {
				op.sendMR = r.cachedMR(n)
				if c.cfg.VerifyData {
					fillPattern(op.sendMR.Data, r.id, seq)
				}
			}
		}
		op.bm = bitmap.New(total)
		op.cb = c.rankDone
		r.op = op
		// Dispatch on the app thread (task-queue handoff cost, §IV-B). Start
		// runs between engine runs with aligned clocks, so reading c.eng here
		// and scheduling on the rank's own shard is exact at any -shards.
		t := r.appThread.Run(dpa.TaskDispatch, c.eng.Now())
		r.eng.AtHandler(t, r, 0, 0, nil)
	}
	if kind == kindBarrier {
		return nil
	}
	// Both the UC fast path and the recovery fetch ring rely on symmetric
	// rkeys for the receive buffers (registration order is identical on
	// every rank, as the registration cache of a real deployment would
	// guarantee via an out-of-band exchange).
	key := c.ranks[0].op.recvMR.Key
	for _, r := range c.ranks[1:] {
		if r.op.recvMR.Key != key {
			return fmt.Errorf("core: receive-buffer rkeys diverged (%d vs %d)", key, r.op.recvMR.Key)
		}
	}
	return nil
}

// stats snapshots the per-rank result of the finished operation.
func (op *opState) stats() RankStats {
	recvBytes := 0
	switch {
	case op.kind == kindAllgather:
		recvBytes = (op.roots - 1) * op.n
	case op.kind == kindBroadcast && op.r.id != op.root:
		recvBytes = op.n
	}
	s := RankStats{
		Rank:          op.r.id,
		BarrierTime:   op.tBarrier - op.tStart,
		Total:         op.tDone - op.tStart,
		Recovered:     op.recovered,
		RNRDrops:      op.r.ctx.RNRDrops - op.r.TotalRNRDrops,
		BytesReceived: recvBytes,
	}
	rxEnd := op.tRxDone
	if op.r.id == op.root && op.kind == kindBroadcast {
		rxEnd = op.tTxDone // the root's datapath phase is its send path
	}
	if rxEnd > op.tBarrier {
		s.McastTime = rxEnd - op.tBarrier
	}
	if op.tDone > rxEnd {
		s.FinalTime = op.tDone - rxEnd
	}
	for _, qp := range op.r.ctrl {
		s.Retransmits += qp.Retransmits
	}
	return s
}

// StartAllgather begins a non-blocking Allgather of n bytes per rank.
func (c *Communicator) StartAllgather(n int, done func(*Result)) error {
	return c.startOp(kindAllgather, -1, n, done)
}

// StartBarrier begins a non-blocking barrier: the RNR dissemination
// synchronization plus the final-handshake ring, with no data movement.
func (c *Communicator) StartBarrier(done func(*Result)) error {
	return c.startOp(kindBarrier, -1, 1, done)
}

// RunBarrier runs a blocking barrier.
func (c *Communicator) RunBarrier() (*Result, error) {
	var res *Result
	if err := c.StartBarrier(func(r *Result) { res = r }); err != nil {
		return nil, err
	}
	c.eng.Run()
	if res == nil {
		return nil, fmt.Errorf("core: barrier did not complete (deadlock?)")
	}
	return res, nil
}

// StartBroadcast begins a non-blocking Broadcast of n bytes from root.
func (c *Communicator) StartBroadcast(root, n int, done func(*Result)) error {
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("core: root %d out of range", root)
	}
	return c.startOp(kindBroadcast, root, n, done)
}

// RunAllgather runs a blocking Allgather, driving the simulation engine
// until every rank completes.
func (c *Communicator) RunAllgather(n int) (*Result, error) {
	var res *Result
	if err := c.StartAllgather(n, func(r *Result) { res = r }); err != nil {
		return nil, err
	}
	c.eng.Run()
	if res == nil {
		return nil, fmt.Errorf("core: allgather did not complete (deadlock?)")
	}
	return res, nil
}

// RunBroadcast runs a blocking Broadcast.
func (c *Communicator) RunBroadcast(root, n int) (*Result, error) {
	var res *Result
	if err := c.StartBroadcast(root, n, func(r *Result) { res = r }); err != nil {
		return nil, err
	}
	c.eng.Run()
	if res == nil {
		return nil, fmt.Errorf("core: broadcast did not complete (deadlock?)")
	}
	return res, nil
}

// VerifyLast checks (in VerifyData mode) that every rank's receive buffer
// holds exactly the concatenation of all send buffers (allgather) or the
// root's buffer (broadcast) for the most recent operation.
func (c *Communicator) VerifyLast() error {
	if !c.cfg.VerifyData {
		return fmt.Errorf("core: VerifyLast requires Config.VerifyData")
	}
	for _, r := range c.ranks {
		op := r.op
		if op == nil || !op.done {
			return fmt.Errorf("core: rank %d has no completed operation", r.id)
		}
		switch op.kind {
		case kindBarrier:
			// nothing to verify
		case kindAllgather:
			for src := 0; src < c.Size(); src++ {
				if err := checkPattern(op.recvMR.Data[src*op.n:(src+1)*op.n], src, op.seq); err != nil {
					return fmt.Errorf("core: rank %d, shard %d: %w", r.id, src, err)
				}
			}
		case kindBroadcast:
			if err := checkPattern(op.recvMR.Data[:op.n], op.root, op.seq); err != nil {
				return fmt.Errorf("core: rank %d: %w", r.id, err)
			}
		}
	}
	return nil
}

// fillPattern writes the deterministic verification pattern for (rank, seq).
func fillPattern(b []byte, rank, seq int) {
	for i := range b {
		b[i] = patternByte(rank, seq, i)
	}
}

func checkPattern(b []byte, rank, seq int) error {
	for i := range b {
		if b[i] != patternByte(rank, seq, i) {
			return fmt.Errorf("byte %d = %#x, want %#x", i, b[i], patternByte(rank, seq, i))
		}
	}
	return nil
}

func patternByte(rank, seq, i int) byte {
	return byte(rank*131 + seq*29 + i*7 + i>>9)
}

// MemoryFootprint describes the per-rank protocol state of §III-D: the
// connection contexts, the staging area and the bitmap.
type MemoryFootprint struct {
	// DataQPs is the number of multicast (fast-path) queue pairs: one per
	// subgroup, each sending and receiving from all remote peers.
	DataQPs int
	// CtrlQPs is the number of reliable connections for the slow path and
	// synchronization (ring neighbors plus dissemination-barrier peers;
	// the paper's minimal ring needs 2).
	CtrlQPs int
	// StagingBytes is the UD staging-ring capacity (§III-D: bounded by the
	// receive-queue depth; 32 MiB max on BlueField-3, 4 MiB practical).
	StagingBytes int
	// BitmapBytes is the reliability bitmap for the last operation — the
	// only state that grows with the receive buffer.
	BitmapBytes int
}

// Footprint reports rank r's current protocol memory footprint.
func (c *Communicator) Footprint(rank int) MemoryFootprint {
	r := c.ranks[rank]
	fp := MemoryFootprint{
		DataQPs: len(r.dataQPs),
		CtrlQPs: len(r.ctrl),
	}
	for _, st := range r.staging {
		fp.StagingBytes += st.Size
	}
	if r.op != nil {
		fp.BitmapBytes = r.op.bm.SizeBytes()
	}
	return fp
}
