package core

import (
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/verbs"
)

// buildComm assembles a fat-tree fabric with p ranks and a communicator.
func buildComm(t *testing.T, p int, fcfg fabric.Config, ccfg Config) (*sim.Engine, *fabric.Fabric, *Communicator) {
	t.Helper()
	eng := sim.NewEngine(42)
	var g *topology.Graph
	if p <= 4 {
		g = topology.Star(p)
	} else {
		var err error
		g, err = topology.TwoLevelFatTree(topology.FatTreeSpec{
			Hosts: p, HostsPerLeaf: 4, Spines: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	f := fabric.New(eng, g, fcfg)
	comm, err := NewCommunicator(f, g.Hosts()[:p], ccfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, f, comm
}

func TestBroadcastUDVerified(t *testing.T) {
	_, _, comm := buildComm(t, 4, fabric.Config{}, Config{Transport: verbs.UD, VerifyData: true})
	res, err := comm.RunBroadcast(0, 50000) // 13 chunks, last short
	if err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
	if res.Kind != "broadcast" || res.Ranks != 4 {
		t.Fatalf("result meta wrong: %+v", res)
	}
	if res.Duration() <= 0 {
		t.Fatal("non-positive duration")
	}
	if res.MaxRecovered() != 0 {
		t.Fatalf("recovery triggered on a lossless fabric: %d", res.MaxRecovered())
	}
}

func TestBroadcastNonZeroRoot(t *testing.T) {
	_, _, comm := buildComm(t, 4, fabric.Config{}, Config{Transport: verbs.UD, VerifyData: true})
	if _, err := comm.RunBroadcast(2, 12345); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastRootOutOfRange(t *testing.T) {
	_, _, comm := buildComm(t, 3, fabric.Config{}, Config{Transport: verbs.UD})
	if err := comm.StartBroadcast(3, 100, nil); err == nil {
		t.Fatal("root 3 of 3 accepted")
	}
	if err := comm.StartBroadcast(-1, 100, nil); err == nil {
		t.Fatal("negative root accepted")
	}
}

func TestAllgatherUDVerified(t *testing.T) {
	_, _, comm := buildComm(t, 4, fabric.Config{}, Config{Transport: verbs.UD, VerifyData: true})
	res, err := comm.RunAllgather(20000)
	if err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
	for _, s := range res.PerRank {
		if s.BytesReceived != 3*20000 {
			t.Fatalf("rank %d received %d bytes, want %d", s.Rank, s.BytesReceived, 3*20000)
		}
		if s.RNRDrops != 0 {
			t.Fatalf("rank %d saw %d RNR drops after the RNR barrier", s.Rank, s.RNRDrops)
		}
	}
}

func TestAllgatherUCVerified(t *testing.T) {
	_, _, comm := buildComm(t, 4, fabric.Config{},
		Config{Transport: verbs.UC, ChunkBytes: 16384, VerifyData: true})
	if _, err := comm.RunAllgather(100000); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherSubgroups(t *testing.T) {
	_, _, comm := buildComm(t, 8, fabric.Config{},
		Config{Transport: verbs.UD, Subgroups: 4, VerifyData: true})
	if _, err := comm.RunAllgather(65536); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
	// Each subgroup worker must have processed some chunks.
	for i := 0; i < comm.Size(); i++ {
		for s, w := range comm.Rank(i).rxWkrs {
			if w.Processed == 0 {
				t.Fatalf("rank %d subgroup %d worker idle", i, s)
			}
		}
	}
}

func TestAllgatherParallelChains(t *testing.T) {
	_, _, comm := buildComm(t, 8, fabric.Config{},
		Config{Transport: verbs.UD, Chains: 2, VerifyData: true})
	if _, err := comm.RunAllgather(16384); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
}

func TestChainsReduceScheduleTime(t *testing.T) {
	run := func(chains int) sim.Time {
		_, _, comm := buildComm(t, 8, fabric.Config{},
			Config{Transport: verbs.UD, Chains: chains})
		res, err := comm.RunAllgather(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration()
	}
	serial, parallel := run(1), run(4)
	if parallel >= serial {
		t.Fatalf("4 chains (%v) not faster than 1 chain (%v)", parallel, serial)
	}
}

func TestAllgatherSingleRank(t *testing.T) {
	_, _, comm := buildComm(t, 1, fabric.Config{}, Config{Transport: verbs.UD, VerifyData: true})
	if _, err := comm.RunAllgather(10000); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherTwoRanks(t *testing.T) {
	_, _, comm := buildComm(t, 2, fabric.Config{}, Config{Transport: verbs.UD, VerifyData: true})
	if _, err := comm.RunAllgather(8192); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherSubChunkMessage(t *testing.T) {
	// A 100-byte allgather: single short chunk per rank.
	_, _, comm := buildComm(t, 4, fabric.Config{}, Config{Transport: verbs.UD, VerifyData: true})
	if _, err := comm.RunAllgather(100); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryUnderFabricDrops(t *testing.T) {
	// 2% per-hop drops: recovery must repair every lost chunk and the
	// buffers must still verify.
	_, _, comm := buildComm(t, 4, fabric.Config{DropRate: 0.02},
		Config{Transport: verbs.UD, VerifyData: true, CutoffAlpha: 100 * sim.Microsecond})
	res, err := comm.RunAllgather(200000)
	if err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
	if res.MaxRecovered() == 0 {
		t.Fatal("no chunk was recovered despite 2% drops (expected slow-path activity)")
	}
}

func TestRecoveryUnderHeavyDrops(t *testing.T) {
	_, _, comm := buildComm(t, 4, fabric.Config{DropRate: 0.15},
		Config{Transport: verbs.UD, VerifyData: true, CutoffAlpha: 50 * sim.Microsecond})
	if _, err := comm.RunAllgather(50000); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryUCDrops(t *testing.T) {
	_, _, comm := buildComm(t, 4, fabric.Config{DropRate: 0.05},
		Config{Transport: verbs.UC, ChunkBytes: 8192, VerifyData: true,
			CutoffAlpha: 50 * sim.Microsecond})
	if _, err := comm.RunAllgather(100000); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastRecovery(t *testing.T) {
	_, _, comm := buildComm(t, 4, fabric.Config{DropRate: 0.10},
		Config{Transport: verbs.UD, VerifyData: true, CutoffAlpha: 50 * sim.Microsecond})
	res, err := comm.RunBroadcast(1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
	if res.MaxRecovered() == 0 {
		t.Fatal("expected recovered chunks at 10% drop rate")
	}
}

func TestSequentialOperations(t *testing.T) {
	_, _, comm := buildComm(t, 4, fabric.Config{}, Config{Transport: verbs.UD, VerifyData: true})
	for i := 0; i < 3; i++ {
		if _, err := comm.RunAllgather(30000); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if err := comm.VerifyLast(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	// Mixed kinds on the same communicator.
	if _, err := comm.RunBroadcast(3, 10000); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentOpRejected(t *testing.T) {
	_, _, comm := buildComm(t, 2, fabric.Config{}, Config{Transport: verbs.UD})
	if err := comm.StartAllgather(1000, nil); err != nil {
		t.Fatal(err)
	}
	if err := comm.StartAllgather(1000, nil); err == nil {
		t.Fatal("second in-flight op accepted")
	}
}

func TestInvalidConfigs(t *testing.T) {
	eng := sim.NewEngine(1)
	g := topology.Star(2)
	f := fabric.New(eng, g, fabric.Config{})
	if _, err := NewCommunicator(f, g.Hosts(), Config{Transport: verbs.RC}); err == nil {
		t.Fatal("RC fast path accepted")
	}
	if _, err := NewCommunicator(f, g.Hosts(), Config{Transport: verbs.UD, ChunkBytes: 8192}); err == nil {
		t.Fatal("UD chunk above MTU accepted")
	}
	if _, err := NewCommunicator(f, nil, Config{Transport: verbs.UD}); err == nil {
		t.Fatal("empty communicator accepted")
	}
	comm, err := NewCommunicator(f, g.Hosts(), Config{Transport: verbs.UD})
	if err != nil {
		t.Fatal(err)
	}
	if err := comm.StartAllgather(0, nil); err == nil {
		t.Fatal("zero-byte allgather accepted")
	}
}

func TestBreakdownTimesConsistent(t *testing.T) {
	_, _, comm := buildComm(t, 8, fabric.Config{}, Config{Transport: verbs.UD})
	res, err := comm.RunAllgather(262144)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.PerRank {
		if s.BarrierTime < 0 || s.McastTime < 0 || s.FinalTime < 0 {
			t.Fatalf("negative phase time: %+v", s)
		}
		sum := s.BarrierTime + s.McastTime + s.FinalTime
		if sum > s.Total+sim.Microsecond {
			t.Fatalf("phases (%v) exceed total (%v)", sum, s.Total)
		}
		if s.Total <= 0 {
			t.Fatalf("rank %d total %v", s.Rank, s.Total)
		}
	}
	// At large message sizes the multicast datapath must dominate (Fig 10).
	s := res.PerRank[0]
	if s.McastTime < 4*s.BarrierTime {
		t.Fatalf("multicast phase (%v) does not dominate barrier (%v) at 256 KiB", s.McastTime, s.BarrierTime)
	}
}

func TestAlgBandwidthSaneAndBounded(t *testing.T) {
	_, f, comm := buildComm(t, 8, fabric.Config{}, Config{Transport: verbs.UD})
	res, err := comm.RunAllgather(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	bw := res.AlgBandwidth()
	link := f.Config().LinkBandwidth
	if bw <= 0 || bw > link {
		t.Fatalf("algorithm bandwidth %.3g outside (0, %.3g]", bw, link)
	}
}

// The headline property (Insight 1): with the multicast allgather, switch
// egress traffic is ≈ (tree links)·N, half of what a P2P ring moves.
func TestTrafficOptimality(t *testing.T) {
	const p, n = 8, 1 << 18
	eng := sim.NewEngine(7)
	g, err := topology.TwoLevelFatTree(topology.FatTreeSpec{Hosts: p, HostsPerLeaf: 4, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := fabric.New(eng, g, fabric.Config{})
	comm, err := NewCommunicator(f, g.Hosts(), Config{Transport: verbs.UD})
	if err != nil {
		t.Fatal(err)
	}
	f.ResetCounters()
	if _, err := comm.RunAllgather(n); err != nil {
		t.Fatal(err)
	}
	got := float64(f.SwitchEgressBytes())
	// The multicast tree spans 8 host links + 2 leaf-spine links; each
	// rank's buffer crosses each tree link at most once, and a rank's own
	// buffer never crosses its own host link downward: per rank, 7 host
	// links + <=2 trunk links. Control traffic adds a little.
	// Per datagram from a rank on leaf A: 3 host links on its own leaf,
	// 1 trunk up, 1 trunk down, 4 host links on the other leaf = 9 switch
	// egress crossings — each tree link exactly once (Insight 1). Control
	// traffic adds a sliver.
	payloadFactor := 1.0 + 64.0/4096.0 // headers
	ideal := float64(p) * float64(n) * 9 * payloadFactor
	if got > ideal*1.05 {
		t.Fatalf("switch egress %.3g exceeds bandwidth-optimal bound %.3g by >5%%", got, ideal)
	}
	if got < ideal*0.95 {
		t.Fatalf("switch egress %.3g suspiciously below the tree-link bound %.3g", got, ideal)
	}
}

func TestRxOnDPA(t *testing.T) {
	_, _, comm := buildComm(t, 4, fabric.Config{},
		Config{Transport: verbs.UD, RxOnDPA: true, VerifyData: true})
	if _, err := comm.RunAllgather(65536); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
	if comm.Rank(0).dpa == nil {
		t.Fatal("DPA chip not instantiated")
	}
}

func TestNonBlockingStartCallback(t *testing.T) {
	eng, _, comm := buildComm(t, 4, fabric.Config{}, Config{Transport: verbs.UD})
	called := false
	if err := comm.StartAllgather(4096, func(res *Result) {
		called = true
		if res.End < res.Start {
			t.Error("result times inverted")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("callback fired synchronously")
	}
	eng.Run()
	if !called {
		t.Fatal("callback never fired")
	}
}

func TestReorderJitterTolerated(t *testing.T) {
	// Out-of-order delivery (adaptive-routing emulation) must not corrupt
	// reassembly thanks to PSN-addressed placement.
	_, _, comm := buildComm(t, 4, fabric.Config{ReorderJitter: 20 * sim.Microsecond},
		Config{Transport: verbs.UD, VerifyData: true})
	if _, err := comm.RunAllgather(100000); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
}

func TestLargerScaleAllgather(t *testing.T) {
	if testing.Short() {
		t.Skip("large simulation")
	}
	_, _, comm := buildComm(t, 16, fabric.Config{},
		Config{Transport: verbs.UD, Subgroups: 2, Chains: 2, VerifyData: true})
	if _, err := comm.RunAllgather(131072); err != nil {
		t.Fatal(err)
	}
	if err := comm.VerifyLast(); err != nil {
		t.Fatal(err)
	}
}

// Property: random (P, size, subgroups, drops) configurations always
// complete and verify.
func TestPropertyProtocolAlwaysCompletes(t *testing.T) {
	f := func(pRaw, sizeRaw, subRaw uint8, dropRaw uint16) bool {
		p := int(pRaw)%6 + 2          // 2..7
		size := int(sizeRaw)*97 + 100 // 100..24835
		subgroups := int(subRaw)%3 + 1
		drop := float64(dropRaw%100) / 2000 // 0..5%
		eng := sim.NewEngine(uint64(pRaw)<<24 | uint64(sizeRaw)<<16 | uint64(dropRaw))
		g := topology.Star(p)
		fb := fabric.New(eng, g, fabric.Config{DropRate: drop})
		comm, err := NewCommunicator(fb, g.Hosts(), Config{
			Transport:   verbs.UD,
			Subgroups:   subgroups,
			VerifyData:  true,
			CutoffAlpha: 50 * sim.Microsecond,
		})
		if err != nil {
			return false
		}
		if _, err := comm.RunAllgather(size); err != nil {
			return false
		}
		return comm.VerifyLast() == nil
	}
	// The full 40-case sweep dominates the package's test time; -short
	// keeps a representative sample.
	count := 40
	if testing.Short() {
		count = 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: count}); err != nil {
		t.Error(err)
	}
}
