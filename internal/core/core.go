// Package core implements the paper's primary contribution: a reliable
// constant-time Broadcast protocol on top of unreliable hardware multicast
// (§III) and the bandwidth-optimal Allgather algorithm composed from it
// (§IV).
//
// The protocol is a faithful state-machine port of the paper's design:
//
//   - Fast path: the root fragments its send buffer into chunks and posts
//     multicast sends; each chunk's packet sequence number (PSN) rides the
//     32-bit CQE immediate. Leaves reassemble through a staging ring (UD)
//     or zero-copy placement (UC extension), tracking arrivals in a bitmap.
//   - RNR synchronization: all ranks pre-post their receive queues and run
//     a dissemination barrier before any root transmits, eliminating
//     receiver-not-ready drops.
//   - Slow path: a cutoff timer arms when the multicast phase begins; on
//     expiry, missing chunks are recovered by zero-copy RDMA Reads from the
//     left neighbor in a reliable (RC) ring, recursively deferring to the
//     neighbor's own recovery — degrading, in the worst case, to the ring
//     Allgather bound, and never incasting the root with NACKs.
//   - Final handshake: a rank that has received everything sends a final
//     message to its left neighbor and completes when it has also received
//     one from its right neighbor.
//   - Allgather scheduling: ranks are split into M parallel broadcast
//     chains (Appendix A); within a chain, an activation token passes from
//     each finished root to its successor. Traffic is striped over multiple
//     multicast subgroups (trees) processed by independent receive workers,
//     and the send and receive paths run on separate worker threads.
//
// Worker threads are allocated from dpa.Chip execution models, so the same
// protocol code runs on a simulated host CPU or on the DPA SmartNIC and
// exhibits the corresponding datapath costs.
package core

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/verbs"
)

// Config parameterizes a communicator.
type Config struct {
	// Transport selects the fast path: verbs.UD (staging + per-datagram
	// chunks) or verbs.UC (zero-copy multi-packet chunks, the proposed
	// next-generation extension). RC is not a valid fast path.
	Transport verbs.Transport
	// Subgroups is the number of parallel multicast trees (packet
	// parallelism, §IV-C). Zero defaults to 1.
	Subgroups int
	// Chains is M, the number of parallel broadcast chains in the Allgather
	// schedule (multicast parallelism, Appendix A). Zero defaults to 1 —
	// one actively multicasting root, as in the paper's 188-node runs.
	Chains int
	// ChunkBytes is the fragmentation unit. For UD it is capped at the
	// MTU; UC may use multi-packet chunks (Figure 15). Zero defaults to
	// the fabric MTU.
	ChunkBytes int
	// SendBatch is the number of multicast sends posted per doorbell batch;
	// only the last send of a batch is signaled (§V-A). Zero defaults 32.
	SendBatch int
	// RQDepth bounds posted receives per subgroup QP (BlueField-3: 8192).
	RQDepth int
	// CutoffAlpha is the slack added to the receive cutoff timer beyond the
	// ideal transfer time (§III-C). Zero defaults to 500 µs.
	CutoffAlpha sim.Time
	// RxOnDPA runs the receive workers on a per-rank DPA model instead of
	// host CPU cores (§V-B offloading). TX and the app thread stay on the
	// CPU either way.
	RxOnDPA bool
	// ArbitratedRx subscribes the receive completion queues to the host's
	// shared arbiters instead of dedicating one worker thread per subgroup
	// per communicator — the software traffic arbitration the paper
	// proposes for many-communicator deployments (§V-C). All communicators
	// sharing a host must use the same Subgroups count and transport.
	ArbitratedRx bool
	// CPUCores sizes each rank's host CPU model. Zero defaults to 24.
	CPUCores int
	// VerifyData allocates real backing memory for all buffers so tests
	// can check payload integrity end to end.
	VerifyData bool
	// Tracer, when set, records protocol phase transitions (the Figure 9
	// execution-flow view). Nil adds no cost.
	Tracer *trace.Recorder
	// Metrics, when set, counts protocol phase transitions per phase name.
	// Nil adds no cost.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults(mtu int) Config {
	if c.Subgroups == 0 {
		c.Subgroups = 1
	}
	if c.Chains == 0 {
		c.Chains = 1
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = mtu
	}
	if c.SendBatch == 0 {
		c.SendBatch = 32
	}
	if c.RQDepth == 0 {
		c.RQDepth = 8192
	}
	if c.CutoffAlpha == 0 {
		c.CutoffAlpha = 500 * sim.Microsecond
	}
	if c.CPUCores == 0 {
		c.CPUCores = 24
	}
	return c
}

func (c Config) validate(mtu int) error {
	switch c.Transport {
	case verbs.UD:
		if c.ChunkBytes > mtu {
			return fmt.Errorf("core: UD chunk %d exceeds MTU %d", c.ChunkBytes, mtu)
		}
	case verbs.UC:
		// multi-packet chunks allowed
	default:
		return fmt.Errorf("core: transport %v is not a valid fast path", c.Transport)
	}
	if c.ChunkBytes <= 0 {
		return fmt.Errorf("core: non-positive chunk size")
	}
	if c.Subgroups < 1 || c.Chains < 1 {
		return fmt.Errorf("core: subgroups and chains must be >= 1")
	}
	return nil
}

// Communicator is a group of ranks, one per host, sharing multicast
// subgroups and a reliable control ring — the equivalent of a UCC team
// bound to the multicast backend.
type Communicator struct {
	cfg    Config
	f      *fabric.Fabric
	cl     *cluster.Cluster
	eng    *sim.Engine
	ranks  []*Rank
	groups []fabric.GroupID // one per subgroup

	opSeq int
	compl *completion // countdown of the in-flight op, nil when idle
}

// NewCommunicator builds a communicator over the given hosts with a
// private per-host runtime. Use NewCommunicatorOn to share host resources
// (NIC context, CPU cores) with other communicators or collective teams.
func NewCommunicator(f *fabric.Fabric, hosts []topology.NodeID, cfg Config) (*Communicator, error) {
	cl := cluster.New(f, cluster.Config{
		CPUCores: cfg.CPUCores,
		Verbs:    verbs.Config{RQDepth: cfg.RQDepth},
	})
	return NewCommunicatorOn(cl, hosts, cfg)
}

// NewCommunicatorOn builds a communicator whose ranks run on the shared
// cluster's per-host contexts and CPU models. Multicast subgroup trees are
// rooted round-robin across the topology's top-level switches to spread
// replication load.
func NewCommunicatorOn(cl *cluster.Cluster, hosts []topology.NodeID, cfg Config) (*Communicator, error) {
	f := cl.Fabric()
	cfg = cfg.withDefaults(f.MaxPayload())
	if err := cfg.validate(f.MaxPayload()); err != nil {
		return nil, err
	}
	if len(hosts) < 1 {
		return nil, fmt.Errorf("core: communicator needs at least one rank")
	}
	c := &Communicator{cfg: cfg, f: f, cl: cl, eng: f.Engine()}

	// Pick multicast roots among the highest-level switches, round-robin.
	g := f.Graph()
	roots := g.TopSwitches()
	if len(roots) == 0 {
		return nil, fmt.Errorf("core: topology has no switch to root multicast trees")
	}
	for s := 0; s < cfg.Subgroups; s++ {
		gid, err := f.CreateGroup(roots[s%len(roots)], hosts)
		if err != nil {
			return nil, fmt.Errorf("core: subgroup %d: %w", s, err)
		}
		c.groups = append(c.groups, gid)
	}

	for i, h := range hosts {
		r, err := newRank(c, i, h)
		if err != nil {
			return nil, err
		}
		c.ranks = append(c.ranks, r)
	}
	// Wire the reliable control mesh (ring neighbors + dissemination peers).
	if err := c.connectControlPlane(); err != nil {
		return nil, err
	}
	return c, nil
}

// Size returns the number of ranks.
func (c *Communicator) Size() int { return len(c.ranks) }

// Rank returns rank i's runtime (for inspection in tests and harnesses).
func (c *Communicator) Rank(i int) *Rank { return c.ranks[i] }

// Engine returns the driving simulation engine.
func (c *Communicator) Engine() *sim.Engine { return c.eng }

// Config returns the effective configuration.
func (c *Communicator) Config() Config { return c.cfg }

// ctrlPeers returns the set of ranks rank r must hold reliable connections
// to: ring neighbors (fetch + final handshake + activation) and
// dissemination-barrier partners in both directions.
func (c *Communicator) ctrlPeers(r int) []int {
	p := c.Size()
	set := map[int]bool{}
	if p > 1 {
		set[(r+1)%p] = true
		set[(r-1+p)%p] = true
		for d := 1; d < p; d *= 2 {
			set[(r+d)%p] = true
			set[(r-d+p)%p] = true
		}
	}
	delete(set, r)
	peers := make([]int, 0, len(set))
	for q := range set {
		peers = append(peers, q)
	}
	// Deterministic order: QP creation order feeds event sequencing, and
	// bit-for-bit reproducibility is a core promise of the simulator.
	sort.Ints(peers)
	return peers
}

// connectControlPlane creates one RC QP pair per (rank, peer) edge.
func (c *Communicator) connectControlPlane() error {
	for _, r := range c.ranks {
		for _, q := range c.ctrlPeers(r.id) {
			if _, ok := r.ctrl[q]; ok {
				continue
			}
			peer := c.ranks[q]
			a := r.ctx.NewQP(verbs.RC, r.ctrlCQ, r.ctrlCQ, 256)
			b := peer.ctx.NewQP(verbs.RC, peer.ctrlCQ, peer.ctrlCQ, 256)
			a.Connect(verbs.Unicast(peer.host, b.N))
			b.Connect(verbs.Unicast(r.host, a.N))
			r.ctrl[q] = a
			peer.ctrl[r.id] = b
			r.prepostCtrl(a)
			peer.prepostCtrl(b)
		}
	}
	return nil
}

// nextSeq allocates an operation sequence number shared by all ranks.
func (c *Communicator) nextSeq() int {
	c.opSeq++
	return c.opSeq
}
