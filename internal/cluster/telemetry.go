package cluster

import "repro/internal/telemetry"

// CollectTelemetry exports the transport counters of every node's verbs
// context into reg. Node map iteration order is nondeterministic, but the
// per-context export only sums into counters, which commutes. A nil
// registry is a no-op.
func (cl *Cluster) CollectTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for _, n := range cl.nodes {
		n.Ctx.CollectTelemetry(reg)
	}
}
