// External tests: these exercise the cluster through the full stack
// (registry algorithms over shared nodes), which the in-package tests
// cannot import without a cycle.
package cluster_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/fabric"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/topology"
)

// startAG builds a ring Allgather over the cluster and starts one
// non-blocking operation, returning a pointer that receives the result.
func startAG(t *testing.T, cl *cluster.Cluster, bytes int) **collective.Result {
	t.Helper()
	alg, err := registry.New(cl, "ring-allgather", registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var res *collective.Result
	err = alg.(collective.Starter).Start(
		collective.Op{Kind: collective.Allgather, Bytes: bytes},
		func(r *collective.Result) { res = r })
	if err != nil {
		t.Fatal(err)
	}
	return &res
}

// TestConcurrentCollectivesShareInjectionBandwidth is the property the
// shared per-host runtime exists for (§II-A): two collectives running
// concurrently on one Node go through the same verbs context and NIC
// injection port, so together they are slower than either alone — they
// split the wire instead of each getting a private one.
func TestConcurrentCollectivesShareInjectionBandwidth(t *testing.T) {
	const bytes = 256 << 10
	run := func(concurrent int) sim.Time {
		eng := sim.NewEngine(1)
		f := fabric.New(eng, topology.Star(4), fabric.Config{})
		cl := cluster.New(f, cluster.Config{})
		results := make([]**collective.Result, concurrent)
		for i := range results {
			results[i] = startAG(t, cl, bytes)
		}
		eng.Run()
		var last sim.Time
		for i, r := range results {
			if *r == nil {
				t.Fatalf("collective %d of %d never finished", i, concurrent)
			}
			if d := (*r).Duration(); d > last {
				last = d
			}
		}
		return last
	}
	alone := run(1)
	together := run(2)
	if together <= alone {
		t.Fatalf("two concurrent collectives (%v) should be slower than one alone (%v): injection bandwidth not shared",
			together, alone)
	}
	// Splitting one wire two ways should cost meaningfully — at least
	// half again the solo duration — while staying bounded (they are not
	// fully serialized either).
	if together < alone*3/2 {
		t.Fatalf("contended duration %v barely above solo %v; expected ~2x", together, alone)
	}
	if together > alone*3 {
		t.Fatalf("contended duration %v more than 3x solo %v; expected ~2x", together, alone)
	}
}

// TestDisjointHostsDoNotContend is the control: the same pair of
// collectives on disjoint host sets of one fabric (distinct NICs, star
// topology) completes in the solo duration.
func TestDisjointHostsDoNotContend(t *testing.T) {
	const bytes = 256 << 10
	eng := sim.NewEngine(1)
	f := fabric.New(eng, topology.Star(8), fabric.Config{})
	cl := cluster.New(f, cluster.Config{})
	hosts := f.Graph().Hosts()
	var results []*collective.Result
	for _, sub := range [][]topology.NodeID{hosts[:4], hosts[4:]} {
		alg, err := registry.New(cl, "ring-allgather", registry.Options{Hosts: sub})
		if err != nil {
			t.Fatal(err)
		}
		if err := alg.(collective.Starter).Start(
			collective.Op{Kind: collective.Allgather, Bytes: bytes},
			func(r *collective.Result) { results = append(results, r) }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(results) != 2 {
		t.Fatalf("finished %d of 2", len(results))
	}
	if d0, d1 := results[0].Duration(), results[1].Duration(); d0 != d1 {
		t.Fatalf("disjoint twins diverge: %v vs %v", d0, d1)
	}
}
