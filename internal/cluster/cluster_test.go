package cluster

import (
	"testing"

	"repro/internal/dpa"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
)

func testCluster(t *testing.T) *Cluster {
	t.Helper()
	eng := sim.NewEngine(1)
	g := topology.Star(4)
	f := fabric.New(eng, g, fabric.Config{})
	return New(f, Config{})
}

func TestNodeIsSingletonPerHost(t *testing.T) {
	cl := testCluster(t)
	h := cl.Fabric().Graph().Hosts()[0]
	a, b := cl.Node(h), cl.Node(h)
	if a != b {
		t.Fatal("Node() returned distinct runtimes for one host")
	}
	if a.Ctx == nil || a.CPU == nil {
		t.Fatal("node missing context or CPU")
	}
}

func TestDistinctHostsDistinctNodes(t *testing.T) {
	cl := testCluster(t)
	hosts := cl.Fabric().Graph().Hosts()
	if cl.Node(hosts[0]) == cl.Node(hosts[1]) {
		t.Fatal("two hosts share a node runtime")
	}
	if cl.Node(hosts[0]).Ctx == cl.Node(hosts[1]).Ctx {
		t.Fatal("two hosts share a verbs context")
	}
}

func TestDPALazyInstantiation(t *testing.T) {
	cl := testCluster(t)
	n := cl.Node(cl.Fabric().Graph().Hosts()[0])
	if n.dpa != nil {
		t.Fatal("DPA instantiated eagerly")
	}
	d := n.DPA()
	if d == nil || d.Capacity() != 256 {
		t.Fatal("DPA wrong")
	}
	if n.DPA() != d {
		t.Fatal("DPA not cached")
	}
}

func TestDefaultCPUCores(t *testing.T) {
	cl := testCluster(t)
	n := cl.Node(cl.Fabric().Graph().Hosts()[0])
	if n.CPU.Cores() != 24 {
		t.Fatalf("default CPU cores = %d, want 24", n.CPU.Cores())
	}
}

func TestRxArbitersSharedAndValidated(t *testing.T) {
	cl := testCluster(t)
	n := cl.Node(cl.Fabric().Graph().Hosts()[0])
	a1, err := n.RxArbiters(4, false, dpa.CPUUDRecv)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != 4 {
		t.Fatalf("arbiters = %d", len(a1))
	}
	a2, err := n.RxArbiters(4, false, dpa.CPUUDRecv)
	if err != nil {
		t.Fatal(err)
	}
	if a1[0] != a2[0] {
		t.Fatal("second caller did not get the shared arbiters")
	}
	if _, err := n.RxArbiters(8, false, dpa.CPUUDRecv); err == nil {
		t.Fatal("mismatched count accepted")
	}
	if _, err := n.RxArbiters(4, false, dpa.CPURCRecv); err == nil {
		t.Fatal("mismatched profile accepted")
	}
	if _, err := n.RxArbiters(4, true, dpa.CPUUDRecv); err == nil {
		t.Fatal("mismatched substrate (CPU vs DPA) accepted")
	}
}

func TestRxArbitersOnDPAMismatchRejected(t *testing.T) {
	// The substrate choice is part of the geometry: a host whose arbiters
	// run on the DPA cannot hand them to a caller expecting CPU arbiters.
	cl := testCluster(t)
	n := cl.Node(cl.Fabric().Graph().Hosts()[0])
	a, err := n.RxArbiters(2, true, dpa.DPAUDRecv)
	if err != nil || len(a) != 2 {
		t.Fatalf("DPA arbiters: %v (%d)", err, len(a))
	}
	if _, err := n.RxArbiters(2, false, dpa.DPAUDRecv); err == nil {
		t.Fatal("CPU request against DPA arbiters accepted")
	}
	b, err := n.RxArbiters(2, true, dpa.DPAUDRecv)
	if err != nil || b[0] != a[0] {
		t.Fatalf("matching DPA request not shared: %v", err)
	}
}
