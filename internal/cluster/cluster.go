// Package cluster owns the per-host runtime shared by every communicator
// and collective team in a simulation: one verbs context (the NIC) and one
// CPU model per host, plus an optional DPA complex. Sharing these is what
// makes concurrently running collectives (the FSDP Allgather/Reduce-Scatter
// overlap scenario of §II-A) contend for the same injection bandwidth and
// the same cores, exactly as they would on a real node.
package cluster

import (
	"fmt"

	"repro/internal/dpa"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/verbs"
)

// Config shapes the per-host resources.
type Config struct {
	// CPUCores sizes the host CPU model (default 24, the EPYC 7413 of the
	// paper's DPA testbed).
	CPUCores int
	// Verbs configures the transport layer (RQ depth, RC timeouts, DMA).
	Verbs verbs.Config
}

func (c Config) withDefaults() Config {
	if c.CPUCores == 0 {
		c.CPUCores = 24
	}
	return c
}

// Node is the runtime of one host.
type Node struct {
	Host topology.NodeID
	Ctx  *verbs.Context
	CPU  *dpa.Chip
	dpa  *dpa.Chip
	f    *fabric.Fabric

	arbiters   []*dpa.Arbiter
	arbProfile dpa.Profile
	arbOnDPA   bool
}

// DPA returns the host's SmartNIC DPA complex, instantiating it on first
// use (hosts that never offload never pay for one).
func (n *Node) DPA() *dpa.Chip {
	if n.dpa == nil {
		n.dpa = dpa.NewDPA(n.f.HostEngine(n.Host))
	}
	return n.dpa
}

// RxArbiters returns the node's shared receive arbiters, creating them on
// first use: n hardware threads (from the DPA when onDPA, else the CPU)
// each serving completion queues from every communicator on this host
// round-robin per datagram — the software traffic arbitration of §V-C.
// Later callers must request the same geometry.
func (n *Node) RxArbiters(count int, onDPA bool, p dpa.Profile) ([]*dpa.Arbiter, error) {
	if n.arbiters != nil {
		if len(n.arbiters) != count || n.arbProfile != p || n.arbOnDPA != onDPA {
			return nil, fmt.Errorf("cluster: host %d arbiters already created with different geometry", n.Host)
		}
		return n.arbiters, nil
	}
	chip := n.CPU
	if onDPA {
		chip = n.DPA()
	}
	for _, th := range chip.AllocThreads(count) {
		n.arbiters = append(n.arbiters, dpa.NewArbiter(n.f.HostEngine(n.Host), th, p))
	}
	n.arbProfile = p
	n.arbOnDPA = onDPA
	return n.arbiters, nil
}

// Cluster maps hosts to their runtime nodes.
type Cluster struct {
	f     *fabric.Fabric
	cfg   Config
	nodes map[topology.NodeID]*Node
}

// New builds an empty cluster over the fabric.
func New(f *fabric.Fabric, cfg Config) *Cluster {
	if !f.Partitioned() {
		// On a confined fabric the whole per-host runtime schedules on the
		// fabric's engine, which must then be the primary shard. A
		// partitioned fabric instead hands each host its owning shard's
		// engine via HostEngine, so the confinement requirement vanishes.
		sim.AssertShardable(f.Engine(), "cluster")
	}
	return &Cluster{f: f, cfg: cfg.withDefaults(), nodes: make(map[topology.NodeID]*Node)}
}

// Fabric returns the underlying fabric.
func (cl *Cluster) Fabric() *fabric.Fabric { return cl.f }

// Node returns (creating on first use) the runtime for a host.
func (cl *Cluster) Node(h topology.NodeID) *Node {
	if n, ok := cl.nodes[h]; ok {
		return n
	}
	n := &Node{
		Host: h,
		Ctx:  verbs.NewContext(cl.f, h, cl.cfg.Verbs),
		CPU:  dpa.NewCPU(cl.f.HostEngine(h), cl.cfg.CPUCores),
		f:    cl.f,
	}
	cl.nodes[h] = n
	return n
}
