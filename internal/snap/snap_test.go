package snap

import (
	"reflect"
	"testing"
)

// The synthetic model mirrors the shapes the real layers use: unexported
// fields, shared sub-objects, slices of structs and of pointers, maps with
// pointer values, func callbacks, a skip-typed immutable, and aliasing.

type immutable struct{ table [4]int }

type leaf struct {
	n       int
	label   string
	history []int
}

type node struct {
	id      int
	credit  float64
	l       *leaf
	peers   []*node
	queue   []leaf
	stats   map[string]uint64
	onDone  func() int
	topo    *immutable
	backref *world
}

type world struct {
	nodes map[int]*node
	order []*node
	seq   uint64
	note  string
}

func buildWorld() (*world, *immutable) {
	topo := &immutable{table: [4]int{1, 2, 3, 4}}
	w := &world{nodes: map[int]*node{}, note: "t0"}
	shared := &leaf{n: 7, label: "shared", history: []int{1, 2}}
	for i := 0; i < 3; i++ {
		n := &node{
			id:      i,
			credit:  float64(i) * 1.5,
			l:       shared,
			queue:   []leaf{{n: i * 10, label: "q"}},
			stats:   map[string]uint64{"tx": uint64(i), "rx": 0},
			onDone:  func() int { return 1 },
			topo:    topo,
			backref: w,
		}
		w.nodes[i] = n
		w.order = append(w.order, n)
	}
	w.order[0].peers = []*node{w.order[1], w.order[2]}
	return w, topo
}

func cfg() Config {
	return Config{Skip: []reflect.Type{reflect.TypeOf(immutable{})}}
}

func scramble(w *world) {
	w.seq = 999
	w.note = "dirty"
	w.nodes[0].credit = -1
	w.nodes[0].stats["tx"] = 42
	w.nodes[0].stats["new"] = 1
	delete(w.nodes[1].stats, "rx")
	w.nodes[1].l.n = 1000 // shared leaf: mutation visible from every node
	w.nodes[1].l.history[0] = -5
	w.nodes[2].queue[0].n = 77
	w.nodes[2].queue = append(w.nodes[2].queue, leaf{n: 5})
	w.order[0].peers = w.order[0].peers[:1]
	delete(w.nodes, 2) // map identity must survive entry deletion
	w.nodes[9] = &node{id: 9}
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	w, _ := buildWorld()
	s := Capture(cfg(), w)
	before := s.Digest()
	if s.Bytes() <= 0 || s.Regions() == 0 {
		t.Fatalf("empty capture: bytes=%d regions=%d", s.Bytes(), s.Regions())
	}

	origNodes := w.nodes // map identity
	origLeaf := w.nodes[0].l
	scramble(w)
	s.Restore()

	if &w.nodes == nil || reflect.ValueOf(w.nodes).Pointer() != reflect.ValueOf(origNodes).Pointer() {
		t.Fatal("map identity not preserved across restore")
	}
	if w.nodes[0].l != origLeaf || w.nodes[0].l != w.nodes[1].l {
		t.Fatal("shared leaf aliasing not preserved")
	}
	if w.seq != 0 || w.note != "t0" {
		t.Fatalf("scalars not rewound: seq=%d note=%q", w.seq, w.note)
	}
	if w.nodes[0].credit != 0 || w.nodes[0].stats["tx"] != 0 {
		t.Fatalf("node 0 not rewound: credit=%v tx=%d", w.nodes[0].credit, w.nodes[0].stats["tx"])
	}
	if _, ok := w.nodes[0].stats["new"]; ok {
		t.Fatal("inserted map key survived restore")
	}
	if w.nodes[1].stats["rx"] != 0 {
		t.Fatal("deleted map key not restored")
	}
	if _, ok := w.nodes[9]; ok {
		t.Fatal("inserted node survived restore")
	}
	if w.nodes[2] == nil || w.nodes[2].queue[0].n != 20 || len(w.nodes[2].queue) != 1 {
		t.Fatalf("node 2 slice not rewound: %+v", w.nodes[2].queue)
	}
	if w.nodes[1].l.n != 7 || w.nodes[1].l.history[0] != 1 {
		t.Fatalf("shared leaf not rewound: n=%d history=%v", w.nodes[1].l.n, w.nodes[1].l.history)
	}
	if len(w.order[0].peers) != 2 {
		t.Fatalf("peers slice header not rewound: %d", len(w.order[0].peers))
	}
	if w.nodes[0].onDone == nil || w.nodes[0].onDone() != 1 {
		t.Fatal("func field lost")
	}

	// Recapturing a restored world must produce the identical digest.
	if after := Capture(cfg(), w).Digest(); after != before {
		t.Fatalf("digest drift after restore: %x vs %x", after, before)
	}
}

// TestRestoreIsRepeatable: a State may be restored many times, including
// after further mutation.
func TestRestoreIsRepeatable(t *testing.T) {
	w, _ := buildWorld()
	s := Capture(cfg(), w)
	want := s.Digest()
	for i := 0; i < 3; i++ {
		scramble(w)
		s.Restore()
		if got := Capture(cfg(), w).Digest(); got != want {
			t.Fatalf("round %d: digest %x != %x", i, got, want)
		}
	}
}

// TestDigestAddressFree: two independently built identical worlds must hash
// identically (digests carry no pointer bits), and a value difference must
// show.
func TestDigestAddressFree(t *testing.T) {
	w1, _ := buildWorld()
	w2, _ := buildWorld()
	d1 := Capture(cfg(), w1).Digest()
	d2 := Capture(cfg(), w2).Digest()
	if d1 != d2 {
		t.Fatalf("identical builds digest differently: %x vs %x", d1, d2)
	}
	w2.nodes[1].stats["rx"] = 1
	if d3 := Capture(cfg(), w2).Digest(); d3 == d1 {
		t.Fatal("value mutation not reflected in digest")
	}
}

// TestSkipTypesNotFollowed: the skip-typed pointee is neither captured nor
// restored — external mutation of it survives a Restore.
func TestSkipTypesNotFollowed(t *testing.T) {
	w, topo := buildWorld()
	s := Capture(cfg(), w)
	topo.table[0] = 99
	s.Restore()
	if topo.table[0] != 99 {
		t.Fatal("skip-typed object was captured/restored")
	}
	if w.nodes[0].topo != topo {
		t.Fatal("skip-typed pointer identity lost")
	}
}

// TestMultipleRoots: roots sharing structure are captured once.
func TestMultipleRoots(t *testing.T) {
	w, _ := buildWorld()
	s1 := Capture(cfg(), w, w.order[0], w.nodes[1].l)
	s2 := Capture(cfg(), w)
	if s1.Regions() != s2.Regions() {
		t.Fatalf("duplicate roots re-captured regions: %d vs %d", s1.Regions(), s2.Regions())
	}
	w.nodes[1].l.n = -3
	s1.Restore()
	if w.nodes[1].l.n != 7 {
		t.Fatal("restore through multi-root capture failed")
	}
}
