// Package snap captures and restores the mutable state of a model object
// graph — the fabric's channels and NICs, verbs contexts and queue pairs,
// DPA threads, telemetry registries, collective instances — so a warm-start
// fork can rewind the SAME objects to a snapshot instead of rebuilding them.
//
// Capture walks the graph reflectively from a set of roots, taking a typed
// shallow copy of every reachable struct region (including unexported
// fields, reached through their addresses) plus the contents of every
// slice backing array and map. Restore writes those copies back in place:
// struct bytes are copied back (restoring scalars, pointers, slice/map
// headers, func values and interface words), slice elements are written
// back into their original backing arrays (preserving aliasing), and maps
// are cleared and re-filled (preserving map identity for everyone holding
// the reference). Nothing is reallocated, so every pointer anyone holds
// into the graph stays valid — the property that makes restore-in-place
// composable with the event engine's own Snapshot/Restore, whose pending
// events point into this very graph.
//
// Types listed in Config.Skip are treated as immutable (or as externally
// managed, like *sim.Engine): the pointer is preserved but never followed.
//
// Limitations, by design:
//   - Closure-captured variables that are not reachable through the graph
//     are invisible. The model layers here store state in struct fields
//     and pass closures only as stateless callbacks (method values,
//     completion notifications), which is why the walk suffices.
//   - Channels and sync primitives are not followed (none exist in the
//     model layers; the engine owns all concurrency).
//
// Digest hashes the captured value data — never addresses — over a
// deterministic traversal (struct fields in order, slices in order, map
// keys sorted by their formatted value), so two independently built,
// identically constructed graphs produce the same digest; the replay
// debugger uses this as its waypoint byte-identity check.
package snap

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"reflect"
	"sort"
	"unsafe"
)

// Config parameterizes a capture.
type Config struct {
	// Skip lists pointer-target types the walk must not follow: immutable
	// shared structure (topologies, routing tables) and externally managed
	// machinery (*sim.Engine). Give the pointed-to type, e.g.
	// reflect.TypeOf(topology.Graph{}).
	Skip []reflect.Type
	// Payload lists slice element types whose contents are opaque bulk
	// data: the walk records the slice length in the digest but neither
	// captures, hashes, nor restores the contents. Use for data planes —
	// message buffers, staging rings — whose bytes never influence model
	// behavior (the simulation times sizes, not content). On the testbed
	// stack the staging rings alone are tens of megabytes; excluding them
	// is what keeps a fork O(dirty state) instead of O(buffer capacity).
	Payload []reflect.Type
}

// State is one captured snapshot of a model graph. Construct with Capture;
// rewind with Restore. A State is immutable and may be restored any number
// of times.
type State struct {
	regions []region
	maps    []mapRecord
	digest  uint64
	bytes   int
}

// region is one typed memory area (a struct pointee or a slice backing
// array) with its saved copy.
type region struct {
	ptr   unsafe.Pointer
	typ   reflect.Type
	saved reflect.Value // *typ holding the snapshot copy
}

// mapRecord is one reachable map with its saved entries.
type mapRecord struct {
	m    reflect.Value
	keys []reflect.Value
	vals []reflect.Value
}

// Digest returns the deterministic value-data hash of the captured state.
func (s *State) Digest() uint64 { return s.digest }

// Bytes estimates the snapshot's in-memory size (informational metric).
func (s *State) Bytes() int { return s.bytes }

// Regions returns the number of captured memory regions (diagnostics).
func (s *State) Regions() int { return len(s.regions) }

// capture carries one walk's bookkeeping.
type capture struct {
	cfg   Config
	state *State
	seen  map[seenKey]int // region identity -> first-visit id (for digest)
	h     uint64          // FNV-1a running hash
}

type seenKey struct {
	ptr unsafe.Pointer
	typ reflect.Type
}

// Capture snapshots everything reachable from the roots. Roots are
// typically the top-level model objects (a *fabric.Fabric, a
// *cluster.Cluster, a *telemetry.Registry, a collective instance); pass
// pointers or interfaces holding pointers.
func Capture(cfg Config, roots ...any) *State {
	c := &capture{
		cfg:   cfg,
		state: &State{},
		seen:  map[seenKey]int{},
		h:     1469598103934665603, // FNV-1a offset basis
	}
	for _, r := range roots {
		if r == nil {
			continue
		}
		c.walkValue(reflect.ValueOf(r))
	}
	c.state.digest = c.h
	return c.state
}

// Restore writes every captured region and map back in place. Regions the
// run never dirtied are detected with a read-only compare and skipped: on
// a model graph dominated by rarely-touched buffers this makes restore
// proportional to what actually changed, not to what was captured.
func (s *State) Restore() {
	for i := range s.regions {
		r := &s.regions[i]
		n := int(r.typ.Size())
		cur := unsafe.Slice((*byte)(r.ptr), n)
		want := unsafe.Slice((*byte)(r.saved.UnsafePointer()), n)
		if bytes.Equal(cur, want) {
			continue
		}
		reflect.NewAt(r.typ, r.ptr).Elem().Set(r.saved.Elem())
	}
	for i := range s.maps {
		mr := &s.maps[i]
		// Delete keys not part of the snapshot, then re-assert the saved
		// entries; the map object itself is never replaced.
		live := mr.m.MapKeys()
		for _, k := range live {
			mr.m.SetMapIndex(k, reflect.Value{})
		}
		for j := range mr.keys {
			mr.m.SetMapIndex(mr.keys[j], mr.vals[j])
		}
	}
}

// --- hash helpers ---------------------------------------------------------

func (c *capture) mix(b []byte) {
	h := c.h
	for _, x := range b {
		h ^= uint64(x)
		h *= 1099511628211
	}
	c.h = h
}

func (c *capture) mixUint(v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	c.mix(b[:])
}

func (c *capture) mixString(s string) {
	c.mixUint(uint64(len(s)))
	c.mix([]byte(s))
}

// mixRaw folds n bytes at p into the hash, FNV-style over 8-byte words:
// the same value-data-only property as byte-wise mixing, at one loop
// iteration per word — the difference between microseconds and tens of
// milliseconds on a multi-megabyte buffer region. The region is viewed as
// bytes (always a legal conversion, unlike a *uint64 view of a small or
// unaligned region, which trips checkptr under -race) and words are
// assembled little-endian — a single unaligned load on amd64, and a
// platform-independent digest everywhere else.
func (c *capture) mixRaw(p unsafe.Pointer, n int) {
	b := unsafe.Slice((*byte)(p), n)
	h := c.h
	for len(b) >= 8 {
		h ^= binary.LittleEndian.Uint64(b)
		h *= 1099511628211
		b = b[8:]
	}
	for _, x := range b {
		h ^= uint64(x)
		h *= 1099511628211
	}
	c.h = h
}

// --- the walk -------------------------------------------------------------

func (c *capture) skipType(t reflect.Type) bool {
	for _, s := range c.cfg.Skip {
		if t == s {
			return true
		}
	}
	return false
}

func (c *capture) payloadType(t reflect.Type) bool {
	for _, s := range c.cfg.Payload {
		if t == s {
			return true
		}
	}
	return false
}

// rawKind reports whether values of kind k hold no pointers, so a
// slice/array of them is raw data: capture is one memcpy and the digest
// one word-wise pass, with no per-element reflection. Structs and arrays
// are excluded even when pointer-free — their padding bytes are
// unspecified and would poison the digest.
func rawKind(k reflect.Kind) bool {
	switch k {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		return true
	}
	return false
}

// walkValue dispatches on the value's kind. v must be a full-power value
// (obtained from a root, via reflect.NewAt, or as a copy) — never a
// read-only unexported field projection.
func (c *capture) walkValue(v reflect.Value) {
	switch v.Kind() {
	case reflect.Pointer:
		c.walkPointer(v)
	case reflect.Interface:
		if v.IsNil() {
			c.mixString("nil-iface")
			return
		}
		elem := v.Elem()
		c.mixString(elem.Type().String())
		// Box copies are immutable through the interface; only pointers
		// inside them can lead to mutable state.
		c.walkValue(elem)
	case reflect.Struct:
		c.walkStructCopy(v)
	case reflect.Map:
		c.walkMap(v)
	case reflect.Slice:
		c.walkSlice(v)
	case reflect.Array:
		if rawKind(v.Type().Elem().Kind()) && v.CanAddr() {
			c.mixRaw(unsafe.Pointer(v.UnsafeAddr()), int(v.Type().Size()))
			return
		}
		for i := 0; i < v.Len(); i++ {
			c.walkValue(full(v.Index(i)))
		}
	case reflect.Func:
		if v.IsNil() {
			c.mixString("nil-func")
		} else {
			c.mixString("func:" + v.Type().String())
		}
	case reflect.Chan, reflect.UnsafePointer:
		c.mixString("opaque:" + v.Kind().String())
	case reflect.String:
		c.mixString(v.String())
	case reflect.Bool:
		if v.Bool() {
			c.mixUint(1)
		} else {
			c.mixUint(0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		c.mixUint(uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		c.mixUint(v.Uint())
	case reflect.Float32, reflect.Float64:
		c.mixUint(mathFloat64bits(v.Float()))
	case reflect.Complex64, reflect.Complex128:
		cv := v.Complex()
		c.mixUint(mathFloat64bits(real(cv)))
		c.mixUint(mathFloat64bits(imag(cv)))
	}
}

func mathFloat64bits(f float64) uint64 { return *(*uint64)(unsafe.Pointer(&f)) }

// full strips the read-only flag from a field projection by re-deriving
// the value from its address. v must be addressable.
func full(v reflect.Value) reflect.Value {
	if v.CanInterface() && v.CanSet() {
		return v
	}
	return reflect.NewAt(v.Type(), unsafe.Pointer(v.UnsafeAddr())).Elem()
}

// walkPointer visits a pointer: skip-listed and nil targets are hashed as
// markers; new targets are captured as regions and recursed into; already
// seen targets hash their first-visit id (address-free identity).
func (c *capture) walkPointer(v reflect.Value) {
	if v.IsNil() {
		c.mixString("nil")
		return
	}
	t := v.Type().Elem()
	if c.skipType(t) {
		c.mixString("skip:" + t.String())
		return
	}
	ptr := v.UnsafePointer()
	key := seenKey{ptr, t}
	if id, ok := c.seen[key]; ok {
		c.mixString("ref")
		c.mixUint(uint64(id))
		return
	}
	id := len(c.seen)
	c.seen[key] = id
	c.mixString("obj:" + t.String())
	c.mixUint(uint64(id))

	// Save the pointee as a region (raw typed copy), then recurse into
	// its contents for referenced containers.
	pointee := reflect.NewAt(t, ptr).Elem()
	saved := reflect.New(t)
	saved.Elem().Set(pointee)
	c.state.regions = append(c.state.regions, region{ptr: ptr, typ: t, saved: saved})
	c.state.bytes += int(t.Size())
	c.walkValue(saved.Elem()) // recurse on the copy: same pointers, no aliasing hazards
}

// walkStructCopy hashes and recurses a struct VALUE (a copy — already
// captured as part of its containing region). Unexported fields are
// reached through the copy's own address.
func (c *capture) walkStructCopy(v reflect.Value) {
	t := v.Type()
	if c.skipType(t) {
		c.mixString("skipval:" + t.String())
		return
	}
	var base unsafe.Pointer
	if v.CanAddr() {
		base = unsafe.Pointer(v.UnsafeAddr())
	} else {
		// Unaddressable copy (e.g. a map value): re-home it.
		h := reflect.New(t)
		h.Elem().Set(v)
		base = h.UnsafePointer()
	}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		fv := reflect.NewAt(f.Type, unsafe.Add(base, f.Offset)).Elem()
		c.mixString(f.Name)
		c.walkValue(fv)
	}
}

// walkSlice captures the backing array as a region and recurses into the
// elements. Payload-typed contents are skipped wholesale; raw (pointer-
// free) elements are captured with one copy and hashed word-wise instead
// of reflecting over every element.
func (c *capture) walkSlice(v reflect.Value) {
	n := v.Len()
	c.mixUint(uint64(n))
	if n == 0 {
		return
	}
	et := v.Type().Elem()
	if c.payloadType(et) {
		c.mixString("payload:" + et.String())
		return
	}
	arrT := reflect.ArrayOf(n, et)
	ptr := v.UnsafePointer()
	key := seenKey{ptr, arrT}
	if id, ok := c.seen[key]; ok {
		c.mixString("sliceref")
		c.mixUint(uint64(id))
		return
	}
	id := len(c.seen)
	c.seen[key] = id
	saved := reflect.New(arrT)
	reflect.Copy(saved.Elem().Slice(0, n), v)
	c.state.regions = append(c.state.regions, region{ptr: ptr, typ: arrT, saved: saved})
	c.state.bytes += int(arrT.Size())
	if rawKind(et.Kind()) {
		c.mixRaw(saved.UnsafePointer(), int(arrT.Size()))
		return
	}
	for i := 0; i < n; i++ {
		c.walkValue(saved.Elem().Index(i))
	}
}

// walkMap records the map's entries for clear-and-refill restore and
// recurses into keys and values, in sorted key order so the digest (and
// the region list) is iteration-order-independent.
func (c *capture) walkMap(v reflect.Value) {
	if v.IsNil() {
		c.mixString("nil-map")
		return
	}
	keys := v.MapKeys()
	c.mixUint(uint64(len(keys)))
	type kv struct {
		label string
		k     reflect.Value
	}
	sorted := make([]kv, len(keys))
	for i, k := range keys {
		sorted[i] = kv{fmt.Sprintf("%v", k.Interface()), k}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].label < sorted[j].label })
	mr := mapRecord{m: v}
	for _, e := range sorted {
		val := v.MapIndex(e.k)
		mr.keys = append(mr.keys, e.k)
		mr.vals = append(mr.vals, val)
		c.mixString(e.label)
		c.walkValue(e.k)
		c.walkValue(val)
		c.state.bytes += int(e.k.Type().Size() + val.Type().Size())
	}
	c.state.maps = append(c.state.maps, mr)
}
