package topology

import (
	"testing"
	"testing/quick"
)

func TestTwoLevelFatTreeShape(t *testing.T) {
	g, err := TwoLevelFatTree(FatTreeSpec{Hosts: 8, HostsPerLeaf: 4, Spines: 2, TrunkLinks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Hosts()); got != 8 {
		t.Errorf("hosts = %d, want 8", got)
	}
	if got := len(g.Switches()); got != 4 { // 2 leaves + 2 spines
		t.Errorf("switches = %d, want 4", got)
	}
	// links: 8 host links + 2 leaves * 2 spines = 12
	if got := len(g.Links); got != 12 {
		t.Errorf("links = %d, want 12", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoLevelFatTreeInvalidSpec(t *testing.T) {
	for _, spec := range []FatTreeSpec{
		{Hosts: 0, HostsPerLeaf: 4, Spines: 2},
		{Hosts: 8, HostsPerLeaf: 0, Spines: 2},
		{Hosts: 8, HostsPerLeaf: 4, Spines: 0},
	} {
		if _, err := TwoLevelFatTree(spec); err == nil {
			t.Errorf("spec %+v accepted, want error", spec)
		}
	}
}

func TestTestbed188(t *testing.T) {
	g := Testbed188()
	if got := len(g.Hosts()); got != 188 {
		t.Errorf("hosts = %d, want 188", got)
	}
	if got := len(g.Switches()); got != 18 {
		t.Errorf("switches = %d, want 18 (paper: 18 SX6036)", got)
	}
	// Radix check: no switch may exceed 36 ports (SX6036).
	for _, sw := range g.Switches() {
		if p := g.NumPorts(sw); p > 36 {
			t.Errorf("switch %d has %d ports, exceeds radix 36", sw, p)
		}
	}
}

func TestThreeLevelFatTree(t *testing.T) {
	g, err := ThreeLevelFatTree(4, 16) // full k=4 tree: 16 hosts, 20 switches
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Hosts()); got != 16 {
		t.Errorf("hosts = %d, want 16", got)
	}
	if got := len(g.Switches()); got != 20 { // 4 cores + 4 pods * (2+2)
		t.Errorf("switches = %d, want 20", got)
	}
}

func TestThreeLevelFatTreePartial(t *testing.T) {
	g, err := ThreeLevelFatTree(4, 5) // 2 pods needed (4 hosts/pod)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Hosts()); got != 5 {
		t.Errorf("hosts = %d, want 5", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestThreeLevelFatTreeRejectsOddRadix(t *testing.T) {
	if _, err := ThreeLevelFatTree(5, 10); err == nil {
		t.Error("odd radix accepted")
	}
	if _, err := ThreeLevelFatTree(4, 17); err == nil {
		t.Error("too many hosts accepted")
	}
}

func TestBackToBack(t *testing.T) {
	g := BackToBack()
	if len(g.Hosts()) != 2 || len(g.Switches()) != 1 {
		t.Fatalf("back-to-back shape wrong: %d hosts %d switches", len(g.Hosts()), len(g.Switches()))
	}
}

func TestStar(t *testing.T) {
	g := Star(5)
	if len(g.Hosts()) != 5 || len(g.Switches()) != 1 {
		t.Fatal("star shape wrong")
	}
	for _, h := range g.Hosts() {
		if g.LeafOf(h) != 0 {
			t.Fatalf("host %d leaf = %d", h, g.LeafOf(h))
		}
	}
}

func TestLeafOfPanicsOnSwitch(t *testing.T) {
	g := Star(2)
	defer func() {
		if recover() == nil {
			t.Error("LeafOf(switch) did not panic")
		}
	}()
	g.LeafOf(0) // node 0 is the switch
}

func TestPortToward(t *testing.T) {
	g := Star(3)
	sw := g.Switches()[0]
	for _, h := range g.Hosts() {
		p := g.PortToward(sw, h)
		if p < 0 || g.Adj[sw][p].Peer != h {
			t.Fatalf("PortToward(%d,%d) = %d", sw, h, p)
		}
		if g.PortToward(h, sw) != 0 {
			t.Fatalf("host uplink port != 0")
		}
	}
	if g.PortToward(1, 2) != -1 {
		t.Fatal("non-adjacent nodes reported a port")
	}
}

func TestRoutingReachesEveryHost(t *testing.T) {
	g := Testbed188()
	rt := g.BuildRouting()
	hosts := g.Hosts()
	for _, sw := range g.Switches() {
		for _, dst := range hosts {
			cands := rt.Candidates(sw, dst)
			if len(cands) == 0 {
				t.Fatalf("switch %d has no route to host %d", sw, dst)
			}
			for _, p := range cands {
				if p < 0 || p >= g.NumPorts(sw) {
					t.Fatalf("switch %d candidate port %d out of range", sw, p)
				}
			}
		}
	}
}

func TestRoutingFollowsShortestPath(t *testing.T) {
	g, err := TwoLevelFatTree(FatTreeSpec{Hosts: 8, HostsPerLeaf: 4, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt := g.BuildRouting()
	hosts := g.Hosts()
	// From each host's leaf, walk candidate ports to the destination and
	// count hops; same-leaf pairs must take 2 hops (host-leaf-host),
	// cross-leaf 4 (host-leaf-spine-leaf-host).
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			hops := 0
			cur := g.LeafOf(src)
			for cur != dst {
				cands := rt.Candidates(cur, dst)
				if len(cands) == 0 {
					t.Fatalf("no route %d->%d at %d", src, dst, cur)
				}
				cur = g.Adj[cur][cands[0]].Peer
				hops++
				if hops > 10 {
					t.Fatalf("routing loop %d->%d", src, dst)
				}
			}
			sameLeaf := g.LeafOf(src) == g.LeafOf(dst)
			want := 1
			if !sameLeaf {
				want = 3 // leaf -> spine -> leaf -> host
			}
			if hops != want {
				t.Fatalf("%d->%d took %d switch hops, want %d", src, dst, hops, want)
			}
		}
	}
}

func TestRoutingMultipath(t *testing.T) {
	g, err := TwoLevelFatTree(FatTreeSpec{Hosts: 8, HostsPerLeaf: 4, Spines: 4})
	if err != nil {
		t.Fatal(err)
	}
	rt := g.BuildRouting()
	// A leaf routing to a host on the *other* leaf must see all 4 spines as
	// candidates.
	leaf0 := g.LeafOf(g.Hosts()[0])
	otherHost := g.Hosts()[7]
	if g.LeafOf(otherHost) == leaf0 {
		t.Fatal("test setup wrong: hosts share a leaf")
	}
	if got := len(rt.Candidates(leaf0, otherHost)); got != 4 {
		t.Fatalf("cross-leaf candidates = %d, want 4 (one per spine)", got)
	}
}

func TestMulticastTreeStar(t *testing.T) {
	g := Star(4)
	sw := g.Switches()[0]
	members := g.Hosts()[:3]
	mt, err := g.BuildMulticastTree(sw, members)
	if err != nil {
		t.Fatal(err)
	}
	if len(mt.TreePorts[sw]) != 3 {
		t.Fatalf("switch tree ports = %v, want 3 entries", mt.TreePorts[sw])
	}
	if mt.OnTree(g.Hosts()[3]) {
		t.Fatal("non-member host on tree")
	}
	for _, m := range members {
		if !mt.OnTree(m) {
			t.Fatalf("member %d not on tree", m)
		}
	}
}

func TestMulticastTreeSpansFatTree(t *testing.T) {
	g := Testbed188()
	hosts := g.Hosts()
	spine := g.Switches()[12] // first spine (leaves are 0..11)
	if g.Nodes[spine].Level != 2 {
		t.Fatalf("node %d not a spine", spine)
	}
	mt, err := g.BuildMulticastTree(spine, hosts)
	if err != nil {
		t.Fatal(err)
	}
	// Every member must be able to reach the root through tree ports.
	for _, m := range hosts {
		cur := m
		steps := 0
		for cur != spine {
			ports := mt.TreePorts[cur]
			if len(ports) == 0 {
				t.Fatalf("member %d stranded at %d", m, cur)
			}
			// Move along the port whose peer is closer to the root: on a
			// tree walk up, that is the unique port not leading to where we
			// came from; for hosts it is port 0.
			next := NodeID(-1)
			for _, p := range ports {
				peer := g.Adj[cur][p].Peer
				if g.Nodes[peer].Level > g.Nodes[cur].Level {
					next = peer
					break
				}
			}
			if next < 0 {
				t.Fatalf("no upward tree port at node %d (member %d)", cur, m)
			}
			cur = next
			if steps++; steps > 5 {
				t.Fatalf("tree walk from %d did not reach root", m)
			}
		}
	}
}

func TestMulticastTreeDeduplicatesMembers(t *testing.T) {
	g := Star(3)
	h := g.Hosts()[0]
	mt, err := g.BuildMulticastTree(g.Switches()[0], []NodeID{h, h, h})
	if err != nil {
		t.Fatal(err)
	}
	if len(mt.Members) != 1 {
		t.Fatalf("members = %v, want single entry", mt.Members)
	}
}

func TestMulticastTreeErrors(t *testing.T) {
	g := Star(3)
	if _, err := g.BuildMulticastTree(g.Hosts()[0], g.Hosts()); err == nil {
		t.Error("host as root accepted")
	}
	if _, err := g.BuildMulticastTree(g.Switches()[0], nil); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := g.BuildMulticastTree(g.Switches()[0], []NodeID{0}); err == nil {
		t.Error("switch as member accepted")
	}
}

// Property: for random two-level fat-trees, every multicast tree connects
// all members with each node's tree ports forming a connected subgraph.
func TestPropertyMulticastTreeConnects(t *testing.T) {
	f := func(hostsRaw, spinesRaw uint8, rootPick uint8) bool {
		hosts := int(hostsRaw%30) + 2
		spines := int(spinesRaw%4) + 1
		g, err := TwoLevelFatTree(FatTreeSpec{Hosts: hosts, HostsPerLeaf: 4, Spines: spines})
		if err != nil {
			return false
		}
		sws := g.Switches()
		root := sws[int(rootPick)%len(sws)]
		mt, err := g.BuildMulticastTree(root, g.Hosts())
		if err != nil {
			return false
		}
		// BFS over tree edges from root must reach every member.
		seen := map[NodeID]bool{root: true}
		queue := []NodeID{root}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, p := range mt.TreePorts[n] {
				peer := g.Adj[n][p].Peer
				if !mt.OnTree(peer) {
					return false // tree edge leads off-tree
				}
				if !seen[peer] {
					seen[peer] = true
					queue = append(queue, peer)
				}
			}
		}
		for _, m := range mt.Members {
			if !seen[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestValidateDetectsDisconnected(t *testing.T) {
	g := newGraph()
	g.addNode(Switch, 1, "a")
	g.addNode(Switch, 1, "b") // never linked
	if err := g.Validate(); err == nil {
		t.Error("disconnected graph passed validation")
	}
}
