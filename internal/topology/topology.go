// Package topology builds the static network graphs used by the fabric
// simulator: two- and three-level fat-trees (the paper's UCC testbed is a
// 188-node fat-tree of 18 radix-36 SX6036 switches), a back-to-back pair
// (the DPA testbed), plus up/down unicast routing tables and the multicast
// spanning trees that switches use to replicate datagrams.
package topology

import (
	"fmt"
	"sort"
)

// NodeID identifies a node (host or switch) in the graph.
type NodeID int

// Kind discriminates hosts from switches.
type Kind uint8

const (
	// Host is a compute endpoint with a NIC attached to exactly one leaf.
	Host Kind = iota
	// Switch is a fabric switch.
	Switch
)

func (k Kind) String() string {
	if k == Host {
		return "host"
	}
	return "switch"
}

// Node is a vertex of the topology graph. Level 0 is the host layer; leaf
// switches are level 1, spines level 2, cores level 3.
type Node struct {
	ID    NodeID
	Kind  Kind
	Level int
	Name  string
}

// Link is an undirected cable between two nodes. The fabric simulator
// instantiates one unidirectional channel per direction. APort/BPort are
// the port indices on each endpoint (positions in the adjacency lists).
type Link struct {
	ID           int
	A, B         NodeID
	APort, BPort int
}

// Neighbor is one adjacency entry: the port with this index on the owning
// node connects over Link to Peer.
type Neighbor struct {
	Peer NodeID
	Link int
}

// Graph is an immutable topology. Build one with a constructor
// (TwoLevelFatTree, ThreeLevelFatTree, Testbed188, BackToBack) and treat it
// as read-only afterwards.
type Graph struct {
	Nodes []Node
	Links []Link
	// Adj[n][p] is the neighbor reached through port p of node n.
	Adj [][]Neighbor
}

func newGraph() *Graph { return &Graph{} }

func (g *Graph) addNode(kind Kind, level int, name string) NodeID {
	id := NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, Node{ID: id, Kind: kind, Level: level, Name: name})
	g.Adj = append(g.Adj, nil)
	return id
}

func (g *Graph) addLink(a, b NodeID) int {
	id := len(g.Links)
	ap, bp := len(g.Adj[a]), len(g.Adj[b])
	g.Links = append(g.Links, Link{ID: id, A: a, B: b, APort: ap, BPort: bp})
	g.Adj[a] = append(g.Adj[a], Neighbor{Peer: b, Link: id})
	g.Adj[b] = append(g.Adj[b], Neighbor{Peer: a, Link: id})
	return id
}

// Hosts returns the IDs of all host nodes in ascending order.
func (g *Graph) Hosts() []NodeID {
	var hs []NodeID
	for _, n := range g.Nodes {
		if n.Kind == Host {
			hs = append(hs, n.ID)
		}
	}
	return hs
}

// TopSwitches returns every switch at the topology's highest level (the
// spine/core tier) in node order: the candidate roots for multicast and
// reduction trees. Empty if the graph has no switches.
func (g *Graph) TopSwitches() []NodeID {
	maxLevel := 0
	for _, n := range g.Nodes {
		if n.Kind == Switch && n.Level > maxLevel {
			maxLevel = n.Level
		}
	}
	var out []NodeID
	for _, n := range g.Nodes {
		if n.Kind == Switch && n.Level == maxLevel {
			out = append(out, n.ID)
		}
	}
	return out
}

// Switches returns the IDs of all switch nodes in ascending order.
func (g *Graph) Switches() []NodeID {
	var ss []NodeID
	for _, n := range g.Nodes {
		if n.Kind == Switch {
			ss = append(ss, n.ID)
		}
	}
	return ss
}

// NumPorts returns the number of ports on node n.
func (g *Graph) NumPorts(n NodeID) int { return len(g.Adj[n]) }

// PortToward returns the port index on node n whose link leads to neighbor
// peer, or -1 if they are not adjacent.
func (g *Graph) PortToward(n, peer NodeID) int {
	for p, nb := range g.Adj[n] {
		if nb.Peer == peer {
			return p
		}
	}
	return -1
}

// Validate performs structural sanity checks and returns the first problem
// found, if any. Constructors call it; tests call it on every preset.
func (g *Graph) Validate() error {
	for _, n := range g.Nodes {
		if n.Kind == Host && len(g.Adj[n.ID]) != 1 {
			return fmt.Errorf("topology: host %d has %d ports, want 1", n.ID, len(g.Adj[n.ID]))
		}
	}
	for _, l := range g.Links {
		if g.Adj[l.A][l.APort].Peer != l.B || g.Adj[l.B][l.BPort].Peer != l.A {
			return fmt.Errorf("topology: link %d adjacency inconsistent", l.ID)
		}
	}
	// Connectivity: BFS from node 0 must reach every node.
	if len(g.Nodes) > 0 {
		seen := make([]bool, len(g.Nodes))
		queue := []NodeID{0}
		seen[0] = true
		count := 1
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, nb := range g.Adj[n] {
				if !seen[nb.Peer] {
					seen[nb.Peer] = true
					count++
					queue = append(queue, nb.Peer)
				}
			}
		}
		if count != len(g.Nodes) {
			return fmt.Errorf("topology: graph is disconnected (%d of %d reachable)", count, len(g.Nodes))
		}
	}
	return nil
}

// FatTreeSpec parameterizes a two-level (leaf/spine) fat-tree.
type FatTreeSpec struct {
	Hosts        int // number of compute endpoints
	HostsPerLeaf int // down-ports used per leaf switch
	Spines       int // number of spine switches
	TrunkLinks   int // parallel links between each (leaf, spine) pair
}

// TwoLevelFatTree builds a leaf/spine fat-tree. Every leaf connects to every
// spine with TrunkLinks parallel cables, so the up-capacity of a leaf is
// Spines*TrunkLinks links.
func TwoLevelFatTree(spec FatTreeSpec) (*Graph, error) {
	if spec.Hosts <= 0 || spec.HostsPerLeaf <= 0 || spec.Spines <= 0 {
		return nil, fmt.Errorf("topology: invalid spec %+v", spec)
	}
	if spec.TrunkLinks <= 0 {
		spec.TrunkLinks = 1
	}
	g := newGraph()
	leaves := (spec.Hosts + spec.HostsPerLeaf - 1) / spec.HostsPerLeaf

	leafIDs := make([]NodeID, leaves)
	for i := range leafIDs {
		leafIDs[i] = g.addNode(Switch, 1, fmt.Sprintf("leaf%d", i))
	}
	spineIDs := make([]NodeID, spec.Spines)
	for i := range spineIDs {
		spineIDs[i] = g.addNode(Switch, 2, fmt.Sprintf("spine%d", i))
	}
	for h := 0; h < spec.Hosts; h++ {
		id := g.addNode(Host, 0, fmt.Sprintf("host%d", h))
		g.addLink(id, leafIDs[h/spec.HostsPerLeaf])
	}
	for _, leaf := range leafIDs {
		for _, spine := range spineIDs {
			for t := 0; t < spec.TrunkLinks; t++ {
				g.addLink(leaf, spine)
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Testbed188 reproduces the shape of the paper's UCC testbed: 188 hosts on
// a fat-tree of 18 radix-36 switches (12 leaves with 16 hosts each, 6
// spines, 3-wide trunks: 16 down + 18 up = 34 <= 36 ports per leaf).
func Testbed188() *Graph {
	g, err := TwoLevelFatTree(FatTreeSpec{
		Hosts:        188,
		HostsPerLeaf: 16,
		Spines:       6,
		TrunkLinks:   3,
	})
	if err != nil {
		panic(err) // spec is a constant; failure is a programming error
	}
	return g
}

// ThreeLevelFatTree builds a k-ary fat-tree (Al-Fares et al.): k pods, each
// with k/2 edge and k/2 aggregation switches, (k/2)^2 core switches, and
// k/2 hosts per edge switch. hosts limits how many endpoints are actually
// populated (hosts <= k^3/4); pods are filled in order.
func ThreeLevelFatTree(k, hosts int) (*Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree radix k=%d must be even and >= 2", k)
	}
	maxHosts := k * k * k / 4
	if hosts <= 0 || hosts > maxHosts {
		return nil, fmt.Errorf("topology: hosts=%d out of range (1..%d) for k=%d", hosts, maxHosts, k)
	}
	g := newGraph()
	half := k / 2

	// Only instantiate the pods needed to hold the requested hosts, plus all
	// cores: this keeps small models small while preserving path diversity.
	hostsPerPod := half * half
	pods := (hosts + hostsPerPod - 1) / hostsPerPod

	core := make([]NodeID, half*half)
	for i := range core {
		core[i] = g.addNode(Switch, 3, fmt.Sprintf("core%d", i))
	}
	placed := 0
	for p := 0; p < pods; p++ {
		edges := make([]NodeID, half)
		aggs := make([]NodeID, half)
		for i := 0; i < half; i++ {
			edges[i] = g.addNode(Switch, 1, fmt.Sprintf("pod%d-edge%d", p, i))
			aggs[i] = g.addNode(Switch, 2, fmt.Sprintf("pod%d-agg%d", p, i))
		}
		for _, e := range edges {
			for _, a := range aggs {
				g.addLink(e, a)
			}
		}
		for ai, a := range aggs {
			for c := 0; c < half; c++ {
				g.addLink(a, core[ai*half+c])
			}
		}
		for _, e := range edges {
			for h := 0; h < half && placed < hosts; h++ {
				id := g.addNode(Host, 0, fmt.Sprintf("host%d", placed))
				g.addLink(id, e)
				placed++
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// BackToBack builds the two-host DPA testbed: two servers connected through
// a single switch (standing in for the cable plus NIC-internal loopback so
// that port counters and multicast groups still work uniformly).
func BackToBack() *Graph {
	g := newGraph()
	sw := g.addNode(Switch, 1, "xbar")
	for i := 0; i < 2; i++ {
		h := g.addNode(Host, 0, fmt.Sprintf("host%d", i))
		g.addLink(h, sw)
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// Star builds n hosts hanging off one switch. Useful in unit tests that
// need multicast without multi-level routing.
func Star(n int) *Graph {
	g := newGraph()
	sw := g.addNode(Switch, 1, "sw")
	for i := 0; i < n; i++ {
		h := g.addNode(Host, 0, fmt.Sprintf("host%d", i))
		g.addLink(h, sw)
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// LeafOf returns the switch a host is cabled to.
func (g *Graph) LeafOf(h NodeID) NodeID {
	if g.Nodes[h].Kind != Host {
		panic(fmt.Sprintf("topology: LeafOf(%d): not a host", h))
	}
	return g.Adj[h][0].Peer
}

// HopsFrom returns, for every node, its hop distance (in links) from src.
// Used by analytic traffic models to count link crossings of unicast paths.
func (g *Graph) HopsFrom(src NodeID) []int { return g.hopsByBFS(src) }

// hopsByBFS returns, for every node, its hop distance from src.
func (g *Graph) hopsByBFS(src NodeID) []int {
	dist := make([]int, len(g.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, nb := range g.Adj[n] {
			if dist[nb.Peer] < 0 {
				dist[nb.Peer] = dist[n] + 1
				queue = append(queue, nb.Peer)
			}
		}
	}
	return dist
}

// RoutingTable holds, for every switch, the set of ports on shortest paths
// to every destination host. The fabric picks among candidates either
// deterministically (hash of the flow) or per-packet (adaptive routing).
type RoutingTable struct {
	// ports[switch][host] -> candidate egress port indices.
	ports map[NodeID]map[NodeID][]int
}

// Candidates returns the egress ports of sw on shortest paths toward host
// dst. The returned slice must not be modified.
func (rt *RoutingTable) Candidates(sw, dst NodeID) []int {
	m := rt.ports[sw]
	if m == nil {
		return nil
	}
	return m[dst]
}

// BuildRouting computes shortest-path multipath routing tables for every
// switch toward every host using one BFS per host.
func (g *Graph) BuildRouting() *RoutingTable {
	rt := &RoutingTable{ports: make(map[NodeID]map[NodeID][]int)}
	for _, n := range g.Nodes {
		if n.Kind == Switch {
			rt.ports[n.ID] = make(map[NodeID][]int)
		}
	}
	for _, h := range g.Hosts() {
		dist := g.hopsByBFS(h)
		for _, sw := range g.Switches() {
			var cands []int
			for p, nb := range g.Adj[sw] {
				if dist[nb.Peer] == dist[sw]-1 {
					cands = append(cands, p)
				}
			}
			sort.Ints(cands)
			rt.ports[sw][h] = cands
		}
	}
	return rt
}

// MulticastTree is a shared spanning tree connecting the members of a
// multicast group. Switch behaviour follows the InfiniBand model: a packet
// arriving on one tree port is replicated to every other tree port.
type MulticastTree struct {
	Root NodeID
	// TreePorts[node] lists the port indices of node that are tree edges.
	TreePorts map[NodeID][]int
	// ParentPort[node] is the tree port leading toward the root (absent for
	// the root itself). In-network reduction routes contributions up along
	// these ports.
	ParentPort map[NodeID]int
	// Members records the attached hosts in ascending order.
	Members []NodeID
}

// OnTree reports whether node n participates in the tree.
func (mt *MulticastTree) OnTree(n NodeID) bool {
	_, ok := mt.TreePorts[n]
	return ok
}

// BuildMulticastTree computes the spanning tree for a group: shortest paths
// from the chosen root switch to every member host, with shared prefixes
// merged. Choosing different roots for different groups spreads replication
// load across the spine layer, which is how the protocol's "multicast
// subgroups" map onto fabric resources.
func (g *Graph) BuildMulticastTree(root NodeID, members []NodeID) (*MulticastTree, error) {
	if g.Nodes[root].Kind != Switch {
		return nil, fmt.Errorf("topology: multicast root %d is not a switch", root)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("topology: multicast group with no members")
	}
	dist := g.hopsByBFS(root)
	// parentPort[n] = (port on n toward its BFS parent, parent id).
	type parent struct {
		port int
		node NodeID
	}
	parents := make(map[NodeID]parent)
	for _, n := range g.Nodes {
		if n.ID == root || dist[n.ID] < 0 {
			continue
		}
		for p, nb := range g.Adj[n.ID] {
			if dist[nb.Peer] == dist[n.ID]-1 {
				parents[n.ID] = parent{port: p, node: nb.Peer}
				break // deterministic: lowest-numbered port wins
			}
		}
	}
	tree := &MulticastTree{
		Root:       root,
		TreePorts:  make(map[NodeID][]int),
		ParentPort: make(map[NodeID]int),
	}
	addPort := func(n NodeID, p int) {
		for _, q := range tree.TreePorts[n] {
			if q == p {
				return
			}
		}
		tree.TreePorts[n] = append(tree.TreePorts[n], p)
	}
	seen := make(map[NodeID]bool)
	for _, m := range members {
		if g.Nodes[m].Kind != Host {
			return nil, fmt.Errorf("topology: multicast member %d is not a host", m)
		}
		if seen[m] {
			continue
		}
		seen[m] = true
		tree.Members = append(tree.Members, m)
		// Walk up from the member to the root, adding both endpoints of each
		// traversed link as tree ports.
		n := m
		for n != root {
			par, ok := parents[n]
			if !ok {
				return nil, fmt.Errorf("topology: member %d unreachable from root %d", m, root)
			}
			addPort(n, par.port)
			addPort(par.node, reversePort(g, n, par.port))
			tree.ParentPort[n] = par.port
			n = par.node
		}
	}
	sort.Slice(tree.Members, func(i, j int) bool { return tree.Members[i] < tree.Members[j] })
	for n := range tree.TreePorts {
		sort.Ints(tree.TreePorts[n])
	}
	return tree, nil
}

// reversePort finds, given node n and its port p, the port index on the
// peer that refers back to the same link.
func reversePort(g *Graph, n NodeID, p int) int {
	l := g.Links[g.Adj[n][p].Link]
	if l.A == n && l.APort == p {
		return l.BPort
	}
	return l.APort
}
