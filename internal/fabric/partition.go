// Shard partitioning: maps topology hosts onto sim.Sharded shards and
// extracts the conservative lookahead window from the fabric's channel
// latencies. The partition is computed once, at engine-construction time,
// from static topology + config — it never changes mid-run, which is what
// lets the lookahead be a constant.
package fabric

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Partition assigns every topology node to a shard. Hosts are split into
// contiguous index blocks (host i of H goes to shard i*N/H); switches are
// shared fabric infrastructure and belong to no shard (Owner returns -1).
type Partition struct {
	shards int
	owner  []int // node ID -> shard, or -1
}

// PartitionHosts partitions the graph's hosts across shards contiguous
// blocks. shards is clamped to [1, number of hosts]: more shards than
// hosts would leave empty shards that only cost barrier time.
func PartitionHosts(g *topology.Graph, shards int) Partition {
	hosts := g.Hosts()
	if shards < 1 {
		shards = 1
	}
	if len(hosts) > 0 && shards > len(hosts) {
		shards = len(hosts)
	}
	p := Partition{shards: shards, owner: make([]int, len(g.Nodes))}
	for i := range p.owner {
		p.owner[i] = -1
	}
	for i, h := range hosts {
		p.owner[h] = i * shards / len(hosts)
	}
	return p
}

// Shards returns the effective shard count after clamping.
func (p Partition) Shards() int { return p.shards }

// Owner returns the shard owning the node, or -1 for shared fabric nodes
// (switches).
func (p Partition) Owner(n topology.NodeID) int {
	if int(n) >= len(p.owner) {
		panic(fmt.Sprintf("fabric: Owner of unknown node %d", n))
	}
	return p.owner[n]
}

// Lookahead returns the conservative synchronization window for the
// partition under cfg: the minimum latency of any channel that can carry
// an event between two different shards. Any cross-shard interaction
// traverses at least one link, so no shard can affect another sooner than
// this — the core conservative-parallel guarantee.
//
// Every channel currently shares cfg.LinkLatency as its base latency
// (SetExtraLatency only ever adds), so the scan is over link endpoints
// only; it keeps the per-link form so heterogeneous latencies stay a
// local change.
func (p Partition) Lookahead(g *topology.Graph, cfg Config) sim.Time {
	cfg = cfg.withDefaults()
	min := sim.Time(0)
	for _, l := range g.Links {
		a, b := p.owner[l.A], p.owner[l.B]
		if a == b && a >= 0 {
			continue // intra-shard host pair (possible only host-to-host)
		}
		if min == 0 || cfg.LinkLatency < min {
			min = cfg.LinkLatency
		}
	}
	if min == 0 {
		min = cfg.LinkLatency // no cross-shard links: any positive window works
	}
	return min
}

// NewShardedEngine builds the sim.Sharded group for a graph: hosts
// partitioned into contiguous blocks, lookahead extracted from the
// channel latencies. It returns the group and the primary shard's engine,
// on which the (currently shard-0-confined) fabric stack is built.
func NewShardedEngine(seed uint64, g *topology.Graph, cfg Config, shards int) (*sim.Sharded, *sim.Engine) {
	p := PartitionHosts(g, shards)
	grp := sim.NewSharded(seed, p.Shards(), p.Lookahead(g, cfg))
	return grp, grp.Shard(0)
}
