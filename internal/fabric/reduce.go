package fabric

import (
	"fmt"

	"repro/internal/topology"
)

// In-network compute (INC) support, modeled after SHARP: a reduction group
// is a spanning tree whose root switch aggregates contribution packets.
// When the expected number of contributions for a chunk has arrived, the
// root emits a single result packet toward the chunk's destination host.
//
// The fabric accounts traffic and timing only — reduced data values are
// not computed (the paper's Appendix B experiment needs the flow shape:
// send path N(P-1) up, receive path N down, no receive-side incast).

// ReduceGroupID names an in-network reduction group. The zero value means
// "no reduction" so that ordinary packets need no explicit field setup;
// valid group ids start at 1.
type ReduceGroupID int

// NoReduceGroup marks a packet as not participating in reduction.
const NoReduceGroup ReduceGroupID = 0

type reduceGroup struct {
	tree    *topology.MulticastTree
	need    int // contributions per chunk
	members map[topology.NodeID]bool
	// pending[chunk] counts contributions so far.
	pending map[uint64]int
	// Reduced counts completed chunk reductions.
	reduced uint64
}

// CreateReduceGroup builds a reduction tree rooted at a switch over the
// member hosts. Every member is expected to contribute once per chunk.
func (f *Fabric) CreateReduceGroup(root topology.NodeID, members []topology.NodeID) (ReduceGroupID, error) {
	if f.part != nil {
		return NoReduceGroup, fmt.Errorf("fabric: in-network reduction holds aggregation state at switch %d that no single shard owns; it requires the confined fabric", root)
	}
	mt, err := f.g.BuildMulticastTree(root, members)
	if err != nil {
		return NoReduceGroup, err
	}
	memberSet := make(map[topology.NodeID]bool, len(mt.Members))
	for _, m := range mt.Members {
		memberSet[m] = true
	}
	f.reduceGroups = append(f.reduceGroups, &reduceGroup{
		tree:    mt,
		need:    len(mt.Members),
		members: memberSet,
		pending: make(map[uint64]int),
	})
	return ReduceGroupID(len(f.reduceGroups)), nil
}

// ReducedChunks reports how many chunk reductions the group's root has
// completed.
func (f *Fabric) ReducedChunks(id ReduceGroupID) uint64 {
	return f.reduceGroups[id-1].reduced
}

// routeReduce moves a contribution packet one hop up the reduction tree,
// or aggregates it at the root.
func (f *Fabric) routeReduce(pkt *Packet, node topology.NodeID) {
	rg := f.reduceGroups[pkt.Reduce-1]
	if !rg.members[pkt.Src] {
		panic(fmt.Sprintf("fabric: reduce contribution from non-member host %d", pkt.Src))
	}
	if node == rg.tree.Root {
		cnt := rg.pending[pkt.ReduceChunk] + 1
		if cnt < rg.need {
			rg.pending[pkt.ReduceChunk] = cnt
			return // absorbed into the aggregation state
		}
		delete(rg.pending, pkt.ReduceChunk)
		rg.reduced++
		// Emit the single reduced result toward the destination host. The
		// result reuses the final contribution's size (all contributions of
		// a chunk are equally sized).
		result := *pkt
		result.Reduce = NoReduceGroup
		f.forwardUnicast(&result, node, -1)
		return
	}
	port, ok := rg.tree.ParentPort[node]
	if !ok {
		panic(fmt.Sprintf("fabric: reduce contribution at off-tree node %d", node))
	}
	f.transmit(pkt, node, port)
}
