// Partitioned (multi-shard) fabric execution.
//
// A confined fabric runs every hop on the primary shard: transmit() books a
// channel's serializer inline and schedules the next arrival on f.eng. A
// *partitioned* fabric gives every channel exactly one owning shard — the
// host's shard for host-adjacent channels (both directions, so a NIC, its
// uplink and its downlink always live together), a deterministic hash for
// switch-switch channels — and turns each hop into a *booking event* on the
// owner: identical serializer math, but scheduled through an explicit
// (time, order-key) so the firing order at equal times is a pure function
// of the key, never of shard count or barrier placement.
//
// The pipeline is active at every shard count, including one. That is the
// point: a single-shard partitioned run and an 8-shard partitioned run
// execute the same events with the same keys in the same order, so output
// bytes cannot depend on -shards. (A confined-at-1/partitioned-at-8 split
// would change event counts — multicast fan-out books K egress channels
// where the confined path schedules one switch arrival.)
//
// Routing decisions (ECMP hash, multicast tree ports) are pure functions
// of the packet and the static topology, so the dispatching shard computes
// the egress ports *at dispatch time* and addresses each booking directly
// to the egress channel's owner; no event ever fires on a shard that does
// not own the state it touches. Everything stochastic or globally stateful
// (drops, adaptive routing, reorder jitter, in-network reduction, live
// channel overrides) is refused up front by EnablePartition or panics if
// enabled later — those features stay on the confined path.
package fabric

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Dispatch-key layout. Every downstream event the partitioned pipeline
// schedules — bookings and final host arrivals alike — carries a 63-bit
// order key in the engine's reserved low sequence band:
//
//	key = S<<30 | srcChan<<12 | slot<<6 | egressIdx
//
// S is the dispatching shard's clock when the dispatch decision was
// made; leading with it reproduces the serial engine's
// scheduled-earlier-fires-earlier tie-break at equal delivery times.
// srcChan is the channel the packet is leaving (the one just booked;
// for injections, the host uplink), so distinct same-time dispatchers
// get distinct keys. slot numbers dispatches from one channel within
// one S tick — the owner shard is the channel's single writer, so a
// plain counter is race-free and shard-count-invariant. egressIdx
// separates a multicast fan-out's bookings (one dispatch, K egress
// channels, tree-port order).
const (
	keyIdxBits  = 6
	keySlotBits = 6
	keyChanBits = 18
	keyTimeBits = 33 // ~8.6 s of virtual time
)

// partition is the per-shard ownership state of a partitioned fabric.
type partition struct {
	hosts   Partition
	engines []*sim.Engine // engines[shard]
	// chanOwner[id] is the shard owning channel id's serializer state and
	// counters; bookings of that channel fire only on this shard's engine.
	chanOwner []int
	// Per-channel dispatch keying (written only by the channel's owner):
	// the (clock, delivery time) of the channel's most recent dispatch and
	// the number of dispatches already keyed at that exact pair. A burst
	// (one message segmented into hundreds of same-instant injections)
	// shares one clock but strictly increasing delivery times off the
	// serializer, so the slot stays 0; it only counts up in the degenerate
	// zero-serialization case, where two same-clock dispatches could
	// otherwise collide on (time, key).
	lastDispatch []sim.Time
	lastDeliver  []sim.Time
	slot         []uint32
}

// Partitioned reports whether the fabric runs the per-shard pipeline.
func (f *Fabric) Partitioned() bool { return f.part != nil }

// HostEngine returns the engine owning the host's shard: the engine all of
// the host's model state (NIC, verbs context, DPA threads, per-rank
// protocol timers) must schedule on. On a confined fabric every host lives
// on the primary engine.
func (f *Fabric) HostEngine(host topology.NodeID) *sim.Engine {
	if f.part == nil {
		return f.eng
	}
	return f.part.engines[f.part.hosts.Owner(host)]
}

// EnablePartition switches the fabric from confined (every hop on the
// primary shard) to partitioned (per-shard channel ownership) execution
// and reports whether it did. It must run on a pristine stack — before any
// NIC attaches, any packet flies or any clock ticks — and refuses, leaving
// the fabric confined, whenever a configured or installed feature needs
// state the partitioned pipeline cannot own per shard:
//
//   - fabric drops, adaptive routing or reorder jitter (shared RNG draws
//     whose order would depend on shard interleave);
//   - in-network reduction groups (switch-resident aggregation state);
//   - live channel overrides, or any event already scheduled (a scenario
//     has been installed — its injectors perturb channels mid-run);
//   - a shard group whose lookahead exceeds the link latency (a booking
//     dispatched one hop ahead could violate the conservative window).
//
// Enabling is idempotent; on a plain serial engine the partition has a
// single shard and every dispatch is local, but runs the same keyed
// pipeline, so results are byte-identical at every -shards value.
func (f *Fabric) EnablePartition() bool {
	if f.part != nil {
		return true
	}
	if len(f.nics) != 0 || f.nextPktID != 0 || f.BackgroundInjected != 0 {
		return false
	}
	if f.cfg.DropRate > 0 || f.cfg.AdaptiveRouting || f.cfg.ReorderJitter != 0 {
		return false
	}
	if len(f.reduceGroups) != 0 {
		return false
	}
	for i := range f.chans {
		ch := &f.chans[i]
		if ch.bw != ch.baseBw || ch.extraLat != 0 || ch.dropOverride >= 0 {
			return false
		}
	}
	shards := 1
	grp := f.eng.Group()
	if grp != nil {
		if grp.Lookahead() > f.cfg.LinkLatency {
			return false
		}
		shards = grp.Shards()
	}
	if f.eng.Now() != 0 {
		return false
	}
	// Any pending event means someone (a scenario, a workload) already
	// scheduled against the confined layout.
	for i := 0; i < shards; i++ {
		e := f.eng
		if grp != nil {
			e = grp.Shard(i)
		}
		if e.Pending() != 0 || e.Now() != 0 {
			return false
		}
	}

	p := &partition{
		hosts:        PartitionHosts(f.g, shards),
		engines:      make([]*sim.Engine, shards),
		chanOwner:    make([]int, len(f.chans)),
		lastDispatch: make([]sim.Time, len(f.chans)),
		lastDeliver:  make([]sim.Time, len(f.chans)),
		slot:         make([]uint32, len(f.chans)),
	}
	for i := range p.engines {
		if grp != nil {
			p.engines[i] = grp.Shard(i)
		} else {
			p.engines[i] = f.eng
		}
	}
	for i := range f.chans {
		ch := &f.chans[i]
		switch {
		case f.g.Nodes[ch.from].Kind == topology.Host:
			p.chanOwner[i] = p.hosts.Owner(ch.from)
		case f.g.Nodes[ch.to].Kind == topology.Host:
			p.chanOwner[i] = p.hosts.Owner(ch.to)
		default:
			p.chanOwner[i] = int(ch.from) % shards
		}
	}
	f.bookH = (*bookHandler)(f)
	f.part = p
	return true
}

// chanID returns the directed channel leaving `from` over link `link`.
func (f *Fabric) chanIDFor(from topology.NodeID, link int) ChannelID {
	if f.g.Links[link].A == from {
		return ChannelID(2 * link)
	}
	return ChannelID(2*link + 1)
}

// dispatchKey derives the order key for the next dispatch from src at the
// engine's current clock, delivering at `at`; see the layout above. The
// overflow panics are loud guards on the layout's budget, not reachable by
// the workloads the repository runs (S caps at ~8.6 s of virtual time).
func (f *Fabric) dispatchKey(e *sim.Engine, src ChannelID, at sim.Time) uint64 {
	now := e.Now()
	if uint64(now) >= 1<<keyTimeBits {
		panic(fmt.Sprintf("fabric: dispatch at %v overflows the %d-bit order-key time field", now, keyTimeBits))
	}
	if int(src) >= 1<<keyChanBits {
		panic(fmt.Sprintf("fabric: channel %d overflows the %d-bit order-key channel field", src, keyChanBits))
	}
	p := f.part
	if p.lastDispatch[src] != now || p.lastDeliver[src] != at {
		p.lastDispatch[src] = now
		p.lastDeliver[src] = at
		p.slot[src] = 0
	}
	slot := p.slot[src]
	p.slot[src]++
	if slot >= 1<<keySlotBits {
		panic(fmt.Sprintf("fabric: channel %d->%d dispatched %d times at %v for delivery at %v, overflowing the %d-bit order-key slot field",
			f.chans[src].from, f.chans[src].to, slot+1, now, at, keySlotBits))
	}
	return uint64(now)<<(keyChanBits+keySlotBits+keyIdxBits) |
		uint64(src)<<(keySlotBits+keyIdxBits) |
		uint64(slot)<<keyIdxBits
}

// sendOrdered schedules a keyed pipeline event on the owner shard: locally
// through the engine's reserved low band, across shards through the
// mailbox. Both paths file the event under the same (time, key), so
// co-locating two owners on one shard changes no bytes.
func (f *Fabric) sendOrdered(e *sim.Engine, owner int, at sim.Time, key uint64, h sim.Handler, arg0 uint64, arg1 int, obj any) {
	if e.Group() == nil || owner == e.ShardIndex() {
		e.AtOrdered(at, key, h, arg0, arg1, obj)
		return
	}
	e.Send(owner, at, key, h, arg0, arg1, obj)
}

// bookHandler fires a booking: serialize pkt onto the channel leaving node
// via port, then dispatch the packet's next step. arg0 is the node, arg1
// the port, obj the *Packet.
type bookHandler Fabric

func (h *bookHandler) OnEvent(e *sim.Engine, _ sim.Handle, arg0 uint64, arg1 int, obj any) {
	f := (*Fabric)(h)
	node := topology.NodeID(arg0)
	nb := f.g.Adj[node][arg1]
	id := f.chanIDFor(node, nb.Link)
	_, arrival := f.book(e, id, obj.(*Packet))
	f.dispatch(e, obj.(*Packet), id, nb.Peer, nb.Link, arrival)
}

// book runs the confined transmit()'s serializer math on the owner shard:
// same start = max(nextFree, now), same backlog/stats accounting, bit for
// bit. It returns the serialization completion time and the peer arrival
// time. Drops never occur here — EnablePartition refused lossy configs and
// the override setters panic on a partitioned fabric.
func (f *Fabric) book(e *sim.Engine, id ChannelID, pkt *Packet) (nextFree, arrival sim.Time) {
	if want := f.part.chanOwner[id]; e.ShardIndex() != want {
		panic(fmt.Sprintf("fabric: channel %d (%d->%d) booked on shard %d but owned by shard %d",
			id, f.chans[id].from, f.chans[id].to, e.ShardIndex(), want))
	}
	ch := &f.chans[id]
	size := f.wireBytes(pkt)
	serialize := ch.serialization(size)
	start := ch.nextFree
	now := e.Now()
	if start < now {
		start = now
	} else if backlog := start - now; backlog > ch.stats.MaxBacklog {
		ch.stats.MaxBacklog = backlog
	}
	ch.nextFree = start + serialize
	ch.stats.Packets++
	ch.stats.Bytes += uint64(size)
	ch.stats.Busy += serialize
	return ch.nextFree, ch.nextFree + f.cfg.LinkLatency + ch.extraLat
}

// dispatch routes pkt's next step after it finishes crossing `from` and
// lands on node at `at`. A host gets its arrival event (delivery runs on
// the host's own shard); a switch gets one booking per egress channel,
// each addressed to that channel's owner — the routing decision is pure,
// so it is made here, on the dispatching shard, not on an intermediate
// event.
func (f *Fabric) dispatch(e *sim.Engine, pkt *Packet, from ChannelID, node topology.NodeID, link int, at sim.Time) {
	key := f.dispatchKey(e, from, at)
	if f.g.Nodes[node].Kind == topology.Host {
		f.sendOrdered(e, f.part.hosts.Owner(node), at, key, f.arriveH, uint64(node), link, pkt)
		return
	}
	if pkt.Reduce != NoReduceGroup {
		// CreateReduceGroup errors on a partitioned fabric; a reduce packet
		// here means a stale ReduceGroupID crossed fabrics.
		panic(fmt.Sprintf("fabric: reduce packet on partitioned fabric at switch %d", node))
	}
	if pkt.Group != NoGroup {
		mt := f.groups[pkt.Group]
		ports := mt.TreePorts[node]
		if len(ports) == 0 {
			panic(fmt.Sprintf("fabric: multicast packet for group %d at off-tree switch %d", pkt.Group, node))
		}
		idx := uint64(0)
		for _, p := range ports {
			nb := f.g.Adj[node][p]
			if nb.Link == link {
				continue // never reflect back toward the sender
			}
			if idx >= 1<<keyIdxBits {
				panic(fmt.Sprintf("fabric: multicast fan-out at switch %d overflows the %d-bit order-key egress field", node, keyIdxBits))
			}
			egress := f.chanIDFor(node, nb.Link)
			f.sendOrdered(e, f.part.chanOwner[egress], at, key|idx, f.bookH, uint64(node), p, pkt)
			idx++
		}
		return
	}
	cands := f.rt.Candidates(node, pkt.Dst)
	if len(cands) == 0 {
		panic(fmt.Sprintf("fabric: switch %d has no route to %d", node, pkt.Dst))
	}
	port := cands[0]
	if len(cands) > 1 {
		// Adaptive routing is refused by EnablePartition; deterministic ECMP
		// is a pure function of the packet, safe to evaluate here.
		port = cands[ecmpHash(pkt.Flow, pkt.Src, pkt.Dst)%uint64(len(cands))]
	}
	nb := f.g.Adj[node][port]
	egress := f.chanIDFor(node, nb.Link)
	f.sendOrdered(e, f.part.chanOwner[egress], at, key, f.bookH, uint64(node), port, pkt)
}

// injectPartitioned is NIC.Inject's partitioned tail: book the host uplink
// inline on the host's own shard (the caller's engine by construction —
// verbs contexts are built on HostEngine), then dispatch toward the peer.
// Packet IDs are per-NIC (host in the high bits) so no cross-shard counter
// is shared; the ID is a diagnostic tag, nothing routes or orders on it.
func (n *NIC) injectPartitioned(pkt *Packet) sim.Time {
	f := n.f
	e := f.part.engines[f.part.hosts.Owner(n.Host)]
	pkt.ID = uint64(n.Host)<<32 | n.pktSeq
	n.pktSeq++
	nb := f.g.Adj[n.Host][0]
	id := f.chanIDFor(n.Host, nb.Link)
	nextFree, arrival := f.book(e, id, pkt)
	f.dispatch(e, pkt, id, nb.Peer, nb.Link, arrival)
	return nextFree
}
