package fabric

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// reduceFixture wires n hosts on the given graph with a reduce group
// rooted at the top-level switch.
func reduceFixture(t *testing.T, g *topology.Graph) (*sim.Engine, *Fabric, ReduceGroupID, []*NIC) {
	t.Helper()
	eng := sim.NewEngine(3)
	f := New(eng, g, Config{})
	rg, err := f.CreateReduceGroup(g.TopSwitches()[0], g.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	var nics []*NIC
	for _, h := range g.Hosts() {
		nics = append(nics, f.AttachNIC(h))
	}
	return eng, f, rg, nics
}

func TestReduceAggregatesAtRoot(t *testing.T) {
	g := topology.Star(4)
	eng, f, rg, nics := reduceFixture(t, g)
	delivered := 0
	nics[2].Deliver = func(p *Packet) { delivered++ }
	// All four members contribute chunk 7, destined for host index 2.
	for _, nic := range nics {
		nic.Inject(&Packet{
			Dst: nics[2].Host, Group: NoGroup,
			Reduce: rg, ReduceChunk: 7, PayloadBytes: 4096,
		})
	}
	eng.Run()
	if delivered != 1 {
		t.Fatalf("owner received %d results, want exactly 1 reduced packet", delivered)
	}
	if f.ReducedChunks(rg) != 1 {
		t.Fatalf("ReducedChunks = %d", f.ReducedChunks(rg))
	}
}

func TestReducePartialContributionsHeld(t *testing.T) {
	g := topology.Star(3)
	eng, f, rg, nics := reduceFixture(t, g)
	delivered := 0
	nics[0].Deliver = func(p *Packet) { delivered++ }
	// Only 2 of 3 contributions arrive: no result may be emitted.
	nics[1].Inject(&Packet{Dst: nics[0].Host, Group: NoGroup, Reduce: rg, ReduceChunk: 1, PayloadBytes: 64})
	nics[2].Inject(&Packet{Dst: nics[0].Host, Group: NoGroup, Reduce: rg, ReduceChunk: 1, PayloadBytes: 64})
	eng.Run()
	if delivered != 0 {
		t.Fatalf("result emitted with %d/3 contributions", 2)
	}
	if f.ReducedChunks(rg) != 0 {
		t.Fatal("partial chunk counted as reduced")
	}
	// The third contribution completes it.
	nics[0].Inject(&Packet{Dst: nics[0].Host, Group: NoGroup, Reduce: rg, ReduceChunk: 1, PayloadBytes: 64})
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d after final contribution", delivered)
	}
}

func TestReduceChunksIndependent(t *testing.T) {
	g := topology.Star(2)
	eng, f, rg, nics := reduceFixture(t, g)
	delivered := map[uint64]int{}
	nics[0].Deliver = func(p *Packet) { delivered[p.ReduceChunk]++ }
	for chunk := uint64(0); chunk < 10; chunk++ {
		for _, nic := range nics {
			nic.Inject(&Packet{Dst: nics[0].Host, Group: NoGroup, Reduce: rg, ReduceChunk: chunk, PayloadBytes: 256})
		}
	}
	eng.Run()
	if len(delivered) != 10 {
		t.Fatalf("distinct chunks delivered = %d, want 10", len(delivered))
	}
	for c, n := range delivered {
		if n != 1 {
			t.Fatalf("chunk %d delivered %d times", c, n)
		}
	}
	if f.ReducedChunks(rg) != 10 {
		t.Fatalf("ReducedChunks = %d", f.ReducedChunks(rg))
	}
}

func TestReduceRoutesUpFatTree(t *testing.T) {
	// On a two-level tree the contributions must climb via the reduction
	// tree's parent ports to the spine root, and the result must descend
	// by unicast — never multiplying traffic.
	g, err := topology.TwoLevelFatTree(topology.FatTreeSpec{Hosts: 8, HostsPerLeaf: 4, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng, f, rg, nics := reduceFixture(t, g)
	owner := nics[7]
	delivered := 0
	owner.Deliver = func(p *Packet) { delivered++ }
	for _, nic := range nics {
		nic.Inject(&Packet{Dst: owner.Host, Group: NoGroup, Reduce: rg, ReduceChunk: 3, PayloadBytes: 4096})
	}
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
	// Traffic accounting: 8 contributions cross their host uplinks (8
	// wire units), climb leaf->spine (2 leaves x 1 trunk crossing each,
	// aggregated per switch? no — reduction happens at the ROOT only, so
	// every contribution crosses its leaf's uplink too: 8 more), and one
	// result descends spine->leaf->host (2). Total = 8 + 8 + 2 = 18 units.
	wire := uint64(4096 + f.Config().HeaderBytes)
	if got := f.TotalWireBytes(); got != 18*wire {
		t.Fatalf("total wire bytes = %d, want %d", got, 18*wire)
	}
}

func TestReduceSendPathDominatesOnINCPattern(t *testing.T) {
	// Reproduce Insight 2 at the fabric level: P contributions up per
	// shard, one result down.
	g := topology.Star(4)
	eng, f, rg, nics := reduceFixture(t, g)
	for i := range nics {
		nics[i].Deliver = func(p *Packet) {}
	}
	const shards, chunks = 4, 8
	for s := 0; s < shards; s++ {
		owner := nics[s]
		for c := 0; c < chunks; c++ {
			for _, nic := range nics {
				nic.Inject(&Packet{
					Dst: owner.Host, Group: NoGroup,
					Reduce: rg, ReduceChunk: uint64(s*chunks + c), PayloadBytes: 4096,
				})
			}
		}
	}
	eng.Run()
	sw := g.Switches()[0]
	up := f.ChannelStats(nics[0].Host, sw).Bytes
	down := f.ChannelStats(sw, nics[0].Host).Bytes
	if up != 4*down {
		t.Fatalf("up/down = %d/%d, want exactly 4x (P contributions per result)", up, down)
	}
}

func TestReduceOffTreePanics(t *testing.T) {
	// A contribution injected into a group whose tree does not include the
	// traversed node must fail loudly.
	g := topology.Star(3)
	eng := sim.NewEngine(1)
	f := New(eng, g, Config{})
	rg, err := f.CreateReduceGroup(g.Switches()[0], g.Hosts()[:2])
	if err != nil {
		t.Fatal(err)
	}
	f.AttachNIC(g.Hosts()[2]).Inject(&Packet{
		Dst: g.Hosts()[0], Group: NoGroup, Reduce: rg, ReduceChunk: 0, PayloadBytes: 64,
	})
	defer func() {
		if recover() == nil {
			t.Error("non-member contribution did not panic")
		}
	}()
	eng.Run()
}
