package fabric

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestPartitionHostsContiguousBlocks(t *testing.T) {
	g := topology.Star(8)
	p := PartitionHosts(g, 4)
	if p.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", p.Shards())
	}
	hosts := g.Hosts()
	prev := 0
	counts := map[int]int{}
	for i, h := range hosts {
		o := p.Owner(h)
		if o < prev {
			t.Fatalf("host %d owner %d below previous %d: blocks must be contiguous", i, o, prev)
		}
		prev = o
		counts[o]++
	}
	for s := 0; s < 4; s++ {
		if counts[s] != 2 {
			t.Fatalf("shard %d owns %d hosts, want 2", s, counts[s])
		}
	}
	for _, sw := range g.Switches() {
		if p.Owner(sw) != -1 {
			t.Fatalf("switch %d has owner %d, want -1", sw, p.Owner(sw))
		}
	}
}

func TestPartitionClampsToHostCount(t *testing.T) {
	g := topology.Star(3)
	if got := PartitionHosts(g, 8).Shards(); got != 3 {
		t.Fatalf("shards = %d, want clamp to 3 hosts", got)
	}
	if got := PartitionHosts(g, 0).Shards(); got != 1 {
		t.Fatalf("shards = %d, want clamp to 1", got)
	}
}

func TestPartitionLookahead(t *testing.T) {
	g := topology.Star(4)
	p := PartitionHosts(g, 2)
	if got := p.Lookahead(g, Config{}); got != 250*sim.Nanosecond {
		t.Fatalf("default lookahead = %v, want 250ns", got)
	}
	cfg := Config{LinkLatency: 3 * sim.Microsecond}
	if got := p.Lookahead(g, cfg); got != 3*sim.Microsecond {
		t.Fatalf("lookahead = %v, want 3us", got)
	}
	// Single shard: no cross-shard links, but the window must stay positive.
	if got := PartitionHosts(g, 1).Lookahead(g, cfg); got <= 0 {
		t.Fatalf("1-shard lookahead = %v, want positive", got)
	}
}

func TestNewShardedEngineDeterminismAcrossShards(t *testing.T) {
	// The full fabric stack runs confined to the primary shard; its results
	// must be bit-identical for every shard count.
	run := func(shards int) (sim.Time, uint64) {
		g := topology.Star(4)
		grp, eng := NewShardedEngine(42, g, Config{}, shards)
		f := New(eng, g, Config{})
		hosts := g.Hosts()
		var got uint64
		dst := f.AttachNIC(hosts[1])
		dst.Deliver = func(pkt *Packet) { got += uint64(pkt.PayloadBytes) }
		src := f.AttachNIC(hosts[0])
		src.Inject(&Packet{Dst: hosts[1], Group: NoGroup, PayloadBytes: 4096, Flow: 1})
		end := grp.Run()
		return end, got
	}
	wantT, wantB := run(1)
	if wantB == 0 {
		t.Fatal("packet never delivered")
	}
	for _, n := range []int{2, 4} {
		gotT, gotB := run(n)
		if gotT != wantT || gotB != wantB {
			t.Fatalf("shards=%d diverged: t=%v bytes=%d, want t=%v bytes=%d", n, gotT, gotB, wantT, wantB)
		}
	}
}
