package fabric

import (
	"sort"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// The partitioned pipeline's determinism contract, exercised directly at
// the packet level: a randomized mix of unicast and multicast injections
// from every host must produce, at every shard count, the exact per-host
// delivery sequence (packet identity and arrival time, in order) that the
// single-shard partitioned run produces — and the same per-host arrival
// time multiset as the serial confined pipeline, which shares the
// serializer math but not the scheduling path.

// delivery is one packet landing at a host.
type delivery struct {
	id uint64
	at sim.Time
}

// propTopology is a two-level fat tree: big enough that packets cross
// host->leaf, leaf->spine, spine->leaf and leaf->host channels (so both
// host-owned and hashed switch-switch ownership run), small enough that
// the property runs in milliseconds.
func propTopology(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.TwoLevelFatTree(topology.FatTreeSpec{
		Hosts: 12, HostsPerLeaf: 4, Spines: 2, TrunkLinks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// propInjections schedules the deterministic pseudorandom traffic onto the
// hosts' own engines: per host, a splitmix-derived stream of injection
// times in [0, 50 µs), payload sizes, unicast destinations, and a 1-in-4
// chance of multicasting to the all-hosts group instead. The stream
// depends only on the seed, never on the shard count.
func propInjections(f *Fabric, nics []*NIC, gid GroupID, seed uint64) {
	hosts := f.Graph().Hosts()
	for i, nic := range nics {
		nic := nic
		rng := sim.NewRNG(sim.Splitmix64(seed ^ sim.Splitmix64(uint64(i))))
		eng := f.HostEngine(nic.Host)
		for k := 0; k < 40; k++ {
			at := sim.Time(rng.Uint64() % 50_000)
			size := 64 + int(rng.Uint64()%4033)
			flow := rng.Uint64()
			var pkt Packet
			if rng.Uint64()%4 == 0 {
				pkt = Packet{Group: gid, Flow: flow, PayloadBytes: size}
			} else {
				dst := hosts[(i+1+int(rng.Uint64()%uint64(len(hosts)-1)))%len(hosts)]
				pkt = Packet{Dst: dst, Group: NoGroup, Flow: flow, PayloadBytes: size}
			}
			eng.At(at, func() { nic.Inject(&pkt) })
		}
	}
}

// runPartitioned executes the randomized traffic on a partitioned fabric
// at the given shard count and returns each host's delivery sequence in
// arrival order. Partitioning must engage — the test is void otherwise.
func runPartitioned(t *testing.T, shards int, seed uint64) [][]delivery {
	t.Helper()
	g := propTopology(t)
	var eng *sim.Engine
	if shards == 1 {
		eng = sim.NewEngine(seed)
	} else {
		_, eng = NewShardedEngine(seed, g, Config{}, shards)
	}
	f := New(eng, g, Config{})
	if !f.EnablePartition() {
		t.Fatalf("shards=%d: EnablePartition refused a pristine fabric", shards)
	}
	hosts := g.Hosts()
	gid, err := f.CreateGroup(g.TopSwitches()[0], hosts)
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]delivery, len(hosts))
	nics := make([]*NIC, len(hosts))
	for i, h := range hosts {
		i, h := i, h
		nics[i] = f.AttachNIC(h)
		if err := nics[i].AttachGroup(gid); err != nil {
			t.Fatal(err)
		}
		hostEng := f.HostEngine(h)
		// Deliver runs on the host's owning shard; each host appends only
		// to its own slice, so concurrent shards never share a slot.
		nics[i].Deliver = func(pkt *Packet) {
			got[i] = append(got[i], delivery{id: pkt.ID, at: hostEng.Now()})
		}
	}
	propInjections(f, nics, gid, seed)
	eng.Run()
	return got
}

// runConfined executes the same traffic through the serial confined
// pipeline (no EnablePartition) and returns each host's arrival times in
// order. Packet IDs come from the global counter there, so only times are
// comparable across the two pipelines.
func runConfined(t *testing.T, seed uint64) [][]sim.Time {
	t.Helper()
	g := propTopology(t)
	eng := sim.NewEngine(seed)
	f := New(eng, g, Config{})
	hosts := g.Hosts()
	gid, err := f.CreateGroup(g.TopSwitches()[0], hosts)
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]sim.Time, len(hosts))
	nics := make([]*NIC, len(hosts))
	for i, h := range hosts {
		i := i
		nics[i] = f.AttachNIC(h)
		if err := nics[i].AttachGroup(gid); err != nil {
			t.Fatal(err)
		}
		nics[i].Deliver = func(*Packet) {
			got[i] = append(got[i], eng.Now())
		}
	}
	propInjections(f, nics, gid, seed)
	eng.Run()
	return got
}

// TestPartitionedDeliveryInvariance is the randomized cross-shard ordering
// property: per-host delivery sequences are byte-identical to the
// single-shard partitioned reference at every shard count in the
// acceptance matrix (including counts that do not divide the host count),
// and per-host arrival-time multisets match the serial confined pipeline.
func TestPartitionedDeliveryInvariance(t *testing.T) {
	for _, seed := range []uint64{3, 17} {
		ref := runPartitioned(t, 1, seed)
		total := 0
		for _, seq := range ref {
			total += len(seq)
		}
		if total == 0 {
			t.Fatalf("seed %d: reference run delivered nothing", seed)
		}
		for _, shards := range []int{2, 3, 8} {
			got := runPartitioned(t, shards, seed)
			for h := range ref {
				if len(got[h]) != len(ref[h]) {
					t.Fatalf("seed %d shards=%d host %d: %d deliveries, want %d",
						seed, shards, h, len(got[h]), len(ref[h]))
				}
				for k := range ref[h] {
					if got[h][k] != ref[h][k] {
						t.Fatalf("seed %d shards=%d host %d delivery %d: %+v, want %+v",
							seed, shards, h, k, got[h][k], ref[h][k])
					}
				}
			}
		}
		conf := runConfined(t, seed)
		for h := range ref {
			if len(conf[h]) != len(ref[h]) {
				t.Fatalf("seed %d host %d: confined delivered %d, partitioned %d",
					seed, h, len(conf[h]), len(ref[h]))
			}
			part := make([]sim.Time, len(ref[h]))
			for k, d := range ref[h] {
				part[k] = d.at
			}
			sorted := append([]sim.Time(nil), conf[h]...)
			sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
			sort.Slice(part, func(a, b int) bool { return part[a] < part[b] })
			for k := range part {
				if part[k] != sorted[k] {
					t.Fatalf("seed %d host %d: arrival-time multisets diverge at %d: partitioned %v, confined %v",
						seed, h, k, part[k], sorted[k])
				}
			}
		}
	}
}
