// Package fabric is a deterministic packet-level network simulator. It
// models the parts of a lossless RDMA fabric that the paper's protocol and
// evaluation depend on:
//
//   - store-and-forward switching on a topology.Graph with per-channel
//     serialization (bandwidth) and per-hop propagation latency, so that
//     congestion, incast and receive-path bottlenecks emerge naturally;
//   - hardware multicast: switches replicate a datagram along a spanning
//     tree, one copy per link — the property that makes the paper's
//     Allgather bandwidth-optimal;
//   - unicast multipath routing, either deterministic (flow hash) or
//     adaptive (per-packet random uplink), the latter reordering packets
//     exactly as §III-B anticipates for next-generation fabrics;
//   - Bernoulli fabric drops (link-layer corruption, §III-C) so the
//     reliability slow path has something to recover from;
//   - per-port byte/packet counters, mirroring the switch counters the
//     paper reads for the Figure 12 traffic-reduction experiment.
package fabric

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// GroupID names a multicast group. Negative means unicast.
type GroupID int

// NoGroup marks a packet as unicast.
const NoGroup GroupID = -1

// Packet is one datagram on the wire. Payload is opaque to the fabric; the
// verbs layer stores its own header structure there.
type Packet struct {
	ID      uint64
	Src     topology.NodeID
	Dst     topology.NodeID // destination host (unicast only)
	Group   GroupID         // multicast group, or NoGroup
	Flow    uint64          // flow label for deterministic ECMP hashing
	Payload any
	// Background marks non-collective tenant traffic injected through
	// InjectBackground: it occupies channels and counters like any other
	// packet but is never handed to a NIC's Deliver callback.
	Background bool
	// Reduce routes the packet up an in-network reduction tree instead of
	// toward Dst; the root forwards one result per ReduceChunk to Dst.
	Reduce      ReduceGroupID
	ReduceChunk uint64
	// PayloadBytes is the user data size; WireBytes (payload + header) is
	// what occupies link capacity and counters.
	PayloadBytes int
}

// Config parameterizes the fabric.
type Config struct {
	// LinkBandwidth is the capacity of every channel in bytes/second.
	// 200 Gbit/s = 25e9. Zero defaults to 25e9.
	LinkBandwidth float64
	// LinkLatency is per-hop propagation plus switch pipeline delay.
	// Zero defaults to 250 ns (short copper + cut-through switch).
	LinkLatency sim.Time
	// HostLinkBandwidth optionally overrides bandwidth on host-switch
	// channels (NIC injection/reception rate). Zero means LinkBandwidth.
	HostLinkBandwidth float64
	// HeaderBytes is per-packet wire overhead (LRH+BTH+GRH+ICRC...).
	// Zero defaults to 64.
	HeaderBytes int
	// MTU is the maximum payload per packet. Zero defaults to 4096.
	MTU int
	// DropRate is the independent probability that any single channel
	// traversal corrupts the packet (fabric drop). The paper cites BERs of
	// 1e-12..1e-15; tests crank this up to exercise the recovery path.
	DropRate float64
	// AdaptiveRouting selects a random shortest-path candidate per packet
	// instead of hashing the flow, introducing reordering.
	AdaptiveRouting bool
	// ReorderJitter, when nonzero, adds uniform random [0, ReorderJitter)
	// latency to each final-hop delivery, emulating out-of-order arrival
	// within a single path (e.g., spraying inside trunk groups).
	ReorderJitter sim.Time
}

func (c Config) withDefaults() Config {
	if c.LinkBandwidth == 0 {
		c.LinkBandwidth = 25e9
	}
	if c.HostLinkBandwidth == 0 {
		c.HostLinkBandwidth = c.LinkBandwidth
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = 250 * sim.Nanosecond
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = 64
	}
	if c.MTU == 0 {
		c.MTU = 4096
	}
	return c
}

// PortStats counts traffic on one directed channel (an egress port).
type PortStats struct {
	Packets uint64
	Bytes   uint64 // wire bytes, including headers
	Drops   uint64 // packets corrupted while crossing this channel
	// MaxBacklog is the worst queueing delay observed at this egress port:
	// how far nextFree ran ahead of the clock when a packet was enqueued.
	// Incast congestion (the §IV-A motivation for the broadcast sequencer)
	// and scenario-injected hotspots show up here.
	MaxBacklog sim.Time
	// Busy accumulates serialization time booked on this channel — the
	// virtual time its serializer spent occupied. Busy over the run span
	// is the channel's utilization; telemetry ranks channels by it.
	Busy sim.Time
}

// channel is one direction of a link: a serializing resource. baseBw is the
// configured capacity; bw is the effective capacity after any scenario
// override (bw == baseBw when no override is active, so the quiet path
// computes bit-identical serialization times). serCache memoizes the last
// serialization time by wire size, dropping the FP division from the
// common same-size-packet case without changing a single bit of the result
// (a reciprocal would round differently in the last ulp and move goldens).
type channel struct {
	from, to topology.NodeID
	bw       float64 // effective bytes/sec
	baseBw   float64 // configured bytes/sec
	serSize  int     // wire size the cached serialization time is for
	serTime  sim.Time
	extraLat sim.Time
	// dropOverride replaces Config.DropRate on this channel when >= 0.
	dropOverride float64
	nextFree     sim.Time
	stats        PortStats
}

// NIC is the fabric attachment point of one host. The verbs layer sets
// Deliver to receive packets; Deliver runs at packet arrival time.
type NIC struct {
	Host    topology.NodeID
	f       *Fabric
	Deliver func(pkt *Packet)
	// groups this NIC is attached to (receives multicast for them).
	groups map[GroupID]bool
	// Injected/Received count packets through this NIC for diagnostics.
	Injected uint64
	Received uint64
	// pktSeq numbers injections on a partitioned fabric, where a global
	// packet counter would be shared across shards. The ID becomes
	// host<<32|seq — still unique, still deterministic, owner-local.
	pktSeq uint64
}

// Fabric is a live simulated network bound to an engine and a topology.
type Fabric struct {
	eng *sim.Engine
	g   *topology.Graph
	rt  *topology.RoutingTable
	cfg Config
	rng *sim.RNG

	// Pre-built sim.Handler instances for the fabric event kinds, so the
	// per-hop scheduling path is closure-free and allocation-free. bookH
	// exists only on a partitioned fabric (see sharded.go).
	arriveH  sim.Handler
	deliverH sim.Handler
	bookH    sim.Handler

	// part holds per-shard ownership state when the fabric is partitioned
	// via EnablePartition; nil means confined to the primary shard.
	part *partition

	// chans[2*linkID+dir]: dir 0 = A->B, dir 1 = B->A.
	chans        []channel
	nics         map[topology.NodeID]*NIC
	groups       []*topology.MulticastTree
	reduceGroups []*reduceGroup

	nextPktID uint64
	// TotalDropped counts fabric drops across all channels.
	TotalDropped uint64
	// Background-traffic counters (packets injected via InjectBackground).
	BackgroundInjected  uint64
	BackgroundDelivered uint64
	BackgroundBytes     uint64 // payload bytes injected
}

// New builds a fabric over graph g. Routing tables are computed eagerly.
func New(eng *sim.Engine, g *topology.Graph, cfg Config) *Fabric {
	cfg = cfg.withDefaults()
	f := &Fabric{
		eng:  eng,
		g:    g,
		rt:   g.BuildRouting(),
		cfg:  cfg,
		rng:  eng.SplitRNG(),
		nics: make(map[topology.NodeID]*NIC),
	}
	f.arriveH = (*arriveHandler)(f)
	f.deliverH = (*deliverHandler)(f)
	f.chans = make([]channel, 2*len(g.Links))
	for _, l := range g.Links {
		bwAB, bwBA := cfg.LinkBandwidth, cfg.LinkBandwidth
		if g.Nodes[l.A].Kind == topology.Host || g.Nodes[l.B].Kind == topology.Host {
			bwAB, bwBA = cfg.HostLinkBandwidth, cfg.HostLinkBandwidth
		}
		f.chans[2*l.ID] = channel{from: l.A, to: l.B, bw: bwAB, baseBw: bwAB, serSize: -1, dropOverride: -1}
		f.chans[2*l.ID+1] = channel{from: l.B, to: l.A, bw: bwBA, baseBw: bwBA, serSize: -1, dropOverride: -1}
	}
	return f
}

// Config returns the effective (defaulted) configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Graph returns the underlying topology.
func (f *Fabric) Graph() *topology.Graph { return f.g }

// Engine returns the simulation engine driving this fabric.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// AttachNIC registers (or returns the existing) NIC for a host.
func (f *Fabric) AttachNIC(host topology.NodeID) *NIC {
	if f.g.Nodes[host].Kind != topology.Host {
		panic(fmt.Sprintf("fabric: AttachNIC(%d): not a host", host))
	}
	if nic, ok := f.nics[host]; ok {
		return nic
	}
	nic := &NIC{Host: host, f: f, groups: make(map[GroupID]bool)}
	f.nics[host] = nic
	return nic
}

// CreateGroup builds a multicast group over members, rooted at the given
// switch. Use round-robin roots across spines to spread subgroup trees.
func (f *Fabric) CreateGroup(root topology.NodeID, members []topology.NodeID) (GroupID, error) {
	mt, err := f.g.BuildMulticastTree(root, members)
	if err != nil {
		return NoGroup, err
	}
	id := GroupID(len(f.groups))
	f.groups = append(f.groups, mt)
	return id, nil
}

// AttachGroup subscribes a NIC to a multicast group. Only hosts that are
// members of the group's tree may attach.
func (n *NIC) AttachGroup(gid GroupID) error {
	mt := n.f.groups[gid]
	if !mt.OnTree(n.Host) {
		return fmt.Errorf("fabric: host %d is not a member of group %d", n.Host, gid)
	}
	n.groups[gid] = true
	return nil
}

// DetachGroup unsubscribes the NIC. Packets for the group still traverse
// the tree but are not delivered locally.
func (n *NIC) DetachGroup(gid GroupID) { delete(n.groups, gid) }

// MaxPayload returns the fabric MTU (maximum packet payload bytes).
func (f *Fabric) MaxPayload() int { return f.cfg.MTU }

// Inject sends a packet from this NIC and returns the virtual time at which
// the packet finishes serializing onto the host uplink (the wire time a
// send completion would be reported by real hardware). The packet's Src is
// overwritten with the NIC's host. Payload size must not exceed the MTU:
// segmentation is the transport layer's job, exactly as with real verbs.
func (n *NIC) Inject(pkt *Packet) sim.Time {
	if pkt.PayloadBytes > n.f.cfg.MTU {
		panic(fmt.Sprintf("fabric: payload %d exceeds MTU %d", pkt.PayloadBytes, n.f.cfg.MTU))
	}
	if pkt.PayloadBytes < 0 {
		panic("fabric: negative payload size")
	}
	pkt.Src = n.Host
	if pkt.Group != NoGroup {
		mt := n.f.groups[pkt.Group]
		if !mt.OnTree(n.Host) {
			panic(fmt.Sprintf("fabric: host %d multicasting to group %d it is not attached to", n.Host, pkt.Group))
		}
	}
	n.Injected++
	if n.f.part != nil {
		return n.injectPartitioned(pkt)
	}
	pkt.ID = n.f.nextPktID
	n.f.nextPktID++
	// The host's single port is port 0; transmit up the host link.
	return n.f.transmit(pkt, n.Host, 0)
}

// wireBytes is the link occupancy of the packet.
func (f *Fabric) wireBytes(pkt *Packet) int { return pkt.PayloadBytes + f.cfg.HeaderBytes }

// serialization returns the wire time of size bytes on the channel,
// memoizing the last (size, time) pair: back-to-back traffic on a channel
// is overwhelmingly same-sized (MTU chunks one way, acks the other), so the
// common case skips the division entirely — and a cache hit is bit-exact,
// where a precomputed 1e9/bw reciprocal would round differently in the
// last ulp and shift event times.
func (ch *channel) serialization(size int) sim.Time {
	if size == ch.serSize {
		return ch.serTime
	}
	t := sim.Time(float64(size) / ch.bw * 1e9)
	ch.serSize, ch.serTime = size, t
	return t
}

// transmit serializes pkt onto the channel leaving node via port, then
// schedules arrival processing at the peer. It returns the serialization
// completion time on that channel.
func (f *Fabric) transmit(pkt *Packet, node topology.NodeID, port int) sim.Time {
	if f.part != nil {
		// Partitioned hops go through book/dispatch on the owning shard;
		// reaching the confined path means a switch arrival slipped past
		// the pipeline and would mutate channel state off its owner.
		panic(fmt.Sprintf("fabric: confined transmit at node %d port %d on a partitioned fabric", node, port))
	}
	nb := f.g.Adj[node][port]
	ch := f.channelFor(node, nb.Link)
	size := f.wireBytes(pkt)
	serialize := ch.serialization(size)
	start := ch.nextFree
	now := f.eng.Now()
	if start < now {
		start = now
	} else if backlog := start - now; backlog > ch.stats.MaxBacklog {
		ch.stats.MaxBacklog = backlog
	}
	ch.nextFree = start + serialize
	ch.stats.Packets++
	ch.stats.Bytes += uint64(size)
	ch.stats.Busy += serialize

	// Fabric drop: the packet occupies the channel but never arrives. A
	// scenario override replaces the global rate on this channel.
	rate := f.cfg.DropRate
	if ch.dropOverride >= 0 {
		rate = ch.dropOverride
	}
	if rate > 0 && f.rng.Bernoulli(rate) {
		ch.stats.Drops++
		f.TotalDropped++
		return ch.nextFree
	}

	arrival := ch.nextFree + f.cfg.LinkLatency + ch.extraLat
	f.eng.AtHandler(arrival, f.arriveH, uint64(nb.Peer), nb.Link, pkt)
	return ch.nextFree
}

// arriveHandler dispatches a packet's landing at a node; arg0 is the node,
// arg1 the link it crossed, obj the *Packet.
type arriveHandler Fabric

func (h *arriveHandler) OnEvent(_ *sim.Engine, _ sim.Handle, arg0 uint64, arg1 int, obj any) {
	(*Fabric)(h).arrive(obj.(*Packet), topology.NodeID(arg0), arg1)
}

// deliverHandler completes a jittered final-hop delivery; arg0 is the host,
// obj the *Packet.
type deliverHandler Fabric

func (h *deliverHandler) OnEvent(_ *sim.Engine, _ sim.Handle, arg0 uint64, _ int, obj any) {
	f := (*Fabric)(h)
	if nic, ok := f.nics[topology.NodeID(arg0)]; ok {
		f.deliverNow(nic, obj.(*Packet))
	}
}

// channelFor returns the directed channel leaving `from` over link `link`.
func (f *Fabric) channelFor(from topology.NodeID, link int) *channel {
	l := f.g.Links[link]
	if l.A == from {
		return &f.chans[2*link]
	}
	return &f.chans[2*link+1]
}

// arrive processes a packet landing at node after crossing link.
func (f *Fabric) arrive(pkt *Packet, node topology.NodeID, link int) {
	if f.g.Nodes[node].Kind == topology.Host {
		f.deliverToHost(pkt, node)
		return
	}
	if pkt.Reduce != NoReduceGroup {
		f.routeReduce(pkt, node)
		return
	}
	if pkt.Group != NoGroup {
		f.forwardMulticast(pkt, node, link)
		return
	}
	f.forwardUnicast(pkt, node, link)
}

// ecmpHash is the deterministic multipath hash over (flow, src, dst).
func ecmpHash(flow uint64, src, dst topology.NodeID) uint64 {
	h := flow*0x9E3779B97F4A7C15 + uint64(src)*0x517CC1B727220A95 + uint64(dst)
	return h ^ (h >> 29)
}

func (f *Fabric) forwardUnicast(pkt *Packet, sw topology.NodeID, ingress int) {
	cands := f.rt.Candidates(sw, pkt.Dst)
	if len(cands) == 0 {
		panic(fmt.Sprintf("fabric: switch %d has no route to %d", sw, pkt.Dst))
	}
	var port int
	switch {
	case len(cands) == 1:
		port = cands[0]
	case f.cfg.AdaptiveRouting:
		port = cands[f.rng.Intn(len(cands))]
	default:
		port = cands[ecmpHash(pkt.Flow, pkt.Src, pkt.Dst)%uint64(len(cands))]
	}
	f.transmit(pkt, sw, port)
}

func (f *Fabric) forwardMulticast(pkt *Packet, sw topology.NodeID, ingress int) {
	mt := f.groups[pkt.Group]
	ports := mt.TreePorts[sw]
	if len(ports) == 0 {
		// A multicast packet reached a switch outside the tree: indicates a
		// tree-construction bug; fail loudly.
		panic(fmt.Sprintf("fabric: multicast packet for group %d at off-tree switch %d", pkt.Group, sw))
	}
	for _, p := range ports {
		if f.g.Adj[sw][p].Link == ingress {
			continue // never reflect back toward the sender
		}
		f.transmit(pkt, sw, p)
	}
}

func (f *Fabric) deliverToHost(pkt *Packet, host topology.NodeID) {
	if pkt.Background {
		f.BackgroundDelivered++
		return
	}
	nic, ok := f.nics[host]
	if !ok {
		return // host without a NIC silently drops (e.g. non-participants)
	}
	if pkt.Group != NoGroup && !nic.groups[pkt.Group] {
		return // on the tree for forwarding reasons but not attached
	}
	if j := f.cfg.ReorderJitter; j > 0 {
		f.eng.AfterHandler(sim.Time(f.rng.Intn(int(j))), f.deliverH, uint64(host), 0, pkt)
		return
	}
	f.deliverNow(nic, pkt)
}

func (f *Fabric) deliverNow(nic *NIC, pkt *Packet) {
	nic.Received++
	if nic.Deliver != nil {
		nic.Deliver(pkt)
	}
}

// --- dynamic channel overrides (scenario extension layer) ------------------
//
// The scenario subsystem perturbs a live fabric through these handles: each
// directed channel can have its bandwidth scaled, extra latency added, or
// its drop rate replaced, and every override is restorable mid-simulation.
// With no override active the transmit path computes bit-identical results
// to the static configuration, so a "quiet" scenario does not move a single
// event.

// ChannelID identifies one directed channel: 2*linkID for the A->B
// direction of topology link linkID, 2*linkID+1 for B->A.
type ChannelID int

// NumChannels returns the number of directed channels (2 per link).
func (f *Fabric) NumChannels() int { return len(f.chans) }

// ChannelEnds returns the endpoints of a directed channel, transmit side
// first.
func (f *Fabric) ChannelEnds(id ChannelID) (from, to topology.NodeID) {
	ch := &f.chans[id]
	return ch.from, ch.to
}

// ChannelBacklog returns the current queueing delay on the channel: how far
// its serializer is booked past the present.
func (f *Fabric) ChannelBacklog(id ChannelID) sim.Time {
	if d := f.chans[id].nextFree - f.eng.Now(); d > 0 {
		return d
	}
	return 0
}

// SetBandwidthScale sets the channel's effective capacity to scale times
// its configured bandwidth (1 restores full speed). Packets already
// serialized keep their times; only future transmissions see the change.
func (f *Fabric) SetBandwidthScale(id ChannelID, scale float64) {
	if scale <= 0 {
		panic(fmt.Sprintf("fabric: bandwidth scale %v must be positive (use SetDropRate(id, 1) for an outage)", scale))
	}
	f.assertConfined(id, "SetBandwidthScale")
	ch := &f.chans[id]
	ch.serSize = -1 // invalidate the memoized serialization time
	if scale == 1 {
		ch.bw = ch.baseBw
		return
	}
	ch.bw = ch.baseBw * scale
}

// SetExtraLatency adds d to every future traversal of the channel on top of
// the configured link latency (0 restores the baseline).
func (f *Fabric) SetExtraLatency(id ChannelID, d sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("fabric: negative extra latency %v", d))
	}
	f.assertConfined(id, "SetExtraLatency")
	f.chans[id].extraLat = d
}

// DropRateOverride returns the channel's current drop-rate override, or a
// negative value when none is set (the global Config.DropRate applies).
// Injectors that stack on the same channel snapshot it before perturbing
// so their restore puts back what they found, not the global default.
func (f *Fabric) DropRateOverride(id ChannelID) float64 {
	return f.chans[id].dropOverride
}

// SetDropRate replaces Config.DropRate on this channel: 0 makes it
// lossless, 1 takes it down entirely (every traversal drops), and a
// negative rate clears the override, restoring the global configuration.
func (f *Fabric) SetDropRate(id ChannelID, rate float64) {
	f.assertConfined(id, "SetDropRate")
	if rate > 1 {
		rate = 1
	}
	if rate < 0 {
		rate = -1
	}
	f.chans[id].dropOverride = rate
}

// ClearOverrides restores the channel's configured bandwidth, latency and
// drop behavior.
func (f *Fabric) ClearOverrides(id ChannelID) {
	ch := &f.chans[id]
	ch.bw = ch.baseBw
	ch.serSize = -1
	ch.extraLat = 0
	ch.dropOverride = -1
}

// UnicastPath returns the directed channels a unicast flow traverses from
// src host to dst host under deterministic ECMP — the static path the flow
// label pins. With AdaptiveRouting enabled the actual per-packet path is
// random; the returned path is then one representative shortest path.
// Scenario-level congestion control uses it to watch a flow's queues.
func (f *Fabric) UnicastPath(src, dst topology.NodeID, flow uint64) []ChannelID {
	if f.g.Nodes[src].Kind != topology.Host || f.g.Nodes[dst].Kind != topology.Host {
		panic(fmt.Sprintf("fabric: UnicastPath(%d, %d): endpoints must be hosts", src, dst))
	}
	var path []ChannelID
	node := src
	for node != dst {
		var port int
		if f.g.Nodes[node].Kind == topology.Host {
			port = 0 // the host's single uplink
		} else {
			cands := f.rt.Candidates(node, dst)
			if len(cands) == 0 {
				panic(fmt.Sprintf("fabric: switch %d has no route to %d", node, dst))
			}
			port = cands[0]
			if len(cands) > 1 {
				port = cands[ecmpHash(flow, src, dst)%uint64(len(cands))]
			}
		}
		nb := f.g.Adj[node][port]
		if f.g.Links[nb.Link].A == node {
			path = append(path, ChannelID(2*nb.Link))
		} else {
			path = append(path, ChannelID(2*nb.Link+1))
		}
		node = nb.Peer
	}
	return path
}

// InjectBackground sends one non-collective packet from src toward dst,
// occupying the same channels (and the same serialization slots) as
// collective traffic — the packet-injection hook the multi-tenant scenarios
// stand on. Both endpoints must be hosts; dst needs no NIC, the packet is
// only counted on delivery. Returns the time the packet finishes
// serializing onto src's uplink.
func (f *Fabric) InjectBackground(src, dst topology.NodeID, payloadBytes int, flow uint64) sim.Time {
	if f.g.Nodes[src].Kind != topology.Host || f.g.Nodes[dst].Kind != topology.Host {
		panic(fmt.Sprintf("fabric: background flow %d->%d endpoints must be hosts", src, dst))
	}
	if payloadBytes > f.cfg.MTU {
		panic(fmt.Sprintf("fabric: background payload %d exceeds MTU %d", payloadBytes, f.cfg.MTU))
	}
	if payloadBytes < 0 {
		panic("fabric: negative background payload size")
	}
	pkt := &Packet{
		Src: src, Dst: dst, Group: NoGroup, Flow: flow,
		PayloadBytes: payloadBytes, Background: true,
	}
	if f.part != nil {
		panic("fabric: background traffic requires the confined fabric (EnablePartition refuses scenarios; this fabric was partitioned first)")
	}
	pkt.ID = f.nextPktID
	f.nextPktID++
	f.BackgroundInjected++
	f.BackgroundBytes += uint64(payloadBytes)
	return f.transmit(pkt, src, 0)
}

// assertConfined rejects a live per-channel override on a partitioned
// fabric: the channel's serializer state belongs to its owner shard, and a
// mid-run mutation from outside would race it (and shift results with
// shard count). EnablePartition refuses fabrics that already carry
// overrides, so the two features are mutually exclusive by construction;
// ClearOverrides stays allowed since it restores the exact baseline the
// partitioned channels are known to hold.
func (f *Fabric) assertConfined(id ChannelID, op string) {
	if f.part == nil {
		return
	}
	ch := &f.chans[id]
	panic(fmt.Sprintf("fabric: %s on channel %d (%d->%d) owned by shard %d: live overrides require the confined fabric",
		op, id, ch.from, ch.to, f.part.chanOwner[id]))
}

// --- counters -------------------------------------------------------------

// ChannelStats returns stats for the directed channel from -> to over the
// first link connecting them.
func (f *Fabric) ChannelStats(from, to topology.NodeID) PortStats {
	for li, l := range f.g.Links {
		if l.A == from && l.B == to {
			return f.chans[2*li].stats
		}
		if l.B == from && l.A == to {
			return f.chans[2*li+1].stats
		}
	}
	return PortStats{}
}

// SwitchEgressBytes sums wire bytes transmitted out of every switch port —
// the quantity the paper measures with switch performance counters in
// Figure 12 ("traffic across all switch ports").
func (f *Fabric) SwitchEgressBytes() uint64 {
	var total uint64
	for i := range f.chans {
		ch := &f.chans[i]
		if f.g.Nodes[ch.from].Kind == topology.Switch {
			total += ch.stats.Bytes
		}
	}
	return total
}

// SwitchPortBytes sums traffic over every switch port in both directions —
// the quantity the paper's Figure 12 reads from the SX6036 performance
// counters. A channel between two switches crosses two switch ports (one
// TX, one RX) and counts twice; a host-switch channel counts once.
func (f *Fabric) SwitchPortBytes() uint64 {
	var total uint64
	for i := range f.chans {
		ch := &f.chans[i]
		if f.g.Nodes[ch.from].Kind == topology.Switch {
			total += ch.stats.Bytes
		}
		if f.g.Nodes[ch.to].Kind == topology.Switch {
			total += ch.stats.Bytes
		}
	}
	return total
}

// TotalWireBytes sums bytes over every channel, including host injection.
func (f *Fabric) TotalWireBytes() uint64 {
	var total uint64
	for i := range f.chans {
		total += f.chans[i].stats.Bytes
	}
	return total
}

// PerLinkBytes returns the wire bytes per directed channel, keyed by
// "<from>-><to>#<link>" strings; used by traffic-distribution reports.
func (f *Fabric) PerLinkBytes() map[string]uint64 {
	m := make(map[string]uint64, len(f.chans))
	for i := range f.chans {
		ch := &f.chans[i]
		key := fmt.Sprintf("%d->%d#%d", ch.from, ch.to, i/2)
		m[key] = ch.stats.Bytes
	}
	return m
}

// MaxChannelBytes returns the hottest channel's byte count; the ratio of
// max to mean indicates load balance across trees/paths.
func (f *Fabric) MaxChannelBytes() uint64 {
	var max uint64
	for i := range f.chans {
		if b := f.chans[i].stats.Bytes; b > max {
			max = b
		}
	}
	return max
}

// MaxBacklog returns the worst egress queueing delay observed on any
// switch port — the congestion signature of simultaneous multicast roots.
func (f *Fabric) MaxBacklog() sim.Time {
	var max sim.Time
	for i := range f.chans {
		ch := &f.chans[i]
		if f.g.Nodes[ch.from].Kind == topology.Switch && ch.stats.MaxBacklog > max {
			max = ch.stats.MaxBacklog
		}
	}
	return max
}

// ResetCounters zeroes all channel statistics (between experiment phases).
func (f *Fabric) ResetCounters() {
	for i := range f.chans {
		f.chans[i].stats = PortStats{}
	}
	f.TotalDropped = 0
	f.BackgroundInjected, f.BackgroundDelivered, f.BackgroundBytes = 0, 0, 0
	for _, nic := range f.nics {
		nic.Injected, nic.Received = 0, 0
	}
}
