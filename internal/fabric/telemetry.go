package fabric

import (
	"strconv"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// This file is the fabric's telemetry surface: end-of-run export of the
// per-channel counters the fabric already keeps, plus the live gauges the
// virtual-time sampler reads. Everything here is off the packet hot path —
// the only per-packet cost telemetry adds to the fabric is the Busy
// accumulation in transmit, a single integer add paid identically whether
// telemetry is enabled or not.

// PortStatsAt returns the counters of one directed channel by id.
func (f *Fabric) PortStatsAt(id ChannelID) PortStats {
	return f.chans[id].stats
}

// channelLabel renders the stable per-channel metric label:
// "ch=<id>:<from>-><to>".
func (f *Fabric) channelLabel(id int) string {
	ch := &f.chans[id]
	return "ch=" + strconv.Itoa(id) + ":" + strconv.Itoa(int(ch.from)) + "->" + strconv.Itoa(int(ch.to))
}

// CollectTelemetry exports the fabric's counters into reg: per-channel
// bytes, packets, drops, serialization busy-time and worst backlog for
// every channel that carried traffic (idle channels are skipped — a
// deterministic criterion — to keep metrics.json bounded on the 188-host
// testbed), plus fabric-wide totals. A nil registry is a no-op.
func (f *Fabric) CollectTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for i := range f.chans {
		st := &f.chans[i].stats
		if st.Packets == 0 {
			continue
		}
		lbl := f.channelLabel(i)
		reg.Counter("fabric", "channel_bytes", lbl, telemetry.Stable).Add(st.Bytes)
		reg.Counter("fabric", "channel_packets", lbl, telemetry.Stable).Add(st.Packets)
		reg.Counter("fabric", "channel_busy_ns", lbl, telemetry.Stable).Add(uint64(st.Busy))
		reg.Counter("fabric", "channel_max_backlog_ns", lbl, telemetry.Stable).Add(uint64(st.MaxBacklog))
		if st.Drops > 0 {
			reg.Counter("fabric", "channel_drops", lbl, telemetry.Stable).Add(st.Drops)
		}
	}
	reg.Counter("fabric", "wire_bytes_total", "", telemetry.Stable).Add(f.TotalWireBytes())
	reg.Counter("fabric", "drops_total", "", telemetry.Stable).Add(f.TotalDropped)
	reg.Counter("fabric", "bg_bytes_total", "", telemetry.Stable).Add(f.BackgroundBytes)
}

// CurrentMaxBacklog reports the worst backlog across all channels right
// now: how far the most-booked serializer runs ahead of the clock. The
// sampler turns this into the fabric backlog gauge track.
func (f *Fabric) CurrentMaxBacklog() sim.Time {
	now := f.eng.Now()
	var max sim.Time
	for i := range f.chans {
		if d := f.chans[i].nextFree - now; d > max {
			max = d
		}
	}
	return max
}
