package fabric

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
)

// benchFabric builds a small star fabric with background flows between
// every host pair direction, the pure fabric+engine hot path (no verbs).
func benchFabric(b *testing.B) (*sim.Engine, *Fabric, []topology.NodeID) {
	b.Helper()
	eng := sim.NewEngine(1)
	g := topology.Star(8)
	f := New(eng, g, Config{})
	return eng, f, g.Hosts()
}

const benchPackets = 1024

// BenchmarkFabricHop measures the per-hop cost of the transmit/arrive path:
// one iteration injects benchPackets MTU packets, each crossing two
// channels (host -> hub -> host), and drains the engine. The acceptance
// metric is allocs/op: post-overhaul the only allocation left on this path
// is the *Packet itself (events are pooled, arrivals closure-free).
func BenchmarkFabricHop(b *testing.B) {
	eng, f, hosts := benchFabric(b)
	mtu := f.MaxPayload()
	inject := func() {
		for i := 0; i < benchPackets; i++ {
			src := hosts[i%len(hosts)]
			dst := hosts[(i+3)%len(hosts)]
			f.InjectBackground(src, dst, mtu, uint64(i&7))
		}
		eng.Run()
	}
	inject() // warm the event pool and channel bucket slices
	start := eng.Executed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inject()
	}
	b.StopTimer()
	hops := float64(b.N) * benchPackets * 2
	b.ReportMetric(hops/b.Elapsed().Seconds(), "hops/sec")
	b.ReportMetric(float64(eng.Executed-start)/b.Elapsed().Seconds(), "events/sec")
}

// hopInjector is the closure-free injection handler for the sharded hop
// bench: obj is the preallocated *Packet to hand to the NIC.
type hopInjector struct{ nic *NIC }

func (h *hopInjector) OnEvent(_ *sim.Engine, _ sim.Handle, _ uint64, _ int, obj any) {
	h.nic.Inject(obj.(*Packet))
}

// shardedHopRun is one BenchmarkFabricHopSharded workload: a star fabric
// partitioned at the given shard count, every host streaming MTU packets
// to a fixed offset peer through its own NIC (InjectBackground is refused
// on a partitioned fabric — the global packet counter is exactly the kind
// of shared state partitioning removes). Packets are preallocated and
// reused across iterations so the measurement is the event pipeline, not
// the garbage collector. Returns the injector and the executed-event
// reader.
func shardedHopRun(b *testing.B, shards, hosts, packets int) (func(), func() uint64) {
	b.Helper()
	g := topology.Star(hosts)
	var eng *sim.Engine
	if shards == 1 {
		eng = sim.NewEngine(1)
	} else {
		_, eng = NewShardedEngine(1, g, Config{}, shards)
	}
	f := New(eng, g, Config{})
	if !f.EnablePartition() {
		b.Fatalf("shards=%d: EnablePartition refused a pristine fabric", shards)
	}
	ids := g.Hosts()
	nics := make([]*NIC, len(ids))
	injs := make([]*hopInjector, len(ids))
	for i, h := range ids {
		nics[i] = f.AttachNIC(h)
		nics[i].Deliver = func(*Packet) {}
		injs[i] = &hopInjector{nic: nics[i]}
	}
	perHost := packets / len(ids)
	mtu := f.MaxPayload()
	pkts := make([]Packet, len(ids)*perHost)
	inject := func() {
		// Injections land on each host's own shard at the aligned clock;
		// serialization on the per-host uplinks spreads the hops across
		// the epoch windows. Every iteration drains completely, so the
		// packet structs are free to reuse (reset — the fabric stamps
		// Src/ID and hop state in place).
		for i := range nics {
			hostEng := f.HostEngine(ids[i])
			now := hostEng.Now()
			dst := ids[(i+3)%len(ids)]
			for k := 0; k < perHost; k++ {
				p := &pkts[i*perHost+k]
				*p = Packet{Dst: dst, Group: NoGroup, Flow: uint64(k & 7), PayloadBytes: mtu}
				hostEng.AtHandler(now, injs[i], 0, 0, p)
			}
		}
		eng.Run()
	}
	executed := func() uint64 {
		if g := eng.Group(); g != nil {
			return g.ExecutedTotal()
		}
		return eng.Executed
	}
	return inject, executed
}

// BenchmarkFabricHopSharded measures the partitioned pipeline's multi-core
// throughput on the pure fabric hot path: 64 hosts streaming through a
// 4-shard partition, against an untimed single-shard partitioned reference
// of the same workload. events/sec/core and speedup are the CI-gated
// scaling metrics; hops/sec is comparable with BenchmarkFabricHop.
func BenchmarkFabricHopSharded(b *testing.B) {
	const (
		shards  = 4
		hosts   = 256
		packets = 16384
	)
	inject, executed := shardedHopRun(b, shards, hosts, packets)
	inject() // warm event pools, mailboxes and channel bucket slices
	start := executed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inject()
	}
	b.StopTimer()
	parRate := float64(executed()-start) / b.Elapsed().Seconds()

	serialInject, serialExecuted := shardedHopRun(b, 1, hosts, packets)
	serialInject()
	serialStart := serialExecuted()
	wall := time.Now()
	for i := 0; i < b.N; i++ {
		serialInject()
	}
	serialRate := float64(serialExecuted()-serialStart) / time.Since(wall).Seconds()

	hops := float64(b.N) * packets * 2
	b.ReportMetric(hops/b.Elapsed().Seconds(), "hops/sec")
	b.ReportMetric(parRate, "events/sec")
	b.ReportMetric(parRate/shards, "events/sec/core")
	b.ReportMetric(parRate/serialRate, "speedup")
}

// TestFabricHopAllocGate is the satellite AllocsPerRun gate on the
// closure-free fabric hot path: steady-state, a background packet costs
// exactly its own allocation — the two hop events and the delivery come
// from the engine pool.
func TestFabricHopAllocGate(t *testing.T) {
	eng := sim.NewEngine(1)
	g := topology.Star(4)
	f := New(eng, g, Config{})
	hosts := g.Hosts()
	mtu := f.MaxPayload()
	send := func() {
		f.InjectBackground(hosts[0], hosts[2], mtu, 1)
		eng.Run()
	}
	for i := 0; i < 64; i++ { // warm pool and slices
		send()
	}
	avg := testing.AllocsPerRun(200, send)
	if avg > 1 {
		t.Fatalf("fabric hop allocates %.2f objects per packet, want <= 1 (the Packet itself)", avg)
	}
}
