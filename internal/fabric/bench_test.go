package fabric

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// benchFabric builds a small star fabric with background flows between
// every host pair direction, the pure fabric+engine hot path (no verbs).
func benchFabric(b *testing.B) (*sim.Engine, *Fabric, []topology.NodeID) {
	b.Helper()
	eng := sim.NewEngine(1)
	g := topology.Star(8)
	f := New(eng, g, Config{})
	return eng, f, g.Hosts()
}

const benchPackets = 1024

// BenchmarkFabricHop measures the per-hop cost of the transmit/arrive path:
// one iteration injects benchPackets MTU packets, each crossing two
// channels (host -> hub -> host), and drains the engine. The acceptance
// metric is allocs/op: post-overhaul the only allocation left on this path
// is the *Packet itself (events are pooled, arrivals closure-free).
func BenchmarkFabricHop(b *testing.B) {
	eng, f, hosts := benchFabric(b)
	mtu := f.MaxPayload()
	inject := func() {
		for i := 0; i < benchPackets; i++ {
			src := hosts[i%len(hosts)]
			dst := hosts[(i+3)%len(hosts)]
			f.InjectBackground(src, dst, mtu, uint64(i&7))
		}
		eng.Run()
	}
	inject() // warm the event pool and channel bucket slices
	start := eng.Executed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inject()
	}
	b.StopTimer()
	hops := float64(b.N) * benchPackets * 2
	b.ReportMetric(hops/b.Elapsed().Seconds(), "hops/sec")
	b.ReportMetric(float64(eng.Executed-start)/b.Elapsed().Seconds(), "events/sec")
}

// TestFabricHopAllocGate is the satellite AllocsPerRun gate on the
// closure-free fabric hot path: steady-state, a background packet costs
// exactly its own allocation — the two hop events and the delivery come
// from the engine pool.
func TestFabricHopAllocGate(t *testing.T) {
	eng := sim.NewEngine(1)
	g := topology.Star(4)
	f := New(eng, g, Config{})
	hosts := g.Hosts()
	mtu := f.MaxPayload()
	send := func() {
		f.InjectBackground(hosts[0], hosts[2], mtu, 1)
		eng.Run()
	}
	for i := 0; i < 64; i++ { // warm pool and slices
		send()
	}
	avg := testing.AllocsPerRun(200, send)
	if avg > 1 {
		t.Fatalf("fabric hop allocates %.2f objects per packet, want <= 1 (the Packet itself)", avg)
	}
}
