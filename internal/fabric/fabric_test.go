package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topology"
)

// testFabric builds a star fabric with n hosts and returns engine, fabric
// and attached NICs.
func testFabric(t *testing.T, n int, cfg Config) (*sim.Engine, *Fabric, []*NIC) {
	t.Helper()
	eng := sim.NewEngine(1)
	g := topology.Star(n)
	f := New(eng, g, cfg)
	nics := make([]*NIC, 0, n)
	for _, h := range g.Hosts() {
		nics = append(nics, f.AttachNIC(h))
	}
	return eng, f, nics
}

func TestUnicastDelivery(t *testing.T) {
	eng, _, nics := testFabric(t, 2, Config{})
	var got *Packet
	nics[1].Deliver = func(p *Packet) { got = p }
	nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 1024, Payload: "hello"})
	eng.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.Payload.(string) != "hello" || got.Src != nics[0].Host {
		t.Fatalf("wrong packet: %+v", got)
	}
}

func TestUnicastLatency(t *testing.T) {
	// 1024B payload + 64B header = 1088B at 25e9 B/s = 43.52ns serialization
	// per hop; 2 hops (host->sw, sw->host) + 2×250ns propagation.
	eng, _, nics := testFabric(t, 2, Config{})
	var at sim.Time
	nics[1].Deliver = func(p *Packet) { at = eng.Now() }
	nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 1024})
	eng.Run()
	want := sim.Time(2*43 + 2*250) // truncating float→int per hop
	if at < want-2 || at > want+2 {
		t.Fatalf("delivery at %v, want ≈%v", at, want)
	}
}

func TestSerializationThroughput(t *testing.T) {
	// Back-to-back streaming: k packets of the MTU must take ≈ k*(wire/bw)
	// on the bottleneck (host uplink), i.e. the receive rate equals link
	// bandwidth, not infinity.
	eng, f, nics := testFabric(t, 2, Config{})
	const k = 1000
	var lastArrival sim.Time
	count := 0
	nics[1].Deliver = func(p *Packet) { count++; lastArrival = eng.Now() }
	for i := 0; i < k; i++ {
		nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 4096})
	}
	eng.Run()
	if count != k {
		t.Fatalf("delivered %d, want %d", count, k)
	}
	wire := float64(4096 + f.Config().HeaderBytes)
	wantNs := float64(k) * wire / 25e9 * 1e9
	got := float64(lastArrival)
	if got < wantNs*0.99 || got > wantNs*1.05 {
		t.Fatalf("streaming %d packets finished at %.0fns, want ≈%.0fns", k, got, wantNs)
	}
}

func TestMTUEnforced(t *testing.T) {
	_, _, nics := testFabric(t, 2, Config{MTU: 2048})
	defer func() {
		if recover() == nil {
			t.Error("oversized payload did not panic")
		}
	}()
	nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 4096})
}

func TestMulticastReachesAllMembersExceptSender(t *testing.T) {
	eng, f, nics := testFabric(t, 4, Config{})
	gid, err := f.CreateGroup(f.Graph().Switches()[0], f.Graph().Hosts())
	if err != nil {
		t.Fatal(err)
	}
	recv := make([]int, 4)
	for i, nic := range nics {
		i := i
		if err := nic.AttachGroup(gid); err != nil {
			t.Fatal(err)
		}
		nic.Deliver = func(p *Packet) { recv[i]++ }
	}
	nics[0].Inject(&Packet{Group: gid, PayloadBytes: 512})
	eng.Run()
	if recv[0] != 0 {
		t.Errorf("sender received its own multicast %d times", recv[0])
	}
	for i := 1; i < 4; i++ {
		if recv[i] != 1 {
			t.Errorf("member %d received %d copies, want 1", i, recv[i])
		}
	}
}

func TestMulticastNotDeliveredToDetached(t *testing.T) {
	eng, f, nics := testFabric(t, 3, Config{})
	gid, _ := f.CreateGroup(f.Graph().Switches()[0], f.Graph().Hosts())
	for _, nic := range nics {
		nic.AttachGroup(gid)
	}
	got := 0
	nics[2].Deliver = func(p *Packet) { got++ }
	nics[2].DetachGroup(gid)
	nics[0].Inject(&Packet{Group: gid, PayloadBytes: 128})
	eng.Run()
	if got != 0 {
		t.Fatalf("detached NIC received %d packets", got)
	}
}

func TestMulticastRequiresMembership(t *testing.T) {
	_, f, nics := testFabric(t, 3, Config{})
	gid, _ := f.CreateGroup(f.Graph().Switches()[0], f.Graph().Hosts()[:2])
	defer func() {
		if recover() == nil {
			t.Error("multicast from non-member did not panic")
		}
	}()
	nics[2].Inject(&Packet{Group: gid, PayloadBytes: 128})
}

func TestAttachGroupRejectsNonMember(t *testing.T) {
	_, f, nics := testFabric(t, 3, Config{})
	gid, _ := f.CreateGroup(f.Graph().Switches()[0], f.Graph().Hosts()[:2])
	if err := nics[2].AttachGroup(gid); err == nil {
		t.Error("non-member attach succeeded")
	}
}

// Multicast on a fat-tree must traverse every tree link exactly once per
// datagram: this is the bandwidth-optimality property of Insight 1.
func TestMulticastLinkOptimality(t *testing.T) {
	eng := sim.NewEngine(1)
	g, err := topology.TwoLevelFatTree(topology.FatTreeSpec{Hosts: 8, HostsPerLeaf: 4, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := New(eng, g, Config{})
	hosts := g.Hosts()
	var spine topology.NodeID
	for _, sw := range g.Switches() {
		if g.Nodes[sw].Level == 2 {
			spine = sw
			break
		}
	}
	gid, err := f.CreateGroup(spine, hosts)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for _, h := range hosts {
		nic := f.AttachNIC(h)
		nic.AttachGroup(gid)
		nic.Deliver = func(p *Packet) { delivered++ }
	}
	f.AttachNIC(hosts[0]).Inject(&Packet{Group: gid, PayloadBytes: 4096})
	eng.Run()
	if delivered != len(hosts)-1 {
		t.Fatalf("delivered %d, want %d", delivered, len(hosts)-1)
	}
	// Wire bytes: the datagram crosses each tree link exactly once. Tree
	// links: 8 host links + 2 leaf-spine links on the tree = 10 channels,
	// but the sender's host link is crossed once upward and the other 7
	// downward, and leaf0<->spine, spine->leaf1: with root on the spine the
	// tree has 8 host edges + 2 leaf-spine edges. Each edge used once.
	wire := uint64(4096 + f.Config().HeaderBytes)
	want := 10 * wire
	if got := f.TotalWireBytes(); got != want {
		t.Fatalf("total wire bytes = %d, want %d (each tree link exactly once)", got, want)
	}
	// No channel carries the payload twice.
	if f.MaxChannelBytes() != wire {
		t.Fatalf("hottest channel carried %d bytes, want %d", f.MaxChannelBytes(), wire)
	}
}

func TestUnicastCrossesFatTree(t *testing.T) {
	eng := sim.NewEngine(1)
	g := topology.Testbed188()
	f := New(eng, g, Config{})
	hosts := g.Hosts()
	src, dst := hosts[0], hosts[187] // different leaves
	got := 0
	f.AttachNIC(dst).Deliver = func(p *Packet) { got++ }
	f.AttachNIC(src).Inject(&Packet{Dst: dst, Group: NoGroup, PayloadBytes: 4096})
	eng.Run()
	if got != 1 {
		t.Fatalf("cross-tree unicast delivered %d", got)
	}
}

func TestDropRate(t *testing.T) {
	eng, _, nics := testFabric(t, 2, Config{DropRate: 0.2})
	const k = 5000
	count := 0
	nics[1].Deliver = func(p *Packet) { count++ }
	for i := 0; i < k; i++ {
		nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 64})
	}
	eng.Run()
	// Two channel traversals per packet; survival ≈ 0.8^2 = 0.64.
	rate := float64(count) / k
	if rate < 0.58 || rate > 0.70 {
		t.Fatalf("survival rate %.3f, want ≈0.64", rate)
	}
}

func TestDropsCounted(t *testing.T) {
	eng, f, nics := testFabric(t, 2, Config{DropRate: 1.0})
	nics[1].Deliver = func(p *Packet) { t.Error("packet delivered despite DropRate=1") }
	nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 64})
	eng.Run()
	if f.TotalDropped != 1 {
		t.Fatalf("TotalDropped = %d, want 1", f.TotalDropped)
	}
}

func TestAdaptiveRoutingUsesAllSpines(t *testing.T) {
	eng := sim.NewEngine(7)
	g, err := topology.TwoLevelFatTree(topology.FatTreeSpec{Hosts: 8, HostsPerLeaf: 4, Spines: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := New(eng, g, Config{AdaptiveRouting: true})
	hosts := g.Hosts()
	src, dst := hosts[0], hosts[7]
	f.AttachNIC(dst).Deliver = func(p *Packet) {}
	srcNIC := f.AttachNIC(src)
	for i := 0; i < 200; i++ {
		srcNIC.Inject(&Packet{Dst: dst, Group: NoGroup, PayloadBytes: 64})
	}
	eng.Run()
	// Each spine must have carried some packets.
	leaf := g.LeafOf(src)
	spinesUsed := 0
	for _, sw := range g.Switches() {
		if g.Nodes[sw].Level != 2 {
			continue
		}
		if f.ChannelStats(leaf, sw).Packets > 0 {
			spinesUsed++
		}
	}
	if spinesUsed != 4 {
		t.Fatalf("adaptive routing used %d spines, want 4", spinesUsed)
	}
}

func TestDeterministicECMPPinsFlow(t *testing.T) {
	eng := sim.NewEngine(7)
	g, _ := topology.TwoLevelFatTree(topology.FatTreeSpec{Hosts: 8, HostsPerLeaf: 4, Spines: 4})
	f := New(eng, g, Config{AdaptiveRouting: false})
	hosts := g.Hosts()
	src, dst := hosts[0], hosts[7]
	f.AttachNIC(dst).Deliver = func(p *Packet) {}
	srcNIC := f.AttachNIC(src)
	for i := 0; i < 100; i++ {
		srcNIC.Inject(&Packet{Dst: dst, Group: NoGroup, Flow: 42, PayloadBytes: 64})
	}
	eng.Run()
	leaf := g.LeafOf(src)
	spinesUsed := 0
	for _, sw := range g.Switches() {
		if g.Nodes[sw].Level == 2 && f.ChannelStats(leaf, sw).Packets > 0 {
			spinesUsed++
		}
	}
	if spinesUsed != 1 {
		t.Fatalf("deterministic ECMP spread one flow over %d spines", spinesUsed)
	}
}

func TestReorderJitterReorders(t *testing.T) {
	eng, _, nics := testFabric(t, 2, Config{ReorderJitter: 10 * sim.Microsecond})
	var order []uint64
	nics[1].Deliver = func(p *Packet) { order = append(order, p.ID) }
	for i := 0; i < 100; i++ {
		nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 64})
	}
	eng.Run()
	if len(order) != 100 {
		t.Fatalf("delivered %d", len(order))
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("jitter configured but packets arrived perfectly in order")
	}
}

func TestInOrderWithoutJitter(t *testing.T) {
	eng, _, nics := testFabric(t, 2, Config{})
	var order []uint64
	nics[1].Deliver = func(p *Packet) { order = append(order, p.ID) }
	for i := 0; i < 100; i++ {
		nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 64})
	}
	eng.Run()
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatal("single-path UD without jitter must deliver in order")
		}
	}
}

func TestCountersAndReset(t *testing.T) {
	eng, f, nics := testFabric(t, 2, Config{})
	nics[1].Deliver = func(p *Packet) {}
	nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 1000})
	eng.Run()
	wire := uint64(1000 + f.Config().HeaderBytes)
	if got := f.TotalWireBytes(); got != 2*wire {
		t.Fatalf("TotalWireBytes = %d, want %d", got, 2*wire)
	}
	if got := f.SwitchEgressBytes(); got != wire {
		t.Fatalf("SwitchEgressBytes = %d, want %d", got, wire)
	}
	if nics[0].Injected != 1 || nics[1].Received != 1 {
		t.Fatal("NIC counters wrong")
	}
	f.ResetCounters()
	if f.TotalWireBytes() != 0 || nics[0].Injected != 0 {
		t.Fatal("ResetCounters left residue")
	}
	if len(f.PerLinkBytes()) == 0 {
		t.Fatal("PerLinkBytes returned empty map")
	}
}

func TestHostLinkBandwidthOverride(t *testing.T) {
	// Host links at half bandwidth: serialization twice as long.
	eng := sim.NewEngine(1)
	g := topology.Star(2)
	f := New(eng, g, Config{LinkBandwidth: 25e9, HostLinkBandwidth: 12.5e9})
	nics := []*NIC{f.AttachNIC(g.Hosts()[0]), f.AttachNIC(g.Hosts()[1])}
	var at sim.Time
	nics[1].Deliver = func(p *Packet) { at = eng.Now() }
	nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 4096})
	eng.Run()
	wire := float64(4096 + f.Config().HeaderBytes)
	want := sim.Time(2*wire/12.5e9*1e9) + 2*250
	if at < want-4 || at > want+4 {
		t.Fatalf("delivery at %v, want ≈%v", at, want)
	}
}

// Property: with random small stars and payload sizes, every injected
// unicast packet is delivered exactly once when DropRate is zero, and
// conservation holds: injected == received.
func TestPropertyUnicastConservation(t *testing.T) {
	f := func(sizes []uint16, seed uint64) bool {
		eng := sim.NewEngine(seed)
		g := topology.Star(3)
		fb := New(eng, g, Config{})
		hosts := g.Hosts()
		n0, n1, n2 := fb.AttachNIC(hosts[0]), fb.AttachNIC(hosts[1]), fb.AttachNIC(hosts[2])
		recv := 0
		n1.Deliver = func(p *Packet) { recv++ }
		n2.Deliver = func(p *Packet) { recv++ }
		sent := 0
		for i, s := range sizes {
			dst := n1.Host
			if i%2 == 0 {
				dst = n2.Host
			}
			n0.Inject(&Packet{Dst: dst, Group: NoGroup, PayloadBytes: int(s) % 4097})
			sent++
		}
		eng.Run()
		return recv == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMaxBacklogTracksCongestion(t *testing.T) {
	// Incast: three senders blast one receiver; the receiver's downlink
	// must accumulate backlog. A single packet leaves none.
	eng, f, nics := testFabric(t, 4, Config{})
	nics[0].Deliver = func(p *Packet) {}
	nics[1].Inject(&Packet{Dst: nics[0].Host, Group: NoGroup, PayloadBytes: 4096})
	eng.Run()
	if f.MaxBacklog() != 0 {
		t.Fatalf("single packet left backlog %v", f.MaxBacklog())
	}
	for i := 0; i < 100; i++ {
		for s := 1; s < 4; s++ {
			nics[s].Inject(&Packet{Dst: nics[0].Host, Group: NoGroup, PayloadBytes: 4096})
		}
	}
	eng.Run()
	if f.MaxBacklog() < 10*sim.Microsecond {
		t.Fatalf("incast backlog %v, want substantial queueing", f.MaxBacklog())
	}
	f.ResetCounters()
	if f.MaxBacklog() != 0 {
		t.Fatal("ResetCounters did not clear backlog")
	}
}

// --- scenario extension layer ------------------------------------------------

// uplinkOf returns the directed channel leaving host toward its switch.
func uplinkOf(t *testing.T, f *Fabric, host topology.NodeID) ChannelID {
	t.Helper()
	for id := 0; id < f.NumChannels(); id++ {
		from, _ := f.ChannelEnds(ChannelID(id))
		if from == host {
			return ChannelID(id)
		}
	}
	t.Fatalf("host %d has no uplink channel", host)
	return -1
}

func TestPortStatsMaxBacklogGauge(t *testing.T) {
	// The per-channel backlog gauge must be observable through ChannelStats:
	// an incast toward one host shows up on that host's downlink and only
	// there, making scenario hotspots measurable per port.
	eng, f, nics := testFabric(t, 4, Config{})
	nics[0].Deliver = func(p *Packet) {}
	for i := 0; i < 50; i++ {
		for s := 1; s < 4; s++ {
			nics[s].Inject(&Packet{Dst: nics[0].Host, Group: NoGroup, PayloadBytes: 4096})
		}
	}
	eng.Run()
	hub := f.Graph().Switches()[0]
	down := f.ChannelStats(hub, nics[0].Host)
	if down.MaxBacklog < 10*sim.Microsecond {
		t.Fatalf("victim downlink MaxBacklog = %v, want substantial queueing", down.MaxBacklog)
	}
	quietDown := f.ChannelStats(hub, nics[1].Host)
	if quietDown.MaxBacklog != 0 {
		t.Fatalf("idle downlink MaxBacklog = %v, want 0", quietDown.MaxBacklog)
	}
	if got, want := f.MaxBacklog(), down.MaxBacklog; got != want {
		t.Fatalf("fabric MaxBacklog = %v, want the hot channel's %v", got, want)
	}
}

func TestBandwidthScaleOverride(t *testing.T) {
	// Halving a host uplink's bandwidth must double its serialization time;
	// scale 1 must restore the exact baseline delivery time.
	deliveryAt := func(scale float64) sim.Time {
		eng, f, nics := testFabric(t, 2, Config{})
		var at sim.Time
		nics[1].Deliver = func(p *Packet) { at = eng.Now() }
		up := uplinkOf(t, f, nics[0].Host)
		if scale != 0 {
			f.SetBandwidthScale(up, scale)
		}
		nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 4096})
		eng.Run()
		return at
	}
	base, restored := deliveryAt(0), deliveryAt(1)
	if base != restored {
		t.Fatalf("scale 1 delivery %v differs from baseline %v", restored, base)
	}
	slow := deliveryAt(0.5)
	// Serialization on the degraded hop doubles; the other hop and both
	// propagation delays are unchanged.
	bw := 25e9
	wire := sim.Time(float64(4096+64) / bw * 1e9)
	if diff := slow - base; diff < wire-2 || diff > wire+2 {
		t.Fatalf("0.5x scale added %v, want ≈ one extra wire time %v", diff, wire)
	}
}

func TestDropRateOverrideAndRestore(t *testing.T) {
	// SetDropRate(id, 1) takes the channel down: every traversal drops and
	// the reliability counters tick. Clearing the override restores
	// delivery on an otherwise lossless fabric.
	eng, f, nics := testFabric(t, 2, Config{})
	got := 0
	nics[1].Deliver = func(p *Packet) { got++ }
	up := uplinkOf(t, f, nics[0].Host)
	f.SetDropRate(up, 1)
	nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 1024})
	eng.Run()
	if got != 0 || f.TotalDropped != 1 {
		t.Fatalf("downed link delivered %d packets, dropped %d; want 0 and 1", got, f.TotalDropped)
	}
	if s := f.ChannelStats(nics[0].Host, f.Graph().Switches()[0]); s.Drops != 1 {
		t.Fatalf("per-channel Drops = %d, want 1", s.Drops)
	}
	f.SetDropRate(up, -1) // restore the (zero) configured rate
	nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 1024})
	eng.Run()
	if got != 1 {
		t.Fatalf("restored link delivered %d packets, want 1", got)
	}
}

func TestExtraLatencyOverride(t *testing.T) {
	eng, f, nics := testFabric(t, 2, Config{})
	var at sim.Time
	nics[1].Deliver = func(p *Packet) { at = eng.Now() }
	up := uplinkOf(t, f, nics[0].Host)
	nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 1024})
	eng.Run()
	base := at
	f.SetExtraLatency(up, 5*sim.Microsecond)
	start := eng.Now()
	nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 1024})
	eng.Run()
	if got, want := at-start, base+5*sim.Microsecond; got != want {
		t.Fatalf("delayed delivery after %v, want %v", got, want)
	}
	f.ClearOverrides(up)
	start = eng.Now()
	nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 1024})
	eng.Run()
	if got := at - start; got != base {
		t.Fatalf("cleared override delivery after %v, want baseline %v", got, base)
	}
}

func TestBackgroundInjectionOccupiesChannels(t *testing.T) {
	// Background packets must contend for the same serializers as
	// collective traffic (delaying it), count on the background gauges, and
	// never reach a NIC's Deliver callback.
	quietAt := func(bg int) sim.Time {
		eng, f, nics := testFabric(t, 3, Config{})
		var at sim.Time
		delivered := 0
		nics[1].Deliver = func(p *Packet) { at, delivered = eng.Now(), delivered+1 }
		for i := 0; i < bg; i++ {
			// Tenant flow shares host 0's uplink with the measured packet.
			f.InjectBackground(nics[0].Host, nics[2].Host, 4096, uint64(i))
		}
		nics[0].Inject(&Packet{Dst: nics[1].Host, Group: NoGroup, PayloadBytes: 1024})
		eng.Run()
		if delivered != 1 {
			t.Fatalf("measured packet delivered %d times, want 1", delivered)
		}
		if f.BackgroundInjected != uint64(bg) || f.BackgroundDelivered != uint64(bg) {
			t.Fatalf("background counters injected=%d delivered=%d, want %d each",
				f.BackgroundInjected, f.BackgroundDelivered, bg)
		}
		if f.BackgroundBytes != uint64(bg*4096) {
			t.Fatalf("BackgroundBytes = %d, want %d", f.BackgroundBytes, bg*4096)
		}
		return at
	}
	if base, loaded := quietAt(0), quietAt(10); loaded <= base {
		t.Fatalf("10 background packets did not delay delivery (%v vs %v)", loaded, base)
	}
}
