package workload

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
)

func testCluster(t *testing.T, hosts int, seed uint64) *cluster.Cluster {
	t.Helper()
	eng := sim.NewEngine(seed)
	g := topology.Star(hosts)
	f := fabric.New(eng, g, fabric.Config{})
	return cluster.New(f, cluster.Config{})
}

func mustRun(t *testing.T, cl *cluster.Cluster, w Workload) *Report {
	t.Helper()
	rep, err := Run(cl, w)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestComputeChainSerializes checks dependent compute phases execute back
// to back on the job's CPU thread.
func TestComputeChainSerializes(t *testing.T) {
	cl := testCluster(t, 2, 1)
	rep := mustRun(t, cl, Workload{Name: "chain", Jobs: []Job{{
		Name: "j",
		Phases: []Phase{
			{Name: "a", Compute: 100 * sim.Microsecond},
			{Name: "b", After: []string{"a"}, Compute: 50 * sim.Microsecond},
		},
	}}})
	j := rep.Job("j")
	if got, want := j.StepTime(), 150*sim.Microsecond; got != want {
		t.Fatalf("step = %v, want %v", got, want)
	}
	if j.ComputeBusy != 150*sim.Microsecond {
		t.Fatalf("compute busy = %v", j.ComputeBusy)
	}
	if j.CommBusy != 0 || j.OverlapFrac() != 0 {
		t.Fatalf("pure-compute job reported comm: busy=%v overlap=%v", j.CommBusy, j.OverlapFrac())
	}
}

// TestStreamSerializesCollectives checks two ready phases on one comm run
// one after the other, while phases on distinct comms overlap.
func TestStreamSerializesCollectives(t *testing.T) {
	cl := testCluster(t, 4, 1)
	rep := mustRun(t, cl, Workload{Name: "streams", Jobs: []Job{{
		Name:  "j",
		Comms: []Comm{{Name: "s", Algorithm: "ring-allgather"}},
		Phases: []Phase{
			{Name: "a", Comm: "s", Bytes: 64 << 10},
			{Name: "b", Comm: "s", Bytes: 64 << 10},
		},
	}}})
	spans := rep.Job("j").Spans
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[1].Start < spans[0].End {
		t.Fatalf("stream overlap: second starts %v before first ends %v", spans[1].Start, spans[0].End)
	}

	// Same two operations on separate comms on a fresh system: they overlap
	// and finish later per-op (sharing NICs) but the streams start together.
	cl2 := testCluster(t, 4, 1)
	rep2 := mustRun(t, cl2, Workload{Name: "streams2", Jobs: []Job{{
		Name: "j",
		Comms: []Comm{
			{Name: "s1", Algorithm: "ring-allgather"},
			{Name: "s2", Algorithm: "ring-allgather"},
		},
		Phases: []Phase{
			{Name: "a", Comm: "s1", Bytes: 64 << 10},
			{Name: "b", Comm: "s2", Bytes: 64 << 10},
		},
	}}})
	spans2 := rep2.Job("j").Spans
	if spans2[0].Start != spans2[1].Start {
		t.Fatalf("distinct comms should start together, got %v and %v", spans2[0].Start, spans2[1].Start)
	}
	if rep2.Span() >= rep.Span() {
		t.Fatalf("concurrent streams (%v) should beat the serial stream (%v)", rep2.Span(), rep.Span())
	}
}

// TestOverlapHidesCommBehindCompute checks the overlap metric: a collective
// issued alongside a longer compute phase is fully hidden.
func TestOverlapHidesCommBehindCompute(t *testing.T) {
	cl := testCluster(t, 4, 1)
	rep := mustRun(t, cl, Workload{Name: "hide", Jobs: []Job{{
		Name:  "j",
		Comms: []Comm{{Name: "s", Algorithm: "ring-allgather"}},
		Phases: []Phase{
			{Name: "comp", Compute: 10 * sim.Millisecond},
			{Name: "coll", Comm: "s", Bytes: 64 << 10},
		},
	}}})
	j := rep.Job("j")
	if j.StepTime() != 10*sim.Millisecond {
		t.Fatalf("step = %v, want the compute duration", j.StepTime())
	}
	if got := j.OverlapFrac(); got != 1 {
		t.Fatalf("overlap = %v, want 1 (comm fully hidden)", got)
	}
}

// TestConcurrentJobsContend checks two identical jobs on the same hosts
// slow each other down relative to one job alone.
func TestConcurrentJobsContend(t *testing.T) {
	job := func(name string) Job {
		return Job{
			Name:  name,
			Comms: []Comm{{Name: "s", Algorithm: "ring-allgather"}},
			Phases: []Phase{
				{Name: "a", Comm: "s", Bytes: 256 << 10},
			},
		}
	}
	alone := mustRun(t, testCluster(t, 4, 1), Workload{Name: "solo", Jobs: []Job{job("j0")}})
	both := mustRun(t, testCluster(t, 4, 1), Workload{Name: "duo", Jobs: []Job{job("j0"), job("j1")}})
	if both.Job("j0").StepTime() <= alone.Job("j0").StepTime() {
		t.Fatalf("contended job (%v) should be slower than solo (%v)",
			both.Job("j0").StepTime(), alone.Job("j0").StepTime())
	}
}

// TestDeterminism checks the same workload on the same seed is bit-equal.
func TestDeterminism(t *testing.T) {
	run := func() *Report {
		cl := testCluster(t, 16, 3)
		w, err := New("fsdp-inc", Config{Nodes: 16, Layers: 3, ShardBytes: 128 << 10})
		if err != nil {
			t.Fatal(err)
		}
		return mustRun(t, cl, w)
	}
	a, b := run(), run()
	if a.Span() != b.Span() {
		t.Fatalf("span %v vs %v", a.Span(), b.Span())
	}
	sa, sb := a.Jobs[0].Spans, b.Jobs[0].Spans
	if len(sa) != len(sb) {
		t.Fatalf("span counts differ")
	}
	for i := range sa {
		if sa[i].Start != sb[i].Start || sa[i].End != sb[i].End || sa[i].Phase != sb[i].Phase {
			t.Fatalf("span %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

// TestFSDPIncBeatsRing reproduces the paper's application-level claim at
// the workload layer: the {mcast AG, inc RS} pairing beats {ring, ring}.
func TestFSDPIncBeatsRing(t *testing.T) {
	cfg := Config{Nodes: 16, Layers: 4, ShardBytes: 256 << 10}
	step := func(name string) sim.Time {
		w, err := New(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep := mustRun(t, testCluster(t, 16, 7), w)
		return rep.Job("fsdp").StepTime()
	}
	ring, inc := step("fsdp-ring"), step("fsdp-inc")
	if inc >= ring {
		t.Fatalf("inc pair (%v) should beat ring pair (%v)", inc, ring)
	}
}

// TestMultiTenantHostSlices checks the tenant preset lands jobs on
// disjoint host slices and MinHosts sizes the fabric.
func TestMultiTenantHostSlices(t *testing.T) {
	w, err := New("fsdp-tenants", Config{Nodes: 4, Jobs: 2, Layers: 2, ShardBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.MinHosts(); got != 8 {
		t.Fatalf("MinHosts = %d, want 8", got)
	}
	rep := mustRun(t, testCluster(t, 8, 5), w)
	if len(rep.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(rep.Jobs))
	}
	for _, j := range rep.Jobs {
		if j.StepTime() <= 0 {
			t.Fatalf("tenant %s did not run", j.Name)
		}
	}
}

// TestValidationErrors exercises the declaration error paths.
func TestValidationErrors(t *testing.T) {
	cl := testCluster(t, 4, 1)
	cases := []struct {
		name string
		w    Workload
		want string
	}{
		{"no jobs", Workload{Name: "w"}, "no jobs"},
		{"dup job", Workload{Name: "w", Jobs: []Job{
			{Name: "j", Phases: []Phase{{Name: "a", Compute: 1}}},
			{Name: "j", Phases: []Phase{{Name: "a", Compute: 1}}},
		}}, "unique name"},
		{"unknown comm", Workload{Name: "w", Jobs: []Job{
			{Name: "j", Phases: []Phase{{Name: "a", Comm: "nope", Bytes: 1}}},
		}}, "unknown comm"},
		{"unknown dep", Workload{Name: "w", Jobs: []Job{
			{Name: "j", Phases: []Phase{{Name: "a", Compute: 1, After: []string{"ghost"}}}},
		}}, "unknown dependency"},
		{"cycle", Workload{Name: "w", Jobs: []Job{
			{Name: "j", Phases: []Phase{
				{Name: "a", Compute: 1, After: []string{"b"}},
				{Name: "b", Compute: 1, After: []string{"a"}},
			}},
		}}, "cycle"},
		{"both kinds", Workload{Name: "w", Jobs: []Job{
			{Name: "j",
				Comms:  []Comm{{Name: "s", Algorithm: "ring-allgather"}},
				Phases: []Phase{{Name: "a", Compute: 1, Comm: "s", Bytes: 1}}},
		}}, "exactly one"},
		{"bad algorithm", Workload{Name: "w", Jobs: []Job{
			{Name: "j",
				Comms:  []Comm{{Name: "s", Algorithm: "no-such-algo"}},
				Phases: []Phase{{Name: "a", Comm: "s", Bytes: 1}}},
		}}, "unknown algorithm"},
		{"host slice", Workload{Name: "w", Jobs: []Job{
			{Name: "j", HostOffset: 2, HostCount: 8,
				Phases: []Phase{{Name: "a", Compute: 1}}},
		}}, "outside cluster"},
	}
	for _, c := range cases {
		if _, err := Start(cl, c.w); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestUnknownPreset checks New's error lists the registry.
func TestUnknownPreset(t *testing.T) {
	if _, err := New("nope", Config{}); err == nil || !strings.Contains(err.Error(), "fsdp-inc") {
		t.Fatalf("err = %v", err)
	}
}

// TestOnSpanObserver checks the completion hook fires once per phase, at
// the phase's completion time, with the comm's algorithm for collectives
// and nil for compute.
func TestOnSpanObserver(t *testing.T) {
	cl := testCluster(t, 4, 1)
	w := Workload{Name: "obs", Jobs: []Job{{
		Name:  "j",
		Comms: []Comm{{Name: "s", Algorithm: "ring-allgather"}},
		Phases: []Phase{
			{Name: "comp", Compute: 10 * sim.Microsecond},
			{Name: "coll", After: []string{"comp"}, Comm: "s", Bytes: 16 << 10},
		},
	}}}
	type seen struct {
		span   Span
		hadAlg bool
	}
	var calls []seen
	w.OnSpan = func(s Span, alg collective.Algorithm) {
		calls = append(calls, seen{s, alg != nil})
		if alg != nil && alg.Name() != "ring-allgather" {
			t.Errorf("observer got algorithm %q", alg.Name())
		}
	}
	rep := mustRun(t, cl, w)
	if len(calls) != 2 {
		t.Fatalf("observer fired %d times, want 2", len(calls))
	}
	if calls[0].span.Phase != "comp" || calls[0].hadAlg {
		t.Fatalf("first call = %+v, want compute span without algorithm", calls[0])
	}
	if calls[1].span.Phase != "coll" || !calls[1].hadAlg {
		t.Fatalf("second call = %+v, want collective span with algorithm", calls[1])
	}
	if got := rep.Job("j").Spans; got[1].End != calls[1].span.End {
		t.Fatalf("observer span end %v != reported %v", calls[1].span.End, got[1].End)
	}
}
