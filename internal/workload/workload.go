// Package workload is the declarative application layer of the simulation:
// a deterministic DAG of steps — compute phases charged on the cluster's
// host-CPU model, collective phases dispatched through the algorithm
// registry — executed by any number of concurrent jobs on one fabric. It is
// the subsystem behind the paper's headline scenario (§II-A, Appendix B):
// an FSDP training step whose layer-(i+1) Allgather prefetch and layer-i
// gradient Reduce-Scatter overlap both with compute and with each other,
// contending for the same injection bandwidth.
//
// A Workload is data, not code. Each Job names its host subset, declares
// its communicators (Comm: one persistent registry algorithm instance per
// stream, as a framework would pin collectives to a communication stream)
// and its phases. A Phase is either compute (a duration executed on a CPU
// thread of the job's lead host) or a collective (an Op issued on a Comm);
// explicit After edges order phases, and phases sharing a Comm serialize
// FIFO in ready order — exactly how frameworks enqueue collectives on a
// stream. Run executes the DAG to completion and reports step time,
// per-phase spans, and the achieved communication/computation overlap.
//
// Determinism is inherited from the engine: comms are instantiated and
// ready phases issued in declaration order, ties in readiness resolve by
// declaration index, and nothing consumes engine randomness, so the same
// workload on the same seed reproduces bit-identical timings.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/dpa"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Comm declares one communicator of a job: a named serial stream bound to a
// persistent registry algorithm instance. Phases referencing the Comm
// serialize on it; distinct Comms of one job run concurrently and contend
// for the shared per-host NICs and CPUs.
type Comm struct {
	// Name is the stream key phases reference.
	Name string
	// Algorithm is the registry name ("mcast-allgather", ...).
	Algorithm string
	// Options tunes the algorithm. Hosts is filled from the job at start
	// time and must be left nil here.
	Options registry.Options
}

// Phase is one step of the DAG: either compute (Compute > 0) or a
// collective operation on a declared Comm (Comm != "").
type Phase struct {
	// Name identifies the phase within its job (unique, required).
	Name string
	// After lists phase names that must complete before this one starts.
	// Phases sharing a Comm are additionally serialized by the stream.
	After []string
	// Compute is the phase's duration on the job's CPU thread.
	Compute sim.Time
	// Comm names the communicator a collective phase runs on.
	Comm string
	// Op is the collective kind; empty derives it from the Comm's
	// algorithm name ("ring-allgather" -> allgather).
	Op collective.Kind
	// Bytes is the per-rank payload of a collective phase.
	Bytes int
	// Root is the broadcasting rank (broadcast only).
	Root int
}

// Job is one application sharing the fabric: a host subset, its
// communicators, and its phase DAG.
type Job struct {
	// Name identifies the job (unique within the workload, required).
	Name string
	// Hosts pins the job to explicit endpoints. Nil selects
	// HostCount hosts starting at HostOffset from the cluster's host list
	// (HostCount 0 = all remaining), so declarations stay portable across
	// fabrics.
	Hosts []topology.NodeID
	// HostOffset/HostCount select the job's slice of the cluster host list
	// when Hosts is nil.
	HostOffset int
	HostCount  int
	// Comms declares the job's communicators.
	Comms []Comm
	// Phases is the DAG, in declaration order (the deterministic
	// tie-breaker for simultaneous readiness).
	Phases []Phase
}

// Workload is a set of concurrent jobs executed on one fabric.
type Workload struct {
	Name string
	Jobs []Job
	// OnSpan, when set, is invoked at every phase completion — inside the
	// engine run, at the phase's virtual completion time — with the
	// recorded span and, for collective phases, the comm's persistent
	// algorithm instance (nil for compute). It is the hook for
	// per-operation work that cannot wait for the final Report, e.g.
	// verifying each payload before the next operation reuses the buffers.
	// Observers must not mutate engine state.
	OnSpan func(Span, collective.Algorithm)
}

// MinHosts returns the number of cluster hosts the workload's host slices
// require (explicit Hosts lists aside).
func (w Workload) MinHosts() int {
	need := 0
	for _, j := range w.Jobs {
		if j.Hosts != nil {
			continue
		}
		n := j.HostOffset + j.HostCount
		if j.HostCount == 0 {
			n = j.HostOffset + 1
		}
		if n > need {
			need = n
		}
	}
	return need
}

// Span is the recorded execution of one phase.
type Span struct {
	Job   string `json:"job"`
	Phase string `json:"phase"`
	// Comm is the stream of a collective span; empty for compute.
	Comm string `json:"comm,omitempty"`
	// Start is when the phase was issued (compute begins / collective
	// posted); End is its completion time.
	Start sim.Time `json:"start_ns"`
	End   sim.Time `json:"end_ns"`
	// Result is the unified collective outcome; nil for compute spans.
	Result *collective.Result `json:"-"`
}

// Duration returns the span's length.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// JobReport summarizes one job's execution.
type JobReport struct {
	Name string
	// Start/End bound the job's spans.
	Start, End sim.Time
	// CommBusy is the summed duration of collective spans (overlapping
	// streams count twice — it measures communication work, not elapsed
	// time).
	CommBusy sim.Time
	// ComputeBusy is the union of compute intervals (the elapsed time at
	// least one compute phase was running).
	ComputeBusy sim.Time
	// Spans lists every phase execution in completion order.
	Spans []Span
}

// StepTime is the job's end-to-end duration.
func (j *JobReport) StepTime() sim.Time { return j.End - j.Start }

// Exposed is the communication time not hidden behind compute: the part of
// the step that is neither compute nor idle-free — step time minus the
// compute-busy union, clamped at zero.
func (j *JobReport) Exposed() sim.Time {
	e := j.StepTime() - j.ComputeBusy
	if e < 0 {
		return 0
	}
	return e
}

// OverlapFrac is the fraction of communication work hidden behind compute
// or other communication: 1 - Exposed/CommBusy, clamped to [0,1]. Jobs with
// no communication report 0.
func (j *JobReport) OverlapFrac() float64 {
	if j.CommBusy <= 0 {
		return 0
	}
	f := 1 - float64(j.Exposed())/float64(j.CommBusy)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Report is the outcome of one workload run.
type Report struct {
	// Start/End bound every span across jobs.
	Start, End sim.Time
	// Jobs reports per-job results, in declaration order.
	Jobs []JobReport
	// Algorithms exposes the persistent communicator instances, keyed
	// "job/comm", for post-run verification (Verifier) or reuse.
	Algorithms map[string]collective.Algorithm
}

// Job returns the named job's report, or nil.
func (r *Report) Job(name string) *JobReport {
	for i := range r.Jobs {
		if r.Jobs[i].Name == name {
			return &r.Jobs[i]
		}
	}
	return nil
}

// Span is the elapsed virtual time across all jobs.
func (r *Report) Span() sim.Time { return r.End - r.Start }

// --- execution engine ------------------------------------------------------------

// phaseState tracks one phase through the run.
type phaseState struct {
	job     *jobState
	idx     int // declaration index within the job
	def     Phase
	waiting int // unmet dependencies
	issued  bool
	span    Span
	done    bool
	succ    []*phaseState // phases whose After names this one
}

// commState is one serial stream: its algorithm instance and FIFO queue.
type commState struct {
	name  string
	alg   collective.Algorithm
	queue []*phaseState
	busy  bool
}

type jobState struct {
	def    Job
	hosts  []topology.NodeID
	comms  map[string]*commState
	order  []*commState  // declaration order, for deterministic teardown
	states []*phaseState // phase states, declaration order
	thread *dpa.Thread   // lazily allocated compute thread (lead host CPU)
	left   int           // phases not yet done
	rep    JobReport
	// computeIv accumulates compute intervals for the busy-union metric.
	computeIv []Span
}

// Pending is a started workload: the caller drives the engine (directly or
// through scenario-composed slices) and finalizes with Report.
type Pending struct {
	cl   *cluster.Cluster
	eng  *sim.Engine
	w    Workload
	jobs []*jobState
	left int
	err  error
}

// Start validates the workload, instantiates every communicator (in
// declaration order), and issues the initially-ready phases. The caller
// drives the engine to completion and then calls Report.
func Start(cl *cluster.Cluster, w Workload) (*Pending, error) {
	if len(w.Jobs) == 0 {
		return nil, fmt.Errorf("workload: %q has no jobs", w.Name)
	}
	// Workload step/dependency dispatch shares the cluster's engine, so it
	// inherits the same primary-shard requirement.
	sim.AssertShardable(cl.Fabric().Engine(), "workload")
	p := &Pending{cl: cl, eng: cl.Fabric().Engine(), w: w}
	all := cl.Fabric().Graph().Hosts()
	seenJobs := map[string]bool{}
	for ji := range w.Jobs {
		j := &w.Jobs[ji]
		if j.Name == "" || seenJobs[j.Name] {
			return nil, fmt.Errorf("workload: job %d needs a unique name (got %q)", ji, j.Name)
		}
		seenJobs[j.Name] = true
		hosts, err := resolveHosts(j, all)
		if err != nil {
			return nil, fmt.Errorf("workload: job %s: %w", j.Name, err)
		}
		js := &jobState{def: *j, hosts: hosts, comms: map[string]*commState{}}
		js.rep.Name = j.Name
		for _, c := range j.Comms {
			if c.Name == "" {
				return nil, fmt.Errorf("workload: job %s: comm needs a name", j.Name)
			}
			if _, dup := js.comms[c.Name]; dup {
				return nil, fmt.Errorf("workload: job %s: duplicate comm %q", j.Name, c.Name)
			}
			opts := c.Options
			if opts.Hosts != nil {
				return nil, fmt.Errorf("workload: job %s comm %s: set hosts on the job, not the comm", j.Name, c.Name)
			}
			opts.Hosts = hosts
			alg, err := registry.New(cl, c.Algorithm, opts)
			if err != nil {
				return nil, fmt.Errorf("workload: job %s comm %s: %w", j.Name, c.Name, err)
			}
			cs := &commState{name: c.Name, alg: alg}
			js.comms[c.Name] = cs
			js.order = append(js.order, cs)
		}
		if err := p.buildPhases(js); err != nil {
			return nil, err
		}
		p.jobs = append(p.jobs, js)
		p.left += len(js.def.Phases)
	}
	if p.left == 0 {
		return nil, fmt.Errorf("workload: %q has no phases", w.Name)
	}
	// Issue every initially-ready phase, jobs and phases in declaration
	// order — the deterministic t=0 schedule.
	for _, js := range p.jobs {
		for _, ph := range js.states {
			if ph.waiting == 0 {
				p.ready(ph)
			}
		}
	}
	return p, nil
}

// buildPhases validates the job's DAG and wires dependency edges.
func (p *Pending) buildPhases(js *jobState) error {
	j := &js.def
	byName := map[string]*phaseState{}
	js.states = make([]*phaseState, len(j.Phases))
	for i, def := range j.Phases {
		if def.Name == "" {
			return fmt.Errorf("workload: job %s: phase %d needs a name", j.Name, i)
		}
		if byName[def.Name] != nil {
			return fmt.Errorf("workload: job %s: duplicate phase %q", j.Name, def.Name)
		}
		isCompute, isColl := def.Compute > 0, def.Comm != ""
		if isCompute == isColl {
			return fmt.Errorf("workload: job %s phase %s: exactly one of Compute or Comm is required", j.Name, def.Name)
		}
		if isColl {
			cs := js.comms[def.Comm]
			if cs == nil {
				return fmt.Errorf("workload: job %s phase %s: unknown comm %q", j.Name, def.Name, def.Comm)
			}
			if def.Bytes <= 0 {
				return fmt.Errorf("workload: job %s phase %s: collective needs positive Bytes", j.Name, def.Name)
			}
			if def.Op == "" {
				kind, err := collective.KindOfAlgorithm(cs.alg.Name())
				if err != nil {
					return fmt.Errorf("workload: job %s phase %s: %w (set Phase.Op)", j.Name, def.Name, err)
				}
				def.Op = kind
			}
		}
		ps := &phaseState{job: js, idx: i, def: def}
		js.states[i] = ps
		byName[def.Name] = ps
	}
	for _, ps := range js.states {
		for _, dep := range ps.def.After {
			d := byName[dep]
			if d == nil {
				return fmt.Errorf("workload: job %s phase %s: unknown dependency %q", j.Name, ps.def.Name, dep)
			}
			d.succ = append(d.succ, ps)
			ps.waiting++
		}
	}
	// Cycle check: Kahn's count over the dependency edges.
	indeg := make([]int, len(js.states))
	var q []*phaseState
	for i, ps := range js.states {
		indeg[i] = ps.waiting
		if indeg[i] == 0 {
			q = append(q, ps)
		}
	}
	seen := 0
	for len(q) > 0 {
		ps := q[0]
		q = q[1:]
		seen++
		for _, s := range ps.succ {
			indeg[s.idx]--
			if indeg[s.idx] == 0 {
				q = append(q, s)
			}
		}
	}
	if seen != len(js.states) {
		return fmt.Errorf("workload: job %s: dependency cycle among phases", j.Name)
	}
	js.left = len(js.states)
	return nil
}

// resolveHosts maps a job onto concrete endpoints.
func resolveHosts(j *Job, all []topology.NodeID) ([]topology.NodeID, error) {
	if j.Hosts != nil {
		if len(j.Hosts) == 0 {
			return nil, fmt.Errorf("empty host list")
		}
		return j.Hosts, nil
	}
	if j.HostOffset < 0 || j.HostOffset >= len(all) {
		return nil, fmt.Errorf("host offset %d outside cluster (%d hosts)", j.HostOffset, len(all))
	}
	rest := all[j.HostOffset:]
	if j.HostCount == 0 {
		return rest, nil
	}
	if j.HostCount > len(rest) {
		return nil, fmt.Errorf("host slice [%d,%d) outside cluster (%d hosts)",
			j.HostOffset, j.HostOffset+j.HostCount, len(all))
	}
	return rest[:j.HostCount], nil
}

// ready dispatches a phase whose dependencies are met.
func (p *Pending) ready(ps *phaseState) {
	if p.err != nil || ps.issued {
		return
	}
	if ps.def.Compute > 0 {
		p.startCompute(ps)
		return
	}
	cs := ps.job.comms[ps.def.Comm]
	cs.queue = append(cs.queue, ps)
	p.kick(cs)
}

// startCompute charges the phase's duration on the job's CPU thread: jobs
// co-located on one core (cluster capacity permitting, each job gets its
// own) contend through the chip's issue serialization, so oversubscribed
// tenants slow each other down exactly as the dpa model dictates.
func (p *Pending) startCompute(ps *phaseState) {
	ps.issued = true
	js := ps.job
	if js.thread == nil {
		js.thread = p.cl.Node(js.hosts[0]).CPU.AllocThreads(1)[0]
	}
	now := p.eng.Now()
	ps.span = Span{Job: js.def.Name, Phase: ps.def.Name, Start: now}
	cycles := float64(ps.def.Compute) * js.thread.Chip().Freq / 1e9
	done := js.thread.RunCycles(cycles, cycles, now)
	p.eng.At(done, func() { p.phaseDone(ps, nil) })
}

// kick issues the next queued collective on an idle stream.
func (p *Pending) kick(cs *commState) {
	if p.err != nil || cs.busy || len(cs.queue) == 0 {
		return
	}
	ps := cs.queue[0]
	cs.queue = cs.queue[1:]
	cs.busy = true
	ps.issued = true
	js := ps.job
	ps.span = Span{Job: js.def.Name, Phase: ps.def.Name, Comm: cs.name, Start: p.eng.Now()}
	op := collective.Op{Kind: ps.def.Op, Bytes: ps.def.Bytes, Root: ps.def.Root}
	starter, ok := cs.alg.(collective.Starter)
	if !ok {
		p.fail(fmt.Errorf("workload: job %s comm %s: %s cannot run non-blocking", js.def.Name, cs.name, cs.alg.Name()))
		return
	}
	if err := starter.Start(op, func(res *collective.Result) {
		cs.busy = false
		p.phaseDone(ps, res)
		p.kick(cs)
	}); err != nil {
		p.fail(fmt.Errorf("workload: job %s phase %s: %w", js.def.Name, ps.def.Name, err))
	}
}

// phaseDone records the span and releases successors.
func (p *Pending) phaseDone(ps *phaseState, res *collective.Result) {
	if p.err != nil || ps.done {
		return
	}
	ps.done = true
	ps.span.End = p.eng.Now()
	ps.span.Result = res
	js := ps.job
	js.rep.Spans = append(js.rep.Spans, ps.span)
	var alg collective.Algorithm
	if ps.def.Comm != "" {
		js.rep.CommBusy += ps.span.Duration()
		alg = js.comms[ps.def.Comm].alg
	} else {
		js.computeIv = append(js.computeIv, ps.span)
	}
	if p.w.OnSpan != nil {
		p.w.OnSpan(ps.span, alg)
	}
	js.left--
	p.left--
	for _, s := range ps.succ {
		s.waiting--
		if s.waiting == 0 {
			p.ready(s)
		}
	}
}

// fail records the first error and stops issuing work.
func (p *Pending) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// Done reports whether every phase has completed.
func (p *Pending) Done() bool { return p.left == 0 }

// Err returns the first issue error, if any.
func (p *Pending) Err() error { return p.err }

// Report finalizes the run. It errors when phases never completed (a
// deadlocked or cut-short run) or when issuing failed.
func (p *Pending) Report() (*Report, error) {
	if p.err != nil {
		return nil, p.err
	}
	if p.left != 0 {
		return nil, fmt.Errorf("workload: %q: %d phases never completed", p.w.Name, p.left)
	}
	rep := &Report{Algorithms: map[string]collective.Algorithm{}}
	first := true
	for _, js := range p.jobs {
		finalizeJob(js)
		rep.Jobs = append(rep.Jobs, js.rep)
		for _, cs := range js.order {
			rep.Algorithms[js.def.Name+"/"+cs.name] = cs.alg
		}
		if first || js.rep.Start < rep.Start {
			rep.Start = js.rep.Start
		}
		if first || js.rep.End > rep.End {
			rep.End = js.rep.End
		}
		first = false
	}
	return rep, nil
}

// finalizeJob computes the job's bounds and the compute-busy union.
func finalizeJob(js *jobState) {
	r := &js.rep
	for i, s := range r.Spans {
		if i == 0 || s.Start < r.Start {
			r.Start = s.Start
		}
		if i == 0 || s.End > r.End {
			r.End = s.End
		}
	}
	// Union of compute intervals: sort by start, merge overlaps.
	iv := js.computeIv
	sort.Slice(iv, func(a, b int) bool { return iv[a].Start < iv[b].Start })
	var busy sim.Time
	var curEnd sim.Time
	started := false
	var curStart sim.Time
	for _, s := range iv {
		if !started || s.Start > curEnd {
			if started {
				busy += curEnd - curStart
			}
			curStart, curEnd = s.Start, s.End
			started = true
		} else if s.End > curEnd {
			curEnd = s.End
		}
	}
	if started {
		busy += curEnd - curStart
	}
	r.ComputeBusy = busy
}

// Run starts the workload, drives the engine until it drains, and returns
// the finalized report — the blocking entry point for quiet fabrics. (Under
// an installed scenario use Start and drive the engine in bounded slices;
// persistent injectors keep the queue alive forever.)
func Run(cl *cluster.Cluster, w Workload) (*Report, error) {
	p, err := Start(cl, w)
	if err != nil {
		return nil, err
	}
	cl.Fabric().Engine().Run()
	return p.Report()
}
