// Preset workloads: the named DAG declarations behind repro.Workloads(),
// the harness training kernel, and cmd/trainbench. Each preset is a pure
// function of Config — expanding one never touches an engine — so the same
// name and config always declare the identical DAG.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/verbs"
)

// Config parameterizes a preset workload.
type Config struct {
	// Nodes is the host count per job. Zero defaults to 16.
	Nodes int
	// Layers is the model depth of the FSDP presets. Zero defaults to 6.
	Layers int
	// ShardBytes is the per-rank parameter shard per layer (FSDP) or the
	// segment size (replication). Zero defaults to 512 KiB.
	ShardBytes int
	// Compute is the forward+backward time per layer. Zero defaults to
	// 150 µs.
	Compute sim.Time
	// Jobs is the concurrent-job count of the multi-job presets. Zero
	// defaults to 2.
	Jobs int
	// Segments is the replication-stream length. Zero defaults to 8.
	Segments int
	// VerifyData backs collective buffers with real bytes so the result
	// can be verified (replication preset).
	VerifyData bool
	// Tracer, when set, records protocol phase transitions of the
	// multicast comms (the Figure 9 execution-flow view).
	Tracer *trace.Recorder
	// Metrics, when set, is threaded into each comm's core config so the
	// protocol's phase counters accumulate there. Nil adds no cost.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 16
	}
	if c.Layers == 0 {
		c.Layers = 6
	}
	if c.ShardBytes == 0 {
		c.ShardBytes = 512 << 10
	}
	if c.Compute == 0 {
		c.Compute = 150 * sim.Microsecond
	}
	if c.Jobs == 0 {
		c.Jobs = 2
	}
	if c.Segments == 0 {
		c.Segments = 8
	}
	return c
}

// presets maps workload names to their builders.
var presets = map[string]func(Config) Workload{
	"fsdp-ring": func(c Config) Workload {
		return Workload{Name: "fsdp-ring", Jobs: []Job{FSDPJob("fsdp", "ring", c, 0)}}
	},
	"fsdp-inc": func(c Config) Workload {
		return Workload{Name: "fsdp-inc", Jobs: []Job{FSDPJob("fsdp", "inc", c, 0)}}
	},
	"fsdp-tenants": multiTenant,
	"dfs-replica":  dfsReplica,
}

// Names returns every preset workload name, sorted.
func Names() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New builds the named preset for the given configuration.
func New(name string, cfg Config) (Workload, error) {
	b, ok := presets[name]
	if !ok {
		return Workload{}, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	return b(cfg.withDefaults()), nil
}

// FSDPJob declares one fully-sharded-data-parallel training step (§II-A)
// as a DAG: the Allgather for layer l+1's sharded weights prefetches behind
// layer l's compute (serialized on the "ag" stream), each layer's compute
// waits on its weights and the previous layer, and gradient Reduce-Scatters
// trail the compute on the "rs" stream — Allgather, Reduce-Scatter, and
// compute all overlapping and contending for injection bandwidth. pair
// selects the collective pairing: "ring" ({ring AG, ring RS}, the
// conventional UCC/NCCL stack) or "inc" ({multicast AG, in-network RS}, the
// paper's receive-path/send-path split with every chain active, §IV-A).
func FSDPJob(name, pair string, cfg Config, hostOffset int) Job {
	cfg = cfg.withDefaults()
	var ag, rs Comm
	switch pair {
	case "ring":
		ag = Comm{Name: "ag", Algorithm: "ring-allgather"}
		rs = Comm{Name: "rs", Algorithm: "ring-reduce-scatter"}
	case "inc":
		// Multicast Allgather on the receive path with every chain active
		// (the send path belongs to the Reduce-Scatter stream), in-network
		// Reduce-Scatter on the send path.
		ag = Comm{Name: "ag", Algorithm: "mcast-allgather", Options: registry.Options{
			Core: core.Config{Transport: verbs.UD, Subgroups: 4, Chains: cfg.Nodes, Tracer: cfg.Tracer, Metrics: cfg.Metrics},
		}}
		rs = Comm{Name: "rs", Algorithm: "inc-reduce-scatter"}
	default:
		panic(fmt.Sprintf("workload: unknown FSDP pair %q (ring or inc)", pair))
	}
	j := Job{Name: name, HostOffset: hostOffset, HostCount: cfg.Nodes, Comms: []Comm{ag, rs}}
	for l := 0; l < cfg.Layers; l++ {
		agName := fmt.Sprintf("ag%d", l)
		compName := fmt.Sprintf("compute%d", l)
		compDeps := []string{agName}
		if l > 0 {
			compDeps = append(compDeps, fmt.Sprintf("compute%d", l-1))
		}
		j.Phases = append(j.Phases,
			// Weight prefetches serialize on the "ag" stream in layer order.
			Phase{Name: agName, Comm: "ag", Bytes: cfg.ShardBytes},
			Phase{Name: compName, After: compDeps, Compute: cfg.Compute},
			// Gradients reduce-scatter behind later layers' compute.
			Phase{Name: fmt.Sprintf("rs%d", l), After: []string{compName}, Comm: "rs", Bytes: cfg.ShardBytes},
		)
	}
	return j
}

// multiTenant declares Jobs concurrent inc-pair FSDP trainers on disjoint
// host slices of one fabric — the multi-job tenancy axis of the roadmap.
func multiTenant(c Config) Workload {
	w := Workload{Name: "fsdp-tenants"}
	for i := 0; i < c.Jobs; i++ {
		w.Jobs = append(w.Jobs, FSDPJob(fmt.Sprintf("tenant%d", i), "inc", c, i*c.Nodes))
	}
	return w
}

// dfsReplica declares the §VII storage-replication stream: Segments
// broadcasts of ShardBytes each, serialized on one multicast comm (the
// replication pipeline of the DFS example). VerifyData enables end-to-end
// payload checks through the Report's algorithm handle.
func dfsReplica(c Config) Workload {
	j := Job{
		Name:      "replicate",
		HostCount: c.Nodes,
		Comms: []Comm{{Name: "bcast", Algorithm: "mcast-broadcast", Options: registry.Options{
			Core: core.Config{
				Transport:   verbs.UD,
				Subgroups:   2,
				VerifyData:  c.VerifyData,
				CutoffAlpha: 200 * sim.Microsecond,
				Tracer:      c.Tracer,
				Metrics:     c.Metrics,
			},
		}}},
	}
	for s := 0; s < c.Segments; s++ {
		j.Phases = append(j.Phases, Phase{
			Name: fmt.Sprintf("seg%d", s), Comm: "bcast", Bytes: c.ShardBytes,
		})
	}
	return Workload{Name: "dfs-replica", Jobs: []Job{j}}
}
