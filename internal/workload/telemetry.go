package workload

import (
	"repro/internal/telemetry"
)

// ExportTelemetry renders the report into reg: one span per recorded phase
// execution on a per-job track, a phase counter per job, and the job's
// overlap fraction as a gauge point at its end time. Jobs are walked in
// declaration order and spans in completion order, so the export is
// deterministic. A nil registry is a no-op.
func (r *Report) ExportTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for i := range r.Jobs {
		j := &r.Jobs[i]
		lbl := "job=" + j.Name
		for _, sp := range j.Spans {
			name := sp.Phase
			if sp.Comm != "" {
				name += "/" + sp.Comm
			}
			reg.Span("workload/"+j.Name, name, sp.Start, sp.End)
		}
		reg.Counter("workload", "phases_total", lbl, telemetry.Stable).Add(uint64(len(j.Spans)))
		reg.Gauge("workload", "overlap_frac", lbl, telemetry.Stable).Sample(j.End, j.OverlapFrac())
	}
}
