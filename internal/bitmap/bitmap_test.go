package bitmap

import (
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	b := New(100)
	if b.Len() != 100 || b.Count() != 0 || b.Remaining() != 100 || b.Full() {
		t.Fatalf("fresh bitmap state wrong: %v", b)
	}
}

func TestNewZeroLength(t *testing.T) {
	b := New(0)
	if !b.Full() {
		t.Fatal("zero-length bitmap should report Full")
	}
	if got := b.Missing(nil); len(got) != 0 {
		t.Fatalf("Missing on empty bitmap = %v", got)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetAndGet(t *testing.T) {
	b := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		if !b.Set(i) {
			t.Fatalf("Set(%d) reported duplicate on first set", i)
		}
		if !b.Get(i) {
			t.Fatalf("bit %d not readable after Set", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
}

func TestDuplicateSet(t *testing.T) {
	b := New(10)
	b.Set(3)
	if b.Set(3) {
		t.Fatal("second Set(3) reported newly-set")
	}
	if b.Count() != 1 {
		t.Fatalf("duplicate Set corrupted count: %d", b.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for _, i := range []int{-1, 10, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) on len-10 bitmap did not panic", i)
				}
			}()
			New(10).Set(i)
		}()
	}
}

func TestFull(t *testing.T) {
	b := New(65)
	for i := 0; i < 65; i++ {
		if b.Full() {
			t.Fatalf("Full before all bits set (at %d)", i)
		}
		b.Set(i)
	}
	if !b.Full() {
		t.Fatal("not Full after all bits set")
	}
}

func TestClear(t *testing.T) {
	b := New(100)
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	b.Clear()
	if b.Count() != 0 || b.Full() {
		t.Fatalf("Clear left state: count=%d", b.Count())
	}
	for i := 0; i < 100; i++ {
		if b.Get(i) {
			t.Fatalf("bit %d survived Clear", i)
		}
	}
}

func TestMissing(t *testing.T) {
	b := New(10)
	for _, i := range []int{0, 1, 3, 4, 5, 7, 8, 9} {
		b.Set(i)
	}
	got := b.Missing(nil)
	if len(got) != 2 || got[0] != 2 || got[1] != 6 {
		t.Fatalf("Missing = %v, want [2 6]", got)
	}
}

func TestMissingLastPartialWord(t *testing.T) {
	// n not a multiple of 64: bits beyond n must never be reported.
	b := New(70)
	for i := 0; i < 70; i++ {
		b.Set(i)
	}
	if got := b.Missing(nil); len(got) != 0 {
		t.Fatalf("full bitmap reported missing %v", got)
	}
}

func TestMissingAppends(t *testing.T) {
	b := New(4)
	b.Set(1)
	dst := []int{99}
	got := b.Missing(dst)
	want := []int{99, 0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Missing = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Missing = %v, want %v", got, want)
		}
	}
}

func TestMissingRanges(t *testing.T) {
	b := New(12)
	for _, i := range []int{0, 1, 5, 6, 7, 11} {
		b.Set(i)
	}
	got := b.MissingRanges(nil)
	want := [][2]int{{2, 5}, {8, 11}}
	if len(got) != len(want) {
		t.Fatalf("MissingRanges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MissingRanges = %v, want %v", got, want)
		}
	}
}

func TestMissingRangesTrailingGap(t *testing.T) {
	b := New(8)
	for i := 0; i < 5; i++ {
		b.Set(i)
	}
	got := b.MissingRanges(nil)
	if len(got) != 1 || got[0] != [2]int{5, 8} {
		t.Fatalf("MissingRanges = %v, want [[5 8]]", got)
	}
}

func TestMissingRangesAllMissing(t *testing.T) {
	b := New(5)
	got := b.MissingRanges(nil)
	if len(got) != 1 || got[0] != [2]int{0, 5} {
		t.Fatalf("MissingRanges = %v, want [[0 5]]", got)
	}
}

func TestSizeBytes(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 8}, {64, 8}, {65, 16}, {4096, 512},
	}
	for _, c := range cases {
		if got := New(c.n).SizeBytes(); got != c.want {
			t.Errorf("SizeBytes(New(%d)) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	b := New(8)
	b.Set(0)
	if s := b.String(); s != "bitmap{1/8}" {
		t.Fatalf("String = %q", s)
	}
}

// Property: Count always equals the number of distinct indices set, and
// Missing returns exactly the complement.
func TestPropertySetMissingComplement(t *testing.T) {
	f := func(idx []uint16, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		b := New(n)
		distinct := make(map[int]bool)
		for _, v := range idx {
			i := int(v) % n
			newly := b.Set(i)
			if newly == distinct[i] {
				return false // Set's return value disagreed with history
			}
			distinct[i] = true
		}
		if b.Count() != len(distinct) {
			return false
		}
		miss := b.Missing(nil)
		if len(miss)+b.Count() != n {
			return false
		}
		for _, m := range miss {
			if distinct[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: MissingRanges covers exactly the Missing set, with no overlaps.
func TestPropertyMissingRangesConsistent(t *testing.T) {
	f := func(idx []uint16, nRaw uint16) bool {
		n := int(nRaw%300) + 1
		b := New(n)
		for _, v := range idx {
			b.Set(int(v) % n)
		}
		var fromRanges []int
		prevEnd := -1
		for _, r := range b.MissingRanges(nil) {
			if r[0] >= r[1] || r[0] <= prevEnd {
				return false // empty, unsorted, or overlapping range
			}
			prevEnd = r[1] - 1
			for i := r[0]; i < r[1]; i++ {
				fromRanges = append(fromRanges, i)
			}
		}
		miss := b.Missing(nil)
		if len(miss) != len(fromRanges) {
			return false
		}
		for i := range miss {
			if miss[i] != fromRanges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSet(b *testing.B) {
	bm := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bm.Set(i & (1<<20 - 1))
		if bm.Full() {
			bm.Clear()
		}
	}
}

func BenchmarkMissingSparse(b *testing.B) {
	bm := New(1 << 16)
	for i := 0; i < 1<<16; i++ {
		if i%1000 != 0 {
			bm.Set(i)
		}
	}
	buf := make([]int, 0, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = bm.Missing(buf[:0])
	}
}
