// Package bitmap implements the receive-buffer reliability bitmap from
// §III-C of the paper.
//
// The bitmap is the only protocol state that grows with the receive buffer:
// one bit per MTU-sized chunk, indexed by the packet sequence number (PSN)
// carried in the CQE immediate data. The protocol uses it to (a) detect
// duplicate deliveries, (b) enumerate the missing chunks that the slow-path
// fetch layer must recover, and (c) decide completion.
//
// The implementation is word-addressed so that a DPA worker's "set bit"
// step is a single load-modify-store, matching the cost model used by the
// internal/dpa package.
package bitmap

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Bitmap tracks received chunks. The zero value is an empty bitmap of zero
// length; construct sized bitmaps with New.
type Bitmap struct {
	words []uint64
	n     int // number of valid bits
	set   int // population count, maintained incrementally
}

// New returns a bitmap tracking n chunks, all initially unset.
func New(n int) *Bitmap {
	if n < 0 {
		panic("bitmap: negative size")
	}
	return &Bitmap{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of tracked chunks.
func (b *Bitmap) Len() int { return b.n }

// Count returns the number of set bits.
func (b *Bitmap) Count() int { return b.set }

// Remaining returns the number of unset bits.
func (b *Bitmap) Remaining() int { return b.n - b.set }

// Full reports whether every bit is set.
func (b *Bitmap) Full() bool { return b.set == b.n }

// Set marks chunk i as received and reports whether the bit was newly set
// (false means a duplicate delivery). It panics on out-of-range PSNs:
// a PSN beyond the buffer length indicates memory corruption in a real
// implementation, and we want the simulation to fail loudly.
func (b *Bitmap) Set(i int) bool {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitmap: PSN %d out of range [0,%d)", i, b.n))
	}
	w, m := i/wordBits, uint64(1)<<(i%wordBits)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.set++
	return true
}

// Get reports whether chunk i has been received.
func (b *Bitmap) Get(i int) bool {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitmap: PSN %d out of range [0,%d)", i, b.n))
	}
	return b.words[i/wordBits]&(uint64(1)<<(i%wordBits)) != 0
}

// Clear resets every bit. The backing storage is reused, matching the
// per-iteration reset a real progress engine performs between collectives.
func (b *Bitmap) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.set = 0
}

// Missing appends the indices of all unset bits to dst and returns the
// extended slice. It scans word-at-a-time, skipping full words, which is
// how the recovery phase scans the bitmap cheaply after the cutoff timer
// fires (§III-C "Fetch layer").
func (b *Bitmap) Missing(dst []int) []int {
	for wi, w := range b.words {
		if w == ^uint64(0) {
			continue
		}
		base := wi * wordBits
		miss := ^w
		// Mask out bits beyond n in the last word.
		if base+wordBits > b.n {
			miss &= (uint64(1) << (b.n - base)) - 1
		}
		for miss != 0 {
			i := bits.TrailingZeros64(miss)
			dst = append(dst, base+i)
			miss &= miss - 1
		}
	}
	return dst
}

// MissingRanges appends [start, end) ranges of consecutive unset bits to
// dst. The fetch layer coalesces adjacent missing chunks into a single
// RDMA Read per range.
func (b *Bitmap) MissingRanges(dst [][2]int) [][2]int {
	start := -1
	for i := 0; i < b.n; i++ {
		if !b.Get(i) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			dst = append(dst, [2]int{start, i})
			start = -1
		}
	}
	if start >= 0 {
		dst = append(dst, [2]int{start, b.n})
	}
	return dst
}

// SizeBytes returns the storage footprint of the bitmap in bytes. Figure 7
// of the paper models this value against the DPA LLC capacity.
func (b *Bitmap) SizeBytes() int { return len(b.words) * 8 }

// String renders the bitmap compactly for debugging, e.g. "bitmap{5/8}".
func (b *Bitmap) String() string {
	return fmt.Sprintf("bitmap{%d/%d}", b.set, b.n)
}
