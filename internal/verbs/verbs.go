// Package verbs models the InfiniBand Verbs transport layer on top of the
// simulated fabric: queue pairs with the three service types the paper
// analyzes (§II-B) — Unreliable Datagram (UD, multicast-capable, MTU-sized
// datagrams), Unreliable Connection (UC, arbitrary-length RDMA Writes with
// immediate, message dropped if any packet is lost, plus the paper's
// proposed UC-multicast extension), and Reliable Connection (RC, hardware
// reliability, one-sided Read/Write used by the slow-path fetch ring) —
// along with completion queues whose entries carry 32-bit immediate data
// (the PSN channel), memory regions, receive queues with RNR-drop
// semantics, and a non-blocking DMA engine for staging copies.
//
// Memory regions may carry real bytes (Data != nil), in which case all
// transfers move actual data and tests can verify buffer contents, or they
// may be metadata-only for large-scale performance runs where allocating
// hundreds of gigabytes of simulated buffers would be wasteful.
package verbs

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Transport selects the QP service type.
type Transport uint8

const (
	// UD is the Unreliable Datagram transport: connectionless two-sided
	// MTU-sized datagrams, the only transport with standardized multicast.
	UD Transport = iota
	// UC is the Unreliable Connection transport: arbitrary-length RDMA
	// Writes; a message is discarded if any of its packets is lost.
	UC
	// RC is the Reliable Connection transport: hardware retransmission,
	// one-sided Read and Write.
	RC
)

func (t Transport) String() string {
	switch t {
	case UD:
		return "UD"
	case UC:
		return "UC"
	case RC:
		return "RC"
	}
	return "?"
}

// QPN is a queue pair number, unique per host.
type QPN uint32

// Addr names a remote QP endpoint or a multicast group.
type Addr struct {
	Host  topology.NodeID
	QPN   QPN
	Group fabric.GroupID // != NoGroup means multicast destination
}

// IsMulticast reports whether the address targets a multicast group.
func (a Addr) IsMulticast() bool { return a.Group != fabric.NoGroup }

// Unicast builds a unicast address.
func Unicast(host topology.NodeID, qpn QPN) Addr {
	return Addr{Host: host, QPN: qpn, Group: fabric.NoGroup}
}

// Multicast builds a multicast address.
func Multicast(g fabric.GroupID) Addr { return Addr{Group: g} }

// Opcode identifies the kind of completed work in a CQE.
type Opcode uint8

const (
	// OpRecv completes a two-sided receive (UD datagram or RC send).
	OpRecv Opcode = iota
	// OpRecvWriteImm completes a remote RDMA Write-with-immediate (UC/RC):
	// the data is already in the target MR, the immediate is in the CQE.
	OpRecvWriteImm
	// OpSend completes a local send/write request (signaled only).
	OpSend
	// OpRead completes a local RDMA Read (data has landed in the local MR).
	OpRead
	// OpErr reports a terminal transport error (RC retry exhaustion).
	OpErr
)

func (o Opcode) String() string {
	switch o {
	case OpRecv:
		return "recv"
	case OpRecvWriteImm:
		return "recv-write-imm"
	case OpSend:
		return "send"
	case OpRead:
		return "read"
	case OpErr:
		return "err"
	}
	return "?"
}

// CQE is a completion queue entry.
type CQE struct {
	Op      Opcode
	QPN     QPN    // local QP the completion belongs to
	WrID    uint64 // work-request ID supplied at post time (local ops + recv)
	Imm     uint32 // immediate data (PSN channel for the protocol)
	HasImm  bool
	Bytes   int             // payload bytes transferred
	SrcHost topology.NodeID // peer host (receives)
	SrcQPN  QPN             // peer QP (receives)
}

// CQ is a completion queue. Entries are appended in completion order and
// drained by the progress engine (host worker or DPA thread model).
type CQ struct {
	entries []CQE
	// Armed, when set, fires once on the next completion and is then
	// cleared — the event-driven activation model of DOCA FlexIO (§II-C).
	Armed func()
	// Produced counts all CQEs ever pushed, for rate measurements.
	Produced uint64
}

// Push appends a completion. Protocol code never calls this directly.
func (cq *CQ) Push(e CQE) {
	cq.entries = append(cq.entries, e)
	cq.Produced++
	if cq.Armed != nil {
		fn := cq.Armed
		cq.Armed = nil
		fn()
	}
}

// Poll removes and returns the oldest completion.
func (cq *CQ) Poll() (CQE, bool) {
	if len(cq.entries) == 0 {
		return CQE{}, false
	}
	e := cq.entries[0]
	cq.entries = cq.entries[1:]
	return e, true
}

// Len returns the number of completions waiting.
func (cq *CQ) Len() int { return len(cq.entries) }

// MR is a registered memory region. If Data is non-nil its length must be
// Size and transfers copy real bytes; otherwise only sizes/offsets flow.
type MR struct {
	Key  uint32
	Size int
	Data []byte
}

// write stores incoming bytes at off. Bounds are always enforced — a PSN
// pointing outside the buffer must fail loudly, that is the corruption the
// paper's staging design exists to prevent.
func (mr *MR) write(off int, data []byte, n int) {
	if off < 0 || off+n > mr.Size {
		panic(fmt.Sprintf("verbs: write [%d,%d) outside MR of size %d", off, off+n, mr.Size))
	}
	if mr.Data != nil && data != nil {
		copy(mr.Data[off:off+n], data[:n])
	}
}

// read returns n bytes at off (nil in metadata-only mode).
func (mr *MR) read(off, n int) []byte {
	if off < 0 || off+n > mr.Size {
		panic(fmt.Sprintf("verbs: read [%d,%d) outside MR of size %d", off, off+n, mr.Size))
	}
	if mr.Data == nil {
		return nil
	}
	return mr.Data[off : off+n]
}

// recvWQE is one posted receive.
type recvWQE struct {
	wrID   uint64
	mr     *MR
	offset int
	length int
}

// Config tunes transport-level behaviour.
type Config struct {
	// RQDepth is the default receive queue capacity (BlueField-3: 8192).
	RQDepth int
	// RetransmitTimeout is the RC retransmission RTO base.
	RetransmitTimeout sim.Time
	// MaxRetries bounds RC retransmission attempts before an OpErr CQE.
	MaxRetries int
	// DMABandwidth is the staging-copy engine bandwidth in bytes/s
	// (PCIe 4.0 x16 ≈ 32e9). Zero defaults to 32e9.
	DMABandwidth float64
	// DMALatency is the per-copy completion latency (paper: 1–3 µs).
	DMALatency sim.Time
	// Metrics, when set, receives transport telemetry: RC completion
	// latency histograms live, drop/retransmit counters at collection
	// time. Nil (the default) adds no cost anywhere.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.RQDepth == 0 {
		c.RQDepth = 8192
	}
	if c.RetransmitTimeout == 0 {
		c.RetransmitTimeout = 200 * sim.Microsecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 16
	}
	if c.DMABandwidth == 0 {
		c.DMABandwidth = 32e9
	}
	if c.DMALatency == 0 {
		c.DMALatency = 1500 * sim.Nanosecond
	}
	return c
}

// Context owns the verbs resources of one host: QPs, MRs, and the DMA
// engine. It is the software-visible face of the NIC.
type Context struct {
	Host topology.NodeID
	f    *fabric.Fabric
	eng  *sim.Engine
	nic  *fabric.NIC
	cfg  Config

	qps     map[QPN]*QP
	nextQPN QPN
	mrs     map[uint32]*MR
	nextKey uint32
	// mcast[group] lists local QPs attached to the group.
	mcast map[fabric.GroupID][]*QP
	dma   *DMAEngine

	nextMsgID uint64

	// Stats
	RNRDrops uint64 // datagrams dropped because no receive was posted

	// complLat is the RC completion-latency histogram (post to ack), shared
	// across this context's QPs; nil when Config.Metrics is unset.
	complLat *telemetry.Histogram
}

// NewContext opens a verbs context on host over fabric f.
func NewContext(f *fabric.Fabric, host topology.NodeID, cfg Config) *Context {
	cfg = cfg.withDefaults()
	ctx := &Context{
		Host: host,
		f:    f,
		// On a partitioned fabric the host's shard owns this context: every
		// timer, DMA completion and injection it schedules stays owner-local.
		eng:   f.HostEngine(host),
		nic:   f.AttachNIC(host),
		cfg:   cfg,
		qps:   make(map[QPN]*QP),
		mrs:   make(map[uint32]*MR),
		mcast: make(map[fabric.GroupID][]*QP),
	}
	ctx.dma = newDMAEngine(ctx.eng, cfg.DMABandwidth, cfg.DMALatency)
	ctx.nic.Deliver = ctx.dispatch
	// All contexts of a cluster share one registry, so every host's RC
	// completions land in the same histogram (the registry dedupes by key).
	ctx.complLat = cfg.Metrics.Histogram("verbs", "rc_completion_ns", "",
		telemetry.Stable, telemetry.LatencyBounds)
	return ctx
}

// Engine returns the simulation engine.
func (ctx *Context) Engine() *sim.Engine { return ctx.eng }

// Fabric returns the underlying fabric.
func (ctx *Context) Fabric() *fabric.Fabric { return ctx.f }

// DMA returns the host's staging-copy DMA engine.
func (ctx *Context) DMA() *DMAEngine { return ctx.dma }

// MTU returns the maximum datagram payload.
func (ctx *Context) MTU() int { return ctx.f.MaxPayload() }

// RegisterMR registers a metadata-only region of the given size.
func (ctx *Context) RegisterMR(size int) *MR {
	return ctx.registerMR(&MR{Size: size})
}

// RegisterMRData registers a region backed by real bytes.
func (ctx *Context) RegisterMRData(buf []byte) *MR {
	return ctx.registerMR(&MR{Size: len(buf), Data: buf})
}

func (ctx *Context) registerMR(mr *MR) *MR {
	ctx.nextKey++
	mr.Key = ctx.nextKey
	ctx.mrs[mr.Key] = mr
	return mr
}

// LookupMR resolves a remote key on this (target) context.
func (ctx *Context) LookupMR(key uint32) (*MR, bool) {
	mr, ok := ctx.mrs[key]
	return mr, ok
}

// QP is a queue pair bound to a context.
type QP struct {
	N         QPN
	Transport Transport
	ctx       *Context
	sendCQ    *CQ
	recvCQ    *CQ

	rq      []recvWQE
	rqDepth int

	// UC/RC connection state.
	peer      Addr
	connected bool

	// RC sender-side reliability state.
	pending map[uint64]*rcPending
	// Receiver-side reassembly for multi-packet messages (UC and RC).
	assembly map[assemblyKey]*assemblyState
	// completedRC remembers delivered reliable messages so that a
	// retransmission racing its own ack is re-acked, not re-delivered
	// (the software analogue of the RC PSN window).
	completedRC map[assemblyKey]bool

	// Stats
	RNRDrops     uint64 // two-sided arrivals dropped for lack of a recv WQE
	UCMsgDropped uint64 // UC messages discarded due to a lost packet
	Retransmits  uint64 // RC segment retransmissions
}

// NewQP creates a queue pair. sendCQ and recvCQ may be the same CQ.
func (ctx *Context) NewQP(t Transport, sendCQ, recvCQ *CQ, rqDepth int) *QP {
	if rqDepth <= 0 {
		rqDepth = ctx.cfg.RQDepth
	}
	ctx.nextQPN++
	qp := &QP{
		N:           ctx.nextQPN,
		Transport:   t,
		ctx:         ctx,
		sendCQ:      sendCQ,
		recvCQ:      recvCQ,
		rqDepth:     rqDepth,
		pending:     make(map[uint64]*rcPending),
		assembly:    make(map[assemblyKey]*assemblyState),
		completedRC: make(map[assemblyKey]bool),
	}
	ctx.qps[qp.N] = qp
	return qp
}

// Connect binds a UC/RC QP to its remote peer. UD QPs are connectionless
// and must not be connected.
func (qp *QP) Connect(peer Addr) {
	if qp.Transport == UD {
		panic("verbs: Connect on UD QP")
	}
	if peer.IsMulticast() && qp.Transport != UC {
		panic("verbs: multicast connection only supported by the UC extension")
	}
	qp.peer = peer
	qp.connected = true
}

// AttachMcast subscribes the QP (UD, or UC under the paper's extension) to
// a multicast group: incoming datagrams for the group are steered to it.
func (qp *QP) AttachMcast(g fabric.GroupID) error {
	if qp.Transport == RC {
		return fmt.Errorf("verbs: RC transport does not support multicast")
	}
	if err := qp.ctx.nic.AttachGroup(g); err != nil {
		return err
	}
	ctx := qp.ctx
	for _, q := range ctx.mcast[g] {
		if q == qp {
			return nil
		}
	}
	ctx.mcast[g] = append(ctx.mcast[g], qp)
	return nil
}

// PostRecv posts one receive WQE. For UD each WQE absorbs one datagram;
// for RC sends it absorbs one message. Returns false when the RQ is full.
func (qp *QP) PostRecv(wrID uint64, mr *MR, offset, length int) bool {
	if len(qp.rq) >= qp.rqDepth {
		return false
	}
	qp.rq = append(qp.rq, recvWQE{wrID: wrID, mr: mr, offset: offset, length: length})
	return true
}

// RQLen returns the number of posted, unconsumed receives.
func (qp *QP) RQLen() int { return len(qp.rq) }

func (qp *QP) popRecv() (recvWQE, bool) {
	if len(qp.rq) == 0 {
		return recvWQE{}, false
	}
	w := qp.rq[0]
	qp.rq = qp.rq[1:]
	return w, true
}

// --- wire format ------------------------------------------------------------

type wireOp uint8

const (
	wireSendUD   wireOp = iota
	wireWrite           // UC/RC write segment
	wireSendRC          // RC two-sided send segment
	wireAck             // RC message acknowledgement
	wireReadReq         // RC read request
	wireReadResp        // RC read response segment
)

type wireMsg struct {
	op       wireOp
	srcQPN   QPN
	dstQPN   QPN
	msgID    uint64
	seg      int // segment index within the message
	nsegs    int
	rkey     uint32 // target MR for writes / read source
	roffset  int    // target offset for writes / read source offset
	imm      uint32
	hasImm   bool
	data     []byte // nil in metadata-only mode
	dataLen  int
	readLen  int // read request: bytes wanted
	ackBytes int
}

func (ctx *Context) allocMsgID() uint64 {
	ctx.nextMsgID++
	return ctx.nextMsgID
}

// inject wraps a wire message into a fabric packet and transmits it,
// returning the wire-serialization completion time on the host uplink.
func (ctx *Context) inject(dst Addr, m *wireMsg, payloadBytes int, flow uint64) sim.Time {
	pkt := &fabric.Packet{
		Dst:          dst.Host,
		Group:        dst.Group,
		Flow:         flow,
		Payload:      m,
		PayloadBytes: payloadBytes,
	}
	if !dst.IsMulticast() {
		pkt.Group = fabric.NoGroup
	}
	return ctx.nic.Inject(pkt)
}

// dispatch routes an arriving packet to the destination QP(s).
func (ctx *Context) dispatch(pkt *fabric.Packet) {
	m := pkt.Payload.(*wireMsg)
	if pkt.Group != fabric.NoGroup {
		for _, qp := range ctx.mcast[pkt.Group] {
			qp.receive(pkt, m)
		}
		return
	}
	qp, ok := ctx.qps[m.dstQPN]
	if !ok {
		return // stale packet to a destroyed QP: silently dropped, as in IB
	}
	qp.receive(pkt, m)
}
