package verbs

import "repro/internal/telemetry"

// CollectTelemetry exports the context's transport counters into reg.
// Per-QP counters are summed context-wide — QP map iteration order is
// nondeterministic, but summing into counters is commutative, so the
// exported totals are stable. A nil registry is a no-op.
func (ctx *Context) CollectTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	var rnr, retx, ucDrop uint64
	rnr = ctx.RNRDrops
	for _, qp := range ctx.qps {
		rnr += qp.RNRDrops
		retx += qp.Retransmits
		ucDrop += qp.UCMsgDropped
	}
	reg.Counter("verbs", "rnr_drops", "", telemetry.Stable).Add(rnr)
	reg.Counter("verbs", "retransmits", "", telemetry.Stable).Add(retx)
	reg.Counter("verbs", "uc_msg_dropped", "", telemetry.Stable).Add(ucDrop)
}
