package verbs

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
)

// pair builds a 2-host fabric and one context per host.
func pair(t *testing.T, cfg fabric.Config, vcfg Config) (*sim.Engine, *fabric.Fabric, *Context, *Context) {
	t.Helper()
	eng := sim.NewEngine(1)
	g := topology.BackToBack()
	f := fabric.New(eng, g, cfg)
	hosts := g.Hosts()
	return eng, f, NewContext(f, hosts[0], vcfg), NewContext(f, hosts[1], vcfg)
}

func fill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*7)
	}
	return b
}

func TestUDSendRecvData(t *testing.T) {
	eng, _, a, b := pair(t, fabric.Config{}, Config{})
	cqA, cqB := &CQ{}, &CQ{}
	qpA := a.NewQP(UD, cqA, cqA, 0)
	qpB := b.NewQP(UD, cqB, cqB, 0)

	src := a.RegisterMRData(fill(1000, 3))
	dst := b.RegisterMRData(make([]byte, 1000))
	if !qpB.PostRecv(7, dst, 0, 1000) {
		t.Fatal("PostRecv failed")
	}
	qpA.PostSendUD(1, Unicast(b.Host, qpB.N), src, 0, 1000, 0xCAFE, true)
	eng.Run()

	e, ok := cqB.Poll()
	if !ok {
		t.Fatal("no receive completion")
	}
	if e.Op != OpRecv || e.Imm != 0xCAFE || !e.HasImm || e.Bytes != 1000 || e.WrID != 7 {
		t.Fatalf("bad CQE: %+v", e)
	}
	if e.SrcHost != a.Host || e.SrcQPN != qpA.N {
		t.Fatalf("bad source in CQE: %+v", e)
	}
	if !bytes.Equal(dst.Data, src.Data) {
		t.Fatal("payload corrupted in flight")
	}
	if se, ok := cqA.Poll(); !ok || se.Op != OpSend || se.WrID != 1 {
		t.Fatalf("bad send completion: %+v ok=%v", se, ok)
	}
}

func TestUDUnsignaledSend(t *testing.T) {
	eng, _, a, b := pair(t, fabric.Config{}, Config{})
	cqA, cqB := &CQ{}, &CQ{}
	qpA := a.NewQP(UD, cqA, cqA, 0)
	qpB := b.NewQP(UD, cqB, cqB, 0)
	mr := a.RegisterMR(512)
	dst := b.RegisterMR(512)
	qpB.PostRecv(0, dst, 0, 512)
	qpA.PostSendUD(0, Unicast(b.Host, qpB.N), mr, 0, 512, 0, false)
	eng.Run()
	if cqA.Len() != 0 {
		t.Fatal("unsignaled send produced a CQE")
	}
	if cqB.Len() != 1 {
		t.Fatal("receive missing")
	}
}

func TestUDRNRDrop(t *testing.T) {
	eng, _, a, b := pair(t, fabric.Config{}, Config{})
	cqA, cqB := &CQ{}, &CQ{}
	qpA := a.NewQP(UD, cqA, cqA, 0)
	qpB := b.NewQP(UD, cqB, cqB, 0)
	mr := a.RegisterMR(100)
	// No receive posted on B.
	qpA.PostSendUD(0, Unicast(b.Host, qpB.N), mr, 0, 100, 0, false)
	eng.Run()
	if qpB.RNRDrops != 1 || b.RNRDrops != 1 {
		t.Fatalf("RNR drops = %d/%d, want 1/1", qpB.RNRDrops, b.RNRDrops)
	}
	if cqB.Len() != 0 {
		t.Fatal("dropped datagram produced a CQE")
	}
}

func TestUDOversizePanics(t *testing.T) {
	_, _, a, b := pair(t, fabric.Config{MTU: 1024}, Config{})
	cq := &CQ{}
	qp := a.NewQP(UD, cq, cq, 0)
	mr := a.RegisterMR(4096)
	defer func() {
		if recover() == nil {
			t.Error("oversized UD send did not panic")
		}
	}()
	qp.PostSendUD(0, Unicast(b.Host, 1), mr, 0, 2048, 0, false)
}

func TestUDTruncatesToPostedBuffer(t *testing.T) {
	eng, _, a, b := pair(t, fabric.Config{}, Config{})
	cqA, cqB := &CQ{}, &CQ{}
	qpA := a.NewQP(UD, cqA, cqA, 0)
	qpB := b.NewQP(UD, cqB, cqB, 0)
	src := a.RegisterMRData(fill(100, 1))
	dst := b.RegisterMRData(make([]byte, 40))
	qpB.PostRecv(0, dst, 0, 40)
	qpA.PostSendUD(0, Unicast(b.Host, qpB.N), src, 0, 100, 0, false)
	eng.Run()
	e, _ := cqB.Poll()
	if e.Bytes != 40 {
		t.Fatalf("received %d bytes, want truncation to 40", e.Bytes)
	}
}

func TestRQDepthEnforced(t *testing.T) {
	_, _, a, _ := pair(t, fabric.Config{}, Config{})
	cq := &CQ{}
	qp := a.NewQP(UD, cq, cq, 2)
	mr := a.RegisterMR(64)
	if !qp.PostRecv(0, mr, 0, 64) || !qp.PostRecv(1, mr, 0, 64) {
		t.Fatal("posts under depth failed")
	}
	if qp.PostRecv(2, mr, 0, 64) {
		t.Fatal("post over RQ depth succeeded")
	}
	if qp.RQLen() != 2 {
		t.Fatalf("RQLen = %d", qp.RQLen())
	}
}

func TestUDMulticastFanout(t *testing.T) {
	eng := sim.NewEngine(1)
	g := topology.Star(4)
	f := fabric.New(eng, g, fabric.Config{})
	hosts := g.Hosts()
	ctxs := make([]*Context, 4)
	qps := make([]*QP, 4)
	cqs := make([]*CQ, 4)
	for i, h := range hosts {
		ctxs[i] = NewContext(f, h, Config{})
		cqs[i] = &CQ{}
		qps[i] = ctxs[i].NewQP(UD, cqs[i], cqs[i], 0)
	}
	gid, err := f.CreateGroup(g.Switches()[0], hosts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qps {
		if err := qps[i].AttachMcast(gid); err != nil {
			t.Fatal(err)
		}
	}
	payload := fill(2048, 9)
	src := ctxs[0].RegisterMRData(payload)
	for i := 1; i < 4; i++ {
		dst := ctxs[i].RegisterMRData(make([]byte, 2048))
		qps[i].PostRecv(uint64(i), dst, 0, 2048)
	}
	qps[0].PostSendUD(0, Multicast(gid), src, 0, 2048, 42, false)
	eng.Run()
	for i := 1; i < 4; i++ {
		e, ok := cqs[i].Poll()
		if !ok {
			t.Fatalf("member %d got no datagram", i)
		}
		if e.Imm != 42 || e.Bytes != 2048 {
			t.Fatalf("member %d bad CQE %+v", i, e)
		}
	}
	if cqs[0].Len() != 0 {
		t.Fatal("sender received its own multicast")
	}
}

func TestUCWriteWithImm(t *testing.T) {
	eng, _, a, b := pair(t, fabric.Config{}, Config{})
	cqA, cqB := &CQ{}, &CQ{}
	qpA := a.NewQP(UC, cqA, cqA, 0)
	qpB := b.NewQP(UC, cqB, cqB, 0)
	qpA.Connect(Unicast(b.Host, qpB.N))

	src := a.RegisterMRData(fill(20000, 5)) // ~5 MTU segments
	dst := b.RegisterMRData(make([]byte, 32768))
	qpA.PostWriteUC(3, src, 0, 20000, dst.Key, 4096, 0xBEEF, true)
	eng.Run()

	e, ok := cqB.Poll()
	if !ok {
		t.Fatal("no write-imm completion")
	}
	if e.Op != OpRecvWriteImm || e.Imm != 0xBEEF || e.Bytes != 20000 {
		t.Fatalf("bad CQE %+v", e)
	}
	if !bytes.Equal(dst.Data[4096:4096+20000], src.Data) {
		t.Fatal("UC write landed wrong")
	}
	if se, ok := cqA.Poll(); !ok || se.Op != OpSend || se.WrID != 3 {
		t.Fatalf("send completion %+v ok=%v", se, ok)
	}
}

func TestUCMessageDropOnPacketLoss(t *testing.T) {
	// With heavy drops, some multi-packet UC messages must vanish entirely
	// (no CQE) while complete ones still arrive intact.
	eng, _, a, b := pair(t, fabric.Config{DropRate: 0.10}, Config{})
	cqA, cqB := &CQ{}, &CQ{}
	qpA := a.NewQP(UC, cqA, cqA, 0)
	qpB := b.NewQP(UC, cqB, cqB, 0)
	qpA.Connect(Unicast(b.Host, qpB.N))
	dst := b.RegisterMR(1 << 20)
	src := a.RegisterMR(64 * 1024)
	const msgs = 200
	for i := 0; i < msgs; i++ {
		qpA.PostWriteUC(uint64(i), src, 0, 64*1024, dst.Key, 0, uint32(i), false)
	}
	eng.Run()
	qpB.GCAssembly()
	complete := cqB.Len()
	if complete == msgs {
		t.Fatal("no UC message was lost despite 10% drop rate")
	}
	if complete == 0 {
		t.Fatal("every UC message lost; drop model too aggressive")
	}
	if int(qpB.UCMsgDropped)+complete != msgs {
		t.Fatalf("dropped(%d) + complete(%d) != sent(%d)", qpB.UCMsgDropped, complete, msgs)
	}
}

func TestUCMulticastWrite(t *testing.T) {
	// The paper's UC-multicast extension: one write lands in every member's
	// buffer registered under the same rkey.
	eng := sim.NewEngine(1)
	g := topology.Star(3)
	f := fabric.New(eng, g, fabric.Config{})
	hosts := g.Hosts()
	var ctxs []*Context
	var qps []*QP
	var cqs []*CQ
	for _, h := range hosts {
		ctx := NewContext(f, h, Config{})
		cq := &CQ{}
		ctxs = append(ctxs, ctx)
		cqs = append(cqs, cq)
		qps = append(qps, ctx.NewQP(UC, cq, cq, 0))
	}
	gid, _ := f.CreateGroup(g.Switches()[0], hosts)
	for _, qp := range qps {
		if err := qp.AttachMcast(gid); err != nil {
			t.Fatal(err)
		}
	}
	// All receivers register their buffer; by construction of the test they
	// share the same rkey value (first registration on each context).
	src := ctxs[0].RegisterMRData(fill(10000, 11))
	dsts := []*MR{
		ctxs[1].RegisterMRData(make([]byte, 10000)),
		ctxs[2].RegisterMRData(make([]byte, 10000)),
	}
	if dsts[0].Key != dsts[1].Key {
		t.Fatal("test assumption broken: rkeys differ")
	}
	qps[0].Connect(Multicast(gid))
	qps[0].PostWriteUC(0, src, 0, 10000, dsts[0].Key, 0, 77, false)
	eng.Run()
	for i := 1; i <= 2; i++ {
		e, ok := cqs[i].Poll()
		if !ok || e.Op != OpRecvWriteImm || e.Imm != 77 {
			t.Fatalf("member %d missing UC mcast write completion", i)
		}
	}
	if !bytes.Equal(dsts[0].Data, src.Data) || !bytes.Equal(dsts[1].Data, src.Data) {
		t.Fatal("UC multicast write corrupted data")
	}
}

func TestRCWriteReliableUnderDrops(t *testing.T) {
	eng, _, a, b := pair(t, fabric.Config{DropRate: 0.05}, Config{})
	cqA, cqB := &CQ{}, &CQ{}
	qpA := a.NewQP(RC, cqA, cqA, 0)
	qpB := b.NewQP(RC, cqB, cqB, 0)
	qpA.Connect(Unicast(b.Host, qpB.N))
	qpB.Connect(Unicast(a.Host, qpA.N))

	src := a.RegisterMRData(fill(100000, 7))
	dst := b.RegisterMRData(make([]byte, 100000))
	qpA.PostWriteRC(1, src, 0, 100000, dst.Key, 0, 5, true)
	eng.Run()

	se, ok := cqA.Poll()
	if !ok || se.Op != OpSend {
		t.Fatalf("RC write not completed under drops: %+v ok=%v (retransmits=%d)", se, ok, qpA.Retransmits)
	}
	re, ok := cqB.Poll()
	if !ok || re.Op != OpRecvWriteImm || re.Imm != 5 {
		t.Fatalf("receiver CQE %+v ok=%v", re, ok)
	}
	if !bytes.Equal(dst.Data, src.Data) {
		t.Fatal("RC write delivered corrupt data")
	}
	if qpA.Retransmits == 0 {
		t.Log("note: no retransmissions occurred at 5% drop rate (possible but unlikely)")
	}
}

func TestRCReadFetchesRemote(t *testing.T) {
	eng, _, a, b := pair(t, fabric.Config{}, Config{})
	cqA, cqB := &CQ{}, &CQ{}
	qpA := a.NewQP(RC, cqA, cqA, 0)
	qpB := b.NewQP(RC, cqB, cqB, 0)
	qpA.Connect(Unicast(b.Host, qpB.N))
	qpB.Connect(Unicast(a.Host, qpA.N))

	remote := b.RegisterMRData(fill(50000, 13))
	local := a.RegisterMRData(make([]byte, 50000))
	qpA.PostReadRC(9, local, 1000, remote.Key, 2000, 8192)
	eng.Run()

	e, ok := cqA.Poll()
	if !ok || e.Op != OpRead || e.WrID != 9 || e.Bytes != 8192 {
		t.Fatalf("read CQE %+v ok=%v", e, ok)
	}
	if !bytes.Equal(local.Data[1000:1000+8192], remote.Data[2000:2000+8192]) {
		t.Fatal("RDMA read returned wrong bytes")
	}
	if cqB.Len() != 0 {
		t.Fatal("responder generated CQEs for a one-sided read")
	}
}

func TestRCReadReliableUnderDrops(t *testing.T) {
	eng, _, a, b := pair(t, fabric.Config{DropRate: 0.08}, Config{})
	cqA, cqB := &CQ{}, &CQ{}
	qpA := a.NewQP(RC, cqA, cqA, 0)
	qpB := b.NewQP(RC, cqB, cqB, 0)
	qpA.Connect(Unicast(b.Host, qpB.N))
	qpB.Connect(Unicast(a.Host, qpA.N))

	remote := b.RegisterMRData(fill(200000, 17))
	local := a.RegisterMRData(make([]byte, 200000))
	const reads = 20
	for i := 0; i < reads; i++ {
		qpA.PostReadRC(uint64(i), local, i*10000, remote.Key, i*10000, 10000)
	}
	eng.Run()
	done := 0
	for {
		e, ok := cqA.Poll()
		if !ok {
			break
		}
		if e.Op == OpErr {
			t.Fatalf("read %d failed terminally", e.WrID)
		}
		if e.Op == OpRead {
			done++
		}
	}
	if done != reads {
		t.Fatalf("completed %d of %d reads under drops", done, reads)
	}
	if !bytes.Equal(local.Data, remote.Data) {
		t.Fatal("reads under drops returned corrupt data")
	}
}

func TestRCSendRecvTwoSided(t *testing.T) {
	eng, _, a, b := pair(t, fabric.Config{}, Config{})
	cqA, cqB := &CQ{}, &CQ{}
	qpA := a.NewQP(RC, cqA, cqA, 0)
	qpB := b.NewQP(RC, cqB, cqB, 0)
	qpA.Connect(Unicast(b.Host, qpB.N))
	qpB.Connect(Unicast(a.Host, qpA.N))

	src := a.RegisterMRData(fill(5000, 23))
	dst := b.RegisterMRData(make([]byte, 5000))
	qpB.PostRecv(11, dst, 0, 5000)
	qpA.PostSendRC(4, src, 0, 5000, 99, true)
	eng.Run()

	re, ok := cqB.Poll()
	if !ok || re.Op != OpRecv || re.Imm != 99 || re.WrID != 11 {
		t.Fatalf("recv CQE %+v ok=%v", re, ok)
	}
	if !bytes.Equal(dst.Data, src.Data) {
		t.Fatal("two-sided RC payload corrupt")
	}
	if se, ok := cqA.Poll(); !ok || se.Op != OpSend || se.WrID != 4 {
		t.Fatalf("send CQE %+v ok=%v", se, ok)
	}
}

func TestRCSendRetriesUntilReceivePosted(t *testing.T) {
	eng, _, a, b := pair(t, fabric.Config{}, Config{RetransmitTimeout: 50 * sim.Microsecond})
	cqA, cqB := &CQ{}, &CQ{}
	qpA := a.NewQP(RC, cqA, cqA, 0)
	qpB := b.NewQP(RC, cqB, cqB, 0)
	qpA.Connect(Unicast(b.Host, qpB.N))
	qpB.Connect(Unicast(a.Host, qpA.N))

	src := a.RegisterMR(100)
	dst := b.RegisterMR(100)
	qpA.PostSendRC(0, src, 0, 100, 0, true)
	// Post the receive only after 300 µs of virtual time.
	eng.After(300*sim.Microsecond, func() { qpB.PostRecv(0, dst, 0, 100) })
	eng.Run()
	if cqB.Len() != 1 {
		t.Fatalf("late-posted receive never matched (RNR on B: %d)", qpB.RNRDrops)
	}
	if qpA.Retransmits == 0 {
		t.Fatal("sender never retransmitted despite RNR")
	}
	if se, ok := cqA.Poll(); !ok || se.Op != OpSend {
		t.Fatalf("send never completed: %+v", se)
	}
}

func TestRCErrAfterMaxRetries(t *testing.T) {
	eng, _, a, b := pair(t, fabric.Config{DropRate: 1.0},
		Config{RetransmitTimeout: 10 * sim.Microsecond, MaxRetries: 3})
	cqA := &CQ{}
	qpA := a.NewQP(RC, cqA, cqA, 0)
	qpB := b.NewQP(RC, &CQ{}, &CQ{}, 0)
	qpA.Connect(Unicast(b.Host, qpB.N))
	src := a.RegisterMR(100)
	dst := b.RegisterMR(100)
	qpA.PostWriteRC(0, src, 0, 100, dst.Key, 0, 0, true)
	eng.Run()
	e, ok := cqA.Poll()
	if !ok || e.Op != OpErr {
		t.Fatalf("expected OpErr after retry exhaustion, got %+v ok=%v", e, ok)
	}
	if qpA.Retransmits != 3 {
		t.Fatalf("retransmits = %d, want 3", qpA.Retransmits)
	}
}

func TestCQArmedFiresOnce(t *testing.T) {
	cq := &CQ{}
	fires := 0
	cq.Armed = func() { fires++ }
	cq.Push(CQE{})
	cq.Push(CQE{})
	if fires != 1 {
		t.Fatalf("armed handler fired %d times, want 1", fires)
	}
	if cq.Produced != 2 || cq.Len() != 2 {
		t.Fatalf("counters wrong: produced=%d len=%d", cq.Produced, cq.Len())
	}
}

func TestMRBoundsEnforced(t *testing.T) {
	mr := &MR{Size: 100}
	for _, c := range []struct{ off, n int }{{-1, 10}, {95, 10}, {101, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("write(%d,%d) on size-100 MR did not panic", c.off, c.n)
				}
			}()
			mr.write(c.off, nil, c.n)
		}()
	}
}

func TestConnectValidation(t *testing.T) {
	_, _, a, b := pair(t, fabric.Config{}, Config{})
	cq := &CQ{}
	ud := a.NewQP(UD, cq, cq, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Connect on UD QP did not panic")
			}
		}()
		ud.Connect(Unicast(b.Host, 1))
	}()
	rc := a.NewQP(RC, cq, cq, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("multicast Connect on RC QP did not panic")
			}
		}()
		rc.Connect(Multicast(0))
	}()
	if err := rc.AttachMcast(0); err == nil {
		t.Error("AttachMcast on RC QP succeeded")
	}
}

func TestUnconnectedOpsPanic(t *testing.T) {
	_, _, a, _ := pair(t, fabric.Config{}, Config{})
	cq := &CQ{}
	uc := a.NewQP(UC, cq, cq, 0)
	mr := a.RegisterMR(10)
	defer func() {
		if recover() == nil {
			t.Error("UC write without Connect did not panic")
		}
	}()
	uc.PostWriteUC(0, mr, 0, 10, 1, 0, 0, false)
}

func TestDMAEngineOrderingAndLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newDMAEngine(eng, 32e9, 1500*sim.Nanosecond)
	var done []sim.Time
	// Two back-to-back 32 KB copies: first completes at 32768/32e9 s + 1.5µs
	// = 1024ns + 1500ns; second serializes behind the first's bandwidth slot.
	d.Enqueue(32768, func() { done = append(done, eng.Now()) })
	d.Enqueue(32768, func() { done = append(done, eng.Now()) })
	eng.Run()
	if len(done) != 2 {
		t.Fatal("copies did not complete")
	}
	if done[0] != 2524 {
		t.Fatalf("first copy at %v, want 2524ns", done[0])
	}
	if done[1] != 3548 {
		t.Fatalf("second copy at %v, want 3548ns", done[1])
	}
	if d.Copies != 2 || d.BytesCopied != 65536 {
		t.Fatalf("counters: %d copies %d bytes", d.Copies, d.BytesCopied)
	}
}

func TestDMAQuiesced(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newDMAEngine(eng, 1e9, sim.Microsecond)
	if d.Quiesced() != 0 {
		t.Fatalf("idle Quiesced = %v", d.Quiesced())
	}
	d.Enqueue(1000, nil) // 1000ns serialize + 1000ns latency
	if q := d.Quiesced(); q != 2000 {
		t.Fatalf("Quiesced = %v, want 2000", q)
	}
}

// Property: any UD datagram that is neither dropped by the fabric nor RNR
// must arrive with its immediate intact and bytes equal to min(sent, posted).
func TestPropertyUDImmediateIntegrity(t *testing.T) {
	f := func(imms []uint32) bool {
		eng := sim.NewEngine(99)
		g := topology.BackToBack()
		fb := fabric.New(eng, g, fabric.Config{})
		hosts := g.Hosts()
		a, b := NewContext(fb, hosts[0], Config{}), NewContext(fb, hosts[1], Config{})
		cqB := &CQ{}
		qpA := a.NewQP(UD, &CQ{}, &CQ{}, 0)
		qpB := b.NewQP(UD, cqB, cqB, 0)
		mr := a.RegisterMR(4096)
		dst := b.RegisterMR(1 << 20)
		for range imms {
			qpB.PostRecv(0, dst, 0, 4096)
		}
		for _, imm := range imms {
			qpA.PostSendUD(0, Unicast(b.Host, qpB.N), mr, 0, 4096, imm, false)
		}
		eng.Run()
		for _, want := range imms {
			e, ok := cqB.Poll()
			if !ok || e.Imm != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRCNoDuplicateDeliveryWhenAckRacesRTO(t *testing.T) {
	// A retransmission of an already-delivered message (its ack still in
	// flight or lost) must be re-acked, never re-delivered: duplicated
	// write-imm CQEs would corrupt chunk accounting in the protocols.
	// 200 µs of propagation per hop: the ack cannot return before the
	// retransmission timer (1 µs base + 2x transfer time) fires.
	eng, _, a, b := pair(t, fabric.Config{LinkLatency: 200 * sim.Microsecond},
		Config{RetransmitTimeout: 1 * sim.Microsecond})
	cqA, cqB := &CQ{}, &CQ{}
	qpA := a.NewQP(RC, cqA, cqA, 0)
	qpB := b.NewQP(RC, cqB, cqB, 0)
	qpA.Connect(Unicast(b.Host, qpB.N))
	qpB.Connect(Unicast(a.Host, qpA.N))
	src := a.RegisterMR(1 << 20)
	dst := b.RegisterMR(1 << 20)
	qpA.PostWriteRC(1, src, 0, 1<<20, dst.Key, 0, 7, true)
	eng.Run()
	if qpA.Retransmits == 0 {
		t.Fatal("test premise broken: no retransmissions with a 1µs RTO")
	}
	recvs := 0
	for {
		e, ok := cqB.Poll()
		if !ok {
			break
		}
		if e.Op == OpRecvWriteImm {
			recvs++
		}
	}
	if recvs != 1 {
		t.Fatalf("message delivered %d times, want exactly once (retransmits=%d)", recvs, qpA.Retransmits)
	}
	sends := 0
	for {
		e, ok := cqA.Poll()
		if !ok {
			break
		}
		if e.Op == OpSend {
			sends++
		}
		if e.Op == OpErr {
			t.Fatal("write errored out")
		}
	}
	if sends != 1 {
		t.Fatalf("send completed %d times, want once", sends)
	}
}

func TestPostSendReduceAggregates(t *testing.T) {
	// Verbs-level in-network reduction: P contributions with the same
	// chunk id produce exactly one UD delivery at the destination QP.
	eng := sim.NewEngine(1)
	g := topology.Star(3)
	f := fabric.New(eng, g, fabric.Config{})
	hosts := g.Hosts()
	var ctxs []*Context
	var qps []*QP
	cqs := make([]*CQ, 3)
	for i, h := range hosts {
		ctx := NewContext(f, h, Config{})
		cqs[i] = &CQ{}
		ctxs = append(ctxs, ctx)
		qps = append(qps, ctx.NewQP(UD, cqs[i], cqs[i], 0))
	}
	rg, err := f.CreateReduceGroup(g.Switches()[0], hosts)
	if err != nil {
		t.Fatal(err)
	}
	dst := ctxs[0].RegisterMR(4096)
	qps[0].PostRecv(0, dst, 0, 4096)
	for i, qp := range qps {
		mr := ctxs[i].RegisterMR(4096)
		qp.PostSendReduce(0, Unicast(hosts[0], qps[0].N), rg, 42, mr, 0, 4096, 7, false)
	}
	eng.Run()
	if cqs[0].Len() != 1 {
		t.Fatalf("owner received %d completions, want 1 reduced datagram", cqs[0].Len())
	}
	e, _ := cqs[0].Poll()
	if e.Op != OpRecv || e.Imm != 7 {
		t.Fatalf("bad reduced CQE: %+v", e)
	}
}
