package verbs

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
)

// --- UD ---------------------------------------------------------------------

// PostSendUD transmits one datagram (payload <= MTU) from mr[offset:] to a
// unicast QP or a multicast group. The 32-bit immediate travels in the
// packet header and surfaces in the receiver's CQE — the protocol's PSN
// channel. A signaled send pushes an OpSend CQE locally once the datagram
// is handed to the NIC (sender-side completions on unreliable transports
// mean "accepted by hardware", not "delivered").
func (qp *QP) PostSendUD(wrID uint64, dst Addr, mr *MR, offset, length int, imm uint32, signaled bool) {
	if qp.Transport != UD {
		panic("verbs: PostSendUD on non-UD QP")
	}
	if length > qp.ctx.MTU() {
		panic(fmt.Sprintf("verbs: UD datagram %d exceeds MTU %d", length, qp.ctx.MTU()))
	}
	m := &wireMsg{
		op:      wireSendUD,
		srcQPN:  qp.N,
		dstQPN:  dst.QPN,
		imm:     imm,
		hasImm:  true,
		data:    mr.read(offset, length),
		dataLen: length,
	}
	wire := qp.ctx.inject(dst, m, length, uint64(qp.N))
	if signaled {
		// The send completion is reported once the datagram has left the
		// NIC (wire serialization done) — this is what paces batched send
		// workers against the link.
		qp.ctx.eng.AtHandler(wire, qp, wrID, length, nil)
	}
}

// OnEvent is the QP's closure-free event dispatch: with a *rcPending
// payload it is the retransmission timer firing; otherwise it is a signaled
// send completing its wire serialization (arg0 = WrID, arg1 = bytes).
func (qp *QP) OnEvent(_ *sim.Engine, _ sim.Handle, arg0 uint64, arg1 int, obj any) {
	if p, ok := obj.(*rcPending); ok {
		qp.retransmit(p)
		return
	}
	qp.sendCQ.Push(CQE{Op: OpSend, QPN: qp.N, WrID: arg0, Bytes: arg1})
}

// PostSendReduce transmits one contribution datagram into an in-network
// reduction group (SHARP-style): the fabric routes it up the group's tree,
// the root switch aggregates per chunkID, and one reduced result datagram
// is emitted toward dst (consuming a posted receive there, like any UD
// arrival). Only traffic and timing are modeled — values are not reduced.
func (qp *QP) PostSendReduce(wrID uint64, dst Addr, rg fabric.ReduceGroupID, chunkID uint64, mr *MR, offset, length int, imm uint32, signaled bool) {
	if qp.Transport != UD {
		panic("verbs: PostSendReduce on non-UD QP")
	}
	if length > qp.ctx.MTU() {
		panic(fmt.Sprintf("verbs: reduce datagram %d exceeds MTU %d", length, qp.ctx.MTU()))
	}
	m := &wireMsg{
		op:      wireSendUD,
		srcQPN:  qp.N,
		dstQPN:  dst.QPN,
		imm:     imm,
		hasImm:  true,
		dataLen: length,
	}
	pkt := &fabric.Packet{
		Dst:          dst.Host,
		Group:        fabric.NoGroup,
		Flow:         uint64(qp.N),
		Payload:      m,
		PayloadBytes: length,
		Reduce:       rg,
		ReduceChunk:  chunkID,
	}
	wire := qp.ctx.nic.Inject(pkt)
	if signaled {
		qp.ctx.eng.AtHandler(wire, qp, wrID, length, nil)
	}
}

// receiveUD matches the datagram against the receive queue. No posted
// receive means an RNR drop — the failure mode the protocol's RNR barrier
// plus receive-worker scaling exists to avoid (§III-C).
func (qp *QP) receiveUD(src Addr, m *wireMsg) {
	w, ok := qp.popRecv()
	if !ok {
		qp.RNRDrops++
		qp.ctx.RNRDrops++
		return
	}
	n := m.dataLen
	if n > w.length {
		n = w.length // truncate to the posted buffer, as UD does
	}
	w.mr.write(w.offset, m.data, n)
	qp.recvCQ.Push(CQE{
		Op: OpRecv, QPN: qp.N, WrID: w.wrID,
		Imm: m.imm, HasImm: m.hasImm, Bytes: n,
		SrcHost: src.Host, SrcQPN: src.QPN,
	})
}

// --- UC ---------------------------------------------------------------------

// PostWriteUC performs an RDMA Write with immediate over the UC transport:
// the message is segmented into MTU packets; the receiver places segments
// directly at rkey[roffset+seg*MTU] (zero-copy) and raises one
// OpRecvWriteImm CQE per *message* when the last segment lands. If any
// segment is lost the whole message evaporates (UC semantics) — no CQE,
// counted in UCMsgDropped on the receiver when detectable.
//
// With a multicast peer address this is the paper's proposed UC-multicast
// extension (§V-B, Appendix C): every attached receiver places the message
// into its own MR registered under the agreed rkey.
func (qp *QP) PostWriteUC(wrID uint64, mr *MR, offset, length int, rkey uint32, roffset int, imm uint32, signaled bool) {
	if qp.Transport != UC {
		panic("verbs: PostWriteUC on non-UC QP")
	}
	if !qp.connected {
		panic("verbs: UC QP not connected")
	}
	qp.segmentAndSend(wireWrite, qp.peer, wrID, mr, offset, length, rkey, roffset, imm, signaled)
}

// segmentAndSend chops [offset, offset+length) into MTU packets and injects
// them under a fresh message id.
func (qp *QP) segmentAndSend(op wireOp, dst Addr, wrID uint64, mr *MR, offset, length int, rkey uint32, roffset int, imm uint32, signaled bool) uint64 {
	msgID := qp.ctx.allocMsgID()
	qp.segmentAndSendSignaled(msgID, op, dst, wrID, mr, offset, length, rkey, roffset, imm, signaled)
	return msgID
}

// segmentAndSendMsg resends under an existing message id (RC retransmit)
// and reports when the last segment leaves the NIC.
func (qp *QP) segmentAndSendMsg(msgID uint64, op wireOp, dst Addr, mr *MR, offset, length int, rkey uint32, roffset int, imm uint32) sim.Time {
	return qp.segmentAndSendSignaled(msgID, op, dst, 0, mr, offset, length, rkey, roffset, imm, false)
}

func (qp *QP) segmentAndSendSignaled(msgID uint64, op wireOp, dst Addr, wrID uint64, mr *MR, offset, length int, rkey uint32, roffset int, imm uint32, signaled bool) sim.Time {
	if length < 0 {
		panic(fmt.Sprintf("verbs: negative message length %d", length))
	}
	ctx := qp.ctx
	mtu := ctx.MTU()
	nsegs := (length + mtu - 1) / mtu
	if nsegs == 0 {
		nsegs = 1 // zero-length message still carries its immediate
	}
	var lastWire sim.Time
	for s := 0; s < nsegs; s++ {
		segOff := s * mtu
		segLen := length - segOff
		if segLen > mtu {
			segLen = mtu
		}
		if segLen < 0 {
			segLen = 0
		}
		m := &wireMsg{
			op:      op,
			srcQPN:  qp.N,
			dstQPN:  dst.QPN,
			msgID:   msgID,
			seg:     s,
			nsegs:   nsegs,
			rkey:    rkey,
			roffset: roffset + segOff,
			imm:     imm,
			hasImm:  s == nsegs-1, // immediate rides the last segment
			dataLen: segLen,
		}
		if mr != nil && segLen > 0 {
			m.data = mr.read(offset+segOff, segLen)
		}
		wire := ctx.inject(dst, m, segLen, uint64(qp.N))
		if s == nsegs-1 {
			lastWire = wire
			if op == wireWrite && qp.Transport == UC && signaled {
				ctx.eng.AtHandler(wire, qp, wrID, length, nil)
			}
		}
	}
	return lastWire
}

// assemblyKey identifies one in-flight message. QPNs are only unique per
// context, so the source host must be part of the key: multicast delivers
// messages from many senders to the same receiving QP.
type assemblyKey struct {
	srcHost topology.NodeID
	srcQPN  QPN
	msgID   uint64
}

type assemblyState struct {
	got   []bool
	have  int
	bytes int
	data  []byte // two-sided RC payload staged until a receive WQE matches
}

// receiveWrite handles one UC/RC write segment on the receiver.
func (qp *QP) receiveWrite(src Addr, m *wireMsg, reliable bool) {
	mr, ok := qp.ctx.LookupMR(m.rkey)
	if !ok {
		panic(fmt.Sprintf("verbs: write to unknown rkey %d on host %d", m.rkey, qp.ctx.Host))
	}
	key := assemblyKey{srcHost: src.Host, srcQPN: m.srcQPN, msgID: m.msgID}
	if reliable && qp.completedRC[key] {
		qp.sendAck(src, m.msgID, 0) // retransmission raced our ack: re-ack
		return
	}
	st := qp.assembly[key]
	if st == nil {
		st = &assemblyState{got: make([]bool, m.nsegs)}
		qp.assembly[key] = st
	}
	if st.got[m.seg] {
		return // RC retransmission duplicate
	}
	st.got[m.seg] = true
	st.have++
	st.bytes += m.dataLen
	mr.write(m.roffset, m.data, m.dataLen)

	if st.have == m.nsegs {
		delete(qp.assembly, key)
		qp.recvCQ.Push(CQE{
			Op: OpRecvWriteImm, QPN: qp.N,
			Imm: m.imm, HasImm: m.hasImm, Bytes: st.bytes,
			SrcHost: src.Host, SrcQPN: m.srcQPN,
		})
		if reliable {
			qp.completedRC[key] = true
			qp.sendAck(src, m.msgID, st.bytes)
		}
	}
}

// GCAssembly drops incomplete UC assembly state older than the current
// collective iteration. The protocol calls this between operations; a real
// NIC has no such state for UC because it tracks only the in-order PSN —
// incomplete messages simply never complete.
func (qp *QP) GCAssembly() {
	for k, st := range qp.assembly {
		if st.have < len(st.got) {
			qp.UCMsgDropped++
			delete(qp.assembly, k)
		}
	}
}

// --- RC ---------------------------------------------------------------------

type rcPending struct {
	wrID     uint64
	msgID    uint64
	dst      Addr
	op       wireOp
	mr       *MR
	offset   int
	length   int
	rkey     uint32
	roffset  int
	imm      uint32
	signaled bool
	retries  int
	// posted is when the WR entered the send queue; the ack that retires it
	// closes the completion-latency observation.
	posted sim.Time
	// timer is the armed retransmission timeout. A Handle (not a *Event):
	// timer events are pooled, and the generation check makes cancelling a
	// timer that already fired — an ack racing its own retransmission — a
	// guaranteed no-op even after the event's recycling.
	timer sim.Handle
	// read bookkeeping (requester side)
	isRead   bool
	readDst  *MR
	readOff  int
	readGot  map[int]bool
	readLen  int
	readRecv int
}

// PostSendRC sends a two-sided reliable message; the receiver must have a
// posted receive WQE large enough for it.
func (qp *QP) PostSendRC(wrID uint64, mr *MR, offset, length int, imm uint32, signaled bool) {
	qp.mustRC()
	p := &rcPending{wrID: wrID, dst: qp.peer, op: wireSendRC, mr: mr, offset: offset,
		length: length, imm: imm, signaled: signaled}
	qp.startRC(p)
}

// PostWriteRC performs a reliable RDMA Write with immediate.
func (qp *QP) PostWriteRC(wrID uint64, mr *MR, offset, length int, rkey uint32, roffset int, imm uint32, signaled bool) {
	qp.mustRC()
	p := &rcPending{wrID: wrID, dst: qp.peer, op: wireWrite, mr: mr, offset: offset,
		length: length, rkey: rkey, roffset: roffset, imm: imm, signaled: signaled}
	qp.startRC(p)
}

// PostReadRC fetches length bytes from the peer's rkey[roffset] into
// local[localOff]. Completion surfaces as an OpRead CQE. This is the
// primitive the slow-path fetch layer uses to repair dropped chunks.
func (qp *QP) PostReadRC(wrID uint64, local *MR, localOff int, rkey uint32, roffset, length int) {
	qp.mustRC()
	p := &rcPending{wrID: wrID, dst: qp.peer, op: wireReadReq,
		rkey: rkey, roffset: roffset, length: length,
		isRead: true, readDst: local, readOff: localOff, readLen: length,
		readGot: make(map[int]bool), signaled: true}
	qp.startRC(p)
}

func (qp *QP) mustRC() {
	if qp.Transport != RC {
		panic("verbs: RC operation on non-RC QP")
	}
	if !qp.connected {
		panic("verbs: RC QP not connected")
	}
}

func (qp *QP) startRC(p *rcPending) {
	p.posted = qp.ctx.eng.Now()
	p.msgID = qp.ctx.allocMsgID()
	qp.pending[p.msgID] = p
	wire := qp.transmitRC(p)
	qp.armRetransmit(p, wire)
}

// transmitRC sends (or resends) the message's segments. The message id is
// stable across retransmissions so that receiver-side duplicate filtering
// (and requester-side read reassembly) accumulate progress across retries —
// the moral equivalent of hardware go-back-N making forward progress.
func (qp *QP) transmitRC(p *rcPending) sim.Time {
	if p.op == wireReadReq {
		m := &wireMsg{
			op: wireReadReq, srcQPN: qp.N, dstQPN: p.dst.QPN, msgID: p.msgID,
			rkey: p.rkey, roffset: p.roffset, readLen: p.length, nsegs: 1,
		}
		// Reads wait for a response of p.length bytes; budget its wire time
		// into the timeout below via p.length.
		return qp.ctx.inject(p.dst, m, 16, uint64(qp.N))
	}
	return qp.segmentAndSendMsg(p.msgID, p.op, p.dst, p.mr, p.offset, p.length, p.rkey, p.roffset, p.imm)
}

// armRetransmit schedules the retransmission timer. The clock starts when
// the last segment has left the NIC (hardware measures ack timeouts from
// transmission, not from software posting — otherwise deep send queues
// would fire spurious retransmit storms), plus exponential backoff across
// retries.
func (qp *QP) armRetransmit(p *rcPending, wire sim.Time) {
	ctx := qp.ctx
	transfer := sim.Time(float64(p.length) / ctx.f.Config().LinkBandwidth * 2e9)
	rto := ctx.cfg.RetransmitTimeout + transfer
	rto <<= uint(p.retries) // exponential backoff
	deadline := wire + rto
	if now := ctx.eng.Now(); deadline < now {
		deadline = now + rto
	}
	p.timer = ctx.eng.AtHandler(deadline, qp, 0, 0, p)
}

func (qp *QP) retransmit(p *rcPending) {
	if _, live := qp.pending[p.msgID]; !live {
		return // acked while the timer was in flight
	}
	p.retries++
	if p.retries > qp.ctx.cfg.MaxRetries {
		delete(qp.pending, p.msgID)
		qp.sendCQ.Push(CQE{Op: OpErr, QPN: qp.N, WrID: p.wrID})
		return
	}
	qp.Retransmits++
	wire := qp.transmitRC(p)
	qp.armRetransmit(p, wire)
}

func (qp *QP) sendAck(dst Addr, msgID uint64, bytes int) {
	m := &wireMsg{op: wireAck, srcQPN: qp.N, dstQPN: dst.QPN, msgID: msgID, ackBytes: bytes, nsegs: 1}
	qp.ctx.inject(dst, m, 8, uint64(qp.N))
}

func (qp *QP) receiveAck(m *wireMsg) {
	p, ok := qp.pending[m.msgID]
	if !ok {
		return // duplicate ack after retransmission
	}
	delete(qp.pending, m.msgID)
	p.timer.Cancel()
	qp.ctx.complLat.Observe(qp.ctx.eng.Now() - p.posted)
	if p.signaled && !p.isRead {
		qp.sendCQ.Push(CQE{Op: OpSend, QPN: qp.N, WrID: p.wrID, Bytes: p.length})
	}
}

// receiveSendRC delivers a fully reassembled two-sided RC message into a
// posted receive. RC with an empty RQ would RNR-NAK; the retransmission
// timer covers that case, so we simply drop (no ack) here.
func (qp *QP) receiveSendRC(src Addr, m *wireMsg, st *assemblyState) {
	w, ok := qp.popRecv()
	if !ok {
		qp.RNRDrops++
		qp.ctx.RNRDrops++
		return // no ack: sender retries until a receive is posted
	}
	qp.completedRC[assemblyKey{srcHost: src.Host, srcQPN: m.srcQPN, msgID: m.msgID}] = true
	n := st.bytes
	if n > w.length {
		n = w.length
	}
	if st.data != nil {
		w.mr.write(w.offset, st.data, n)
	}
	qp.recvCQ.Push(CQE{
		Op: OpRecv, QPN: qp.N, WrID: w.wrID,
		Imm: m.imm, HasImm: m.hasImm, Bytes: n,
		SrcHost: src.Host, SrcQPN: m.srcQPN,
	})
	qp.sendAck(src, m.msgID, n)
}

// receiveReadReq serves an incoming RDMA Read on the responder: stream the
// requested range back as read-response segments. The NIC serves reads
// without software involvement — no CQE on the responder.
func (qp *QP) receiveReadReq(src Addr, m *wireMsg) {
	mr, ok := qp.ctx.LookupMR(m.rkey)
	if !ok {
		panic(fmt.Sprintf("verbs: read of unknown rkey %d on host %d", m.rkey, qp.ctx.Host))
	}
	mtu := qp.ctx.MTU()
	nsegs := (m.readLen + mtu - 1) / mtu
	if nsegs == 0 {
		nsegs = 1
	}
	for s := 0; s < nsegs; s++ {
		segOff := s * mtu
		segLen := m.readLen - segOff
		if segLen > mtu {
			segLen = mtu
		}
		if segLen < 0 {
			segLen = 0
		}
		resp := &wireMsg{
			op: wireReadResp, srcQPN: qp.N, dstQPN: m.srcQPN,
			msgID: m.msgID, seg: s, nsegs: nsegs,
			roffset: segOff, dataLen: segLen,
		}
		if segLen > 0 {
			resp.data = mr.read(m.roffset+segOff, segLen)
		}
		qp.ctx.inject(src, resp, segLen, uint64(qp.N))
	}
}

// receiveReadResp accumulates read-response segments on the requester.
func (qp *QP) receiveReadResp(m *wireMsg) {
	var p *rcPending
	if q, ok := qp.pending[m.msgID]; ok && q.isRead {
		p = q
	} else {
		return // response to a superseded (retransmitted) read
	}
	if p.readGot[m.seg] {
		return
	}
	p.readGot[m.seg] = true
	p.readRecv += m.dataLen
	p.readDst.write(p.readOff+m.roffset, m.data, m.dataLen)
	if len(p.readGot) == m.nsegs {
		delete(qp.pending, m.msgID)
		p.timer.Cancel()
		qp.sendCQ.Push(CQE{Op: OpRead, QPN: qp.N, WrID: p.wrID, Bytes: p.readRecv})
	}
}

// receive is the per-QP packet demultiplexer.
func (qp *QP) receive(pkt *fabric.Packet, m *wireMsg) {
	src := Addr{Host: pkt.Src, QPN: m.srcQPN, Group: fabric.NoGroup}
	switch m.op {
	case wireSendUD:
		qp.receiveUD(src, m)
	case wireWrite:
		qp.receiveWrite(src, m, qp.Transport == RC)
	case wireSendRC:
		qp.receiveSendSegment(src, m)
	case wireAck:
		qp.receiveAck(m)
	case wireReadReq:
		qp.receiveReadReq(src, m)
	case wireReadResp:
		qp.receiveReadResp(m)
	default:
		panic("verbs: unknown wire op")
	}
}

// receiveSendSegment reassembles two-sided RC messages.
func (qp *QP) receiveSendSegment(src Addr, m *wireMsg) {
	key := assemblyKey{srcHost: src.Host, srcQPN: m.srcQPN, msgID: m.msgID}
	if qp.completedRC[key] {
		qp.sendAck(src, m.msgID, 0)
		return
	}
	st := qp.assembly[key]
	if st == nil {
		st = &assemblyState{got: make([]bool, m.nsegs)}
		qp.assembly[key] = st
	}
	if st.got[m.seg] {
		return
	}
	st.got[m.seg] = true
	st.have++
	st.bytes += m.dataLen
	if m.data != nil {
		mtu := qp.ctx.MTU()
		if st.data == nil {
			st.data = make([]byte, m.nsegs*mtu)
		}
		copy(st.data[m.seg*mtu:], m.data)
	}
	if st.have == m.nsegs {
		delete(qp.assembly, key)
		qp.receiveSendRC(src, m, st)
	}
}
