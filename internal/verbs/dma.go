package verbs

import "repro/internal/sim"

// DMAEngine models the NIC/host DMA path used for staging-to-user copies
// (step 4 in the paper's Figure 6 receive pipeline). Copies are
// non-blocking: they queue on the engine, serialize at PCIe bandwidth, and
// complete after an additional fixed latency (the 1–3 µs PCIe round trip
// the paper cites). Overlapping reception with these copies is what makes
// the staging design viable — the protocol only waits for DMA completions
// at the very end of a collective.
type DMAEngine struct {
	eng      *sim.Engine
	bw       float64 // bytes/sec
	latency  sim.Time
	nextFree sim.Time

	// Copies and BytesCopied count completed transfers.
	Copies      uint64
	BytesCopied uint64
}

func newDMAEngine(eng *sim.Engine, bw float64, latency sim.Time) *DMAEngine {
	return &DMAEngine{eng: eng, bw: bw, latency: latency}
}

// Enqueue schedules a copy of n bytes. done (optional) runs at completion
// time. Enqueue never blocks the caller: the posting cost on the worker is
// accounted by the execution model, not here.
func (d *DMAEngine) Enqueue(n int, done func()) sim.Time {
	if n < 0 {
		panic("verbs: negative DMA length")
	}
	start := d.nextFree
	if now := d.eng.Now(); start < now {
		start = now
	}
	d.nextFree = start + sim.Time(float64(n)/d.bw*1e9)
	completion := d.nextFree + d.latency
	d.eng.AtHandler(completion, d, 0, n, done)
	return completion
}

// OnEvent completes one staged copy; arg1 is the byte count, obj the
// caller's optional done callback.
func (d *DMAEngine) OnEvent(_ *sim.Engine, _ sim.Handle, _ uint64, arg1 int, obj any) {
	d.Copies++
	d.BytesCopied += uint64(arg1)
	if done, ok := obj.(func()); ok && done != nil {
		done()
	}
}

// Quiesced returns the earliest time at which all currently queued copies
// will have completed.
func (d *DMAEngine) Quiesced() sim.Time {
	now := d.eng.Now()
	if d.nextFree <= now {
		return now // engine idle: nothing outstanding
	}
	return d.nextFree + d.latency
}
