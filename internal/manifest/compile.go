package manifest

import (
	"fmt"
	"io"
	"slices"

	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Plan is a compiled manifest: the report name plus one executable section
// per experiment the manifest enables. Compiling performs no simulation —
// it only resolves defaults, expands "all" axes, and wires the sweep
// grids onto their harness kernels — so `repro validate` can compile
// every manifest cheaply as its deepest cross-check.
type Plan struct {
	// Manifest is the (validated) source spec.
	Manifest Manifest
	// Name is the resolved report name.
	Name string
	// Sections are executed in order; their records concatenate into the
	// report.
	Sections []Section
	// Trace re-runs one representative point with a protocol tracer and an
	// always-on telemetry registry attached, and returns the bundle — the
	// Figure-9 phase events plus the traced run's metric snapshot, which
	// renders as a text timeline or a Perfetto JSON document. Nil when the
	// kind has no traceable point. The traced run is separate from the
	// sweep, so records stay byte-identical.
	Trace func() (*telemetry.Bundle, error)
	// ReplaySpec names the point `repro replay` seeks and steps through: a
	// quiet collective cell of the plan (the replay debugger rewinds model
	// state, which scenario injectors' closures opt out of). Nil when the
	// kind has no replayable point.
	ReplaySpec *sweep.Spec
}

// Section is one experiment of a plan: either a sweep (Specs through
// Kernel on the worker pool, then Post) or a self-contained analytic Run.
type Section struct {
	// Header and Note frame the section's table on stdout.
	Header string
	Note   string
	// Grid is the declarative form behind Specs when the section is a
	// single grid (nil for composed spec lists), kept for introspection
	// and round-trip tests.
	Grid *sweep.Grid
	// Specs are the expanded points; Kernel executes one of them.
	Specs  []sweep.Spec
	Kernel sweep.Func
	// Warm, when non-nil, switches the section to the snapshot/fork path:
	// Execute runs the specs through sweep.RunWarm instead of sweep.Run.
	// Records stay byte-identical to the Kernel path.
	Warm sweep.Warmable
	// Post annotates the section's records after the sweep (slowdowns,
	// savings); optional.
	Post func([]sweep.Record)
	// Run replaces the sweep entirely for analytic sections; optional.
	Run func() ([]sweep.Record, error)
}

// Compile validates the manifest and lowers it onto sweep grids and
// harness kernels.
func Compile(m Manifest) (*Plan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{Manifest: m}
	var err error
	switch m.Kind {
	case "osu":
		err = p.compileOSU()
	case "chaos":
		err = p.compileChaos()
	case "train":
		err = p.compileTrain()
	case "traffic":
		err = p.compileTraffic()
	case "dpa":
		err = p.compileDPA()
	case "cost":
		err = p.compileCost()
	case "ag":
		err = p.compileAG()
	}
	if err != nil {
		return nil, err
	}
	if m.Name != "" {
		p.Name = m.Name
	}
	return p, nil
}

// Execute runs every section on the worker pool, streaming each section's
// header, table and note to w, and returns the combined report. workers
// <= -1 selects the manifest's Workers field; results are byte-identical
// at any worker count. The engine shard count must already be configured
// (harness.SetShards) — Execute does not touch process-global state.
func (p *Plan) Execute(workers int, w io.Writer) (sweep.Report, error) {
	if workers < 0 {
		workers = p.Manifest.Workers
	}
	var all []sweep.Record
	for _, sec := range p.Sections {
		var recs []sweep.Record
		var err error
		switch {
		case sec.Run != nil:
			recs, err = sec.Run()
		case sec.Warm != nil:
			recs, err = sweep.RunWarm(sec.Specs, workers, sec.Warm)
		default:
			recs, err = sweep.Run(sec.Specs, workers, sec.Kernel)
		}
		if err != nil {
			return sweep.Report{}, err
		}
		if sec.Post != nil {
			sec.Post(recs)
		}
		if sec.Header != "" {
			fmt.Fprintln(w, sec.Header)
		}
		if err := sweep.WriteTable(w, recs); err != nil {
			return sweep.Report{}, err
		}
		if sec.Note != "" {
			fmt.Fprintln(w, sec.Note)
		}
		all = append(all, recs...)
	}
	return sweep.Report{Name: p.Name, Records: all}, nil
}

// grid appends a single-grid section.
func (p *Plan) grid(header, note string, g sweep.Grid, kernel sweep.Func, post func([]sweep.Record)) {
	p.Sections = append(p.Sections, Section{
		Header: header, Note: note,
		Grid: &g, Specs: g.Expand(), Kernel: kernel, Post: post,
	})
}

// specs appends a composed-spec section.
func (p *Plan) specs(header, note string, specs []sweep.Spec, kernel sweep.Func) {
	p.Sections = append(p.Sections, Section{
		Header: header, Note: note, Specs: specs, Kernel: kernel,
	})
}

// analytic appends a self-contained section.
func (p *Plan) analytic(header, note string, run func() ([]sweep.Record, error)) {
	p.Sections = append(p.Sections, Section{Header: header, Note: note, Run: run})
}

// expandScenarios resolves the scenario axis: "all" expands to every
// preset, and — when anchor is true — "quiet" is prepended when missing so
// slowdown_vs_quiet always has its anchor point.
func expandScenarios(scenarios []string, anchor bool) []string {
	if len(scenarios) == 1 && scenarios[0] == "all" {
		scenarios = scenario.Names()
	}
	if anchor && len(scenarios) > 0 && !slices.Contains(scenarios, scenario.Quiet) {
		scenarios = append([]string{scenario.Quiet}, scenarios...)
	}
	return scenarios
}

func (p *Plan) compileOSU() error {
	m := p.Manifest
	cfg := harness.OSUConfig{Iters: 10, Warmup: 2, LinkGbps: 56}
	if o := m.OSU; o != nil {
		if o.Iters > 0 {
			cfg.Iters = o.Iters
		}
		if o.Warmup != nil {
			cfg.Warmup = *o.Warmup
		}
		if o.LinkGbps > 0 {
			cfg.LinkGbps = o.LinkGbps
		}
		cfg.JitterUS = o.JitterUS
	}
	g := sweep.Grid{
		Algorithms: m.Grid.Algorithms,
		Ops:        m.Grid.Ops,
		Nodes:      m.Grid.Nodes,
		MsgBytes:   m.Grid.Sizes,
		Seed:       m.SeedOr(1),
	}
	p.Name = "osu"
	if len(m.Grid.Algorithms) == 1 {
		p.Name = "osu-" + m.Grid.Algorithms[0]
	}
	header := fmt.Sprintf("# OSU-style sweep: %v, nodes %v, %.0f Gbit/s links, %d iters (+%d warmup)",
		m.Grid.Algorithms, m.Grid.Nodes, cfg.LinkGbps, cfg.Iters, cfg.Warmup)
	p.grid(header, "", g, harness.OSUKernel(cfg), nil)
	if m.WarmStart {
		p.Sections[0].Warm = harness.WarmOSU(cfg)
	}
	specs := p.Sections[0].Specs
	p.Trace = func() (*telemetry.Bundle, error) {
		// The last (largest) size point is the representative run.
		return harness.CollTrace(specs[len(specs)-1], cfg.LinkGbps)
	}
	p.ReplaySpec = &specs[len(specs)-1]
	return nil
}

func (p *Plan) compileChaos() error {
	m := p.Manifest
	scenarios := expandScenarios(m.Grid.Scenarios, true)
	g := harness.ResilienceGrid(m.Grid.Algorithms, scenarios,
		m.Grid.Nodes[0], m.Grid.Sizes[0], m.SeedOr(7))
	p.Name = "chaosbench"
	header := fmt.Sprintf("== chaosbench: %d algorithms x %d scenarios, %d nodes, %d B messages ==",
		len(m.Grid.Algorithms), len(scenarios), m.Grid.Nodes[0], m.Grid.Sizes[0])
	p.grid(header, "slowdown_vs_quiet is each point's duration over its quiet sibling's.",
		g, harness.ResilienceKernel, harness.AnnotateSlowdown)
	if m.WarmStart {
		p.Sections[0].Warm = harness.WarmResilience{}
	}
	specs := p.Sections[0].Specs
	p.Trace = func() (*telemetry.Bundle, error) {
		// The last point is the representative run: grids expand scenarios
		// last, so it carries a real perturbation (not the quiet anchor)
		// whenever the manifest names one.
		return harness.ChaosTrace(specs[len(specs)-1])
	}
	// The first point is the quiet anchor (expandScenarios prepends it),
	// the only scenario the replay debugger supports.
	p.ReplaySpec = &specs[0]
	return nil
}

func (p *Plan) compileTrain() error {
	m := p.Manifest
	cfg := harness.TrainConfig{Layers: 6, Compute: 150 * sim.Microsecond, Jobs: 2}
	if t := m.Train; t != nil {
		if t.Layers > 0 {
			cfg.Layers = t.Layers
		}
		if t.ComputeUS > 0 {
			cfg.Compute = sim.Time(t.ComputeUS) * sim.Microsecond
		}
		if t.Jobs > 0 {
			cfg.Jobs = t.Jobs
		}
	}
	workloads := m.Grid.Workloads
	if len(workloads) == 1 && workloads[0] == "all" {
		workloads = workload.Names()
	}
	scenarios := expandScenarios(m.Grid.Scenarios, true)
	g := harness.TrainGrid(workloads, m.Grid.Nodes, []int(m.Grid.Sizes), scenarios, m.SeedOr(21))
	p.Name = "trainbench"
	header := fmt.Sprintf("== trainbench: %d workloads x %d scenarios, %d nodes, %d KiB shards, %d layers ==",
		len(workloads), max(1, len(scenarios)), m.Grid.Nodes[0], m.Grid.Sizes[0]>>10, cfg.Layers)
	var post func([]sweep.Record)
	if len(scenarios) > 0 {
		post = harness.AnnotateSlowdown
	}
	p.grid(header, "overlap_frac is the share of communication hidden behind compute or other communication.",
		g, harness.TrainKernel(cfg), post)
	if m.WarmStart {
		p.Sections[0].Warm = harness.WarmTrain(cfg)
	}
	specs := p.Sections[0].Specs
	p.Trace = func() (*telemetry.Bundle, error) {
		return harness.TrainTrace(specs[0], cfg)
	}
	return nil
}

func (p *Plan) compileTraffic() error {
	m := p.Manifest
	iters := 10
	if m.Traffic != nil && m.Traffic.Iters > 0 {
		iters = m.Traffic.Iters
	}
	p.Name = "trafficbench-fig12"
	header := fmt.Sprintf("== Figure 12: switch-port traffic, %d nodes, %d B messages, %d iterations ==",
		m.Grid.Nodes[0], m.Grid.Sizes[0], iters)
	p.specs(header, "paper: multicast reduces data movement 1.5x (broadcast) to 2x (allgather).",
		harness.Fig12Specs(m.Grid.Nodes[0], m.Grid.Sizes[0]), harness.Fig12Kernel(iters))
	p.Sections[0].Post = harness.AnnotateSavings
	specs := p.Sections[0].Specs
	p.Trace = func() (*telemetry.Bundle, error) {
		// The first cell is mcast-broadcast — the protocol under study.
		return harness.CollTrace(specs[0], 56)
	}
	p.ReplaySpec = &specs[0]
	return nil
}

func (p *Plan) compileDPA() error {
	m := p.Manifest
	p.Name = "dpabench"
	has := func(fig int) bool { return m.All || slices.Contains(m.Figures, fig) }
	if has(5) {
		p.specs("== Figure 5: single-threaded CPU vs single-core DPA UD datapath (200 Gbit/s link) ==",
			"paper: one CPU core sustains ~1/2-2/3 of 200 Gbit/s; one DPA core reaches peak.",
			harness.Fig5Specs([]int{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 8 << 20}),
			harness.RxKernel)
	}
	if m.All || slices.Contains(m.Tables, 1) {
		p.grid("== Table I: single DPA thread, 8 MiB buffer, 4 KiB chunks ==",
			"paper: UC 11.9 GiB/s, 66 instr, 598 cycles, IPC 0.11; UD 5.2 GiB/s, 113 instr, 1084 cycles, IPC 0.10.",
			harness.Table1Grid(), harness.RxKernel, nil)
	}
	if has(13) || has(14) {
		p.specs("== Figures 13/14: DPA thread scaling, 8 MiB receive buffer, 4 KiB chunks (last row: CPU baseline) ==",
			"paper: UC reaches full throughput with 4 threads; UD needs 8-16 (1/256 of DPA capacity: UC 1/2, UD 1/5 of peak).",
			harness.Fig13Specs([]int{1, 2, 4, 8, 16}), harness.RxKernel)
	}
	if has(15) {
		p.grid("== Figure 15: UC throughput vs multi-packet chunk size (8 MiB buffer) ==",
			"paper: with larger chunks DPA sustains line rate with fewer threads.",
			harness.Fig15Grid([]int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}, []int{1, 2, 4}),
			harness.RxKernel, nil)
	}
	if has(16) {
		p.grid("== Figure 16: sustained 64 B chunk processing rate vs DPA threads (link_share: x 1.6 Tbit/s target) ==",
			fmt.Sprintf("target: %.1f Mchunks/s (1.6 Tbit/s at 4 KiB MTU). paper: 128 threads sustain it.",
				harness.Tbit16Target/1e6),
			harness.Fig16Grid([]int{1, 2, 4, 8, 16, 32, 64, 128}), harness.Fig16Kernel, nil)
	}
	return nil
}

func (p *Plan) compileCost() error {
	m := p.Manifest
	p.Name = "costmodel"
	if m.All || slices.Contains(m.Figures, 2) {
		p.analytic("== Figure 2: theoretical Allgather traffic, 1024 nodes, radix-32 fat-tree ==",
			"paper: multicast-based Allgather halves total network traffic at scale.",
			harness.Fig2Records)
	}
	if m.All || slices.Contains(m.Figures, 7) {
		p.analytic("== Figure 7: bitmap and receive-buffer sizes vs PSN bits (4 KiB chunks) ==",
			harness.Fig7Note(),
			func() ([]sweep.Record, error) { return harness.Fig7Records(), nil })
	}
	if m.All || m.Speedup {
		p.specs("== Appendix B: concurrent {Allgather, Reduce-Scatter} span (model_speedup: 2 - 2/P) ==",
			"paper: concurrent collectives speed up by up to 2x at scale (ring-pair span / inc-pair span).",
			harness.AppBSpecs([]int{2, 4, 8, 16}, 1<<20), harness.AppBKernel)
	}
	if m.All || m.Economics {
		p.analytic("== §VII: economics of SmartNIC offloading (SuperPOD node) ==",
			"paper: NICs ~2.5x lower cost and ~7x lower energy than the CPUs.",
			func() ([]sweep.Record, error) { return harness.EconRecords(), nil })
	}
	return nil
}

func (p *Plan) compileAG() error {
	m := p.Manifest
	fig := m.Figures[0]
	p.Name = fmt.Sprintf("agbench-fig%d", fig)
	switch fig {
	case 10:
		nodes, sizes := m.Grid.Nodes, []int(m.Grid.Sizes)
		if len(nodes) == 0 {
			nodes = []int{4, 16, 64, 188}
		}
		if len(sizes) == 0 {
			sizes = []int{4096, 65536, 1 << 20}
		}
		p.grid("== Figure 10: Allgather critical-path breakdown (median across ranks) ==",
			"paper: from 16 nodes on, 99% of progress-path time is the multicast datapath.",
			harness.Fig10Grid(nodes, sizes), harness.CollKernel, nil)
	case 11:
		nodes, sizes := 188, []int(m.Grid.Sizes)
		if len(m.Grid.Nodes) == 1 {
			nodes = m.Grid.Nodes[0]
		}
		if len(sizes) == 0 {
			sizes = []int{16 << 10, 64 << 10, 256 << 10, 1 << 20}
		}
		p.specs(fmt.Sprintf("== Figure 11: per-rank receive throughput at %d nodes (56 Gbit/s links) ==", nodes),
			"paper: mcast broadcast beats k-nomial/binary tree; mcast allgather matches ring at 128-256 KiB.",
			harness.Fig11Specs(nodes, sizes), harness.CollKernel)
	}
	specs := p.Sections[0].Specs
	var traced sweep.Spec
	if fig == 10 {
		// The last point is the largest (nodes, size) cell.
		traced = specs[len(specs)-1]
	} else {
		// The first figure-11 point is mcast-broadcast at the smallest size.
		traced = specs[0]
	}
	p.Trace = func() (*telemetry.Bundle, error) {
		return harness.CollTrace(traced, 56)
	}
	p.ReplaySpec = &traced
	return nil
}
