package manifest

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// This file is a deliberately small YAML-subset reader: enough of the
// language for hand-written experiment manifests — block mappings and
// sequences by indentation, flow sequences of scalars, quoted and bare
// scalars, comments — and nothing more (no anchors, aliases, multi-line
// scalars, tags or multiple documents). The repository takes no external
// dependencies, and manifests are flat little documents; the subset is
// converted to JSON and decoded through the same strict path as .json
// files, so unknown-field rejection and validation behave identically.

// yline is one significant manifest line: its indentation depth, content
// with comments stripped, and 1-based source line for error messages.
type yline struct {
	indent int
	text   string
	num    int
}

// yamlToJSON converts the YAML subset to JSON bytes.
func yamlToJSON(b []byte) ([]byte, error) {
	lines, err := ylex(string(b))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	v, next, err := yparse(lines, 0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("yaml: line %d: unexpected indentation", lines[next].num)
	}
	return json.Marshal(v)
}

// ylex splits the document into significant lines: blank and comment-only
// lines are dropped, inline comments stripped (a ' #' outside quotes),
// indentation measured in spaces (tabs are rejected, as in YAML proper).
func ylex(doc string) ([]yline, error) {
	var out []yline
	for num, raw := range strings.Split(doc, "\n") {
		line := strings.TrimRight(raw, " \r")
		trimmed := strings.TrimLeft(line, " ")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if strings.Contains(line[:len(line)-len(trimmed)], "\t") || strings.HasPrefix(trimmed, "\t") {
			return nil, fmt.Errorf("yaml: line %d: tabs are not allowed in indentation", num+1)
		}
		out = append(out, yline{
			indent: len(line) - len(trimmed),
			text:   stripComment(trimmed),
			num:    num + 1,
		})
	}
	return out, nil
}

// stripComment removes an inline comment: the first " #" whose '#' is not
// inside single or double quotes.
func stripComment(s string) string {
	inS, inD := false, false
	for i, r := range s {
		switch {
		case r == '\'' && !inD:
			inS = !inS
		case r == '"' && !inS:
			inD = !inD
		case r == '#' && !inS && !inD && i > 0 && s[i-1] == ' ':
			return strings.TrimRight(s[:i], " ")
		}
	}
	return s
}

// yparse parses one block node (mapping or sequence) starting at lines[i],
// whose items sit at exactly indent. It returns the node and the index of
// the first line it did not consume.
func yparse(lines []yline, i, indent int) (interface{}, int, error) {
	if lines[i].indent != indent {
		return nil, i, fmt.Errorf("yaml: line %d: unexpected indentation", lines[i].num)
	}
	if isSeqItem(lines[i].text) {
		return yparseSeq(lines, i, indent)
	}
	return yparseMap(lines, i, indent)
}

func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// yparseMap parses "key: value" lines at one indent level; a key with no
// inline value takes the more-indented block below it as its value.
func yparseMap(lines []yline, i, indent int) (interface{}, int, error) {
	m := map[string]interface{}{}
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if isSeqItem(ln.text) {
			return nil, i, fmt.Errorf("yaml: line %d: sequence item in mapping", ln.num)
		}
		key, rest, ok := cutKey(ln.text)
		if !ok {
			return nil, i, fmt.Errorf("yaml: line %d: expected \"key: value\"", ln.num)
		}
		if _, dup := m[key]; dup {
			return nil, i, fmt.Errorf("yaml: line %d: duplicate key %q", ln.num, key)
		}
		if rest != "" {
			v, err := yscalarOrFlow(rest, ln.num)
			if err != nil {
				return nil, i, err
			}
			m[key] = v
			i++
			continue
		}
		// Block value: everything below at deeper indentation.
		if i+1 < len(lines) && lines[i+1].indent > indent {
			v, next, err := yparse(lines, i+1, lines[i+1].indent)
			if err != nil {
				return nil, i, err
			}
			m[key] = v
			i = next
			continue
		}
		m[key] = nil
		i++
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, i, fmt.Errorf("yaml: line %d: unexpected indentation", lines[i].num)
	}
	return m, i, nil
}

// yparseSeq parses "- item" lines at one indent level. Items are scalars,
// flow sequences, or nested blocks ("-" alone with a deeper block below).
func yparseSeq(lines []yline, i, indent int) (interface{}, int, error) {
	var seq []interface{}
	for i < len(lines) && lines[i].indent == indent && isSeqItem(lines[i].text) {
		ln := lines[i]
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		if rest != "" {
			v, err := yscalarOrFlow(rest, ln.num)
			if err != nil {
				return nil, i, err
			}
			seq = append(seq, v)
			i++
			continue
		}
		if i+1 < len(lines) && lines[i+1].indent > indent {
			v, next, err := yparse(lines, i+1, lines[i+1].indent)
			if err != nil {
				return nil, i, err
			}
			seq = append(seq, v)
			i = next
			continue
		}
		seq = append(seq, nil)
		i++
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, i, fmt.Errorf("yaml: line %d: unexpected indentation", lines[i].num)
	}
	return seq, i, nil
}

// cutKey splits "key: rest" (or "key:") at the first ':' outside quotes
// that is followed by a space or ends the line.
func cutKey(s string) (key, rest string, ok bool) {
	inS, inD := false, false
	for i, r := range s {
		switch {
		case r == '\'' && !inD:
			inS = !inS
		case r == '"' && !inS:
			inD = !inD
		case r == ':' && !inS && !inD:
			if i+1 == len(s) {
				return unquoteScalarKey(s[:i]), "", true
			}
			if s[i+1] == ' ' {
				return unquoteScalarKey(s[:i]), strings.TrimSpace(s[i+1:]), true
			}
		}
	}
	return "", "", false
}

// unquoteScalarKey strips optional quotes from a mapping key.
func unquoteScalarKey(s string) string {
	s = strings.TrimSpace(s)
	if v, err := yscalar(s, 0); err == nil {
		if str, isStr := v.(string); isStr {
			return str
		}
	}
	return s
}

// yscalarOrFlow parses an inline value: a flow sequence "[a, b]" or a
// scalar.
func yscalarOrFlow(s string, num int) (interface{}, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("yaml: line %d: unterminated flow sequence", num)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []interface{}{}, nil
		}
		var seq []interface{}
		for _, part := range splitFlow(inner) {
			v, err := yscalar(strings.TrimSpace(part), num)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		}
		return seq, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("yaml: line %d: flow mappings are outside the supported subset", num)
	}
	return yscalar(s, num)
}

// splitFlow splits a flow-sequence body on commas outside quotes.
func splitFlow(s string) []string {
	var parts []string
	inS, inD := false, false
	start := 0
	for i, r := range s {
		switch {
		case r == '\'' && !inD:
			inS = !inS
		case r == '"' && !inS:
			inD = !inD
		case r == ',' && !inS && !inD:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

// yscalar parses one scalar: quoted strings, null, booleans, integers,
// floats, and bare strings.
func yscalar(s string, num int) (interface{}, error) {
	switch {
	case strings.HasPrefix(s, "\""):
		v, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("yaml: line %d: bad string %s", num, s)
		}
		return v, nil
	case strings.HasPrefix(s, "'"):
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return nil, fmt.Errorf("yaml: line %d: bad string %s", num, s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	switch s {
	case "null", "~":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
