package manifest

import (
	"reflect"
	"strings"
	"testing"
)

func TestYAMLEquivalentToJSON(t *testing.T) {
	// The same manifest written both ways decodes to the same struct.
	yaml := strings.Join([]string{
		"# a comment",
		"kind: chaos",
		"grid:",
		"  algorithms: [mcast-allgather, ring-allgather]",
		"  scenarios:",
		"    - quiet",
		"    - flap-spine  # inline comment",
		"  nodes: [32]",
		"  sizes: [65536]",
		"seed: 7",
		"workers: 1",
		"",
	}, "\n")
	jb, err := yamlToJSON([]byte(yaml))
	if err != nil {
		t.Fatal(err)
	}
	fromYAML, err := Parse(jb)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON := parseOK(t, `{
		"kind": "chaos",
		"grid": {
			"algorithms": ["mcast-allgather", "ring-allgather"],
			"scenarios": ["quiet", "flap-spine"],
			"nodes": [32],
			"sizes": [65536]
		},
		"seed": 7,
		"workers": 1
	}`)
	if !reflect.DeepEqual(fromYAML, fromJSON) {
		t.Fatalf("YAML and JSON decode differently:\n%+v\nvs\n%+v", fromYAML, fromJSON)
	}
}

func TestYAMLScalars(t *testing.T) {
	yaml := strings.Join([]string{
		"kind: osu",
		"name: \"quoted name\"",
		"grid:",
		"  algorithms: ['mcast-allgather']",
		"  nodes: [16]",
		"  sizes: \"4096:16384\"",
		"osu:",
		"  link_gbps: 56.5",
		"",
	}, "\n")
	jb, err := yamlToJSON([]byte(yaml))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(jb)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "quoted name" {
		t.Fatalf("name = %q", m.Name)
	}
	if want := (Sizes{4096, 8192, 16384}); !reflect.DeepEqual(m.Grid.Sizes, want) {
		t.Fatalf("sizes = %v, want %v", m.Grid.Sizes, want)
	}
	if m.OSU == nil || m.OSU.LinkGbps != 56.5 {
		t.Fatalf("osu = %+v", m.OSU)
	}
}

func TestYAMLRejections(t *testing.T) {
	cases := []struct {
		name, yaml, want string
	}{
		{"tab indent", "kind: osu\n\tname: x\n", "tabs"},
		{"empty", "# only a comment\n", "empty document"},
		{"flow mapping", "grid: {nodes: [8]}\n", "flow mapping"},
		{"unterminated flow", "nodes: [8, 16\n", "unterminated"},
		{"duplicate key", "kind: osu\nkind: chaos\n", "duplicate key"},
		{"bare text", "kind osu\n", "key: value"},
		{"dedent jump", "grid:\n    nodes: [8]\n  sizes: [4]\n", "indentation"},
		{"unknown field via yaml", "kind: osu\nbogus: 1\n", "bogus"},
	}
	for _, c := range cases {
		jb, err := yamlToJSON([]byte(c.yaml))
		if err == nil {
			_, err = Parse(jb)
		}
		if err == nil {
			t.Errorf("%s: expected error containing %q, got nil", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}
