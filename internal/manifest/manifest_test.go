package manifest

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sweep"
)

func parseOK(t *testing.T, src string) Manifest {
	t.Helper()
	m, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse(%s): %v", src, err)
	}
	return m
}

func parseErr(t *testing.T, src, want string) {
	t.Helper()
	_, err := Parse([]byte(src))
	if err == nil {
		t.Fatalf("Parse(%s): expected error containing %q, got nil", src, want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("Parse(%s): error %q does not contain %q", src, err, want)
	}
}

func TestParseSizes(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"4096:16384", []int{4096, 8192, 16384}},
		{"4096:4096", []int{4096}},
		{"1024, 4096", []int{1024, 4096}},
		{"65536", []int{65536}},
	}
	for _, c := range cases {
		got, err := ParseSizes(c.in)
		if err != nil {
			t.Fatalf("ParseSizes(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("ParseSizes(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"0:4096", "8:4", "a:b", "4096,x", ""} {
		if _, err := ParseSizes(bad); err == nil {
			t.Fatalf("ParseSizes(%q): expected error", bad)
		}
	}
}

func TestSizesStringForms(t *testing.T) {
	// All three spellings of the sizes axis decode to the same ints.
	array := parseOK(t, `{"kind":"osu","grid":{"algorithms":["mcast-allgather"],"nodes":[8],"sizes":[4096,8192,16384]}}`)
	rng := parseOK(t, `{"kind":"osu","grid":{"algorithms":["mcast-allgather"],"nodes":[8],"sizes":"4096:16384"}}`)
	list := parseOK(t, `{"kind":"osu","grid":{"algorithms":["mcast-allgather"],"nodes":[8],"sizes":"4096,8192,16384"}}`)
	if !reflect.DeepEqual(array.Grid.Sizes, rng.Grid.Sizes) || !reflect.DeepEqual(array.Grid.Sizes, list.Grid.Sizes) {
		t.Fatalf("sizes forms disagree: %v / %v / %v", array.Grid.Sizes, rng.Grid.Sizes, list.Grid.Sizes)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	// Top level, nested object, and the grid all reject unknown keys.
	parseErr(t, `{"kind":"osu","bogus":1}`, "bogus")
	parseErr(t, `{"kind":"osu","grid":{"algorithms":["mcast-allgather"],"nodes":[8],"sizes":[4096],"sizzes":[1]}}`, "sizzes")
	parseErr(t, `{"kind":"osu","grid":{"algorithms":["mcast-allgather"],"nodes":[8],"sizes":[4096]},"osu":{"itters":5}}`, "itters")
	parseErr(t, `{"kind":"osu","grid":{"algorithms":["mcast-allgather"],"nodes":[8],"sizes":[4096]}} {"kind":"osu"}`, "trailing data")
}

func TestValidateKindConsumption(t *testing.T) {
	// A field a kind does not consume is an error, not silence.
	parseErr(t, `{"kind":"dpa","all":true,"grid":{"nodes":[8]}}`, "does not consume grid.nodes")
	parseErr(t, `{"kind":"traffic","grid":{"nodes":[8],"sizes":[4096]},"seed":3}`, "does not consume seed")
	parseErr(t, `{"kind":"osu","grid":{"algorithms":["mcast-allgather"],"nodes":[8],"sizes":[4096]},"train":{"layers":2}}`, "does not consume train")
	parseErr(t, `{"kind":"cost","all":true,"tables":[1]}`, "does not consume tables")
}

func TestValidateCrossChecks(t *testing.T) {
	parseErr(t, `{"kind":"osu","grid":{"algorithms":["nope-allgather"],"nodes":[8],"sizes":[4096]}}`, "unknown algorithm")
	parseErr(t, `{"kind":"osu","grid":{"algorithms":["mcast-allgather"],"ops":["broadcast"],"nodes":[8],"sizes":[4096]}}`, "does not match algorithm")
	parseErr(t, `{"kind":"osu","grid":{"algorithms":["mcast-allgather"],"nodes":[500],"sizes":[4096]}}`, "[1,188]")
	parseErr(t, `{"kind":"chaos","grid":{"algorithms":["mcast-allgather"],"scenarios":["hurricane"],"nodes":[8],"sizes":[4096]}}`, "hurricane")
	parseErr(t, `{"kind":"train","grid":{"workloads":["nope"],"nodes":[8],"sizes":[4096]}}`, "unknown workload")
	parseErr(t, `{"kind":"ag","figures":[12]}`, "exactly one figure")
	parseErr(t, `{"kind":"dpa","figures":[6]}`, "no figure 6")
	parseErr(t, `{"kind":"cost","figures":[3]}`, "no figure 3")
	parseErr(t, `{"kind":"zebra"}`, "unknown kind")
}

// TestCheckedInManifestsCanonical pins the canonical form of everything
// under manifests/: each JSON document must re-encode to its own bytes
// (Parse∘Encode is the identity), and every manifest must compile.
func TestCheckedInManifestsCanonical(t *testing.T) {
	dir := filepath.Join("..", "..", "manifests")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	seen := 0
	for _, e := range entries {
		path := filepath.Join(dir, e.Name())
		m, err := ParseFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if _, err := Compile(m); err != nil {
			t.Errorf("%s: compile: %v", path, err)
		}
		if filepath.Ext(path) != ".json" {
			continue
		}
		seen++
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got := m.Encode(); string(got) != string(raw) {
			t.Errorf("%s is not in canonical form; run it through manifest.Encode:\n%s", path, got)
		}
	}
	if seen == 0 {
		t.Fatalf("no JSON manifests found in %s", dir)
	}
}

// TestRoundTripThroughGrid walks a manifest to its compiled sweep.Grid and
// back: the grid the PR manifest compiles to must be exactly the legacy
// cmd/osu CI grid, and re-encoding the parsed manifest must be stable.
func TestRoundTripThroughGrid(t *testing.T) {
	m, err := ParseFile(filepath.Join("..", "..", "manifests", "pr.json"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "osu-mcast-allgather" {
		t.Fatalf("report name = %q, want osu-mcast-allgather", p.Name)
	}
	if len(p.Sections) != 1 || p.Sections[0].Grid == nil {
		t.Fatalf("expected one grid section, got %+v", p.Sections)
	}
	want := sweep.Grid{
		Algorithms: []string{"mcast-allgather"},
		Ops:        []string{"allgather"},
		Nodes:      []int{32},
		MsgBytes:   []int{4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288, 1048576},
		Seed:       1,
	}
	if !reflect.DeepEqual(*p.Sections[0].Grid, want) {
		t.Fatalf("compiled grid = %+v, want %+v", *p.Sections[0].Grid, want)
	}
	// Encode twice through a parse: canonical form is a fixed point.
	once := m.Encode()
	again, err := Parse(once)
	if err != nil {
		t.Fatal(err)
	}
	if string(again.Encode()) != string(once) {
		t.Fatalf("Encode is not a fixed point:\n%s\nvs\n%s", once, again.Encode())
	}
}

func TestSeedDefaults(t *testing.T) {
	m := parseOK(t, `{"kind":"chaos","grid":{"algorithms":["mcast-allgather"],"scenarios":["quiet"],"nodes":[8],"sizes":[4096]}}`)
	if got := m.SeedOr(7); got != 7 {
		t.Fatalf("SeedOr(7) with absent seed = %d", got)
	}
	m = parseOK(t, `{"kind":"chaos","grid":{"algorithms":["mcast-allgather"],"scenarios":["quiet"],"nodes":[8],"sizes":[4096]},"seed":99}`)
	if got := m.SeedOr(7); got != 99 {
		t.Fatalf("SeedOr(7) with explicit seed = %d", got)
	}
}
