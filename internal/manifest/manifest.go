// Package manifest turns experiments into data: a manifest is a small
// JSON (or YAML-subset) document declaring what to run — a kind naming the
// experiment family (osu, chaos, train, traffic, dpa, cost, ag), the grid
// axes it sweeps, and the run's bookkeeping (seed, workers, shards, output
// paths, a baseline to diff against, an expected output digest) — which
// compiles onto the existing sweep.Grid / harness kernels. The seven
// historical cmd binaries are thin shims that build one of these in memory;
// CI is a matrix over the checked-in specs in manifests/.
//
// The contract mirrors the sweep engine's: the same manifest always
// produces byte-identical JSON output at any worker or shard count, so a
// manifest plus its committed BENCH_*.json is a reproducible experiment.
package manifest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"

	"repro/internal/collective"
	"repro/internal/registry"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// Kinds enumerates the experiment families a manifest can declare, each
// mapping onto one historical cmd binary's wiring.
var Kinds = []string{"osu", "chaos", "train", "traffic", "dpa", "cost", "ag"}

// Manifest is one declarative experiment spec. Field presence is
// kind-checked by Validate: axes a kind does not consume are rejected so a
// drifting manifest fails fast instead of being silently ignored.
type Manifest struct {
	// Kind selects the experiment family: "osu", "chaos", "train",
	// "traffic", "dpa", "cost" or "ag".
	Kind string `json:"kind"`
	// Name overrides the report name embedded in the JSON output. Empty
	// derives the historical name for the kind (e.g. "osu-mcast-allgather",
	// "chaosbench").
	Name string `json:"name,omitempty"`
	// Grid declares the swept axes. Which axes are meaningful (and which
	// required) depends on Kind.
	Grid Grid `json:"grid,omitempty"`
	// Seed is the base sweep seed for kinds that accept one (osu, chaos,
	// train). Nil selects the kind's historical default (1, 7, 21); the
	// fixed-seed kinds (traffic, dpa, cost, ag) reject the field, since
	// their figure definitions pin their own seeds.
	Seed *uint64 `json:"seed,omitempty"`
	// Workers is the sweep worker pool size; 0 means GOMAXPROCS. Results
	// are byte-identical at any value.
	Workers int `json:"workers,omitempty"`
	// Shards is the conservative-parallel engine shard count; 0 and 1 both
	// mean serial. Results are byte-identical at any value.
	Shards int `json:"shards,omitempty"`
	// WarmStart runs the sweep on the snapshot/fork path: grid points that
	// share a construction prefix (everything but seed, message size or
	// scenario, depending on kind) share one built stack per worker and fork
	// it per point. Results are byte-identical to a cold run; only wall-clock
	// changes. Consumed by the osu, chaos and train kinds.
	WarmStart bool `json:"warm_start,omitempty"`
	// Figures selects figures for the dpa (5, 13, 14, 15, 16), cost (2, 7)
	// and ag (10 or 11, exactly one) kinds.
	Figures []int `json:"figures,omitempty"`
	// Tables selects tables for the dpa kind (1).
	Tables []int `json:"tables,omitempty"`
	// Speedup and Economics enable the Appendix-B and §VII studies of the
	// cost kind.
	Speedup   bool `json:"speedup,omitempty"`
	Economics bool `json:"economics,omitempty"`
	// All enables every experiment of the dpa or cost kind.
	All bool `json:"all,omitempty"`
	// OSU carries the measurement-loop knobs of the osu kind.
	OSU *OSUSpec `json:"osu,omitempty"`
	// Train carries the workload knobs of the train kind.
	Train *TrainSpec `json:"train,omitempty"`
	// Traffic carries the counter-methodology knobs of the traffic kind.
	Traffic *TrafficSpec `json:"traffic,omitempty"`
	// Telemetry enables the deterministic metrics registry for the run and
	// names its outputs. Available for every kind; absent means disabled,
	// and the disabled run's report bytes are identical to a build without
	// the telemetry layer at all.
	Telemetry *TelemetrySpec `json:"telemetry,omitempty"`
	// Output names where to persist the report; both paths optional.
	Output Output `json:"output,omitempty"`
	// Baseline declares the report to diff against after the run: the run
	// fails (exit 1) when any shared metric moves more than Tolerance.
	Baseline *Baseline `json:"baseline,omitempty"`
	// Expect pins the expected output: a hex SHA-256 over the report's
	// canonical JSON bytes. The run fails (exit 1) on mismatch.
	Expect *Expect `json:"expect,omitempty"`
}

// Grid declares the manifest's swept axes, mirroring sweep.Grid. Sizes is
// MsgBytes under its manifest name (message bytes for collectives, shard
// bytes for train).
type Grid struct {
	Algorithms []string `json:"algorithms,omitempty"`
	Workloads  []string `json:"workloads,omitempty"`
	Ops        []string `json:"ops,omitempty"`
	Nodes      []int    `json:"nodes,omitempty"`
	Sizes      Sizes    `json:"sizes,omitempty"`
	Scenarios  []string `json:"scenarios,omitempty"`
}

// OSUSpec parameterizes the OSU-style measurement loop.
type OSUSpec struct {
	// Iters is the measured iteration count per point (default 10).
	Iters int `json:"iters,omitempty"`
	// Warmup is the excluded warm-up iteration count. Nil defaults to 2;
	// an explicit 0 disables warm-up (distinct from absent, hence pointer).
	Warmup *int `json:"warmup,omitempty"`
	// LinkGbps is the link bandwidth in Gbit/s (default 56, the testbed).
	LinkGbps float64 `json:"link_gbps,omitempty"`
	// JitterUS adds seeded per-delivery network noise in microseconds.
	JitterUS int `json:"jitter_us,omitempty"`
}

// TrainSpec parameterizes the training-workload kernel.
type TrainSpec struct {
	// Layers is the FSDP model depth (default 6).
	Layers int `json:"layers,omitempty"`
	// ComputeUS is the forward+backward compute per layer in microseconds
	// (default 150, matching the workload presets).
	ComputeUS int `json:"compute_us,omitempty"`
	// Jobs is the tenant count of multi-job presets (default 2).
	Jobs int `json:"jobs,omitempty"`
}

// TrafficSpec parameterizes the switch-counter methodology.
type TrafficSpec struct {
	// Iters is the measured iteration count after the warm-up operation
	// (default 10).
	Iters int `json:"iters,omitempty"`
}

// TelemetrySpec configures the telemetry layer of a run: the virtual-time
// sample period, key filters, and where the canonical metrics document and
// the Perfetto trace of the representative run land.
type TelemetrySpec struct {
	// SamplePeriodUS is the gauge sample period in virtual microseconds
	// (default 100).
	SamplePeriodUS int `json:"sample_period_us,omitempty"`
	// Filters restricts the exported metrics to keys with one of these
	// prefixes (e.g. "fabric/", "core/phase_total"). Empty exports all.
	Filters []string `json:"filters,omitempty"`
	// Metrics is where the canonical metrics.json document is written.
	// Like the report itself it is byte-identical at any -workers and
	// -shards value.
	Metrics string `json:"metrics,omitempty"`
	// Perfetto is where the representative run's Chrome-trace-event JSON is
	// written (open at ui.perfetto.dev). Only kinds with a traceable point
	// support it.
	Perfetto string `json:"perfetto,omitempty"`
	// Expect pins the expected metrics document: a hex SHA-256 over its
	// canonical bytes. The run fails (exit 1) on mismatch.
	Expect string `json:"expect_sha256,omitempty"`
}

// Output names the report's persistence targets.
type Output struct {
	JSON string `json:"json,omitempty"`
	CSV  string `json:"csv,omitempty"`
}

// Baseline declares the -compare behaviour of a run.
type Baseline struct {
	// Path is the baseline BENCH_*.json.
	Path string `json:"path"`
	// Tolerance is the relative tolerance; 0 defaults to 0.05.
	Tolerance float64 `json:"tolerance,omitempty"`
}

// Expect pins expected run output.
type Expect struct {
	// SHA256 is the hex digest of the report's canonical JSON bytes.
	SHA256 string `json:"sha256"`
}

// Sizes is a []int axis that additionally unmarshals from the historical
// -sizes string forms: a doubling range "4096:1048576" or a comma list
// "4096,65536". It always marshals as a plain JSON array — the canonical
// form checked-in manifests use.
type Sizes []int

// UnmarshalJSON accepts an int array or a range/comma string.
func (s *Sizes) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var str string
		if err := json.Unmarshal(b, &str); err != nil {
			return err
		}
		sizes, err := ParseSizes(str)
		if err != nil {
			return err
		}
		*s = sizes
		return nil
	}
	var ints []int
	if err := json.Unmarshal(b, &ints); err != nil {
		return err
	}
	*s = ints
	return nil
}

// ParseSizes parses the -sizes flag grammar shared by the osu subcommand
// and string-form manifest axes: "min:max" doubles from min to max,
// otherwise a comma-separated list.
func ParseSizes(s string) ([]int, error) {
	if strings.Contains(s, ":") {
		lo, hi, _ := strings.Cut(s, ":")
		loN, err := strconv.Atoi(strings.TrimSpace(lo))
		if err != nil {
			return nil, fmt.Errorf("bad size range %q: %w", s, err)
		}
		hiN, err := strconv.Atoi(strings.TrimSpace(hi))
		if err != nil {
			return nil, fmt.Errorf("bad size range %q: %w", s, err)
		}
		if loN <= 0 || hiN < loN {
			return nil, fmt.Errorf("bad size range %q", s)
		}
		var out []int
		for n := loN; n <= hiN; n *= 2 {
			out = append(out, n)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size list %q: %w", s, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// Parse decodes a manifest from JSON bytes, rejecting unknown fields at
// every nesting level so a typo'd or drifting axis fails instead of being
// ignored. The result is validated.
func Parse(b []byte) (Manifest, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("manifest: %w", err)
	}
	// A second document (or trailing garbage) is a malformed manifest.
	if dec.More() {
		return Manifest{}, fmt.Errorf("manifest: trailing data after document")
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// ParseFile loads a manifest from disk, selecting the decoder by
// extension: .json is parsed directly, .yaml/.yml through the YAML-subset
// reader.
func ParseFile(path string) (Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, fmt.Errorf("manifest: %w", err)
	}
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".json":
		m, err := Parse(b)
		if err != nil {
			return Manifest{}, fmt.Errorf("%s: %w", path, err)
		}
		return m, nil
	case ".yaml", ".yml":
		jb, err := yamlToJSON(b)
		if err != nil {
			return Manifest{}, fmt.Errorf("%s: %w", path, err)
		}
		m, err := Parse(jb)
		if err != nil {
			return Manifest{}, fmt.Errorf("%s: %w", path, err)
		}
		return m, nil
	default:
		return Manifest{}, fmt.Errorf("manifest: %s: unknown extension (want .json, .yaml or .yml)", path)
	}
}

// Encode renders the manifest in its canonical form: 2-space-indented JSON
// with struct field order and a trailing newline. Checked-in manifests are
// kept in this form (enforced by test), so Parse∘Encode is the identity on
// them byte for byte.
func (m Manifest) Encode() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		// Manifest has no unmarshalable fields; a failure here is a
		// programming error.
		panic(err)
	}
	return buf.Bytes()
}

// SeedOr returns the manifest seed, or def when the field is absent.
func (m Manifest) SeedOr(def uint64) uint64 {
	if m.Seed != nil {
		return *m.Seed
	}
	return def
}

// --- validation ------------------------------------------------------------------

// field pairs a manifest field's name with whether the manifest sets it,
// for the kind-consumption cross-check.
type field struct {
	name string
	set  bool
}

// fields lists every kind-specific manifest field and its presence.
func (m Manifest) fields() []field {
	return []field{
		{"grid.algorithms", len(m.Grid.Algorithms) > 0},
		{"grid.workloads", len(m.Grid.Workloads) > 0},
		{"grid.ops", len(m.Grid.Ops) > 0},
		{"grid.nodes", len(m.Grid.Nodes) > 0},
		{"grid.sizes", len(m.Grid.Sizes) > 0},
		{"grid.scenarios", len(m.Grid.Scenarios) > 0},
		{"seed", m.Seed != nil},
		{"warm_start", m.WarmStart},
		{"figures", len(m.Figures) > 0},
		{"tables", len(m.Tables) > 0},
		{"speedup", m.Speedup},
		{"economics", m.Economics},
		{"all", m.All},
		{"osu", m.OSU != nil},
		{"train", m.Train != nil},
		{"traffic", m.Traffic != nil},
		{"telemetry", m.Telemetry != nil},
	}
}

// consumes names the kind-specific fields each kind reads. Universal
// fields (name, workers, shards, output, baseline, expect) are always
// legal and not listed.
var consumes = map[string][]string{
	"osu":     {"grid.algorithms", "grid.ops", "grid.nodes", "grid.sizes", "seed", "warm_start", "osu", "telemetry"},
	"chaos":   {"grid.algorithms", "grid.scenarios", "grid.nodes", "grid.sizes", "seed", "warm_start", "telemetry"},
	"train":   {"grid.workloads", "grid.scenarios", "grid.nodes", "grid.sizes", "seed", "warm_start", "train", "telemetry"},
	"traffic": {"grid.nodes", "grid.sizes", "traffic", "telemetry"},
	"dpa":     {"figures", "tables", "all", "telemetry"},
	"cost":    {"figures", "speedup", "economics", "all", "telemetry"},
	"ag":      {"figures", "grid.nodes", "grid.sizes", "telemetry"},
}

// Validate checks the manifest without running anything: kind membership,
// kind/field consumption, axis bounds, and registry cross-checks (algorithm,
// scenario and workload names must exist; osu op axes must match their
// algorithms' operation kinds).
func (m Manifest) Validate() error {
	if !slices.Contains(Kinds, m.Kind) {
		return fmt.Errorf("manifest: unknown kind %q (have %s)", m.Kind, strings.Join(Kinds, ", "))
	}
	allowed := consumes[m.Kind]
	for _, f := range m.fields() {
		if f.set && !slices.Contains(allowed, f.name) {
			return fmt.Errorf("manifest: kind %s does not consume %s", m.Kind, f.name)
		}
	}
	if m.Workers < 0 {
		return fmt.Errorf("manifest: workers must be >= 0, got %d", m.Workers)
	}
	if m.Shards < 0 {
		return fmt.Errorf("manifest: shards must be >= 0, got %d", m.Shards)
	}
	if m.Baseline != nil {
		if m.Baseline.Path == "" {
			return fmt.Errorf("manifest: baseline.path must be set")
		}
		if m.Baseline.Tolerance < 0 {
			return fmt.Errorf("manifest: baseline.tolerance must be >= 0")
		}
	}
	if m.Expect != nil && len(m.Expect.SHA256) != 64 {
		return fmt.Errorf("manifest: expect.sha256 must be 64 hex characters")
	}
	if t := m.Telemetry; t != nil {
		if t.SamplePeriodUS < 0 {
			return fmt.Errorf("manifest: telemetry.sample_period_us must be >= 0")
		}
		if t.Expect != "" && len(t.Expect) != 64 {
			return fmt.Errorf("manifest: telemetry.expect_sha256 must be 64 hex characters")
		}
		if t.Expect != "" && t.Metrics == "" {
			return fmt.Errorf("manifest: telemetry.expect_sha256 needs telemetry.metrics")
		}
	}
	for _, n := range m.Grid.Sizes {
		if n <= 0 {
			return fmt.Errorf("manifest: grid.sizes must be positive, got %d", n)
		}
	}
	switch m.Kind {
	case "osu":
		return m.validateOSU()
	case "chaos":
		return m.validateChaos()
	case "train":
		return m.validateTrain()
	case "traffic":
		return m.validateTraffic()
	case "dpa":
		return m.validateDPA()
	case "cost":
		return m.validateCost()
	case "ag":
		return m.validateAG()
	}
	return nil
}

// checkAlgorithms cross-checks an algorithm axis against the registry.
func checkAlgorithms(algos []string) error {
	for _, a := range algos {
		if !slices.Contains(registry.Names(), a) {
			return fmt.Errorf("manifest: unknown algorithm %q (have %v)", a, registry.Names())
		}
	}
	return nil
}

// checkScenarios cross-checks a scenario axis against the preset registry.
// The single entry "all" is allowed and expands at compile time.
func checkScenarios(scenarios []string) error {
	if len(scenarios) == 1 && scenarios[0] == "all" {
		return nil
	}
	for _, s := range scenarios {
		if _, err := scenario.New(s); err != nil {
			return fmt.Errorf("manifest: %w", err)
		}
	}
	return nil
}

// checkNodes bounds a node axis to the 188-host testbed.
func checkNodes(nodes []int, lo int) error {
	for _, n := range nodes {
		if n < lo || n > 188 {
			return fmt.Errorf("manifest: grid.nodes must be in [%d,188], got %d", lo, n)
		}
	}
	return nil
}

func (m Manifest) validateOSU() error {
	if len(m.Grid.Algorithms) == 0 {
		return fmt.Errorf("manifest: osu needs grid.algorithms")
	}
	if err := checkAlgorithms(m.Grid.Algorithms); err != nil {
		return err
	}
	if len(m.Grid.Nodes) == 0 || len(m.Grid.Sizes) == 0 {
		return fmt.Errorf("manifest: osu needs grid.nodes and grid.sizes")
	}
	if err := checkNodes(m.Grid.Nodes, 1); err != nil {
		return err
	}
	// An explicit op axis must agree with every algorithm's operation kind,
	// or the grid product contains unrunnable points.
	for _, op := range m.Grid.Ops {
		for _, a := range m.Grid.Algorithms {
			kind, err := collective.KindOfAlgorithm(a)
			if err != nil {
				return fmt.Errorf("manifest: %w", err)
			}
			if string(kind) != op {
				return fmt.Errorf("manifest: op %q does not match algorithm %q (operation %s)", op, a, kind)
			}
		}
	}
	if m.OSU != nil {
		if m.OSU.Iters < 0 {
			return fmt.Errorf("manifest: osu.iters must be >= 0")
		}
		if m.OSU.Warmup != nil && *m.OSU.Warmup < 0 {
			return fmt.Errorf("manifest: osu.warmup must be >= 0")
		}
		if m.OSU.LinkGbps < 0 || m.OSU.JitterUS < 0 {
			return fmt.Errorf("manifest: osu.link_gbps and osu.jitter_us must be >= 0")
		}
	}
	return nil
}

func (m Manifest) validateChaos() error {
	if len(m.Grid.Algorithms) == 0 {
		return fmt.Errorf("manifest: chaos needs grid.algorithms")
	}
	if err := checkAlgorithms(m.Grid.Algorithms); err != nil {
		return err
	}
	if len(m.Grid.Scenarios) == 0 {
		return fmt.Errorf("manifest: chaos needs grid.scenarios")
	}
	if err := checkScenarios(m.Grid.Scenarios); err != nil {
		return err
	}
	if len(m.Grid.Nodes) != 1 || len(m.Grid.Sizes) != 1 {
		return fmt.Errorf("manifest: chaos needs exactly one grid.nodes and grid.sizes entry")
	}
	return checkNodes(m.Grid.Nodes, 2)
}

func (m Manifest) validateTrain() error {
	if len(m.Grid.Workloads) == 0 {
		return fmt.Errorf("manifest: train needs grid.workloads")
	}
	if !(len(m.Grid.Workloads) == 1 && m.Grid.Workloads[0] == "all") {
		for _, w := range m.Grid.Workloads {
			if !slices.Contains(workload.Names(), w) {
				return fmt.Errorf("manifest: unknown workload %q (have %v)", w, workload.Names())
			}
		}
	}
	if err := checkScenarios(m.Grid.Scenarios); err != nil {
		return err
	}
	if len(m.Grid.Nodes) != 1 || len(m.Grid.Sizes) != 1 {
		return fmt.Errorf("manifest: train needs exactly one grid.nodes and grid.sizes entry")
	}
	if m.Grid.Nodes[0] < 2 {
		return fmt.Errorf("manifest: grid.nodes must be >= 2, got %d", m.Grid.Nodes[0])
	}
	if m.Train != nil {
		if m.Train.Layers < 0 || m.Train.Jobs < 0 || m.Train.ComputeUS < 0 {
			return fmt.Errorf("manifest: train.layers, train.compute_us and train.jobs must be >= 0")
		}
	}
	return nil
}

func (m Manifest) validateTraffic() error {
	if len(m.Grid.Nodes) != 1 || len(m.Grid.Sizes) != 1 {
		return fmt.Errorf("manifest: traffic needs exactly one grid.nodes and grid.sizes entry")
	}
	if err := checkNodes(m.Grid.Nodes, 2); err != nil {
		return err
	}
	if m.Traffic != nil && m.Traffic.Iters < 0 {
		return fmt.Errorf("manifest: traffic.iters must be >= 0")
	}
	return nil
}

func (m Manifest) validateDPA() error {
	if !m.All && len(m.Figures) == 0 && len(m.Tables) == 0 {
		return fmt.Errorf("manifest: dpa needs figures, tables or all")
	}
	for _, f := range m.Figures {
		if !slices.Contains([]int{5, 13, 14, 15, 16}, f) {
			return fmt.Errorf("manifest: dpa has no figure %d (have 5, 13, 14, 15, 16)", f)
		}
	}
	for _, t := range m.Tables {
		if t != 1 {
			return fmt.Errorf("manifest: dpa has no table %d (have 1)", t)
		}
	}
	return nil
}

func (m Manifest) validateCost() error {
	if !m.All && len(m.Figures) == 0 && !m.Speedup && !m.Economics {
		return fmt.Errorf("manifest: cost needs figures, speedup, economics or all")
	}
	for _, f := range m.Figures {
		if f != 2 && f != 7 {
			return fmt.Errorf("manifest: cost has no figure %d (have 2 and 7)", f)
		}
	}
	return nil
}

func (m Manifest) validateAG() error {
	if len(m.Figures) != 1 || (m.Figures[0] != 10 && m.Figures[0] != 11) {
		return fmt.Errorf("manifest: ag needs exactly one figure, 10 or 11")
	}
	if err := checkNodes(m.Grid.Nodes, 1); err != nil {
		return err
	}
	if m.Figures[0] == 11 && len(m.Grid.Nodes) > 1 {
		return fmt.Errorf("manifest: ag figure 11 takes a single grid.nodes entry")
	}
	return nil
}
