package scenario

import (
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
)

// --- channel selectors ------------------------------------------------------------

// Selector picks the directed channels an injector perturbs. Selectors run
// once, at installation time, drawing any randomness from the injector's
// private RNG stream and victims from the context's workload scope; an
// empty selection turns the injector into a no-op (e.g. spine selectors on
// a single-switch topology).
type Selector func(ctx *Context) []fabric.ChannelID

// nodeChannels returns every directed channel touching n, both directions.
func nodeChannels(f *fabric.Fabric, n topology.NodeID) []fabric.ChannelID {
	var out []fabric.ChannelID
	for id := 0; id < f.NumChannels(); id++ {
		from, to := f.ChannelEnds(fabric.ChannelID(id))
		if from == n || to == n {
			out = append(out, fabric.ChannelID(id))
		}
	}
	return out
}

// randomPair picks two distinct workload hosts; ok is false below two.
func randomPair(ctx *Context) (a, b topology.NodeID, ok bool) {
	hosts := ctx.Hosts()
	if len(hosts) < 2 {
		return 0, 0, false
	}
	i := ctx.RNG.Intn(len(hosts))
	j := ctx.RNG.Intn(len(hosts) - 1)
	if j >= i {
		j++
	}
	return hosts[i], hosts[j], true
}

// RandomSpine selects every channel (both directions) of one switch that
// actually carries workload traffic: the highest-level switch on the
// ECMP-pinned path between a random pair of workload hosts. Falling back
// to a random top-level switch when the scope has fewer than two hosts (on
// a star topology either way, the hub is the "spine").
func RandomSpine(ctx *Context) []fabric.ChannelID {
	g := ctx.F.Graph()
	if a, b, ok := randomPair(ctx); ok {
		var spine topology.NodeID = -1
		level := -1
		for _, id := range ctx.F.UnicastPath(a, b, ctx.RNG.Uint64()) {
			from, _ := ctx.F.ChannelEnds(id)
			if g.Nodes[from].Kind == topology.Switch && g.Nodes[from].Level > level {
				spine, level = from, g.Nodes[from].Level
			}
		}
		if spine >= 0 {
			return nodeChannels(ctx.F, spine)
		}
	}
	tops := g.TopSwitches()
	if len(tops) == 0 {
		return nil
	}
	return nodeChannels(ctx.F, tops[ctx.RNG.Intn(len(tops))])
}

// RandomLeafUplinks selects the switch-to-switch channels (both
// directions) of the leaf a random workload host hangs off: its uplinks
// into the aggregation layer. Empty on single-switch topologies.
func RandomLeafUplinks(ctx *Context) []fabric.ChannelID {
	hosts := ctx.Hosts()
	if len(hosts) == 0 {
		return nil
	}
	g := ctx.F.Graph()
	leaf := g.LeafOf(hosts[ctx.RNG.Intn(len(hosts))])
	var out []fabric.ChannelID
	for _, id := range nodeChannels(ctx.F, leaf) {
		from, to := ctx.F.ChannelEnds(id)
		if g.Nodes[from].Kind == topology.Switch && g.Nodes[to].Kind == topology.Switch {
			out = append(out, id)
		}
	}
	return out
}

// HostLinks returns a selector for the NIC links (both directions) of k
// random workload hosts.
func HostLinks(k int) Selector {
	return func(ctx *Context) []fabric.ChannelID {
		hosts := ctx.Hosts()
		if len(hosts) == 0 {
			return nil
		}
		if k < 1 {
			k = 1
		}
		if k > len(hosts) {
			k = len(hosts)
		}
		perm := ctx.RNG.Perm(len(hosts))
		var out []fabric.ChannelID
		for _, i := range perm[:k] {
			out = append(out, nodeChannels(ctx.F, hosts[i])...)
		}
		return out
	}
}

// --- injectors --------------------------------------------------------------------

// LinkDegrade scales the selected channels' bandwidth and adds latency at
// Start, restoring them after Duration (0 means for the rest of the run) —
// the slow-drift failure mode of a marginal cable or SerDes.
type LinkDegrade struct {
	Select       Selector
	Scale        float64  // bandwidth multiplier in (0, 1]; 0 leaves bandwidth alone
	ExtraLatency sim.Time // added per traversal
	Start        sim.Time
	Duration     sim.Time // 0 = permanent
}

// Install arms the degradation.
func (d LinkDegrade) Install(ctx *Context) {
	chans := d.Select(ctx)
	if len(chans) == 0 {
		return
	}
	ctx.After(d.Start, func() {
		for _, id := range chans {
			if d.Scale > 0 {
				ctx.F.SetBandwidthScale(id, d.Scale)
			}
			if d.ExtraLatency > 0 {
				ctx.F.SetExtraLatency(id, d.ExtraLatency)
			}
		}
		ctx.Perturbed()
		if d.Duration > 0 {
			ctx.After(d.Duration, func() {
				// Undo only what this injector applied: ClearOverrides
				// would also wipe a drop override a composed injector owns.
				for _, id := range chans {
					if d.Scale > 0 {
						ctx.F.SetBandwidthScale(id, 1)
					}
					if d.ExtraLatency > 0 {
						ctx.F.SetExtraLatency(id, 0)
					}
				}
				ctx.Restored()
			})
		}
	})
}

// LinkFlap takes the selected channels down — every traversal drops, as
// when a port is re-training — for Down out of every Period, starting at
// Start, with uniform [0, Jitter) noise on each onset.
type LinkFlap struct {
	Select Selector
	Start  sim.Time
	Period sim.Time
	Down   sim.Time
	Jitter sim.Time
}

// Install arms the flap cycle.
func (lf LinkFlap) Install(ctx *Context) {
	chans := lf.Select(ctx)
	if len(chans) == 0 || lf.Period <= 0 || lf.Down <= 0 || lf.Down >= lf.Period {
		return
	}
	jitter := func() sim.Time {
		if lf.Jitter <= 0 {
			return 0
		}
		return sim.Time(ctx.RNG.Intn(int(lf.Jitter)))
	}
	var onset func()
	onset = func() {
		// Snapshot what each channel had so the restore puts it back — a
		// composed hotspot's override must survive the flap cycle.
		prev := make([]float64, len(chans))
		for i, id := range chans {
			prev[i] = ctx.F.DropRateOverride(id)
			ctx.F.SetDropRate(id, 1)
		}
		ctx.Perturbed()
		ctx.After(lf.Down, func() {
			for i, id := range chans {
				ctx.F.SetDropRate(id, prev[i])
			}
			ctx.Restored()
		})
		ctx.After(lf.Period+jitter(), onset)
	}
	ctx.After(lf.Start+jitter(), onset)
}

// DropHotspot replaces the drop rate on the selected channels at Start,
// restoring the configured rate after Duration (0 = permanent): a localized
// BER hotspot for the reliability slow path to chew on.
type DropHotspot struct {
	Select   Selector
	Rate     float64
	Start    sim.Time
	Duration sim.Time // 0 = permanent
}

// Install arms the hotspot.
func (h DropHotspot) Install(ctx *Context) {
	chans := h.Select(ctx)
	if len(chans) == 0 || h.Rate <= 0 {
		return
	}
	ctx.After(h.Start, func() {
		prev := make([]float64, len(chans))
		for i, id := range chans {
			prev[i] = ctx.F.DropRateOverride(id)
			ctx.F.SetDropRate(id, h.Rate)
		}
		ctx.Perturbed()
		if h.Duration > 0 {
			ctx.After(h.Duration, func() {
				for i, id := range chans {
					ctx.F.SetDropRate(id, prev[i])
				}
				ctx.Restored()
			})
		}
	})
}

// Straggler slows a random subset of hosts: their NIC links lose bandwidth
// (Scale) and gain injection latency. When Rejitter is set, the extra
// latency is re-rolled uniformly in [0, ExtraLatency) every Rejitter,
// modeling compute/injection jitter rather than a constant slowdown.
type Straggler struct {
	// Fraction of hosts to afflict (at least one). Hosts overrides it with
	// an absolute count when positive.
	Fraction     float64
	Hosts        int
	Scale        float64 // bandwidth multiplier in (0, 1]; 0 leaves bandwidth alone
	ExtraLatency sim.Time
	Rejitter     sim.Time
}

// Install picks the stragglers and arms the jitter loop.
func (s Straggler) Install(ctx *Context) {
	hosts := ctx.Hosts()
	if len(hosts) == 0 {
		return
	}
	k := s.Hosts
	if k <= 0 {
		k = int(s.Fraction * float64(len(hosts)))
	}
	if k < 1 {
		k = 1
	}
	chans := HostLinks(k)(ctx)
	for _, id := range chans {
		if s.Scale > 0 {
			ctx.F.SetBandwidthScale(id, s.Scale)
		}
		if s.ExtraLatency > 0 {
			ctx.F.SetExtraLatency(id, s.ExtraLatency)
		}
	}
	ctx.Perturbed()
	if s.Rejitter <= 0 || s.ExtraLatency <= 0 {
		return
	}
	var tick func()
	tick = func() {
		d := sim.Time(ctx.RNG.Intn(int(s.ExtraLatency)))
		for _, id := range chans {
			ctx.F.SetExtraLatency(id, d)
		}
		ctx.Perturbed()
		ctx.After(s.Rejitter, tick)
	}
	ctx.After(s.Rejitter, tick)
}

// BackgroundTraffic is the multi-tenant neighbor: persistent unicast flows
// between random host pairs, each injecting packets at Load times the host
// link bandwidth through the fabric's background hook — occupying the same
// channels, serializers and switch buffers as the collective under test.
type BackgroundTraffic struct {
	Flows       int     // flow count; 0 = one per host
	Load        float64 // per-flow injection rate as a fraction of host link bandwidth
	PacketBytes int     // payload per packet; 0 = fabric MTU
	Start       sim.Time
	// Backoff is the tenant's congestion control: when the source uplink's
	// backlog exceeds it, the flow skips injections until the queue drains
	// below it again. Without this, a link oversubscribed by tenant plus
	// collective traffic grows its queue without bound and RC round-trip
	// times diverge. 0 selects DefaultBackoff; negative disables backoff.
	Backoff sim.Time
}

// DefaultBackoff bounds tenant-induced queueing at roughly the scale of an
// RC retransmission timeout's safety margin.
const DefaultBackoff = 50 * sim.Microsecond

// Install launches the flows with deterministically staggered phases.
func (b BackgroundTraffic) Install(ctx *Context) {
	hosts := ctx.Hosts()
	if len(hosts) < 2 || b.Load <= 0 {
		return
	}
	size := b.PacketBytes
	if size <= 0 || size > ctx.F.MaxPayload() {
		size = ctx.F.MaxPayload()
	}
	cfg := ctx.F.Config()
	wire := float64(size + cfg.HeaderBytes)
	interval := sim.Time(wire / (cfg.HostLinkBandwidth * b.Load) * 1e9)
	if interval < 1 {
		interval = 1
	}
	backoff := b.Backoff
	if backoff == 0 {
		backoff = DefaultBackoff
	}
	nflows := b.Flows
	if nflows <= 0 {
		nflows = len(hosts)
	}
	perm := ctx.RNG.Perm(len(hosts))
	for i := 0; i < nflows; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[perm[i%len(hosts)]]
		if dst == src {
			dst = hosts[(i+1)%len(hosts)]
		}
		// The flow's congestion signal is the worst queue anywhere on its
		// (ECMP-pinned) path — the scenario-level stand-in for ECN marks.
		flow := uint64(i)
		path := ctx.F.UnicastPath(src, dst, flow)
		var send func()
		send = func() {
			congested := false
			if backoff >= 0 {
				for _, id := range path {
					if ctx.F.ChannelBacklog(id) >= backoff {
						congested = true
						break
					}
				}
			}
			if !congested {
				ctx.F.InjectBackground(src, dst, size, flow)
			}
			ctx.After(interval, send)
		}
		ctx.After(b.Start+sim.Time(ctx.RNG.Intn(int(interval))), send)
	}
	ctx.Perturbed()
}

// Incast fires periodic many-to-one bursts: every Period, Fanin random
// sources each blast BurstBytes at one rotating victim host, back to back —
// the transient congestion signature the paper's §IV-A sequencer exists to
// avoid causing.
type Incast struct {
	Fanin      int
	BurstBytes int
	Period     sim.Time
	Start      sim.Time
}

// Install arms the burst cycle.
func (inc Incast) Install(ctx *Context) {
	hosts := ctx.Hosts()
	if inc.Fanin < 1 || inc.BurstBytes <= 0 || inc.Period <= 0 || len(hosts) < 2 {
		return
	}
	fanin := inc.Fanin
	if fanin > len(hosts)-1 {
		fanin = len(hosts) - 1
	}
	mtu := ctx.F.MaxPayload()
	var burst func()
	burst = func() {
		perm := ctx.RNG.Perm(len(hosts))
		victim := hosts[perm[0]]
		for s := 0; s < fanin; s++ {
			src := hosts[perm[1+s]]
			for sent := 0; sent < inc.BurstBytes; sent += mtu {
				n := inc.BurstBytes - sent
				if n > mtu {
					n = mtu
				}
				ctx.F.InjectBackground(src, victim, n, uint64(s))
			}
		}
		ctx.Perturbed()
		ctx.After(inc.Period, burst)
	}
	ctx.After(inc.Start, burst)
}
