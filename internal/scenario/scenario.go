// Package scenario is a deterministic perturbation and background-workload
// subsystem: it schedules composable Injectors on the simulation engine to
// turn a quiet, healthy fabric into a production-like one — links that
// degrade and flap, drop-rate hotspots, straggler hosts, incast bursts, and
// persistent multi-tenant background flows occupying the same channels as
// the collective under test.
//
// Determinism is inherited from the rest of the stack: every injector draws
// randomness exclusively from its own splitmix64-derived RNG stream (a pure
// function of the installation seed and the injector's position), and all
// perturbations are sim.Engine events, so the same (scenario, seed) always
// produces the same perturbation schedule, byte for byte, at any sweep
// worker count. The "quiet" scenario is the identity: it schedules no
// events and touches no RNG, so installing it cannot move a single event
// relative to not installing anything.
//
// Scenarios are named and parametrized through a registry mirroring
// internal/registry: New("flap-spine") returns a ready-to-install preset,
// Names() lists all of them, and sweep grids carry the name on their
// Scenario axis so harness drivers can sweep algorithm × scenario.
package scenario

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Injector is one composable perturbation source. Install is called once,
// at installation (virtual) time; implementations schedule their events
// through ctx.After and draw all randomness from ctx.RNG.
type Injector interface {
	Install(ctx *Context)
}

// Scenario is a named bundle of injectors, armed together on one fabric.
type Scenario struct {
	Name      string
	Injectors []Injector
}

// Context is the environment an injector runs in: the fabric it perturbs,
// the engine it schedules on, and its private deterministic RNG stream.
type Context struct {
	Eng *sim.Engine
	F   *fabric.Fabric
	RNG *sim.RNG
	// hosts is the workload scope (see InstallOn); nil means every host.
	hosts []topology.NodeID
	act   *Active
}

// Hosts returns the hosts the scenario is scoped to: the workload's
// participants when installed with InstallOn, every fabric host otherwise.
// Selectors and traffic injectors draw victims, stragglers and flow
// endpoints from this set, so perturbations land where the measured
// workload actually runs instead of dissipating across a mostly-idle
// production fabric.
func (c *Context) Hosts() []topology.NodeID {
	if c.hosts != nil {
		return c.hosts
	}
	return c.F.Graph().Hosts()
}

// After schedules fn d nanoseconds from now. The event is tracked by the
// Active handle: once Stop is called, pending events are cancelled and new
// ones are not scheduled, so the engine can run dry after the workload
// completes even for injectors that re-arm forever. Scheduling goes through
// the engine's pooled handler path — per-packet injectors (the tenant
// flows) re-arm without allocating an event or a wrapper closure, since fn
// itself is a long-lived closure built once per flow.
func (c *Context) After(d sim.Time, fn func()) {
	if c.act.stopped {
		return
	}
	h := c.Eng.AfterHandler(d, c.act, 0, 0, fn)
	c.act.pending[h] = struct{}{}
}

// Perturbed counts one perturbation application (a flap onset, a
// degradation, a re-jitter, a burst) on the Active handle's stats.
func (c *Context) Perturbed() { c.act.stats.Perturbs++ }

// Restored counts one restoration (flap recovery, degradation end).
func (c *Context) Restored() { c.act.stats.Restores++ }

// Stats summarizes what an installed scenario did to the fabric.
type Stats struct {
	// Perturbs counts perturbation applications; Restores counts explicit
	// restorations. A completed flap contributes one of each.
	Perturbs int
	Restores int
	// Background traffic injected so far (from the fabric's gauges).
	BackgroundPackets uint64
	BackgroundBytes   uint64
}

// Active is the handle to an installed scenario.
type Active struct {
	f       *fabric.Fabric
	stopped bool
	pending map[sim.Handle]struct{}
	stats   Stats
}

// OnEvent fires one tracked injector event: ev keys the pending set (the
// engine hands back exactly the Handle AfterHandler returned), obj is the
// injector's callback.
func (a *Active) OnEvent(_ *sim.Engine, ev sim.Handle, _ uint64, _ int, obj any) {
	delete(a.pending, ev)
	if a.stopped {
		return
	}
	obj.(func())()
}

// Stop cancels every pending perturbation event and prevents re-arming, so
// the engine drains once the measured workload is done. Overrides applied
// to the fabric are left in place (the simulation is over); use a fresh
// fabric per measurement, as every kernel in this repository does.
// Cancellation is generation-checked, so a handle whose event has already
// fired (and been recycled by the engine's pool) is skipped, not corrupted.
func (a *Active) Stop() {
	if a.stopped {
		return
	}
	a.stopped = true
	for h := range a.pending {
		h.Cancel()
	}
	a.pending = nil
}

// Stats returns the perturbation counters and the fabric's background
// traffic gauges.
func (a *Active) Stats() Stats {
	s := a.stats
	s.BackgroundPackets = a.f.BackgroundInjected
	s.BackgroundBytes = a.f.BackgroundBytes
	return s
}

// Install arms every injector on the fabric's engine at the current virtual
// time and returns the handle to stop and observe them. Each injector gets
// its own RNG stream derived from (seed, injector index) with splitmix64,
// never from the engine's RNG — so installing a scenario with no injectors
// (quiet) is observationally identical to installing nothing.
func (sc Scenario) Install(f *fabric.Fabric, seed uint64) *Active {
	return sc.InstallOn(f, nil, seed)
}

// InstallOn is Install scoped to a workload: injectors pick stragglers,
// incast victims, tenant-flow endpoints and flapped/degraded paths from
// (and between) the given hosts rather than the whole fabric. nil means
// every host. Use it when the measured workload runs on a subset of a
// larger topology, or the perturbations mostly land on idle hardware.
func (sc Scenario) InstallOn(f *fabric.Fabric, hosts []topology.NodeID, seed uint64) *Active {
	// Injector timers fire on the fabric's engine and mutate shared fabric
	// state, so scenarios must run on the primary shard of a sharded group.
	sim.AssertShardable(f.Engine(), "scenario")
	act := &Active{f: f, pending: make(map[sim.Handle]struct{})}
	for i, inj := range sc.Injectors {
		rng := sim.NewRNG(sim.Splitmix64(seed ^ sim.Splitmix64(uint64(i)+0x5ce7a110)))
		inj.Install(&Context{Eng: f.Engine(), F: f, RNG: rng, hosts: hosts, act: act})
	}
	return act
}

// --- the named preset registry ---------------------------------------------------

// Quiet is the identity scenario: a healthy, idle fabric.
const Quiet = "quiet"

// builder constructs one named preset. Builders run per instantiation so
// scenarios never share injector state.
type builder func() Scenario

var presets = map[string]builder{
	Quiet: func() Scenario {
		return Scenario{Name: Quiet}
	},
	// One spine switch's links flap: 20 µs outages (every traversal
	// drops) roughly every 150 µs, exercising the reliability slow path
	// and adaptive rerouting.
	"flap-spine": func() Scenario {
		return Scenario{Name: "flap-spine", Injectors: []Injector{
			LinkFlap{Select: RandomSpine, Start: 30 * sim.Microsecond,
				Period: 150 * sim.Microsecond, Down: 20 * sim.Microsecond,
				Jitter: 10 * sim.Microsecond},
		}}
	},
	// One random leaf's uplinks run at half bandwidth with 1 µs extra
	// latency for the rest of the run (a misbehaving cable/SerDes).
	"degrade-leaf": func() Scenario {
		return Scenario{Name: "degrade-leaf", Injectors: []Injector{
			LinkDegrade{Select: RandomLeafUplinks, Scale: 0.5,
				ExtraLatency: sim.Microsecond, Start: 10 * sim.Microsecond},
		}}
	},
	// One spine's links corrupt 0.1% of traversals — a BER hotspot far
	// above the paper's 1e-12..1e-15, keeping recovery busy.
	"hotspot-drop": func() Scenario {
		return Scenario{Name: "hotspot-drop", Injectors: []Injector{
			DropHotspot{Select: RandomSpine, Rate: 1e-3},
		}}
	},
	// 1% of hosts (at least one) are stragglers: their NIC links run at
	// half speed with up to 2 µs of injection latency re-rolled every
	// 50 µs.
	"straggler-1pct": func() Scenario {
		return Scenario{Name: "straggler-1pct", Injectors: []Injector{
			Straggler{Fraction: 0.01, Scale: 0.5,
				ExtraLatency: 2 * sim.Microsecond, Rejitter: 50 * sim.Microsecond},
		}}
	},
	// Multi-tenant neighbors: every host sources one persistent flow to a
	// random peer at 20% / 50% of its link bandwidth, on the same channels
	// as the collective.
	"tenant-20load": func() Scenario {
		return Scenario{Name: "tenant-20load", Injectors: []Injector{
			BackgroundTraffic{Load: 0.20},
		}}
	},
	"tenant-50load": func() Scenario {
		return Scenario{Name: "tenant-50load", Injectors: []Injector{
			BackgroundTraffic{Load: 0.50},
		}}
	},
	// Periodic 4-to-1 incast bursts (128 KiB per source) onto a rotating
	// victim — the §IV-A congestion signature.
	"incast-4to1": func() Scenario {
		return Scenario{Name: "incast-4to1", Injectors: []Injector{
			Incast{Fanin: 4, BurstBytes: 128 << 10,
				Period: 100 * sim.Microsecond, Start: 20 * sim.Microsecond},
		}}
	},
}

// Names returns every registered scenario name, sorted.
func Names() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New instantiates the named preset. The empty name is an alias for quiet,
// so a sweep Spec without a Scenario axis maps to the identity.
func New(name string) (Scenario, error) {
	if name == "" {
		name = Quiet
	}
	b, ok := presets[name]
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	return b(), nil
}
