package scenario

import (
	"encoding/json"
	"slices"
	"testing"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/verbs"
)

// goldenQuiet is the registry golden for mcast-allgather (16 hosts,
// HostsPerLeaf 4, seed 3, 1 MiB, UD, 4 subgroups): installing the quiet
// scenario must reproduce it exactly, proving the identity path does not
// move a single event.
const goldenQuiet = 722976 // ns

// goldenTenant50 pins the same operation under tenant-50load with
// install seed 3: background flows on every host link stretch the
// collective. The value is a determinism anchor like the registry goldens —
// any change to event ordering, RNG stream derivation, or the background
// injection path will move it.
const goldenTenant50 = 1471964 // ns

// runAllgather runs one 16-host mcast-allgather (the registry-golden
// geometry) with the named scenario installed; name "" skips installation
// entirely (not even quiet).
func runAllgather(t *testing.T, name string, bytes int, seed uint64) (*collective.Result, *Active, *fabric.Fabric) {
	t.Helper()
	g, err := topology.TwoLevelFatTree(topology.FatTreeSpec{Hosts: 16, HostsPerLeaf: 4, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(3)
	f := fabric.New(eng, g, fabric.Config{})
	alg, err := registry.New(cluster.New(f, cluster.Config{}), "mcast-allgather", registry.Options{
		Core: core.Config{Transport: verbs.UD, Subgroups: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	var act *Active
	if name != "" {
		sc, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		act = sc.Install(f, seed)
	}
	var res *collective.Result
	err = alg.(collective.Starter).Start(collective.Op{Kind: collective.Allgather, Bytes: bytes},
		func(r *collective.Result) {
			res = r
			if act != nil {
				act.Stop()
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if res == nil {
		t.Fatalf("allgather under %q did not complete", name)
	}
	return res, act, f
}

func resultJSON(t *testing.T, res *collective.Result) []byte {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("registry lists %d scenarios, want >= 6: %v", len(names), names)
	}
	for _, want := range []string{"quiet", "flap-spine", "straggler-1pct", "tenant-50load"} {
		if !slices.Contains(names, want) {
			t.Fatalf("registry %v is missing %q", names, want)
		}
	}
	if !slices.IsSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	if _, err := New("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario did not error")
	}
	sc, err := New("")
	if err != nil || sc.Name != Quiet {
		t.Fatalf("New(\"\") = (%q, %v), want the quiet alias", sc.Name, err)
	}
}

// TestQuietIsIdentity is the acceptance check for the identity path:
// installing the quiet scenario produces a byte-identical Result to not
// installing anything, and both match the registry golden duration.
func TestQuietIsIdentity(t *testing.T) {
	bare, _, _ := runAllgather(t, "", 1<<20, 0)
	quiet, act, f := runAllgather(t, Quiet, 1<<20, 99)
	if a, b := resultJSON(t, bare), resultJSON(t, quiet); !slices.Equal(a, b) {
		t.Fatalf("quiet scenario changed the result:\nbare:  %s\nquiet: %s", a, b)
	}
	if got := int64(quiet.Duration()); got != goldenQuiet {
		t.Errorf("quiet duration = %d ns, want golden %d ns", got, goldenQuiet)
	}
	if s := act.Stats(); s != (Stats{}) {
		t.Fatalf("quiet scenario reported activity: %+v", s)
	}
	if f.BackgroundInjected != 0 {
		t.Fatalf("quiet scenario injected %d background packets", f.BackgroundInjected)
	}
}

// TestTenantGoldenDeterminism pins one non-quiet scenario the way the
// registry pins its algorithms: the same (scenario, seed) must reproduce
// the exact same virtual duration, run after run, and slow the collective
// relative to quiet.
func TestTenantGoldenDeterminism(t *testing.T) {
	res, act, f := runAllgather(t, "tenant-50load", 1<<20, 3)
	if got := int64(res.Duration()); got != goldenTenant50 {
		t.Errorf("tenant-50load duration = %d ns, want golden %d ns", got, goldenTenant50)
	}
	if int64(res.Duration()) <= goldenQuiet {
		t.Fatalf("tenant load did not slow the collective: %v", res.Duration())
	}
	s := act.Stats()
	if s.BackgroundPackets == 0 || s.BackgroundBytes == 0 {
		t.Fatalf("no background traffic recorded: %+v", s)
	}
	if f.BackgroundInjected != s.BackgroundPackets {
		t.Fatalf("stats/fabric disagree on background packets: %d vs %d",
			s.BackgroundPackets, f.BackgroundInjected)
	}
	// Same seed, fresh simulation: byte-identical result.
	again, _, _ := runAllgather(t, "tenant-50load", 1<<20, 3)
	if a, b := resultJSON(t, res), resultJSON(t, again); !slices.Equal(a, b) {
		t.Fatal("tenant-50load is not deterministic for a fixed seed")
	}
}

// TestFlapDropsAndRestores drives a flap injector directly on a tiny star
// fabric: during the outage every traversal drops; after restore the link
// delivers again; Stop cancels the re-arming cycle so the engine drains.
func TestFlapDropsAndRestores(t *testing.T) {
	eng := sim.NewEngine(1)
	g := topology.Star(2)
	f := fabric.New(eng, g, fabric.Config{})
	hosts := g.Hosts()
	nic0, nic1 := f.AttachNIC(hosts[0]), f.AttachNIC(hosts[1])
	delivered := 0
	nic1.Deliver = func(p *fabric.Packet) { delivered++ }

	sc := Scenario{Name: "flap", Injectors: []Injector{
		LinkFlap{Select: RandomSpine, Start: 0, Period: 100 * sim.Microsecond, Down: 50 * sim.Microsecond},
	}}
	act := sc.Install(f, 7)

	// The hub's channels are down from t=0 to t=50µs.
	eng.RunUntil(10 * sim.Microsecond)
	nic0.Inject(&fabric.Packet{Dst: hosts[1], Group: fabric.NoGroup, PayloadBytes: 1024})
	eng.RunUntil(40 * sim.Microsecond)
	if delivered != 0 || f.TotalDropped == 0 {
		t.Fatalf("packet crossed a downed link: delivered=%d dropped=%d", delivered, f.TotalDropped)
	}
	// After the restore at 50µs the link carries traffic again.
	eng.RunUntil(60 * sim.Microsecond)
	nic0.Inject(&fabric.Packet{Dst: hosts[1], Group: fabric.NoGroup, PayloadBytes: 1024})
	eng.RunUntil(90 * sim.Microsecond)
	if delivered != 1 {
		t.Fatalf("restored link delivered %d packets, want 1", delivered)
	}
	s := act.Stats()
	if s.Perturbs < 1 || s.Restores < 1 {
		t.Fatalf("flap stats %+v, want at least one perturb and restore", s)
	}
	// Without Stop the flap re-arms forever; with it the queue drains.
	act.Stop()
	eng.Run()
	if eng.Pending() != 0 {
		t.Fatalf("%d events still pending after Stop", eng.Pending())
	}
}

// TestEveryPresetCompletes runs each registered scenario against a small
// collective: none may deadlock it, and all must stay deterministic enough
// to finish on a drained engine after Stop.
func TestEveryPresetCompletes(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, _, _ := runAllgather(t, name, 64<<10, 11)
			if res.Ranks != 16 {
				t.Fatalf("Ranks = %d, want 16", res.Ranks)
			}
			if res.Duration() <= 0 {
				t.Fatalf("Duration = %v", res.Duration())
			}
		})
	}
}
