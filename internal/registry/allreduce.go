package registry

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
)

// --- in-network-compute reduce-scatter -------------------------------------------

// incAlg adapts the SHARP-style in-network Reduce-Scatter, creating the
// fabric reduce group (rooted at a top-level switch, like the multicast
// trees) on first use.
type incAlg struct {
	name  string
	team  *coll.Team
	f     *fabric.Fabric
	hosts []topology.NodeID
	rg    fabric.ReduceGroupID
	rgOK  bool
}

func newINCReduceScatter(name string, cl *cluster.Cluster, hosts []topology.NodeID, opts Options) (collective.Algorithm, error) {
	team, err := coll.NewTeam(cl, hosts, opts.Coll)
	if err != nil {
		return nil, err
	}
	return &incAlg{name: name, team: team, f: cl.Fabric(), hosts: hosts}, nil
}

func (a *incAlg) Name() string { return a.name }

func (a *incAlg) Supports(op collective.Op) bool {
	return op.Kind == collective.ReduceScatter && op.Bytes > 0
}

func (a *incAlg) Start(op collective.Op, done func(*collective.Result)) error {
	if !a.Supports(op) {
		return fmt.Errorf("registry: %s does not support %s", a.name, op.Kind)
	}
	if !a.rgOK {
		// Root the reduction tree at a highest-level switch, the same
		// placement policy the multicast subgroups use.
		roots := a.f.Graph().TopSwitches()
		if len(roots) == 0 {
			return fmt.Errorf("registry: topology has no switch to root a reduction tree")
		}
		rg, err := a.f.CreateReduceGroup(roots[0], a.hosts)
		if err != nil {
			return err
		}
		a.rg, a.rgOK = rg, true
	}
	return a.team.StartINCReduceScatter(a.rg, op.Bytes, done)
}

func (a *incAlg) Run(op collective.Op) (*collective.Result, error) {
	return runBlocking(a.name, a.team.Engine(), func(done func(*collective.Result)) error {
		return a.Start(op, done)
	})
}

// --- composed allreduce ----------------------------------------------------------

// starter is the non-blocking surface the allreduce composition chains.
type starter interface {
	Start(op collective.Op, done func(*collective.Result)) error
}

// allreduceAlg is the composed Allreduce of the AI-training workload: a
// ring Reduce-Scatter over the P·shard working buffer, then an Allgather
// of the reduced shards — on the P2P ring ("ring-allreduce") or on the
// paper's multicast Allgather ("mcast-allreduce"), which frees the send
// path for the next layer's gradients (§II-A).
type allreduceAlg struct {
	name string
	team *coll.Team // reduce-scatter half (and gather half when P2P)
	ag   starter    // gather half
	eng  *sim.Engine
	// chainErr records a failure to launch the gather half from inside the
	// reduce-scatter completion callback (no error path crosses the event
	// loop). Run surfaces it after the engine drains; Start resets it per
	// operation so one failed chain does not poison the warm instance.
	chainErr error
}

// newAllreduce returns a builder composing ring Reduce-Scatter with the
// multicast (mcastGather) or ring Allgather.
func newAllreduce(mcastGather bool) builder {
	return func(name string, cl *cluster.Cluster, hosts []topology.NodeID, opts Options) (collective.Algorithm, error) {
		team, err := coll.NewTeam(cl, hosts, opts.Coll)
		if err != nil {
			return nil, err
		}
		a := &allreduceAlg{name: name, team: team, eng: team.Engine()}
		if mcastGather {
			comm, err := core.NewCommunicatorOn(cl, hosts, opts.Core)
			if err != nil {
				return nil, err
			}
			a.ag = &mcastAlg{name: "mcast-allgather", kind: collective.Allgather, comm: comm}
		} else {
			ra := &teamAlg{name: "ring-allgather", kind: collective.Allgather, team: team, check: anySize}
			ra.start = func(op collective.Op, cb func(*collective.Result)) error {
				return team.StartRingAllgather(op.Bytes, cb)
			}
			a.ag = ra
		}
		return a, nil
	}
}

func (a *allreduceAlg) Name() string { return a.name }

func (a *allreduceAlg) Supports(op collective.Op) bool {
	return op.Kind == collective.Allreduce && op.Bytes > 0
}

// Start begins the two-phase Allreduce. The ring Reduce-Scatter reduces
// the P·shard working buffer down to one shard per rank; its completion
// callback launches the Allgather of those shards, and the composed
// Result spans both phases. If the gather half fails to launch, done
// never fires (the engine runs dry) and Err reports the cause; the
// blocking Run surfaces it directly.
func (a *allreduceAlg) Start(op collective.Op, done func(*collective.Result)) error {
	if !a.Supports(op) {
		return fmt.Errorf("registry: %s does not support %s", a.name, op.Kind)
	}
	a.chainErr = nil
	p := a.team.Size()
	shard := (op.Bytes + p - 1) / p
	res := &collective.Result{
		Kind:      a.name,
		Ranks:     p,
		SendBytes: op.Bytes,
		RecvBytes: 2 * (p - 1) * shard, // both phases move P-1 shards per rank
		Start:     a.eng.Now(),
	}
	return a.team.StartRingReduceScatter(shard, func(*collective.Result) {
		err := a.ag.Start(collective.Op{Kind: collective.Allgather, Bytes: shard}, func(*collective.Result) {
			res.End = a.eng.Now()
			if done != nil {
				done(res)
			}
		})
		if err != nil {
			a.chainErr = fmt.Errorf("registry: %s gather phase: %w", a.name, err)
		}
	})
}

// Err reports whether the most recent Start's gather phase failed to
// launch — the one failure a non-blocking caller cannot see through the
// callback (done simply never fires).
func (a *allreduceAlg) Err() error { return a.chainErr }

func (a *allreduceAlg) Run(op collective.Op) (*collective.Result, error) {
	var res *collective.Result
	if err := a.Start(op, func(r *collective.Result) { res = r }); err != nil {
		return nil, err
	}
	a.eng.Run()
	if a.chainErr != nil {
		return nil, a.chainErr
	}
	if res == nil {
		return nil, fmt.Errorf("registry: %s did not complete (deadlock?)", a.name)
	}
	return res, nil
}
