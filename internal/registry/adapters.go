package registry

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/topology"
)

// --- multicast protocol (internal/core) ----------------------------------------

// mcastAlg adapts a core.Communicator to the unified Algorithm surface.
type mcastAlg struct {
	name string
	kind collective.Kind
	comm *core.Communicator
}

// newMcast returns a builder for the multicast algorithm executing kind.
func newMcast(kind collective.Kind) builder {
	return func(name string, cl *cluster.Cluster, hosts []topology.NodeID, opts Options) (collective.Algorithm, error) {
		comm, err := core.NewCommunicatorOn(cl, hosts, opts.Core)
		if err != nil {
			return nil, err
		}
		return &mcastAlg{name: name, kind: kind, comm: comm}, nil
	}
}

func (a *mcastAlg) Name() string { return a.name }

func (a *mcastAlg) Supports(op collective.Op) bool { return op.Kind == a.kind && op.Bytes > 0 }

func (a *mcastAlg) Start(op collective.Op, done func(*collective.Result)) error {
	if !a.Supports(op) {
		return fmt.Errorf("registry: %s does not support %s", a.name, op.Kind)
	}
	if a.kind == collective.Broadcast {
		return a.comm.StartBroadcast(op.Root, op.Bytes, done)
	}
	return a.comm.StartAllgather(op.Bytes, done)
}

func (a *mcastAlg) Run(op collective.Op) (*collective.Result, error) {
	return runBlocking(a.name, a.comm.Engine(), func(done func(*collective.Result)) error {
		return a.Start(op, done)
	})
}

func (a *mcastAlg) VerifyLast(collective.Op) error { return a.comm.VerifyLast() }

// --- P2P baselines (internal/coll) ----------------------------------------------

// teamStart is the shape shared by every coll.Team non-blocking entry
// point that takes only a size (allgathers and the ring reduce-scatter).
type teamStart func(t *coll.Team, n int, cb func(*collective.Result)) error

// treeStart is the shape of the rooted tree-broadcast entry points.
type treeStart func(t *coll.Team, root, n int, cb func(*collective.Result)) error

// sizeCheck gates Supports on the team geometry.
type sizeCheck func(ranks int) bool

func anySize(int) bool          { return true }
func powerOfTwo(ranks int) bool { return ranks&(ranks-1) == 0 }

// teamAlg adapts one coll.Team entry point to the Algorithm surface.
type teamAlg struct {
	name  string
	kind  collective.Kind
	team  *coll.Team
	check sizeCheck
	start func(op collective.Op, cb func(*collective.Result)) error
}

// newTeamAlg builds rootless team algorithms (allgathers, reduce-scatter).
func newTeamAlg(kind collective.Kind, check sizeCheck, start teamStart) builder {
	return func(name string, cl *cluster.Cluster, hosts []topology.NodeID, opts Options) (collective.Algorithm, error) {
		team, err := coll.NewTeam(cl, hosts, opts.Coll)
		if err != nil {
			return nil, err
		}
		a := &teamAlg{name: name, kind: kind, team: team, check: check}
		a.start = func(op collective.Op, cb func(*collective.Result)) error {
			return start(team, op.Bytes, cb)
		}
		return a, nil
	}
}

// newTreeAlg builds the rooted tree broadcasts.
func newTreeAlg(start treeStart) builder {
	return func(name string, cl *cluster.Cluster, hosts []topology.NodeID, opts Options) (collective.Algorithm, error) {
		team, err := coll.NewTeam(cl, hosts, opts.Coll)
		if err != nil {
			return nil, err
		}
		a := &teamAlg{name: name, kind: collective.Broadcast, team: team, check: anySize}
		a.start = func(op collective.Op, cb func(*collective.Result)) error {
			return start(team, op.Root, op.Bytes, cb)
		}
		return a, nil
	}
}

func (a *teamAlg) Name() string { return a.name }

func (a *teamAlg) Supports(op collective.Op) bool {
	return op.Kind == a.kind && op.Bytes > 0 && a.check(a.team.Size())
}

func (a *teamAlg) Start(op collective.Op, done func(*collective.Result)) error {
	if !a.Supports(op) {
		return fmt.Errorf("registry: %s does not support %s over %d ranks", a.name, op.Kind, a.team.Size())
	}
	return a.start(op, done)
}

func (a *teamAlg) Run(op collective.Op) (*collective.Result, error) {
	return runBlocking(a.name, a.team.Engine(), func(done func(*collective.Result)) error {
		return a.Start(op, done)
	})
}

func (a *teamAlg) VerifyLast(op collective.Op) error {
	switch op.Kind {
	case collective.Broadcast:
		return a.team.VerifyBroadcast(op.Root, op.Bytes)
	case collective.Allgather:
		return a.team.VerifyAllgather(op.Bytes)
	}
	return fmt.Errorf("registry: %s cannot verify %s", a.name, op.Kind)
}
