// Package registry maps algorithm names to executable collective.Algorithm
// instances, adapting the multicast protocol (internal/core) and the P2P
// baselines (internal/coll) to the one unified surface. Every consumer —
// the OSU-style driver, the per-figure harness experiments, the examples
// and the top-level benchmarks — dispatches through New instead of
// hand-rolling a switch over algorithm names, so adding an algorithm is a
// single table entry here.
//
// The registry also hosts the composed Allreduce (ring Reduce-Scatter
// followed by an Allgather of the reduced shards): "ring-allreduce" keeps
// both halves on the P2P ring, "mcast-allreduce" runs the gather half on
// the paper's multicast Allgather — the AI-training pairing the paper
// motivates (§II-A).
package registry

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Options parameterizes an algorithm instance.
type Options struct {
	// Hosts restricts the team to a subset of the fabric's endpoints. Nil
	// means every host, in topology order.
	Hosts []topology.NodeID
	// Core tunes the multicast protocol (mcast-* algorithms and the gather
	// half of mcast-allreduce). The zero value selects the UD fast path
	// with the paper's defaults. Host-level knobs (CPUCores, RQDepth) are
	// properties of the shared cluster the algorithm is built on — set
	// them when constructing the System/cluster; they have no effect here.
	Core core.Config
	// Coll tunes the P2P baselines (chunk size, k-nomial radix, data
	// verification).
	Coll coll.Config
}

// builder constructs one named algorithm over the shared cluster runtime.
type builder func(name string, cl *cluster.Cluster, hosts []topology.NodeID, opts Options) (collective.Algorithm, error)

// algorithms is the registry: every collective algorithm the simulation
// implements, P2P and multicast alike.
var algorithms = map[string]builder{
	"mcast-broadcast":     newMcast(collective.Broadcast),
	"mcast-allgather":     newMcast(collective.Allgather),
	"ring-allgather":      newTeamAlg(collective.Allgather, anySize, (*coll.Team).StartRingAllgather),
	"linear-allgather":    newTeamAlg(collective.Allgather, anySize, (*coll.Team).StartLinearAllgather),
	"rd-allgather":        newTeamAlg(collective.Allgather, powerOfTwo, (*coll.Team).StartRecursiveDoublingAllgather),
	"bruck-allgather":     newTeamAlg(collective.Allgather, anySize, (*coll.Team).StartBruckAllgather),
	"knomial-broadcast":   newTreeAlg((*coll.Team).StartKnomialBroadcast),
	"binary-broadcast":    newTreeAlg((*coll.Team).StartBinaryTreeBroadcast),
	"chain-broadcast":     newTreeAlg((*coll.Team).StartChainBroadcast),
	"ring-reduce-scatter": newTeamAlg(collective.ReduceScatter, anySize, (*coll.Team).StartRingReduceScatter),
	"inc-reduce-scatter":  newINCReduceScatter,
	"ring-allreduce":      newAllreduce(false),
	"mcast-allreduce":     newAllreduce(true),
}

// partitionSafe lists the algorithms whose event flow is compatible with a
// partitioned fabric (fabric.EnablePartition): every mid-run event they
// schedule stays on the acting rank's own shard, all queue pairs exist
// before the first Start, and they never touch in-network reduction.
// Excluded and why:
//   - ring-/mcast-allreduce chain the Allgather's Start inside the
//     Reduce-Scatter's completion callback, which fires on whichever shard
//     finishes last — Start must run between engine runs;
//   - rd-/bruck-allgather and the tree broadcasts create RC queue pairs
//     lazily from mid-run events (qpTo on first use), mutating two ranks'
//     contexts from one shard;
//   - inc-reduce-scatter aggregates at switches via fabric reduce groups,
//     state no single shard owns.
var partitionSafe = map[string]bool{
	"mcast-broadcast":     true,
	"mcast-allgather":     true,
	"ring-allgather":      true,
	"linear-allgather":    true,
	"ring-reduce-scatter": true,
}

// PartitionSafe reports whether the named algorithm may run on a
// partitioned fabric. Callers that own a fabric outright use it to decide
// whether to EnablePartition before building the algorithm.
func PartitionSafe(name string) bool { return partitionSafe[name] }

// Names returns every registered algorithm name, sorted.
func Names() []string {
	names := make([]string, 0, len(algorithms))
	for name := range algorithms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New builds the named algorithm over the cluster's shared per-host
// runtime. Transport state persists across Run calls on the returned
// instance (warm queue pairs and buffers, as OSU methodology requires).
func New(cl *cluster.Cluster, name string, opts Options) (collective.Algorithm, error) {
	b, ok := algorithms[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown algorithm %q (have %v)", name, Names())
	}
	if cl.Fabric().Partitioned() && !PartitionSafe(name) {
		return nil, fmt.Errorf("registry: %s is not partition-safe; build it on a confined fabric (the fabric was partitioned for an earlier algorithm)", name)
	}
	hosts := opts.Hosts
	if hosts == nil {
		hosts = cl.Fabric().Graph().Hosts()
	}
	return b(name, cl, hosts, opts)
}

// Verifier is implemented by algorithms that can check payload integrity
// of the most recent operation (requires VerifyData in the options).
type Verifier interface {
	VerifyLast(op collective.Op) error
}

// runBlocking drives the engine after a successful Start and enforces
// completion, the shared tail of every blocking Run implementation.
func runBlocking(name string, eng *sim.Engine, start func(done func(*collective.Result)) error) (*collective.Result, error) {
	var res *collective.Result
	if err := start(func(r *collective.Result) { res = r }); err != nil {
		return nil, err
	}
	eng.Run()
	if res == nil {
		return nil, fmt.Errorf("registry: %s did not complete (deadlock?)", name)
	}
	return res, nil
}
