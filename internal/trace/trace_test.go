package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(1, 0, 1, PhaseDispatch, "") // must not panic
	r.Reset()
	if r.Timeline() != "(no events)\n" {
		t.Fatal("nil timeline wrong")
	}
}

func TestRecordAndQuery(t *testing.T) {
	r := &Recorder{}
	r.Record(30, 1, 1, PhaseBarrier, "")
	r.Record(10, 0, 1, PhaseDispatch, "allgather")
	r.Record(20, 1, 1, PhaseDispatch, "allgather")
	if len(r.Events) != 3 {
		t.Fatalf("events = %d", len(r.Events))
	}
	phases := r.Phases(1)
	if len(phases) != 2 || phases[0] != PhaseDispatch || phases[1] != PhaseBarrier {
		t.Fatalf("rank 1 phases = %v", phases)
	}
	e, ok := r.First(0, PhaseDispatch)
	if !ok || e.T != 10 || e.Detail != "allgather" {
		t.Fatalf("First = %+v ok=%v", e, ok)
	}
	if _, ok := r.First(0, PhaseDone); ok {
		t.Fatal("found phase never recorded")
	}
}

func TestTimelineOrdered(t *testing.T) {
	r := &Recorder{}
	r.Record(sim.Time(300), 2, 1, PhaseDone, "")
	r.Record(sim.Time(100), 0, 1, PhaseDispatch, "")
	r.Record(sim.Time(200), 1, 1, PhaseBarrier, "")
	tl := r.Timeline()
	iDispatch := strings.Index(tl, PhaseDispatch)
	iBarrier := strings.Index(tl, PhaseBarrier)
	iDone := strings.Index(tl, PhaseDone)
	if !(iDispatch < iBarrier && iBarrier < iDone) {
		t.Fatalf("timeline not time-ordered:\n%s", tl)
	}
}

func TestReset(t *testing.T) {
	r := &Recorder{}
	r.Record(1, 0, 1, PhaseDispatch, "")
	r.Reset()
	if len(r.Events) != 0 {
		t.Fatal("Reset left events")
	}
}
