// Package trace records protocol-level events from the collective state
// machines — the execution-flow view of the paper's Figure 9 (task posting,
// RNR synchronization, multicast start/finish per rank, recovery actions,
// final handshake). Recorders are attached through core.Config and add no
// cost to the simulated timing; they exist for debugging, for tests that
// assert schedule properties, and for rendering timelines.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Phase names used by the core protocol. Consumers match on these.
const (
	PhaseDispatch   = "dispatch"    // task handed to the app thread
	PhaseBarrier    = "barrier"     // RNR synchronization complete
	PhaseTxStart    = "tx-start"    // multicast injection begins (root)
	PhaseTxDone     = "tx-done"     // all chunks posted and on the wire
	PhaseActivate   = "activate"    // chain token passed to the successor
	PhaseRxDone     = "rx-done"     // every chunk present, copies drained
	PhaseRecovery   = "recovery"    // cutoff fired; fetch request sent
	PhaseFetchServe = "fetch-serve" // served (part of) a neighbor's request
	PhaseFinal      = "final"       // handshake sent to the left neighbor
	PhaseDone       = "done"        // operation complete at this rank
)

// Event is one recorded protocol transition.
type Event struct {
	T      sim.Time
	Rank   int
	Seq    int // operation sequence number
	Phase  string
	Detail string
}

// Recorder accumulates events. The zero value is ready to use. A nil
// *Recorder is valid and records nothing, so call sites need no guards.
type Recorder struct {
	Events []Event
}

// Record appends an event. Safe on a nil receiver.
func (r *Recorder) Record(t sim.Time, rank, seq int, phase, detail string) {
	if r == nil {
		return
	}
	r.Events = append(r.Events, Event{T: t, Rank: rank, Seq: seq, Phase: phase, Detail: detail})
}

// Reset discards recorded events (between iterations).
func (r *Recorder) Reset() {
	if r != nil {
		r.Events = r.Events[:0]
	}
}

// ByRank returns rank r's events in time order.
func (r *Recorder) ByRank(rank int) []Event {
	var out []Event
	for _, e := range r.Events {
		if e.Rank == rank {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// Phases returns the ordered phase names rank r went through.
func (r *Recorder) Phases(rank int) []string {
	evs := r.ByRank(rank)
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.Phase
	}
	return out
}

// First returns the earliest event with the given phase for a rank, or
// false when absent.
func (r *Recorder) First(rank int, phase string) (Event, bool) {
	for _, e := range r.ByRank(rank) {
		if e.Phase == phase {
			return e, true
		}
	}
	return Event{}, false
}

// Timeline renders every event in time order, one line each — the textual
// equivalent of Figure 9.
func (r *Recorder) Timeline() string {
	if r == nil || len(r.Events) == 0 {
		return "(no events)\n"
	}
	evs := append([]Event(nil), r.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	var b strings.Builder
	for _, e := range evs {
		fmt.Fprintf(&b, "%12v  rank %3d  op %3d  %-12s %s\n", e.T, e.Rank, e.Seq, e.Phase, e.Detail)
	}
	return b.String()
}
