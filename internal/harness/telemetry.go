package harness

import (
	"strconv"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// telemetryCfg is the process-wide telemetry configuration, set once from
// the -telemetry flags (or the manifest's telemetry block) before any sweep
// runs. Like engineShards it is an execution knob, not a sweep axis: the
// canonical metrics a run exports are byte-identical at every -workers and
// -shards value.
var telemetryCfg telemetry.Config

// SetTelemetry configures telemetry for every kernel the harness runs from
// now on. Call once at startup, before running sweeps; the sweep worker
// pool reads it concurrently. The zero Config disables collection — kernels
// then thread a nil registry everywhere, which is free.
func SetTelemetry(cfg telemetry.Config) { telemetryCfg = cfg }

// newRegistry returns a fresh per-point registry, or nil when telemetry is
// disabled. Each grid point gets its own registry (sweep workers run
// points concurrently; registries are not goroutine-safe).
func newRegistry() *telemetry.Registry {
	if !telemetryCfg.Enabled {
		return nil
	}
	return telemetry.New(telemetryCfg)
}

// traceRegistry returns a registry for the representative traced run:
// always enabled — the traced run exists to be observed — but honoring the
// configured sample period and filters.
func traceRegistry() *telemetry.Registry {
	cfg := telemetryCfg
	cfg.Enabled = true
	return telemetry.New(cfg)
}

// armFabricTelemetry attaches the virtual-time sampler that tracks the
// fabric's worst serializer backlog as a gauge. The fabric is confined to
// the primary shard, so the sampled series is identical at every -workers
// and -shards value. Returns the sampler so kernels that reuse one fabric
// across iterations can re-arm it (the sampler self-terminates when the
// event queue drains). A nil registry yields a nil sampler; Arm on nil is a
// no-op.
func armFabricTelemetry(reg *telemetry.Registry, f *fabric.Fabric) *telemetry.Sampler {
	s := reg.NewSampler(f.Engine())
	if s == nil {
		return nil
	}
	gauge := reg.Gauge("fabric", "backlog_ns", "", telemetry.Stable)
	s.Add(func(t sim.Time) { gauge.Sample(t, float64(f.CurrentMaxBacklog())) })
	s.Arm()
	return s
}

// collectEngineTelemetry exports the engine's event counters. Events and
// scheduled totals are Stable: on a sharded group they sum across shards,
// and every logical event is scheduled and fired exactly once on exactly
// one shard, so the sums match the serial engine at any -shards value
// (the same invariant the sim_events record metric relies on). Recycled
// is Diagnostic — event-pool reuse depends on the per-shard free-list
// interleave, so it is visible to benchmarks and `repro trace` but
// excluded from canonical metrics.json, as are the epoch/stall counts and
// the per-shard split that only exist under -shards > 1.
func collectEngineTelemetry(reg *telemetry.Registry, eng *sim.Engine) {
	if reg == nil {
		return
	}
	executed, scheduled, recycled := eng.Executed, eng.Scheduled, eng.Recycled
	if g := eng.Group(); g != nil {
		executed, scheduled, recycled = g.ExecutedTotal(), g.ScheduledTotal(), g.RecycledTotal()
	}
	reg.Counter("sim", "events", "", telemetry.Stable).Add(executed)
	reg.Counter("sim", "scheduled", "", telemetry.Stable).Add(scheduled)
	reg.Counter("sim", "recycled", "", telemetry.Diagnostic).Add(recycled)
	if g := eng.Group(); g != nil {
		reg.Counter("sim", "epochs", "", telemetry.Diagnostic).Add(g.Epochs)
		reg.Counter("sim", "epoch_stalls", "", telemetry.Diagnostic).Add(g.Stalls)
		for i := 0; i < g.Shards(); i++ {
			reg.Counter("sim", "shard_events", "shard="+strconv.Itoa(i),
				telemetry.Diagnostic).Add(g.Shard(i).Executed)
		}
	}
}

// finishTelemetry runs the end-of-point collection pass — engine counters,
// fabric channel counters, transport counters — and attaches the snapshot
// to the record. f and cl may be nil for kernels without that layer. A nil
// registry is a no-op.
func finishTelemetry(rec *sweep.Record, reg *telemetry.Registry, eng *sim.Engine, f *fabric.Fabric, cl *cluster.Cluster) {
	if reg == nil {
		return
	}
	collectEngineTelemetry(reg, eng)
	if f != nil {
		f.CollectTelemetry(reg)
	}
	if cl != nil {
		cl.CollectTelemetry(reg)
	}
	rec.Telemetry = reg.Snapshot()
}
