package harness

import (
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
)

// engineShards is the process-wide engine shard count, set once from the
// -shards flag before any sweep runs. It is an execution knob, not a
// sweep axis: results are byte-identical at every value, so it never
// appears in sweep.Spec or report keys.
var engineShards = 1

// SetShards selects the conservative-parallel shard count for every
// engine the harness builds from now on. Values below 1 are clamped to
// serial. Call once at startup (after flag.Parse), before running sweeps;
// the sweep worker pool reads it concurrently.
func SetShards(n int) {
	if n < 1 {
		n = 1
	}
	engineShards = n
}

// Shards reports the configured shard count.
func Shards() int { return engineShards }

// newEngine builds the engine for one simulation point: a plain serial
// engine at -shards 1, otherwise the primary shard of a conservative
// sharded group partitioned over the graph's hosts with lookahead taken
// from the fabric config. Model construction and results are identical
// either way.
func newEngine(seed uint64, g *topology.Graph, cfg fabric.Config) *sim.Engine {
	if engineShards == 1 {
		return sim.NewEngine(seed)
	}
	_, eng := fabric.NewShardedEngine(seed, g, cfg, engineShards)
	return eng
}
