package harness

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/verbs"
	"repro/internal/workload"
)

// The training sweep measures application-level workloads — declarative
// compute/collective DAGs from internal/workload, headlined by the FSDP
// step of §II-A — on a full-bandwidth star fabric, optionally under a named
// perturbation scenario, so a chaos preset can hit a live training step.

// TrainConfig carries the workload knobs the sweep grid does not vary.
type TrainConfig struct {
	// Layers is the FSDP model depth. Zero defaults to 6.
	Layers int
	// Compute is the forward+backward time per layer. Zero defaults to
	// 150 µs.
	Compute sim.Time
	// Jobs is the tenant count of multi-job presets. Zero defaults to 2.
	Jobs int
}

// TrainGrid declares the workload × shard-size × scenario product at one
// scale: the grid cmd/trainbench expands. Workload names come from the
// internal/workload preset registry; include "quiet" among the scenarios to
// anchor the slowdown metric.
func TrainGrid(workloads []string, nodes, shardBytes []int, scenarios []string, seed uint64) sweep.Grid {
	return sweep.Grid{
		Workloads: workloads,
		Nodes:     nodes,
		MsgBytes:  shardBytes,
		Scenarios: scenarios,
		Seed:      seed,
	}
}

// trainPoint builds the point's fabric and workload: a star topology sized
// by the workload's host demand (full-bandwidth, as the FSDP scenario of
// Appendix B assumes).
func trainPoint(s sweep.Spec, cfg TrainConfig, tr *trace.Recorder, reg *telemetry.Registry) (*cluster.Cluster, workload.Workload, *telemetry.Sampler, error) {
	w, err := workload.New(s.Workload, workload.Config{
		Nodes:      s.Nodes,
		Layers:     cfg.Layers,
		ShardBytes: s.MsgBytes,
		Compute:    cfg.Compute,
		Jobs:       cfg.Jobs,
		Tracer:     tr,
		Metrics:    reg,
	})
	if err != nil {
		return nil, workload.Workload{}, nil, err
	}
	hosts := w.MinHosts()
	if hosts < s.Nodes {
		hosts = s.Nodes
	}
	if hosts < 2 {
		return nil, workload.Workload{}, nil, fmt.Errorf("harness: workload %q needs at least 2 hosts", s.Workload)
	}
	g := topology.Star(hosts)
	eng := newEngine(s.Seed, g, fabric.Config{})
	f := fabric.New(eng, g, fabric.Config{})
	cl := cluster.New(f, cluster.Config{Verbs: verbs.Config{Metrics: reg}})
	sampler := armFabricTelemetry(reg, f)
	return cl, w, sampler, nil
}

// trainPt is one built training point: the model stack plus the workload
// to start on it — the fork unit of the warm-start path.
type trainPt struct {
	cl      *cluster.Cluster
	w       workload.Workload
	reg     *telemetry.Registry
	sampler *telemetry.Sampler
}

// TrainKernel returns the sweep kernel for workload points: it executes the
// point's preset on a fresh star fabric — under the point's scenario when
// one is named, with the resilience sweep's virtual-time and event-budget
// runaway guards — and reports step time, communication busy/exposed time,
// and the achieved overlap. The Record carries the workload metadata fields
// (workload, overlap_frac) alongside the metrics.
func TrainKernel(cfg TrainConfig) sweep.Func {
	return func(s sweep.Spec) (sweep.Record, error) {
		reg := newRegistry()
		cl, w, sampler, err := trainPoint(s, cfg, nil, reg)
		if err != nil {
			return sweep.Record{}, err
		}
		return trainRun(trainPt{cl: cl, w: w, reg: reg, sampler: sampler}, s)
	}
}

// trainRun is the kernel's continuation: start the workload on the built
// stack and drive it to completion. The warm-start path enters here after
// forking a shared stack, so the point's identity (seed, scenario) comes
// from s.
func trainRun(pt trainPt, s sweep.Spec) (sweep.Record, error) {
	cl, w, reg := pt.cl, pt.w, pt.reg
	f := cl.Fabric()
	eng := f.Engine()
	p, err := workload.Start(cl, w)
	if err != nil {
		return sweep.Record{}, err
	}
	if s.Scenario == "" {
		eng.Run()
	} else {
		sc, err := scenario.New(s.Scenario)
		if err != nil {
			return sweep.Record{}, err
		}
		// Scope the scenario to the hosts the workload runs on and
		// drive the engine in bounded slices, exactly as the resilience
		// kernel does: a persistent injector keeps the queue full
		// forever, so completion must be cut off by work done.
		act := sc.InstallOn(f, f.Graph().Hosts(), s.Seed)
		for !p.Done() && p.Err() == nil &&
			eng.Now() < resilienceHorizon && eng.Executed < resilienceEventBudget {
			eng.RunFor(sim.Millisecond)
		}
		act.Stop()
		if !p.Done() && p.Err() == nil {
			// Heal the fabric and grant one grace period so transports
			// stuck on a dead path finish instead of deadlocking.
			for id := 0; id < f.NumChannels(); id++ {
				f.ClearOverrides(fabric.ChannelID(id))
			}
			for end := eng.Now() + resilienceHorizon/4; !p.Done() && p.Err() == nil &&
				eng.Now() < end && eng.Executed < 2*resilienceEventBudget; {
				eng.RunFor(sim.Millisecond)
			}
		}
		if !p.Done() && p.Err() == nil {
			return sweep.Record{}, fmt.Errorf("harness: workload %s did not complete under scenario %q within %v / %d events",
				s.Workload, s.Scenario, resilienceHorizon, resilienceEventBudget)
		}
	}
	rep, err := p.Report()
	if err != nil {
		return sweep.Record{}, err
	}
	// Step time is the slowest job's step; busy/exposed/overlap
	// aggregate communication work across jobs.
	var step, commBusy, exposed sim.Time
	for i := range rep.Jobs {
		j := &rep.Jobs[i]
		if st := j.StepTime(); st > step {
			step = st
		}
		commBusy += j.CommBusy
		exposed += j.Exposed()
	}
	overlap := 0.0
	if commBusy > 0 {
		overlap = 1 - float64(exposed)/float64(commBusy)
		if overlap < 0 {
			overlap = 0
		}
	}
	rec := sweep.Record{
		Spec:        s,
		Workload:    s.Workload,
		OverlapFrac: overlap,
		Metrics: map[string]float64{
			"duration_us":  step.Micros(),
			"span_us":      rep.Span().Micros(),
			"comm_busy_us": commBusy.Micros(),
			"exposed_us":   exposed.Micros(),
			"overlap_frac": overlap,
		},
	}
	addEngineMetrics(&rec, eng)
	rep.ExportTelemetry(reg)
	finishTelemetry(&rec, reg, eng, f, cl)
	return rec, nil
}

// TrainRecords expands and runs the training grid on the worker pool and,
// when the grid sweeps scenarios, annotates slowdown-vs-quiet (each point's
// duration over its quiet sibling's).
func TrainRecords(g sweep.Grid, workers int, cfg TrainConfig) ([]sweep.Record, error) {
	recs, err := sweep.RunGrid(g, workers, TrainKernel(cfg))
	if err != nil {
		return nil, err
	}
	if len(g.Scenarios) > 0 {
		AnnotateSlowdown(recs)
	}
	return recs, nil
}

// TrainTrace re-runs one workload point with a trace recorder attached to
// its multicast communicators and an always-on telemetry registry, and
// returns the bundle: protocol phase events plus per-job workload spans and
// the metric snapshot. The traced run is separate from the sweep records,
// so attaching it never perturbs their byte-identity. P2P-only workloads
// produce an empty timeline (the baselines have no protocol tracer) but
// still carry workload spans and fabric metrics in the bundle.
func TrainTrace(s sweep.Spec, cfg TrainConfig) (*telemetry.Bundle, error) {
	rec := &trace.Recorder{}
	reg := traceRegistry()
	cl, w, _, err := trainPoint(s, cfg, rec, reg)
	if err != nil {
		return nil, err
	}
	rep, err := workload.Run(cl, w)
	if err != nil {
		return nil, err
	}
	f := cl.Fabric()
	rep.ExportTelemetry(reg)
	collectEngineTelemetry(reg, f.Engine())
	f.CollectTelemetry(reg)
	cl.CollectTelemetry(reg)
	return &telemetry.Bundle{Events: rec.Events, Snap: reg.Snapshot()}, nil
}
