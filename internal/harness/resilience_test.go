package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sweep"
)

// TestResilienceSweepByteIdentical is the acceptance check for the
// scenario axis: the same algorithm × scenario grid produces byte-identical
// JSON at any worker count. It stays in the short suite so CI's -race step
// exercises the scenario injectors on the worker pool.
func TestResilienceSweepByteIdentical(t *testing.T) {
	g := ResilienceGrid(
		[]string{"mcast-allgather", "ring-allgather"},
		[]string{"quiet", "flap-spine", "tenant-50load"},
		16, 64<<10, 42)
	run := func(workers int) []byte {
		recs, err := ResilienceRecords(g, workers)
		if err != nil {
			t.Fatal(err)
		}
		return encodeReport(t, recs)
	}
	a, b := run(1), run(6)
	if !bytes.Equal(a, b) {
		t.Fatal("resilience sweep JSON differs between 1 and 6 workers")
	}
}

// TestResilienceQuietMatchesCollKernel checks the identity path at kernel
// altitude: the quiet-scenario kernel must produce the exact Result (byte
// for byte) and duration the scenario-free collective kernel produces for
// the same spec and seed.
func TestResilienceQuietMatchesCollKernel(t *testing.T) {
	spec := sweep.Spec{Algorithm: "mcast-allgather", Nodes: 16, MsgBytes: 64 << 10, Seed: 1234}
	base, err := CollKernel(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Scenario = "quiet"
	quiet, err := ResilienceKernel(spec)
	if err != nil {
		t.Fatal(err)
	}
	bj, _ := json.Marshal(base.Result)
	qj, _ := json.Marshal(quiet.Result)
	if !bytes.Equal(bj, qj) {
		t.Fatalf("quiet kernel result differs from CollKernel:\n%s\n---\n%s", bj, qj)
	}
	if b, q := base.Metric("duration_us"), quiet.Metric("duration_us"); b != q {
		t.Fatalf("quiet duration %v differs from no-scenario %v", q, b)
	}
	for _, m := range []string{"drops", "perturbs", "restores", "bg_mbytes"} {
		if v := quiet.Metric(m); v != 0 {
			t.Fatalf("quiet kernel reported %s = %v, want 0", m, v)
		}
	}
}

// TestAnnotateSlowdown pins the slowdown metric's semantics: quiet anchors
// at exactly 1, perturbed siblings are duration ratios, and points without
// a quiet sibling stay unannotated.
func TestAnnotateSlowdown(t *testing.T) {
	mk := func(algo, sc string, us float64) sweep.Record {
		return sweep.Record{
			Spec:    sweep.Spec{Algorithm: algo, Nodes: 4, MsgBytes: 1024, Scenario: sc},
			Metrics: map[string]float64{"duration_us": us},
		}
	}
	recs := []sweep.Record{
		mk("a", "quiet", 100),
		mk("a", "flap-spine", 250),
		mk("b", "flap-spine", 999), // no quiet sibling
	}
	AnnotateSlowdown(recs)
	if got := recs[0].Metric("slowdown_vs_quiet"); got != 1 {
		t.Fatalf("quiet slowdown = %v, want 1", got)
	}
	if got := recs[1].Metric("slowdown_vs_quiet"); got != 2.5 {
		t.Fatalf("flap slowdown = %v, want 2.5", got)
	}
	if _, ok := recs[2].Metrics["slowdown_vs_quiet"]; ok {
		t.Fatal("record without a quiet sibling was annotated")
	}
}
