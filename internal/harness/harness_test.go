package harness

import (
	"math"
	"testing"

	"repro/internal/verbs"
)

func TestRxBenchUDSingleThreadMatchesModel(t *testing.T) {
	r := RunRxBench(RxBenchConfig{Transport: verbs.UD, Workers: 1, ChunkBytes: 4096, TotalBytes: 8 << 20})
	// One DPA thread at 1084 cycles/CQE and 1.8 GHz: 1.66M chunks/s.
	want := 1.8e9 / 1084
	if math.Abs(r.ChunkRate-want)/want > 0.03 {
		t.Fatalf("UD single-thread chunk rate %.3g, want %.3g", r.ChunkRate, want)
	}
	if r.Chunks != 2048 {
		t.Fatalf("chunks = %d", r.Chunks)
	}
	if r.RNRDrops != 0 {
		t.Fatalf("bench dropped %d chunks", r.RNRDrops)
	}
}

func TestRxBenchUCFasterThanUD(t *testing.T) {
	ud := RunRxBench(RxBenchConfig{Transport: verbs.UD, Workers: 1, ChunkBytes: 4096, TotalBytes: 4 << 20})
	uc := RunRxBench(RxBenchConfig{Transport: verbs.UC, Workers: 1, ChunkBytes: 4096, TotalBytes: 4 << 20})
	if uc.GiBps <= ud.GiBps {
		t.Fatalf("UC (%v) not faster than UD (%v) single-thread", uc.GiBps, ud.GiBps)
	}
	// Table I ratio: 1084/598 ≈ 1.8x.
	ratio := uc.GiBps / ud.GiBps
	if ratio < 1.5 || ratio > 2.2 {
		t.Fatalf("UC/UD ratio %.2f, want ≈1.8", ratio)
	}
}

func TestRxBenchThreadScalingShape(t *testing.T) {
	// The headline offloading result: UC saturates the link by 4 threads,
	// UD between 8 and 16 (Figures 13/14).
	at := func(tr verbs.Transport, w int) float64 {
		return RunRxBench(RxBenchConfig{Transport: tr, Workers: w, ChunkBytes: 4096, TotalBytes: 8 << 20}).LinkShare
	}
	if s := at(verbs.UC, 4); s < 0.97 {
		t.Errorf("UC at 4 threads reaches %.2f of link, want ~1.0", s)
	}
	if s := at(verbs.UD, 4); s > 0.97 {
		t.Errorf("UD at 4 threads already saturates (%.2f); paper needs 8-16", s)
	}
	if s := at(verbs.UD, 8); s < 0.95 {
		t.Errorf("UD at 8 threads reaches %.2f of link, want ~1.0", s)
	}
	// Monotone non-decreasing.
	prev := 0.0
	for _, w := range []int{1, 2, 4, 8, 16} {
		s := at(verbs.UD, w)
		if s+0.02 < prev {
			t.Fatalf("UD scaling regressed at %d threads: %.2f < %.2f", w, s, prev)
		}
		prev = s
	}
}

func TestRxBenchCPUBaselineBelowLink(t *testing.T) {
	r := RunRxBench(RxBenchConfig{Transport: verbs.UD, Workers: 1, ChunkBytes: 4096, TotalBytes: 8 << 20, OnCPU: true})
	// Figure 5: a single CPU core sustains only ~1/2-2/3 of 200 Gbit/s.
	if r.LinkShare < 0.40 || r.LinkShare > 0.75 {
		t.Fatalf("CPU single-core link share %.2f, want within [0.40, 0.75]", r.LinkShare)
	}
}

func TestFig5DPAWinsAtLargeMessages(t *testing.T) {
	pts := Fig5SingleCore([]int{1 << 20})
	p := pts[0]
	if p.DPAGbps <= p.CPUGbps {
		t.Fatalf("DPA core (%.1f) not above CPU core (%.1f)", p.DPAGbps, p.CPUGbps)
	}
	if p.DPAGbps < 0.9*p.LinkGbps*4096/4160 {
		t.Fatalf("DPA core does not reach peak: %.1f of %.1f", p.DPAGbps, p.LinkGbps)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1SingleThread()
	if len(rows) != 2 {
		t.Fatal("want 2 rows")
	}
	for _, r := range rows {
		switch r.Datapath {
		case "UC":
			if r.InstructionsCQE != 66 || r.CyclesCQE != 598 {
				t.Fatalf("UC row: %+v", r)
			}
			if math.Abs(r.ThroughputGiBps-11.9) > 1.5 {
				t.Fatalf("UC throughput %.1f GiB/s, paper 11.9", r.ThroughputGiBps)
			}
		case "UD":
			if r.InstructionsCQE != 113 || r.CyclesCQE != 1084 {
				t.Fatalf("UD row: %+v", r)
			}
			if math.Abs(r.ThroughputGiBps-5.2) > 1.5 {
				t.Fatalf("UD throughput %.1f GiB/s, paper 5.2", r.ThroughputGiBps)
			}
		}
	}
}

func TestFig15LargerChunksNeedFewerThreads(t *testing.T) {
	pts := Fig15ChunkSize([]int{4 << 10, 64 << 10}, []int{1})
	var small, large float64
	for _, p := range pts {
		if p.ChunkBytes == 4<<10 {
			small = p.LinkShare
		} else {
			large = p.LinkShare
		}
	}
	if large <= small {
		t.Fatalf("64 KiB chunks (%.2f) not better than 4 KiB (%.2f) at 1 thread", large, small)
	}
	if large < 0.95 {
		t.Fatalf("64 KiB chunks at 1 thread reach %.2f of line rate, want ~1.0", large)
	}
}

func TestFig16Reaches16TbitWithin128Threads(t *testing.T) {
	if testing.Short() {
		t.Skip("128-thread Tbit/s scaling sweep (several seconds)")
	}
	pts := Fig16TbitScaling([]int{64, 128})
	reached := map[string]bool{}
	for _, p := range pts {
		if p.Threads == 128 && p.ChunkRate >= Tbit16Target {
			reached[p.Transport] = true
		}
	}
	if !reached["UD"] || !reached["UC"] {
		t.Fatalf("1.6 Tbit/s target not reached with 128 threads: %v", reached)
	}
}

func TestFig10McastDominatesAtScale(t *testing.T) {
	pts, err := Fig10Breakdown([]int{16}, []int{256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.McastFrac < 0.90 {
		t.Fatalf("multicast fraction %.2f at 16 nodes / 256 KiB, want > 0.90 (paper: 99%%)", p.McastFrac)
	}
	if p.BarrierFrac+p.McastFrac+p.FinalFrac > 1.01 {
		t.Fatalf("fractions exceed 1: %+v", p)
	}
}

func TestFig10SyncMattersMoreAtSmallSizes(t *testing.T) {
	// The paper's Figure 10 point in relative form: the synchronization
	// share (RNR barrier + final handshake) shrinks as the message grows.
	pts, err := Fig10Breakdown([]int{4}, []int{4096, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	small := pts[0].BarrierFrac + pts[0].FinalFrac
	large := pts[1].BarrierFrac + pts[1].FinalFrac
	if small < 3*large {
		t.Fatalf("sync share at 4 KiB (%.3f) not >> share at 1 MiB (%.3f)", small, large)
	}
}

func TestFig11ShapesAtModestScale(t *testing.T) {
	pts, err := Fig11Throughput(16, []int{256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	byAlgo := map[string]float64{}
	for _, p := range pts {
		byAlgo[p.Algo] = p.GiBps
	}
	if byAlgo["mcast-broadcast"] <= byAlgo["knomial-broadcast"] {
		t.Fatalf("mcast bcast (%.2f) not above knomial (%.2f)",
			byAlgo["mcast-broadcast"], byAlgo["knomial-broadcast"])
	}
	if byAlgo["mcast-broadcast"] <= byAlgo["binary-broadcast"] {
		t.Fatalf("mcast bcast (%.2f) not above binary tree (%.2f)",
			byAlgo["mcast-broadcast"], byAlgo["binary-broadcast"])
	}
	// Allgather: multicast within 2x of ring either way (the paper reports
	// parity at FSDP sizes).
	ratio := byAlgo["mcast-allgather"] / byAlgo["ring-allgather"]
	if ratio < 0.5 || ratio > 3.0 {
		t.Fatalf("mcast/ring allgather ratio %.2f out of range", ratio)
	}
}

func TestFig12SavingsShape(t *testing.T) {
	rows, err := Fig12Traffic(32, 64<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	var bcast, ag float64
	for _, r := range rows {
		if r.Algo == "mcast" {
			if r.Op == "broadcast" {
				bcast = r.Savings
			} else {
				ag = r.Savings
			}
		}
	}
	if bcast < 1.3 {
		t.Fatalf("broadcast traffic savings %.2f, want >= 1.3 (paper: 1.5x)", bcast)
	}
	if ag < 1.6 || ag > 2.4 {
		t.Fatalf("allgather traffic savings %.2f, want ≈2x", ag)
	}
}

func TestAppBSpeedupIncreasesWithP(t *testing.T) {
	pts, err := AppBConcurrent([]int{2, 8}, 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Speedup <= pts[0].Speedup {
		t.Fatalf("speedup not increasing: P=2 %.2f vs P=8 %.2f", pts[0].Speedup, pts[1].Speedup)
	}
	if pts[1].Speedup < 1.3 {
		t.Fatalf("P=8 speedup %.2f, want > 1.3 (model: 1.75)", pts[1].Speedup)
	}
}

func TestRxBenchInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid config did not panic")
		}
	}()
	RunRxBench(RxBenchConfig{Transport: verbs.UD, Workers: 0, ChunkBytes: 4096, TotalBytes: 1})
}
