package harness

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/registry"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/verbs"
)

// The resilience sweep measures collectives on a noisy fabric: every grid
// point runs one algorithm under one named scenario (internal/scenario) on
// the testbed model and reports how much the perturbations cost relative to
// the quiet fabric, plus the recovery work they forced (fabric drops,
// slow-path repairs, retransmissions, background-traffic volume).

// resilienceHorizon bounds the virtual time a perturbed collective may
// take. A scenario that prevents completion (e.g. a permanently dead path
// with no recovery) would otherwise keep the engine alive forever through
// its own re-arming events.
const resilienceHorizon = 2 * sim.Second

// resilienceEventBudget bounds the executed-event count per point: a
// scenario with persistent background flows schedules packets for as long
// as the engine runs, so a stalled collective must be cut off by work done,
// not just virtual time, or the sweep grinds through hundreds of millions
// of tenant packets on the way to the horizon.
const resilienceEventBudget = 50_000_000

// ResilienceGrid declares the algorithm × scenario product at one scale:
// the grid chaosbench and the resilience experiments expand. Include
// "quiet" among the scenarios to anchor the slowdown metric.
func ResilienceGrid(algos, scenarios []string, nodes, msgBytes int, seed uint64) sweep.Grid {
	return sweep.Grid{
		Algorithms: algos,
		Scenarios:  scenarios,
		Nodes:      []int{nodes},
		MsgBytes:   []int{msgBytes},
		Seed:       seed,
	}
}

// ResilienceKernel is the sweep kernel for collectives under perturbation:
// it arms the point's scenario on a fresh testbed fabric (with an RNG
// stream derived from the point seed, preserving byte-identical JSON at any
// worker count), starts the algorithm non-blocking, and stops the scenario
// the moment the collective completes so the engine drains.
func ResilienceKernel(s sweep.Spec) (sweep.Record, error) {
	if _, err := scenario.New(s.Scenario); err != nil {
		return sweep.Record{}, err
	}
	pt, err := collPoint(s)
	if err != nil {
		return sweep.Record{}, err
	}
	return resilienceRun(pt, pt.spec)
}

// resilienceRun is the kernel's continuation: everything after the model
// stack exists. The warm-start path forks a shared stack back to its
// construction snapshot and enters here, so the continuation must read
// the point's identity from s (seed, scenario), never from pt.spec.
func resilienceRun(pt collPt, s sweep.Spec) (sweep.Record, error) {
	sc, err := scenario.New(s.Scenario)
	if err != nil {
		return sweep.Record{}, err
	}
	f := pt.f
	eng := f.Engine()
	starter, ok := pt.alg.(collective.Starter)
	if !ok {
		return sweep.Record{}, fmt.Errorf("harness: %s cannot run non-blocking under a scenario", s.Algorithm)
	}
	// Scope the scenario to the participating hosts: on the 188-host
	// testbed a fabric-wide random straggler or spine flap would usually
	// land on idle hardware and measure nothing.
	act := sc.InstallOn(f, f.Graph().Hosts()[:s.Nodes], s.Seed)
	var res *collective.Result
	err = starter.Start(collective.Op{Kind: collective.Kind(s.Op), Bytes: s.MsgBytes},
		func(r *collective.Result) {
			res = r
			act.Stop()
		})
	if err != nil {
		return sweep.Record{}, err
	}
	// Drive the engine in slices so both bounds — virtual time and executed
	// events — are enforced even against a scenario that keeps the queue
	// full forever. Slicing never changes results: events fire at identical
	// times, only the (RNG-free) bookkeeping between slices differs.
	for res == nil && eng.Now() < resilienceHorizon && eng.Executed < resilienceEventBudget {
		eng.RunFor(sim.Millisecond)
	}
	if res == nil {
		// Freeze the scenario, heal the fabric, and grant one grace period:
		// a transport stuck retransmitting into a dead link gets to finish
		// on the restored path instead of deadlocking the sweep.
		act.Stop()
		for id := 0; id < f.NumChannels(); id++ {
			f.ClearOverrides(fabric.ChannelID(id))
		}
		for end := eng.Now() + resilienceHorizon/4; res == nil && eng.Now() < end &&
			eng.Executed < 2*resilienceEventBudget; {
			eng.RunFor(sim.Millisecond)
		}
	}
	if res == nil {
		return sweep.Record{}, fmt.Errorf("harness: %s did not complete under scenario %q within %v / %d events",
			s.Algorithm, s.Scenario, resilienceHorizon, resilienceEventBudget)
	}
	var recovered, retransmits, rnrDrops float64
	for _, rs := range res.PerRank {
		recovered += float64(rs.Recovered)
		retransmits += float64(rs.Retransmits)
		rnrDrops += float64(rs.RNRDrops)
	}
	st := act.Stats()
	rec := sweep.Record{Spec: s, Result: res, Metrics: map[string]float64{
		"duration_us": res.Duration().Micros(),
		"gibps":       res.AlgBandwidth() / (1 << 30),
		"drops":       float64(f.TotalDropped),
		"recovered":   recovered,
		"retransmits": retransmits,
		"rnr_drops":   rnrDrops,
		"perturbs":    float64(st.Perturbs),
		"restores":    float64(st.Restores),
		"bg_mbytes":   float64(st.BackgroundBytes) / 1e6,
	}}
	addEngineMetrics(&rec, eng)
	pt.finish(&rec)
	return rec, nil
}

// ChaosTrace re-runs one resilience point with a trace recorder attached to
// the protocol state machines and an always-on telemetry registry, driving
// the engine under the same horizon/event-budget guards as the kernel, and
// returns the bundle. On a perturbed fabric the timeline shows the slow
// path at work — cutoff expiry, neighbor fetches, retransmissions — and the
// metric snapshot carries the drop/retransmit counters the scenario forced.
func ChaosTrace(s sweep.Spec) (*telemetry.Bundle, error) {
	sc, err := scenario.New(s.Scenario)
	if err != nil {
		return nil, err
	}
	if s.Op == "" {
		kind, err := opForAlgo(s.Algorithm)
		if err != nil {
			return nil, err
		}
		s.Op = string(kind)
	}
	_, f := testbedFabric(s.Seed, 0)
	hosts := f.Graph().Hosts()
	if s.Nodes < 1 || s.Nodes > len(hosts) {
		return nil, fmt.Errorf("harness: %d nodes exceed testbed (%d)", s.Nodes, len(hosts))
	}
	tr := &trace.Recorder{}
	reg := traceRegistry()
	cl := cluster.New(f, cluster.Config{Verbs: verbs.Config{Metrics: reg}})
	alg, err := registry.New(cl, s.Algorithm, registry.Options{
		Hosts: hosts[:s.Nodes],
		Core:  core.Config{Transport: verbs.UD, Tracer: tr, Metrics: reg},
		Coll:  coll.Config{ChunkBytes: s.ChunkSize, Metrics: reg},
	})
	if err != nil {
		return nil, err
	}
	armFabricTelemetry(reg, f)
	starter, ok := alg.(collective.Starter)
	if !ok {
		return nil, fmt.Errorf("harness: %s cannot run non-blocking under a scenario", s.Algorithm)
	}
	eng := f.Engine()
	act := sc.InstallOn(f, hosts[:s.Nodes], s.Seed)
	var res *collective.Result
	err = starter.Start(collective.Op{Kind: collective.Kind(s.Op), Bytes: s.MsgBytes},
		func(r *collective.Result) {
			res = r
			act.Stop()
		})
	if err != nil {
		return nil, err
	}
	for res == nil && eng.Now() < resilienceHorizon && eng.Executed < resilienceEventBudget {
		eng.RunFor(sim.Millisecond)
	}
	if res == nil {
		act.Stop()
		for id := 0; id < f.NumChannels(); id++ {
			f.ClearOverrides(fabric.ChannelID(id))
		}
		for end := eng.Now() + resilienceHorizon/4; res == nil && eng.Now() < end &&
			eng.Executed < 2*resilienceEventBudget; {
			eng.RunFor(sim.Millisecond)
		}
	}
	if res == nil {
		return nil, fmt.Errorf("harness: %s did not complete under scenario %q within %v / %d events",
			s.Algorithm, s.Scenario, resilienceHorizon, resilienceEventBudget)
	}
	collectEngineTelemetry(reg, eng)
	f.CollectTelemetry(reg)
	cl.CollectTelemetry(reg)
	return &telemetry.Bundle{Events: tr.Events, Snap: reg.Snapshot()}, nil
}

// AnnotateSlowdown adds the slowdown_vs_quiet metric to every record that
// has a quiet sibling — the same point with the Scenario axis at "quiet"
// (or empty). Quiet points get exactly 1. Records without a quiet sibling
// in the slice are left unannotated.
func AnnotateSlowdown(recs []sweep.Record) {
	quiet := make(map[string]float64)
	for _, r := range recs {
		if r.Spec.Scenario == scenario.Quiet || r.Spec.Scenario == "" {
			k := r.Spec
			k.Scenario = ""
			quiet[k.Key()] = r.Metric("duration_us")
		}
	}
	for i := range recs {
		k := recs[i].Spec
		k.Scenario = ""
		if q, ok := quiet[k.Key()]; ok && q > 0 {
			recs[i].Metrics["slowdown_vs_quiet"] = recs[i].Metric("duration_us") / q
		}
	}
}

// ResilienceRecords expands and runs the resilience grid on the worker pool
// and annotates slowdown-vs-quiet.
func ResilienceRecords(g sweep.Grid, workers int) ([]sweep.Record, error) {
	recs, err := sweep.RunGrid(g, workers, ResilienceKernel)
	if err != nil {
		return nil, err
	}
	AnnotateSlowdown(recs)
	return recs, nil
}
