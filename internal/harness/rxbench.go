// Package harness contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation (§VI): the back-to-back
// receive-datapath microbenchmarks (Figures 5, 13, 14, 15, 16 and Table I),
// the at-scale collective runs on the 188-node testbed model (Figures 10,
// 11, 12), the analytic models (Figures 2, 7), and the Appendix B
// concurrent {Allgather, Reduce-Scatter} study.
//
// Every experiment is declared as a sweep (sweeps.go): a parameter grid
// plus a kernel executed by internal/sweep's worker pool, producing
// structured Records with deterministic per-point seeds. The typed
// per-figure views (experiments.go) and the cmd/ binaries are thin
// projections of those Records.
package harness

import (
	"fmt"

	"repro/internal/dpa"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/verbs"
)

// RxBenchConfig parameterizes the receive-datapath microbenchmark: the
// paper's DPA-testbed setup where an x86 client saturates the link with
// chunks across several connections (standing in for multicast trees) and
// the server's worker threads process them (§VI-C).
type RxBenchConfig struct {
	// Transport is verbs.UD (staging datapath) or verbs.UC (zero-copy).
	Transport verbs.Transport
	// Workers is the number of server worker threads, each bound to one
	// connection's completion queue.
	Workers int
	// ChunkBytes is the fragmentation unit (UD: <= MTU; UC: any).
	ChunkBytes int
	// TotalBytes is the receive-buffer volume to deliver (paper: 8 MiB).
	TotalBytes int
	// OnCPU runs workers on a host CPU model instead of the DPA.
	OnCPU bool
	// LinkBandwidth in bytes/s; zero defaults to 25e9 (200 Gbit/s).
	LinkBandwidth float64
	// Seed for the simulation engine (defaults to 1).
	Seed uint64
}

// RxBenchResult reports the sustained datapath performance.
type RxBenchResult struct {
	Config    RxBenchConfig
	Elapsed   sim.Time
	Bps       float64 // payload bytes/second
	GiBps     float64
	Gbps      float64
	ChunkRate float64 // chunks/second processed
	Chunks    int
	Profile   dpa.Profile
	EffCycles float64 // contention-inflated cycles per CQE
	IPC       float64
	LinkGbps  float64
	LinkShare float64 // fraction of the link's payload rate sustained
	RNRDrops  uint64
	// Engine throughput counters for the run (deterministic counts).
	Events          uint64
	EventsScheduled uint64
	EventsRecycled  uint64
}

// RunRxBench executes the microbenchmark and returns the measured result.
func RunRxBench(cfg RxBenchConfig) RxBenchResult {
	if cfg.LinkBandwidth == 0 {
		cfg.LinkBandwidth = 25e9
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Workers <= 0 || cfg.ChunkBytes <= 0 || cfg.TotalBytes <= 0 {
		panic("harness: invalid rxbench config")
	}
	g := topology.BackToBack()
	fcfg := fabric.Config{LinkBandwidth: cfg.LinkBandwidth}
	eng := newEngine(cfg.Seed, g, fcfg)
	f := fabric.New(eng, g, fcfg)
	hosts := g.Hosts()

	chunks := (cfg.TotalBytes + cfg.ChunkBytes - 1) / cfg.ChunkBytes
	if chunks < cfg.Workers {
		cfg.Workers = chunks
	}
	perConn := (chunks + cfg.Workers - 1) / cfg.Workers

	// Deep receive queues so the measurement captures processing rate, not
	// RNR losses (the paper's sustained-rate methodology; 4 KiB chunks stay
	// under the BlueField RQ depth of 8192 anyway).
	vcfg := verbs.Config{RQDepth: perConn + 16}
	client := verbs.NewContext(f, hosts[0], vcfg)
	server := verbs.NewContext(f, hosts[1], vcfg)

	var chip *dpa.Chip
	var profile dpa.Profile
	switch {
	case cfg.OnCPU && cfg.Transport == verbs.UD:
		chip, profile = dpa.NewCPU(eng, cfg.Workers), dpa.CPUUDRecv
	case cfg.OnCPU:
		chip, profile = dpa.NewCPU(eng, cfg.Workers), dpa.CPURCRecv
	case cfg.Transport == verbs.UD:
		chip, profile = dpa.NewDPA(eng), dpa.DPAUDRecv
	default:
		chip, profile = dpa.NewDPA(eng), dpa.DPAUCRecv
	}
	threads := chip.AllocThreads(cfg.Workers)

	processed := 0
	var lastDone sim.Time
	srcMR := client.RegisterMR(cfg.TotalBytes)

	type conn struct {
		cliQP, srvQP *verbs.QP
		srvCQ        *verbs.CQ
		staging      *verbs.MR
		wkr          *dpa.Worker
	}
	conns := make([]*conn, cfg.Workers)
	mtu := f.MaxPayload()
	for w := 0; w < cfg.Workers; w++ {
		c := &conn{srvCQ: &verbs.CQ{}}
		cliCQ := &verbs.CQ{}
		if cfg.Transport == verbs.UD {
			if cfg.ChunkBytes > mtu {
				panic("harness: UD chunk exceeds MTU")
			}
			c.cliQP = client.NewQP(verbs.UD, cliCQ, cliCQ, 0)
			c.srvQP = server.NewQP(verbs.UD, c.srvCQ, c.srvCQ, perConn+16)
			c.staging = server.RegisterMR((perConn + 16) * cfg.ChunkBytes)
			for s := 0; s < perConn; s++ {
				c.srvQP.PostRecv(uint64(s), c.staging, s*cfg.ChunkBytes, cfg.ChunkBytes)
			}
		} else {
			c.cliQP = client.NewQP(verbs.UC, cliCQ, cliCQ, 0)
			c.srvQP = server.NewQP(verbs.UC, c.srvCQ, c.srvCQ, 0)
			c.cliQP.Connect(verbs.Unicast(server.Host, c.srvQP.N))
		}
		c.wkr = dpa.NewWorker(eng, threads[w], c.srvCQ, profile)
		w := w
		c.wkr.Handle = func(e verbs.CQE) {
			processed++
			lastDone = eng.Now()
			if cfg.Transport == verbs.UD {
				// Re-post the staging slot and queue the staging->user copy.
				slot := int(e.WrID)
				conns[w].srvQP.PostRecv(e.WrID, conns[w].staging, slot*cfg.ChunkBytes, cfg.ChunkBytes)
				server.DMA().Enqueue(e.Bytes, nil)
			}
		}
		c.wkr.Start()
		conns[w] = c
	}
	dstMR := server.RegisterMR(cfg.TotalBytes)

	// Client: blast every chunk, striped across connections. The client
	// CPU is not the bottleneck (x86 posting rate >> wire), so posting is
	// not charged; the fabric serializes injection at link speed.
	for i := 0; i < chunks; i++ {
		w := i % cfg.Workers
		off := i * cfg.ChunkBytes
		length := cfg.TotalBytes - off
		if length > cfg.ChunkBytes {
			length = cfg.ChunkBytes
		}
		if cfg.Transport == verbs.UD {
			conns[w].cliQP.PostSendUD(0, verbs.Unicast(server.Host, conns[w].srvQP.N),
				srcMR, off, length, uint32(i), false)
		} else {
			conns[w].cliQP.PostWriteUC(0, srcMR, off, length, dstMR.Key, off, uint32(i), false)
		}
	}
	eng.Run()

	res := RxBenchResult{
		Config:          cfg,
		Elapsed:         lastDone,
		Chunks:          processed,
		Profile:         profile,
		EffCycles:       threads[0].EffectiveLatencyCycles(profile),
		IPC:             profile.IPC(),
		RNRDrops:        server.RNRDrops,
		Events:          eng.Executed,
		EventsScheduled: eng.Scheduled,
		EventsRecycled:  eng.Recycled,
	}
	if processed != chunks {
		panic(fmt.Sprintf("harness: processed %d of %d chunks (RNR drops: %d)", processed, chunks, server.RNRDrops))
	}
	if lastDone > 0 {
		secs := lastDone.Seconds()
		res.Bps = float64(cfg.TotalBytes) / secs
		res.GiBps = res.Bps / (1 << 30)
		res.Gbps = res.Bps * 8 / 1e9
		res.ChunkRate = float64(chunks) / secs
	}
	res.LinkGbps = cfg.LinkBandwidth * 8 / 1e9
	payloadRate := cfg.LinkBandwidth * float64(cfg.ChunkBytes) / float64(cfg.ChunkBytes+f.Config().HeaderBytes)
	res.LinkShare = res.Bps / payloadRate
	return res
}
