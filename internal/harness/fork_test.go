package harness

import (
	"bytes"
	"testing"

	"repro/internal/collective"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// The mid-run fork property: snapshot the full simulation state after a
// prefix of the run, let the original timeline run to completion (dirtying
// the event pool and every model object far past the fork point), then
// rewind and re-drive the continuation — the replayed run must produce the
// Record a straight-through cold run produces, byte-identically, at every
// shard count and at multiple fork points. This is what makes `repro
// replay` an exact debugger rather than an approximation.

// forkedResilienceRecord runs one quiet resilience point with a mid-run
// rewind at `prefix` of virtual time, mirroring resilienceRun's driving
// loop and record assembly exactly.
func forkedResilienceRecord(t *testing.T, s sweep.Spec, prefix sim.Time) sweep.Record {
	t.Helper()
	pt, err := collPoint(s)
	if err != nil {
		t.Fatal(err)
	}
	s = pt.spec
	sc, err := scenario.New(s.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	f := pt.f
	eng := f.Engine()
	starter, ok := pt.alg.(collective.Starter)
	if !ok {
		t.Fatalf("%s is not a Starter", s.Algorithm)
	}
	act := sc.InstallOn(f, f.Graph().Hosts()[:s.Nodes], s.Seed)
	var res *collective.Result
	err = starter.Start(collective.Op{Kind: collective.Kind(s.Op), Bytes: s.MsgBytes},
		func(r *collective.Result) {
			res = r
			act.Stop()
		})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(prefix)
	if res != nil {
		t.Fatalf("prefix %v ran past completion; pick an earlier fork point", prefix)
	}
	fork := captureFork(eng, pt.f, pt.cl, pt.alg, pt.reg, pt.sampler)

	// Original timeline to completion: recycles the recorded events and
	// mutates every model object past the fork point.
	for res == nil && eng.Now() < resilienceHorizon && eng.Executed < resilienceEventBudget {
		eng.RunFor(sim.Millisecond)
	}
	if res == nil {
		t.Fatalf("%s did not complete", s.Algorithm)
	}

	// Rewind and replay the continuation.
	fork.rewind()
	res = nil
	for res == nil && eng.Now() < resilienceHorizon && eng.Executed < resilienceEventBudget {
		eng.RunFor(sim.Millisecond)
	}
	if res == nil {
		t.Fatalf("%s did not complete after rewind", s.Algorithm)
	}

	var recovered, retransmits, rnrDrops float64
	for _, rs := range res.PerRank {
		recovered += float64(rs.Recovered)
		retransmits += float64(rs.Retransmits)
		rnrDrops += float64(rs.RNRDrops)
	}
	st := act.Stats()
	rec := sweep.Record{Spec: s, Result: res, Metrics: map[string]float64{
		"duration_us": res.Duration().Micros(),
		"gibps":       res.AlgBandwidth() / (1 << 30),
		"drops":       float64(f.TotalDropped),
		"recovered":   recovered,
		"retransmits": retransmits,
		"rnr_drops":   rnrDrops,
		"perturbs":    float64(st.Perturbs),
		"restores":    float64(st.Restores),
		"bg_mbytes":   float64(st.BackgroundBytes) / 1e6,
	}}
	addEngineMetrics(&rec, eng)
	pt.finish(&rec)
	return rec
}

// metricsDoc canonicalizes the records' telemetry into the metrics.json
// byte form `repro run` writes.
func metricsDoc(recs []sweep.Record) []byte {
	doc := telemetry.Document{Name: "fork-test"}
	for i := range recs {
		if recs[i].Telemetry == nil {
			continue
		}
		doc.Points = append(doc.Points, telemetry.Point{
			Key:     recs[i].Spec.Key(),
			Metrics: recs[i].Telemetry.Metrics,
		})
	}
	return doc.Encode()
}

// TestMidRunForkByteIdentical forks after two different prefixes at
// -shards 1, 2 and 8 and requires the replayed continuation's Record to
// match a straight cold run byte for byte.
func TestMidRunForkByteIdentical(t *testing.T) {
	s := sweep.Spec{Algorithm: "mcast-allgather", Scenario: "quiet",
		Nodes: 16, MsgBytes: 4096, Seed: 7}
	for _, shards := range []int{1, 2, 8} {
		withShards(t, shards, func() {
			cold, err := ResilienceKernel(s)
			if err != nil {
				t.Fatalf("shards=%d cold: %v", shards, err)
			}
			// The quiet point lasts ~35µs of virtual time; fork early and late.
			for _, prefix := range []sim.Time{5 * sim.Microsecond, 20 * sim.Microsecond} {
				forked := forkedResilienceRecord(t, s, prefix)
				diffWarmCold(t, "mid-run fork", []sweep.Record{cold}, []sweep.Record{forked})
			}
		})
	}
}

// TestMidRunForkTelemetry repeats the property with the telemetry registry
// enabled and additionally compares the canonical metrics.json bytes: the
// registry's counters, gauges and sample streams are part of the rewound
// state, so the documents must be identical.
func TestMidRunForkTelemetry(t *testing.T) {
	SetTelemetry(telemetry.Config{Enabled: true})
	defer SetTelemetry(telemetry.Config{})
	s := sweep.Spec{Algorithm: "mcast-allgather", Scenario: "quiet",
		Nodes: 16, MsgBytes: 4096, Seed: 7}
	for _, shards := range []int{1, 2} {
		withShards(t, shards, func() {
			cold, err := ResilienceKernel(s)
			if err != nil {
				t.Fatalf("shards=%d cold: %v", shards, err)
			}
			forked := forkedResilienceRecord(t, s, 10*sim.Microsecond)
			diffWarmCold(t, "mid-run fork + telemetry", []sweep.Record{cold}, []sweep.Record{forked})
			if cm, fm := metricsDoc([]sweep.Record{cold}), metricsDoc([]sweep.Record{forked}); !bytes.Equal(cm, fm) {
				t.Errorf("shards=%d: metrics.json diverged\ncold: %.1500s\nfork: %.1500s", shards, cm, fm)
			}
		})
	}
}
