package harness

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/verbs"
	"repro/internal/workload"
)

// This file declares every experiment as a sweep: a Grid (or composed spec
// list) naming the axes the paper varies, plus the kernel that executes one
// grid point. The typed per-figure views in experiments.go are thin
// projections of the Records these sweeps produce; the cmd binaries consume
// the Records directly (tables, -json).

// --- receive-datapath kernel -----------------------------------------------------

// rxConfig maps a sweep point onto the microbenchmark configuration. The
// Transport axis selects both the verbs transport and the processor:
// "ud"/"uc" run on the DPA, "cpu-ud"/"cpu-rc" on the host-CPU model.
func rxConfig(s sweep.Spec) (RxBenchConfig, error) {
	cfg := RxBenchConfig{
		Workers: s.Threads, ChunkBytes: s.ChunkSize, TotalBytes: s.MsgBytes, Seed: s.Seed,
	}
	switch s.Transport {
	case "ud":
		cfg.Transport = verbs.UD
	case "uc":
		cfg.Transport = verbs.UC
	case "cpu-ud":
		cfg.Transport, cfg.OnCPU = verbs.UD, true
	case "cpu-rc":
		cfg.Transport, cfg.OnCPU = verbs.UC, true
	default:
		return cfg, fmt.Errorf("harness: unknown transport %q", s.Transport)
	}
	if cfg.Workers <= 0 || cfg.ChunkBytes <= 0 || cfg.TotalBytes <= 0 {
		return cfg, fmt.Errorf("harness: non-positive threads/chunk/bytes in %s", s)
	}
	return cfg, nil
}

// addEngineMetrics surfaces the engine's throughput counters on a Record.
// Both are deterministic event counts (never wall-clock rates), so the
// byte-identical-JSON contract of the sweep engine is preserved; the
// wall-clock events/sec trajectory lives in the Benchmark* suite and
// BENCH_perf.json instead. On a sharded group the totals sum across
// shards: every logical event is scheduled and fired exactly once on
// exactly one shard, so the sums match the serial engine's counts at any
// -shards value. (Pool recycling is not invariant — reuse depends on the
// per-shard free-list interleave — so recycled counts stay out of
// Records; they remain visible as Diagnostic telemetry.)
func addEngineMetrics(rec *sweep.Record, eng *sim.Engine) {
	if g := eng.Group(); g != nil {
		addEngineCounts(rec, g.ExecutedTotal(), g.ScheduledTotal())
		return
	}
	addEngineCounts(rec, eng.Executed, eng.Scheduled)
}

// addEngineCounts is the counter-carrying variant for kernels whose engine
// is not in scope (rxbench snapshots the counters into its result).
func addEngineCounts(rec *sweep.Record, executed, scheduled uint64) {
	rec.Metrics["sim_events"] = float64(executed)
	rec.Metrics["sim_scheduled"] = float64(scheduled)
}

// RxKernel is the sweep kernel for the receive-datapath microbenchmark
// (Figures 5, 13–16 and Table I).
func RxKernel(s sweep.Spec) (sweep.Record, error) {
	cfg, err := rxConfig(s)
	if err != nil {
		return sweep.Record{}, err
	}
	r := RunRxBench(cfg)
	rec := sweep.Record{Spec: s, Metrics: map[string]float64{
		"gibps":      r.GiBps,
		"gbps":       r.Gbps,
		"chunk_rate": r.ChunkRate,
		"link_share": r.LinkShare,
		"link_gbps":  r.LinkGbps,
		"ipc":        r.IPC,
		"instr_cqe":  float64(r.Profile.IssueCycles),
		"cycles_cqe": float64(r.Profile.LatencyCycles),
	}}
	addEngineCounts(&rec, r.Events, r.EventsScheduled)
	if reg := newRegistry(); reg != nil {
		// The microbenchmark's engine is out of scope here; export the
		// counter snapshot its result carries. Recycled is Diagnostic:
		// pool reuse depends on the shard layout, so it has no place in
		// canonical metrics.
		reg.Counter("sim", "events", "", telemetry.Stable).Add(r.Events)
		reg.Counter("sim", "scheduled", "", telemetry.Stable).Add(r.EventsScheduled)
		reg.Counter("sim", "recycled", "", telemetry.Diagnostic).Add(r.EventsRecycled)
		rec.Telemetry = reg.Snapshot()
	}
	return rec, nil
}

// --- collective kernel -----------------------------------------------------------

// opForAlgo derives the operation kind from a registry algorithm name.
func opForAlgo(algo string) (collective.Kind, error) {
	return collective.KindOfAlgorithm(algo)
}

// collPoint resolves one collective grid point on the testbed model: the
// operation kind (derived from the algorithm name when the Op axis is
// unused), a fresh fabric, and the point's algorithm over the first Nodes
// hosts. Shared by CollKernel and ResilienceKernel so the quiet-scenario
// anchor of slowdown_vs_quiet cannot drift from the plain collective
// kernel.
func collPoint(s sweep.Spec) (collPt, error) {
	pt := collPt{spec: s}
	if s.Op == "" {
		kind, err := opForAlgo(s.Algorithm)
		if err != nil {
			return pt, err
		}
		s.Op = string(kind)
		pt.spec = s
	}
	_, f := testbedFabric(s.Seed, 0)
	hosts := f.Graph().Hosts()
	if s.Nodes < 1 || s.Nodes > len(hosts) {
		return pt, fmt.Errorf("harness: %d nodes exceed testbed (%d)", s.Nodes, len(hosts))
	}
	reg := newRegistry()
	cl := cluster.New(f, cluster.Config{Verbs: verbs.Config{Metrics: reg}})
	// Partition the fabric across the engine shards when nothing pins the
	// point to the primary: no perturbation scenario (the quiet anchor is
	// injector-free), no telemetry registry (collectors read shared fabric
	// state), and a partition-safe algorithm. The pipeline runs at every
	// shard count including 1, so the Records are byte-identical at any
	// -shards value — partitioning only changes which cores do the work.
	if (s.Scenario == "" || s.Scenario == scenario.Quiet) && reg == nil &&
		registry.PartitionSafe(s.Algorithm) {
		f.EnablePartition()
	}
	alg, err := registry.New(cl, s.Algorithm, registry.Options{
		Hosts: hosts[:s.Nodes],
		Core:  core.Config{Transport: verbs.UD, Metrics: reg},
		Coll:  coll.Config{ChunkBytes: s.ChunkSize, Metrics: reg},
	})
	pt.f, pt.cl, pt.alg, pt.reg = f, cl, alg, reg
	pt.sampler = armFabricTelemetry(reg, f)
	return pt, err
}

// collPt is one resolved collective grid point: the model stack plus the
// point's telemetry registry (nil when disabled) and its fabric sampler.
type collPt struct {
	spec    sweep.Spec
	f       *fabric.Fabric
	cl      *cluster.Cluster
	alg     collective.Algorithm
	reg     *telemetry.Registry
	sampler *telemetry.Sampler
}

// finish runs the end-of-point telemetry collection into rec.
func (pt *collPt) finish(rec *sweep.Record) {
	finishTelemetry(rec, pt.reg, pt.f.Engine(), pt.f, pt.cl)
}

// CollKernel is the sweep kernel for at-scale collectives on the 188-node
// testbed model (Figures 10 and 11): it instantiates the point's algorithm
// through the registry, runs one operation, and reports the unified Result
// (with the per-rank critical-path extension where the protocol provides
// it). The optional ChunkSize axis tunes the P2P baselines.
func CollKernel(s sweep.Spec) (sweep.Record, error) {
	pt, err := collPoint(s)
	if err != nil {
		return sweep.Record{}, err
	}
	s = pt.spec
	res, err := pt.alg.Run(collective.Op{Kind: collective.Kind(s.Op), Bytes: s.MsgBytes})
	if err != nil {
		return sweep.Record{}, err
	}
	rec := sweep.Record{Spec: s, Result: res, Metrics: map[string]float64{
		"gibps":       res.AlgBandwidth() / (1 << 30),
		"duration_us": res.Duration().Micros(),
	}}
	addEngineMetrics(&rec, pt.f.Engine())
	pt.finish(&rec)
	if len(res.PerRank) > 0 {
		var bar, mc, fin, tot []float64
		for _, rs := range res.PerRank {
			total := float64(rs.Total)
			if total == 0 {
				continue
			}
			bar = append(bar, float64(rs.BarrierTime)/total)
			mc = append(mc, float64(rs.McastTime)/total)
			fin = append(fin, float64(rs.FinalTime)/total)
			tot = append(tot, total)
		}
		rec.Metrics["barrier_frac"] = stats.Summarize(bar).Median
		rec.Metrics["mcast_frac"] = stats.Summarize(mc).Median
		rec.Metrics["final_frac"] = stats.Summarize(fin).Median
		rec.Metrics["total_ns"] = stats.Summarize(tot).Median
	}
	return rec, nil
}

// --- per-figure grids ------------------------------------------------------------

// Fig5Specs pairs one host-CPU thread against one DPA core (16 threads) on
// the UD datapath over a message-size sweep (200 Gbit/s link).
func Fig5Specs(sizes []int) []sweep.Spec {
	cpu := sweep.Grid{Transports: []string{"cpu-ud"}, Threads: []int{1},
		ChunkSizes: []int{4096}, MsgBytes: sizes, Seed: 5}
	dpa := sweep.Grid{Transports: []string{"ud"}, Threads: []int{16},
		ChunkSizes: []int{4096}, MsgBytes: sizes, Seed: 55}
	return sweep.Concat(cpu.Expand(), dpa.Expand())
}

// Fig5Records runs the Figure 5 sweep.
func Fig5Records(sizes []int) ([]sweep.Record, error) {
	return sweep.Run(Fig5Specs(sizes), 0, RxKernel)
}

// Table1Grid measures both single-thread DPA datapaths (8 MiB buffer,
// 4 KiB chunks).
func Table1Grid() sweep.Grid {
	return sweep.Grid{Transports: []string{"uc", "ud"}, Threads: []int{1},
		ChunkSizes: []int{4096}, MsgBytes: []int{8 << 20}, Seed: 1}
}

// Table1Records runs the Table I sweep.
func Table1Records() ([]sweep.Record, error) {
	return sweep.RunGrid(Table1Grid(), 0, RxKernel)
}

// Fig13Specs sweeps DPA worker threads for the UD and UC datapaths (8 MiB
// buffer, 4 KiB chunks) plus the single-thread CPU baseline as the final
// point, as in Figures 13/14.
func Fig13Specs(threadCounts []int) []sweep.Spec {
	dpa := sweep.Grid{Transports: []string{"ud", "uc"}, Threads: threadCounts,
		ChunkSizes: []int{4096}, MsgBytes: []int{8 << 20}, Seed: 13}
	cpu := sweep.Grid{Transports: []string{"cpu-ud"}, Threads: []int{1},
		ChunkSizes: []int{4096}, MsgBytes: []int{8 << 20}, Seed: 14}
	return sweep.Concat(dpa.Expand(), cpu.Expand())
}

// Fig13Records runs the thread-scaling sweep; the last record is the CPU
// baseline.
func Fig13Records(threadCounts []int) ([]sweep.Record, error) {
	return sweep.Run(Fig13Specs(threadCounts), 0, RxKernel)
}

// Fig15Grid sweeps the UC chunk size across thread counts (8 MiB buffer):
// larger multi-packet chunks mean fewer CQEs, so fewer threads reach line
// rate.
func Fig15Grid(chunkSizes, threadCounts []int) sweep.Grid {
	return sweep.Grid{Transports: []string{"uc"}, Threads: threadCounts,
		ChunkSizes: chunkSizes, MsgBytes: []int{8 << 20}, Seed: 15}
}

// Fig15Records runs the chunk-size sweep.
func Fig15Records(chunkSizes, threadCounts []int) ([]sweep.Record, error) {
	return sweep.RunGrid(Fig15Grid(chunkSizes, threadCounts), 0, RxKernel)
}

// Fig16Grid sweeps thread counts with 64-byte chunks, matching the arrival
// rate of a future 1.6 Tbit/s link (§VII). MsgBytes is derived per point
// (256 KiB per thread) by the kernel.
func Fig16Grid(threadCounts []int) sweep.Grid {
	return sweep.Grid{Transports: []string{"ud", "uc"}, Threads: threadCounts,
		ChunkSizes: []int{64}, Seed: 16}
}

// Fig16Kernel scales the receive volume with the thread count (keeping
// per-thread work meaningful while bounding event counts) and rebases
// link_share on the 1.6 Tbit/s chunk-rate target.
func Fig16Kernel(s sweep.Spec) (sweep.Record, error) {
	s.MsgBytes = 256 * 1024 * s.Threads
	rec, err := RxKernel(s)
	if err != nil {
		return rec, err
	}
	rec.Metrics["link_share"] = rec.Metrics["chunk_rate"] / Tbit16Target
	return rec, nil
}

// Fig16Records runs the Tbit-scaling sweep.
func Fig16Records(threadCounts []int) ([]sweep.Record, error) {
	return sweep.RunGrid(Fig16Grid(threadCounts), 0, Fig16Kernel)
}

// Fig10Grid runs the multicast Allgather at several scales and message
// sizes; the kernel reports the median per-rank phase fractions.
func Fig10Grid(nodeCounts, sizes []int) sweep.Grid {
	return sweep.Grid{Algorithms: []string{"mcast-allgather"},
		Nodes: nodeCounts, MsgBytes: sizes, Seed: 10}
}

// Fig10Records runs the critical-path-breakdown sweep.
func Fig10Records(nodeCounts, sizes []int) ([]sweep.Record, error) {
	return sweep.RunGrid(Fig10Grid(nodeCounts, sizes), 0, CollKernel)
}

// Fig11Specs measures the multicast collectives against their P2P
// baselines over a size sweep. The chain broadcast gets its own grid
// because it pipelines best with 16 KiB chunks on the testbed — a linked
// axis, not a product.
func Fig11Specs(nodes int, sizes []int) []sweep.Spec {
	plain := sweep.Grid{
		Algorithms: []string{"mcast-broadcast", "knomial-broadcast", "binary-broadcast",
			"mcast-allgather", "ring-allgather"},
		Nodes: []int{nodes}, MsgBytes: sizes, Seed: 11,
	}
	chain := sweep.Grid{Algorithms: []string{"chain-broadcast"},
		Nodes: []int{nodes}, MsgBytes: sizes, ChunkSizes: []int{16 << 10}, Seed: 112}
	return sweep.Concat(plain.Expand(), chain.Expand())
}

// Fig11Records runs the at-scale throughput sweep.
func Fig11Records(nodes int, sizes []int) ([]sweep.Record, error) {
	return sweep.Run(Fig11Specs(nodes, sizes), 0, CollKernel)
}

// Fig12Specs names the four algorithm cells of the switch-traffic study.
func Fig12Specs(nodes, msgBytes int) []sweep.Spec {
	return sweep.Grid{
		Algorithms: []string{"mcast-broadcast", "knomial-broadcast",
			"mcast-allgather", "ring-allgather"},
		Nodes: []int{nodes}, MsgBytes: []int{msgBytes}, Seed: 12,
	}.Expand()
}

// Fig12Kernel measures switch-port counter totals for one algorithm: one
// warmup operation, counter reset, then iters measured iterations on the
// same warm instance (the paper's counter methodology).
func Fig12Kernel(iters int) sweep.Func {
	return func(s sweep.Spec) (sweep.Record, error) {
		kind, err := opForAlgo(s.Algorithm)
		if err != nil {
			return sweep.Record{}, err
		}
		s.Op = string(kind)
		_, f := testbedFabric(s.Seed, 0)
		reg := newRegistry()
		cl := cluster.New(f, cluster.Config{Verbs: verbs.Config{Metrics: reg}})
		alg, err := registry.New(cl, s.Algorithm, registry.Options{
			Hosts: f.Graph().Hosts()[:s.Nodes],
			Core:  core.Config{Transport: verbs.UD, Metrics: reg},
		})
		if err != nil {
			return sweep.Record{}, err
		}
		op := collective.Op{Kind: kind, Bytes: s.MsgBytes}
		if _, err := alg.Run(op); err != nil {
			return sweep.Record{}, fmt.Errorf("warmup: %w", err)
		}
		// Counters (including per-channel telemetry stats) reset after
		// warmup, matching the paper's methodology: the exported fabric
		// metrics cover only the measured iterations.
		f.ResetCounters()
		sampler := armFabricTelemetry(reg, f)
		for i := 0; i < iters; i++ {
			sampler.Arm()
			if _, err := alg.Run(op); err != nil {
				return sweep.Record{}, fmt.Errorf("iter %d: %w", i, err)
			}
		}
		rec := sweep.Record{Spec: s, Metrics: map[string]float64{
			"switch_bytes": float64(f.SwitchPortBytes()),
		}}
		finishTelemetry(&rec, reg, f.Engine(), f, cl)
		return rec, nil
	}
}

// AnnotateSavings adds the cross-cell "savings_vs_p2p" metric (P2P switch
// bytes / multicast switch bytes for the same operation) onto every Figure
// 12 record.
func AnnotateSavings(recs []sweep.Record) {
	byAlgo := map[string]float64{}
	for _, r := range recs {
		byAlgo[r.Spec.Algorithm] = r.Metric("switch_bytes")
	}
	p2pFor := map[string]string{
		"mcast-broadcast": "knomial-broadcast",
		"mcast-allgather": "ring-allgather",
	}
	for i := range recs {
		if p2p, ok := p2pFor[recs[i].Spec.Algorithm]; ok {
			recs[i].Metrics["savings_vs_p2p"] = byAlgo[p2p] / recs[i].Metric("switch_bytes")
		} else {
			recs[i].Metrics["savings_vs_p2p"] = 1
		}
	}
}

// Fig12Records runs the four cells on workers goroutines (0 = GOMAXPROCS)
// and annotates the cross-cell savings metric.
func Fig12Records(nodes, msgBytes, iters, workers int) ([]sweep.Record, error) {
	recs, err := sweep.Run(Fig12Specs(nodes, msgBytes), workers, Fig12Kernel(iters))
	if err != nil {
		return nil, err
	}
	AnnotateSavings(recs)
	return recs, nil
}

// AppBSpecs names the two concurrent-{Allgather, Reduce-Scatter}
// configurations at each scale: "ring-pair" (ring AG + ring RS sharing
// NICs) and "inc-pair" (multicast AG + in-network RS).
func AppBSpecs(ps []int, n int) []sweep.Spec {
	return sweep.Grid{Algorithms: []string{"ring-pair", "inc-pair"},
		Nodes: ps, MsgBytes: []int{n}, Seed: 21}.Expand()
}

// AppBKernel runs an Allgather and a Reduce-Scatter concurrently on one
// fresh star system (full-bandwidth, as Appendix B assumes) as a two-phase
// workload DAG — two single-op streams with no dependency edge, so both
// post at t=0 and contend for the shared NICs — and reports the span from
// first start to last finish, read from the unified Results.
func AppBKernel(s sweep.Spec) (sweep.Record, error) {
	var ag, rs workload.Comm
	switch s.Algorithm {
	case "ring-pair":
		ag = workload.Comm{Name: "ag", Algorithm: "ring-allgather"}
		rs = workload.Comm{Name: "rs", Algorithm: "ring-reduce-scatter"}
	case "inc-pair":
		// All multicast chains run concurrently: with the send path
		// otherwise consumed by the Reduce-Scatter stream, spreading each
		// root's injection over the whole operation (multicast parallelism,
		// §IV-A) is what lets the Allgather live on the receive path alone.
		ag = workload.Comm{Name: "ag", Algorithm: "mcast-allgather", Options: registry.Options{
			Core: core.Config{Transport: verbs.UD, Chains: s.Nodes, Subgroups: 4},
		}}
		rs = workload.Comm{Name: "rs", Algorithm: "inc-reduce-scatter"}
	default:
		return sweep.Record{}, fmt.Errorf("harness: unknown pair %q", s.Algorithm)
	}
	g := topology.Star(s.Nodes)
	eng := newEngine(s.Seed, g, fabric.Config{})
	f := fabric.New(eng, g, fabric.Config{})
	reg := newRegistry()
	cl := cluster.New(f, cluster.Config{Verbs: verbs.Config{Metrics: reg}})
	armFabricTelemetry(reg, f)
	rep, err := workload.Run(cl, workload.Workload{Name: s.Algorithm, Jobs: []workload.Job{{
		Name:  "pair",
		Comms: []workload.Comm{ag, rs},
		Phases: []workload.Phase{
			{Name: "ag", Comm: "ag", Bytes: s.MsgBytes},
			{Name: "rs", Comm: "rs", Bytes: s.MsgBytes},
		},
	}}})
	if err != nil {
		return sweep.Record{}, fmt.Errorf("harness: {%s} at P=%d: %w", s.Algorithm, s.Nodes, err)
	}
	var agR, rsR *collective.Result
	for _, span := range rep.Job("pair").Spans {
		switch span.Phase {
		case "ag":
			agR = span.Result
		case "rs":
			rsR = span.Result
		}
	}
	span := maxTime(agR.End, rsR.End) - minTime(agR.Start, rsR.Start)
	rec := sweep.Record{Spec: s, Metrics: map[string]float64{
		"span_ns":       float64(span),
		"model_speedup": model.SpeedupINC(s.Nodes),
	}}
	rep.ExportTelemetry(reg)
	finishTelemetry(&rec, reg, eng, f, cl)
	return rec, nil
}

// AppBRecords runs both configurations at every scale; ring-pair records
// come first, then inc-pair, each in ps order.
func AppBRecords(ps []int, n int) ([]sweep.Record, error) {
	return sweep.Run(AppBSpecs(ps, n), 0, AppBKernel)
}

// CollTrace runs one collective point of the OSU sweep with a trace
// recorder attached to the protocol state machines and an always-on
// telemetry registry, and returns the bundle: the Figure-9 phase events
// (task dispatch, RNR barrier, multicast start / finish per rank, recovery
// actions, final handshake) plus the run's metric snapshot. The bundle
// renders as the legacy text timeline (-trace) or as a Perfetto JSON
// document (-perfetto). The traced run is separate from the sweep records,
// so attaching it never perturbs their byte-identity; P2P baselines have no
// tracer and yield "(no events)" — their telemetry still populates the
// bundle.
func CollTrace(s sweep.Spec, linkGbps float64) (*telemetry.Bundle, error) {
	rec := &trace.Recorder{}
	if s.Op == "" {
		kind, err := opForAlgo(s.Algorithm)
		if err != nil {
			return nil, err
		}
		s.Op = string(kind)
	}
	linkBw := linkGbps * 1e9 / 8
	g := topology.Testbed188()
	if s.Nodes < 1 || s.Nodes > len(g.Hosts()) {
		return nil, fmt.Errorf("harness: nodes must be in [1,%d]", len(g.Hosts()))
	}
	fcfg := fabric.Config{LinkBandwidth: linkBw}
	eng := newEngine(s.Seed, g, fcfg)
	f := fabric.New(eng, g, fcfg)
	reg := traceRegistry()
	cl := cluster.New(f, cluster.Config{Verbs: verbs.Config{Metrics: reg}})
	alg, err := registry.New(cl, s.Algorithm, registry.Options{
		Hosts: g.Hosts()[:s.Nodes],
		Core:  core.Config{Tracer: rec, Metrics: reg},
		Coll:  coll.Config{Metrics: reg},
	})
	if err != nil {
		return nil, err
	}
	armFabricTelemetry(reg, f)
	if _, err := alg.Run(collective.Op{Kind: collective.Kind(s.Op), Bytes: s.MsgBytes}); err != nil {
		return nil, err
	}
	collectEngineTelemetry(reg, eng)
	f.CollectTelemetry(reg)
	cl.CollectTelemetry(reg)
	return &telemetry.Bundle{Events: rec.Events, Snap: reg.Snapshot()}, nil
}

// --- OSU-style kernel ------------------------------------------------------------

// OSUConfig parameterizes the OSU-style measurement loop shared by cmd/osu:
// warm-up iterations excluded, per-size medians with nonparametric
// confidence intervals (Hoefler–Belli guidelines).
type OSUConfig struct {
	Iters    int
	Warmup   int
	LinkGbps float64
	// JitterUS adds seeded per-delivery network noise in microseconds,
	// enabling run-to-run variability within a point.
	JitterUS int
}

// osuPoint builds one OSU grid point's model stack — everything the
// measurement loop needs, stopped at construction quiescence. The message
// size is deliberately NOT consumed here (it parameterizes the operation,
// not the stack), which is what lets the warm-start path share one built
// stack across a whole size sweep.
func osuPoint(cfg OSUConfig, s sweep.Spec) (collPt, error) {
	pt := collPt{spec: s}
	if cfg.Iters <= 0 {
		return pt, fmt.Errorf("harness: iters must be positive")
	}
	if s.Op == "" {
		kind, err := opForAlgo(s.Algorithm)
		if err != nil {
			return pt, err
		}
		s.Op = string(kind)
		pt.spec = s
	}
	g := topology.Testbed188()
	if s.Nodes < 1 || s.Nodes > len(g.Hosts()) {
		return pt, fmt.Errorf("harness: nodes must be in [1,%d]", len(g.Hosts()))
	}
	linkBw := cfg.LinkGbps * 1e9 / 8
	if linkBw == 0 {
		linkBw = 7e9
	}
	fcfg := fabric.Config{
		LinkBandwidth: linkBw,
		ReorderJitter: sim.Time(cfg.JitterUS) * sim.Microsecond,
	}
	eng := newEngine(s.Seed, g, fcfg)
	f := fabric.New(eng, g, fcfg)
	reg := newRegistry()
	cl := cluster.New(f, cluster.Config{Verbs: verbs.Config{Metrics: reg}})
	// Same partition gate as collPoint; delivery jitter additionally
	// pins the point (the jitter RNG is fabric-global per-delivery
	// state, which partitioned transmit does not replicate).
	if reg == nil && cfg.JitterUS == 0 && registry.PartitionSafe(s.Algorithm) {
		f.EnablePartition()
	}
	alg, err := registry.New(cl, s.Algorithm, registry.Options{
		Hosts: g.Hosts()[:s.Nodes],
		Core:  core.Config{Metrics: reg},
		Coll:  coll.Config{Metrics: reg},
	})
	pt.f, pt.cl, pt.alg, pt.reg = f, cl, alg, reg
	pt.sampler = armFabricTelemetry(reg, f)
	return pt, err
}

// osuRun is the kernel's continuation: the warm-up/measure loop over an
// already built stack. The warm-start path enters here after forking, so
// the point's identity (size, seed) comes from s, never from pt.spec.
func osuRun(cfg OSUConfig, pt collPt, s sweep.Spec) (sweep.Record, error) {
	f := pt.f
	eng := f.Engine()
	op := collective.Op{Kind: collective.Kind(s.Op), Bytes: s.MsgBytes}
	if !pt.alg.Supports(op) {
		return sweep.Record{}, fmt.Errorf("harness: %s does not support %s of %d bytes on %d nodes",
			s.Algorithm, op.Kind, op.Bytes, s.Nodes)
	}
	var lat []float64
	var last *collective.Result
	for i := 0; i < cfg.Warmup+cfg.Iters; i++ {
		// The sampler self-terminates when the queue drains between
		// iterations; re-arm it so each iteration is sampled.
		pt.sampler.Arm()
		res, err := pt.alg.Run(op)
		if err != nil {
			return sweep.Record{}, fmt.Errorf("iter %d: %w", i, err)
		}
		if i >= cfg.Warmup {
			lat = append(lat, res.Duration().Micros())
			last = res
		}
	}
	sum := stats.Summarize(lat)
	// Bandwidth numerator is the per-rank network receive payload, the
	// same semantic AlgBandwidth and Figure 11 use.
	rec := sweep.Record{Spec: s, Result: last, Metrics: map[string]float64{
		"median_us":    sum.Median,
		"ci95_low_us":  sum.CILow,
		"ci95_high_us": sum.CIHigh,
		"min_us":       sum.Min,
		"max_us":       sum.Max,
		"gibps":        last.RecvPerRank() / (sum.Median / 1e6) / (1 << 30),
	}}
	addEngineMetrics(&rec, eng)
	finishTelemetry(&rec, pt.reg, eng, f, pt.cl)
	return rec, nil
}

// OSUKernel returns a sweep kernel that measures one (algorithm, nodes,
// size) point on the testbed model: the communicator persists across the
// point's iterations (warm queue pairs and buffers), and the Record carries
// the last iteration's unified Result plus the latency distribution.
func OSUKernel(cfg OSUConfig) sweep.Func {
	return func(s sweep.Spec) (sweep.Record, error) {
		pt, err := osuPoint(cfg, s)
		if err != nil {
			return sweep.Record{}, err
		}
		return osuRun(cfg, pt, pt.spec)
	}
}
