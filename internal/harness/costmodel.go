package harness

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sweep"
)

// The analytic record builders behind the cost kind: the closed-form
// figures of the paper's model (traffic savings, PSN sizing) and the §VII
// economics comparison, rendered as sweep Records so they serialize, table
// and diff exactly like the simulated experiments.

// Fig2Records evaluates the closed-form traffic model over a send-buffer
// grid — an analytic sweep, no simulation engine involved.
func Fig2Records() ([]sweep.Record, error) {
	g, err := model.Fig2Cluster()
	if err != nil {
		return nil, err
	}
	m, err := model.NewTrafficModel(g)
	if err != nil {
		return nil, err
	}
	grid := sweep.Grid{MsgBytes: []int{64 << 10, 256 << 10, 1 << 20, 4 << 20}}
	return sweep.RunGrid(grid, 0, func(s sweep.Spec) (sweep.Record, error) {
		return sweep.Record{Spec: s, Metrics: map[string]float64{
			"ring_ag_bytes":   m.RingAllgatherBytes(s.MsgBytes),
			"linear_ag_bytes": m.LinearAllgatherBytes(s.MsgBytes),
			"mcast_ag_bytes":  m.McastAllgatherBytes(s.MsgBytes),
			"savings":         m.Savings(s.MsgBytes),
		}}, nil
	})
}

// Fig7Records renders the PSN-bits sizing model; psn_bits is the swept
// quantity, carried as a metric column.
func Fig7Records() []sweep.Record {
	var recs []sweep.Record
	for i, p := range model.BitmapModel(16, 28, 4096) {
		fits := 0.0
		if p.FitsDPALLC {
			fits = 1
		}
		recs = append(recs, sweep.Record{
			Spec: sweep.Spec{ChunkSize: 4096, Index: i},
			Metrics: map[string]float64{
				"psn_bits":        float64(p.PSNBits),
				"max_recv_buffer": p.MaxRecvBuffer,
				"bitmap_bytes":    p.BitmapBytes,
				"fits_dpa_llc":    fits,
			},
		})
	}
	return recs
}

// Fig7Note renders the Figure 7 footnote: the LLC-limited receive-buffer
// and communicator-count headlines of the sizing model.
func Fig7Note() string {
	return fmt.Sprintf("LLC-limited receive buffer: %.1f GB (paper: ~50 GB); communicators fitting the LLC: %d (paper: >16).",
		model.MaxBufferFittingLLC(4096)/1e9,
		model.CommunicatorsFittingLLC(64<<10, 16<<10))
}

// EconRecords reports the §VII cost/power comparison as one record.
func EconRecords() []sweep.Record {
	in := model.SuperPODNode()
	r := in.Economics()
	return []sweep.Record{{
		Spec: sweep.Spec{Algorithm: "superpod-node"},
		Metrics: map[string]float64{
			"links":           float64(in.Links),
			"link_gbps":       in.LinkGbps,
			"cores_needed":    r.CoresNeeded,
			"cpu_cost_usd":    r.CPUCost,
			"cpu_watts":       r.CPUWatts,
			"nic_cost_usd":    r.NICCost,
			"nic_watts":       r.NICWatts,
			"cost_advantage":  r.CostAdvantage,
			"power_advantage": r.PowerAdvantage,
		},
	}}
}
