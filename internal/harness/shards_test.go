package harness

import (
	"bytes"
	"testing"

	"repro/internal/sweep"
)

// withShards runs fn under a temporary engine shard count, restoring the
// serial default afterwards so other tests are unaffected.
func withShards(t *testing.T, n int, fn func()) {
	t.Helper()
	SetShards(n)
	defer SetShards(1)
	fn()
}

// TestSweepsByteIdenticalAcrossShards is the harness half of the golden
// byte-identity matrix: the resilience sweep (quiet + tenant goldens), the
// FSDP training step and the Appendix-B concurrent-pair sweep must produce
// byte-identical JSON at -shards 1, 2 and 8. The fabric stack runs
// confined to the primary shard, so any divergence means the sharded
// engine moved an event.
func TestSweepsByteIdenticalAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep matrix is not -short sized")
	}
	capture := func() []byte {
		var all []sweep.Record
		resil, err := ResilienceRecords(
			ResilienceGrid([]string{"mcast-allgather"}, []string{"quiet", "tenant-50load"}, 16, 1<<20, 3), 1)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, resil...)
		train, err := TrainRecords(
			TrainGrid([]string{"fsdp-ring"}, []int{8}, []int{64 << 10}, nil, 9), 1, TrainConfig{Layers: 2})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, train...)
		appb, err := AppBRecords([]int{8}, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, appb...)
		var buf bytes.Buffer
		if err := sweep.WriteJSON(&buf, sweep.Report{Name: "matrix", Records: all}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	var base []byte
	withShards(t, 1, func() { base = capture() })
	for _, n := range []int{2, 8} {
		var got []byte
		withShards(t, n, func() { got = capture() })
		if !bytes.Equal(base, got) {
			t.Fatalf("sweep JSON at -shards %d differs from serial", n)
		}
	}
}

// TestScenarioInjectorsAcrossShards drives fault-injection scenarios
// (spine flapping and stragglers) through sharded engines, byte-comparing
// against serial. Run under -race this also exercises the sharded group's
// guard and delegation paths while injector timers rearm.
func TestScenarioInjectorsAcrossShards(t *testing.T) {
	grid := ResilienceGrid([]string{"ring-allgather"}, []string{"flap-spine", "straggler-1pct"}, 8, 64<<10, 5)
	capture := func() []byte {
		recs, err := ResilienceRecords(grid, 1)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sweep.WriteJSON(&buf, sweep.Report{Name: "inject", Records: recs}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	var base []byte
	withShards(t, 1, func() { base = capture() })
	for _, n := range []int{2, 8} {
		var got []byte
		withShards(t, n, func() { got = capture() })
		if !bytes.Equal(base, got) {
			t.Fatalf("injector sweep JSON at -shards %d differs from serial", n)
		}
	}
}
