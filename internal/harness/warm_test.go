package harness

import (
	"encoding/json"
	"testing"

	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// The warm-start contract: a forked continuation produces the Record a
// cold construction of the same point would — byte-identically, at every
// shard count and worker count, with telemetry on or off. These tests are
// the harness-level half of the fork property (the engine-level half
// lives in internal/sim): they run real sweeps both ways and diff the
// JSON-serialized records, which covers every metric, the embedded
// Results, and the telemetry snapshots in one comparison.

// recordsJSON canonicalizes records for comparison.
func recordsJSON(t *testing.T, recs []sweep.Record) string {
	t.Helper()
	b, err := json.MarshalIndent(recs, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func diffWarmCold(t *testing.T, label string, cold, warm []sweep.Record) {
	t.Helper()
	cj, wj := recordsJSON(t, cold), recordsJSON(t, warm)
	if cj != wj {
		t.Errorf("%s: warm-start records diverge from cold records\ncold: %.2000s\nwarm: %.2000s", label, cj, wj)
	}
}

// TestWarmResilienceByteIdentical forks one shared testbed stack across a
// quiet anchor and two perturbation scenarios and requires the records to
// match a cold sweep at -shards 1, 2 and 8, and at several worker counts.
func TestWarmResilienceByteIdentical(t *testing.T) {
	grid := ResilienceGrid([]string{"mcast-allgather"},
		[]string{"quiet", "flap-spine", "tenant-50load"}, 16, 4096, 7)
	for _, shards := range []int{1, 2, 8} {
		withShards(t, shards, func() {
			cold, err := ResilienceRecords(grid, 1)
			if err != nil {
				t.Fatalf("shards=%d cold: %v", shards, err)
			}
			for _, workers := range []int{1, 3} {
				warm, err := WarmResilienceRecords(grid, workers)
				if err != nil {
					t.Fatalf("shards=%d workers=%d warm: %v", shards, workers, err)
				}
				diffWarmCold(t, "chaos", cold, warm)
			}
		})
	}
}

// TestWarmResilienceTelemetry repeats the comparison with telemetry
// enabled: registries and samplers are part of the forked state, so the
// per-record metric snapshots must also rewind byte-identically.
func TestWarmResilienceTelemetry(t *testing.T) {
	SetTelemetry(telemetry.Config{Enabled: true})
	defer SetTelemetry(telemetry.Config{})
	grid := ResilienceGrid([]string{"mcast-allgather"},
		[]string{"quiet", "flap-spine"}, 16, 4096, 7)
	cold, err := ResilienceRecords(grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := WarmResilienceRecords(grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	diffWarmCold(t, "chaos+telemetry", cold, warm)
}

// TestWarmOSUByteIdentical shares one stack across a message-size sweep
// (the OSU warm key drops the size axis) and checks cold equivalence at
// serial and sharded engines.
func TestWarmOSUByteIdentical(t *testing.T) {
	cfg := OSUConfig{Iters: 3, Warmup: 1, LinkGbps: 56}
	grid := sweep.Grid{
		Algorithms: []string{"mcast-allgather"},
		Nodes:      []int{8},
		MsgBytes:   []int{1024, 4096, 16384},
		Seed:       3,
	}
	for _, shards := range []int{1, 2} {
		withShards(t, shards, func() {
			cold, err := sweep.RunGrid(grid, 1, OSUKernel(cfg))
			if err != nil {
				t.Fatalf("shards=%d cold: %v", shards, err)
			}
			warm, err := sweep.RunWarm(grid.Expand(), 2, WarmOSU(cfg))
			if err != nil {
				t.Fatalf("shards=%d warm: %v", shards, err)
			}
			diffWarmCold(t, "osu", cold, warm)
		})
	}
}

// TestWarmTrainByteIdentical forks one workload stack across scenarios.
func TestWarmTrainByteIdentical(t *testing.T) {
	cfg := TrainConfig{}
	grid := TrainGrid([]string{"fsdp-inc"}, []int{4}, []int{64 << 10},
		[]string{"quiet", "flap-spine"}, 21)
	cold, err := sweep.RunGrid(grid, 1, TrainKernel(cfg))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sweep.RunWarm(grid.Expand(), 1, WarmTrain(cfg))
	if err != nil {
		t.Fatal(err)
	}
	AnnotateSlowdown(cold)
	AnnotateSlowdown(warm)
	diffWarmCold(t, "train", cold, warm)
}
