package harness

import (
	"fmt"
	"io"

	"repro/internal/collective"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/sweep"
)

// Replay: seek-and-step debugging of one collective point. A forward pass
// drives the point event by event, snapshotting the full simulation state
// — engine (clock, counters, queue, RNG tree) plus every reachable model
// object including in-flight event payloads — every Interval of virtual
// time. Seeking restores the nearest waypoint at or before the target and
// steps silently up to it; from there, step mode prints the next Steps
// events (firing time, sequence key, handler type) through the engine's
// EventHook. Restoring a waypoint rewinds the same object graph the run
// mutates, so a seek replays exactly the original execution: the printed
// events are the events the run fired the first time.

// ReplayConfig parameterizes one replay session.
type ReplayConfig struct {
	// Interval is the waypoint spacing in virtual time (default 100 µs).
	// Denser waypoints seek faster and cost proportionally more memory.
	Interval sim.Time
	// At is the virtual-time seek target. Targets beyond the end of the
	// run clamp to the last waypoint.
	At sim.Time
	// Steps is how many events step mode prints after the seek
	// (default 20).
	Steps int
}

// waypoint is one restorable position on the replay timeline.
type waypoint struct {
	at       sim.Time
	executed uint64
	esnap    *sim.Snapshot
	state    *snap.State
}

// Replay runs one quiet collective point under the replay debugger,
// writing the waypoint table, the seek trace and the stepped events to w.
// Replay is serial-only (configure -shards 1) and rejects perturbation
// scenarios: scenario injectors hold closure state the snapshot layer
// cannot rewind.
func Replay(s sweep.Spec, cfg ReplayConfig, w io.Writer) error {
	if Shards() != 1 {
		return fmt.Errorf("harness: replay needs a serial engine (configured shards=%d); run with -shards 1", Shards())
	}
	if s.Scenario != "" && s.Scenario != scenario.Quiet {
		return fmt.Errorf("harness: replay supports only the quiet scenario, not %q", s.Scenario)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * sim.Microsecond
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 20
	}
	pt, err := collPoint(s)
	if err != nil {
		return err
	}
	s = pt.spec
	starter, ok := pt.alg.(collective.Starter)
	if !ok {
		return fmt.Errorf("harness: %s cannot run non-blocking under the replay driver", s.Algorithm)
	}
	eng := pt.f.Engine()
	capture := func() waypoint {
		esnap := eng.Snapshot()
		// In-flight packets are reachable only through the event queue, so
		// the pending payloads join the model roots.
		roots := append([]any{pt.f, pt.cl, pt.alg, pt.reg, pt.sampler}, esnap.Payloads()...)
		return waypoint{
			at:       eng.Now(),
			executed: eng.Executed,
			esnap:    esnap,
			state:    snap.Capture(modelSnapConfig(), roots...),
		}
	}

	var res *collective.Result
	err = starter.Start(collective.Op{Kind: collective.Kind(s.Op), Bytes: s.MsgBytes},
		func(r *collective.Result) { res = r })
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# replay: %s, %d nodes, %d B, seed %d\n", s.Algorithm, s.Nodes, s.MsgBytes, s.Seed)

	// Forward pass: record a waypoint at t=0 and then at the first event
	// boundary past each Interval mark.
	wps := []waypoint{capture()}
	next := cfg.Interval
	for res == nil && eng.Now() < resilienceHorizon && eng.Executed < resilienceEventBudget {
		if !eng.Step() {
			break
		}
		if eng.Now() >= next {
			wps = append(wps, capture())
			for next <= eng.Now() {
				next += cfg.Interval
			}
		}
	}
	if res == nil {
		return fmt.Errorf("harness: %s did not complete within %v / %d events",
			s.Algorithm, resilienceHorizon, resilienceEventBudget)
	}
	fmt.Fprintf(w, "# run: %d events to t=%d ns; %d waypoints every %d ns\n",
		eng.Executed, eng.Now(), len(wps), cfg.Interval)
	for i, wp := range wps {
		fmt.Fprintf(w, "# waypoint %d: t=%d ns, %d events executed, %d B state\n",
			i, wp.at, wp.executed, wp.state.Bytes()+wp.esnap.Bytes())
	}

	// Seek: restore the nearest waypoint at or before the target, then
	// step silently until the next pending event would fire at or past it.
	target := cfg.At
	idx := 0
	for i, wp := range wps {
		if wp.at <= target {
			idx = i
		}
	}
	wp := wps[idx]
	eng.Restore(wp.esnap)
	wp.state.Restore()
	skipped := 0
	for {
		t, ok := eng.PeekTime()
		if !ok || t >= target {
			break
		}
		eng.Step()
		skipped++
	}
	fmt.Fprintf(w, "# seek t=%d ns: waypoint %d (t=%d ns) + %d events -> now=%d ns\n",
		target, idx, wp.at, skipped, eng.Now())

	// Step mode: print the next Steps events as they fire.
	printed := 0
	eng.EventHook = func(at sim.Time, seq uint64, h sim.Handler) {
		if h == nil {
			fmt.Fprintf(w, "%12d ns  seq=%-20d closure\n", at, seq)
			return
		}
		fmt.Fprintf(w, "%12d ns  seq=%-20d %T\n", at, seq, h)
	}
	for printed < cfg.Steps && eng.Step() {
		printed++
	}
	eng.EventHook = nil
	if printed < cfg.Steps {
		fmt.Fprintf(w, "# queue drained after %d events\n", printed)
	}
	return nil
}
