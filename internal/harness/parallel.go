package harness

import (
	"runtime"
	"sync"
)

// parallelMap runs fn over every index in [0, n) across GOMAXPROCS worker
// goroutines and collects the results in order. Each fn invocation builds
// its own simulation engine, so experiments parallelize perfectly across
// OS threads — the wall-clock win of running many deterministic
// single-threaded simulations side by side.
//
// The first error wins; remaining work still completes (simulations are
// cheap to finish and aborting mid-engine has no benefit).
func parallelMap[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	work := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
