package harness

import (
	"strings"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// The typed per-figure views below project the sweep Records (sweeps.go)
// into the shapes the tests and benchmarks assert on. Every experiment
// declares a Grid and dispatches through the sweep engine's worker pool, so
// independent simulations parallelize across OS threads.

// testbedFabric builds the 188-node UCC-testbed model (or a prefix of it)
// with the paper's 56 Gbit/s ConnectX-3 links.
func testbedFabric(seed uint64, linkBw float64) (*sim.Engine, *fabric.Fabric) {
	g := topology.Testbed188()
	if linkBw == 0 {
		linkBw = 7e9 // 56 Gbit/s
	}
	fcfg := fabric.Config{LinkBandwidth: linkBw}
	eng := newEngine(seed, g, fcfg)
	f := fabric.New(eng, g, fcfg)
	return eng, f
}

// --- Figure 5: single CPU core vs single DPA core ------------------------------

// Fig5Point compares the two datapaths at one message size.
type Fig5Point struct {
	MsgBytes int
	CPUGbps  float64 // 1-thread host CPU UD datapath (UCX-style)
	DPAGbps  float64 // 1-core (16-thread) DPA UD datapath
	LinkGbps float64
}

// Fig5SingleCore sweeps message sizes on a 200 Gbit/s back-to-back link.
func Fig5SingleCore(sizes []int) []Fig5Point {
	recs, err := Fig5Records(sizes)
	if err != nil {
		panic(err) // unreachable for positive sizes, as with RunRxBench
	}
	out := make([]Fig5Point, len(sizes))
	for i := range sizes {
		cpu, dpa := recs[i], recs[len(sizes)+i]
		out[i] = Fig5Point{
			MsgBytes: sizes[i],
			CPUGbps:  cpu.Metric("gbps"),
			DPAGbps:  dpa.Metric("gbps"),
			LinkGbps: cpu.Metric("link_gbps"),
		}
	}
	return out
}

// --- Table I: single-thread DPA metrics ----------------------------------------

// Table1Row reproduces one row of Table I.
type Table1Row struct {
	Datapath        string
	ThroughputGiBps float64
	InstructionsCQE int
	CyclesCQE       int
	IPC             float64
}

// Table1SingleThread measures both datapaths with one DPA thread, 8 MiB
// buffer, 4 KiB chunks.
func Table1SingleThread() []Table1Row {
	recs, err := Table1Records()
	if err != nil {
		panic(err) // fixed grid, cannot fail
	}
	rows := make([]Table1Row, len(recs))
	for i, r := range recs {
		rows[i] = Table1Row{
			Datapath:        strings.ToUpper(r.Spec.Transport),
			ThroughputGiBps: r.Metric("gibps"),
			InstructionsCQE: int(r.Metric("instr_cqe")),
			CyclesCQE:       int(r.Metric("cycles_cqe")),
			IPC:             r.Metric("ipc"),
		}
	}
	return rows
}

// --- Figures 13/14/15/16: DPA thread scaling -----------------------------------

// ScalingPoint is one (transport, threads) measurement.
type ScalingPoint struct {
	Transport  string
	Threads    int
	ChunkBytes int
	GiBps      float64
	Gbps       float64
	ChunkRate  float64
	LinkShare  float64
}

func scalingPoint(r sweep.Record) ScalingPoint {
	return ScalingPoint{
		Transport:  strings.ToUpper(r.Spec.Transport),
		Threads:    r.Spec.Threads,
		ChunkBytes: r.Spec.ChunkSize,
		GiBps:      r.Metric("gibps"),
		Gbps:       r.Metric("gbps"),
		ChunkRate:  r.Metric("chunk_rate"),
		LinkShare:  r.Metric("link_share"),
	}
}

// Fig13ThreadScaling sweeps DPA worker threads for the UD and UC datapaths
// (8 MiB buffer, 4 KiB chunks) plus the single-thread CPU baseline, as in
// Figure 13.
func Fig13ThreadScaling(threadCounts []int) ([]ScalingPoint, ScalingPoint) {
	recs, err := Fig13Records(threadCounts)
	if err != nil {
		panic(err) // fixed axes, cannot fail
	}
	pts := make([]ScalingPoint, len(recs)-1)
	for i, r := range recs[:len(recs)-1] {
		pts[i] = scalingPoint(r)
	}
	return pts, scalingPoint(recs[len(recs)-1])
}

// Fig15ChunkSize sweeps the UC chunk size for several thread counts (8 MiB
// buffer).
func Fig15ChunkSize(chunkSizes, threadCounts []int) []ScalingPoint {
	recs, err := Fig15Records(chunkSizes, threadCounts)
	if err != nil {
		panic(err)
	}
	pts := make([]ScalingPoint, len(recs))
	for i, r := range recs {
		pts[i] = scalingPoint(r)
	}
	return pts
}

// Tbit16Target is the chunk processing rate equivalent to a 1.6 Tbit/s
// link with 4 KiB MTU packets: the horizontal target line of Figure 16.
const Tbit16Target = 1.6e12 / 8 / 4096 // chunks/second

// Fig16TbitScaling sweeps thread counts with 64-byte chunks, matching the
// arrival rate of a future 1.6 Tbit/s link (§VII). LinkShare is relative to
// the Tbit16Target chunk rate.
func Fig16TbitScaling(threadCounts []int) []ScalingPoint {
	recs, err := Fig16Records(threadCounts)
	if err != nil {
		panic(err)
	}
	pts := make([]ScalingPoint, len(recs))
	for i, r := range recs {
		pts[i] = scalingPoint(r)
	}
	return pts
}

// --- Figure 10: protocol critical-path breakdown --------------------------------

// BreakdownPoint aggregates the phase breakdown across ranks for one
// (nodes, size) cell of Figure 10.
type BreakdownPoint struct {
	Nodes       int
	MsgBytes    int
	BarrierFrac float64
	McastFrac   float64
	FinalFrac   float64
	Total       sim.Time
}

// Fig10Breakdown runs the multicast Allgather at several scales and
// message sizes on the testbed model and reports median phase fractions,
// read from the unified Result's per-rank extension.
func Fig10Breakdown(nodeCounts, sizes []int) ([]BreakdownPoint, error) {
	recs, err := Fig10Records(nodeCounts, sizes)
	if err != nil {
		return nil, err
	}
	out := make([]BreakdownPoint, len(recs))
	for i, r := range recs {
		out[i] = BreakdownPoint{
			Nodes:       r.Spec.Nodes,
			MsgBytes:    r.Spec.MsgBytes,
			BarrierFrac: r.Metric("barrier_frac"),
			McastFrac:   r.Metric("mcast_frac"),
			FinalFrac:   r.Metric("final_frac"),
			Total:       sim.Time(r.Metric("total_ns")),
		}
	}
	return out, nil
}

// --- Figure 11: throughput at scale ----------------------------------------------

// Fig11Point is one (operation, algorithm, size) measurement.
type Fig11Point struct {
	Op       string // "broadcast" or "allgather"
	Algo     string
	MsgBytes int
	GiBps    float64 // per-rank receive throughput
}

// Fig11Throughput measures the multicast collectives against their P2P
// baselines at the given node count (paper: 188) over a size sweep,
// dispatching every algorithm through the unified registry. The
// independent simulations run in parallel across OS threads.
func Fig11Throughput(nodes int, sizes []int) ([]Fig11Point, error) {
	recs, err := Fig11Records(nodes, sizes)
	if err != nil {
		return nil, err
	}
	out := make([]Fig11Point, len(recs))
	for i, r := range recs {
		out[i] = Fig11Point{
			Op:       r.Spec.Op,
			Algo:     r.Spec.Algorithm,
			MsgBytes: r.Spec.MsgBytes,
			GiBps:    r.Metric("gibps"),
		}
	}
	return out, nil
}

// --- Figure 12: switch traffic savings --------------------------------------------

// Fig12Row records switch-port counter totals for one algorithm.
type Fig12Row struct {
	Op          string
	Algo        string
	SwitchBytes uint64
	// Savings is P2P bytes / multicast bytes for the same operation.
	Savings float64
}

// Fig12Traffic runs broadcast and allgather with multicast and P2P
// algorithms on the testbed model, reading the switch-port counters as the
// paper does (64 KiB messages, iters iterations). Each algorithm runs on
// its own fresh fabric through the registry; the instance's persistent
// transport state carries from warmup into the measured iterations.
func Fig12Traffic(nodes, msgBytes, iters int) ([]Fig12Row, error) {
	recs, err := Fig12Records(nodes, msgBytes, iters, 0)
	if err != nil {
		return nil, err
	}
	out := make([]Fig12Row, len(recs))
	for i, r := range recs {
		family, _, _ := strings.Cut(r.Spec.Algorithm, "-")
		out[i] = Fig12Row{
			Op:          r.Spec.Op,
			Algo:        family,
			SwitchBytes: uint64(r.Metric("switch_bytes")),
			Savings:     r.Metric("savings_vs_p2p"),
		}
	}
	return out, nil
}

// --- Appendix B: concurrent {AG, RS} ----------------------------------------------

// AppBPoint compares the two concurrent-collective configurations at one
// scale.
type AppBPoint struct {
	P        int
	RingPair sim.Time // {AG_ring, RS_ring} completion
	IncPair  sim.Time // {AG_mcast, RS_inc} completion
	Speedup  float64
	Model    float64 // 2 - 2/P
}

// AppBConcurrent measures both configurations with per-rank buffer n on a
// star fabric (full-bandwidth, as Appendix B assumes). Both pairs run
// concurrently through the registry's non-blocking Starter surface on a
// shared cluster, contending for the same NICs.
func AppBConcurrent(ps []int, n int) ([]AppBPoint, error) {
	recs, err := AppBRecords(ps, n)
	if err != nil {
		return nil, err
	}
	out := make([]AppBPoint, len(ps))
	for i, p := range ps {
		ring := recs[i].Metric("span_ns")
		inc := recs[len(ps)+i].Metric("span_ns")
		out[i] = AppBPoint{
			P:        p,
			RingPair: sim.Time(ring),
			IncPair:  sim.Time(inc),
			Speedup:  ring / inc,
			Model:    model.SpeedupINC(p),
		}
	}
	return out, nil
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func minTime(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}
