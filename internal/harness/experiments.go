package harness

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/verbs"
)

// testbedFabric builds the 188-node UCC-testbed model (or a prefix of it)
// with the paper's 56 Gbit/s ConnectX-3 links.
func testbedFabric(seed uint64, linkBw float64) (*sim.Engine, *fabric.Fabric) {
	eng := sim.NewEngine(seed)
	g := topology.Testbed188()
	if linkBw == 0 {
		linkBw = 7e9 // 56 Gbit/s
	}
	f := fabric.New(eng, g, fabric.Config{LinkBandwidth: linkBw})
	return eng, f
}

// --- Figure 5: single CPU core vs single DPA core ------------------------------

// Fig5Point compares the two datapaths at one message size.
type Fig5Point struct {
	MsgBytes int
	CPUGbps  float64 // 1-thread host CPU UD datapath (UCX-style)
	DPAGbps  float64 // 1-core (16-thread) DPA UD datapath
	LinkGbps float64
}

// Fig5SingleCore sweeps message sizes on a 200 Gbit/s back-to-back link.
func Fig5SingleCore(sizes []int) []Fig5Point {
	var out []Fig5Point
	for _, n := range sizes {
		cpu := RunRxBench(RxBenchConfig{
			Transport: verbs.UD, Workers: 1, ChunkBytes: 4096, TotalBytes: n, OnCPU: true,
		})
		dpaW := 16
		dpaRes := RunRxBench(RxBenchConfig{
			Transport: verbs.UD, Workers: dpaW, ChunkBytes: 4096, TotalBytes: n,
		})
		out = append(out, Fig5Point{
			MsgBytes: n, CPUGbps: cpu.Gbps, DPAGbps: dpaRes.Gbps, LinkGbps: cpu.LinkGbps,
		})
	}
	return out
}

// --- Table I: single-thread DPA metrics ----------------------------------------

// Table1Row reproduces one row of Table I.
type Table1Row struct {
	Datapath        string
	ThroughputGiBps float64
	InstructionsCQE int
	CyclesCQE       int
	IPC             float64
}

// Table1SingleThread measures both datapaths with one DPA thread, 8 MiB
// buffer, 4 KiB chunks.
func Table1SingleThread() []Table1Row {
	var rows []Table1Row
	for _, tr := range []verbs.Transport{verbs.UC, verbs.UD} {
		r := RunRxBench(RxBenchConfig{Transport: tr, Workers: 1, ChunkBytes: 4096, TotalBytes: 8 << 20})
		rows = append(rows, Table1Row{
			Datapath:        tr.String(),
			ThroughputGiBps: r.GiBps,
			InstructionsCQE: r.Profile.IssueCycles,
			CyclesCQE:       r.Profile.LatencyCycles,
			IPC:             r.IPC,
		})
	}
	return rows
}

// --- Figures 13/14: DPA thread scaling -----------------------------------------

// ScalingPoint is one (transport, threads) measurement.
type ScalingPoint struct {
	Transport  string
	Threads    int
	ChunkBytes int
	GiBps      float64
	Gbps       float64
	ChunkRate  float64
	LinkShare  float64
}

// Fig13ThreadScaling sweeps DPA worker threads for the UD and UC
// datapaths (8 MiB buffer, 4 KiB chunks) plus the single-thread CPU
// baseline, as in Figure 13.
func Fig13ThreadScaling(threadCounts []int) ([]ScalingPoint, ScalingPoint) {
	type job struct {
		tr verbs.Transport
		w  int
	}
	var jobs []job
	for _, tr := range []verbs.Transport{verbs.UD, verbs.UC} {
		for _, w := range threadCounts {
			jobs = append(jobs, job{tr, w})
		}
	}
	pts, _ := parallelMap(len(jobs), func(i int) (ScalingPoint, error) {
		j := jobs[i]
		r := RunRxBench(RxBenchConfig{Transport: j.tr, Workers: j.w, ChunkBytes: 4096, TotalBytes: 8 << 20})
		return ScalingPoint{
			Transport: j.tr.String(), Threads: j.w, ChunkBytes: 4096,
			GiBps: r.GiBps, Gbps: r.Gbps, ChunkRate: r.ChunkRate, LinkShare: r.LinkShare,
		}, nil
	})
	cpu := RunRxBench(RxBenchConfig{Transport: verbs.UD, Workers: 1, ChunkBytes: 4096, TotalBytes: 8 << 20, OnCPU: true})
	baseline := ScalingPoint{
		Transport: "CPU-UD", Threads: 1, ChunkBytes: 4096,
		GiBps: cpu.GiBps, Gbps: cpu.Gbps, ChunkRate: cpu.ChunkRate, LinkShare: cpu.LinkShare,
	}
	return pts, baseline
}

// --- Figure 15: UC multi-packet chunks ------------------------------------------

// Fig15ChunkSize sweeps the UC chunk size for several thread counts
// (8 MiB buffer): larger chunks mean fewer CQEs, so fewer threads reach
// line rate.
func Fig15ChunkSize(chunkSizes, threadCounts []int) []ScalingPoint {
	var pts []ScalingPoint
	for _, cs := range chunkSizes {
		for _, w := range threadCounts {
			r := RunRxBench(RxBenchConfig{Transport: verbs.UC, Workers: w, ChunkBytes: cs, TotalBytes: 8 << 20})
			pts = append(pts, ScalingPoint{
				Transport: "UC", Threads: w, ChunkBytes: cs,
				GiBps: r.GiBps, Gbps: r.Gbps, ChunkRate: r.ChunkRate, LinkShare: r.LinkShare,
			})
		}
	}
	return pts
}

// --- Figure 16: Tbit/s chunk-rate scaling ---------------------------------------

// Tbit16Target is the chunk processing rate equivalent to a 1.6 Tbit/s
// link with 4 KiB MTU packets: the horizontal target line of Figure 16.
const Tbit16Target = 1.6e12 / 8 / 4096 // chunks/second

// Fig16TbitScaling sweeps thread counts with 64-byte chunks, matching the
// arrival rate of a future 1.6 Tbit/s link (§VII).
func Fig16TbitScaling(threadCounts []int) []ScalingPoint {
	type job struct {
		tr verbs.Transport
		w  int
	}
	var jobs []job
	for _, tr := range []verbs.Transport{verbs.UD, verbs.UC} {
		for _, w := range threadCounts {
			jobs = append(jobs, job{tr, w})
		}
	}
	pts, _ := parallelMap(len(jobs), func(i int) (ScalingPoint, error) {
		j := jobs[i]
		// Volume scales with threads to keep per-thread work meaningful
		// while bounding event counts.
		total := 256 * 1024 * j.w
		r := RunRxBench(RxBenchConfig{Transport: j.tr, Workers: j.w, ChunkBytes: 64, TotalBytes: total})
		return ScalingPoint{
			Transport: j.tr.String(), Threads: j.w, ChunkBytes: 64,
			GiBps: r.GiBps, Gbps: r.Gbps, ChunkRate: r.ChunkRate,
			LinkShare: r.ChunkRate / Tbit16Target,
		}, nil
	})
	return pts
}

// --- Figure 10: protocol critical-path breakdown --------------------------------

// BreakdownPoint aggregates the phase breakdown across ranks for one
// (nodes, size) cell of Figure 10.
type BreakdownPoint struct {
	Nodes       int
	MsgBytes    int
	BarrierFrac float64
	McastFrac   float64
	FinalFrac   float64
	Total       sim.Time
}

// Fig10Breakdown runs the multicast Allgather at several scales and
// message sizes on the testbed model and reports median phase fractions,
// read from the unified Result's per-rank extension.
func Fig10Breakdown(nodeCounts, sizes []int) ([]BreakdownPoint, error) {
	var out []BreakdownPoint
	for _, p := range nodeCounts {
		for _, n := range sizes {
			eng, f := testbedFabric(uint64(p)<<20|uint64(n), 0)
			hosts := f.Graph().Hosts()
			if p > len(hosts) {
				return nil, fmt.Errorf("harness: %d nodes exceed testbed", p)
			}
			alg, err := registry.New(cluster.New(f, cluster.Config{}), "mcast-allgather", registry.Options{
				Hosts: hosts[:p],
				Core:  core.Config{Transport: verbs.UD},
			})
			if err != nil {
				return nil, err
			}
			res, err := alg.Run(collective.Op{Kind: collective.Allgather, Bytes: n})
			if err != nil {
				return nil, err
			}
			var bar, mc, fin, tot []float64
			for _, s := range res.PerRank {
				total := float64(s.Total)
				if total == 0 {
					continue
				}
				bar = append(bar, float64(s.BarrierTime)/total)
				mc = append(mc, float64(s.McastTime)/total)
				fin = append(fin, float64(s.FinalTime)/total)
				tot = append(tot, total)
			}
			out = append(out, BreakdownPoint{
				Nodes: p, MsgBytes: n,
				BarrierFrac: stats.Summarize(bar).Median,
				McastFrac:   stats.Summarize(mc).Median,
				FinalFrac:   stats.Summarize(fin).Median,
				Total:       sim.Time(stats.Summarize(tot).Median),
			})
			_ = eng
		}
	}
	return out, nil
}

// --- Figure 11: throughput at scale ----------------------------------------------

// Fig11Point is one (operation, algorithm, size) measurement.
type Fig11Point struct {
	Op       string // "broadcast" or "allgather"
	Algo     string
	MsgBytes int
	GiBps    float64 // per-rank receive throughput
}

// Fig11Throughput measures the multicast collectives against their P2P
// baselines at the given node count (paper: 188) over a size sweep,
// dispatching every algorithm through the unified registry. The
// independent simulations run in parallel across OS threads.
func Fig11Throughput(nodes int, sizes []int) ([]Fig11Point, error) {
	type job struct {
		op   collective.Kind
		algo string
		n    int
		coll coll.Config
	}
	// The chain broadcast pipelines best with 16 KiB chunks on the testbed.
	chainCfg := coll.Config{ChunkBytes: 16 << 10}
	var jobs []job
	for _, n := range sizes {
		jobs = append(jobs,
			job{collective.Broadcast, "mcast-broadcast", n, coll.Config{}},
			job{collective.Broadcast, "knomial-broadcast", n, coll.Config{}},
			job{collective.Broadcast, "binary-broadcast", n, coll.Config{}},
			job{collective.Broadcast, "chain-broadcast", n, chainCfg},
			job{collective.Allgather, "mcast-allgather", n, coll.Config{}},
			job{collective.Allgather, "ring-allgather", n, coll.Config{}},
		)
	}
	pts, err := parallelMap(len(jobs), func(i int) (Fig11Point, error) {
		j := jobs[i]
		_, f := testbedFabric(uint64(j.n)+uint64(i), 0)
		alg, err := registry.New(cluster.New(f, cluster.Config{}), j.algo, registry.Options{
			Hosts: f.Graph().Hosts()[:nodes],
			Core:  core.Config{Transport: verbs.UD},
			Coll:  j.coll,
		})
		if err != nil {
			return Fig11Point{}, err
		}
		res, err := alg.Run(collective.Op{Kind: j.op, Bytes: j.n})
		if err != nil {
			return Fig11Point{}, err
		}
		return Fig11Point{Op: string(j.op), Algo: j.algo, MsgBytes: j.n, GiBps: res.AlgBandwidth() / (1 << 30)}, nil
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// --- Figure 12: switch traffic savings --------------------------------------------

// Fig12Row records switch-port counter totals for one algorithm.
type Fig12Row struct {
	Op          string
	Algo        string
	SwitchBytes uint64
	// Savings is P2P bytes / multicast bytes for the same operation.
	Savings float64
}

// Fig12Traffic runs broadcast and allgather with multicast and P2P
// algorithms on the testbed model, reading the switch-port counters as the
// paper does (64 KiB messages, iters iterations). Each algorithm runs on
// its own fresh fabric through the registry; the instance's persistent
// transport state carries from warmup into the measured iterations.
func Fig12Traffic(nodes, msgBytes, iters int) ([]Fig12Row, error) {
	measure := func(algo string, op collective.Op) (uint64, error) {
		_, f := testbedFabric(77, 0)
		alg, err := registry.New(cluster.New(f, cluster.Config{}), algo, registry.Options{
			Hosts: f.Graph().Hosts()[:nodes],
			Core:  core.Config{Transport: verbs.UD},
		})
		if err != nil {
			return 0, err
		}
		// One warmup, then reset counters and measure iters iterations.
		if _, err := alg.Run(op); err != nil {
			return 0, fmt.Errorf("%s warmup: %w", algo, err)
		}
		f.ResetCounters()
		for i := 0; i < iters; i++ {
			if _, err := alg.Run(op); err != nil {
				return 0, fmt.Errorf("%s iter %d: %w", algo, i, err)
			}
		}
		return f.SwitchPortBytes(), nil
	}

	bcast := collective.Op{Kind: collective.Broadcast, Bytes: msgBytes}
	ag := collective.Op{Kind: collective.Allgather, Bytes: msgBytes}
	mcB, err := measure("mcast-broadcast", bcast)
	if err != nil {
		return nil, err
	}
	p2pB, err := measure("knomial-broadcast", bcast)
	if err != nil {
		return nil, err
	}
	mcA, err := measure("mcast-allgather", ag)
	if err != nil {
		return nil, err
	}
	p2pA, err := measure("ring-allgather", ag)
	if err != nil {
		return nil, err
	}

	return []Fig12Row{
		{Op: "broadcast", Algo: "mcast", SwitchBytes: mcB, Savings: float64(p2pB) / float64(mcB)},
		{Op: "broadcast", Algo: "knomial", SwitchBytes: p2pB, Savings: 1},
		{Op: "allgather", Algo: "mcast", SwitchBytes: mcA, Savings: float64(p2pA) / float64(mcA)},
		{Op: "allgather", Algo: "ring", SwitchBytes: p2pA, Savings: 1},
	}, nil
}

// --- Appendix B: concurrent {AG, RS} ----------------------------------------------

// AppBPoint compares the two concurrent-collective configurations at one
// scale.
type AppBPoint struct {
	P        int
	RingPair sim.Time // {AG_ring, RS_ring} completion
	IncPair  sim.Time // {AG_mcast, RS_inc} completion
	Speedup  float64
	Model    float64 // 2 - 2/P
}

// AppBConcurrent measures both configurations with per-rank buffer n on a
// star fabric (full-bandwidth, as Appendix B assumes). Both pairs run
// concurrently through the registry's non-blocking Starter surface on a
// shared cluster, contending for the same NICs.
func AppBConcurrent(ps []int, n int) ([]AppBPoint, error) {
	// pair starts an Allgather and a Reduce-Scatter together on one fresh
	// star system and returns the span from first start to last finish.
	pair := func(p int, seed uint64, agAlgo string, agCore core.Config, rsAlgo string) (sim.Time, error) {
		eng := sim.NewEngine(seed)
		g := topology.Star(p)
		f := fabric.New(eng, g, fabric.Config{})
		cl := cluster.New(f, cluster.Config{})
		ag, err := registry.New(cl, agAlgo, registry.Options{Core: agCore})
		if err != nil {
			return 0, err
		}
		rs, err := registry.New(cl, rsAlgo, registry.Options{})
		if err != nil {
			return 0, err
		}
		var agR, rsR *collective.Result
		if err := ag.(collective.Starter).Start(collective.Op{Kind: collective.Allgather, Bytes: n},
			func(r *collective.Result) { agR = r }); err != nil {
			return 0, err
		}
		if err := rs.(collective.Starter).Start(collective.Op{Kind: collective.ReduceScatter, Bytes: n},
			func(r *collective.Result) { rsR = r }); err != nil {
			return 0, err
		}
		eng.Run()
		if agR == nil || rsR == nil {
			return 0, fmt.Errorf("harness: {%s, %s} pair did not complete at P=%d", agAlgo, rsAlgo, p)
		}
		return maxTime(agR.End, rsR.End) - minTime(agR.Start, rsR.Start), nil
	}

	var out []AppBPoint
	for _, p := range ps {
		// Configuration 1: ring AG + ring RS sharing NICs.
		ringPair, err := pair(p, uint64(p), "ring-allgather", core.Config{}, "ring-reduce-scatter")
		if err != nil {
			return nil, err
		}
		// Configuration 2: multicast AG + INC RS. All chains run
		// concurrently: with the send path otherwise consumed by the
		// Reduce-Scatter stream, spreading each root's injection over the
		// whole operation (multicast parallelism, §IV-A) is what lets the
		// Allgather live on the receive path alone.
		incPair, err := pair(p, uint64(p)+1, "mcast-allgather",
			core.Config{Transport: verbs.UD, Chains: p, Subgroups: 4}, "inc-reduce-scatter")
		if err != nil {
			return nil, err
		}
		out = append(out, AppBPoint{
			P:        p,
			RingPair: ringPair,
			IncPair:  incPair,
			Speedup:  float64(ringPair) / float64(incPair),
			Model:    model.SpeedupINC(p),
		})
	}
	return out, nil
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func minTime(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}
