package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sweep"
)

// TestTrainGoldenStepTimes pins the FSDP step time of both collective
// pairings at the canonical scale (16 ranks, 6 layers, 512 KiB shards,
// 150 µs compute/layer) — the workload-layer equivalent of the registry's
// golden durations. Any change to event ordering, the workload engine's
// issue order, or the collective stacks moves these.
func TestTrainGoldenStepTimes(t *testing.T) {
	if testing.Short() {
		t.Skip("golden step times need the full-size FSDP step")
	}
	grid := TrainGrid([]string{"fsdp-ring", "fsdp-inc"}, []int{16}, []int{512 << 10}, nil, 21)
	recs, err := TrainRecords(grid, 0, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{ // ns
		"fsdp-ring": 5449328,
		"fsdp-inc":  2898262,
	}
	for _, r := range recs {
		ns := int64(r.Metric("duration_us")*1000 + 0.5)
		if ns != want[r.Spec.Workload] {
			t.Errorf("%s step = %d ns, want golden %d", r.Spec.Workload, ns, want[r.Spec.Workload])
		}
		if r.Workload != r.Spec.Workload {
			t.Errorf("record workload metadata %q != spec %q", r.Workload, r.Spec.Workload)
		}
		if r.OverlapFrac <= 0 || r.OverlapFrac >= 1 {
			t.Errorf("%s overlap = %v, want in (0,1)", r.Spec.Workload, r.OverlapFrac)
		}
	}
	// The paper's application-level claim, at the workload layer: the
	// {mcast AG, inc RS} pairing beats {ring, ring} by ~the Appendix B
	// bound (1.88x at P=16).
	speedup := recs[0].Metric("duration_us") / recs[1].Metric("duration_us")
	if speedup < 1.5 || speedup > 2 {
		t.Errorf("inc-pair speedup = %.2f, want ~1.88", speedup)
	}
}

// TestTrainSweepByteIdenticalAcrossWorkers checks the workload sweep keeps
// the engine's determinism contract, scenario composition included.
func TestTrainSweepByteIdenticalAcrossWorkers(t *testing.T) {
	grid := TrainGrid([]string{"fsdp-inc", "dfs-replica"}, []int{8}, []int{64 << 10},
		[]string{"quiet", "tenant-50load"}, 9)
	cfg := TrainConfig{Layers: 2}
	var blobs [][]byte
	for _, workers := range []int{1, 4} {
		recs, err := TrainRecords(grid, workers, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sweep.WriteJSON(&buf, sweep.Report{Name: "train", Records: recs}); err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, buf.Bytes())
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatal("train sweep JSON differs between -workers 1 and 4")
	}
}

// TestTrainScenarioSlowdown checks a perturbation scenario composed onto
// the live training step costs time relative to the quiet sibling.
func TestTrainScenarioSlowdown(t *testing.T) {
	grid := TrainGrid([]string{"fsdp-inc"}, []int{8}, []int{64 << 10},
		[]string{"quiet", "flap-spine"}, 9)
	recs, err := TrainRecords(grid, 0, TrainConfig{Layers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var quiet, flap float64
	for _, r := range recs {
		switch r.Spec.Scenario {
		case "quiet":
			quiet = r.Metric("slowdown_vs_quiet")
		case "flap-spine":
			flap = r.Metric("slowdown_vs_quiet")
		}
	}
	if quiet != 1 {
		t.Fatalf("quiet slowdown = %v, want 1", quiet)
	}
	if flap <= 1 {
		t.Fatalf("flap-spine slowdown = %v, want > 1", flap)
	}
}

// TestTrainTraceTimeline checks the Figure-9 trace surface: a multicast
// workload records protocol phases; the traced run is independent of the
// sweep.
func TestTrainTraceTimeline(t *testing.T) {
	spec := TrainGrid([]string{"fsdp-inc"}, []int{4}, []int{16 << 10}, nil, 3).Expand()[0]
	bundle, err := TrainTrace(spec, TrainConfig{Layers: 1})
	if err != nil {
		t.Fatal(err)
	}
	timeline := bundle.Timeline()
	for _, phase := range []string{"dispatch", "barrier", "done"} {
		if !strings.Contains(timeline, phase) {
			t.Fatalf("timeline missing %q:\n%.400s", phase, timeline)
		}
	}
	if bundle.Snap == nil || len(bundle.Snap.Spans) == 0 {
		t.Fatal("traced bundle carries no workload spans")
	}
}

// TestCollTraceTimeline checks the OSU-side trace helper for both a traced
// multicast run and the (no events) P2P fallback.
func TestCollTraceTimeline(t *testing.T) {
	s := sweep.Spec{Algorithm: "mcast-allgather", Nodes: 4, MsgBytes: 16 << 10, Seed: 5}
	bundle, err := CollTrace(s, 56)
	if err != nil {
		t.Fatal(err)
	}
	if timeline := bundle.Timeline(); !strings.Contains(timeline, "dispatch") {
		t.Fatalf("mcast timeline missing dispatch:\n%.200s", timeline)
	}
	s.Algorithm = "ring-allgather"
	bundle, err = CollTrace(s, 56)
	if err != nil {
		t.Fatal(err)
	}
	if timeline := bundle.Timeline(); !strings.Contains(timeline, "no events") {
		t.Fatalf("ring timeline = %q, want (no events)", timeline)
	}
}
