package harness

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/sweep"
)

// encodeReport serializes records the way the cmd binaries' -json flag
// does.
func encodeReport(t *testing.T, recs []sweep.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sweep.WriteJSON(&buf, sweep.Report{Name: "det", Records: recs}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepJSONByteIdentical is the acceptance check for the sweep engine:
// running the same grid twice, at different worker counts, produces
// byte-identical JSON records — with real simulation kernels, not stubs.
func TestSweepJSONByteIdentical(t *testing.T) {
	specs := Fig13Specs([]int{1, 2})
	serial, err := sweep.Run(specs, 1, RxKernel)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sweep.Run(specs, 8, RxKernel)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := encodeReport(t, serial), encodeReport(t, parallel); !bytes.Equal(a, b) {
		t.Fatalf("rx sweep JSON differs between 1 and 8 workers:\n%s\n---\n%s", a, b)
	}
}

// TestCollectiveSweepDeterministic does the same over the registry-backed
// collective kernel, which carries the full unified Result (PerRank
// included) in every record.
func TestCollectiveSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two at-scale collective sweeps")
	}
	run := func(workers int) []byte {
		recs, err := sweep.Run(Fig11Specs(16, []int{64 << 10}), workers, CollKernel)
		if err != nil {
			t.Fatal(err)
		}
		return encodeReport(t, recs)
	}
	if a, b := run(1), run(6); !bytes.Equal(a, b) {
		t.Fatal("collective sweep JSON differs between 1 and 6 workers")
	}
}

// TestCollKernelRejectsBadPoints covers worker-pool error propagation with
// the real kernel: an out-of-range point fails with a PointError while the
// rest of the grid still completes.
func TestCollKernelRejectsBadPoints(t *testing.T) {
	specs := sweep.Grid{
		Algorithms: []string{"mcast-allgather"},
		Nodes:      []int{4, 500}, // 500 exceeds the 188-node testbed
		MsgBytes:   []int{4096},
	}.Expand()
	_, err := sweep.Run(specs, 2, CollKernel)
	if err == nil {
		t.Fatal("oversized node count did not error")
	}
	var pe *sweep.PointError
	if !errors.As(err, &pe) || pe.Spec.Nodes != 500 {
		t.Fatalf("error %v not attributed to the bad point", err)
	}
}
