package harness

import (
	"reflect"

	"repro/internal/registry"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// Warm-start kernels: grid points that construct the same model stack —
// the same fabric, cluster and algorithm, differing only in seed, message
// size or perturbation scenario — share one built instance per worker and
// fork it per point. A fork rewinds the engine (clock, counters, queue,
// RNG tree) via sim.Snapshot, rewinds every model object in place via
// internal/snap, and reseeds the RNG tree to the point seed, so the forked
// continuation is bit-for-bit the run a cold construction with that seed
// would produce. Construction dominates short points (the 188-host testbed
// stack costs more to build than a 64 KiB collective costs to run), which
// is where the sweep-level speedup comes from.

// modelSnapConfig lists the pointer-target types the reflective capture
// must not follow: immutable shared structure (the topology graph, routing
// tables, multicast trees — built once, never mutated) and the engine,
// whose state is captured natively by sim.Snapshot. Byte slices are
// declared bulk payload: message and staging buffers carry tens of
// megabytes whose content never influences event timing (the simulation
// times sizes, not bytes; the harness never enables data verification),
// and excluding them keeps a fork proportional to the protocol state that
// actually changes.
func modelSnapConfig() snap.Config {
	return snap.Config{
		Skip: []reflect.Type{
			reflect.TypeOf(sim.Engine{}),
			reflect.TypeOf(topology.Graph{}),
			reflect.TypeOf(topology.RoutingTable{}),
			reflect.TypeOf(topology.MulticastTree{}),
		},
		Payload: []reflect.Type{reflect.TypeOf(byte(0))},
	}
}

// warmFork couples the engine snapshot (serial or sharded group) with the
// reflective model-state capture: the complete fork point of one built
// stack.
type warmFork struct {
	eng   *sim.Engine
	snap  *sim.Snapshot
	gsnap *sim.GroupSnapshot
	state *snap.State
}

// captureFork snapshots the stack at its current state. Pending event
// payloads join the capture roots: an in-flight payload is reachable only
// from the event queue, yet the continuation will mutate it.
func captureFork(eng *sim.Engine, roots ...any) *warmFork {
	w := &warmFork{eng: eng}
	if g := eng.Group(); g != nil {
		w.gsnap = g.Snapshot()
		roots = append(roots, w.gsnap.Payloads()...)
	} else {
		w.snap = eng.Snapshot()
		roots = append(roots, w.snap.Payloads()...)
	}
	w.state = snap.Capture(modelSnapConfig(), roots...)
	return w
}

// rewind restores engine and model back to the capture on the SAME
// timeline: the RNG tree rewinds to its captured state, so re-running the
// continuation replays the original execution exactly.
func (w *warmFork) rewind() {
	if g := w.eng.Group(); g != nil {
		g.Restore(w.gsnap)
	} else {
		w.eng.Restore(w.snap)
	}
	w.state.Restore()
}

// fork rewinds engine and model back to the capture, then reseeds the RNG
// tree to the point seed — the same states a cold construction with that
// seed produces (the fabric's split child is the engine root's only
// construction-time consumer, which is what makes reseed-by-split-replay
// exact).
func (w *warmFork) fork(seed uint64) {
	w.rewind()
	if g := w.eng.Group(); g != nil {
		g.Reseed(seed)
	} else {
		w.eng.Reseed(seed)
	}
}

// bytes reports the fork point's size (informational perf metric).
func (w *warmFork) bytes() int {
	n := w.state.Bytes()
	if w.gsnap != nil {
		n += w.gsnap.Bytes()
	} else {
		n += w.snap.Bytes()
	}
	return n
}

// --- chaos (resilience) ----------------------------------------------------------

// chaosPartitioned mirrors collPoint's partition gate: quiet,
// telemetry-free, partition-safe points shard the fabric. The decision
// changes the constructed event keying, so it is part of the warm key —
// a quiet point must never share an instance with a perturbed one.
func chaosPartitioned(s sweep.Spec) bool {
	return (s.Scenario == "" || s.Scenario == scenario.Quiet) && !telemetryCfg.Enabled &&
		registry.PartitionSafe(s.Algorithm)
}

// WarmResilience is the warm-start form of ResilienceKernel: one built
// testbed stack per (algorithm, nodes, size, partition-class), forked per
// scenario. The quiet baseline is thereby memoized — every injected
// variant forks the same constructed stack the quiet anchor used.
type WarmResilience struct{}

func (WarmResilience) WarmKey(s sweep.Spec) string {
	k := s
	// Scenario is a continuation-only axis; what the build consumes is the
	// partition decision it implies.
	if chaosPartitioned(s) {
		k.Scenario = "part"
	} else {
		k.Scenario = "nopart"
	}
	return k.Key()
}

func (WarmResilience) Build(s sweep.Spec) (sweep.Instance, error) {
	pt, err := collPoint(s)
	if err != nil {
		return nil, err
	}
	return &warmChaosInst{pt: pt,
		fork: captureFork(pt.f.Engine(), pt.f, pt.cl, pt.alg, pt.reg, pt.sampler)}, nil
}

func (WarmResilience) Cold(s sweep.Spec) (sweep.Record, error) { return ResilienceKernel(s) }

type warmChaosInst struct {
	pt   collPt
	fork *warmFork
}

func (w *warmChaosInst) Run(s sweep.Spec) (sweep.Record, error) {
	if _, err := scenario.New(s.Scenario); err != nil {
		return sweep.Record{}, err
	}
	if s.Op == "" {
		kind, err := opForAlgo(s.Algorithm)
		if err != nil {
			return sweep.Record{}, err
		}
		s.Op = string(kind)
	}
	w.fork.fork(s.Seed)
	return resilienceRun(w.pt, s)
}

// Bytes reports the built instance's fork-point size: engine snapshot plus
// captured model regions (the informational snapshot-bytes perf metric).
func (w *warmChaosInst) Bytes() int { return w.fork.bytes() }

// WarmResilienceRecords is ResilienceRecords on the warm-start path.
func WarmResilienceRecords(g sweep.Grid, workers int) ([]sweep.Record, error) {
	recs, err := sweep.RunWarm(g.Expand(), workers, WarmResilience{})
	if err != nil {
		return nil, err
	}
	AnnotateSlowdown(recs)
	return recs, nil
}

// --- OSU -------------------------------------------------------------------------

// WarmOSU is the warm-start form of OSUKernel: one built testbed stack per
// (algorithm, op, nodes), forked per message size and seed — the build
// never consumes the size, so a whole size sweep shares one stack.
func WarmOSU(cfg OSUConfig) sweep.Warmable { return warmOSU{cfg} }

type warmOSU struct{ cfg OSUConfig }

func (k warmOSU) WarmKey(s sweep.Spec) string {
	key := s
	key.MsgBytes = 0
	return key.Key()
}

func (k warmOSU) Build(s sweep.Spec) (sweep.Instance, error) {
	pt, err := osuPoint(k.cfg, s)
	if err != nil {
		return nil, err
	}
	return &warmOSUInst{cfg: k.cfg, pt: pt,
		fork: captureFork(pt.f.Engine(), pt.f, pt.cl, pt.alg, pt.reg, pt.sampler)}, nil
}

func (k warmOSU) Cold(s sweep.Spec) (sweep.Record, error) { return OSUKernel(k.cfg)(s) }

type warmOSUInst struct {
	cfg  OSUConfig
	pt   collPt
	fork *warmFork
}

func (w *warmOSUInst) Run(s sweep.Spec) (sweep.Record, error) {
	if s.Op == "" {
		kind, err := opForAlgo(s.Algorithm)
		if err != nil {
			return sweep.Record{}, err
		}
		s.Op = string(kind)
	}
	w.fork.fork(s.Seed)
	return osuRun(w.cfg, w.pt, s)
}

// --- train -----------------------------------------------------------------------

// WarmTrain is the warm-start form of TrainKernel: one built star-fabric
// workload stack per (workload, nodes, shard size), forked per scenario
// and seed.
func WarmTrain(cfg TrainConfig) sweep.Warmable { return warmTrain{cfg} }

type warmTrain struct{ cfg TrainConfig }

func (k warmTrain) WarmKey(s sweep.Spec) string {
	key := s
	key.Scenario = ""
	return key.Key()
}

func (k warmTrain) Build(s sweep.Spec) (sweep.Instance, error) {
	reg := newRegistry()
	cl, w, sampler, err := trainPoint(s, k.cfg, nil, reg)
	if err != nil {
		return nil, err
	}
	inst := &warmTrainInst{pt: trainPt{cl: cl, w: w, reg: reg, sampler: sampler}}
	inst.fork = captureFork(cl.Fabric().Engine(), cl, &inst.pt.w, reg, sampler)
	return inst, nil
}

func (k warmTrain) Cold(s sweep.Spec) (sweep.Record, error) { return TrainKernel(k.cfg)(s) }

type warmTrainInst struct {
	pt   trainPt
	fork *warmFork
}

func (w *warmTrainInst) Run(s sweep.Spec) (sweep.Record, error) {
	w.fork.fork(s.Seed)
	return trainRun(w.pt, s)
}

// compile-time interface checks
var (
	_ sweep.Warmable = WarmResilience{}
	_ sweep.Warmable = warmOSU{}
	_ sweep.Warmable = warmTrain{}
)
