package model

import (
	"math"
	"testing"

	"repro/internal/topology"
)

func TestSpeedupINCFormula(t *testing.T) {
	cases := map[int]float64{2: 1.0, 4: 1.5, 8: 1.75, 1024: 2 - 2.0/1024}
	for p, want := range cases {
		if got := SpeedupINC(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("S(%d) = %v, want %v", p, got, want)
		}
	}
	if SpeedupINC(0) != 0 {
		t.Error("S(0) should be 0")
	}
}

func TestPairTimesRatioMatchesSpeedup(t *testing.T) {
	// T_ring / T_inc must equal S = 2 - 2/P for any P, N, B.
	for _, p := range []int{2, 4, 16, 188, 1024} {
		ring := RingPairTime(p, 1<<20, 25e9)
		inc := INCPairTime(p, 1<<20, 25e9)
		if math.Abs(ring/inc-SpeedupINC(p)) > 1e-9 {
			t.Errorf("P=%d: ratio %v, want %v", p, ring/inc, SpeedupINC(p))
		}
	}
}

func TestTrafficSavingsApproach2x(t *testing.T) {
	// Figure 2's system: 1024 nodes, radix-32 three-level fat-tree.
	g, err := Fig2Cluster()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewTrafficModel(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hosts() != 1024 {
		t.Fatalf("hosts = %d", m.Hosts())
	}
	s := m.Savings(1 << 20)
	if s < 1.5 || s > 2.5 {
		t.Fatalf("traffic savings %v, want ≈2x (Figure 2)", s)
	}
}

func TestTrafficSavingsSmallFatTree(t *testing.T) {
	g, err := topology.TwoLevelFatTree(topology.FatTreeSpec{Hosts: 16, HostsPerLeaf: 4, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewTrafficModel(g)
	if err != nil {
		t.Fatal(err)
	}
	// Linear must move at least as much as ring; mcast must beat both.
	n := 1 << 16
	ring := m.RingAllgatherBytes(n)
	linear := m.LinearAllgatherBytes(n)
	mc := m.McastAllgatherBytes(n)
	if mc >= ring {
		t.Fatalf("mcast (%.3g) not below ring (%.3g)", mc, ring)
	}
	if linear < ring {
		t.Fatalf("linear (%.3g) below ring (%.3g)", linear, ring)
	}
}

func TestMcastBroadcastVsKnomial(t *testing.T) {
	g := topology.Testbed188()
	m, err := NewTrafficModel(g)
	if err != nil {
		t.Fatal(err)
	}
	n := 64 << 10
	mc := m.McastBroadcastBytes(n)
	kn := m.KnomialBroadcastBytes(n, 4)
	if mc >= kn {
		t.Fatalf("mcast broadcast traffic (%.3g) not below knomial (%.3g)", mc, kn)
	}
	// Paper Figure 12: broadcast saves ~1.5x.
	if ratio := kn / mc; ratio < 1.2 || ratio > 3 {
		t.Fatalf("broadcast savings ratio %v outside plausible range", ratio)
	}
}

func TestMcastTreeEdgesTestbed(t *testing.T) {
	g := topology.Testbed188()
	m, err := NewTrafficModel(g)
	if err != nil {
		t.Fatal(err)
	}
	// Tree: 188 host links + 12 leaf uplinks toward the root spine... at
	// minimum hosts + leaves edges; at most hosts + leaves + spines.
	if m.McastTreeEdges() < 188+12 || m.McastTreeEdges() > 188+12+6 {
		t.Fatalf("tree edges = %d", m.McastTreeEdges())
	}
}

func TestBitmapModel(t *testing.T) {
	pts := BitmapModel(10, 30, 4096)
	if len(pts) != 21 {
		t.Fatalf("points = %d", len(pts))
	}
	// 24 PSN bits: 16M chunks -> 64 GiB buffer, 2 MiB bitmap (> LLC).
	var p24 BitmapPoint
	for _, p := range pts {
		if p.PSNBits == 24 {
			p24 = p
		}
	}
	if p24.MaxRecvBuffer != float64(uint64(1)<<24*4096) {
		t.Fatalf("24-bit buffer = %v", p24.MaxRecvBuffer)
	}
	if p24.BitmapBytes != float64(uint64(1)<<24/8) {
		t.Fatalf("24-bit bitmap = %v", p24.BitmapBytes)
	}
	if p24.FitsDPALLC {
		t.Fatal("2 MiB bitmap reported as fitting a 1.5 MB LLC")
	}
	// Monotonicity.
	for i := 1; i < len(pts); i++ {
		if pts[i].BitmapBytes <= pts[i-1].BitmapBytes {
			t.Fatal("bitmap sizes not increasing")
		}
	}
}

func TestMaxBufferFittingLLC(t *testing.T) {
	// Paper §III-D: a bitmap filling the 1.5 MB LLC addresses ≈50 GB of
	// receive buffer with 4 KiB chunks.
	got := MaxBufferFittingLLC(4096)
	if got < 45e9 || got > 55e9 {
		t.Fatalf("LLC-limited buffer = %.3g, want ≈50 GB", got)
	}
}

func TestCommunicatorsFittingLLC(t *testing.T) {
	// Paper §III-D: 64 KiB bitmaps + 16 KiB contexts -> more than 16
	// communicators fit the LLC.
	got := CommunicatorsFittingLLC(64<<10, 16<<10)
	if got <= 16 {
		t.Fatalf("communicators fitting LLC = %d, want > 16", got)
	}
	if CommunicatorsFittingLLC(0, 0) != 0 {
		t.Fatal("degenerate sizes should fit zero")
	}
}

func TestTrafficModelErrors(t *testing.T) {
	g, _ := topology.TwoLevelFatTree(topology.FatTreeSpec{Hosts: 2, HostsPerLeaf: 2, Spines: 1})
	m, err := NewTrafficModel(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.RingAllgatherBytes(0) != 0 {
		t.Fatal("zero bytes should cost zero")
	}
}

func TestEconomicsSuperPOD(t *testing.T) {
	// Paper §VII: to drive 4x 1.6 Tbit/s-class links with 4 KiB datagrams
	// in both directions takes >= 64 CPU cores; for the SuperPOD node the
	// NIC solution is ~2.5x cheaper and ~7x more energy efficient.
	r := SuperPODNode().Economics()
	if r.CoresNeeded != 32 { // 4x 400 Gbit/s, both directions, 1 core/100G
		t.Fatalf("cores = %v, want 32", r.CoresNeeded)
	}
	if r.CostAdvantage < 2.5*0.8 || r.CostAdvantage > 2.5*1.2 {
		t.Fatalf("cost advantage %.2f, want ≈2.5 (paper)", r.CostAdvantage)
	}
	if r.PowerAdvantage < 7*0.7 || r.PowerAdvantage > 7*1.3 {
		t.Fatalf("power advantage %.2f, want ≈7 (paper)", r.PowerAdvantage)
	}
}

func TestEconomicsTbitLinks(t *testing.T) {
	in := SuperPODNode()
	in.LinkGbps = 1600
	r := in.Economics()
	if r.CoresNeeded != 128 {
		t.Fatalf("1.6T cores = %v, want 128 (paper: 'at least 64' for one direction x4)", r.CoresNeeded)
	}
}
