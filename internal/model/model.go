// Package model implements the paper's analytic cost models: the Figure 2
// theoretical traffic comparison on a 1024-node radix-32 fat-tree, the
// Figure 7 bitmap/receive-buffer sizing against PSN bits, and the
// Appendix B speedup of concurrent {multicast Allgather, INC Reduce-
// Scatter} over {ring Allgather, ring Reduce-Scatter}.
package model

import (
	"fmt"

	"repro/internal/topology"
)

// TrafficModel counts exact link crossings of Allgather algorithms on a
// concrete topology (Figure 2). Bytes are payload only; the simulator adds
// headers, the analytic model follows the paper in ignoring them.
type TrafficModel struct {
	g     *topology.Graph
	hosts []topology.NodeID
	// hops[i][j]: link distance between host i and host j.
	hops [][]int
	// mcastEdges: links of the multicast spanning tree over all hosts.
	mcastEdges int
}

// NewTrafficModel prepares a model over all hosts of g. The multicast tree
// is rooted at the first top-level switch, as the runtime does.
func NewTrafficModel(g *topology.Graph) (*TrafficModel, error) {
	hosts := g.Hosts()
	if len(hosts) == 0 {
		return nil, fmt.Errorf("model: topology has no hosts")
	}
	m := &TrafficModel{g: g, hosts: hosts}
	m.hops = make([][]int, len(hosts))
	for i, h := range hosts {
		all := g.HopsFrom(h)
		row := make([]int, len(hosts))
		for j, h2 := range hosts {
			row[j] = all[h2]
		}
		m.hops[i] = row
	}
	roots := g.TopSwitches()
	if len(roots) == 0 {
		return nil, fmt.Errorf("model: topology has no switch to root a multicast tree")
	}
	mt, err := g.BuildMulticastTree(roots[0], hosts)
	if err != nil {
		return nil, err
	}
	edges := 0
	for _, ports := range mt.TreePorts {
		edges += len(ports)
	}
	m.mcastEdges = edges / 2 // each tree edge counted at both endpoints
	return m, nil
}

// Hosts returns the number of endpoints in the model.
func (m *TrafficModel) Hosts() int { return len(m.hosts) }

// McastTreeEdges returns the number of links in the multicast spanning tree.
func (m *TrafficModel) McastTreeEdges() int { return m.mcastEdges }

// RingAllgatherBytes returns the total bytes crossing all links for a ring
// Allgather with per-rank buffer n: every rank's buffer travels P-1 hops
// around the ring, each hop crossing hops(r, r+1) links.
func (m *TrafficModel) RingAllgatherBytes(n int) float64 {
	p := len(m.hosts)
	if p < 2 {
		return 0
	}
	// At step k, rank r forwards one block of n bytes to r+1; over P-1
	// steps each ring edge carries (P-1) blocks.
	total := 0.0
	for r := 0; r < p; r++ {
		total += float64(m.hops[r][(r+1)%p]) * float64(n) * float64(p-1)
	}
	return total
}

// LinearAllgatherBytes returns total link bytes for the direct algorithm:
// every rank unicasts its buffer to every other rank.
func (m *TrafficModel) LinearAllgatherBytes(n int) float64 {
	p := len(m.hosts)
	total := 0.0
	for r := 0; r < p; r++ {
		for q := 0; q < p; q++ {
			if q != r {
				total += float64(m.hops[r][q]) * float64(n)
			}
		}
	}
	return total
}

// McastAllgatherBytes returns total link bytes for the multicast
// composition: each rank's buffer crosses every tree link exactly once
// (Insight 1), minus the sender's own host link (no loopback).
func (m *TrafficModel) McastAllgatherBytes(n int) float64 {
	p := len(m.hosts)
	return float64(p) * float64(n) * float64(m.mcastEdges-1)
}

// McastBroadcastBytes returns total link bytes for one multicast broadcast.
func (m *TrafficModel) McastBroadcastBytes(n int) float64 {
	return float64(n) * float64(m.mcastEdges-1)
}

// KnomialBroadcastBytes returns total link bytes for a k-nomial tree
// broadcast from root 0.
func (m *TrafficModel) KnomialBroadcastBytes(n, radix int) float64 {
	p := len(m.hosts)
	total := 0.0
	var walk func(v int)
	walk = func(v int) {
		for _, c := range knomialChildren(v, p, radix) {
			total += float64(m.hops[v][c]) * float64(n)
			walk(c)
		}
	}
	walk(0)
	return total
}

// knomialChildren mirrors the runtime tree construction (root fixed at 0).
func knomialChildren(v, size, radix int) []int {
	limit := size
	if v != 0 {
		limit = 1
		for (v/limit)%radix == 0 {
			limit *= radix
		}
	}
	var children []int
	for pow := 1; pow < limit && pow < size; pow *= radix {
		for d := 1; d < radix; d++ {
			c := v + d*pow
			if c >= size {
				break
			}
			children = append(children, c)
		}
	}
	return children
}

// Savings returns the ring-to-multicast Allgather traffic ratio — the
// quantity Figure 2 plots, approaching 2x at scale.
func (m *TrafficModel) Savings(n int) float64 {
	mc := m.McastAllgatherBytes(n)
	if mc == 0 {
		return 0
	}
	return m.RingAllgatherBytes(n) / mc
}

// Fig2Cluster builds the topology of the paper's Figure 2 model: a
// 1024-node cluster on a three-level radix-32 fat-tree.
func Fig2Cluster() (*topology.Graph, error) {
	return topology.ThreeLevelFatTree(32, 1024)
}

// --- Figure 7: bitmap and receive-buffer sizing -------------------------------

// Device memory capacities referenced by Figure 7.
const (
	DPALLCBytes  = 3 << 19  // 1.5 MB: BlueField-3 DPA last-level cache
	DPADRAMBytes = 16 << 30 // BlueField-3 DDR5 attached to the DPA
	GPUHBMBytes  = 80 << 30 // current-generation GPU HBM (A100/H100)
)

// BitmapPoint is one x-position of Figure 7.
type BitmapPoint struct {
	PSNBits int
	// MaxRecvBuffer is the largest addressable Allgather receive buffer:
	// 2^bits chunks of MTU size.
	MaxRecvBuffer float64
	// BitmapBytes is the reliability-bitmap footprint: one bit per chunk.
	BitmapBytes float64
	// FitsDPALLC reports whether the bitmap fits the DPA's 1.5 MB LLC.
	FitsDPALLC bool
}

// BitmapModel evaluates Figure 7 for PSN widths minBits..maxBits with the
// given MTU (the paper uses 4 KiB).
func BitmapModel(minBits, maxBits, mtu int) []BitmapPoint {
	var out []BitmapPoint
	for b := minBits; b <= maxBits; b++ {
		chunks := float64(uint64(1) << uint(b))
		p := BitmapPoint{
			PSNBits:       b,
			MaxRecvBuffer: chunks * float64(mtu),
			BitmapBytes:   chunks / 8,
		}
		p.FitsDPALLC = p.BitmapBytes <= DPALLCBytes
		out = append(out, p)
	}
	return out
}

// MaxBufferFittingLLC returns the largest receive buffer whose bitmap fits
// the DPA LLC (the paper: ≈50 GB with 4 KiB chunks).
func MaxBufferFittingLLC(mtu int) float64 {
	return DPALLCBytes * 8 * float64(mtu)
}

// CommunicatorsFittingLLC returns how many communicator contexts fit in
// the DPA LLC given a per-communicator bitmap and context size (§III-D:
// 64 KiB bitmaps + 16 KiB contexts -> more than 16 communicators).
func CommunicatorsFittingLLC(bitmapBytes, ctxBytes float64) int {
	if bitmapBytes+ctxBytes <= 0 {
		return 0
	}
	return int(DPALLCBytes / (bitmapBytes + ctxBytes))
}

// --- Appendix B: concurrent {AG, RS} speedup ----------------------------------

// SpeedupINC returns S = 2 - 2/P, the Appendix B speedup of
// {AG_mcast, RS_inc} over {AG_ring, RS_ring} on a full-bandwidth fat-tree.
func SpeedupINC(p int) float64 {
	if p <= 0 {
		return 0
	}
	return 2 - 2/float64(p)
}

// RingPairTime returns the ideal completion time (seconds) of concurrent
// ring AG and ring RS, each moving N(P-1) bytes with the NIC bandwidth
// split evenly between them (Appendix B, configuration 1).
func RingPairTime(p int, n float64, bnic float64) float64 {
	if p < 2 {
		return 0
	}
	return n * float64(p-1) / (bnic / 2)
}

// INCPairTime returns the ideal completion time of concurrent multicast AG
// and INC RS: the AG receive path and RS send path each carry N(P-1)
// bytes on their own NIC direction at (1-1/P)·B (Appendix B, config 2).
func INCPairTime(p int, n float64, bnic float64) float64 {
	if p < 2 {
		return 0
	}
	return n * float64(p-1) / (bnic * (1 - 1/float64(p)))
}

// --- §VII: economics of SmartNIC offloading -------------------------------------

// EconomicsInput describes a training-node configuration for the paper's
// §VII node-level cost/energy comparison (the SuperPOD example: 2x 54-core
// Xeon 8570 sockets against 4x ConnectX-7 400 Gbit/s DPA-capable NICs).
type EconomicsInput struct {
	// LinkGbps and Links describe the node's network attachment.
	LinkGbps float64
	Links    int
	// CPUCoresPer100Gbps is the progress-engine footprint of the CPU-driven
	// stack: the paper derives >= 1 core per 100 Gbit/s per direction from
	// the Figure 5/13 single-core measurements.
	CPUCoresPer100Gbps float64
	// Sockets / CPUCost / CPUWatts describe the host CPUs (per socket).
	Sockets  int
	CPUCost  float64
	CPUWatts float64
	// NICCost / NICWatts describe one DPA-capable SmartNIC.
	NICCost  float64
	NICWatts float64
}

// SuperPODNode is the paper's reference configuration, with list-price and
// TDP figures at the paper's reported ratios (the NICs' total cost ~2.5x
// lower and energy ~7x lower than the CPUs').
func SuperPODNode() EconomicsInput {
	return EconomicsInput{
		LinkGbps:           400,
		Links:              4,
		CPUCoresPer100Gbps: 1,
		Sockets:            2,
		CPUCost:            13000, // Xeon 8570 list
		CPUWatts:           350,
		NICCost:            2600,
		NICWatts:           25,
	}
}

// EconomicsResult compares a CPU-driven node against DPA offloading.
type EconomicsResult struct {
	// CoresNeeded is the progress-engine footprint of driving every link in
	// both directions with 4 KiB datagrams on CPU cores — the reason the
	// CPU-driven node cannot also run the application.
	CoresNeeded    float64
	CPUCost        float64 // all sockets
	CPUWatts       float64
	NICCost        float64 // all NICs
	NICWatts       float64
	CostAdvantage  float64 // CPUCost / NICCost
	PowerAdvantage float64
}

// Economics evaluates the node-level comparison.
func (in EconomicsInput) Economics() EconomicsResult {
	cores := in.LinkGbps / 100 * in.CPUCoresPer100Gbps * 2 * float64(in.Links)
	r := EconomicsResult{
		CoresNeeded: cores,
		CPUCost:     float64(in.Sockets) * in.CPUCost,
		CPUWatts:    float64(in.Sockets) * in.CPUWatts,
		NICCost:     float64(in.Links) * in.NICCost,
		NICWatts:    float64(in.Links) * in.NICWatts,
	}
	if r.NICCost > 0 {
		r.CostAdvantage = r.CPUCost / r.NICCost
	}
	if r.NICWatts > 0 {
		r.PowerAdvantage = r.CPUWatts / r.NICWatts
	}
	return r
}
