package coll

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
)

func buildTeam(t *testing.T, p int, cfg Config) (*sim.Engine, *fabric.Fabric, *Team) {
	t.Helper()
	eng := sim.NewEngine(17)
	var g *topology.Graph
	if p <= 4 {
		g = topology.Star(p)
	} else {
		var err error
		g, err = topology.TwoLevelFatTree(topology.FatTreeSpec{Hosts: p, HostsPerLeaf: 4, Spines: 2})
		if err != nil {
			t.Fatal(err)
		}
	}
	f := fabric.New(eng, g, fabric.Config{})
	team, err := NewTeamOn(f, g.Hosts()[:p], cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, f, team
}

func TestRingAllgatherVerified(t *testing.T) {
	_, _, team := buildTeam(t, 4, Config{VerifyData: true})
	res, err := team.RunRingAllgather(40000)
	if err != nil {
		t.Fatal(err)
	}
	if err := team.VerifyAllgather(40000); err != nil {
		t.Fatal(err)
	}
	if res.Kind != "ring-allgather" || res.RecvBytes != 3*40000 {
		t.Fatalf("result meta: %+v", res)
	}
	if res.Duration() <= 0 {
		t.Fatal("non-positive duration")
	}
}

func TestRingAllgatherSingleRank(t *testing.T) {
	_, _, team := buildTeam(t, 1, Config{VerifyData: true})
	if _, err := team.RunRingAllgather(1000); err != nil {
		t.Fatal(err)
	}
}

func TestLinearAllgatherVerified(t *testing.T) {
	_, _, team := buildTeam(t, 4, Config{VerifyData: true})
	if _, err := team.RunLinearAllgather(20000); err != nil {
		t.Fatal(err)
	}
	if err := team.VerifyAllgather(20000); err != nil {
		t.Fatal(err)
	}
}

func TestRecursiveDoublingAllgatherVerified(t *testing.T) {
	_, _, team := buildTeam(t, 8, Config{VerifyData: true})
	if _, err := team.RunRecursiveDoublingAllgather(16384); err != nil {
		t.Fatal(err)
	}
	if err := team.VerifyAllgather(16384); err != nil {
		t.Fatal(err)
	}
}

func TestRecursiveDoublingRejectsNonPow2(t *testing.T) {
	_, _, team := buildTeam(t, 3, Config{})
	if _, err := team.RunRecursiveDoublingAllgather(1024); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
}

func TestKnomialBroadcastVerified(t *testing.T) {
	for _, p := range []int{2, 4, 8, 13} {
		_, _, team := buildTeam(t, p, Config{VerifyData: true, KnomialRadix: 4})
		if _, err := team.RunKnomialBroadcast(0, 30000); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if err := team.VerifyBroadcast(0, 30000); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}

func TestKnomialNonZeroRoot(t *testing.T) {
	_, _, team := buildTeam(t, 8, Config{VerifyData: true})
	if _, err := team.RunKnomialBroadcast(3, 10000); err != nil {
		t.Fatal(err)
	}
	if err := team.VerifyBroadcast(3, 10000); err != nil {
		t.Fatal(err)
	}
}

func TestKnomialTreeStructure(t *testing.T) {
	// Radix 2, size 8, root 0: children(0)={1,2,4}, children(4)={5,6},
	// children(6)={7}, leaves have none; parents invert the relation.
	cases := map[int][]int{0: {1, 2, 4}, 1: nil, 2: {3}, 3: nil, 4: {5, 6}, 5: nil, 6: {7}, 7: nil}
	for id, want := range cases {
		got := knomialChildren(id, 0, 8, 2)
		if len(got) != len(want) {
			t.Fatalf("children(%d) = %v, want %v", id, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("children(%d) = %v, want %v", id, got, want)
			}
		}
	}
	for id := 1; id < 8; id++ {
		par := knomialParent(id, 0, 8, 2)
		found := false
		for _, c := range knomialChildren(par, 0, 8, 2) {
			if c == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("parent(%d)=%d does not list it as a child", id, par)
		}
	}
	if knomialParent(0, 0, 8, 2) != -1 {
		t.Fatal("root has a parent")
	}
}

func TestKnomialTreeCoversAllRanks(t *testing.T) {
	for _, radix := range []int{2, 3, 4, 8} {
		for _, size := range []int{1, 2, 5, 16, 188} {
			for _, root := range []int{0, size / 2} {
				seen := map[int]bool{root: true}
				queue := []int{root}
				for len(queue) > 0 {
					n := queue[0]
					queue = queue[1:]
					for _, c := range knomialChildren(n, root, size, radix) {
						if seen[c] {
							t.Fatalf("radix %d size %d: rank %d reached twice", radix, size, c)
						}
						seen[c] = true
						queue = append(queue, c)
					}
				}
				if len(seen) != size {
					t.Fatalf("radix %d size %d root %d: tree covers %d of %d", radix, size, root, len(seen), size)
				}
			}
		}
	}
}

func TestBinaryTreeBroadcastVerified(t *testing.T) {
	_, _, team := buildTeam(t, 8, Config{VerifyData: true, ChunkBytes: 4096})
	if _, err := team.RunBinaryTreeBroadcast(0, 100000); err != nil {
		t.Fatal(err)
	}
	if err := team.VerifyBroadcast(0, 100000); err != nil {
		t.Fatal(err)
	}
}

func TestChainBroadcastVerified(t *testing.T) {
	_, _, team := buildTeam(t, 8, Config{VerifyData: true, ChunkBytes: 8192})
	if _, err := team.RunChainBroadcast(0, 65536); err != nil {
		t.Fatal(err)
	}
	if err := team.VerifyBroadcast(0, 65536); err != nil {
		t.Fatal(err)
	}
}

func TestPipeliningBeatsStoreAndForwardAtLargeN(t *testing.T) {
	// Chunked binary tree must beat whole-message k-nomial at multi-MiB
	// sizes on the same topology (the large-message regime of Fig. 11).
	const n = 4 << 20
	_, _, team1 := buildTeam(t, 8, Config{ChunkBytes: 64 * 1024})
	bin, err := team1.RunBinaryTreeBroadcast(0, n)
	if err != nil {
		t.Fatal(err)
	}
	_, _, team2 := buildTeam(t, 8, Config{})
	kn, err := team2.RunKnomialBroadcast(0, n)
	if err != nil {
		t.Fatal(err)
	}
	if bin.Duration() >= kn.Duration() {
		t.Fatalf("pipelined binary (%v) not faster than store-and-forward knomial (%v) at 4 MiB",
			bin.Duration(), kn.Duration())
	}
}

func TestRingReduceScatter(t *testing.T) {
	_, _, team := buildTeam(t, 4, Config{})
	res, err := team.RunRingReduceScatter(32768)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration() <= 0 {
		t.Fatal("non-positive duration")
	}
}

func TestINCReduceScatter(t *testing.T) {
	eng := sim.NewEngine(3)
	g := topology.Star(4)
	f := fabric.New(eng, g, fabric.Config{})
	team, err := NewTeamOn(f, g.Hosts(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := f.CreateReduceGroup(g.Switches()[0], g.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := team.RunINCReduceScatter(rg, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration() <= 0 {
		t.Fatal("non-positive duration")
	}
	// 64 KiB shard = 16 chunks x 4 shards reduced at the root.
	if got := f.ReducedChunks(rg); got != 64 {
		t.Fatalf("root reduced %d chunks, want 64", got)
	}
}

func TestINCSendPathDominates(t *testing.T) {
	// Insight 2: INC reduce-scatter loads the send path ~(P-1)x more than
	// the receive path. Verify via per-host NIC counters.
	eng := sim.NewEngine(3)
	g := topology.Star(4)
	f := fabric.New(eng, g, fabric.Config{})
	team, _ := NewTeamOn(f, g.Hosts(), Config{})
	rg, _ := f.CreateReduceGroup(g.Switches()[0], g.Hosts())
	if _, err := team.RunINCReduceScatter(rg, 65536); err != nil {
		t.Fatal(err)
	}
	h0 := g.Hosts()[0]
	up := f.ChannelStats(h0, g.Switches()[0])
	down := f.ChannelStats(g.Switches()[0], h0)
	if up.Bytes < 3*down.Bytes {
		t.Fatalf("send path %d not >> recv path %d", up.Bytes, down.Bytes)
	}
}

func TestRingVsLinearTraffic(t *testing.T) {
	// Both ring and linear move P(P-1)N across host links, but ring pays
	// no incast. At the switch counters on a star they are comparable;
	// the test pins the ring's total as the Figure 12 P2P reference.
	const n = 1 << 16
	eng := sim.NewEngine(5)
	g := topology.Star(4)
	f := fabric.New(eng, g, fabric.Config{})
	team, _ := NewTeamOn(f, g.Hosts(), Config{})
	if _, err := team.RunRingAllgather(n); err != nil {
		t.Fatal(err)
	}
	got := float64(f.SwitchEgressBytes())
	want := float64(4*3*n) * (1 + 64.0/4096.0)
	if got < want*0.95 || got > want*1.10 {
		t.Fatalf("ring switch egress %.3g, want ≈%.3g (P(P-1)N)", got, want)
	}
}

func TestConcurrentAllgatherAndReduceScatterShareNIC(t *testing.T) {
	// Two teams on the same hosts: concurrent ring AG and ring RS contend
	// for injection bandwidth, so the pair takes longer than either alone.
	const n = 1 << 20
	mk := func() (*sim.Engine, *cluster.Cluster, *Team, *Team) {
		eng := sim.NewEngine(9)
		g := topology.Star(4)
		f := fabric.New(eng, g, fabric.Config{})
		cl := cluster.New(f, cluster.Config{})
		agTeam, err := NewTeam(cl, g.Hosts(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		rsTeam, err := NewTeam(cl, g.Hosts(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		return eng, cl, agTeam, rsTeam
	}
	// Alone.
	eng, _, agTeam, _ := mk()
	agRes, err := agTeam.RunRingAllgather(n)
	if err != nil {
		t.Fatal(err)
	}
	_ = eng
	// Concurrent.
	eng2, _, agTeam2, rsTeam2 := mk()
	var agC, rsC *Result
	if err := agTeam2.StartRingAllgather(n, func(r *Result) { agC = r }); err != nil {
		t.Fatal(err)
	}
	if err := rsTeam2.StartRingReduceScatter(n, func(r *Result) { rsC = r }); err != nil {
		t.Fatal(err)
	}
	eng2.Run()
	if agC == nil || rsC == nil {
		t.Fatal("concurrent ops did not complete")
	}
	if agC.Duration() <= agRes.Duration() {
		t.Fatalf("concurrent AG (%v) not slower than solo AG (%v) despite shared NIC",
			agC.Duration(), agRes.Duration())
	}
}

func TestBusyTeamRejectsSecondOp(t *testing.T) {
	_, _, team := buildTeam(t, 4, Config{})
	if err := team.StartRingAllgather(1000, nil); err != nil {
		t.Fatal(err)
	}
	if err := team.StartRingAllgather(1000, nil); err == nil {
		t.Fatal("second op accepted while busy")
	}
}

func TestInvalidInputs(t *testing.T) {
	_, _, team := buildTeam(t, 4, Config{})
	if _, err := team.RunRingAllgather(0); err == nil {
		t.Fatal("zero-byte allgather accepted")
	}
	if err := team.StartKnomialBroadcast(9, 100, nil); err == nil {
		t.Fatal("out-of-range root accepted")
	}
	eng := sim.NewEngine(1)
	g := topology.Star(2)
	f := fabric.New(eng, g, fabric.Config{})
	if _, err := NewTeamOn(f, nil, Config{}); err == nil {
		t.Fatal("empty team accepted")
	}
}

func TestSequentialTeamOps(t *testing.T) {
	_, _, team := buildTeam(t, 4, Config{VerifyData: true})
	for i := 0; i < 3; i++ {
		if _, err := team.RunRingAllgather(10000); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if err := team.VerifyAllgather(10000); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
	}
	if _, err := team.RunKnomialBroadcast(1, 5000); err != nil {
		t.Fatal(err)
	}
	if err := team.VerifyBroadcast(1, 5000); err != nil {
		t.Fatal(err)
	}
}

func TestRingAllgatherBandwidthApproachesLink(t *testing.T) {
	// At large N the ring's per-rank receive throughput approaches the
	// link bandwidth (Fig. 11's convergence of ring and multicast).
	_, f, team := buildTeam(t, 8, Config{})
	res, err := team.RunRingAllgather(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	bw := res.AlgBandwidth()
	link := f.Config().LinkBandwidth
	if bw < 0.5*link || bw > link {
		t.Fatalf("ring allgather bandwidth %.3g vs link %.3g: outside [0.5, 1.0]x", bw, link)
	}
}

func TestBruckAllgatherVerified(t *testing.T) {
	for _, p := range []int{2, 3, 4, 7, 8, 13} {
		_, _, team := buildTeam(t, p, Config{VerifyData: true})
		if _, err := team.RunBruckAllgather(12000); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if err := team.VerifyAllgather(12000); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}

func TestBruckFewerStepsThanRing(t *testing.T) {
	// Bruck finishes in ceil(log2 P) rounds: at small messages (latency
	// bound) it must beat the P-1-step ring.
	_, _, team1 := buildTeam(t, 16, Config{})
	bruck, err := team1.RunBruckAllgather(4096)
	if err != nil {
		t.Fatal(err)
	}
	_, _, team2 := buildTeam(t, 16, Config{})
	ring, err := team2.RunRingAllgather(4096)
	if err != nil {
		t.Fatal(err)
	}
	if bruck.Duration() >= ring.Duration() {
		t.Fatalf("bruck (%v) not faster than ring (%v) at 4 KiB", bruck.Duration(), ring.Duration())
	}
}

func TestChainBroadcastNonZeroRoot(t *testing.T) {
	_, _, team := buildTeam(t, 6, Config{VerifyData: true, ChunkBytes: 8192})
	if _, err := team.RunChainBroadcast(2, 40000); err != nil {
		t.Fatal(err)
	}
	if err := team.VerifyBroadcast(2, 40000); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyWithoutDataModeRejected(t *testing.T) {
	_, _, team := buildTeam(t, 2, Config{})
	if _, err := team.RunRingAllgather(1000); err != nil {
		t.Fatal(err)
	}
	if err := team.VerifyAllgather(1000); err == nil {
		t.Fatal("VerifyAllgather without VerifyData succeeded")
	}
	if err := team.VerifyBroadcast(0, 1000); err == nil {
		t.Fatal("VerifyBroadcast without VerifyData succeeded")
	}
}
