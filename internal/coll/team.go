// Package coll implements the point-to-point baseline collectives the paper
// compares against (§VI-B): ring / linear / recursive-doubling Allgather,
// k-nomial and pipelined binary-tree Broadcast (the bandwidth-optimized
// UCC/UCX P2P algorithms), ring Reduce-Scatter, and a SHARP-style
// in-network-compute Reduce-Scatter over the fabric's reduction trees
// (used by the Appendix B concurrent {Allgather, Reduce-Scatter} study).
//
// All baselines run over RC queue pairs (the zero-copy rendezvous path of
// production stacks): block transfers are RDMA Writes with immediate, and
// progression is completion-driven with per-CQE costs charged to each
// rank's progress thread, so baselines and the multicast protocol pay
// comparable software overheads.
package coll

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/dpa"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/verbs"
)

// p2pProgress is the per-completion cost of the baseline progress engine
// (poll, match, bookkeeping) on the host CPU.
var p2pProgress = dpa.Profile{Name: "p2p-progress", IssueCycles: 250, LatencyCycles: 250}

// reduceBandwidth is the sustained single-core vector-reduction rate used
// by the ring Reduce-Scatter (memory-bound AVX accumulate), bytes/second.
const reduceBandwidth = 20e9

// Config tunes a baseline team.
type Config struct {
	// ChunkBytes is the pipelining granularity of chunked algorithms
	// (binary tree, chain). Zero defaults to 64 KiB.
	ChunkBytes int
	// KnomialRadix is the tree radix for the k-nomial broadcast. Zero
	// defaults to 4 (the UCC default).
	KnomialRadix int
	// VerifyData backs all buffers with real bytes.
	VerifyData bool
	// Metrics, when set, records one span and one counter increment per
	// completed collective. Nil adds no cost.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 64 * 1024
	}
	if c.KnomialRadix == 0 {
		c.KnomialRadix = 4
	}
	return c
}

// Team is a group of ranks executing P2P collectives.
type Team struct {
	cfg   Config
	cl    *cluster.Cluster
	f     *fabric.Fabric
	eng   *sim.Engine
	peers []*peer
	seq   int
}

type peer struct {
	team *Team
	id   int
	node *cluster.Node
	// eng is the engine owning this rank's host: the primary on a confined
	// fabric, the host's shard on a partitioned one. Every event the rank
	// schedules for itself (send steps, completion marks) goes here.
	eng    *sim.Engine
	cq     *verbs.CQ
	wkr    *dpa.Worker
	thread *dpa.Thread
	qps    map[int]*verbs.QP // peer rank -> RC QP
	// udQP receives in-network reduction results.
	udQP    *verbs.QP
	mrCache map[int]*verbs.MR
	op      p2pOp
}

// p2pOp is the per-rank state machine of one in-flight baseline collective.
type p2pOp interface {
	// handle processes one completion belonging to this op.
	handle(e verbs.CQE)
	// done reports completion.
	done() bool
}

// NewTeam builds a team over hosts using the shared cluster runtime.
func NewTeam(cl *cluster.Cluster, hosts []topology.NodeID, cfg Config) (*Team, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("coll: team needs at least one rank")
	}
	t := &Team{cfg: cfg.withDefaults(), cl: cl, f: cl.Fabric(), eng: cl.Fabric().Engine()}
	for i, h := range hosts {
		node := cl.Node(h)
		p := &peer{
			team:    t,
			id:      i,
			node:    node,
			eng:     node.Ctx.Engine(),
			cq:      &verbs.CQ{},
			thread:  node.CPU.AllocThreads(1)[0],
			qps:     make(map[int]*verbs.QP),
			mrCache: make(map[int]*verbs.MR),
		}
		p.udQP = node.Ctx.NewQP(verbs.UD, p.cq, p.cq, 0)
		p.wkr = dpa.NewWorker(p.eng, p.thread, p.cq, p2pProgress)
		p.wkr.Handle = func(e verbs.CQE) {
			if p.op != nil {
				p.op.handle(e)
			}
		}
		p.wkr.Start()
		t.peers = append(t.peers, p)
	}
	return t, nil
}

// NewTeamOn builds a team with a private cluster (convenience).
func NewTeamOn(f *fabric.Fabric, hosts []topology.NodeID, cfg Config) (*Team, error) {
	return NewTeam(cluster.New(f, cluster.Config{}), hosts, cfg)
}

// Size returns the number of ranks.
func (t *Team) Size() int { return len(t.peers) }

// Engine returns the driving engine.
func (t *Team) Engine() *sim.Engine { return t.eng }

// qpTo returns (creating lazily) the RC QP from rank a to rank b.
func (t *Team) qpTo(a, b int) *verbs.QP {
	pa, pb := t.peers[a], t.peers[b]
	if qp, ok := pa.qps[b]; ok {
		return qp
	}
	qa := pa.node.Ctx.NewQP(verbs.RC, pa.cq, pa.cq, 1024)
	qb := pb.node.Ctx.NewQP(verbs.RC, pb.cq, pb.cq, 1024)
	qa.Connect(verbs.Unicast(pb.node.Host, qb.N))
	qb.Connect(verbs.Unicast(pa.node.Host, qa.N))
	pa.qps[b] = qa
	pb.qps[a] = qb
	return qa
}

// buf returns the peer's cached registration of the given size.
func (p *peer) buf(size int) *verbs.MR {
	if mr, ok := p.mrCache[size]; ok {
		return mr
	}
	var mr *verbs.MR
	if p.team.cfg.VerifyData {
		mr = p.node.Ctx.RegisterMRData(make([]byte, size))
	} else {
		mr = p.node.Ctx.RegisterMR(size)
	}
	p.mrCache[size] = mr
	return mr
}

// Result is the outcome of one baseline collective: the unified
// collective.Result, with the per-rank RecvBytes aggregate filled in.
type Result = collective.Result

// opDriver tracks completion across ranks and finalizes the Result. On a
// partitioned fabric ranks complete on their own shards, possibly within
// the same epoch, so the countdown is mutex-guarded and End accumulates as
// the max of each completing rank's clock — a value independent of which
// shard happens to decrement last (on a confined fabric it degenerates to
// the old "clock at the final completion").
type opDriver struct {
	t         *Team
	res       *Result
	mu        sync.Mutex
	remaining int
	cb        func(*Result)
}

func (t *Team) newDriver(kind string, sendBytes, recvBytes int, cb func(*Result)) *opDriver {
	t.seq++
	return &opDriver{
		t: t,
		res: &Result{
			Kind:      kind,
			Ranks:     t.Size(),
			SendBytes: sendBytes,
			RecvBytes: recvBytes,
			Start:     t.eng.Now(),
		},
		remaining: t.Size(),
		cb:        cb,
	}
}

func (d *opDriver) rankDone(p *peer) {
	p.op = nil
	d.mu.Lock()
	defer d.mu.Unlock()
	if t := p.eng.Now(); t > d.res.End {
		d.res.End = t
	}
	d.remaining--
	if d.remaining == 0 {
		if m := d.t.cfg.Metrics; m != nil {
			m.Span("coll", d.res.Kind, d.res.Start, d.res.End)
			m.Counter("coll", "ops_total", "kind="+d.res.Kind, telemetry.Stable).Add(1)
		}
		if d.cb != nil {
			d.cb(d.res)
		}
	}
}

// OnEvent completes a rank asynchronously (the single-rank degenerate path
// of every Start*): obj is the *peer to mark done.
func (d *opDriver) OnEvent(_ *sim.Engine, _ sim.Handle, _ uint64, _ int, obj any) {
	d.rankDone(obj.(*peer))
}

// immediate encoding shared by baseline ops: [31:24] op sequence low bits,
// [23:0] tag (block / chunk index).
func (t *Team) encImm(tag int) uint32 {
	if tag < 0 || tag >= 1<<24 {
		panic("coll: tag out of range")
	}
	return uint32(t.seq&0xFF)<<24 | uint32(tag)
}

func decImm(imm uint32) (seqLow, tag int) {
	return int(imm >> 24), int(imm & 0xFFFFFF)
}

// checkSeq filters completions from stale operations.
func (t *Team) checkSeq(imm uint32) (int, bool) {
	seqLow, tag := decImm(imm)
	return tag, seqLow == t.seq&0xFF
}

// fillPattern / checkPattern give baselines the same end-to-end data
// verification the core protocol has.
func fillPattern(b []byte, rank, seq int) {
	for i := range b {
		b[i] = byte(rank*131 + seq*29 + i*7)
	}
}

func checkPattern(b []byte, rank, seq int) error {
	for i := range b {
		if want := byte(rank*131 + seq*29 + i*7); b[i] != want {
			return fmt.Errorf("coll: byte %d = %#x, want %#x", i, b[i], want)
		}
	}
	return nil
}
