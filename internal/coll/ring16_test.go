package coll

import "testing"

// TestRingLargeTeamSmallMessage is the regression test for the pipelined
// ring's early-arrival hazard: at 16 ranks and small blocks the left
// neighbor runs a step ahead, which boolean step-tracking miscounted
// (deadlock). Counters must absorb it.
func TestRingLargeTeamSmallMessage(t *testing.T) {
	for _, n := range []int{4096, 65536} {
		_, _, team := buildTeam(t, 16, Config{VerifyData: true})
		if _, err := team.RunRingAllgather(n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := team.VerifyAllgather(n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
	// Reduce-scatter variant of the same hazard.
	_, _, team := buildTeam(t, 16, Config{})
	if _, err := team.RunRingReduceScatter(4096); err != nil {
		t.Fatal(err)
	}
}
