package coll

import (
	"fmt"

	"repro/internal/dpa"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// --- ring reduce-scatter -------------------------------------------------------

// ringRSState is the classic ring Reduce-Scatter over a P·n working buffer:
// P-1 steps; at step k the rank sends shard (id-k) mod P (partially
// reduced) to its right neighbor and accumulates shard (id-k-1) mod P
// arriving from its left neighbor. Reduction compute is charged to the
// rank's progress thread at the memory-bound vector rate.
type ringRSState struct {
	p      *peer
	d      *opDriver
	n      int // shard bytes
	workMR *verbs.MR
	step   int
	// Counters rather than booleans: the left neighbor can run a step
	// ahead (the ring is not pairwise-symmetric).
	reduced int
	sent    int
	fin     bool
}

// StartRingReduceScatter begins a non-blocking ring Reduce-Scatter: each
// rank contributes P·n bytes and receives its n-byte reduced shard.
func (t *Team) StartRingReduceScatter(n int, cb func(*Result)) error {
	if err := t.checkIdle(n); err != nil {
		return err
	}
	d := t.newDriver("ring-reduce-scatter", (t.Size()-1)*n, (t.Size()-1)*n, cb)
	size := t.Size()
	for _, p := range t.peers {
		st := &ringRSState{p: p, d: d, n: n, workMR: p.buf(n * size)}
		p.op = st
		if size == 1 {
			st.fin = true
			p.eng.AfterHandler(0, d, 0, 0, p)
			continue
		}
		st.sendStep()
	}
	return nil
}

// RunRingReduceScatter drives the engine to completion.
func (t *Team) RunRingReduceScatter(n int) (*Result, error) {
	var res *Result
	if err := t.StartRingReduceScatter(n, func(r *Result) { res = r }); err != nil {
		return nil, err
	}
	t.eng.Run()
	if res == nil {
		return nil, fmt.Errorf("coll: ring reduce-scatter did not complete")
	}
	return res, nil
}

func (st *ringRSState) sendStep() {
	t := st.p.team
	size := t.Size()
	shard := (st.p.id - st.step + size) % size
	right := (st.p.id + 1) % size
	qp := t.qpTo(st.p.id, right)
	post := st.p.thread.Run(dpa.SendPost, st.p.eng.Now())
	st.p.eng.AtHandler(post, st, uint64(shard), 0, qp)
}

// OnEvent dispatches the state's two timer kinds: with a QP payload it
// posts the scheduled shard write (arg0 = shard); with no payload it is a
// vector-reduction completing on the progress thread.
func (st *ringRSState) OnEvent(_ *sim.Engine, _ sim.Handle, arg0 uint64, _ int, obj any) {
	if qp, ok := obj.(*verbs.QP); ok {
		t := st.p.team
		shard := int(arg0)
		qp.PostWriteRC(arg0, st.workMR, shard*st.n, st.n,
			st.workMR.Key, shard*st.n, t.encImm(shard), true)
		return
	}
	st.reduced++
	st.advance()
}

func (st *ringRSState) handle(e verbs.CQE) {
	t := st.p.team
	switch e.Op {
	case verbs.OpRecvWriteImm:
		if _, ok := t.checkSeq(e.Imm); !ok {
			return
		}
		// Accumulate the incoming partial shard: memory-bound vector add on
		// the progress thread. (Sequential RunCycles calls serialize on the
		// thread, so back-to-back arrivals reduce one after another.)
		cycles := float64(st.n) * st.p.node.CPU.Freq / reduceBandwidth
		done := st.p.thread.RunCycles(cycles, cycles, st.p.eng.Now())
		st.p.eng.AtHandler(done, st, 0, 0, nil)
		return
	case verbs.OpSend:
		st.sent++
	case verbs.OpErr:
		panic("coll: ring reduce-scatter transport error")
	default:
		return
	}
	st.advance()
}

func (st *ringRSState) advance() {
	for !st.fin && st.reduced > st.step && st.sent > st.step {
		st.step++
		if st.step == st.p.team.Size()-1 {
			st.fin = true
			st.d.rankDone(st.p)
			return
		}
		st.sendStep()
	}
}

func (st *ringRSState) done() bool { return st.fin }

// --- in-network-compute reduce-scatter -------------------------------------------

// incRSState is the SHARP-style Reduce-Scatter: every rank streams all P
// shards of its contribution up the fabric's reduction tree as datagrams;
// the tree root aggregates and emits one reduced result stream per shard
// to the shard's owner. The send path carries N(P-1) bytes per rank while
// the receive path carries only the rank's own shard — the complement of
// the multicast Allgather's profile (Insight 2).
type incRSState struct {
	p        *peer
	d        *opDriver
	n        int // shard bytes
	posted   int
	toPost   int
	received int
	expect   int
	fin      bool
	sendMR   *verbs.MR
	recvMR   *verbs.MR
	rg       fabric.ReduceGroupID
	// mtu and chunksPerShard are fixed per operation; cached here so the
	// per-chunk post events do not redo the divisions.
	mtu            int
	chunksPerShard int
	batchCont      func()
}

// StartINCReduceScatter begins a non-blocking in-network Reduce-Scatter.
// rg must be a fabric reduce group spanning exactly this team's hosts.
func (t *Team) StartINCReduceScatter(rg fabric.ReduceGroupID, n int, cb func(*Result)) error {
	if err := t.checkIdle(n); err != nil {
		return err
	}
	d := t.newDriver("inc-reduce-scatter", (t.Size()-1)*n, n, cb)
	size := t.Size()
	mtu := t.f.MaxPayload()
	chunksPerShard := (n + mtu - 1) / mtu
	for _, p := range t.peers {
		st := &incRSState{
			p: p, d: d, n: n,
			toPost:         chunksPerShard * size,
			expect:         chunksPerShard,
			mtu:            mtu,
			chunksPerShard: chunksPerShard,
			sendMR:         p.buf(n * size),
			recvMR:         p.buf(n),
		}
		p.op = st
		// The owner's shard results consume posted receives on the UD QP.
		for c := 0; c < chunksPerShard; c++ {
			off := c * mtu
			length := n - off
			if length > mtu {
				length = mtu
			}
			if !p.udQP.PostRecv(uint64(c), st.recvMR, off, length) {
				return fmt.Errorf("coll: INC receive queue exhausted")
			}
		}
		st.postContributions(rg)
	}
	return nil
}

// RunINCReduceScatter drives the engine to completion.
func (t *Team) RunINCReduceScatter(rg fabric.ReduceGroupID, n int) (*Result, error) {
	var res *Result
	if err := t.StartINCReduceScatter(rg, n, func(r *Result) { res = r }); err != nil {
		return nil, err
	}
	t.eng.Run()
	if res == nil {
		return nil, fmt.Errorf("coll: INC reduce-scatter did not complete")
	}
	return res, nil
}

// postContributions streams every chunk of every shard into the reduction
// tree, pacing the posting on the progress thread in batches so injection
// tracks the wire.
func (st *incRSState) postContributions(rg fabric.ReduceGroupID) {
	const batch = 64
	st.rg = rg
	postBatch := func() {
		post := st.p.eng.Now()
		for i := 0; i < batch && st.posted < st.toPost; i++ {
			idx := st.posted
			st.posted++
			signaled := i == batch-1 || st.posted == st.toPost
			post = st.p.thread.Run(dpa.SendPost, post)
			sig := 0
			if signaled {
				sig = 1
			}
			st.p.eng.AtHandler(post, st, uint64(idx), sig, nil)
		}
	}
	st.batchCont = postBatch
	postBatch()
}

// OnEvent posts one scheduled contribution chunk into the reduction tree:
// arg0 is the flat chunk index, arg1 the signaled flag.
func (st *incRSState) OnEvent(_ *sim.Engine, _ sim.Handle, arg0 uint64, arg1 int, _ any) {
	t := st.p.team
	idx := int(arg0)
	shard := idx / st.chunksPerShard
	c := idx % st.chunksPerShard
	off := shard*st.n + c*st.mtu
	length := st.n - c*st.mtu
	if length > st.mtu {
		length = st.mtu
	}
	owner := t.peers[shard]
	chunkID := uint64(shard)<<32 | uint64(c)
	st.p.udQP.PostSendReduce(0, verbs.Unicast(owner.node.Host, owner.udQP.N),
		st.rg, chunkID, st.sendMR, off, length, t.encImm(c), arg1 == 1)
}

func (st *incRSState) handle(e verbs.CQE) {
	t := st.p.team
	switch e.Op {
	case verbs.OpRecv: // reduced shard chunk arrived
		if _, ok := t.checkSeq(e.Imm); !ok {
			return
		}
		st.received++
	case verbs.OpSend:
		if st.posted < st.toPost {
			st.batchCont()
		}
	default:
		return
	}
	if !st.fin && st.received == st.expect && st.posted == st.toPost {
		st.fin = true
		st.d.rankDone(st.p)
	}
}

func (st *incRSState) done() bool { return st.fin }
