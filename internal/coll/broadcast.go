package coll

import (
	"fmt"

	"repro/internal/dpa"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// treeBcastState drives a rank through a tree broadcast: receive chunks
// from the parent (the root already has them), forward each chunk to every
// child. With ChunkBytes >= n this degenerates to store-and-forward; with
// small chunks it pipelines.
type treeBcastState struct {
	p        *peer
	d        *opDriver
	n        int
	chunk    int
	chunks   int
	children []int
	buf      *verbs.MR
	have     int // chunks present locally
	sent     int // chunk forwards completed (send CQEs)
	fwd      int // chunk forwards posted
	isRoot   bool
	fin      bool
}

// knomialChildren returns the children of rank id in a k-nomial tree
// rooted at root (classic binomial generalization: virtual rank v's
// children are v + d·k^i for the digit positions below v's lowest nonzero
// digit).
func knomialChildren(id, root, size, radix int) []int {
	v := (id - root + size) % size
	// A node may have children at digit positions strictly below its lowest
	// nonzero base-k digit; the root (v = 0) at every position.
	limit := size
	if v != 0 {
		limit = 1
		for (v/limit)%radix == 0 {
			limit *= radix
		}
	}
	var children []int
	for pow := 1; pow < limit && pow < size; pow *= radix {
		for d := 1; d < radix; d++ {
			c := v + d*pow
			if c >= size {
				break
			}
			children = append(children, (c+root)%size)
		}
	}
	return children
}

// knomialParent returns the parent of id in the k-nomial tree (or -1 for
// the root).
func knomialParent(id, root, size, radix int) int {
	v := (id - root + size) % size
	if v == 0 {
		return -1
	}
	pow := 1
	for v%(pow*radix) == 0 {
		pow *= radix
	}
	digit := (v / pow) % radix
	parent := v - digit*pow
	return (parent + root) % size
}

// binaryChildren returns the children of id in a complete binary tree
// (heap layout) rooted at root.
func binaryChildren(id, root, size int) []int {
	v := (id - root + size) % size
	var children []int
	for _, c := range []int{2*v + 1, 2*v + 2} {
		if c < size {
			children = append(children, (c+root)%size)
		}
	}
	return children
}

// StartKnomialBroadcast begins a k-nomial tree broadcast: whole-message
// store-and-forward down a radix-k tree, the classic UCC/MPI algorithm
// whose depth is ceil(log_k P).
func (t *Team) StartKnomialBroadcast(root, n int, cb func(*Result)) error {
	return t.startTreeBcast("knomial-broadcast", root, n, n, cb, func(id int) []int {
		return knomialChildren(id, root, t.Size(), t.cfg.KnomialRadix)
	})
}

// RunKnomialBroadcast drives the engine to completion.
func (t *Team) RunKnomialBroadcast(root, n int) (*Result, error) {
	return t.runBcast(n, func(cb func(*Result)) error { return t.StartKnomialBroadcast(root, n, cb) })
}

// StartBinaryTreeBroadcast begins a chunk-pipelined complete-binary-tree
// broadcast (NCCL-style): every internal node forwards each chunk to its
// two children, so the steady-state bottleneck is 2N on the send path and
// the startup latency is one chunk per level.
func (t *Team) StartBinaryTreeBroadcast(root, n int, cb func(*Result)) error {
	return t.startTreeBcast("binary-broadcast", root, n, t.cfg.ChunkBytes, cb, func(id int) []int {
		return binaryChildren(id, root, t.Size())
	})
}

// RunBinaryTreeBroadcast drives the engine to completion.
func (t *Team) RunBinaryTreeBroadcast(root, n int) (*Result, error) {
	return t.runBcast(n, func(cb func(*Result)) error { return t.StartBinaryTreeBroadcast(root, n, cb) })
}

// StartChainBroadcast begins a chunk-pipelined chain (each rank forwards to
// the next): send-path optimal among P2P schemes but with P-deep startup.
func (t *Team) StartChainBroadcast(root, n int, cb func(*Result)) error {
	size := t.Size()
	return t.startTreeBcast("chain-broadcast", root, n, t.cfg.ChunkBytes, cb, func(id int) []int {
		v := (id - root + size) % size
		if v == size-1 {
			return nil
		}
		return []int{(id + 1) % size}
	})
}

// RunChainBroadcast drives the engine to completion.
func (t *Team) RunChainBroadcast(root, n int) (*Result, error) {
	return t.runBcast(n, func(cb func(*Result)) error { return t.StartChainBroadcast(root, n, cb) })
}

func (t *Team) runBcast(n int, start func(func(*Result)) error) (*Result, error) {
	var res *Result
	if err := start(func(r *Result) { res = r }); err != nil {
		return nil, err
	}
	t.eng.Run()
	if res == nil {
		return nil, fmt.Errorf("coll: broadcast did not complete")
	}
	return res, nil
}

func (t *Team) startTreeBcast(kind string, root, n, chunk int, cb func(*Result), childrenOf func(int) []int) error {
	if root < 0 || root >= t.Size() {
		return fmt.Errorf("coll: root %d out of range", root)
	}
	if err := t.checkIdle(n); err != nil {
		return err
	}
	if chunk > n {
		chunk = n
	}
	d := t.newDriver(kind, n, n, cb)
	chunks := (n + chunk - 1) / chunk
	for _, p := range t.peers {
		st := &treeBcastState{
			p: p, d: d, n: n, chunk: chunk, chunks: chunks,
			children: childrenOf(p.id),
			buf:      p.buf(n),
			isRoot:   p.id == root,
		}
		p.op = st
		if st.isRoot {
			st.have = chunks
			if t.cfg.VerifyData {
				fillPattern(st.buf.Data, root, t.seq)
			}
			// Root pushes every chunk to every child, interleaved so the
			// children's pipelines fill evenly.
			st.forwardReady()
			if len(st.children) == 0 {
				st.fin = true
				p.eng.AfterHandler(0, d, 0, 0, p)
			}
		}
	}
	t.assertBcastKeys()
	return nil
}

// forwardReady posts forwards for every chunk that is present locally and
// not yet forwarded (fwd counts chunk·child pairs).
func (st *treeBcastState) forwardReady() {
	if len(st.children) == 0 {
		return
	}
	t := st.p.team
	post := st.p.eng.Now()
	for c := st.fwd / len(st.children); c < st.have; c++ {
		off := c * st.chunk
		length := st.n - off
		if length > st.chunk {
			length = st.chunk
		}
		for _, child := range st.children {
			qp := t.qpTo(st.p.id, child)
			post = st.p.thread.Run(dpa.SendPost, post)
			st.p.eng.AtHandler(post, st, uint64(c), length, qp)
			st.fwd++
		}
	}
}

// OnEvent posts one scheduled chunk forward: arg0 is the chunk index, arg1
// its length, obj the child's QP.
func (st *treeBcastState) OnEvent(_ *sim.Engine, _ sim.Handle, arg0 uint64, arg1 int, obj any) {
	t := st.p.team
	off := int(arg0) * st.chunk
	obj.(*verbs.QP).PostWriteRC(arg0, st.buf, off, arg1, st.buf.Key, off, t.encImm(int(arg0)), true)
}

func (st *treeBcastState) handle(e verbs.CQE) {
	t := st.p.team
	switch e.Op {
	case verbs.OpRecvWriteImm:
		if _, ok := t.checkSeq(e.Imm); !ok {
			return
		}
		// In-order arrival from the single parent: chunk st.have landed.
		st.have++
		st.forwardReady()
	case verbs.OpSend:
		st.sent++
	case verbs.OpErr:
		panic("coll: tree broadcast transport error")
	default:
		return
	}
	if st.fin {
		return
	}
	recvDone := st.isRoot || st.have == st.chunks
	sendDone := st.sent == st.chunks*len(st.children)
	if recvDone && sendDone {
		st.fin = true
		st.d.rankDone(st.p)
	}
}

func (st *treeBcastState) done() bool { return st.fin }

func (t *Team) assertBcastKeys() {
	base := -1
	for _, p := range t.peers {
		st, ok := p.op.(*treeBcastState)
		if !ok {
			return
		}
		if base < 0 {
			base = int(st.buf.Key)
		} else if int(st.buf.Key) != base {
			panic("coll: asymmetric broadcast buffer rkeys")
		}
	}
}

// VerifyBroadcast checks every rank's buffer against the root's pattern
// for the most recent tree broadcast (VerifyData mode only).
func (t *Team) VerifyBroadcast(root, n int) error {
	if !t.cfg.VerifyData {
		return fmt.Errorf("coll: VerifyBroadcast requires Config.VerifyData")
	}
	for _, p := range t.peers {
		mr := p.mrCache[n]
		if mr == nil {
			return fmt.Errorf("coll: rank %d has no broadcast buffer", p.id)
		}
		if err := checkPattern(mr.Data[:n], root, t.seq); err != nil {
			return fmt.Errorf("rank %d: %w", p.id, err)
		}
	}
	return nil
}

// VerifyAllgather checks every rank's receive buffer for the most recent
// allgather (VerifyData mode only).
func (t *Team) VerifyAllgather(n int) error {
	if !t.cfg.VerifyData {
		return fmt.Errorf("coll: VerifyAllgather requires Config.VerifyData")
	}
	size := t.Size()
	for _, p := range t.peers {
		mr := p.mrCache[n*size]
		if mr == nil {
			return fmt.Errorf("coll: rank %d has no allgather buffer", p.id)
		}
		for src := 0; src < size; src++ {
			if err := checkPattern(mr.Data[src*n:(src+1)*n], src, t.seq); err != nil {
				return fmt.Errorf("rank %d shard %d: %w", p.id, src, err)
			}
		}
	}
	return nil
}
