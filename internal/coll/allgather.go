package coll

import (
	"fmt"

	"repro/internal/dpa"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// --- ring allgather ----------------------------------------------------------

// ringAGState is the per-rank ring Allgather state machine: P-1 steps; at
// step k the rank writes block (id-k) mod P to its right neighbor and waits
// for block (id-k-1) mod P from its left neighbor. This is the NCCL/UCC
// large-message algorithm the paper uses as its Allgather baseline.
type ringAGState struct {
	p      *peer
	d      *opDriver
	n      int
	recvMR *verbs.MR
	step   int
	// The ring is not pairwise-symmetric: the left neighbor can run ahead
	// and deliver step k+1's block before our step-k send completes, so
	// progress is tracked with counters, not per-step booleans.
	recvd int
	sent  int
	fin   bool
}

// StartRingAllgather begins a non-blocking ring Allgather of n bytes per
// rank; cb fires when every rank completes.
func (t *Team) StartRingAllgather(n int, cb func(*Result)) error {
	if err := t.checkIdle(n); err != nil {
		return err
	}
	d := t.newDriver("ring-allgather", n, (t.Size()-1)*n, cb)
	size := t.Size()
	for _, p := range t.peers {
		st := &ringAGState{p: p, d: d, n: n, recvMR: p.buf(n * size)}
		if t.cfg.VerifyData {
			fillPattern(st.recvMR.Data[p.id*n:(p.id+1)*n], p.id, t.seq)
		}
		p.op = st
		if size == 1 {
			st.fin = true
			p.eng.AfterHandler(0, d, 0, 0, p)
			continue
		}
		st.sendStep()
	}
	t.assertSymmetricKeys()
	return nil
}

// RunRingAllgather drives the engine to completion.
func (t *Team) RunRingAllgather(n int) (*Result, error) {
	var res *Result
	if err := t.StartRingAllgather(n, func(r *Result) { res = r }); err != nil {
		return nil, err
	}
	t.eng.Run()
	if res == nil {
		return nil, fmt.Errorf("coll: ring allgather did not complete")
	}
	return res, nil
}

func (st *ringAGState) sendStep() {
	t := st.p.team
	size := t.Size()
	block := (st.p.id - st.step + size) % size
	right := (st.p.id + 1) % size
	qp := t.qpTo(st.p.id, right)
	// Posting cost on the progress thread, then the zero-copy write. The QP
	// is resolved here, at scheduling time, so lazy QP creation order (and
	// with it QPN/flow assignment) is unchanged from the closure days.
	post := st.p.thread.Run(dpa.SendPost, st.p.eng.Now())
	st.p.eng.AtHandler(post, st, uint64(block), 0, qp)
}

// OnEvent posts the scheduled ring write: arg0 is the block, obj the QP.
func (st *ringAGState) OnEvent(_ *sim.Engine, _ sim.Handle, arg0 uint64, _ int, obj any) {
	t := st.p.team
	block := int(arg0)
	obj.(*verbs.QP).PostWriteRC(arg0, st.recvMR, block*st.n, st.n,
		st.recvMR.Key, block*st.n, t.encImm(block), true)
}

func (st *ringAGState) handle(e verbs.CQE) {
	t := st.p.team
	switch e.Op {
	case verbs.OpRecvWriteImm:
		if _, ok := t.checkSeq(e.Imm); !ok {
			return
		}
		st.recvd++
	case verbs.OpSend:
		st.sent++
	case verbs.OpErr:
		panic("coll: ring allgather transport error")
	default:
		return
	}
	for !st.fin && st.recvd > st.step && st.sent > st.step {
		st.step++
		if st.step == t.Size()-1 {
			st.fin = true
			st.d.rankDone(st.p)
			return
		}
		st.sendStep()
	}
}

func (st *ringAGState) done() bool { return st.fin }

// --- linear allgather ---------------------------------------------------------

// linearAGState sends the rank's block directly to every other rank: the
// Ω(N·(P-1)) send-path scheme of Insight 1.
type linearAGState struct {
	p       *peer
	d       *opDriver
	n       int
	recvMR  *verbs.MR
	sent    int
	recved  int
	fin     bool
	pending int
}

// StartLinearAllgather begins a non-blocking linear (direct) Allgather.
func (t *Team) StartLinearAllgather(n int, cb func(*Result)) error {
	if err := t.checkIdle(n); err != nil {
		return err
	}
	d := t.newDriver("linear-allgather", n, (t.Size()-1)*n, cb)
	size := t.Size()
	for _, p := range t.peers {
		st := &linearAGState{p: p, d: d, n: n, recvMR: p.buf(n * size)}
		if t.cfg.VerifyData {
			fillPattern(st.recvMR.Data[p.id*n:(p.id+1)*n], p.id, t.seq)
		}
		p.op = st
		if size == 1 {
			st.fin = true
			p.eng.AfterHandler(0, d, 0, 0, p)
			continue
		}
		st.postAll()
	}
	t.assertSymmetricKeys()
	return nil
}

// RunLinearAllgather drives the engine to completion.
func (t *Team) RunLinearAllgather(n int) (*Result, error) {
	var res *Result
	if err := t.StartLinearAllgather(n, func(r *Result) { res = r }); err != nil {
		return nil, err
	}
	t.eng.Run()
	if res == nil {
		return nil, fmt.Errorf("coll: linear allgather did not complete")
	}
	return res, nil
}

func (st *linearAGState) postAll() {
	t := st.p.team
	size := t.Size()
	post := st.p.eng.Now()
	for q := 1; q < size; q++ {
		dst := (st.p.id + q) % size
		qp := t.qpTo(st.p.id, dst)
		post = st.p.thread.Run(dpa.SendPost, post)
		st.p.eng.AtHandler(post, st, uint64(st.p.id), 0, qp)
		st.pending++
	}
}

// OnEvent posts the rank's block to one destination: obj is the QP.
func (st *linearAGState) OnEvent(_ *sim.Engine, _ sim.Handle, arg0 uint64, _ int, obj any) {
	t := st.p.team
	block := int(arg0)
	obj.(*verbs.QP).PostWriteRC(arg0, st.recvMR, block*st.n, st.n,
		st.recvMR.Key, block*st.n, t.encImm(block), true)
}

func (st *linearAGState) handle(e verbs.CQE) {
	t := st.p.team
	switch e.Op {
	case verbs.OpRecvWriteImm:
		if _, ok := t.checkSeq(e.Imm); !ok {
			return
		}
		st.recved++
	case verbs.OpSend:
		st.sent++
	case verbs.OpErr:
		panic("coll: linear allgather transport error")
	default:
		return
	}
	if st.recved == t.Size()-1 && st.sent == st.pending && !st.fin {
		st.fin = true
		st.d.rankDone(st.p)
	}
}

func (st *linearAGState) done() bool { return st.fin }

// --- recursive doubling allgather ----------------------------------------------

// rdAGState implements recursive doubling: log2(P) rounds, exchanging
// doubling block ranges with partner id XOR 2^k. Requires a power-of-two
// team size.
type rdAGState struct {
	p      *peer
	d      *opDriver
	n      int
	recvMR *verbs.MR
	round  int
	rounds int
	got    bool
	sent   bool
	fin    bool
}

// StartRecursiveDoublingAllgather begins a non-blocking recursive-doubling
// Allgather; the team size must be a power of two.
func (t *Team) StartRecursiveDoublingAllgather(n int, cb func(*Result)) error {
	size := t.Size()
	if size&(size-1) != 0 {
		return fmt.Errorf("coll: recursive doubling needs power-of-two ranks, have %d", size)
	}
	if err := t.checkIdle(n); err != nil {
		return err
	}
	d := t.newDriver("rd-allgather", n, (size-1)*n, cb)
	rounds := 0
	for 1<<rounds < size {
		rounds++
	}
	for _, p := range t.peers {
		st := &rdAGState{p: p, d: d, n: n, rounds: rounds, recvMR: p.buf(n * size)}
		if t.cfg.VerifyData {
			fillPattern(st.recvMR.Data[p.id*n:(p.id+1)*n], p.id, t.seq)
		}
		p.op = st
		if size == 1 {
			st.fin = true
			p.eng.AfterHandler(0, d, 0, 0, p)
			continue
		}
		st.exchange()
	}
	t.assertSymmetricKeys()
	return nil
}

// RunRecursiveDoublingAllgather drives the engine to completion.
func (t *Team) RunRecursiveDoublingAllgather(n int) (*Result, error) {
	var res *Result
	if err := t.StartRecursiveDoublingAllgather(n, func(r *Result) { res = r }); err != nil {
		return nil, err
	}
	t.eng.Run()
	if res == nil {
		return nil, fmt.Errorf("coll: recursive doubling allgather did not complete")
	}
	return res, nil
}

// exchange sends the contiguous block range this rank currently owns to its
// round partner.
func (st *rdAGState) exchange() {
	t := st.p.team
	dist := 1 << st.round
	partner := st.p.id ^ dist
	qp := t.qpTo(st.p.id, partner)
	post := st.p.thread.Run(dpa.SendPost, st.p.eng.Now())
	st.p.eng.AtHandler(post, st, uint64(st.round), 0, qp)
}

// OnEvent posts the scheduled round exchange: arg0 is the round, obj the
// QP. The round only advances once this post's own send completes, so the
// offsets derived here match what scheduling time would have computed.
func (st *rdAGState) OnEvent(_ *sim.Engine, _ sim.Handle, arg0 uint64, _ int, obj any) {
	t := st.p.team
	round := int(arg0)
	dist := 1 << round
	// The owned range after k rounds starts at (id &^ (2^k - 1)) blocks.
	off := (st.p.id &^ (dist - 1)) * st.n
	obj.(*verbs.QP).PostWriteRC(arg0, st.recvMR, off, dist*st.n,
		st.recvMR.Key, off, t.encImm(round), true)
}

func (st *rdAGState) handle(e verbs.CQE) {
	t := st.p.team
	switch e.Op {
	case verbs.OpRecvWriteImm:
		if tag, ok := t.checkSeq(e.Imm); !ok || tag != st.round {
			return
		}
		st.got = true
	case verbs.OpSend:
		st.sent = true
	case verbs.OpErr:
		panic("coll: recursive doubling transport error")
	default:
		return
	}
	if st.got && st.sent {
		st.got, st.sent = false, false
		st.round++
		if st.round == st.rounds {
			st.fin = true
			st.d.rankDone(st.p)
			return
		}
		st.exchange()
	}
}

func (st *rdAGState) done() bool { return st.fin }

// checkIdle validates team state before starting an operation.
func (t *Team) checkIdle(n int) error {
	if n <= 0 {
		return fmt.Errorf("coll: non-positive size %d", n)
	}
	for _, p := range t.peers {
		if p.op != nil && !p.op.done() {
			return fmt.Errorf("coll: rank %d busy (%T)", p.id, p.op)
		}
	}
	return nil
}

// assertSymmetricKeys verifies the registration-order invariant all remote
// writes rely on.
func (t *Team) assertSymmetricKeys() {
	base := -1
	for _, p := range t.peers {
		var key int
		switch st := p.op.(type) {
		case *ringAGState:
			key = int(st.recvMR.Key)
		case *linearAGState:
			key = int(st.recvMR.Key)
		case *rdAGState:
			key = int(st.recvMR.Key)
		case *bruckAGState:
			key = int(st.workMR.Key)
		default:
			return
		}
		if base < 0 {
			base = key
		} else if key != base {
			panic(fmt.Sprintf("coll: asymmetric rkeys (%d vs %d); host-sharing order diverged", base, key))
		}
	}
}

// --- Bruck allgather ------------------------------------------------------------

// bruckAGState implements the Bruck algorithm: ceil(log2 P) rounds for any
// P. In round k, rank r sends its first min(2^k, P-2^k) gathered blocks to
// rank (r - 2^k mod P) and receives as many from (r + 2^k mod P). Blocks
// accumulate in rotated order (rank's own block first) and are logically
// un-rotated at the end (the un-rotation copy is charged to the DMA engine).
type bruckAGState struct {
	p      *peer
	d      *opDriver
	n      int
	workMR *verbs.MR
	have   int // gathered blocks, in rotated order
	round  int
	// Bruck is not pairwise-symmetric: the rank we send to differs from
	// the one we receive from, so neighbors can run a round ahead. Early
	// arrivals are buffered per round rather than dropped.
	gotR  map[int]bool
	sentR map[int]bool
	fin   bool
}

// StartBruckAllgather begins a non-blocking Bruck Allgather: log-step like
// recursive doubling but valid for any team size.
func (t *Team) StartBruckAllgather(n int, cb func(*Result)) error {
	if err := t.checkIdle(n); err != nil {
		return err
	}
	d := t.newDriver("bruck-allgather", n, (t.Size()-1)*n, cb)
	size := t.Size()
	for _, p := range t.peers {
		st := &bruckAGState{
			p: p, d: d, n: n, have: 1, workMR: p.buf(n * size),
			gotR: make(map[int]bool), sentR: make(map[int]bool),
		}
		if t.cfg.VerifyData {
			// Rotated layout: own block sits at offset 0.
			fillPattern(st.workMR.Data[:n], p.id, t.seq)
		}
		p.op = st
		if size == 1 {
			st.fin = true
			p.eng.AfterHandler(0, d, 0, 0, p)
			continue
		}
		st.exchange()
	}
	t.assertSymmetricKeys()
	return nil
}

// RunBruckAllgather drives the engine to completion.
func (t *Team) RunBruckAllgather(n int) (*Result, error) {
	var res *Result
	if err := t.StartBruckAllgather(n, func(r *Result) { res = r }); err != nil {
		return nil, err
	}
	t.eng.Run()
	if res == nil {
		return nil, fmt.Errorf("coll: bruck allgather did not complete")
	}
	return res, nil
}

func (st *bruckAGState) exchange() {
	t := st.p.team
	size := t.Size()
	dist := 1 << st.round
	dst := (st.p.id - dist + size) % size
	qp := t.qpTo(st.p.id, dst)
	post := st.p.thread.Run(dpa.SendPost, st.p.eng.Now())
	st.p.eng.AtHandler(post, st, uint64(st.round), 0, qp)
}

// OnEvent posts the scheduled Bruck round: arg0 is the round, obj the QP.
// st.have cannot advance between scheduling and firing (advancing round k
// requires the send completion this very post produces), so the counts and
// offsets derived here equal the scheduling-time values.
func (st *bruckAGState) OnEvent(_ *sim.Engine, _ sim.Handle, arg0 uint64, _ int, obj any) {
	t := st.p.team
	round := int(arg0)
	blocks := 1 << round
	if rest := t.Size() - st.have; blocks > rest {
		blocks = rest
	}
	// Sent blocks land appended after the receiver's current blocks: the
	// receiver has the same count we do (lockstep rounds).
	obj.(*verbs.QP).PostWriteRC(arg0, st.workMR, 0, blocks*st.n,
		st.workMR.Key, st.have*st.n, t.encImm(round), true)
}

func (st *bruckAGState) handle(e verbs.CQE) {
	t := st.p.team
	switch e.Op {
	case verbs.OpRecvWriteImm:
		tag, ok := t.checkSeq(e.Imm)
		if !ok {
			return
		}
		st.gotR[tag] = true
	case verbs.OpSend:
		st.sentR[int(e.WrID)] = true
	case verbs.OpErr:
		panic("coll: bruck allgather transport error")
	default:
		return
	}
	st.advance()
}

func (st *bruckAGState) advance() {
	t := st.p.team
	for !st.fin && st.gotR[st.round] && st.sentR[st.round] {
		size := t.Size()
		dist := 1 << st.round
		gained := dist
		if rest := size - st.have; gained > rest {
			gained = rest
		}
		st.have += gained
		st.round++
		if st.have != size {
			st.exchange()
			continue
		}
		// Un-rotate into canonical order: a local memmove of the whole
		// buffer, charged to the DMA engine before completion.
		st.fin = true
		if t.cfg.VerifyData {
			rotated := append([]byte(nil), st.workMR.Data[:size*st.n]...)
			for b := 0; b < size; b++ {
				src := ((b-st.p.id)%size + size) % size
				copy(st.workMR.Data[b*st.n:(b+1)*st.n], rotated[src*st.n:(src+1)*st.n])
			}
		}
		st.p.node.Ctx.DMA().Enqueue(size*st.n, func() { st.d.rankDone(st.p) })
	}
}

func (st *bruckAGState) done() bool { return st.fin }
