// Package dpa models the execution substrates that run the collective
// progress engine: the NVIDIA Datapath Accelerator (16 energy-efficient
// RISC-V cores at 1.8 GHz with 16 hardware threads each, §II-C) and a
// conventional server CPU core.
//
// The model captures the one property the paper's offloading argument rests
// on: the receive datapath is low-IPC data movement (posting RDMA receives,
// polling completions, bitmap updates), so a single thread spends most of
// its cycles stalled on loads/stores, and hardware multithreading can hide
// that latency — until the threads saturate either the core's issue
// pipeline or shared memory paths.
//
// Per completion (CQE) handled, a kernel profile charges:
//
//   - IssueCycles: instructions issued (single-issue core: one per cycle),
//     serialized across all threads of a core;
//   - LatencyCycles: the critical-path occupancy of the handling thread,
//     inflated by a contention factor as more threads share the core
//     (LLC/DRAM pressure from the staging copies).
//
// The DPA profiles reproduce Table I of the paper: UC 66 instructions /
// 598 cycles per CQE (IPC 0.11), UD 113 / 1084 (IPC 0.10) at 1.8 GHz.
package dpa

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/verbs"
)

// Profile is the cost model of one progress-engine code path, charged per
// completion queue entry handled.
type Profile struct {
	Name string
	// IssueCycles is the number of instructions (= issue slots on a
	// single-issue core) the handler executes.
	IssueCycles int
	// LatencyCycles is the handler's critical-path length including memory
	// stalls; always >= IssueCycles.
	LatencyCycles int
}

// IPC returns the single-thread instructions-per-cycle of the profile.
func (p Profile) IPC() float64 { return float64(p.IssueCycles) / float64(p.LatencyCycles) }

// Calibrated kernel profiles. DPA numbers are the paper's own measurements
// (Table I); CPU numbers are fitted so a single 2.6 GHz core sustains the
// fractions of a 200 Gbit/s link reported in Figures 5 and 13 (≈1/2 for the
// UD datapath with software reliability, ≈2/3 for the zero-copy RC chunk
// datapath without it).
var (
	// DPAUDRecv is the DPA UD receive kernel: poll CQE, bitmap update,
	// re-post receive, post staging->user DMA copy.
	DPAUDRecv = Profile{Name: "dpa-ud-recv", IssueCycles: 113, LatencyCycles: 1084}
	// DPAUCRecv is the DPA UC receive kernel: poll CQE, bitmap update,
	// re-post; no staging copy (zero-copy placement by the NIC).
	DPAUCRecv = Profile{Name: "dpa-uc-recv", IssueCycles: 66, LatencyCycles: 598}
	// CPUUDRecv is the single-threaded host datapath with software
	// segmentation/reassembly and reliability (the UCX baseline of Fig. 5).
	CPUUDRecv = Profile{Name: "cpu-ud-recv", IssueCycles: 800, LatencyCycles: 800}
	// CPURCRecv is the host datapath receiving MTU chunks over RC with no
	// software reliability layer (the custom baseline of Fig. 5).
	CPURCRecv = Profile{Name: "cpu-rc-recv", IssueCycles: 650, LatencyCycles: 650}
	// SendPost is the cost of posting one multicast send WQE (batched
	// doorbells amortized). Charged on the TX worker per chunk.
	SendPost = Profile{Name: "send-post", IssueCycles: 150, LatencyCycles: 234} // ~130ns @1.8GHz
	// TaskDispatch is the cost of dequeuing a task / signaling between the
	// application thread and a worker (C11 atomics path, §V-A).
	TaskDispatch = Profile{Name: "task-dispatch", IssueCycles: 120, LatencyCycles: 180}
)

// Chip is a processing element: a DPA complex or a CPU socket.
type Chip struct {
	eng *sim.Engine
	// Freq is the core clock in Hz.
	Freq float64
	// Contention inflates a handler's latency by Contention*(k-1) when k
	// threads are allocated on the same core, modeling shared LLC/DRAM
	// bandwidth. The value 0.10 makes the UD datapath reach line rate
	// between 8 and 16 threads and UC at 4, as in Figures 13/14.
	Contention float64
	cores      []*core
	name       string
}

type core struct {
	issueFree sim.Time
	allocated int // threads handed out on this core
	threads   int // hardware thread capacity
}

// NewDPA builds the BlueField-3 DPA complex: 16 cores x 16 hardware
// threads at 1.8 GHz.
func NewDPA(eng *sim.Engine) *Chip {
	return NewChip(eng, "dpa", 16, 16, 1.8e9, 0.10)
}

// NewCPU builds a host CPU with n single-threaded cores at 2.6 GHz (the
// AMD EPYC 7413 of the DPA testbed). Out-of-order cores hide their own
// memory latency, so profiles for CPUs set IssueCycles == LatencyCycles
// and contention is zero.
func NewCPU(eng *sim.Engine, n int) *Chip {
	return NewChip(eng, "cpu", n, 1, 2.6e9, 0)
}

// NewChip builds a custom processing element.
func NewChip(eng *sim.Engine, name string, cores, threadsPerCore int, freq, contention float64) *Chip {
	if cores <= 0 || threadsPerCore <= 0 || freq <= 0 {
		panic("dpa: invalid chip geometry")
	}
	c := &Chip{eng: eng, Freq: freq, Contention: contention, name: name}
	for i := 0; i < cores; i++ {
		c.cores = append(c.cores, &core{threads: threadsPerCore})
	}
	return c
}

// Name returns the chip's name ("dpa", "cpu", ...).
func (c *Chip) Name() string { return c.name }

// Cores returns the number of cores.
func (c *Chip) Cores() int { return len(c.cores) }

// ThreadsPerCore returns the hardware thread capacity of each core.
func (c *Chip) ThreadsPerCore() int { return c.cores[0].threads }

// Capacity returns the total number of hardware threads.
func (c *Chip) Capacity() int { return len(c.cores) * c.cores[0].threads }

// Thread is one allocated hardware execution context.
type Thread struct {
	chip     *Chip
	core     *core
	nextFree sim.Time
	// Handled counts completions processed; BusyCycles accumulates latency
	// cycles charged, for utilization and IPC reporting.
	Handled    uint64
	BusyCycles float64
	// IssueCyclesRetired accumulates instructions executed.
	IssueCyclesRetired float64
}

// Chip returns the processing element the thread executes on.
func (t *Thread) Chip() *Chip { return t.chip }

// AllocThreads hands out n hardware threads co-located compactly: the first
// 16 on core 0, the next 16 on core 1, and so on — the placement the paper
// uses to stress shared-core scaling ("first occupy 16 hardware threads of
// core 1, then core 2", §VI-C).
func (c *Chip) AllocThreads(n int) []*Thread {
	if n <= 0 {
		panic("dpa: AllocThreads with n <= 0")
	}
	out := make([]*Thread, 0, n)
	for _, co := range c.cores {
		for co.allocated < co.threads && len(out) < n {
			co.allocated++
			out = append(out, &Thread{chip: c, core: co})
		}
		if len(out) == n {
			return out
		}
	}
	panic(fmt.Sprintf("dpa: requested %d threads, chip capacity %d exhausted", n, c.Capacity()))
}

// cyclesToTime converts cycles at the chip clock to simulated time.
func (c *Chip) cyclesToTime(cycles float64) sim.Time {
	return sim.Time(cycles / c.Freq * 1e9)
}

// Run charges one handler execution to the thread, beginning no earlier
// than ready, and returns the completion time. Issue slots serialize across
// the owning core; latency inflates with the number of threads allocated on
// the core (shared memory-path contention).
func (t *Thread) Run(p Profile, ready sim.Time) sim.Time {
	return t.RunCycles(float64(p.IssueCycles), float64(p.LatencyCycles), ready)
}

// RunCycles charges a handler with explicit issue/latency cycle counts —
// used for data-dependent work such as per-byte reduction kernels.
func (t *Thread) RunCycles(issueCycles, latencyCycles float64, ready sim.Time) sim.Time {
	start := ready
	if t.nextFree > start {
		start = t.nextFree
	}
	if now := t.chip.eng.Now(); start < now {
		start = now
	}
	issueStart := start
	if t.core.issueFree > issueStart {
		issueStart = t.core.issueFree
	}
	t.core.issueFree = issueStart + t.chip.cyclesToTime(issueCycles)
	lat := latencyCycles * (1 + t.chip.Contention*float64(t.core.allocated-1))
	t.nextFree = issueStart + t.chip.cyclesToTime(lat)
	t.Handled++
	t.BusyCycles += lat
	t.IssueCyclesRetired += issueCycles
	return t.nextFree
}

// EffectiveLatencyCycles reports the contention-inflated latency this
// thread pays per handler, for Table I style reporting.
func (t *Thread) EffectiveLatencyCycles(p Profile) float64 {
	return float64(p.LatencyCycles) * (1 + t.chip.Contention*float64(t.core.allocated-1))
}

// Worker pumps a completion queue through a hardware thread: each CQE costs
// one Profile execution, after which Handle runs with the entry (protocol
// actions: bitmap update, re-post, DMA copy, completion checks). This is
// the simulated equivalent of the DOCA FlexIO event-handler kernel in
// Appendix C of the paper.
type Worker struct {
	Thread  *Thread
	CQ      *verbs.CQ
	Profile Profile
	// Handle runs at service-completion time for each entry. Optional.
	Handle func(e verbs.CQE)
	// Idle, when set, runs each time the worker drains the CQ and arms it.
	Idle func()

	eng      *sim.Engine
	inflight bool
	stopped  bool
	// pending is the entry being serviced; only one is in flight at a time,
	// so the completion event carries no payload (closure-free pump).
	pending verbs.CQE
	// armFn re-arms the CQ; built once so draining does not allocate.
	armFn func()
	// Processed counts entries fully handled.
	Processed uint64
	// LastDone is the service completion time of the most recent entry.
	LastDone sim.Time
}

// NewWorker binds a thread to a CQ with a kernel profile.
func NewWorker(eng *sim.Engine, th *Thread, cq *verbs.CQ, p Profile) *Worker {
	w := &Worker{Thread: th, CQ: cq, Profile: p, eng: eng}
	w.armFn = w.pump
	return w
}

// Start begins event-driven processing: the worker drains available
// completions, then arms the CQ and sleeps until the next one arrives.
func (w *Worker) Start() { w.pump() }

// Stop halts processing after the in-flight handler finishes.
func (w *Worker) Stop() { w.stopped = true }

func (w *Worker) pump() {
	if w.inflight || w.stopped {
		return
	}
	e, ok := w.CQ.Poll()
	if !ok {
		w.CQ.Armed = w.armFn
		if w.Idle != nil {
			w.Idle()
		}
		return
	}
	w.inflight = true
	w.pending = e
	done := w.Thread.Run(w.Profile, w.eng.Now())
	w.LastDone = done
	w.eng.AtHandler(done, w, 0, 0, nil)
}

// OnEvent completes the in-flight entry's service time and continues the
// pump.
func (w *Worker) OnEvent(_ *sim.Engine, _ sim.Handle, _ uint64, _ int, _ any) {
	w.inflight = false
	w.Processed++
	e := w.pending
	if w.Handle != nil {
		w.Handle(e)
	}
	w.pump()
}
