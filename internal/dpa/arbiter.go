package dpa

import (
	"repro/internal/sim"
	"repro/internal/verbs"
)

// Arbiter is the software traffic arbitration the paper anticipates for
// multi-communicator deployments (§V-C): instead of dedicating one hardware
// thread per communicator (which oversubscribes cores as communicators
// multiply), a single thread subscribes to several completion queues and
// serves them round-robin on a per-datagram basis.
//
// Fairness is datagram-granular: each service round polls the next
// non-empty CQ in rotation, so a busy communicator cannot starve an idle
// one that becomes active.
type Arbiter struct {
	Thread  *Thread
	Profile Profile

	eng      *sim.Engine
	queues   []*arbQueue
	next     int
	inflight bool
	stopped  bool
	// pending is the entry in service (one at a time across all queues);
	// armFn is the shared re-arm callback so sleeping does not allocate.
	pending verbs.CQE
	armFn   func()
	// Processed counts entries served across all queues.
	Processed uint64
}

type arbQueue struct {
	cq     *verbs.CQ
	handle func(e verbs.CQE)
	served uint64
}

// NewArbiter builds an arbitrating worker on one hardware thread.
func NewArbiter(eng *sim.Engine, th *Thread, p Profile) *Arbiter {
	a := &Arbiter{Thread: th, Profile: p, eng: eng}
	a.armFn = a.pump
	return a
}

// Subscribe adds a completion queue with its handler. Subscriptions are
// meant to happen at communicator setup; subscribing mid-flight is safe.
func (a *Arbiter) Subscribe(cq *verbs.CQ, handle func(e verbs.CQE)) {
	q := &arbQueue{cq: cq, handle: handle}
	a.queues = append(a.queues, q)
	cq.Armed = a.armFn
	a.pump()
}

// Served reports how many completions queue i has consumed (fairness
// diagnostics).
func (a *Arbiter) Served(i int) uint64 { return a.queues[i].served }

// Stop halts the arbiter after the in-flight completion.
func (a *Arbiter) Stop() { a.stopped = true }

// pump serves the next non-empty queue in round-robin order, then either
// continues or arms every queue and sleeps.
func (a *Arbiter) pump() {
	if a.inflight || a.stopped || len(a.queues) == 0 {
		return
	}
	n := len(a.queues)
	for i := 0; i < n; i++ {
		q := a.queues[(a.next+i)%n]
		e, ok := q.cq.Poll()
		if !ok {
			continue
		}
		a.next = (a.next + i + 1) % n
		a.inflight = true
		a.pending = e
		done := a.Thread.Run(a.Profile, a.eng.Now())
		a.eng.AtHandler(done, a, 0, 0, q)
		return
	}
	// All drained: re-arm every queue for wake-up.
	for _, q := range a.queues {
		q.cq.Armed = a.armFn
	}
}

// OnEvent completes the in-flight entry's service time on its queue (obj)
// and continues the round-robin.
func (a *Arbiter) OnEvent(_ *sim.Engine, _ sim.Handle, _ uint64, _ int, obj any) {
	a.inflight = false
	a.Processed++
	q := obj.(*arbQueue)
	q.served++
	e := a.pending
	if q.handle != nil {
		q.handle(e)
	}
	a.pump()
}
