package dpa

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/verbs"
)

func TestArbiterServesAllQueues(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDPA(eng)
	a := NewArbiter(eng, d.AllocThreads(1)[0], DPAUCRecv)
	cqs := []*verbs.CQ{{}, {}, {}}
	got := make([]int, 3)
	for i, cq := range cqs {
		i := i
		a.Subscribe(cq, func(e verbs.CQE) { got[i]++ })
	}
	for i, cq := range cqs {
		for k := 0; k < (i+1)*10; k++ {
			cq.Push(verbs.CQE{})
		}
	}
	eng.Run()
	for i, want := range []int{10, 20, 30} {
		if got[i] != want {
			t.Fatalf("queue %d served %d, want %d", i, got[i], want)
		}
	}
	if a.Processed != 60 {
		t.Fatalf("Processed = %d", a.Processed)
	}
}

func TestArbiterRoundRobinFairness(t *testing.T) {
	// Two always-full queues must be served in strict alternation: a busy
	// communicator cannot starve another (§V-C).
	eng := sim.NewEngine(1)
	d := NewDPA(eng)
	a := NewArbiter(eng, d.AllocThreads(1)[0], DPAUCRecv)
	cqA, cqB := &verbs.CQ{}, &verbs.CQ{}
	var order []string
	a.Subscribe(cqA, func(verbs.CQE) { order = append(order, "A") })
	a.Subscribe(cqB, func(verbs.CQE) { order = append(order, "B") })
	for i := 0; i < 50; i++ {
		cqA.Push(verbs.CQE{})
		cqB.Push(verbs.CQE{})
	}
	eng.Run()
	if len(order) != 100 {
		t.Fatalf("served %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Fatalf("round robin violated at %d: %v...", i, order[max(0, i-3):i+1])
		}
	}
	if a.Served(0) != 50 || a.Served(1) != 50 {
		t.Fatalf("uneven service: %d/%d", a.Served(0), a.Served(1))
	}
}

func TestArbiterWakesOnLateTraffic(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDPA(eng)
	a := NewArbiter(eng, d.AllocThreads(1)[0], DPAUCRecv)
	cqA, cqB := &verbs.CQ{}, &verbs.CQ{}
	served := 0
	a.Subscribe(cqA, func(verbs.CQE) { served++ })
	a.Subscribe(cqB, func(verbs.CQE) { served++ })
	// Nothing yet; traffic arrives later on the second queue only.
	eng.After(10*sim.Microsecond, func() {
		for i := 0; i < 5; i++ {
			cqB.Push(verbs.CQE{})
		}
	})
	eng.Run()
	if served != 5 {
		t.Fatalf("served %d of 5 late completions", served)
	}
}

func TestArbiterThroughputMatchesDedicated(t *testing.T) {
	// One thread serving k queues processes at the same aggregate rate as
	// one thread on one queue: arbitration adds no modeled overhead beyond
	// the per-CQE kernel cost.
	run := func(k int) float64 {
		eng := sim.NewEngine(1)
		d := NewDPA(eng)
		a := NewArbiter(eng, d.AllocThreads(1)[0], DPAUDRecv)
		const per = 500
		for i := 0; i < k; i++ {
			cq := &verbs.CQ{}
			a.Subscribe(cq, nil)
			for j := 0; j < per; j++ {
				cq.Push(verbs.CQE{})
			}
		}
		end := eng.Run()
		return float64(per*k) / end.Seconds()
	}
	r1, r4 := run(1), run(4)
	if r4 < r1*0.99 || r4 > r1*1.01 {
		t.Fatalf("arbitrated rate %.3g differs from dedicated %.3g", r4, r1)
	}
}

func TestArbiterStop(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDPA(eng)
	a := NewArbiter(eng, d.AllocThreads(1)[0], DPAUCRecv)
	cq := &verbs.CQ{}
	a.Subscribe(cq, nil)
	cq.Push(verbs.CQE{})
	cq.Push(verbs.CQE{})
	a.Stop()
	eng.Run()
	if a.Processed > 1 {
		t.Fatalf("arbiter processed %d after Stop", a.Processed)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
