package dpa

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/verbs"
)

func TestChipGeometry(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDPA(eng)
	if d.Cores() != 16 || d.ThreadsPerCore() != 16 || d.Capacity() != 256 {
		t.Fatalf("DPA geometry wrong: %d cores x %d threads", d.Cores(), d.ThreadsPerCore())
	}
	c := NewCPU(eng, 24)
	if c.Cores() != 24 || c.ThreadsPerCore() != 1 {
		t.Fatalf("CPU geometry wrong")
	}
}

func TestAllocThreadsCompact(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDPA(eng)
	ths := d.AllocThreads(20)
	// First 16 share core 0, next 4 on core 1.
	for i := 0; i < 16; i++ {
		if ths[i].core != ths[0].core {
			t.Fatalf("thread %d not on core 0", i)
		}
	}
	for i := 16; i < 20; i++ {
		if ths[i].core == ths[0].core {
			t.Fatalf("thread %d should be on core 1", i)
		}
	}
}

func TestAllocThreadsExhaustion(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewChip(eng, "tiny", 1, 2, 1e9, 0)
	d.AllocThreads(2)
	defer func() {
		if recover() == nil {
			t.Error("over-allocation did not panic")
		}
	}()
	d.AllocThreads(1)
}

func TestSingleThreadRateMatchesTableI(t *testing.T) {
	// One DPA thread: rate = freq / LatencyCycles. Table I: UD 1084 cycles
	// at 1.8 GHz -> 1.66M CQE/s -> 6.8e9 B/s with 4 KiB chunks (the paper
	// reports 5.2 GiB/s = 5.58e9; our model is within 25%, see EXPERIMENTS).
	eng := sim.NewEngine(1)
	d := NewDPA(eng)
	th := d.AllocThreads(1)[0]
	var done sim.Time
	const n = 1000
	for i := 0; i < n; i++ {
		done = th.Run(DPAUDRecv, 0)
	}
	rate := float64(n) / done.Seconds()
	want := 1.8e9 / 1084
	if math.Abs(rate-want)/want > 0.01 {
		t.Fatalf("single-thread UD rate %.3g, want %.3g", rate, want)
	}
}

func TestSingleThreadIPC(t *testing.T) {
	if ipc := DPAUCRecv.IPC(); math.Abs(ipc-0.11) > 0.005 {
		t.Errorf("UC IPC = %.3f, want ≈0.11 (Table I)", ipc)
	}
	if ipc := DPAUDRecv.IPC(); math.Abs(ipc-0.104) > 0.005 {
		t.Errorf("UD IPC = %.3f, want ≈0.10 (Table I)", ipc)
	}
}

func TestMultithreadingHidesLatency(t *testing.T) {
	// With k threads on one core, aggregate throughput must rise roughly
	// k-fold (minus contention) until the issue pipeline binds.
	rate := func(k int) float64 {
		eng := sim.NewEngine(1)
		d := NewDPA(eng)
		ths := d.AllocThreads(k)
		const per = 500
		var last sim.Time
		for i := 0; i < per; i++ {
			for _, th := range ths {
				if done := th.Run(DPAUDRecv, 0); done > last {
					last = done
				}
			}
		}
		return float64(per*k) / last.Seconds()
	}
	r1, r4, r16 := rate(1), rate(4), rate(16)
	if r4 < 2.5*r1 {
		t.Errorf("4 threads only %.2fx of 1 thread", r4/r1)
	}
	if r16 < r4 {
		t.Errorf("16 threads slower than 4: %.3g vs %.3g", r16, r4)
	}
	// Issue bound: rate can never exceed freq/IssueCycles.
	if bound := 1.8e9 / 113; r16 > bound*1.001 {
		t.Errorf("16-thread rate %.3g exceeds issue bound %.3g", r16, bound)
	}
}

func TestContentionInflatesLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDPA(eng)
	ths := d.AllocThreads(16)
	want := 1084 * (1 + 0.10*15)
	if got := ths[0].EffectiveLatencyCycles(DPAUDRecv); math.Abs(got-want) > 0.5 {
		t.Fatalf("effective latency %.1f, want %.1f", got, want)
	}
}

func TestCPUCoreNoContention(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCPU(eng, 2)
	ths := c.AllocThreads(2)
	if got := ths[0].EffectiveLatencyCycles(CPUUDRecv); got != 800 {
		t.Fatalf("CPU effective latency %.1f, want 800", got)
	}
	// Single CPU core UD rate: 2.6e9/800 = 3.25M CQE/s. With 4 KiB chunks
	// that is 13.3 GB/s ~= 106 Gbit/s — about half of a 200 Gbit/s link,
	// matching Figure 5's observation.
	var done sim.Time
	for i := 0; i < 1000; i++ {
		done = ths[0].Run(CPUUDRecv, 0)
	}
	gbits := 1000.0 * 4096 * 8 / done.Seconds() / 1e9
	if gbits < 95 || gbits > 115 {
		t.Fatalf("single CPU core sustains %.1f Gbit/s, want ≈106", gbits)
	}
}

func TestRunRespectsReadyTime(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDPA(eng)
	th := d.AllocThreads(1)[0]
	done := th.Run(DPAUCRecv, 1000*sim.Nanosecond)
	lat := float64(598) / 1.8e9 * 1e9
	wantLat := sim.Time(lat)
	if done != 1000+wantLat {
		t.Fatalf("done = %v, want %v", done, 1000+wantLat)
	}
}

func TestThreadCounters(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDPA(eng)
	th := d.AllocThreads(1)[0]
	th.Run(DPAUCRecv, 0)
	th.Run(DPAUCRecv, 0)
	if th.Handled != 2 {
		t.Fatalf("Handled = %d", th.Handled)
	}
	if th.IssueCyclesRetired != 132 {
		t.Fatalf("IssueCyclesRetired = %v", th.IssueCyclesRetired)
	}
	if th.BusyCycles != 2*598 {
		t.Fatalf("BusyCycles = %v", th.BusyCycles)
	}
}

func TestWorkerPumpsCQ(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDPA(eng)
	th := d.AllocThreads(1)[0]
	cq := &verbs.CQ{}
	var handled []uint32
	w := NewWorker(eng, th, cq, DPAUCRecv)
	w.Handle = func(e verbs.CQE) { handled = append(handled, e.Imm) }
	w.Start()
	for i := uint32(0); i < 10; i++ {
		cq.Push(verbs.CQE{Imm: i})
	}
	eng.Run()
	if len(handled) != 10 {
		t.Fatalf("handled %d of 10", len(handled))
	}
	for i, imm := range handled {
		if imm != uint32(i) {
			t.Fatalf("out-of-order handling: %v", handled)
		}
	}
	if w.Processed != 10 {
		t.Fatalf("Processed = %d", w.Processed)
	}
}

func TestWorkerWakesOnArm(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDPA(eng)
	th := d.AllocThreads(1)[0]
	cq := &verbs.CQ{}
	w := NewWorker(eng, th, cq, DPAUCRecv)
	idles := 0
	w.Idle = func() { idles++ }
	w.Start() // CQ empty: arms and idles
	if idles != 1 {
		t.Fatalf("worker did not idle on empty CQ")
	}
	// A push at t=5µs must wake it.
	eng.After(5*sim.Microsecond, func() { cq.Push(verbs.CQE{}) })
	eng.Run()
	if w.Processed != 1 {
		t.Fatalf("worker did not wake on push")
	}
}

func TestWorkerStop(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDPA(eng)
	th := d.AllocThreads(1)[0]
	cq := &verbs.CQ{}
	w := NewWorker(eng, th, cq, DPAUCRecv)
	w.Start()
	cq.Push(verbs.CQE{})
	cq.Push(verbs.CQE{})
	w.Stop()
	eng.Run()
	if w.Processed > 1 {
		t.Fatalf("worker processed %d entries after Stop", w.Processed)
	}
}

func TestWorkerServiceRate(t *testing.T) {
	// A worker saturated with completions must process at freq/latency.
	eng := sim.NewEngine(1)
	d := NewDPA(eng)
	th := d.AllocThreads(1)[0]
	cq := &verbs.CQ{}
	w := NewWorker(eng, th, cq, DPAUDRecv)
	const n = 2000
	for i := 0; i < n; i++ {
		cq.Push(verbs.CQE{})
	}
	w.Start()
	end := eng.Run()
	rate := float64(n) / end.Seconds()
	want := 1.8e9 / 1084
	if math.Abs(rate-want)/want > 0.02 {
		t.Fatalf("saturated worker rate %.3g, want %.3g", rate, want)
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	for _, f := range []func(){
		func() { NewChip(eng, "x", 0, 1, 1e9, 0) },
		func() { NewChip(eng, "x", 1, 0, 1e9, 0) },
		func() { NewChip(eng, "x", 1, 1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid geometry accepted")
				}
			}()
			f()
		}()
	}
}
