package cli

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a,b", []string{"a", "b"}},
		{" a , b ", []string{"a", "b"}},
		{"a,,b,", []string{"a", "b"}},
		{"", nil},
	}
	for _, c := range cases {
		if got := SplitList(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestValidate is the table test for the unified exit-code-2 flag gate:
// every check type, passing and failing, and the subcommand-name prefix.
func TestValidate(t *testing.T) {
	tmp := t.TempDir()
	cases := []struct {
		name  string
		check error
		want  string // "" = pass; otherwise a substring of the error
	}{
		{"positive ok", Positive("iters", 1), ""},
		{"positive zero", Positive("iters", 0), "-iters must be positive"},
		{"positive negative", Positive("iters", -3), "-iters must be positive"},
		{"nonnegative ok", NonNegative("warmup", 0), ""},
		{"nonnegative bad", NonNegative("warmup", -1), "-warmup must be >= 0"},
		{"inrange ok", InRange("nodes", 188, 1, 188), ""},
		{"inrange low", InRange("nodes", 0, 1, 188), "-nodes must be in [1,188]"},
		{"inrange high", InRange("nodes", 189, 1, 188), "-nodes must be in [1,188]"},
		{"oneof ok", OneOf("op", "allgather", []string{"allgather", "broadcast"}), ""},
		{"oneof bad", OneOf("op", "gather", []string{"allgather", "broadcast"}), `-op: unknown value "gather"`},
		{"writable empty", Writable("json", ""), ""},
		{"writable ok", Writable("json", filepath.Join(tmp, "out.json")), ""},
		{"writable missing dir", Writable("json", filepath.Join(tmp, "nope", "out.json")), "does not exist"},
	}
	for _, c := range cases {
		err := Validate("osu", c.check)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: expected error containing %q", c.name, c.want)
			continue
		}
		if !strings.HasPrefix(err.Error(), "osu: ") {
			t.Errorf("%s: error %q is not prefixed with the subcommand name", c.name, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestValidateFirstFailureWins(t *testing.T) {
	err := Validate("train", nil, Positive("layers", 0), NonNegative("compute", -1))
	if err == nil || !strings.Contains(err.Error(), "-layers") {
		t.Fatalf("expected the first failing check, got %v", err)
	}
}

func TestWritableNonDirParent(t *testing.T) {
	tmp := t.TempDir()
	file := filepath.Join(tmp, "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := Writable("csv", filepath.Join(file, "out.csv"))
	if err == nil || !strings.Contains(err.Error(), "not a directory") {
		t.Fatalf("expected not-a-directory error, got %v", err)
	}
}
