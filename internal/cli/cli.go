// Package cli holds the few helpers shared verbatim by every cmd binary.
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
)

// cpuProfile registers the shared -cpuprofile flag on the default flag set:
// importing this package from a main is enough for the flag to exist, and
// every cmd binary calls StartCPUProfile right after flag.Parse.
var cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")

// Fatalf prints the formatted message to stderr and exits with code.
// Convention across the binaries: 2 for invalid flags or parameters,
// 1 for runtime failures.
func Fatalf(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}

// StartCPUProfile begins CPU profiling if -cpuprofile was given and returns
// the stop function; with the flag unset it is a no-op. Call it after
// flag.Parse and defer the stop:
//
//	defer cli.StartCPUProfile()()
//
// Exits with code 2 on an unwritable path, matching the invalid-flag
// convention. (A run that ends through Fatalf loses the profile tail, like
// any crashed profiled process — acceptable for a diagnostics flag.)
func StartCPUProfile() func() {
	if *cpuProfile == "" {
		return func() {}
	}
	f, err := os.Create(*cpuProfile)
	if err != nil {
		Fatalf(2, "cpuprofile: %v", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		Fatalf(2, "cpuprofile: %v", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}
