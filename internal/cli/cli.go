// Package cli holds the flag-parsing, validation and profiling helpers
// shared by every repro subcommand.
//
// The exit-code convention across the tool: 2 for invalid flags or
// parameters (anything Validate or flag parsing rejects, before the
// simulation starts), 1 for runtime failures (simulation errors, baseline
// regressions, unwritable output at write time).
package cli

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"slices"
	"strings"
)

// SplitList parses a comma-separated flag value, trimming whitespace and
// dropping empty elements — the shared parser behind -algos, -scenarios
// and -workloads.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Validate is the single exit-code-2 gate every subcommand funnels its
// parsed flags through: it returns the first failing check, prefixed with
// the subcommand name. Each check below returns nil or a descriptive
// error, so a subcommand's whole flag contract reads as one call:
//
//	err := cli.Validate("osu",
//		cli.InRange("nodes", *nodes, 1, 188),
//		cli.Positive("iters", *iters),
//		cli.Writable("json", *jsonPath))
func Validate(cmd string, checks ...error) error {
	for _, err := range checks {
		if err != nil {
			return fmt.Errorf("%s: %w", cmd, err)
		}
	}
	return nil
}

// Positive requires v >= 1.
func Positive(name string, v int) error {
	if v < 1 {
		return fmt.Errorf("-%s must be positive, got %d", name, v)
	}
	return nil
}

// NonNegative requires v >= 0.
func NonNegative(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("-%s must be >= 0, got %d", name, v)
	}
	return nil
}

// InRange requires lo <= v <= hi.
func InRange(name string, v, lo, hi int) error {
	if v < lo || v > hi {
		return fmt.Errorf("-%s must be in [%d,%d], got %d", name, lo, hi, v)
	}
	return nil
}

// OneOf requires v to be a member of have.
func OneOf(name, v string, have []string) error {
	if !slices.Contains(have, v) {
		return fmt.Errorf("-%s: unknown value %q (have %v)", name, v, have)
	}
	return nil
}

// Writable requires path (when set) to point into an existing directory,
// so a typo'd -json/-csv/-trace/-cpuprofile destination fails before the
// simulation runs instead of after it. The file itself need not exist.
func Writable(name, path string) error {
	if path == "" {
		return nil
	}
	dir := filepath.Dir(path)
	info, err := os.Stat(dir)
	if err != nil {
		return fmt.Errorf("-%s: directory %s does not exist", name, dir)
	}
	if !info.IsDir() {
		return fmt.Errorf("-%s: %s is not a directory", name, dir)
	}
	return nil
}

// StartCPUProfile begins CPU profiling to path and returns the stop
// function; an empty path is a no-op. Callers defer the stop:
//
//	stop, err := cli.StartCPUProfile(*cpuprofile)
//	...
//	defer stop()
func StartCPUProfile(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}
