// Package cli holds the few helpers shared verbatim by every cmd binary.
package cli

import (
	"fmt"
	"os"
)

// Fatalf prints the formatted message to stderr and exits with code.
// Convention across the binaries: 2 for invalid flags or parameters,
// 1 for runtime failures.
func Fatalf(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
