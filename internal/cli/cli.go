// Package cli holds the few helpers shared verbatim by every cmd binary.
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
)

// cpuProfile registers the shared -cpuprofile flag on the default flag set:
// importing this package from a main is enough for the flag to exist, and
// every cmd binary calls StartCPUProfile right after flag.Parse.
var cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")

// shards backs the shared -shards flag. Like -cpuprofile it is registered
// by the package import itself: the conservative-parallel engine mode is
// an execution knob meaningful to every binary, never a sweep axis, and
// -shards 1 (the default) is exactly the serial engine.
var shards = flag.Int("shards", 1, "engine shards for conservative parallel execution (1 = serial; results are identical at any value)")

// Shards validates and returns the -shards argument. Call after
// flag.Parse; exits with code 2 (invalid-flag convention) when the value
// is not positive.
func Shards() int {
	if *shards < 1 {
		Fatalf(2, "shards: %d is not a positive shard count", *shards)
	}
	return *shards
}

// tracePath backs the shared -trace flag. Unlike -cpuprofile (meaningful
// everywhere), tracing needs a protocol run to attach to, so the flag is
// registered only by binaries that honor it — RegisterTrace before
// flag.Parse; elsewhere -trace fails flag parsing (exit 2) instead of
// being silently ignored.
var tracePath *string

// RegisterTrace registers the -trace flag: after the sweep, one
// representative point re-runs with a trace.Recorder attached to its
// multicast protocol state machines and the Figure-9 phase timeline is
// written to the path. The traced run is separate from the sweep, so
// -json/-csv records stay byte-identical; P2P baselines have no tracer
// and produce "(no events)". Call before flag.Parse.
func RegisterTrace() {
	tracePath = flag.String("trace", "", "write the Figure-9 protocol phase timeline of one representative run to this file")
}

// TracePath returns the -trace argument ("" when unset or unregistered).
func TracePath() string {
	if tracePath == nil {
		return ""
	}
	return *tracePath
}

// WriteTrace writes a rendered timeline to the -trace path. A no-op when
// the flag is unset; exits with code 1 on an unwritable path (runtime
// failure convention).
func WriteTrace(timeline string) {
	if TracePath() == "" {
		return
	}
	if err := os.WriteFile(TracePath(), []byte(timeline), 0o644); err != nil {
		Fatalf(1, "trace: %v", err)
	}
}

// SplitList parses a comma-separated flag value, trimming whitespace and
// dropping empty elements — the shared parser behind -algos, -scenarios
// and -workloads.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Fatalf prints the formatted message to stderr and exits with code.
// Convention across the binaries: 2 for invalid flags or parameters,
// 1 for runtime failures.
func Fatalf(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}

// StartCPUProfile begins CPU profiling if -cpuprofile was given and returns
// the stop function; with the flag unset it is a no-op. Call it after
// flag.Parse and defer the stop:
//
//	defer cli.StartCPUProfile()()
//
// Exits with code 2 on an unwritable path, matching the invalid-flag
// convention. (A run that ends through Fatalf loses the profile tail, like
// any crashed profiled process — acceptable for a diagnostics flag.)
func StartCPUProfile() func() {
	if *cpuProfile == "" {
		return func() {}
	}
	f, err := os.Create(*cpuProfile)
	if err != nil {
		Fatalf(2, "cpuprofile: %v", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		Fatalf(2, "cpuprofile: %v", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}
