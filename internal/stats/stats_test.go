package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if math.Abs(s.Mean-2) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.Stddev-1) > 1e-12 {
		t.Fatalf("stddev = %v", s.Stddev)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Median != 7 || s.Stddev != 0 || s.CILow != 7 || s.CIHigh != 7 {
		t.Fatalf("singleton summary: %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Summarize(nil) did not panic")
		}
	}()
	Summarize(nil)
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	Summarize(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {10, 14},
	}
	for _, c := range cases {
		if got := Percentile(s, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestMedianCIContainsMedian(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.CILow <= s.Median && s.Median <= s.CIHigh &&
			s.Min <= s.CILow && s.CIHigh <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOrderInvariance(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		a := make([]float64, len(raw))
		for i, v := range raw {
			a[i] = float64(v)
		}
		b := append([]float64(nil), a...)
		sort.Float64s(b)
		sa, sb := Summarize(a), Summarize(b)
		return sa.Median == sb.Median && sa.Mean == sb.Mean && sa.Min == sb.Min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(4, 2) != 2 {
		t.Fatal("speedup wrong")
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Fatal("division by zero not guarded")
	}
}

func TestSummaryString(t *testing.T) {
	if s := Summarize([]float64{1, 2, 3}).String(); s == "" {
		t.Fatal("empty String()")
	}
}
