// Package stats implements the summary statistics used when reporting
// experimental results, following the scientific-benchmarking guidelines
// the paper cites (Hoefler & Belli, SC'15): medians with nonparametric
// confidence intervals rather than bare means.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of measurements.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	P25    float64
	P75    float64
	P99    float64
	// CILow/CIHigh bound the median's 95% nonparametric confidence
	// interval (binomial order-statistic method). For N < 6 the interval
	// degenerates to [Min, Max].
	CILow  float64
	CIHigh float64
	Stddev float64
}

// Summarize computes the summary of xs. It panics on an empty sample:
// summarizing nothing is always a harness bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)

	sum := 0.0
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(n)
	varsum := 0.0
	for _, v := range s {
		varsum += (v - mean) * (v - mean)
	}
	std := 0.0
	if n > 1 {
		std = math.Sqrt(varsum / float64(n-1))
	}

	out := Summary{
		N:      n,
		Min:    s[0],
		Max:    s[n-1],
		Mean:   mean,
		Median: Percentile(s, 50),
		P25:    Percentile(s, 25),
		P75:    Percentile(s, 75),
		P99:    Percentile(s, 99),
		Stddev: std,
	}
	lo, hi := medianCI(n)
	out.CILow, out.CIHigh = s[lo], s[hi]
	return out
}

// Percentile returns the p-th percentile (0..100) of a sorted sample using
// linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// medianCI returns index bounds of the ~95% binomial confidence interval
// for the median of a sorted sample of size n.
func medianCI(n int) (lo, hi int) {
	if n < 6 {
		return 0, n - 1
	}
	// Normal approximation to Binomial(n, 0.5): ranks at n/2 ± 1.96·√n/2.
	d := 1.96 * math.Sqrt(float64(n)) / 2
	lo = int(math.Floor(float64(n)/2 - d))
	hi = int(math.Ceil(float64(n)/2 + d))
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	return lo, hi
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d median=%.4g [%.4g, %.4g] mean=%.4g min=%.4g max=%.4g",
		s.N, s.Median, s.CILow, s.CIHigh, s.Mean, s.Min, s.Max)
}

// Speedup returns a/b, guarding against division by zero.
func Speedup(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}
