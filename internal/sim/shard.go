// Conservative (lookahead-based) parallel execution.
//
// A Sharded group runs N otherwise-independent Engines — one per shard of a
// partitioned model — and advances them concurrently in epoch barriers. The
// window of each epoch is the group's lookahead: the minimum virtual-time
// distance any cross-shard interaction can cover (for a fabric partition,
// the minimum cross-shard channel latency; see fabric.PartitionHosts). All
// events inside [T, T+lookahead) are causally independent across shards, so
// every shard may execute its slice of the window in parallel; anything a
// shard schedules on another shard necessarily lands at or beyond the
// window's end and is routed through a per-shard-pair SPSC mailbox, merged
// into the destination engine at the next barrier.
//
// # Determinism contract
//
// Parallel execution is a pure throughput win: the same model produces the
// same bytes at every shard count, including 1. Three rules make that hold:
//
//  1. Ownership. Every piece of mutable model state belongs to exactly one
//     shard, and an event only touches state of the shard it runs on. All
//     cross-owner scheduling — even between owners that happen to share a
//     shard — goes through Engine.Send.
//  2. Lookahead. Send requires the target time to be at least lookahead
//     beyond the sender's clock; violating it panics (a conservative
//     simulator that admitted such an event could miss causality).
//  3. Order keys. A Send carries a caller-supplied order key. At equal
//     firing times on one engine, cross-shard events fire before locally
//     scheduled ones and among themselves in ascending key order — the
//     key is the delivered event's sequence number in the engine's
//     reserved low band (see localSeqBand). The rule is a pure function
//     of (time, key): no shard count, worker schedule, or barrier
//     placement can perturb it. Keys must be unique per (destination,
//     time); senders typically pack (owner id, per-owner counter).
//
// A model confined entirely to one shard (today: the packet-level fabric
// stack, whose channel and rank state is not yet partitioned) trivially
// satisfies all three rules and runs through the degenerate fast path below
// at full serial speed — `-shards N` on an unpartitioned model changes no
// bytes and costs no throughput.
//
// # Epoch loop
//
// Worker goroutines are spawned once per Run and parked on a channel
// between epochs — no per-epoch goroutine creation — and a single
// sync.WaitGroup is reused across epochs, so an epoch costs one channel
// send per active shard plus one Wait. Shards with no events inside the
// window are not woken at all: an idle shard costs nothing rather than a
// spin. Mailboxes are plain slices: each is written by exactly one shard
// during an epoch and drained single-threaded at the barrier, with the
// WaitGroup providing the happens-before edge, so the hot path stays
// allocation-free once slice capacities have warmed up.
//
// Handles never cross shards: mailbox delivery materializes a pooled event
// on the destination engine, so generation-checked cancellation keeps
// working exactly as on a serial engine.
package sim

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
)

// message is one cross-shard event in flight inside a mailbox.
type message struct {
	at    Time
	order uint64
	h     Handler
	arg0  uint64
	arg1  int
	obj   any
}

// mailbox is one src->dst lane. It is single-producer (the source shard's
// epoch goroutine appends) and single-consumer (the barrier drains). The
// pad keeps lanes written by different shards off each other's cache lines.
type mailbox struct {
	msgs []message
	_    [40]byte
}

// Sharded is a conservative-parallel group of engines. Construct with
// NewSharded; drive it with Run/RunUntil — either directly or through the
// primary shard's Engine.Run, which delegates here.
type Sharded struct {
	shards    []*Engine
	lookahead Time
	mail      []mailbox // mail[src*len(shards)+dst]
	batch     []message // barrier-scratch merge buffer, reused
	work      []chan Time
	wg        sync.WaitGroup
	panics    []any
	workersUp bool

	// Epochs counts parallel epoch barriers executed (the degenerate
	// single-shard fast path does not barrier and is not counted).
	// Deterministic for a deterministic model and shard count.
	Epochs uint64
	// Stalls counts shard-epochs in which a shard sat out the barrier —
	// it held no event inside the epoch window while other shards
	// advanced. High stall counts mean the partition (or the model's
	// shard-confinement) leaves cores idle; telemetry surfaces this as a
	// Diagnostic metric since it varies with the shard count by nature.
	// Deterministic for a deterministic model and shard count.
	Stalls uint64
}

// NewSharded builds a group of shards engines with the given lookahead
// window. Shard 0 is the primary: it is seeded exactly like
// NewEngine(seed), so a model built on Shard(0) alone reproduces a serial
// engine bit for bit. Further shards get splitmix64-derived seeds.
func NewSharded(seed uint64, shards int, lookahead Time) *Sharded {
	if shards < 1 {
		panic(fmt.Sprintf("sim: shard count %d must be >= 1", shards))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: lookahead %v must be positive", lookahead))
	}
	g := &Sharded{
		shards:    make([]*Engine, shards),
		lookahead: lookahead,
		mail:      make([]mailbox, shards*shards),
		work:      make([]chan Time, shards-1),
		panics:    make([]any, shards),
	}
	for i := range g.shards {
		s := seed
		if i > 0 {
			s = Splitmix64(seed ^ uint64(i)*0x9E3779B97F4A7C15)
			if s == 0 {
				s = 1
			}
		}
		e := NewEngine(s)
		e.group, e.shard = g, i
		g.shards[i] = e
	}
	return g
}

// Shards returns the number of shards in the group.
func (g *Sharded) Shards() int { return len(g.shards) }

// Lookahead returns the group's epoch window.
func (g *Sharded) Lookahead() Time { return g.lookahead }

// Shard returns the engine owning shard i. Shard 0 is the primary.
func (g *Sharded) Shard(i int) *Engine { return g.shards[i] }

// Now returns the primary shard's clock.
func (g *Sharded) Now() Time { return g.shards[0].now }

// ExecutedTotal sums fired events across all shards (deterministic count).
func (g *Sharded) ExecutedTotal() uint64 {
	var n uint64
	for _, e := range g.shards {
		n += e.Executed
	}
	return n
}

// ScheduledTotal sums scheduled events across all shards. A cross-shard
// send counts once, on the destination, exactly like the equivalent local
// AtOrdered — so the total is invariant across shard counts.
func (g *Sharded) ScheduledTotal() uint64 {
	var n uint64
	for _, e := range g.shards {
		n += e.Scheduled
	}
	return n
}

// RecycledTotal sums event-pool hits across all shards. Unlike the
// executed/scheduled totals this is NOT shard-count-invariant: pool reuse
// depends on how events interleave within each shard's own free list.
func (g *Sharded) RecycledTotal() uint64 {
	var n uint64
	for _, e := range g.shards {
		n += e.Recycled
	}
	return n
}

// MailedTotal sums cross-shard messages sent across all shards.
func (g *Sharded) MailedTotal() uint64 {
	var n uint64
	for _, e := range g.shards {
		n += e.MailSent
	}
	return n
}

// Group returns the sharded group the engine belongs to, or nil for a
// standalone serial engine.
func (e *Engine) Group() *Sharded { return e.group }

// ShardIndex returns the engine's shard index within its group (0 for a
// standalone engine and for the primary shard).
func (e *Engine) ShardIndex() int { return e.shard }

func (e *Engine) assertPrimary(op string) {
	if e.shard != 0 {
		panic(fmt.Sprintf("sim: %s on shard %d; only the primary shard (0) may drive a Sharded group", op, e.shard))
	}
}

// AssertShardable panics unless the engine can host subsystem state that is
// not partitioned by shard: a standalone engine or the primary shard of a
// group. Cross-host subsystems (cluster runtimes, workloads, scenario
// injectors) call it at construction so that placing shared state on a
// non-primary shard fails loudly instead of racing.
func AssertShardable(e *Engine, subsystem string) {
	if e.group != nil && e.shard != 0 {
		panic(fmt.Sprintf("sim: %s holds cross-shard state and must be built on the primary shard (0), not shard %d of %d", subsystem, e.shard, len(e.group.shards)))
	}
}

// Send schedules a cross-shard event: h.OnEvent(dstEngine, ...) runs on
// shard dst at absolute virtual time at. The event travels through the
// src->dst mailbox and is merged into the destination engine at the next
// epoch barrier; at must be at least the group lookahead beyond the
// sender's clock, or the conservative window would be unsound (panics).
//
// order is the deterministic tiebreak at equal firing times (see the
// package comment's determinism contract): lower keys fire first, every
// cross-shard event fires before locally scheduled events at the same
// time, and keys must be unique per (destination, time) and below 1<<63.
// Sending to the local shard is allowed and goes through the same mailbox
// path, so co-locating two owners on one shard changes no bytes.
func (e *Engine) Send(dst int, at Time, order uint64, h Handler, arg0 uint64, arg1 int, obj any) {
	g := e.group
	if g == nil {
		panic("sim: Send on an engine that is not part of a Sharded group")
	}
	if dst < 0 || dst >= len(g.shards) {
		panic(fmt.Sprintf("sim: Send to shard %d of %d", dst, len(g.shards)))
	}
	if h == nil {
		panic("sim: Send with nil handler")
	}
	if order >= localSeqBand {
		panic(fmt.Sprintf("sim: Send order key %#x overflows the cross-shard band (must be < 1<<63)", order))
	}
	if at < e.now+g.lookahead {
		panic(fmt.Sprintf("sim: Send from shard %d to shard %d at %v violates lookahead %v (sender now %v, earliest admissible %v, order key %#x): conservative parallel execution cannot admit it",
			e.shard, dst, at, g.lookahead, e.now, e.now+g.lookahead, order))
	}
	e.sentFlag = true
	e.MailSent++
	mb := &g.mail[e.shard*len(g.shards)+dst]
	mb.msgs = append(mb.msgs, message{at: at, order: order, h: h, arg0: arg0, arg1: arg1, obj: obj})
}

// scheduleMail files one delivered cross-shard message into the engine's
// queue. The event is pooled (like AtHandler) but its sequence number is
// the sender's order key — the reserved low band that makes cross-shard
// ordering shard-count-invariant.
func (e *Engine) scheduleMail(m *message) {
	if m.at < e.now {
		panic(fmt.Sprintf("sim: mailbox delivery at %v before now %v", m.at, e.now))
	}
	ev := e.get()
	ev.at = m.at
	ev.seq = m.order
	ev.h = m.h
	ev.arg0 = m.arg0
	ev.arg1 = m.arg1
	ev.obj = m.obj
	e.schedule(ev)
}

// Run executes the whole group until every shard's queue and every mailbox
// is empty (or Stop is called on a shard). It returns the time of the
// globally last fired event, matching the serial Run contract: a serial
// engine's clock ends exactly there, while a sharded epoch slice can
// overshoot an idle shard's clock to the slice deadline — an amount that
// depends on the epoch geometry and hence the shard count. Every shard's
// clock is settled on the returned time (clocks that overshot move back;
// the queues are empty, so no scheduled event can observe it), so
// partitioned subsystems that read their own shard's Now() after a drain
// (to timestamp the next operation) observe the same value on every shard
// at every shard count.
func (g *Sharded) Run() Time {
	var t Time
	for _, e := range g.shards {
		if e.now > t {
			t = e.now // clocks already advanced (e.g. a prior RunUntil) floor the result
		}
	}
	g.run(MaxTime)
	for _, e := range g.shards {
		if e.lastFired > t {
			t = e.lastFired
		}
	}
	for _, e := range g.shards {
		e.now = t
	}
	return t
}

// RunUntil executes group events with firing time <= deadline and advances
// every shard's clock to the deadline, keeping successive calls monotonic
// exactly like the serial engine.
func (g *Sharded) RunUntil(deadline Time) Time {
	g.run(deadline)
	for _, e := range g.shards {
		if e.now < deadline {
			e.now = deadline
		}
	}
	return g.shards[0].now
}

// RunFor advances the group by d nanoseconds of the primary shard's time.
func (g *Sharded) RunFor(d Time) Time { return g.RunUntil(g.shards[0].now + d) }

// run is the conservative epoch loop. deadline == MaxTime means "run dry".
func (g *Sharded) run(deadline Time) {
	for _, e := range g.shards {
		e.stopped = false
	}
	defer g.stopWorkers()
	for {
		g.deliverAll()
		// Find the global frontier and the set of populated shards.
		var (
			frontier Time = -1
			active   int
			only     *Engine
		)
		for _, e := range g.shards {
			if e.stopped {
				return
			}
			if t, ok := e.PeekTime(); ok {
				if frontier < 0 || t < frontier {
					frontier = t
				}
				active++
				only = e
			}
		}
		if frontier < 0 || frontier > deadline {
			return
		}
		if active == 1 {
			// Degenerate fast path: one populated shard, all mailboxes
			// empty (deliverAll just ran) — nothing can schedule into any
			// other shard, so run it serially until it either goes dry or
			// re-establishes cross-shard causality with a Send.
			only.runLocalUntilSend(deadline)
			continue
		}
		// Conservative epoch: all events in [frontier, frontier+lookahead)
		// are causally independent across shards.
		end := frontier + g.lookahead
		if end <= frontier { // overflow near MaxTime
			end = MaxTime
		}
		runTo := end - 1
		if runTo > deadline {
			runTo = deadline
		}
		g.epoch(runTo)
	}
}

// epoch advances every shard holding events at or before runTo, in
// parallel, and barriers. Idle shards are not woken.
func (g *Sharded) epoch(runTo Time) {
	g.Epochs++
	if runtime.GOMAXPROCS(0) == 1 && !raceEnabled {
		// One proc: worker handoff buys no concurrency, only channel and
		// scheduler overhead. Event order is schedule-independent by
		// construction (the (time, seq) band rule), so running the active
		// shards inline, in index order, yields byte-identical results.
		for i, e := range g.shards {
			if t, ok := e.PeekTime(); ok && t <= runTo {
				g.runShardInline(i, e, runTo)
			} else {
				g.Stalls++
			}
		}
		return
	}
	primary := false
	for i, e := range g.shards {
		t, ok := e.PeekTime()
		if !ok || t > runTo {
			g.Stalls++
			continue
		}
		if i == 0 {
			primary = true
			continue
		}
		g.ensureWorkers()
		g.wg.Add(1)
		g.work[i-1] <- runTo
	}
	if primary {
		g.shards[0].runLocalUntil(runTo)
	}
	g.wg.Wait()
	for i, p := range g.panics {
		if p != nil {
			g.panics[i] = nil
			panic(fmt.Sprintf("sim: shard %d: %v", i, p))
		}
	}
}

// runShardInline runs one shard's epoch window on the caller, attributing
// panics to the shard exactly like the worker path does.
func (g *Sharded) runShardInline(i int, e *Engine, runTo Time) {
	if i > 0 {
		defer func() {
			if p := recover(); p != nil {
				panic(fmt.Sprintf("sim: shard %d: %v", i, p))
			}
		}()
	}
	e.runLocalUntil(runTo)
}

// ensureWorkers spawns the parked per-shard worker goroutines (once per
// Run; they are reused across every epoch of the run and released when the
// run returns, so an idle Sharded pins no goroutines).
func (g *Sharded) ensureWorkers() {
	if g.workersUp {
		return
	}
	g.workersUp = true
	for i := 1; i < len(g.shards); i++ {
		ch := make(chan Time, 1)
		g.work[i-1] = ch
		go g.worker(i, ch)
	}
}

func (g *Sharded) stopWorkers() {
	if !g.workersUp {
		return
	}
	for _, ch := range g.work {
		close(ch)
	}
	g.workersUp = false
}

// worker is the parked epoch goroutine for one non-primary shard.
func (g *Sharded) worker(shard int, ch chan Time) {
	for runTo := range ch {
		func() {
			defer func() {
				if p := recover(); p != nil {
					g.panics[shard] = p
				}
				g.wg.Done()
			}()
			g.shards[shard].runLocalUntil(runTo)
		}()
	}
}

// deliverAll drains every mailbox into its destination engine: per
// destination, the pending messages are merged in (time, order) ascending
// order and filed with the order key as the event sequence. Runs
// single-threaded at the barrier; every slice it reads was last written
// before the previous epoch's WaitGroup completed.
func (g *Sharded) deliverAll() {
	n := len(g.shards)
	buf := g.batch[:0]
	for dst := 0; dst < n; dst++ {
		buf = buf[:0]
		for src := 0; src < n; src++ {
			mb := &g.mail[src*n+dst]
			if len(mb.msgs) == 0 {
				continue
			}
			buf = append(buf, mb.msgs...)
			clear(mb.msgs)
			mb.msgs = mb.msgs[:0]
		}
		if len(buf) == 0 {
			continue
		}
		slices.SortStableFunc(buf, func(a, b message) int {
			switch {
			case a.at != b.at:
				if a.at < b.at {
					return -1
				}
				return 1
			case a.order != b.order:
				if a.order < b.order {
					return -1
				}
				return 1
			}
			return 0
		})
		e := g.shards[dst]
		for i := range buf {
			if i > 0 && buf[i].at == buf[i-1].at && buf[i].order == buf[i-1].order {
				panic(fmt.Sprintf("sim: duplicate cross-shard (time, order) key (%v, %#x) to shard %d: order keys must be unique per destination and time", buf[i].at, buf[i].order, dst))
			}
			e.scheduleMail(&buf[i])
		}
		clear(buf)
	}
	g.batch = buf[:0]
}
