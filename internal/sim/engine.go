// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine is the substrate for every other subsystem in this repository:
// the packet-level fabric, the verbs transport layer, the collective
// protocol state machines, and the DPA execution model all advance virtual
// time exclusively through events scheduled here.
//
// The engine is intentionally single-threaded: determinism (same seed, same
// schedule, same results, bit for bit) is worth far more to a reproduction
// study than intra-simulation parallelism. Benchmarks that need wall-clock
// parallelism run many independent Engine instances concurrently.
//
// # Scheduler
//
// Events are ordered by (time, insertion sequence): ties fire FIFO with
// respect to scheduling order, and that order is the determinism contract
// every golden value in this repository depends on. Internally the queue is
// a hybrid: a bucketed near-future calendar ("ladder") covering a sliding
// window ahead of the clock, backed by a binary heap for far-future events
// (retransmission timers, cutoff timers, scenario schedules). Insertion
// into the window is O(1); each bucket is sorted once when the clock
// reaches it. The pop order is exactly the (at, seq) order a single binary
// heap would produce — engine_test.go checks this against a reference heap
// over randomized schedules.
//
// # Closure-free scheduling
//
// At/After take a func() and allocate one Event plus (at most call sites)
// one capturing closure per event. The hot paths — every packet hop, every
// signaled send, every per-round collective timer — instead use AtHandler/
// AfterHandler: a typed Handler interface plus packed arguments (a uint64,
// an int, and one pointer-shaped payload), no closure. Handler events are
// recycled through a free list once fired or cancelled, so steady-state
// hot-path scheduling does not allocate at all. Cancellation of handler
// events goes through the value-type Handle, which carries a generation
// number so a stale handle held across the event's recycling is a no-op.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"slices"
	"time"
)

// Time is virtual simulation time in nanoseconds. Using a dedicated type
// (rather than time.Duration) keeps virtual and wall-clock time from being
// confused at call sites.
type Time int64

// Common durations expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the latest representable virtual time.
const MaxTime Time = math.MaxInt64

// Duration converts a virtual time span to a time.Duration for reporting.
func (t Time) Duration() time.Duration { return time.Duration(int64(t)) }

// Seconds returns the virtual time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the virtual time as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string { return t.Duration().String() }

// Calendar-queue geometry: 256 buckets of 512 ns cover a 128 µs window
// ahead of the clock. Packet-scale events (serialization ~170 ns, hop
// latency 250 ns) land a few buckets out; RC retransmission timeouts
// (200 µs+) and scenario schedules overflow to the far-future heap.
const (
	bucketShift = 9 // log2(bucket width in ns)
	bucketWidth = Time(1) << bucketShift
	numBuckets  = 256
	windowSpan  = Time(numBuckets) << bucketShift
)

// Event locations within the hybrid queue.
const (
	locNone   int8 = iota // not queued (fired, cancelled-and-removed, or free)
	locBucket             // in a (possibly unsorted) calendar bucket
	locCur                // in the open bucket's insertion heap
	locFar                // in the far-future binary heap
)

// Handler is the closure-free event callback: one OnEvent call per fired
// event, with the arguments packed at scheduling time. ev identifies the
// firing event (it equals the Handle returned by AtHandler, letting a
// handler that tracks its pending events find the entry without a wrapper
// closure); obj carries one pointer-shaped payload (a *Packet, a *QP — a
// pointer, so boxing it does not allocate) and may be nil.
//
// Handler events are pooled: the engine recycles the Event before OnEvent
// runs, so implementations must not retain ev past the call.
type Handler interface {
	OnEvent(e *Engine, ev Handle, arg0 uint64, arg1 int, obj any)
}

// Event is a scheduled callback. Events are ordered by time; ties are broken
// by insertion sequence so the execution order of simultaneous events is
// deterministic and FIFO with respect to scheduling order.
type Event struct {
	at    Time
	seq   uint64
	gen   uint64 // bumped each time a pooled event is recycled
	index int    // heap index while in far/cur heaps; -1 otherwise
	where int8
	// pooled marks events born on the handler path: no *Event pointer ever
	// escapes for them, so they are safe to recycle. Closure events hand
	// their pointer to the caller (for Cancel/Canceled/Fired) and are never
	// reused.
	pooled   bool
	canceled bool
	fired    bool
	eng      *Engine
	fn       func()
	h        Handler
	arg0     uint64
	arg1     int
	obj      any
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() Time { return e.at }

// Cancel prevents a pending event from firing. The event leaves the live
// count immediately and its callback is released at once (so a cancelled
// long-lived timer does not pin its closure); far-future events are also
// removed from the heap immediately, while near-future bucket entries are
// reclaimed when the clock reaches their bucket. Cancelling an event that
// has already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.canceled || e.fired || e.where == locNone {
		return
	}
	e.canceled = true
	e.fn = nil
	e.h = nil
	e.obj = nil
	eng := e.eng
	eng.live--
	switch e.where {
	case locFar:
		heap.Remove(&eng.far, e.index)
		e.where = locNone
		eng.release(e)
	case locCur:
		heap.Remove(&eng.cur, e.index)
		eng.nearCount--
		e.where = locNone
		eng.release(e)
	case locBucket:
		// Left in place; the bucket sweep recycles it.
	}
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e.fired }

// Handle is a value-type reference to a scheduled handler event. The zero
// Handle is inert. Because handler events are recycled, the handle carries
// the generation it was issued under: cancelling a handle whose event has
// since fired and been reused is a safe no-op, which is exactly the
// semantics a retransmission timer racing its own ack needs.
type Handle struct {
	ev  *Event
	gen uint64
}

// Cancel cancels the referenced event if it is still the same incarnation
// and still pending; otherwise it does nothing.
func (h Handle) Cancel() {
	if h.ev != nil && h.ev.gen == h.gen {
		h.ev.Cancel()
	}
}

// Active reports whether the referenced event is still pending.
func (h Handle) Active() bool {
	return h.ev != nil && h.ev.gen == h.gen && !h.ev.canceled && !h.ev.fired
}

// Time returns the firing time of the referenced event, or -1 if the handle
// is stale (fired, cancelled and recycled, or zero).
func (h Handle) Time() Time {
	if h.ev == nil || h.ev.gen != h.gen {
		return -1
	}
	return h.ev.at
}

// eventHeap orders events by (at, seq); used for the far-future overflow
// and for insertions into the already-open bucket.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// before reports whether a fires before b under the engine's total order.
func before(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a discrete-event simulator instance. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	rng     *RNG
	stopped bool

	// Sharded-group membership (nil/0 for a standalone serial engine).
	// group links the engine to its conservative-parallel group, shard is
	// its index there, and sentFlag records that the current run slice
	// performed a cross-shard Send (the group's degenerate single-shard
	// fast path must yield back to the epoch loop at that point).
	group    *Sharded
	shard    int
	sentFlag bool

	// Near-future calendar: buckets of bucketWidth ns covering
	// [base, base+windowSpan). cursor is the bucket being (or next to be)
	// consumed; when opened, buckets[cursor][pos:] is the sorted remainder
	// and cur holds events inserted into the open bucket after sorting.
	base      Time
	cursor    int
	opened    bool
	pos       int
	buckets   [numBuckets][]*Event
	cur       eventHeap
	nearCount int // events physically held in buckets + cur (incl. cancelled)

	// Far-future overflow: everything at or beyond base+windowSpan.
	far eventHeap

	live int // scheduled, not yet fired, not cancelled

	free []*Event // recycled handler events

	// Throughput counters, exported so harnesses can surface engine
	// throughput in their Records (all three are deterministic counts).
	//
	// Executed counts events that have fired, for diagnostics and for
	// guarding against runaway simulations in tests. Scheduled counts every
	// At/After/AtHandler/AfterHandler call. Recycled counts handler events
	// served from the free list instead of the heap allocator.
	Executed  uint64
	Scheduled uint64
	Recycled  uint64

	// MailSent counts cross-shard Send calls issued by this engine. Like
	// the counters above it is a deterministic count, never a rate.
	MailSent uint64

	// lastFired is the firing time of the most recent executed event. The
	// clock itself can overshoot it — RunUntil (and the sharded epoch
	// slices built on it) advance now to the slice deadline when the queue
	// runs dry — so the group's Run uses lastFired to settle every shard
	// on the time of the globally last event, the value the serial engine
	// would have ended at regardless of shard count.
	lastFired Time

	// splits records the child generators handed out by SplitRNG, in
	// creation order, so Reseed can replay the derivations and leave every
	// child in exactly the state a cold construction with the new seed
	// would have produced.
	splits []*RNG

	// EventHook, when non-nil, observes every fired event just before its
	// callback runs: the firing time, its (possibly banded) sequence key,
	// and the handler (nil for closure events). It exists for the replay
	// debugger's step mode; the nil check is the only cost on the hot path.
	EventHook func(at Time, seq uint64, h Handler)
}

// localSeqBand is the first sequence number handed to locally-scheduled
// events. Sequence numbers below the band are reserved for cross-shard
// mailbox deliveries, whose seq is the sender-supplied order key: at equal
// firing times, every cross-shard event fires before every locally
// scheduled one, and cross-shard events fire in ascending order-key order.
// That rule is a pure function of (time, order) — independent of shard
// count and of epoch-barrier placement — and is what makes sharded
// execution reproduce the same bytes at any shard count. For a standalone
// serial engine the band is invisible: all events live in the local band
// and the (at, seq) order is exactly the pre-band order.
const localSeqBand = uint64(1) << 63

// NewEngine returns an engine with virtual time 0 and a deterministic RNG
// seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed), seq: localSeqBand}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// SplitRNG derives a child generator from the engine's root RNG and records
// it, so Snapshot captures its state and Reseed can re-derive it. Model
// layers that seed themselves from the engine at construction (the fabric's
// drop/jitter stream) must use this instead of RNG().Split() to stay
// snapshot- and reseed-coherent.
func (e *Engine) SplitRNG() *RNG {
	r := e.rng.Split()
	e.splits = append(e.splits, r)
	return r
}

// Reseed rewinds the engine's RNG tree to the state a cold NewEngine(seed)
// construction would have: the root is reseeded and every SplitRNG child is
// re-derived in its original creation order. It is only sound while the
// root stream has been consumed exclusively by SplitRNG since construction
// — true for every model layer in this repository, where runtime draws come
// from the children — and exists so a warm-forked instance can adopt a new
// sweep point's seed exactly as if it had been built cold with it.
func (e *Engine) Reseed(seed uint64) {
	e.rng.SetState(NewRNG(seed).State())
	for _, child := range e.splits {
		child.SetState(e.rng.Split().State())
	}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: that is always a protocol-logic bug, and silently clamping would
// mask it.
//
// The returned *Event stays valid for Cancel/Canceled/Fired indefinitely
// (closure events are never recycled); hot paths that do not need to hold
// the event should prefer AtHandler, which pools.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, eng: e, fn: fn, index: -1}
	e.seq++
	e.schedule(ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// AtHandler schedules h.OnEvent(e, handle, arg0, arg1, obj) at absolute
// virtual time t. The event is drawn from the engine's free list and
// recycled after firing or cancellation, and no closure is involved: the
// closure-free hot path. obj must be pointer-shaped (or nil) to stay
// allocation-free.
func (e *Engine) AtHandler(t Time, h Handler, arg0 uint64, arg1 int, obj any) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.get()
	ev.at = t
	ev.seq = e.seq
	e.seq++
	ev.h = h
	ev.arg0 = arg0
	ev.arg1 = arg1
	ev.obj = obj
	e.schedule(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// AtOrdered schedules h.OnEvent like AtHandler but with a caller-chosen
// sequence key from the reserved low band instead of the engine's own
// counter — the local twin of Engine.Send. A subsystem whose same-time
// event order must be a pure function of (time, order) uses Send when the
// destination state lives on another shard and AtOrdered when it is local
// (including the shards=1 case, where everything is), so the firing order
// at equal times is identical at every shard count. Keys must be unique
// per (engine, time): the calendar's bucket sort is unstable on equal
// (time, seq), so a colliding key surrenders the determinism the band
// exists to provide.
func (e *Engine) AtOrdered(t Time, order uint64, h Handler, arg0 uint64, arg1 int, obj any) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling ordered event at %v before now %v", t, e.now))
	}
	if order >= localSeqBand {
		panic(fmt.Sprintf("sim: AtOrdered key %#x intrudes on the local sequence band", order))
	}
	ev := e.get()
	ev.at = t
	ev.seq = order
	ev.h = h
	ev.arg0 = arg0
	ev.arg1 = arg1
	ev.obj = obj
	e.schedule(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// AfterHandler schedules h.OnEvent d nanoseconds from now; see AtHandler.
func (e *Engine) AfterHandler(d Time, h Handler, arg0 uint64, arg1 int, obj any) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.AtHandler(e.now+d, h, arg0, arg1, obj)
}

// get pops a recycled event or allocates a fresh pooled one.
func (e *Engine) get() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.Recycled++
		return ev
	}
	return &Event{eng: e, pooled: true, index: -1}
}

// release returns a pooled event to the free list, bumping its generation
// so outstanding Handles go stale. Closure events only drop their callback:
// their *Event may still be held by the caller, so flags (and the pointer
// identity) must survive.
func (e *Engine) release(ev *Event) {
	if !ev.pooled {
		ev.fn = nil
		return
	}
	ev.gen++
	ev.fn = nil
	ev.h = nil
	ev.obj = nil
	ev.arg0, ev.arg1 = 0, 0
	ev.canceled, ev.fired = false, false
	ev.where = locNone
	ev.index = -1
	e.free = append(e.free, ev)
}

// schedule files the event into the hybrid queue.
func (e *Engine) schedule(ev *Event) {
	e.Scheduled++
	e.live++
	delta := ev.at - e.base
	if delta < 0 {
		// The window was jumped ahead of the clock (RunUntil past a queue
		// gap, then a schedule before the far-future frontier). Rebase the
		// whole calendar onto this event's time; rare, O(near events).
		e.rebase(ev.at)
		delta = 0
	}
	if delta < windowSpan {
		idx := int(delta >> bucketShift)
		if idx == e.cursor && e.opened {
			ev.where = locCur
			heap.Push(&e.cur, ev)
			e.nearCount++
			return
		}
		if idx < e.cursor {
			// An earlier-in-window insertion (possible after RunUntil
			// advanced the clock past empty buckets): step the cursor back.
			e.closeOpen()
			e.cursor = idx
		}
		ev.where = locBucket
		e.buckets[idx] = append(e.buckets[idx], ev)
		e.nearCount++
		return
	}
	ev.where = locFar
	heap.Push(&e.far, ev)
}

// closeOpen folds an open bucket back into unsorted state: the unconsumed
// sorted remainder and any open-bucket insertions are merged back into the
// bucket slice so a later openBucket re-sorts the union.
func (e *Engine) closeOpen() {
	if !e.opened {
		return
	}
	b := e.buckets[e.cursor]
	n := copy(b, b[e.pos:])
	for i := n; i < len(b); i++ {
		b[i] = nil
	}
	b = b[:n]
	for len(e.cur) > 0 {
		ev := heap.Pop(&e.cur).(*Event)
		ev.where = locBucket
		b = append(b, ev)
	}
	e.buckets[e.cursor] = b
	e.pos = 0
	e.opened = false
}

// rebase moves every near-future event to the far heap and restarts the
// window at t. Only schedule() calls it, for times below the current base.
func (e *Engine) rebase(t Time) {
	e.closeOpen()
	for i := range e.buckets {
		for _, ev := range e.buckets[i] {
			ev.where = locFar
			heap.Push(&e.far, ev)
		}
		e.buckets[i] = e.buckets[i][:0]
	}
	e.nearCount = 0
	e.base = t
	e.cursor = 0
	e.refill()
}

// refill drains far-future events that now fall inside the window into
// their buckets. Callers reset cursor before refilling.
func (e *Engine) refill() {
	for len(e.far) > 0 && e.far[0].at-e.base < windowSpan {
		ev := heap.Pop(&e.far).(*Event)
		ev.where = locBucket
		idx := int((ev.at - e.base) >> bucketShift)
		e.buckets[idx] = append(e.buckets[idx], ev)
		e.nearCount++
	}
}

// openBucket sorts the cursor's bucket by (at, seq) and starts consuming it.
// slices.SortFunc rather than sort.Slice: no reflection, no per-call
// allocation, and (at, seq) keys are unique so instability cannot matter.
func (e *Engine) openBucket() {
	slices.SortFunc(e.buckets[e.cursor], func(a, b *Event) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
	e.pos = 0
	e.opened = true
}

// advance moves the cursor to the next non-empty bucket, wrapping the
// window (and refilling from the far heap) as needed. Precondition: the
// current bucket is closed and at least one event is queued somewhere.
func (e *Engine) advance() {
	if e.nearCount == 0 {
		// Nothing inside the window: jump it to the far-future frontier
		// instead of sliding one span at a time toward a distant timer.
		e.base = e.far[0].at
		e.cursor = 0
		e.refill()
	}
	for len(e.buckets[e.cursor]) == 0 {
		e.cursor++
		if e.cursor == numBuckets {
			e.base += windowSpan
			e.cursor = 0
			e.refill()
		}
	}
	e.openBucket()
}

// peekEvent returns the next live event without consuming it (nil when the
// queue is empty), pruning cancelled bucket entries as it goes.
func (e *Engine) peekEvent() *Event {
	for {
		if !e.opened {
			if e.nearCount == 0 && len(e.far) == 0 {
				return nil
			}
			e.advance()
		}
		b := e.buckets[e.cursor]
		for e.pos < len(b) && b[e.pos].canceled {
			ev := b[e.pos]
			b[e.pos] = nil
			e.pos++
			e.nearCount--
			ev.where = locNone
			e.release(ev)
		}
		// No cancelled-entry sweep for e.cur: Cancel heap.Removes open-bucket
		// entries eagerly, so its root is always live.
		var next *Event
		if e.pos < len(b) {
			next = b[e.pos]
		}
		if len(e.cur) > 0 && (next == nil || before(e.cur[0], next)) {
			next = e.cur[0]
		}
		if next != nil {
			return next
		}
		// Open bucket exhausted: recycle its slice; the next iteration's
		// advance() finds the following non-empty bucket.
		e.buckets[e.cursor] = b[:0]
		e.pos = 0
		e.opened = false
	}
}

// popEvent consumes and returns the next live event, or nil.
func (e *Engine) popEvent() *Event {
	ev := e.peekEvent()
	if ev == nil {
		return nil
	}
	if ev.where == locCur {
		heap.Pop(&e.cur)
	} else {
		e.buckets[e.cursor][e.pos] = nil
		e.pos++
	}
	e.nearCount--
	ev.where = locNone
	return ev
}

// Pending returns the number of events still queued. Cancelled events leave
// the count at Cancel time.
func (e *Engine) Pending() int { return e.live }

// PeekTime returns the firing time of the next live event. ok is false when
// the queue is empty. Peeking may slide the calendar window but never
// consumes or reorders events.
func (e *Engine) PeekTime() (t Time, ok bool) {
	ev := e.peekEvent()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// PoolSize returns the number of events currently parked on the free list
// (diagnostics for allocation tests).
func (e *Engine) PoolSize() int { return len(e.free) }

// Stop makes the current Run/RunUntil call return after the in-flight event
// completes.
func (e *Engine) Stop() { e.stopped = true }

// step fires the next event. It returns false when the queue is empty.
func (e *Engine) step() bool {
	ev := e.popEvent()
	if ev == nil {
		return false
	}
	if ev.at < e.now {
		panic("sim: event queue time went backwards")
	}
	e.now = ev.at
	e.lastFired = ev.at
	e.Executed++
	e.live--
	ev.fired = true
	if e.EventHook != nil {
		e.EventHook(ev.at, ev.seq, ev.h)
	}
	if ev.fn != nil {
		fn := ev.fn
		// Release the closure before running it: a caller holding the
		// *Event for Cancel must not pin the capture past the firing.
		ev.fn = nil
		fn()
		return true
	}
	h, a0, a1, obj := ev.h, ev.arg0, ev.arg1, ev.obj
	hd := Handle{ev: ev, gen: ev.gen}
	// Recycle before dispatch so the handler's own scheduling reuses this
	// very event; hd stays distinguishable through its generation.
	e.release(ev)
	h.OnEvent(e, hd, a0, a1, obj)
	return true
}

// Step fires exactly one event on a standalone serial engine and reports
// whether one was pending. It is the replay debugger's single-step
// primitive; driving a sharded group one event at a time is not meaningful
// (epoch windows batch events), so Step panics on a group member.
func (e *Engine) Step() bool {
	if e.group != nil {
		panic("sim: Step on a Sharded group member; single-stepping is serial-only")
	}
	return e.step()
}

// Run executes events until the queue is empty or Stop is called. It returns
// the final virtual time.
//
// On the primary shard of a Sharded group, Run drives the whole group's
// conservative epoch loop (all shards, all mailboxes); on a standalone
// engine it is the plain serial loop. Calling Run on a non-primary shard
// panics: only the group may advance member shards.
func (e *Engine) Run() Time {
	if g := e.group; g != nil {
		e.assertPrimary("Run")
		return g.Run()
	}
	e.stopped = false
	e.runLocal()
	return e.now
}

// RunUntil executes events with firing time <= deadline. Events scheduled
// beyond the deadline remain queued. The clock is advanced to the deadline
// if the simulation ran dry before reaching it, which keeps successive
// RunUntil calls monotonic. Like Run, it drives the whole group when called
// on the primary shard of a Sharded group.
func (e *Engine) RunUntil(deadline Time) Time {
	if g := e.group; g != nil {
		e.assertPrimary("RunUntil")
		return g.RunUntil(deadline)
	}
	e.stopped = false
	e.runLocalUntil(deadline)
	return e.now
}

// RunFor advances the simulation by d nanoseconds of virtual time.
func (e *Engine) RunFor(d Time) Time { return e.RunUntil(e.now + d) }

// runLocal is the serial event loop over this engine's own queue, without
// group delegation or stop-flag reset; Run and the sharded epoch machinery
// share it.
func (e *Engine) runLocal() {
	for !e.stopped && e.step() {
	}
}

// runLocalUntil executes local events with firing time <= deadline and
// advances the clock to the deadline if the queue ran dry first. It is the
// body of RunUntil and the per-shard epoch slice of the sharded loop.
func (e *Engine) runLocalUntil(deadline Time) {
	for !e.stopped {
		next := e.peekEvent()
		if next == nil || next.at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// runLocalUntilSend executes local events with firing time <= deadline,
// yielding as soon as one of them performs a cross-shard Send. It backs the
// sharded group's degenerate fast path: while only one shard holds events
// and every mailbox is empty, that shard may run at full serial speed — no
// epoch windows, no barriers — because nothing outside it can schedule
// into it. The first Send re-creates cross-shard causality, so the loop
// stops there (events after the sending one stay queued) and hands control
// back to the conservative epoch loop. The clock is deliberately NOT
// advanced to the deadline on a send-yield.
func (e *Engine) runLocalUntilSend(deadline Time) {
	e.sentFlag = false
	for !e.stopped && !e.sentFlag {
		next := e.peekEvent()
		if next == nil || next.at > deadline {
			// MaxTime means "no deadline" (a group Run): leave the clock
			// at the last fired event, exactly like serial Run.
			if deadline < MaxTime && e.now < deadline {
				e.now = deadline
			}
			return
		}
		e.step()
	}
}
