// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine is the substrate for every other subsystem in this repository:
// the packet-level fabric, the verbs transport layer, the collective
// protocol state machines, and the DPA execution model all advance virtual
// time exclusively through events scheduled here.
//
// The engine is intentionally single-threaded: determinism (same seed, same
// schedule, same results, bit for bit) is worth far more to a reproduction
// study than intra-simulation parallelism. Benchmarks that need wall-clock
// parallelism run many independent Engine instances concurrently.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is virtual simulation time in nanoseconds. Using a dedicated type
// (rather than time.Duration) keeps virtual and wall-clock time from being
// confused at call sites.
type Time int64

// Common durations expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the latest representable virtual time.
const MaxTime Time = math.MaxInt64

// Duration converts a virtual time span to a time.Duration for reporting.
func (t Time) Duration() time.Duration { return time.Duration(int64(t)) }

// Seconds returns the virtual time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the virtual time as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string { return t.Duration().String() }

// Event is a scheduled callback. Events are ordered by time; ties are broken
// by insertion sequence so the execution order of simultaneous events is
// deterministic and FIFO with respect to scheduling order.
type Event struct {
	at       Time
	seq      uint64
	index    int // heap index; -1 once popped or cancelled
	eng      *Engine
	fn       func()
	canceled bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() Time { return e.at }

// Cancel prevents a pending event from firing and removes it from the
// engine's queue immediately, so long-lived timers (cutoff, retransmit)
// that are cancelled and re-armed do not accumulate as dead heap entries
// until their original firing time. Cancelling an event that has already
// fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() {
	e.canceled = true
	if e.index >= 0 && e.eng != nil {
		heap.Remove(&e.eng.queue, e.index)
		e.fn = nil // release the closure
	}
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator instance. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	rng     *RNG
	stopped bool

	// Executed counts events that have fired, for diagnostics and for
	// guarding against runaway simulations in tests.
	Executed uint64
}

// NewEngine returns an engine with virtual time 0 and a deterministic RNG
// seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: that is always a protocol-logic bug, and silently clamping would
// mask it.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, eng: e, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Pending returns the number of events still queued. Cancelled events are
// removed from the queue at Cancel time and do not count.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes the current Run/RunUntil call return after the in-flight event
// completes.
func (e *Engine) Stop() { e.stopped = true }

// step fires the next event. It returns false when the queue is empty.
func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = ev.at
		e.Executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.step() {
	}
	return e.now
}

// RunUntil executes events with firing time <= deadline. Events scheduled
// beyond the deadline remain queued. The clock is advanced to the deadline
// if the simulation ran dry before reaching it, which keeps successive
// RunUntil calls monotonic.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		// Peek: the heap root is the earliest event.
		if e.queue[0].at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// RunFor advances the simulation by d nanoseconds of virtual time.
func (e *Engine) RunFor(d Time) Time { return e.RunUntil(e.now + d) }
