package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("new engine Now() = %v, want 0", e.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(42, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of scheduling order: pos %d got %d", i, v)
		}
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.After(5*Microsecond, func() { at = e.Now() })
	e.Run()
	if at != 5*Microsecond {
		t.Fatalf("event fired at %v, want 5µs", at)
	}
	if e.Now() != 5*Microsecond {
		t.Fatalf("final time %v, want 5µs", e.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.At(10, func() {
		times = append(times, e.Now())
		e.After(15, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 25 {
		t.Fatalf("times = %v, want [10 25]", times)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelRemovesFromQueue(t *testing.T) {
	e := NewEngine(1)
	// Interleave keepers and victims so removal has to fix up the heap
	// interior, not just the root or tail.
	var victims []*Event
	for i := 0; i < 10; i++ {
		at := Time(10 + 10*i)
		if i%2 == 0 {
			victims = append(victims, e.At(at, func() { t.Errorf("cancelled event at %v fired", at) }))
		} else {
			e.At(at, func() {})
		}
	}
	if got := e.Pending(); got != 10 {
		t.Fatalf("Pending = %d before cancel, want 10", got)
	}
	for i, ev := range victims {
		ev.Cancel()
		if got, want := e.Pending(), 10-(i+1); got != want {
			t.Fatalf("Pending = %d after cancelling %d events, want %d (cancel must remove immediately)", got, i+1, want)
		}
	}
	// Double-cancel and post-run cancel stay no-ops.
	victims[0].Cancel()
	if got := e.Pending(); got != 5 {
		t.Fatalf("Pending = %d after double cancel, want 5", got)
	}
	e.Run()
	if e.Executed != 5 {
		t.Fatalf("Executed = %d, want the 5 surviving events", e.Executed)
	}
	victims[1].Cancel()
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(20, func() { fired = true })
	e.At(10, func() { ev.Cancel() })
	e.Run()
	if fired {
		t.Fatal("event cancelled at t=10 still fired at t=20")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %v after RunUntil(25)", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events did not fire: %v", fired)
	}
}

func TestRunUntilAdvancesClockWhenIdle(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", e.Now())
	}
	// Monotonic across successive calls.
	e.RunUntil(50)
	if e.Now() != 100 {
		t.Fatalf("RunUntil moved the clock backwards to %v", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.At(10, func() { count++; e.Stop() })
	e.At(20, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("Stop did not halt the run: count = %d", count)
	}
	e.Run() // resumes
	if count != 2 {
		t.Fatalf("second Run did not resume: count = %d", count)
	}
}

func TestExecutedCounter(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Executed != 7 {
		t.Fatalf("Executed = %d, want 7", e.Executed)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Time {
		e := NewEngine(12345)
		var fired []Time
		var schedule func()
		n := 0
		schedule = func() {
			if n >= 50 {
				return
			}
			n++
			d := Time(e.RNG().Intn(1000) + 1)
			e.After(d, func() {
				fired = append(fired, e.Now())
				schedule()
			})
		}
		schedule()
		e.Run()
		return fired
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if (2 * Second).Seconds() != 2.0 {
		t.Errorf("Seconds() = %v", (2 * Second).Seconds())
	}
	if (3 * Microsecond).Micros() != 3.0 {
		t.Errorf("Micros() = %v", (3 * Microsecond).Micros())
	}
	if Millisecond.Duration().Milliseconds() != 1 {
		t.Errorf("Duration() = %v", Millisecond.Duration())
	}
}

// Property: events always fire in non-decreasing time order regardless of
// the scheduling pattern.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(delays []uint16, seed uint64) bool {
		e := NewEngine(seed)
		var fired []Time
		for _, d := range delays {
			e.After(Time(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGBernoulliExtremes(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestRNGBernoulliRate(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.23 || rate > 0.27 {
		t.Fatalf("Bernoulli(0.25) empirical rate %v", rate)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%64) + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(42)
	child := parent.Split()
	// The child stream must not be identical to the parent's continuation.
	same := true
	for i := 0; i < 16; i++ {
		if parent.Uint64() != child.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Split produced a correlated stream")
	}
}
