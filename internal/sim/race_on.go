//go:build race

package sim

// raceEnabled reports whether the race detector is compiled in. The epoch
// loop uses it to keep the real worker goroutines even on GOMAXPROCS=1, so
// `go test -race` always exercises the concurrent barrier structure.
const raceEnabled = true
