package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// pholdTopo is a PHOLD-style ownership-disciplined model: H hosts, each
// processing a stream of events; every event schedules exactly one
// successor, either on its own host (local AfterHandler) or on a
// pseudo-randomly chosen peer (cross-shard Send with a (host, counter)
// order key). Per-host digests fold in the firing time and payload of
// every event, so any divergence in per-host event order or timing across
// shard counts changes the digest.
type pholdTopo struct {
	grp     *Sharded
	hosts   []*pholdHost
	shardOf []int
}

type pholdHost struct {
	topo      *pholdTopo
	id        int
	eng       *Engine
	state     uint64
	ctr       uint64
	remaining int

	count  uint64
	digest uint64
	lastAt Time
}

// Lookahead is large relative to the 0..4µs local delays so that each
// epoch carries a healthy batch of local events per shard — the regime
// conservative synchronization is designed for.
const pholdLookahead = 16 * Microsecond

func newPhold(seed uint64, hosts, shards, eventsPerHost int) *pholdTopo {
	g := NewSharded(seed, shards, pholdLookahead)
	t := &pholdTopo{grp: g, shardOf: make([]int, hosts)}
	for i := 0; i < hosts; i++ {
		sh := i * shards / hosts // contiguous blocks, like fabric.PartitionHosts
		t.shardOf[i] = sh
		t.hosts = append(t.hosts, &pholdHost{
			topo: t, id: i, eng: g.Shard(sh),
			state: uint64(i)*0x9E3779B97F4A7C15 + seed, remaining: eventsPerHost,
		})
	}
	for _, h := range t.hosts {
		// Kick off one token per host via the uniform cross-shard path so
		// the initial order is shard-count-invariant by construction.
		h.eng.Send(t.shardOf[h.id], pholdLookahead, uint64(h.id)<<32, h, uint64(h.id), 0, nil)
	}
	return t
}

func (h *pholdHost) OnEvent(e *Engine, _ Handle, arg0 uint64, _ int, _ any) {
	now := e.Now()
	h.count++
	h.lastAt = now
	h.digest = Splitmix64(h.digest ^ arg0 ^ uint64(now) ^ h.count)
	if h.remaining == 0 {
		return
	}
	h.remaining--
	h.state = h.state*6364136223846793005 + 1442695040888963407
	delay := Time(h.state >> 52) // 0..4095 ns
	if h.state&7 == 0 {
		dst := h.topo.hosts[(h.state>>16)%uint64(len(h.topo.hosts))]
		h.ctr++
		order := uint64(h.id)<<32 | h.ctr
		e.Send(h.topo.shardOf[dst.id], now+pholdLookahead+delay, order, dst, order, 0, nil)
		return
	}
	e.AfterHandler(delay, h, arg0+1, 0, nil)
}

type pholdResult struct {
	final  Time
	events uint64
	hosts  []pholdHost // value copies: count/digest/lastAt
}

func runPhold(seed uint64, hosts, shards, eventsPerHost int) pholdResult {
	t := newPhold(seed, hosts, shards, eventsPerHost)
	final := t.grp.Run()
	r := pholdResult{final: final, events: t.grp.ExecutedTotal()}
	for _, h := range t.hosts {
		r.hosts = append(r.hosts, pholdHost{count: h.count, digest: h.digest, lastAt: h.lastAt})
	}
	return r
}

func comparePhold(t *testing.T, want, got pholdResult, label string) {
	t.Helper()
	if got.final != want.final || got.events != want.events {
		t.Fatalf("%s: final=%v events=%d, want final=%v events=%d",
			label, got.final, got.events, want.final, want.events)
	}
	for i := range want.hosts {
		w, g := want.hosts[i], got.hosts[i]
		if w.count != g.count || w.digest != g.digest || w.lastAt != g.lastAt {
			t.Fatalf("%s: host %d diverged: count %d/%d digest %#x/%#x lastAt %v/%v",
				label, i, g.count, w.count, g.digest, w.digest, g.lastAt, w.lastAt)
		}
	}
}

// TestShardedShardCountInvariance is the core determinism claim: the same
// ownership-disciplined model produces identical per-host event counts,
// digests and times at every shard count, serial included.
func TestShardedShardCountInvariance(t *testing.T) {
	const hosts, events = 16, 1500
	want := runPhold(7, hosts, 1, events)
	// Tokens die when they land on an exhausted host, so the total is below
	// hosts*events; just guard against a degenerate tiny run.
	if want.events < uint64(hosts*events)/2 {
		t.Fatalf("model too small: %d events", want.events)
	}
	for _, shards := range []int{2, 3, 4, 8, 16} {
		comparePhold(t, want, runPhold(7, hosts, shards, events), fmt.Sprintf("shards=%d", shards))
	}
}

// TestShardedRunUntilResume checks that chunked driving (RunUntil slices,
// then Run) reproduces the one-shot run at any shard count.
func TestShardedRunUntilResume(t *testing.T) {
	const hosts, events = 8, 400
	want := runPhold(3, hosts, 1, events)
	for _, shards := range []int{1, 4} {
		topo := newPhold(3, hosts, shards, events)
		for i := 0; i < 5; i++ {
			topo.grp.RunFor(50 * Microsecond)
		}
		final := topo.grp.Run()
		got := pholdResult{final: final, events: topo.grp.ExecutedTotal()}
		for _, h := range topo.hosts {
			got.hosts = append(got.hosts, pholdHost{count: h.count, digest: h.digest, lastAt: h.lastAt})
		}
		// RunUntil advances clocks monotonically, so the final time of the
		// chunked run can exceed the last event; compare per-host state.
		got.final = want.final
		comparePhold(t, want, got, fmt.Sprintf("resumed shards=%d", shards))
	}
}

// TestShardedEpochLoopRace drives a heavily communicating model across 8
// shards; under -race this exercises the worker barriers and mailbox
// handoffs for unsynchronized access.
func TestShardedEpochLoopRace(t *testing.T) {
	want := runPhold(11, 32, 1, 300)
	comparePhold(t, want, runPhold(11, 32, 8, 300), "shards=8")
}

// --- mailbox merge property -------------------------------------------------

// recorder appends every (time, order) it sees, in firing order.
type recorder struct {
	seq [][2]uint64
}

func (r *recorder) OnEvent(e *Engine, _ Handle, arg0 uint64, _ int, _ any) {
	r.seq = append(r.seq, [2]uint64{uint64(e.Now()), arg0})
}

// sprayer issues a deterministic pre-generated schedule of cross-shard
// sends toward the recorder's shard, re-arming itself each step.
type sprayer struct {
	rec      *recorder
	recShard int
	msgs     []message // at is an offset from the send time
	step     Time
}

func (s *sprayer) OnEvent(e *Engine, _ Handle, _ uint64, _ int, _ any) {
	if len(s.msgs) == 0 {
		return
	}
	m := s.msgs[0]
	s.msgs = s.msgs[1:]
	e.Send(s.recShard, e.Now()+m.at, m.order, s.rec, m.order, 0, nil)
	e.AfterHandler(s.step, s, 0, 0, nil)
}

// TestShardedMergeOrderProperty is the randomized merge test: two shards
// spray messages with random times and unique random-ish order keys at one
// recorder; the observed firing order must equal the reference serial heap
// order — all messages sorted by (time, order) — and must be identical
// when the same schedule runs single-sharded.
func TestShardedMergeOrderProperty(t *testing.T) {
	const perShard = 2000
	rng := rand.New(rand.NewSource(42))
	build := func(shards int) *recorder {
		rng := rand.New(rand.NewSource(99)) // same schedule for every shard count
		g := NewSharded(5, shards, Microsecond)
		rec := &recorder{}
		for sh := 0; sh < 2; sh++ {
			spr := &sprayer{rec: rec, recShard: 0, step: 500 * Nanosecond}
			for i := 0; i < perShard; i++ {
				spr.msgs = append(spr.msgs, message{
					at:    Microsecond + Time(rng.Intn(8000)),
					order: uint64(rng.Intn(1<<30))<<1 | uint64(sh), // unique across shards
				})
			}
			src := sh % shards
			g.Shard(src).Send(src, Microsecond, uint64(sh), spr, 0, 0, nil)
		}
		g.Run()
		return rec
	}
	got := build(2)
	if len(got.seq) != 2*perShard {
		t.Fatalf("recorded %d events, want %d", len(got.seq), 2*perShard)
	}
	// Reference: strict (time, order) order among same-time ties. Full
	// sorted-order equality across differing delivery barriers is checked
	// by the serial-vs-sharded comparison below; here assert the invariant
	// directly on ties, which the mailbox band must order by key.
	for i := 1; i < len(got.seq); i++ {
		a, b := got.seq[i-1], got.seq[i]
		if a[0] > b[0] {
			t.Fatalf("time went backwards at %d: %v after %v", i, b, a)
		}
		if a[0] == b[0] && a[1] >= b[1] {
			t.Fatalf("tie at t=%d fired out of order-key order: %#x then %#x", a[0], a[1], b[1])
		}
	}
	serial := build(1)
	if len(serial.seq) != len(got.seq) {
		t.Fatalf("serial recorded %d events, sharded %d", len(serial.seq), len(got.seq))
	}
	for i := range serial.seq {
		if serial.seq[i] != got.seq[i] {
			t.Fatalf("serial/sharded divergence at %d: %v vs %v", i, serial.seq[i], got.seq[i])
		}
	}
	_ = rng
}

// --- guard rails ------------------------------------------------------------

func expectPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		p := recover()
		if p == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		if s := fmt.Sprint(p); !contains(s, substr) {
			t.Fatalf("panic %q does not contain %q", s, substr)
		}
	}()
	fn()
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

type sendAt struct {
	dst   int
	delta Time
	order uint64
}

func (s *sendAt) OnEvent(e *Engine, _ Handle, _ uint64, _ int, _ any) {
	e.Send(s.dst, e.Now()+s.delta, s.order, s, 0, 0, nil)
}

// TestShardedLookaheadViolationPanics: admitting a cross-shard event inside
// the epoch window would be unsound, so Send must refuse it loudly — both
// on the primary shard and (propagated through the barrier) on a worker.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	g := NewSharded(1, 2, Microsecond)
	g.Shard(0).AtHandler(10, &sendAt{dst: 1, delta: Microsecond - 1, order: 1}, 0, 0, nil)
	expectPanic(t, "violates lookahead", func() { g.Run() })

	// Same violation raised on shard 1, mid-epoch, on a worker goroutine:
	// the barrier must surface it on the caller with shard attribution.
	g2 := NewSharded(1, 2, Microsecond)
	// Populate both shards so the epoch loop (not the degenerate path) runs.
	churn := &benchChurn{state: 9, remaining: 64}
	g2.Shard(0).AtHandler(5, churn, 0, 0, nil)
	g2.Shard(1).AtHandler(5, &sendAt{dst: 0, delta: 0, order: 2}, 0, 0, nil)
	expectPanic(t, "shard 1", func() { g2.Run() })
}

func TestShardedSendGuards(t *testing.T) {
	e := NewEngine(1)
	expectPanic(t, "not part of a Sharded group", func() {
		e.Send(0, Microsecond, 0, &benchChurn{}, 0, 0, nil)
	})
	g := NewSharded(1, 2, Microsecond)
	expectPanic(t, "Send to shard", func() {
		g.Shard(0).Send(5, Microsecond, 0, &benchChurn{}, 0, 0, nil)
	})
	expectPanic(t, "overflows the cross-shard band", func() {
		g.Shard(0).Send(1, Microsecond, 1<<63, &benchChurn{}, 0, 0, nil)
	})
	expectPanic(t, "only the primary shard", func() { g.Shard(1).Run() })
	expectPanic(t, "must be built on the primary shard", func() {
		AssertShardable(g.Shard(1), "test subsystem")
	})
	AssertShardable(g.Shard(0), "test subsystem") // primary: fine
	AssertShardable(e, "test subsystem")          // standalone: fine
}

// TestShardedDegeneratePath: a model confined to the primary shard runs
// through the serial fast path — identical results to a plain engine and
// zero epoch barriers, which is what keeps `-shards N` free for the
// (unpartitioned) full fabric stack.
func TestShardedDegeneratePath(t *testing.T) {
	run := func(e *Engine) (Time, uint64) {
		h := &benchChurn{state: 3, remaining: 4096}
		e.AfterHandler(1, h, 0, 0, nil)
		return e.Run(), e.Executed
	}
	wantT, wantN := run(NewEngine(21))
	g := NewSharded(21, 8, 250*Nanosecond)
	gotT, gotN := run(g.Shard(0)) // Engine.Run delegates to the group
	if gotT != wantT || gotN != wantN {
		t.Fatalf("sharded degenerate run diverged: t=%v n=%d, want t=%v n=%d", gotT, gotN, wantT, wantN)
	}
	if g.Epochs != 0 {
		t.Fatalf("confined model crossed %d epoch barriers, want 0", g.Epochs)
	}
	if g.MailedTotal() != 0 {
		t.Fatalf("confined model sent %d messages", g.MailedTotal())
	}
}

// TestShardedMailBeforeLocalTie pins the band rule: at equal firing times
// a delivered cross-shard event fires before a locally scheduled one.
func TestShardedMailBeforeLocalTie(t *testing.T) {
	g := NewSharded(1, 2, Microsecond)
	rec := &recorder{}
	const at = 4 * Microsecond
	// Local event on shard 0 at `at`, scheduled first (lowest local seq).
	g.Shard(0).AtHandler(at, rec, 0xAAAA, 0, nil)
	// Cross event from shard 1 to shard 0 at the same time. Shard 1 also
	// gets a private handler so both shards participate in the epoch (the
	// recorder is owned by shard 0 and must not be touched from shard 1).
	g.Shard(1).Send(0, at, 7, rec, 0xBBBB, 0, nil)
	g.Shard(1).AtHandler(at, &benchChurn{state: 1, remaining: 1}, 0, 0, nil)
	g.Run()
	if len(rec.seq) != 2 {
		t.Fatalf("recorded %d events, want 2", len(rec.seq))
	}
	if rec.seq[0][1] != 0xBBBB {
		t.Fatalf("cross-shard event fired after local tie: order %v", rec.seq)
	}
}
