// Engine snapshot and fork support.
//
// A Snapshot is a compact immutable record of an engine's execution state:
// the clock, the sequence counter, the throughput counters, the RNG tree
// (root state plus every SplitRNG child), and one record per live queued
// event. Taking one is O(live events); it does not copy history, the event
// pool, or the calendar geometry.
//
// Forking is restore-in-place: Restore rewinds the SAME engine (and, via
// the snap package, the same model object graph) back to the snapshot,
// rather than building a parallel copy. That choice is forced by the event
// representation — pending events hold Handler and payload pointers into
// live model objects, so a deep-copied engine would need a full
// object-graph relocation of every handler and payload. Restoring in place
// keeps every pointer valid: the queue is purged, the scalars rewound, and
// each recorded event re-filed under its original (time, seq) key, so the
// continuation fires the exact event sequence a cold run would.
//
// What a Snapshot does NOT capture is the deep state of the model objects
// its events point into (fabric channels, verbs queue pairs, telemetry
// counters). Callers that need full-model forking pair an engine Snapshot
// with a state capture of those roots (internal/snap); the warm-start sweep
// layer does exactly that.
package sim

import (
	"fmt"
	"reflect"
	"unsafe"
)

// eventRecord is one live event inside a Snapshot. Payloads (h, fn, obj)
// are captured by reference: re-filing them under the original key is what
// keeps restore O(live events), and deep payload state is the caller's to
// capture alongside the snapshot. The record also pins the *Event struct
// and the generation it occupied at capture, so Restore can re-file into
// the identical incarnation: model state captured alongside the snapshot
// holds Handles to these events, and a mid-run rewind must leave those
// handles valid.
type eventRecord struct {
	at     Time
	seq    uint64
	fn     func()
	h      Handler
	arg0   uint64
	arg1   int
	obj    any
	pooled bool
	ev     *Event
	gen    uint64
}

// Snapshot is an immutable record of an engine's state at one instant; see
// the file comment. Construct with Engine.Snapshot, consume with Restore.
type Snapshot struct {
	now       Time
	lastFired Time
	seq       uint64
	executed  uint64
	scheduled uint64
	recycled  uint64
	mailSent  uint64
	rootRNG   uint64
	splitRNG  []uint64
	events    []eventRecord
}

// Events returns the number of live events the snapshot carries.
func (s *Snapshot) Events() int { return len(s.events) }

// Now returns the virtual time the snapshot was taken at.
func (s *Snapshot) Now() Time { return s.now }

// Payloads returns the distinct pointer-shaped payload objects referenced
// by the snapshot's live events. A mid-run model fork must capture these
// alongside the model roots: an in-flight payload (a packet crossing the
// fabric) is reachable only from the event queue, yet the timeline that
// keeps running after the snapshot will mutate it. Non-pointer payloads
// are omitted — a value boxed in an interface is immutable, and funcs and
// channels are opaque to the state-capture layer.
func (s *Snapshot) Payloads() []any {
	seen := make(map[unsafe.Pointer]bool, len(s.events))
	var out []any
	for i := range s.events {
		obj := s.events[i].obj
		if obj == nil {
			continue
		}
		v := reflect.ValueOf(obj)
		switch v.Kind() {
		case reflect.Pointer, reflect.Map, reflect.Slice:
			p := v.UnsafePointer()
			if p == nil || seen[p] {
				continue
			}
			seen[p] = true
			out = append(out, obj)
		}
	}
	return out
}

// Bytes estimates the snapshot's in-memory size — the informational
// "snapshot bytes" perf metric. It is exact for the record itself; payloads
// referenced by events are shared with the live model and not counted.
func (s *Snapshot) Bytes() int {
	return int(unsafe.Sizeof(*s)) +
		len(s.splitRNG)*8 +
		len(s.events)*int(unsafe.Sizeof(eventRecord{}))
}

// Snapshot captures the engine's current state. The engine may keep
// running afterwards; the snapshot is unaffected (event records are
// copied out of the queue, never aliased into it).
func (e *Engine) Snapshot() *Snapshot {
	s := &Snapshot{
		now:       e.now,
		lastFired: e.lastFired,
		seq:       e.seq,
		executed:  e.Executed,
		scheduled: e.Scheduled,
		recycled:  e.Recycled,
		mailSent:  e.MailSent,
		rootRNG:   e.rng.State(),
		events:    make([]eventRecord, 0, e.live),
	}
	if len(e.splits) > 0 {
		s.splitRNG = make([]uint64, len(e.splits))
		for i, child := range e.splits {
			s.splitRNG[i] = child.State()
		}
	}
	record := func(ev *Event) {
		if ev == nil || ev.canceled {
			return
		}
		s.events = append(s.events, eventRecord{
			at: ev.at, seq: ev.seq,
			fn: ev.fn, h: ev.h,
			arg0: ev.arg0, arg1: ev.arg1, obj: ev.obj,
			pooled: ev.pooled,
			ev:     ev, gen: ev.gen,
		})
	}
	// Consumed open-bucket slots are nil and cancelled entries are
	// flagged; record() skips both, so a plain walk sees exactly the live
	// set.
	for i := range e.buckets {
		for _, ev := range e.buckets[i] {
			record(ev)
		}
	}
	for _, ev := range e.cur {
		record(ev)
	}
	for _, ev := range e.far {
		record(ev)
	}
	return s
}

// purge empties the queue: pooled events return to the free list (their
// generations bump, so outstanding Handles go stale), closure events are
// orphaned (their caller-held *Event becomes an inert no-op for Cancel).
func (e *Engine) purge() {
	e.closeOpen()
	for i := range e.buckets {
		b := e.buckets[i]
		for j, ev := range b {
			b[j] = nil
			if ev == nil {
				continue
			}
			ev.where = locNone
			if ev.pooled {
				e.release(ev)
			} else {
				ev.fn = nil
			}
		}
		e.buckets[i] = b[:0]
	}
	for i, ev := range e.far {
		e.far[i] = nil
		ev.where = locNone
		if ev.pooled {
			e.release(ev)
		} else {
			ev.fn = nil
		}
	}
	e.far = e.far[:0]
	e.nearCount = 0
	e.live = 0
	e.opened = false
	e.pos = 0
	e.cursor = 0
}

// Restore rewinds the engine to the snapshot: the queue is purged and
// rebuilt from the recorded events under their original (time, seq) keys,
// the clock, sequence counter, throughput counters and RNG tree are
// rewound. Restore must run on the engine the snapshot was taken from (the
// event records point into its model graph); restoring a snapshot with a
// different SplitRNG child count panics, because the RNG tree could not be
// rewound coherently.
func (e *Engine) Restore(s *Snapshot) {
	if len(s.splitRNG) != len(e.splits) {
		panic(fmt.Sprintf("sim: Restore with %d split RNG states onto an engine with %d children; snapshots only restore onto their own engine",
			len(s.splitRNG), len(e.splits)))
	}
	e.purge()
	e.now = s.now
	e.lastFired = s.lastFired
	e.stopped = false
	e.base = s.now
	// Re-file every recorded event into the SAME *Event struct it occupied
	// at capture, with its original generation. After purge every pooled
	// event is on the free list, so the recorded structs are reclaimed from
	// it first; closure events keep their caller-visible identity. Identity
	// matters because model state captured alongside the snapshot holds
	// Handles {ev, gen} to these events — a rewind that re-filed into fresh
	// pool slots would leave every such handle stale.
	if len(s.events) > 0 {
		refiled := make(map[*Event]bool, len(s.events))
		for i := range s.events {
			if s.events[i].pooled {
				refiled[s.events[i].ev] = true
			}
		}
		kept := e.free[:0]
		for _, fe := range e.free {
			if !refiled[fe] {
				kept = append(kept, fe)
			}
		}
		for i := len(kept); i < len(e.free); i++ {
			e.free[i] = nil
		}
		e.free = kept
	}
	for i := range s.events {
		r := &s.events[i]
		ev := r.ev
		ev.at = r.at
		ev.seq = r.seq
		ev.gen = r.gen
		ev.fn = r.fn
		ev.h = r.h
		ev.arg0 = r.arg0
		ev.arg1 = r.arg1
		ev.obj = r.obj
		ev.pooled = r.pooled
		ev.canceled = false
		ev.fired = false
		ev.index = -1
		e.schedule(ev)
	}
	// schedule() ticked these; overwrite with the recorded values so the
	// continuation's counters match a cold run exactly.
	e.seq = s.seq
	e.Executed = s.executed
	e.Scheduled = s.scheduled
	e.Recycled = s.recycled
	e.MailSent = s.mailSent
	e.rng.SetState(s.rootRNG)
	for i, st := range s.splitRNG {
		e.splits[i].SetState(st)
	}
}

// GroupSnapshot is the Sharded counterpart of Snapshot: one engine
// snapshot per shard plus the group's epoch counters. It can only be taken
// (and restored) at a quiescent barrier — every mailbox empty — which is
// always true before the first Run and after any Run returns.
type GroupSnapshot struct {
	shards []*Snapshot
	epochs uint64
	stalls uint64
}

// Bytes estimates the group snapshot's in-memory size.
func (s *GroupSnapshot) Bytes() int {
	n := int(unsafe.Sizeof(*s))
	for _, sh := range s.shards {
		n += sh.Bytes()
	}
	return n
}

// Payloads returns the distinct pointer-shaped payloads across every
// shard's live events; see Snapshot.Payloads.
func (s *GroupSnapshot) Payloads() []any {
	var out []any
	for _, sh := range s.shards {
		out = append(out, sh.Payloads()...)
	}
	return out
}

// Snapshot captures every shard's engine state. It panics if any mailbox
// holds an undelivered message: mid-epoch state is not a consistent cut.
func (g *Sharded) Snapshot() *GroupSnapshot {
	for i := range g.mail {
		if len(g.mail[i].msgs) != 0 {
			panic(fmt.Sprintf("sim: Sharded.Snapshot with %d undelivered messages in mailbox %d->%d; snapshots require a quiescent group",
				len(g.mail[i].msgs), i/len(g.shards), i%len(g.shards)))
		}
	}
	s := &GroupSnapshot{
		shards: make([]*Snapshot, len(g.shards)),
		epochs: g.Epochs,
		stalls: g.Stalls,
	}
	for i, e := range g.shards {
		s.shards[i] = e.Snapshot()
	}
	return s
}

// Restore rewinds every shard to the group snapshot. Shard counts must
// match (snapshots only restore onto their own group).
func (g *Sharded) Restore(s *GroupSnapshot) {
	if len(s.shards) != len(g.shards) {
		panic(fmt.Sprintf("sim: Restore of a %d-shard snapshot onto a %d-shard group", len(s.shards), len(g.shards)))
	}
	for i := range g.mail {
		if len(g.mail[i].msgs) != 0 {
			panic("sim: Sharded.Restore with undelivered mailbox messages; restore requires a quiescent group")
		}
	}
	for i, e := range g.shards {
		e.Restore(s.shards[i])
	}
	g.Epochs = s.epochs
	g.Stalls = s.stalls
}

// Reseed rewinds the whole group's RNG trees to the states a cold
// NewSharded(seed, ...) construction would have produced: the primary is
// reseeded with seed itself and shard i>0 with the same splitmix64
// derivation NewSharded uses; see Engine.Reseed for the soundness
// condition.
func (g *Sharded) Reseed(seed uint64) {
	for i, e := range g.shards {
		s := seed
		if i > 0 {
			s = Splitmix64(seed ^ uint64(i)*0x9E3779B97F4A7C15)
			if s == 0 {
				s = 1
			}
		}
		e.Reseed(s)
	}
}
