package sim

import "testing"

// The engine benchmarks fix the work per benchmark iteration (one iteration
// = churnEvents schedule/fire cycles on a prewarmed engine) so allocs/op is
// a steady-state number the CI baseline can gate, independent of b.N, and
// events/sec is reported as a custom metric for the BENCH_perf.json
// trajectory.

const churnEvents = 1 << 14

// benchChurn self-rearms with a cheap LCG-spread delay, exercising bucket
// hits, window wraps and the occasional far-future overflow.
type benchChurn struct {
	state     uint64
	remaining int
}

func (h *benchChurn) delay() Time {
	h.state = h.state*6364136223846793005 + 1442695040888963407
	return Time(h.state >> 52) // 0..4095 ns: a few buckets of spread
}

func (h *benchChurn) OnEvent(e *Engine, _ Handle, _ uint64, _ int, _ any) {
	if h.remaining > 0 {
		h.remaining--
		e.AfterHandler(h.delay(), h, 0, 0, nil)
	}
}

func (h *benchChurn) run(e *Engine) {
	if h.remaining > 0 {
		h.remaining--
		e.After(h.delay(), func() { h.run(e) })
	}
}

// BenchmarkEngineHandlerChurn measures the pooled, closure-free hot path:
// the scheduling shape of fabric hops and send completions.
func BenchmarkEngineHandlerChurn(b *testing.B) {
	e := NewEngine(1)
	h := &benchChurn{state: 1, remaining: churnEvents}
	e.AfterHandler(1, h, 0, 0, nil)
	e.Run() // warm the pool and bucket slices
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.remaining = churnEvents
		e.AfterHandler(1, h, 0, 0, nil)
		e.Run()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*float64(churnEvents+1)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineClosureChurn measures the same schedule through the
// closure API — the pre-overhaul shape, kept as the comparison point for
// the pooled path.
func BenchmarkEngineClosureChurn(b *testing.B) {
	e := NewEngine(1)
	h := &benchChurn{state: 1, remaining: churnEvents}
	h.run(e)
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.remaining = churnEvents
		h.run(e)
		e.Run()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*float64(churnEvents+1)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineTimerCancelRearm measures the RC retransmission pattern:
// arm a far-future timer, cancel it, arm the next — pure far-heap traffic
// through the pool.
func BenchmarkEngineTimerCancelRearm(b *testing.B) {
	e := NewEngine(1)
	h := &benchChurn{}
	for i := 0; i < 64; i++ {
		e.AfterHandler(300*Microsecond, h, 0, 0, nil).Cancel()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < churnEvents; j++ {
			e.AfterHandler(300*Microsecond, h, 0, 0, nil).Cancel()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*float64(churnEvents)/b.Elapsed().Seconds(), "timers/sec")
}
