package sim

import (
	"fmt"
	"testing"
)

// snapRecorder is a self-scheduling handler that logs every firing and
// keeps a churn of future events (some pooled, some far-future, some
// cancelled) alive, so snapshots are taken over a structurally interesting
// queue: near buckets, the open bucket, the far heap, cancelled entries.
type snapRecorder struct {
	e      *Engine
	log    []string
	budget int
}

func (r *snapRecorder) OnEvent(e *Engine, _ Handle, arg0 uint64, _ int, _ any) {
	r.log = append(r.log, fmt.Sprintf("%d@%d", arg0, e.Now()))
	if r.budget <= 0 {
		return
	}
	r.budget--
	// Mix near (bucket-scale), same-bucket and far-future delays, all
	// drawn from the engine RNG so restore rewinds the choice stream too.
	for i := 0; i < 2; i++ {
		d := Time(e.RNG().Intn(3) * 100000) // 0 or 100/200µs (far heap)
		if i == 0 {
			d = Time(e.RNG().Intn(2000)) // near: inside the calendar window
		}
		e.AfterHandler(d+1, r, arg0*10+uint64(i), 0, nil)
	}
	// Periodically schedule-and-cancel, leaving cancelled carcasses in
	// the buckets for Snapshot/Restore to skip.
	if e.RNG().Intn(3) == 0 {
		h := e.AfterHandler(Time(e.RNG().Intn(500)+1), r, 999, 0, nil)
		h.Cancel()
	}
}

// runRecorder drives a fresh recorder world for `steps` single-stepped
// events, then to completion, returning the full firing log.
func coldRecorderLog(seed uint64) []string {
	e := NewEngine(seed)
	r := &snapRecorder{e: e, budget: 120}
	for i := uint64(1); i <= 4; i++ {
		e.AtHandler(Time(i), r, i, 0, nil)
	}
	e.At(5, func() { r.log = append(r.log, fmt.Sprintf("closure@%d", e.Now())) })
	e.Run()
	return r.log
}

// TestSnapshotForkByteIdentical is the engine-level half of the fork
// property: snapshot after K events, run to completion, restore, run the
// continuation again — the continuation's firing log must be identical,
// at two different fork points.
func TestSnapshotForkByteIdentical(t *testing.T) {
	want := coldRecorderLog(42)
	for _, forkAt := range []int{7, 61} {
		e := NewEngine(42)
		r := &snapRecorder{e: e, budget: 120}
		for i := uint64(1); i <= 4; i++ {
			e.AtHandler(Time(i), r, i, 0, nil)
		}
		e.At(5, func() { r.log = append(r.log, fmt.Sprintf("closure@%d", e.Now())) })
		for i := 0; i < forkAt; i++ {
			if !e.Step() {
				t.Fatalf("fork point %d beyond queue exhaustion", forkAt)
			}
		}
		snap := e.Snapshot()
		// The snap package restores model state; here the only mutable
		// model state is the recorder itself, so save it by hand.
		savedLog := append([]string(nil), r.log...)
		savedBudget := r.budget
		e.Run()
		first := append([]string(nil), r.log...)
		if fmt.Sprint(first) != fmt.Sprint(want) {
			t.Fatalf("fork %d: pre-restore run diverged from cold run", forkAt)
		}

		e.Restore(snap)
		r.log = savedLog
		r.budget = savedBudget
		e.Run()
		if fmt.Sprint(r.log) != fmt.Sprint(want) {
			t.Fatalf("fork %d: forked continuation diverged:\ncold: %v\nfork: %v", forkAt, want, r.log)
		}
	}
}

// TestSnapshotCountersAndReseed checks the snapshot rewinds counters, the
// clock, and the RNG tree (root + SplitRNG children), and that Reseed
// reproduces a cold construction's child states for a different seed.
func TestSnapshotCountersAndReseed(t *testing.T) {
	build := func(seed uint64) (*Engine, *RNG) {
		e := NewEngine(seed)
		child := e.SplitRNG()
		return e, child
	}
	e, child := build(7)
	snap := e.Snapshot()
	wantRoot, wantChild := e.RNG().State(), child.State()
	// Burn both streams, then restore.
	e.RNG().Uint64()
	child.Uint64()
	e.Restore(snap)
	if e.RNG().State() != wantRoot || child.State() != wantChild {
		t.Fatalf("RNG tree not rewound: root %x child %x", e.RNG().State(), child.State())
	}
	// Reseed must equal a cold build with the new seed.
	e.Reseed(99)
	cold, coldChild := build(99)
	if e.RNG().State() != cold.RNG().State() || child.State() != coldChild.State() {
		t.Fatalf("Reseed(99) != cold construction: root %x vs %x, child %x vs %x",
			e.RNG().State(), cold.RNG().State(), child.State(), coldChild.State())
	}

	// Counters and clock rewind.
	e2 := NewEngine(3)
	for i := 0; i < 5; i++ {
		e2.AtHandler(Time(i+1), nopHandler{}, 0, 0, nil)
	}
	s0 := e2.Snapshot()
	e2.Run()
	if e2.Executed != 5 {
		t.Fatalf("Executed = %d", e2.Executed)
	}
	e2.Restore(s0)
	if e2.Executed != 0 || e2.Scheduled != 5 || e2.Now() != 0 || e2.Pending() != 5 {
		t.Fatalf("rewind: Executed=%d Scheduled=%d Now=%v Pending=%d", e2.Executed, e2.Scheduled, e2.Now(), e2.Pending())
	}
	e2.Run()
	if e2.Executed != 5 || e2.Now() != 5 {
		t.Fatalf("re-run after rewind: Executed=%d Now=%v", e2.Executed, e2.Now())
	}
}

type nopHandler struct{}

func (nopHandler) OnEvent(*Engine, Handle, uint64, int, any) {}

// TestSnapshotHandleSurvival pins the mid-run fork contract: a Handle
// issued BEFORE the snapshot refers to the same event incarnation after
// Restore — the event is re-filed into the identical *Event struct with
// its captured generation — so model state rewound alongside the engine
// (which holds exactly such handles) can still cancel its timers.
func TestSnapshotHandleSurvival(t *testing.T) {
	e := NewEngine(1)
	var fired []uint64
	logger := &argLogger{out: &fired}
	h10 := e.AtHandler(10, logger, 10, 0, nil)
	h20 := e.AtHandler(20, logger, 20, 0, nil)
	s := e.Snapshot()
	e.Run()
	if fmt.Sprint(fired) != "[10 20]" {
		t.Fatalf("first run fired %v", fired)
	}
	if h10.Active() || h20.Active() {
		t.Fatal("handles still active after their events fired")
	}
	// Churn the pool so the recorded structs get recycled incarnations.
	for i := 0; i < 4; i++ {
		e.AtHandler(e.Now()+Time(i+1), logger, 99, 0, nil)
	}
	e.Run()

	e.Restore(s)
	fired = nil
	if !h10.Active() || !h20.Active() {
		t.Fatal("pre-snapshot handles must survive Restore")
	}
	if h10.Time() != 10 || h20.Time() != 20 {
		t.Fatalf("restored handle times %v, %v", h10.Time(), h20.Time())
	}
	// Cancelling through a restored handle must hit the re-filed event.
	h20.Cancel()
	e.Run()
	if fmt.Sprint(fired) != "[10]" {
		t.Fatalf("after restored-handle cancel, fired %v", fired)
	}
}

type argLogger struct{ out *[]uint64 }

func (l *argLogger) OnEvent(e *Engine, _ Handle, arg0 uint64, _ int, _ any) {
	*l.out = append(*l.out, arg0)
}

// TestSnapshotStaleHandles: restoring must invalidate handles issued
// between snapshot and restore (their events belong to the abandoned
// timeline), so a stale Cancel is a no-op rather than queue corruption.
func TestSnapshotStaleHandles(t *testing.T) {
	e := NewEngine(1)
	s := e.Snapshot()
	h := e.AtHandler(10, nopHandler{}, 0, 0, nil)
	e.Restore(s)
	if h.Active() {
		t.Fatal("handle from the abandoned timeline is still active after Restore")
	}
	h.Cancel() // must not panic or corrupt
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after restore to empty snapshot", e.Pending())
	}
	e.Run()
}

// TestGroupSnapshotFork: the sharded counterpart — snapshot a quiescent
// 3-shard group with pending cross-shard work at t0, run, restore, run
// again, and require identical executed totals and final time.
func TestGroupSnapshotFork(t *testing.T) {
	g := NewSharded(11, 3, 100)
	r := make([]*snapRecorder, 3)
	for i := 0; i < 3; i++ {
		e := g.Shard(i)
		r[i] = &snapRecorder{e: e, budget: 40}
		e.AtHandler(Time(i+1), r[i], uint64(i+1), 0, nil)
	}
	snap := g.Snapshot()
	saved := make([][]string, 3)
	budgets := make([]int, 3)
	for i := range r {
		saved[i] = append([]string(nil), r[i].log...)
		budgets[i] = r[i].budget
	}
	end1 := g.Run()
	logs1 := fmt.Sprint(r[0].log, r[1].log, r[2].log)
	exec1 := g.ExecutedTotal()

	g.Restore(snap)
	for i := range r {
		r[i].log = saved[i]
		r[i].budget = budgets[i]
	}
	end2 := g.Run()
	if end1 != end2 || exec1 != g.ExecutedTotal() {
		t.Fatalf("group fork diverged: end %v vs %v, executed %d vs %d", end1, end2, exec1, g.ExecutedTotal())
	}
	if logs2 := fmt.Sprint(r[0].log, r[1].log, r[2].log); logs2 != logs1 {
		t.Fatalf("group fork logs diverged:\n%s\n%s", logs1, logs2)
	}
}

// TestShardedReRun pins the group's re-run contract: Run may be called
// again after completion (with or without new events), the epoch and stall
// counters accumulate monotonically across calls — they are never reset,
// so telemetry that samples them after a second Run sees the cumulative
// count, not a rewound one — and the second Run's results match a serial
// engine executing the same schedule.
func TestShardedReRun(t *testing.T) {
	g := NewSharded(5, 2, 50)
	serial := NewEngine(5)

	// Per-shard logs: a shared log would race across worker goroutines
	// and impose a cross-shard order no contract promises.
	var fired [2][]Time
	var sfired [2][]Time
	for run := 0; run < 2; run++ {
		base := g.Now()
		for i := 0; i < 4; i++ {
			at := base + Time(10*(i+1))
			shard := i % 2
			g.Shard(shard).AtHandler(at, &timeLogger{out: &fired[shard]}, 0, 0, nil)
			serial.AtHandler(at, &timeLogger{out: &sfired[shard]}, 0, 0, nil)
		}
		epochsBefore, stallsBefore := g.Epochs, g.Stalls
		g.Run()
		serial.Run()
		if g.Epochs < epochsBefore || g.Stalls < stallsBefore {
			t.Fatalf("run %d: counters went backwards: epochs %d->%d stalls %d->%d",
				run, epochsBefore, g.Epochs, stallsBefore, g.Stalls)
		}
	}
	if fmt.Sprint(fired) != fmt.Sprint(sfired) {
		t.Fatalf("re-run diverged from serial: %v vs %v", fired, sfired)
	}
	// A third Run with nothing queued is a no-op that must not disturb
	// clocks or counters.
	now, epochs, stalls := g.Now(), g.Epochs, g.Stalls
	g.Run()
	if g.Now() != now || g.Epochs != epochs || g.Stalls != stalls {
		t.Fatalf("idle re-run disturbed state: now %v->%v epochs %d->%d stalls %d->%d",
			now, g.Now(), epochs, g.Epochs, stalls, g.Stalls)
	}
}

type timeLogger struct{ out *[]Time }

func (l *timeLogger) OnEvent(e *Engine, _ Handle, _ uint64, _ int, _ any) {
	*l.out = append(*l.out, e.Now())
}
