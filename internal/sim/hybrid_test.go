package sim

import (
	"container/heap"
	"testing"
)

// --- reference model --------------------------------------------------------------
//
// The determinism contract of the hybrid ladder/heap scheduler is that it
// pops events in exactly the (at, seq) order a single binary heap would.
// refQueue is that single binary heap, driven through the identical
// schedule/cancel sequence as the engine.

type refItem struct {
	at       Time
	seq      uint64
	id       int
	canceled bool
}

type refQueue []*refItem

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int)   { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)     { *q = append(*q, x.(*refItem)) }
func (q *refQueue) Pop() (out any) { old := *q; n := len(old); out = old[n-1]; *q = old[:n-1]; return }
func (q *refQueue) popLive() *refItem {
	for q.Len() > 0 {
		it := heap.Pop(q).(*refItem)
		if !it.canceled {
			return it
		}
	}
	return nil
}

// canceler abstracts *Event (closure path) and Handle (handler path) so the
// property test cancels through both APIs.
type canceler interface{ Cancel() }

// propHarness drives the engine and the reference queue through the same
// randomized schedule/cancel/re-arm decisions; every firing asserts the two
// agree on which event is next.
type propHarness struct {
	t       *testing.T
	eng     *Engine
	ref     refQueue
	rng     *RNG
	nextID  int
	refSeq  uint64
	live    map[int]canceler // engine-side cancel handles by id
	refByID map[int]*refItem
	fired   []int
	budget  int // schedules remaining
}

// OnEvent is the handler-path firing: arg0 carries the event id.
func (p *propHarness) OnEvent(_ *Engine, _ Handle, arg0 uint64, _ int, _ any) {
	p.onFire(int(arg0))
}

func (p *propHarness) onFire(id int) {
	want := p.ref.popLive()
	if want == nil {
		p.t.Fatalf("engine fired id %d but reference queue is empty", id)
	}
	if want.id != id {
		p.t.Fatalf("order diverged at firing %d: engine id %d, reference id %d (at %v vs %v)",
			len(p.fired), id, want.id, p.eng.Now(), want.at)
	}
	if want.at != p.eng.Now() {
		p.t.Fatalf("id %d fired at %v, reference says %v", id, p.eng.Now(), want.at)
	}
	delete(p.live, id)
	delete(p.refByID, id)
	p.fired = append(p.fired, id)
	p.act()
}

// act re-arms one replacement event (keeping the population steady until
// the schedule budget drains) and then makes one randomized extra move:
// another schedule, a cancellation of a random live event, or nothing —
// every move applied identically to both structures.
func (p *propHarness) act() {
	if p.budget > 0 {
		p.budget--
		p.schedule(p.randomDelay())
	}
	switch p.rng.Intn(3) {
	case 0: // schedule an extra event
		if p.budget > 0 {
			p.budget--
			p.schedule(p.randomDelay())
		}
	case 1: // cancel a live event (and never fire it)
		p.cancelOne()
	}
}

// cancelOne cancels the smallest live id: a deterministic pick (map
// iteration order would make a failing trace unreproducible from its seed)
// that still exercises cancellation across every queue region, since the
// oldest live event may sit in a bucket, the open heap, or the far heap.
func (p *propHarness) cancelOne() {
	min := -1
	for id := range p.live {
		if min < 0 || id < min {
			min = id
		}
	}
	if min < 0 {
		return
	}
	p.live[min].Cancel()
	p.refByID[min].canceled = true
	delete(p.live, min)
	delete(p.refByID, min)
}

// randomDelay mixes ties (0), in-bucket, in-window, and far-future delays
// so every region of the hybrid queue sees traffic.
func (p *propHarness) randomDelay() Time {
	switch p.rng.Intn(4) {
	case 0:
		return Time(p.rng.Intn(4)) // ties and same-bucket
	case 1:
		return Time(p.rng.Intn(int(windowSpan))) // in-window
	case 2:
		return Time(p.rng.Intn(int(4 * windowSpan))) // window straddling
	default:
		return Time(p.rng.Intn(int(400 * Microsecond))) // far-future timers
	}
}

func (p *propHarness) schedule(d Time) {
	id := p.nextID
	p.nextID++
	at := p.eng.Now() + d
	// Both sides must consume one sequence number per schedule, in the same
	// order, for the (at, seq) tiebreak to be comparable.
	it := &refItem{at: at, seq: p.refSeq, id: id}
	p.refSeq++
	heap.Push(&p.ref, it)
	p.refByID[id] = it
	if id%2 == 0 {
		p.live[id] = p.eng.AfterHandler(d, p, uint64(id), 0, nil)
	} else {
		p.live[id] = p.eng.After(d, func() { p.onFire(id) })
	}
}

// TestHybridMatchesReferenceHeapOrder schedules >10k events through the
// ladder/heap hybrid — half closure events, half pooled handler events,
// with random cancellations and re-arms along the way — and checks every
// single pop against a reference binary heap's (at, seq) order.
func TestHybridMatchesReferenceHeapOrder(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0xdeadbeef} {
		p := &propHarness{
			t:       t,
			eng:     NewEngine(seed),
			rng:     NewRNG(seed ^ 0x9E3779B97F4A7C15),
			live:    map[int]canceler{},
			refByID: map[int]*refItem{},
			budget:  12000,
		}
		for i := 0; i < 2000 && p.budget > 0; i++ {
			p.budget--
			p.schedule(p.randomDelay())
		}
		p.eng.Run()
		if rest := p.ref.popLive(); rest != nil {
			t.Fatalf("seed %d: engine drained but reference still holds id %d", seed, rest.id)
		}
		if len(p.fired) < 8000 {
			t.Fatalf("seed %d: only %d events fired; cancellation ate the schedule", seed, len(p.fired))
		}
		if p.eng.Pending() != 0 {
			t.Fatalf("seed %d: Pending() = %d after drain", seed, p.eng.Pending())
		}
	}
}

// TestRunUntilThenEarlierSchedule covers the rebase path: RunUntil jumps
// the window toward a far-future timer, then a schedule lands before the
// frontier and must still fire first.
func TestRunUntilThenEarlierSchedule(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.At(2*Second, func() { order = append(order, "far") })
	e.RunUntil(100) // window may jump toward the 2 s timer
	e.At(200, func() { order = append(order, "near") })
	e.At(150, func() { order = append(order, "nearer") })
	e.Run()
	if len(order) != 3 || order[0] != "nearer" || order[1] != "near" || order[2] != "far" {
		t.Fatalf("order = %v, want [nearer near far]", order)
	}
}

// --- handler API ------------------------------------------------------------------

type recordHandler struct {
	calls []uint64
	objs  []any
	args  []int
}

func (h *recordHandler) OnEvent(_ *Engine, _ Handle, arg0 uint64, arg1 int, obj any) {
	h.calls = append(h.calls, arg0)
	h.args = append(h.args, arg1)
	h.objs = append(h.objs, obj)
}

func TestAtHandlerDeliversPackedArgs(t *testing.T) {
	e := NewEngine(1)
	h := &recordHandler{}
	payload := &recordHandler{}
	e.AtHandler(30, h, 7, -3, payload)
	e.AfterHandler(10, h, 9, 4, nil)
	e.Run()
	if len(h.calls) != 2 || h.calls[0] != 9 || h.calls[1] != 7 {
		t.Fatalf("calls = %v, want [9 7]", h.calls)
	}
	if h.args[0] != 4 || h.args[1] != -3 {
		t.Fatalf("args = %v, want [4 -3]", h.args)
	}
	if h.objs[0] != nil || h.objs[1] != any(payload) {
		t.Fatalf("objs not delivered: %v", h.objs)
	}
}

func TestHandleCancelPreventsFiring(t *testing.T) {
	e := NewEngine(1)
	h := &recordHandler{}
	near := e.AtHandler(10, h, 1, 0, nil)
	far := e.AtHandler(windowSpan+10*Microsecond, h, 2, 0, nil)
	if !near.Active() || !far.Active() {
		t.Fatal("fresh handles not active")
	}
	near.Cancel()
	far.Cancel()
	if near.Active() || far.Active() {
		t.Fatal("cancelled handles still active")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after cancelling both", e.Pending())
	}
	e.Run()
	if len(h.calls) != 0 {
		t.Fatalf("cancelled handler events fired: %v", h.calls)
	}
}

// TestStaleHandleIsNoOp is the retransmission-timer race: a handle whose
// event fired and was recycled into a new event must not cancel the new
// occupant.
func TestStaleHandleIsNoOp(t *testing.T) {
	e := NewEngine(1)
	h := &recordHandler{}
	first := e.AtHandler(10, h, 1, 0, nil)
	e.Run()
	if len(h.calls) != 1 {
		t.Fatal("first event did not fire")
	}
	// The pool guarantees the next handler event reuses the same *Event.
	second := e.AtHandler(20, h, 2, 0, nil)
	if first.Active() {
		t.Fatal("fired handle reports active")
	}
	first.Cancel() // stale: must not touch the second event
	if !second.Active() {
		t.Fatal("stale Cancel killed the recycled event")
	}
	e.Run()
	if len(h.calls) != 2 || h.calls[1] != 2 {
		t.Fatalf("second event lost: calls = %v", h.calls)
	}
}

func TestEventFiredAccessor(t *testing.T) {
	e := NewEngine(1)
	ev := e.At(10, func() {})
	cancelled := e.At(20, func() {})
	cancelled.Cancel()
	if ev.Fired() {
		t.Fatal("Fired() before Run")
	}
	e.Run()
	if !ev.Fired() {
		t.Fatal("Fired() false after the event ran")
	}
	if cancelled.Fired() {
		t.Fatal("cancelled event reports Fired")
	}
	if !cancelled.Canceled() {
		t.Fatal("cancelled event lost its Canceled flag after the run")
	}
}

func TestEventPoolRecycles(t *testing.T) {
	e := NewEngine(1)
	h := &recordHandler{}
	const n = 64
	// Sequential one-in-flight schedule/fire cycles should reuse one event.
	for i := 0; i < n; i++ {
		e.AfterHandler(Time(i), h, uint64(i), 0, nil)
		e.Run()
	}
	if e.PoolSize() != 1 {
		t.Fatalf("PoolSize = %d, want 1 (one event recycled %d times)", e.PoolSize(), n)
	}
	if e.Recycled < n-1 {
		t.Fatalf("Recycled = %d, want >= %d", e.Recycled, n-1)
	}
	if e.Scheduled != n || e.Executed != n {
		t.Fatalf("Scheduled/Executed = %d/%d, want %d/%d", e.Scheduled, e.Executed, n, n)
	}
}

// rearmHandler reschedules itself count times: the steady-state hot-path
// shape (fabric hops, send completions) for the allocation gate.
type rearmHandler struct{ remaining int }

func (h *rearmHandler) OnEvent(e *Engine, _ Handle, _ uint64, _ int, _ any) {
	if h.remaining > 0 {
		h.remaining--
		e.AfterHandler(350, h, 0, 0, nil)
	}
}

// TestHandlerPathAllocFree is the satellite gate: the closure-free
// schedule/fire/recycle cycle must not allocate at all once the pool is
// warm.
func TestHandlerPathAllocFree(t *testing.T) {
	e := NewEngine(1)
	h := &rearmHandler{}
	// Warm the pool and the bucket slices.
	h.remaining = 2048
	e.AfterHandler(1, h, 0, 0, nil)
	e.Run()
	avg := testing.AllocsPerRun(50, func() {
		h.remaining = 512
		e.AfterHandler(1, h, 0, 0, nil)
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("handler hot path allocates: %.2f allocs per 513-event run, want 0", avg)
	}
}

// TestTimerCancelRearmAllocFree gates the RC retransmission pattern: arm a
// far-future timer, cancel it, re-arm — the pool must absorb it without
// garbage.
func TestTimerCancelRearmAllocFree(t *testing.T) {
	e := NewEngine(1)
	h := &recordHandler{}
	for i := 0; i < 64; i++ { // warm
		e.AfterHandler(300*Microsecond, h, 0, 0, nil).Cancel()
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			e.AfterHandler(300*Microsecond, h, 0, 0, nil).Cancel()
		}
	})
	if avg != 0 {
		t.Fatalf("timer cancel/re-arm allocates: %.2f allocs per 32 cycles, want 0", avg)
	}
}
