package sim

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// benchPhold runs the PHOLD model (shard_test.go) at a given shard count
// for a fixed window of virtual time and reports aggregate events/sec plus
// events/sec-per-core — the machine-portable scaling figure CI gates
// against PERF_BASELINE.json. Hosts never exhaust inside the window, so
// the event population (and available parallelism) stays constant.
func benchPhold(b *testing.B, shards int) {
	const hosts = 256
	const window = Millisecond
	var events, epochs, stalls uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := newPhold(17, hosts, shards, math.MaxInt32)
		t.grp.RunUntil(window)
		events += t.grp.ExecutedTotal()
		epochs += t.grp.Epochs
		stalls += t.grp.Stalls
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	b.ReportMetric(float64(events)/secs, "events/sec")
	b.ReportMetric(float64(events)/secs/float64(shards), "events/sec/core")
	// Informational barrier telemetry: how many lookahead epochs the window
	// took and how often a shard sat one out empty-handed.
	b.ReportMetric(float64(epochs)/float64(b.N), "epochs/op")
	b.ReportMetric(float64(stalls)/float64(b.N), "epoch-stalls/op")
}

func BenchmarkEngineParallel1(b *testing.B) { benchPhold(b, 1) }
func BenchmarkEngineParallel2(b *testing.B) { benchPhold(b, 2) }
func BenchmarkEngineParallel4(b *testing.B) { benchPhold(b, 4) }

// --- 16-host segment-pipelined ring allreduce -------------------------------

// Segment-pipelined ring allreduce: every segment makes 2*(hosts-1) hops
// (reduce-scatter then allgather); each hop runs a chain of local
// reduce/copy events on the owning host before forwarding the segment to
// the ring successor across shards. All per-segment state (hops left,
// chain position) travels in the event args, so hosts only ever mutate
// their own accumulator — the ownership discipline Sharded requires.
const (
	ringHosts    = 16
	ringLink     = 3 * Microsecond // cross-shard latency = lookahead
	ringSegments = 256
	ringChainLen = 8
	ringChainGap = 150 * Nanosecond
)

type ringHost struct {
	ring    *ringBench
	id      int
	acc     uint64
	ctr     uint64
	retired int // segments that completed their final hop here
}

type ringBench struct {
	grp     *Sharded
	hosts   [ringHosts]*ringHost
	shardOf [ringHosts]int
}

// arg1 encodes the segment's position: hops<<8 | chainRemaining, where
// chainRemaining==0 marks a fresh arrival that starts the local chain.
func (h *ringHost) OnEvent(e *Engine, _ Handle, arg0 uint64, arg1 int, _ any) {
	hops, chain := arg1>>8, arg1&0xFF
	if chain == 0 {
		e.AfterHandler(ringChainGap, h, arg0^uint64(h.id), hops<<8|ringChainLen, nil)
		return
	}
	h.acc = Splitmix64(h.acc ^ arg0 ^ uint64(e.Now()))
	if chain > 1 {
		e.AfterHandler(ringChainGap, h, arg0, hops<<8|(chain-1), nil)
		return
	}
	if hops == 0 {
		h.retired++
		return
	}
	next := h.ring.hosts[(h.id+1)%ringHosts]
	h.ctr++
	order := uint64(h.id)<<32 | h.ctr
	e.Send(h.ring.shardOf[next.id], e.Now()+ringLink, order, next, arg0, (hops-1)<<8, nil)
}

func runRingAllreduce(shards int) (events, epochs, stalls uint64) {
	g := NewSharded(29, shards, ringLink)
	r := &ringBench{grp: g}
	for i := 0; i < ringHosts; i++ {
		r.shardOf[i] = i * shards / ringHosts
		r.hosts[i] = &ringHost{ring: r, id: i}
	}
	// Inject the segments round-robin across hosts, staggered so the
	// pipeline fills: each makes 2*(hosts-1) hops around the ring.
	for s := 0; s < ringSegments; s++ {
		h := r.hosts[s%ringHosts]
		start := ringLink + Time(s/ringHosts)*ringChainGap
		g.Shard(r.shardOf[h.id]).Send(r.shardOf[h.id], start, uint64(s),
			h, uint64(s), 2*(ringHosts-1)<<8, nil)
	}
	g.Run()
	retired := 0
	for _, h := range r.hosts {
		retired += h.retired
	}
	if retired != ringSegments {
		panic(fmt.Sprintf("ring allreduce retired %d/%d segments", retired, ringSegments))
	}
	return g.ExecutedTotal(), g.Epochs, g.Stalls
}

// BenchmarkAllreduce16Shards times the 16-host ring allreduce at 4 shards
// and, untimed, at 1 shard; "speedup" is the same-machine parallel/serial
// throughput ratio. On a multi-core runner it measures true concurrent
// scaling; on a single-core runner (runtime.NumCPU()==1) only the
// partitioning efficiency — smaller per-shard scheduler queues minus
// barrier overhead — remains, so the pinned baseline is machine-specific
// and gated as a floor relative to itself (-min-metric, tol 0.20).
func BenchmarkAllreduce16Shards(b *testing.B) {
	const shards = 4
	var events, epochs, stalls uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, ep, st := runRingAllreduce(shards)
		events += ev
		epochs += ep
		stalls += st
	}
	b.StopTimer()
	parRate := float64(events) / b.Elapsed().Seconds()

	start := time.Now()
	var serialEvents uint64
	for i := 0; i < b.N; i++ {
		ev, _, _ := runRingAllreduce(1)
		serialEvents += ev
	}
	serialRate := float64(serialEvents) / time.Since(start).Seconds()

	b.ReportMetric(parRate, "events/sec")
	b.ReportMetric(parRate/shards, "events/sec/core")
	b.ReportMetric(parRate/serialRate, "speedup")
	b.ReportMetric(float64(epochs)/float64(b.N), "epochs/op")
	b.ReportMetric(float64(stalls)/float64(b.N), "epoch-stalls/op")
}
