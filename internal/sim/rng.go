package sim

// RNG is a small deterministic pseudo-random number generator
// (xorshift64star). The standard library's math/rand would also be
// deterministic for a fixed seed, but pinning the algorithm here guarantees
// that simulation results cannot drift across Go releases, which matters for
// a reproduction artifact.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15 // golden-ratio constant
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits, standard conversion.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent child generator. Streams from parent and
// child are decorrelated by mixing the parent's next output with a distinct
// odd constant.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64()*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB)
}

// State returns the generator's internal state, for snapshotting. The state
// fully determines the stream: SetState(State()) is an exact rewind.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's internal state with a value obtained
// from State. The zero state is remapped exactly like NewRNG's zero seed,
// preserving the no-fixed-point invariant.
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	r.state = s
}

// Splitmix64 is the splitmix64 finalizer: a bijective avalanche mix used to
// derive decorrelated seeds from structured inputs (e.g. a base seed plus a
// sweep-grid index). Like the RNG itself it is pinned here so derived seeds
// cannot drift across Go releases.
func Splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
