// Package command implements every subcommand of the repro binary: the
// manifest-driven entry points (run, validate, list) and the seven
// flag-compatible shims that replaced the historical per-experiment
// binaries (osu, ag, traffic, dpa, cost, chaos, train). Each shim parses
// the exact flag surface its binary had, builds a manifest.Manifest in
// memory, and goes through the same compile/execute path `repro run`
// uses — one wiring, eight doors.
//
// Subcommands return exit codes instead of exiting, so the whole surface
// is table-testable: 0 success, 1 runtime failure (simulation errors,
// baseline regressions, digest mismatches), 2 invalid flags or manifests.
package command

import (
	"fmt"
	"io"
)

// subcommand is one entry of the dispatch table.
type subcommand struct {
	name    string
	summary string
	run     func(args []string, stdout, stderr io.Writer) int
}

var subcommands = []subcommand{
	{"run", "execute manifests: repro run <manifest...> [-workers N] [-shards N] [-o DIR] [-compare BASE]", runManifest},
	{"validate", "check manifests without running: repro validate <manifest...>", runValidate},
	{"list", "print registered kinds, algorithms, scenarios, workloads and presets", runList},
	{"trace", "summarize a telemetry metrics.json: repro trace [-top N] <metrics.json>", runTraceCmd},
	{"replay", "seek-and-step debugger over one collective point: repro replay [-at US] [-steps N] <manifest>", runReplay},
	{"osu", "OSU-style collective microbenchmark (was cmd/osu)", runOSU},
	{"ag", "at-scale collective figures 10/11 (was cmd/agbench)", runAG},
	{"traffic", "figure 12 switch-port traffic (was cmd/trafficbench)", runTraffic},
	{"dpa", "SmartNIC offloading figures/tables (was cmd/dpabench)", runDPA},
	{"cost", "analytic cost-model artifacts (was cmd/costmodel)", runCost},
	{"chaos", "collectives under perturbation scenarios (was cmd/chaosbench)", runChaos},
	{"train", "training-workload benchmark (was cmd/trainbench)", runTrain},
}

// Run dispatches args[0] as a subcommand and returns its exit code.
func Run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	name := args[0]
	if name == "help" || name == "-h" || name == "-help" || name == "--help" {
		usage(stdout)
		return 0
	}
	for _, sc := range subcommands {
		if sc.name == name {
			return sc.run(args[1:], stdout, stderr)
		}
	}
	fmt.Fprintf(stderr, "repro: unknown subcommand %q\n\n", name)
	usage(stderr)
	return 2
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: repro <subcommand> [flags]")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Subcommands:")
	for _, sc := range subcommands {
		fmt.Fprintf(w, "  %-9s %s\n", sc.name, sc.summary)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Every subcommand is deterministic: the same arguments produce")
	fmt.Fprintln(w, "byte-identical -json output at any -workers or -shards count.")
}
