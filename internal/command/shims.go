package command

import (
	"flag"
	"io"

	"repro/internal/cli"
	"repro/internal/manifest"
)

// This file holds the seven legacy shims: each parses the exact flag
// surface of the historical cmd binary it replaced, folds the flags into
// a manifest.Manifest, and executes it through the shared path. The
// binaries under cmd/ forward here, so `go run ./cmd/osu -nodes 32` and
// `repro osu -nodes 32` are the same program.

// runOSU is the OSU-style microbenchmark shim (was cmd/osu).
func runOSU(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repro osu", flag.ContinueOnError)
	op := fs.String("op", "allgather", "collective: allgather, broadcast, reduce-scatter or allreduce")
	algo := fs.String("algo", "mcast", "algorithm family (joined with -op into a registry name, e.g. mcast-allgather)")
	nodes := fs.Int("nodes", 32, "participating nodes (<=188)")
	sizesFlag := fs.String("sizes", "4096:1048576", "size range min:max (doubling) or comma list")
	iters := fs.Int("iters", 10, "measured iterations per size")
	warmup := fs.Int("warmup", 2, "warm-up iterations per size (excluded)")
	linkGbps := fs.Float64("link", 56, "link bandwidth in Gbit/s (testbed: 56)")
	jitter := fs.Int("jitter", 0, "per-delivery network noise in microseconds (enables run-to-run variability)")
	seed := fs.Uint64("seed", 1, "base sweep seed (per-point seeds derive from it)")
	comparePath := fs.String("compare", "", "baseline BENCH_*.json to diff the records against")
	tol := fs.Float64("tol", 0.05, "relative tolerance for -compare")
	tracePath := fs.String("trace", "", "write the Figure-9 protocol phase timeline of one representative run to this file")
	var c common
	c.register(fs, 0)
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	sizes, err := manifest.ParseSizes(*sizesFlag)
	if err != nil {
		return fail(stderr, 2, "osu: %v", err)
	}
	checks := append(c.validate(),
		cli.Positive("iters", *iters),
		cli.NonNegative("warmup", *warmup),
		cli.NonNegative("jitter", *jitter),
		cli.Writable("trace", *tracePath))
	if err := cli.Validate("osu", checks...); err != nil {
		return fail(stderr, 2, "%v", err)
	}
	m := manifest.Manifest{
		Kind: "osu",
		Grid: manifest.Grid{
			Algorithms: []string{*algo + "-" + *op},
			Ops:        []string{*op},
			Nodes:      []int{*nodes},
			Sizes:      sizes,
		},
		Seed: seed,
		OSU:  &manifest.OSUSpec{Iters: *iters, Warmup: warmup, LinkGbps: *linkGbps, JitterUS: *jitter},
	}
	if *comparePath != "" {
		m.Baseline = &manifest.Baseline{Path: *comparePath, Tolerance: *tol}
	}
	c.apply(&m)
	return execute("osu", m, diagnostics{trace: *tracePath, cpuprofile: c.cpuprofile}, stdout, stderr)
}

// runAG is the at-scale collective figures shim (was cmd/agbench).
func runAG(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repro ag", flag.ContinueOnError)
	fig := fs.Int("fig", 0, "figure to regenerate (10 or 11)")
	nodesFlag := fs.String("nodes", "", "comma-separated node counts (fig 10) or single count (fig 11)")
	sizesFlag := fs.String("sizes", "", "comma-separated message sizes in bytes")
	tracePath := fs.String("trace", "", "write the protocol phase timeline of one representative run to this file")
	var c common
	c.register(fs, 0)
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	checks := append(c.validate(), cli.Writable("trace", *tracePath))
	if err := cli.Validate("ag", checks...); err != nil {
		return fail(stderr, 2, "%v", err)
	}
	m := manifest.Manifest{Kind: "ag", Figures: []int{*fig}}
	if *nodesFlag != "" {
		nodes, err := manifest.ParseSizes(*nodesFlag)
		if err != nil {
			return fail(stderr, 2, "ag: bad -nodes: %v", err)
		}
		if *fig == 11 && len(nodes) > 1 {
			// The historical binary used only the first entry for fig 11.
			nodes = nodes[:1]
		}
		m.Grid.Nodes = nodes
	}
	if *sizesFlag != "" {
		sizes, err := manifest.ParseSizes(*sizesFlag)
		if err != nil {
			return fail(stderr, 2, "ag: bad -sizes: %v", err)
		}
		m.Grid.Sizes = sizes
	}
	c.apply(&m)
	return execute("ag", m, diagnostics{trace: *tracePath, cpuprofile: c.cpuprofile}, stdout, stderr)
}

// runTraffic is the Figure 12 switch-traffic shim (was cmd/trafficbench).
func runTraffic(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repro traffic", flag.ContinueOnError)
	nodes := fs.Int("nodes", 188, "participating nodes (2..188)")
	msg := fs.Int("msg", 64<<10, "message size in bytes (> 0)")
	iters := fs.Int("iters", 10, "measured iterations (> 0)")
	tracePath := fs.String("trace", "", "write the protocol phase timeline of one representative run to this file")
	var c common
	c.register(fs, 0)
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	checks := append(c.validate(),
		cli.Positive("iters", *iters),
		cli.Writable("trace", *tracePath))
	if err := cli.Validate("traffic", checks...); err != nil {
		return fail(stderr, 2, "%v", err)
	}
	m := manifest.Manifest{
		Kind:    "traffic",
		Grid:    manifest.Grid{Nodes: []int{*nodes}, Sizes: manifest.Sizes{*msg}},
		Traffic: &manifest.TrafficSpec{Iters: *iters},
	}
	c.apply(&m)
	return execute("traffic", m, diagnostics{trace: *tracePath, cpuprofile: c.cpuprofile}, stdout, stderr)
}

// runDPA is the SmartNIC-offloading experiments shim (was cmd/dpabench).
func runDPA(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repro dpa", flag.ContinueOnError)
	fig := fs.Int("fig", 0, "figure to regenerate (5, 13, 14, 15, 16)")
	table := fs.Int("table", 0, "table to regenerate (1)")
	all := fs.Bool("all", false, "run every DPA experiment")
	tracePath := fs.String("trace", "", "write the protocol phase timeline of one representative run to this file (dpa has no traceable point; rejected at run time)")
	var c common
	c.register(fs, 0)
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	checks := append(c.validate(), cli.Writable("trace", *tracePath))
	if err := cli.Validate("dpa", checks...); err != nil {
		return fail(stderr, 2, "%v", err)
	}
	m := manifest.Manifest{Kind: "dpa", All: *all}
	if *fig != 0 {
		m.Figures = []int{*fig}
	}
	if *table != 0 {
		m.Tables = []int{*table}
	}
	c.apply(&m)
	return execute("dpa", m, diagnostics{trace: *tracePath, cpuprofile: c.cpuprofile}, stdout, stderr)
}

// runCost is the analytic cost-model shim (was cmd/costmodel).
func runCost(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repro cost", flag.ContinueOnError)
	fig := fs.Int("fig", 0, "figure to regenerate (2 or 7)")
	speedup := fs.Bool("speedup", false, "Appendix B concurrent {AG,RS} study")
	economics := fs.Bool("economics", false, "§VII SmartNIC offloading economics")
	all := fs.Bool("all", false, "run everything")
	tracePath := fs.String("trace", "", "write the protocol phase timeline of one representative run to this file (cost has no traceable point; rejected at run time)")
	var c common
	c.register(fs, 0)
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	checks := append(c.validate(), cli.Writable("trace", *tracePath))
	if err := cli.Validate("cost", checks...); err != nil {
		return fail(stderr, 2, "%v", err)
	}
	m := manifest.Manifest{Kind: "cost", Speedup: *speedup, Economics: *economics, All: *all}
	if *fig != 0 {
		m.Figures = []int{*fig}
	}
	c.apply(&m)
	return execute("cost", m, diagnostics{trace: *tracePath, cpuprofile: c.cpuprofile}, stdout, stderr)
}

// runChaos is the perturbation-scenario shim (was cmd/chaosbench).
func runChaos(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repro chaos", flag.ContinueOnError)
	algosFlag := fs.String("algos", "mcast-allgather,ring-allgather", "comma list of registry algorithms to perturb")
	scenariosFlag := fs.String("scenarios", "all", "comma list of scenario presets, or \"all\"")
	nodes := fs.Int("nodes", 32, "participating nodes (2..188)")
	msg := fs.Int("msg", 64<<10, "message size in bytes (> 0)")
	seed := fs.Uint64("seed", 7, "base sweep seed (per-point seeds derive from it)")
	tracePath := fs.String("trace", "", "write the protocol phase timeline of one representative perturbed run to this file")
	var c common
	c.register(fs, 0)
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	checks := append(c.validate(), cli.Writable("trace", *tracePath))
	if err := cli.Validate("chaos", checks...); err != nil {
		return fail(stderr, 2, "%v", err)
	}
	scenarios := []string{"all"}
	if *scenariosFlag != "all" {
		scenarios = cli.SplitList(*scenariosFlag)
	}
	m := manifest.Manifest{
		Kind: "chaos",
		Grid: manifest.Grid{
			Algorithms: cli.SplitList(*algosFlag),
			Scenarios:  scenarios,
			Nodes:      []int{*nodes},
			Sizes:      manifest.Sizes{*msg},
		},
		Seed: seed,
	}
	c.apply(&m)
	return execute("chaos", m, diagnostics{trace: *tracePath, cpuprofile: c.cpuprofile}, stdout, stderr)
}

// runTrain is the training-workload shim (was cmd/trainbench).
func runTrain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repro train", flag.ContinueOnError)
	workloadsFlag := fs.String("workloads", "fsdp-ring,fsdp-inc", "comma list of workload presets to run, or \"all\"")
	nodes := fs.Int("nodes", 16, "hosts per job (>= 2)")
	shard := fs.Int("shard", 512<<10, "per-rank shard/segment bytes (> 0)")
	layers := fs.Int("layers", 6, "FSDP model depth (> 0)")
	computeUS := fs.Int("compute", 150, "forward+backward compute per layer in microseconds (>= 0)")
	jobs := fs.Int("jobs", 2, "tenant count of multi-job presets (> 0)")
	scenariosFlag := fs.String("scenarios", "", "comma list of scenario presets to compose onto the step, or \"all\" (empty: quiet fabric)")
	seed := fs.Uint64("seed", 21, "base sweep seed (per-point seeds derive from it)")
	comparePath := fs.String("compare", "", "baseline BENCH_*.json to diff the records against")
	tol := fs.Float64("tol", 0.05, "relative tolerance for -compare")
	tracePath := fs.String("trace", "", "write the Figure-9 protocol phase timeline of one representative run to this file")
	var c common
	c.register(fs, 0)
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	checks := append(c.validate(),
		cli.Positive("layers", *layers),
		cli.NonNegative("compute", *computeUS),
		cli.Positive("jobs", *jobs),
		cli.Writable("trace", *tracePath))
	if err := cli.Validate("train", checks...); err != nil {
		return fail(stderr, 2, "%v", err)
	}
	workloads := []string{"all"}
	if *workloadsFlag != "all" {
		workloads = cli.SplitList(*workloadsFlag)
	}
	var scenarios []string
	switch *scenariosFlag {
	case "":
	case "all":
		scenarios = []string{"all"}
	default:
		scenarios = cli.SplitList(*scenariosFlag)
	}
	m := manifest.Manifest{
		Kind: "train",
		Grid: manifest.Grid{
			Workloads: workloads,
			Scenarios: scenarios,
			Nodes:     []int{*nodes},
			Sizes:     manifest.Sizes{*shard},
		},
		Seed:  seed,
		Train: &manifest.TrainSpec{Layers: *layers, ComputeUS: *computeUS, Jobs: *jobs},
	}
	if *comparePath != "" {
		m.Baseline = &manifest.Baseline{Path: *comparePath, Tolerance: *tol}
	}
	c.apply(&m)
	return execute("train", m, diagnostics{trace: *tracePath, cpuprofile: c.cpuprofile}, stdout, stderr)
}
