package command

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cli"
	"repro/internal/telemetry"
)

// runTraceCmd implements `repro trace [-top N] <metrics.json>`: load a
// canonical telemetry document and summarize it — per-subsystem totals
// plus the busiest fabric channels by serialization busy-time. The
// summary is a pure function of the document, so it is as deterministic
// as the document itself.
func runTraceCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repro trace", flag.ContinueOnError)
	top := fs.Int("top", 5, "busiest channels to list (> 0)")
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() != 1 {
		return fail(stderr, 2, "usage: repro trace [-top N] <metrics.json>")
	}
	if err := cli.Validate("trace", cli.Positive("top", *top)); err != nil {
		return fail(stderr, 2, "%v", err)
	}
	doc, err := telemetry.LoadDocument(fs.Arg(0))
	if err != nil {
		return fail(stderr, 1, "trace: %v", err)
	}
	summarizeDocument(stdout, doc, *top)
	return 0
}

// subsystemTotals aggregates one subsystem's metrics across every point.
type subsystemTotals struct {
	metrics      int
	counterTotal uint64
	gaugeSamples int
	observations uint64
}

// summarizeDocument renders the per-subsystem rollup and the top-N
// busiest channels of a metrics document.
func summarizeDocument(w io.Writer, doc telemetry.Document, top int) {
	totals := map[string]*subsystemTotals{}
	busy := map[string]uint64{}
	const busyPrefix = "fabric/channel_busy_ns{"
	nMetrics := 0
	for _, p := range doc.Points {
		for _, m := range p.Metrics {
			nMetrics++
			sub := m.Key
			if i := strings.IndexByte(sub, '/'); i >= 0 {
				sub = sub[:i]
			}
			t := totals[sub]
			if t == nil {
				t = &subsystemTotals{}
				totals[sub] = t
			}
			t.metrics++
			switch m.Type {
			case "counter":
				t.counterTotal += m.Value
			case "gauge":
				t.gaugeSamples += len(m.Samples)
			case "histogram":
				t.observations += m.Count
			}
			if strings.HasPrefix(m.Key, busyPrefix) && strings.HasSuffix(m.Key, "}") {
				label := m.Key[len(busyPrefix) : len(m.Key)-1]
				busy[label] += m.Value
			}
		}
	}
	fmt.Fprintf(w, "%s: %d points, %d metrics\n", doc.Name, len(doc.Points), nMetrics)
	subs := make([]string, 0, len(totals))
	for s := range totals {
		subs = append(subs, s)
	}
	sort.Strings(subs)
	for _, s := range subs {
		t := totals[s]
		fmt.Fprintf(w, "  %-10s %4d metrics  counter-total %-12d gauge-samples %-6d histogram-obs %d\n",
			s, t.metrics, t.counterTotal, t.gaugeSamples, t.observations)
	}
	if len(busy) == 0 {
		return
	}
	type chBusy struct {
		label string
		ns    uint64
	}
	chans := make([]chBusy, 0, len(busy))
	for l, ns := range busy {
		chans = append(chans, chBusy{l, ns})
	}
	sort.Slice(chans, func(i, j int) bool {
		if chans[i].ns != chans[j].ns {
			return chans[i].ns > chans[j].ns
		}
		return chans[i].label < chans[j].label
	})
	if top > len(chans) {
		top = len(chans)
	}
	fmt.Fprintf(w, "top %d busiest channels (serialization busy-time):\n", top)
	for _, c := range chans[:top] {
		fmt.Fprintf(w, "  %-28s %.3f ms\n", c.label, float64(c.ns)/1e6)
	}
}
