package command

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/harness"
	"repro/internal/manifest"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// runReplay implements `repro replay [-interval US] [-at US] [-steps N]
// <manifest>`: compile the manifest, pick its replayable point (the quiet
// collective cell the plan designates), run it once under the replay
// debugger — snapshotting the full simulation state every -interval of
// virtual time — then seek to -at and print the next -steps events. The
// output is deterministic: the stepped events are exactly the events the
// original run fired at that position.
func runReplay(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repro replay", flag.ContinueOnError)
	interval := fs.Int("interval", 100, "waypoint spacing in virtual microseconds (> 0)")
	at := fs.Int("at", 0, "seek target in virtual microseconds (>= 0; clamps to the end of the run)")
	steps := fs.Int("steps", 20, "events to print after the seek (> 0)")
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() != 1 {
		return fail(stderr, 2, "usage: repro replay [-interval US] [-at US] [-steps N] <manifest>")
	}
	if *interval <= 0 || *at < 0 || *steps <= 0 {
		return fail(stderr, 2, "replay: -interval and -steps must be > 0, -at >= 0")
	}
	m, err := manifest.ParseFile(fs.Arg(0))
	if err != nil {
		return fail(stderr, 2, "replay: %v", err)
	}
	plan, err := manifest.Compile(m)
	if err != nil {
		return fail(stderr, 2, "replay: %v", err)
	}
	if plan.ReplaySpec == nil {
		return fail(stderr, 2, "replay: kind %s has no replayable point", m.Kind)
	}
	// The replay driver steps a single serial engine and rewinds model
	// state in place, so the manifest's shard count and telemetry block do
	// not apply to this run.
	harness.SetShards(1)
	harness.SetTelemetry(telemetry.Config{})
	cfg := harness.ReplayConfig{
		Interval: sim.Time(*interval) * sim.Microsecond,
		At:       sim.Time(*at) * sim.Microsecond,
		Steps:    *steps,
	}
	if err := harness.Replay(*plan.ReplaySpec, cfg, stdout); err != nil {
		return fail(stderr, 1, "replay: %v", err)
	}
	fmt.Fprintln(stdout, "# replay done")
	return 0
}
