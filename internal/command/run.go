package command

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cli"
	"repro/internal/manifest"
	"repro/internal/registry"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// runManifest implements `repro run <manifest...>`: parse each document,
// fold in any command-line overrides, and execute them in order, stopping
// at the first failure. With several manifests the per-file output flags
// (-json, -csv, -metrics, -perfetto, -trace) would silently overwrite one
// another, so they are rejected; -o DIR redirects every file a manifest
// declares into DIR instead, preserving basenames, which is how a batch
// (e.g. the CI matrix) lands its artifacts side by side.
func runManifest(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repro run", flag.ContinueOnError)
	comparePath := fs.String("compare", "", "override the manifest baseline path")
	tol := fs.Float64("tol", -1, "override the manifest baseline tolerance (>= 0)")
	tracePath := fs.String("trace", "", "write the Figure-9 protocol phase timeline of one representative run to this file")
	outDir := fs.String("o", "", "redirect every output file the manifests declare into this directory (created if missing)")
	var c common
	c.register(fs, -1)
	// Stdlib flag parsing stops at the first positional argument; re-parse
	// the remainder so `repro run manifests/pr.json -json out.json` works
	// as naturally as flags-first order.
	fs.SetOutput(stderr)
	var paths []string
	rest := args
	for {
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if fs.NArg() == 0 {
			break
		}
		paths = append(paths, fs.Arg(0))
		rest = fs.Args()[1:]
	}
	if len(paths) == 0 {
		return fail(stderr, 2, "usage: repro run [flags] <manifest...>")
	}
	if len(paths) > 1 {
		for _, f := range []struct{ name, val string }{
			{"json", c.jsonPath}, {"csv", c.csvPath},
			{"metrics", c.metricsPath}, {"perfetto", c.perfettoPath},
			{"trace", *tracePath}, {"compare", *comparePath},
		} {
			if f.val != "" {
				return fail(stderr, 2, "run: -%s names one output file but %d manifests were given; use -o DIR to redirect per-manifest outputs", f.name, len(paths))
			}
		}
	}
	checks := append(c.validate(), cli.Writable("trace", *tracePath))
	if err := cli.Validate("run", checks...); err != nil {
		return fail(stderr, 2, "%v", err)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fail(stderr, 2, "run: -o %s: %v", *outDir, err)
		}
	}
	for _, path := range paths {
		m, err := manifest.ParseFile(path)
		if err != nil {
			return fail(stderr, 2, "run: %v", err)
		}
		if *comparePath != "" {
			if m.Baseline == nil {
				m.Baseline = &manifest.Baseline{}
			}
			m.Baseline.Path = *comparePath
		}
		if *tol >= 0 {
			if m.Baseline == nil {
				return fail(stderr, 2, "run: -tol set but no baseline declared or passed via -compare")
			}
			m.Baseline.Tolerance = *tol
		}
		c.apply(&m)
		if *outDir != "" {
			redirectOutputs(&m, *outDir)
		}
		if len(paths) > 1 {
			fmt.Fprintf(stdout, "== %s\n", path)
		}
		if code := execute("run", m, diagnostics{trace: *tracePath, cpuprofile: c.cpuprofile}, stdout, stderr); code != 0 {
			return code
		}
	}
	return 0
}

// redirectOutputs rebases every output file the manifest declares into
// dir, keeping the basename. Digest expectations are untouched: the bytes
// do not depend on where they land.
func redirectOutputs(m *manifest.Manifest, dir string) {
	rebase := func(p *string) {
		if *p != "" {
			*p = filepath.Join(dir, filepath.Base(*p))
		}
	}
	rebase(&m.Output.JSON)
	rebase(&m.Output.CSV)
	if m.Telemetry != nil {
		rebase(&m.Telemetry.Metrics)
		rebase(&m.Telemetry.Perfetto)
	}
}

// manifestExts are the filename extensions expandManifestDirs collects.
var manifestExts = map[string]bool{".json": true, ".yaml": true, ".yml": true}

// expandManifestDirs replaces each directory argument with the manifest
// files directly inside it (*.json, *.yaml, *.yml; sorted, non-recursive),
// so `repro validate manifests` covers the whole tree without the caller
// hand-listing files — and without a stale shell glob silently skipping a
// newly added manifest.
func expandManifestDirs(paths []string) ([]string, error) {
	var out []string
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			out = append(out, p)
			continue
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, e := range entries {
			if e.IsDir() || !manifestExts[filepath.Ext(e.Name())] {
				continue
			}
			out = append(out, filepath.Join(p, e.Name()))
			n++
		}
		if n == 0 {
			return nil, fmt.Errorf("%s: directory holds no manifests (*.json, *.yaml, *.yml)", p)
		}
	}
	return out, nil
}

// artifactBasenames lists the basenames of every output file a manifest
// declares. Basenames, not paths: -o DIR rebases outputs by basename, so
// that is the granularity at which a batch can collide.
func artifactBasenames(m *manifest.Manifest) []string {
	var out []string
	add := func(p string) {
		if p != "" {
			out = append(out, filepath.Base(p))
		}
	}
	add(m.Output.JSON)
	add(m.Output.CSV)
	if m.Telemetry != nil {
		add(m.Telemetry.Metrics)
		add(m.Telemetry.Perfetto)
	}
	return out
}

// runValidate implements `repro validate <manifest-or-dir...>`: parse and
// compile every named manifest without executing anything, reporting all
// failures before exiting. Directory arguments expand to the manifests
// inside them. Duplicates across the set are rejected: two manifests may
// share a report name only if they write disjoint artifacts (the
// determinism-twin pattern — the same experiment at different -workers or
// -shards, byte-compared by CI), and no two manifests may declare the same
// output basename, which would silently overwrite when a batch runs them
// into one -o directory.
func runValidate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repro validate", flag.ContinueOnError)
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() == 0 {
		return fail(stderr, 2, "usage: repro validate <manifest-or-dir...>")
	}
	paths, err := expandManifestDirs(fs.Args())
	if err != nil {
		return fail(stderr, 2, "validate: %v", err)
	}
	bad := 0
	bareNames := make(map[string]string, len(paths)) // artifact-less name -> first path
	artifacts := make(map[string]string, len(paths)) // output basename -> first path
	for _, path := range paths {
		m, err := manifest.ParseFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", path, err)
			bad++
			continue
		}
		plan, err := manifest.Compile(m)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", path, err)
			bad++
			continue
		}
		outs := artifactBasenames(&m)
		dup := false
		if len(outs) == 0 {
			if first, ok := bareNames[plan.Name]; ok {
				fmt.Fprintf(stderr, "%s: duplicate manifest name %q (also %s); manifests without outputs must have distinct names\n",
					path, plan.Name, first)
				dup = true
			} else {
				bareNames[plan.Name] = path
			}
		}
		for _, o := range outs {
			if first, ok := artifacts[o]; ok {
				fmt.Fprintf(stderr, "%s: duplicate output artifact %q (also declared by %s)\n", path, o, first)
				dup = true
			} else {
				artifacts[o] = path
			}
		}
		if dup {
			bad++
			continue
		}
		points := 0
		for _, sec := range plan.Sections {
			points += len(sec.Specs)
		}
		fmt.Fprintf(stdout, "ok %s: kind=%s name=%s sections=%d points=%d\n",
			path, m.Kind, plan.Name, len(plan.Sections), points)
	}
	if bad > 0 {
		return fail(stderr, 2, "validate: %d of %d manifests invalid", bad, len(paths))
	}
	return 0
}

// runList implements `repro list`: print everything a manifest author can
// reference — kinds, registry algorithms, scenario and workload presets,
// and the analytic figure/table selectors.
func runList(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repro list", flag.ContinueOnError)
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() != 0 {
		return fail(stderr, 2, "usage: repro list")
	}
	fmt.Fprintf(stdout, "kinds:       %s\n", strings.Join(manifest.Kinds, " "))
	fmt.Fprintf(stdout, "algorithms:  %s\n", strings.Join(registry.Names(), " "))
	fmt.Fprintf(stdout, "scenarios:   %s\n", strings.Join(scenario.Names(), " "))
	fmt.Fprintf(stdout, "workloads:   %s\n", strings.Join(workload.Names(), " "))
	fmt.Fprintf(stdout, "dpa:         figures 5 13 14 15 16, tables 1\n")
	fmt.Fprintf(stdout, "cost:        figures 2 7, studies speedup economics\n")
	fmt.Fprintf(stdout, "ag:          figures 10 11\n")
	return 0
}
