package command

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// osuMetricsArgs builds the fixed small OSU invocation the telemetry
// determinism tests share, writing metrics.json to path.
func osuMetricsArgs(path string, extra ...string) []string {
	args := []string{"osu", "-nodes", "8", "-sizes", "65536", "-iters", "2", "-metrics", path}
	return append(args, extra...)
}

// TestMetricsByteIdentity is the telemetry half of the determinism
// contract: the canonical metrics.json must be byte-identical at every
// -workers and -shards value, and must match the checked-in golden — so
// any drift in an instrumented counter is a reviewed diff, not silent
// noise.
func TestMetricsByteIdentity(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "metrics_osu8.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	configs := map[string][]string{
		"default": nil,
		"w1":      {"-workers", "1"},
		"w4":      {"-workers", "4"},
		"shards1": {"-shards", "1"},
		"shards4": {"-shards", "4"},
	}
	for name, extra := range configs {
		path := filepath.Join(dir, name+".json")
		if code, _, errOut := run(osuMetricsArgs(path, extra...)...); code != 0 {
			t.Fatalf("%s: exit %d: %s", name, code, errOut)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(golden) {
			t.Errorf("%s: metrics.json differs from testdata/metrics_osu8.golden.json", name)
		}
	}
}

// TestPerfettoDeterministic pins the trace export: the same invocation
// produces byte-identical Perfetto JSON, and the document is well-formed
// enough to carry both protocol slices and counter tracks.
func TestPerfettoDeterministic(t *testing.T) {
	dir := t.TempDir()
	var traces [2][]byte
	for i := range traces {
		path := filepath.Join(dir, "trace"+string(rune('0'+i))+".json")
		args := []string{"osu", "-nodes", "8", "-sizes", "65536", "-iters", "2", "-perfetto", path}
		if code, _, errOut := run(args...); code != 0 {
			t.Fatalf("run %d: exit %d: %s", i, code, errOut)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		traces[i] = b
	}
	if string(traces[0]) != string(traces[1]) {
		t.Fatal("two identical runs produced different Perfetto traces")
	}
	s := string(traces[0])
	for _, want := range []string{`"traceEvents"`, `"displayTimeUnit": "ns"`, `"ph": "X"`, `"ph": "C"`} {
		if !strings.Contains(s, want) {
			t.Errorf("Perfetto trace missing %s", want)
		}
	}
}

// TestTraceSubcommand covers `repro trace`: summarizing a metrics.json
// written by a run, plus its flag validation.
func TestTraceSubcommand(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	if code, _, errOut := run(osuMetricsArgs(path)...); code != 0 {
		t.Fatalf("osu: %s", errOut)
	}
	code, out, errOut := run("trace", "-top", "3", path)
	if code != 0 {
		t.Fatalf("trace: exit %d: %s", code, errOut)
	}
	for _, want := range []string{"osu-mcast-allgather", "fabric", "verbs", "busiest channels"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace summary missing %q in:\n%s", want, out)
		}
	}

	if code, _, _ := run("trace"); code != 2 {
		t.Errorf("trace without a path: exit %d, want 2", code)
	}
	if code, _, _ := run("trace", "-top", "0", path); code != 2 {
		t.Errorf("trace -top 0: exit %d, want 2", code)
	}
	if code, _, _ := run("trace", filepath.Join(t.TempDir(), "missing.json")); code != 1 {
		t.Errorf("trace on a missing file: exit %d, want 1", code)
	}
}

// TestTelemetryDigestGate pins the exit-1 behaviour of a wrong
// telemetry.expect_sha256.
func TestTelemetryDigestGate(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "m.json")
	doc := `{
  "kind": "osu",
  "grid": {
    "algorithms": ["mcast-allgather"],
    "ops": ["allgather"],
    "nodes": [8],
    "sizes": [65536]
  },
  "osu": {"iters": 2},
  "telemetry": {
    "metrics": "` + filepath.Join(dir, "metrics.json") + `",
    "expect_sha256": "0000000000000000000000000000000000000000000000000000000000000000"
  }
}`
	if err := os.WriteFile(manifest, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := run("run", manifest)
	if code != 1 || !strings.Contains(errOut, "telemetry.expect_sha256") {
		t.Fatalf("wrong metrics digest: exit %d (%s), want 1 with a digest message", code, errOut)
	}
}
