package command

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/manifest"
)

// run invokes the dispatcher and returns (exit code, stdout, stderr).
func run(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := Run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestExitCodes is the table test over the unified flag-validation
// convention: exit 2 for anything rejected before the simulation starts,
// on every subcommand — including the output-path checks trafficbench
// historically lacked.
func TestExitCodes(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope", "out.json")
	cases := []struct {
		name string
		args []string
		want int
		err  string // substring expected on stderr ("" = don't check)
	}{
		{"no args", nil, 2, "usage"},
		{"unknown subcommand", []string{"frobnicate"}, 2, "unknown subcommand"},
		{"help", []string{"help"}, 0, ""},
		{"bad flag", []string{"osu", "-no-such-flag"}, 2, ""},

		{"osu bad nodes", []string{"osu", "-nodes", "0"}, 2, "[1,188]"},
		{"osu bad iters", []string{"osu", "-iters", "0"}, 2, "-iters must be positive"},
		{"osu bad sizes", []string{"osu", "-sizes", "banana"}, 2, "bad size"},
		{"osu bad algo", []string{"osu", "-algo", "nope"}, 2, "unknown algorithm"},
		{"osu unregistered combo", []string{"osu", "-algo", "bruck", "-op", "broadcast"}, 2, "unknown algorithm"},
		{"osu bad json dir", []string{"osu", "-json", missing}, 2, "does not exist"},
		{"osu bad workers", []string{"osu", "-workers", "-2"}, 2, "-workers must be >= 0"},
		{"osu bad shards", []string{"osu", "-shards", "0"}, 2, "-shards must be positive"},

		{"chaos bad scenario", []string{"chaos", "-scenarios", "hurricane"}, 2, "hurricane"},
		{"chaos bad json dir", []string{"chaos", "-json", missing}, 2, "does not exist"},

		{"train bad layers", []string{"train", "-layers", "0"}, 2, "-layers must be positive"},
		{"train bad workload", []string{"train", "-workloads", "nope"}, 2, "unknown workload"},
		{"train bad json dir", []string{"train", "-json", missing}, 2, "does not exist"},

		{"traffic bad nodes", []string{"traffic", "-nodes", "1"}, 2, "[2,188]"},
		{"traffic bad iters", []string{"traffic", "-iters", "0"}, 2, "-iters must be positive"},
		{"traffic bad json dir", []string{"traffic", "-json", missing}, 2, "does not exist"},
		{"traffic bad csv dir", []string{"traffic", "-csv", missing}, 2, "does not exist"},

		{"ag no fig", []string{"ag"}, 2, "exactly one figure"},
		{"ag bad fig", []string{"ag", "-fig", "12"}, 2, "exactly one figure"},
		{"ag bad json dir", []string{"ag", "-fig", "10", "-json", missing}, 2, "does not exist"},

		{"dpa nothing selected", []string{"dpa"}, 2, "figures, tables or all"},
		{"dpa bad fig", []string{"dpa", "-fig", "6"}, 2, "no figure 6"},
		{"dpa bad json dir", []string{"dpa", "-fig", "5", "-json", missing}, 2, "does not exist"},

		{"cost nothing selected", []string{"cost"}, 2, "figures, speedup, economics or all"},
		{"cost bad fig", []string{"cost", "-fig", "3"}, 2, "no figure 3"},
		{"cost bad json dir", []string{"cost", "-fig", "2", "-json", missing}, 2, "does not exist"},

		{"run no manifest", []string{"run"}, 2, "usage"},
		{"run missing file", []string{"run", filepath.Join(t.TempDir(), "absent.json")}, 2, ""},
		{"validate no args", []string{"validate"}, 2, "usage"},
		{"list extra args", []string{"list", "x"}, 2, "usage"},
	}
	for _, c := range cases {
		code, _, stderr := run(c.args...)
		if code != c.want {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", c.name, code, c.want, stderr)
			continue
		}
		if c.err != "" && !strings.Contains(stderr, c.err) {
			t.Errorf("%s: stderr %q does not contain %q", c.name, stderr, c.err)
		}
	}
}

func TestListAndHelp(t *testing.T) {
	code, out, _ := run("list")
	if code != 0 {
		t.Fatalf("list: exit %d", code)
	}
	for _, want := range []string{"kinds:", "mcast-allgather", "quiet", "fsdp-ring"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}
	code, out, _ = run("help")
	if code != 0 || !strings.Contains(out, "byte-identical") {
		t.Fatalf("help: exit %d, out %q", code, out)
	}
}

func TestValidateSubcommand(t *testing.T) {
	good := filepath.Join("..", "..", "manifests", "pr.json")
	code, out, _ := run("validate", good)
	if code != 0 || !strings.Contains(out, "ok "+good) {
		t.Fatalf("validate %s: exit %d, out %q", good, code, out)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"kind":"dpa","all":true,"seed":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := run("validate", good, bad)
	if code != 2 || !strings.Contains(stderr, "1 of 2 manifests invalid") {
		t.Fatalf("validate with one bad manifest: exit %d, stderr %q", code, stderr)
	}
}

// TestValidateDirectories covers the directory form of `repro validate`:
// a directory argument expands to the manifests inside it, an empty
// directory is an error, and the whole shipping tree — including the
// determinism twins that share report names by design — validates clean.
func TestValidateDirectories(t *testing.T) {
	tree := filepath.Join("..", "..", "manifests")
	code, out, stderr := run("validate", tree)
	if code != 0 {
		t.Fatalf("validate %s: exit %d, stderr %q", tree, code, stderr)
	}
	for _, want := range []string{
		"ok " + filepath.Join(tree, "pr.json"),
		"ok " + filepath.Join(tree, "chaos-warm.json"),
		"ok " + filepath.Join(tree, "telemetry-w1.json"),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("directory expansion missing %q in:\n%s", want, out)
		}
	}

	if code, _, stderr := run("validate", t.TempDir()); code != 2 ||
		!strings.Contains(stderr, "directory holds no manifests") {
		t.Errorf("empty directory: exit %d, stderr %q", code, stderr)
	}
}

// TestValidateDuplicates pins the two rejection rules of the batch form:
// two manifests may never declare the same output basename (a -o DIR
// batch would silently overwrite), and manifests without any outputs must
// carry distinct report names.
func TestValidateDuplicates(t *testing.T) {
	dir := t.TempDir()
	a := smallOSUManifest(t, dir, "a.json", "SAME.json", "")
	b := smallOSUManifest(t, dir, "b.json", "SAME.json", "")
	code, _, stderr := run("validate", a, b)
	if code != 2 || !strings.Contains(stderr, `duplicate output artifact "SAME.json"`) {
		t.Errorf("colliding artifact: exit %d, stderr %q", code, stderr)
	}

	// Same grid, no outputs: both derive the name osu-mcast-allgather.
	bare1 := smallOSUManifest(t, dir, "bare1.json", "", "")
	bare2 := smallOSUManifest(t, dir, "bare2.json", "", "")
	code, _, stderr = run("validate", bare1, bare2)
	if code != 2 || !strings.Contains(stderr, "duplicate manifest name") {
		t.Errorf("duplicate bare name: exit %d, stderr %q", code, stderr)
	}

	// Shared name is fine once each declares its own artifact — the
	// determinism-twin pattern.
	c := smallOSUManifest(t, dir, "c.json", "C.json", "")
	d := smallOSUManifest(t, dir, "d.json", "D.json", "")
	if code, _, stderr := run("validate", c, d); code != 0 {
		t.Errorf("twins with disjoint artifacts: exit %d, stderr %q", code, stderr)
	}
}

// TestManifestShardMatrix runs the three shipping manifest families that
// exercise distinct stacks — pr (OSU collectives, partitioned), chaos
// (scenario kernel with the partitioned quiet anchor), train (workload
// DAGs, confined) — at every shard count in the acceptance matrix. Each
// manifest declares its expect.sha256, so a zero exit IS the byte-identity
// assertion; the digest-confirmation line is checked anyway so a manifest
// that silently loses its expect block fails loudly.
func TestManifestShardMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("nine multi-second sweeps; skipped with -short")
	}
	for _, name := range []string{"pr.json", "chaos.json", "train.json"} {
		src, err := filepath.Abs(filepath.Join("..", "..", "manifests", name))
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []string{"1", "2", "8"} {
			code, stdout, stderr := run("run", "-shards", shards, "-o", t.TempDir(), src)
			if code != 0 {
				t.Fatalf("%s -shards %s: exit %d, stderr %s", name, shards, code, stderr)
			}
			if !strings.Contains(stdout, "digest matches expect.sha256") {
				t.Fatalf("%s -shards %s: stdout does not confirm the digest:\n%s", name, shards, stdout)
			}
		}
	}
}

// smallOSUManifest writes a fast single-point osu manifest to dir and
// returns its path. json names the declared output file (relative paths
// land in the process working directory unless redirected with -o);
// digest pins expect.sha256 when non-empty.
func smallOSUManifest(t *testing.T, dir, name, json, digest string) string {
	t.Helper()
	m := manifest.Manifest{
		Kind: "osu",
		Grid: manifest.Grid{
			Algorithms: []string{"mcast-allgather"},
			Nodes:      []int{4},
			Sizes:      manifest.Sizes{4096},
		},
		OSU:    &manifest.OSUSpec{Iters: 1},
		Output: manifest.Output{JSON: json},
	}
	if digest != "" {
		m.Expect = &manifest.Expect{SHA256: digest}
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, m.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunMultiManifest is the table test over the batch form of `repro
// run`: several manifests execute in order, -o redirects their declared
// outputs into one directory, per-file output flags are rejected as
// ambiguous, and the batch stops at the first failing manifest.
func TestRunMultiManifest(t *testing.T) {
	dir := t.TempDir()
	a := smallOSUManifest(t, dir, "a.json", "A.json", "")
	b := smallOSUManifest(t, dir, "b.json", "B.json", "")
	bad := smallOSUManifest(t, dir, "bad.json", "BAD.json", strings.Repeat("0", 64))

	cases := []struct {
		name    string
		args    []string
		want    int
		err     string   // substring expected on stderr
		present []string // files expected under out/ afterwards
		absent  []string
	}{
		{"batch with -o", []string{"run", "-o", filepath.Join(dir, "out"), a, b}, 0, "",
			[]string{"A.json", "B.json"}, nil},
		{"single with -o", []string{"run", "-o", filepath.Join(dir, "solo"), a}, 0, "",
			nil, nil},
		{"json flag ambiguous", []string{"run", "-json", filepath.Join(dir, "x.json"), a, b}, 2,
			"-json names one output file", nil, nil},
		{"csv flag ambiguous", []string{"run", "-csv", filepath.Join(dir, "x.csv"), a, b}, 2,
			"-csv names one output file", nil, nil},
		{"trace flag ambiguous", []string{"run", "-trace", filepath.Join(dir, "x.txt"), a, b}, 2,
			"-trace names one output file", nil, nil},
		{"stops at first failure", []string{"run", "-o", filepath.Join(dir, "stop"), bad, b}, 1,
			"does not match expect.sha256", []string{}, []string{"B.json"}},
	}
	for _, c := range cases {
		code, stdout, stderr := run(c.args...)
		if code != c.want {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", c.name, code, c.want, stderr)
			continue
		}
		if c.err != "" && !strings.Contains(stderr, c.err) {
			t.Errorf("%s: stderr %q does not contain %q", c.name, stderr, c.err)
		}
		outDir := c.args[2] // every case passes a value right after the first flag
		for _, f := range c.present {
			if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
				t.Errorf("%s: expected output %s: %v", c.name, f, err)
			}
		}
		for _, f := range c.absent {
			if _, err := os.Stat(filepath.Join(outDir, f)); err == nil {
				t.Errorf("%s: output %s exists but the batch should have stopped before it", c.name, f)
			}
		}
		if code == 0 && len(c.present) > 0 && !strings.Contains(stdout, "== "+a) {
			t.Errorf("%s: stdout missing per-manifest header:\n%s", c.name, stdout)
		}
	}
	// A batch header is noise for the single-manifest form.
	if _, stdout, _ := run("run", "-o", filepath.Join(dir, "solo2"), a); strings.Contains(stdout, "== ") {
		t.Errorf("single manifest run prints a batch header:\n%s", stdout)
	}
}

// TestDigestMismatchExitsOne pins the runtime-failure exit code: a run
// whose bytes do not match the declared expect.sha256 fails with 1.
func TestDigestMismatchExitsOne(t *testing.T) {
	tmp := t.TempDir()
	m := manifest.Manifest{
		Kind: "osu",
		Grid: manifest.Grid{
			Algorithms: []string{"mcast-allgather"},
			Nodes:      []int{4},
			Sizes:      manifest.Sizes{4096},
		},
		OSU:    &manifest.OSUSpec{Iters: 1},
		Expect: &manifest.Expect{SHA256: strings.Repeat("0", 64)},
	}
	path := filepath.Join(tmp, "m.json")
	if err := os.WriteFile(path, m.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := run("run", path)
	if code != 1 || !strings.Contains(stderr, "does not match expect.sha256") {
		t.Fatalf("digest mismatch: exit %d, stderr %q", code, stderr)
	}
}

// TestGoldenPRManifest pins the CI pr leg end to end: `repro run
// manifests/pr.json` must reproduce the historical cmd/osu BENCH_pr.json
// bytes, whose digest is declared in the manifest itself. The twin
// manifests carry the same digest, so worker- and shard-count determinism
// ride on the same pin.
func TestGoldenPRManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep; skipped with -short")
	}
	src, err := filepath.Abs(filepath.Join("..", "..", "manifests", "pr.json"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := manifest.ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Expect == nil {
		t.Fatal("manifests/pr.json declares no expect.sha256")
	}
	out := filepath.Join(t.TempDir(), "BENCH_pr.json")
	code, stdout, stderr := run("run", "-json", out, src)
	if code != 0 {
		t.Fatalf("repro run: exit %d, stderr %s", code, stderr)
	}
	if !strings.Contains(stdout, "digest matches expect.sha256") {
		t.Fatalf("stdout does not confirm the digest:\n%s", stdout)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	if got := hex.EncodeToString(sum[:]); got != m.Expect.SHA256 {
		t.Fatalf("BENCH_pr.json digest %s, manifest expects %s", got, m.Expect.SHA256)
	}
}
