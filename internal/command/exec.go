package command

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/harness"
	"repro/internal/manifest"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// common is the flag surface shared by every subcommand that executes a
// plan: output targets, pool/engine sizing, telemetry, and diagnostics.
type common struct {
	jsonPath     string
	csvPath      string
	workers      int
	shards       int
	cpuprofile   string
	telemetry    bool
	metricsPath  string
	perfettoPath string
}

// registerCommon adds the shared flags to a subcommand's FlagSet. The
// workers default differs per caller (-1 on `run` means "use the
// manifest's value"; 0 on the shims is the historical GOMAXPROCS
// default).
func (c *common) register(fs *flag.FlagSet, workersDefault int) {
	fs.StringVar(&c.jsonPath, "json", "", "write sweep records as JSON to this path")
	fs.StringVar(&c.csvPath, "csv", "", "write sweep records as CSV to this path")
	fs.IntVar(&c.workers, "workers", workersDefault, "sweep worker goroutines (0 = GOMAXPROCS)")
	fs.IntVar(&c.shards, "shards", 1, "engine shards for conservative parallel execution (1 = serial; results are identical at any value)")
	fs.StringVar(&c.cpuprofile, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.BoolVar(&c.telemetry, "telemetry", false, "collect the deterministic metrics registry during the sweep")
	fs.StringVar(&c.metricsPath, "metrics", "", "write canonical telemetry metrics.json to this path (implies -telemetry)")
	fs.StringVar(&c.perfettoPath, "perfetto", "", "write a Perfetto/Chrome trace of the representative run to this path (implies -telemetry)")
}

// validate is the shared exit-code-2 gate for the common flags. A
// workers value of -1 is the `run` sentinel for "defer to the manifest"
// and passes.
func (c *common) validate() []error {
	checks := []error{
		cli.Positive("shards", c.shards),
		cli.Writable("json", c.jsonPath),
		cli.Writable("csv", c.csvPath),
		cli.Writable("cpuprofile", c.cpuprofile),
		cli.Writable("metrics", c.metricsPath),
		cli.Writable("perfetto", c.perfettoPath),
	}
	if c.workers != -1 {
		checks = append(checks, cli.NonNegative("workers", c.workers))
	}
	return checks
}

// apply folds the common flags into the manifest.
func (c *common) apply(m *manifest.Manifest) {
	if c.jsonPath != "" {
		m.Output.JSON = c.jsonPath
	}
	if c.csvPath != "" {
		m.Output.CSV = c.csvPath
	}
	if c.workers >= 0 {
		m.Workers = c.workers
	}
	if c.shards > 1 || m.Shards == 0 {
		m.Shards = c.shards
	}
	if c.telemetry || c.metricsPath != "" || c.perfettoPath != "" {
		if m.Telemetry == nil {
			m.Telemetry = &manifest.TelemetrySpec{}
		}
		if c.metricsPath != "" {
			m.Telemetry.Metrics = c.metricsPath
		}
		if c.perfettoPath != "" {
			m.Telemetry.Perfetto = c.perfettoPath
		}
	}
}

// parseFlags runs fs over args, mapping a parse failure to exit code 2.
// The -1 return means "continue".
func parseFlags(fs *flag.FlagSet, args []string, stderr io.Writer) int {
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	return -1
}

// fail prints a subcommand error and returns the given code.
func fail(stderr io.Writer, code int, format string, args ...interface{}) int {
	fmt.Fprintf(stderr, format+"\n", args...)
	return code
}

// diagnostics carries the run-scoped paths that never belong in a
// manifest document: the protocol-trace destination and the CPU profile.
type diagnostics struct {
	trace      string
	cpuprofile string
}

// execute is the single run path behind `repro run` and all seven shims:
// compile the manifest, configure the engine shard count, run the plan,
// persist/compare/verify the report, and optionally write a protocol
// trace. Exit codes follow the repository convention (2 invalid spec,
// 1 runtime failure).
func execute(cmd string, m manifest.Manifest, diag diagnostics, stdout, stderr io.Writer) int {
	plan, err := manifest.Compile(m)
	if err != nil {
		return fail(stderr, 2, "%s: %v", cmd, err)
	}
	needTrace := diag.trace != "" || (m.Telemetry != nil && m.Telemetry.Perfetto != "")
	if needTrace && plan.Trace == nil {
		return fail(stderr, 2, "%s: kind %s has no traceable point", cmd, m.Kind)
	}
	stop, err := cli.StartCPUProfile(diag.cpuprofile)
	if err != nil {
		return fail(stderr, 2, "%s: %v", cmd, err)
	}
	defer stop()
	shards := m.Shards
	if shards < 1 {
		shards = 1
	}
	harness.SetShards(shards)
	var telCfg telemetry.Config
	if m.Telemetry != nil {
		telCfg = telemetry.Config{
			Enabled:      true,
			SamplePeriod: sim.Time(m.Telemetry.SamplePeriodUS) * sim.Microsecond,
			Filters:      m.Telemetry.Filters,
		}
	}
	harness.SetTelemetry(telCfg)
	rep, err := plan.Execute(m.Workers, stdout)
	if err != nil {
		return fail(stderr, 1, "%s: %v", cmd, err)
	}

	// One canonical encoding feeds the file, the digest check and the
	// baseline diff, so they can never disagree about the bytes.
	var buf bytes.Buffer
	if err := sweep.WriteJSON(&buf, rep); err != nil {
		return fail(stderr, 1, "%s: %v", cmd, err)
	}
	if m.Output.JSON != "" {
		if err := os.WriteFile(m.Output.JSON, buf.Bytes(), 0o644); err != nil {
			return fail(stderr, 1, "%s: %v", cmd, err)
		}
	}
	if m.Output.CSV != "" {
		f, err := os.Create(m.Output.CSV)
		if err != nil {
			return fail(stderr, 1, "%s: %v", cmd, err)
		}
		if err := sweep.WriteCSV(f, rep.Records); err != nil {
			f.Close()
			return fail(stderr, 1, "%s: %v", cmd, err)
		}
		if err := f.Close(); err != nil {
			return fail(stderr, 1, "%s: %v", cmd, err)
		}
	}

	// The text timeline and the Perfetto export come from one traced run, so
	// the two renderings can never describe different executions.
	if needTrace {
		bundle, err := plan.Trace()
		if err != nil {
			return fail(stderr, 1, "%s: trace: %v", cmd, err)
		}
		if diag.trace != "" {
			if err := os.WriteFile(diag.trace, []byte(bundle.Timeline()), 0o644); err != nil {
				return fail(stderr, 1, "%s: trace: %v", cmd, err)
			}
		}
		if m.Telemetry != nil && m.Telemetry.Perfetto != "" {
			f, err := os.Create(m.Telemetry.Perfetto)
			if err != nil {
				return fail(stderr, 1, "%s: perfetto: %v", cmd, err)
			}
			if err := bundle.WritePerfetto(f); err != nil {
				f.Close()
				return fail(stderr, 1, "%s: perfetto: %v", cmd, err)
			}
			if err := f.Close(); err != nil {
				return fail(stderr, 1, "%s: perfetto: %v", cmd, err)
			}
		}
	}

	if m.Telemetry != nil && m.Telemetry.Metrics != "" {
		doc := telemetry.Document{Name: rep.Name}
		for i := range rep.Records {
			rec := &rep.Records[i]
			if rec.Telemetry == nil {
				continue
			}
			doc.Points = append(doc.Points, telemetry.Point{
				Key:     rec.Spec.Key(),
				Metrics: rec.Telemetry.Metrics,
			})
		}
		enc := doc.Encode()
		if err := os.WriteFile(m.Telemetry.Metrics, enc, 0o644); err != nil {
			return fail(stderr, 1, "%s: metrics: %v", cmd, err)
		}
		if m.Telemetry.Expect != "" {
			sum := sha256.Sum256(enc)
			got := hex.EncodeToString(sum[:])
			if got != m.Telemetry.Expect {
				return fail(stderr, 1, "%s: metrics digest %s does not match telemetry.expect_sha256 %s", cmd, got, m.Telemetry.Expect)
			}
			fmt.Fprintf(stdout, "# metrics digest matches telemetry.expect_sha256\n")
		}
	}

	if m.Expect != nil {
		sum := sha256.Sum256(buf.Bytes())
		got := hex.EncodeToString(sum[:])
		if got != m.Expect.SHA256 {
			return fail(stderr, 1, "%s: output digest %s does not match expect.sha256 %s", cmd, got, m.Expect.SHA256)
		}
		fmt.Fprintf(stdout, "# output digest matches expect.sha256\n")
	}

	if m.Baseline != nil {
		base, err := sweep.LoadFile(m.Baseline.Path)
		if err != nil {
			return fail(stderr, 1, "%s: %v", cmd, err)
		}
		tol := m.Baseline.Tolerance
		if tol == 0 {
			tol = 0.05
		}
		deltas := sweep.Compare(base, rep, tol)
		fmt.Fprintf(stdout, "# vs %s (tol %.0f%%):\n", m.Baseline.Path, tol*100)
		if err := sweep.WriteDeltas(stdout, deltas); err != nil {
			return fail(stderr, 1, "%s: %v", cmd, err)
		}
		if len(deltas) > 0 {
			return 1
		}
	}
	return 0
}
