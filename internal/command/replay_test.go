package command

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeManifest writes a raw manifest document to dir and returns its path.
func writeManifest(t *testing.T, dir, name, doc string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReplaySubcommand covers `repro replay` end to end on a small OSU
// manifest: the run records waypoints, the seek lands on the requested
// virtual time, the stepped events print, and the output is deterministic
// across invocations (the stepped events are a replay, not a re-run).
func TestReplaySubcommand(t *testing.T) {
	m := smallOSUManifest(t, t.TempDir(), "m.json", "", "")
	args := []string{"replay", "-interval", "5", "-at", "10", "-steps", "8", m}

	code, out, stderr := run(args...)
	if code != 0 {
		t.Fatalf("replay: exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"# replay: mcast-allgather", "waypoints every", "# waypoint 0: t=0 ns", "# seek t=10000 ns", "# replay done"} {
		if !strings.Contains(out, want) {
			t.Errorf("replay output missing %q in:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "seq="); got != 8 {
		t.Errorf("replay printed %d stepped events, want 8:\n%s", got, out)
	}

	_, again, _ := run(args...)
	if again != out {
		t.Errorf("replay is not deterministic:\n--- first\n%s\n--- second\n%s", out, again)
	}
}

// TestReplayFlagValidation pins the exit-2 rejections: bad flag values,
// missing or surplus manifests, and kinds with no replayable point.
func TestReplayFlagValidation(t *testing.T) {
	dir := t.TempDir()
	m := smallOSUManifest(t, dir, "m.json", "", "")
	dpa := writeManifest(t, dir, "dpa.json", `{"kind":"dpa","all":true}`)

	cases := []struct {
		name string
		args []string
		err  string
	}{
		{"no manifest", []string{"replay"}, "usage"},
		{"two manifests", []string{"replay", m, m}, "usage"},
		{"bad interval", []string{"replay", "-interval", "0", m}, "-interval"},
		{"bad steps", []string{"replay", "-steps", "0", m}, "-steps"},
		{"negative at", []string{"replay", "-at", "-1", m}, "-at"},
		{"no replayable point", []string{"replay", dpa}, "no replayable point"},
	}
	for _, c := range cases {
		code, _, stderr := run(c.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", c.name, code, stderr)
			continue
		}
		if !strings.Contains(stderr, c.err) {
			t.Errorf("%s: stderr %q does not contain %q", c.name, stderr, c.err)
		}
	}
}
