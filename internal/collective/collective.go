// Package collective defines the shared vocabulary of every collective
// implementation in this repository: the operation descriptor (Op), the
// unified cross-rank outcome (Result, with the optional per-rank
// critical-path extension RankStats), and the Algorithm interface that the
// multicast protocol (internal/core) and the P2P baselines (internal/coll)
// both satisfy through thin adapters (internal/registry).
//
// The package is a leaf: it depends only on the simulation clock, so both
// protocol layers can share its types without an import cycle.
package collective

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Kind names a collective operation.
type Kind string

// The operations the simulated stacks implement.
const (
	Allgather     Kind = "allgather"
	Broadcast     Kind = "broadcast"
	ReduceScatter Kind = "reduce-scatter"
	Allreduce     Kind = "allreduce"
	Barrier       Kind = "barrier"
)

// KindOfAlgorithm derives the operation kind from a registry algorithm
// name by its suffix ("ring-allgather" -> Allgather) — the naming
// convention every registry entry follows. Shared by the harness kernels
// and the workload engine so op derivation cannot diverge.
func KindOfAlgorithm(algo string) (Kind, error) {
	for _, k := range []Kind{Allgather, Broadcast, ReduceScatter, Allreduce} {
		if strings.HasSuffix(algo, "-"+string(k)) {
			return k, nil
		}
	}
	return "", fmt.Errorf("collective: cannot derive operation from algorithm %q", algo)
}

// Op describes one collective operation, independent of the algorithm that
// executes it.
type Op struct {
	// Kind selects the operation.
	Kind Kind
	// Bytes is the per-rank payload: the contribution size for Allgather
	// and Allreduce, the message size for Broadcast, and the per-rank
	// reduced-shard size for ReduceScatter. Ignored for Barrier.
	Bytes int
	// Root is the broadcasting rank (Broadcast only).
	Root int
}

// Algorithm is one executable collective algorithm bound to a system and a
// set of ranks. Implementations persist transport state (queue pairs,
// registered buffers) across Run calls, so repeated operations measure a
// warm communicator, as OSU-style benchmarks expect.
type Algorithm interface {
	// Name returns the registry name, e.g. "ring-allgather".
	Name() string
	// Supports reports whether Run can execute op on this instance.
	Supports(op Op) bool
	// Run executes op, driving the simulation engine until every rank
	// completes, and returns the unified result.
	Run(op Op) (*Result, error)
}

// Starter is implemented by algorithms that can also run non-blocking, for
// workloads that overlap collectives with compute or with one another
// (e.g. the FSDP pipeline). done fires when every rank has completed; the
// caller drives the engine.
type Starter interface {
	Start(op Op, done func(*Result)) error
}

// RankStats is the optional per-rank extension of a Result: the
// critical-path breakdown the multicast protocol reports (Figure 10).
type RankStats struct {
	Rank int
	// BarrierTime is the RNR-synchronization phase (task start to barrier
	// completion).
	BarrierTime sim.Time
	// McastTime is the multicast datapath phase (barrier completion to the
	// last chunk accounted).
	McastTime sim.Time
	// FinalTime is the completion phase (receive-done to operation done:
	// handshake plus DMA drain plus send-path tail).
	FinalTime sim.Time
	// Total is the end-to-end operation time at this rank.
	Total sim.Time
	// Recovered counts chunks repaired through the slow-path fetch ring.
	Recovered int
	// RNRDrops and Retransmits are transport-level failure counters.
	RNRDrops    uint64
	Retransmits uint64
	// BytesReceived is the payload volume landed in the receive buffer
	// from the network (excludes the local shard copy).
	BytesReceived int
}

// Result is the outcome of one collective across all ranks — the single
// result type shared by the multicast protocol, the P2P baselines, and the
// composed algorithms built on top of them.
type Result struct {
	Kind      string
	Seq       int
	Ranks     int
	SendBytes int
	Start     sim.Time
	End       sim.Time
	// RecvBytes is the per-rank payload received from the network, filled
	// by algorithms that do not track per-rank statistics.
	RecvBytes int
	// PerRank, when present, carries the per-rank critical-path breakdown;
	// AlgBandwidth then averages its BytesReceived fields instead of using
	// RecvBytes.
	PerRank []RankStats
}

// Duration is the global wall-clock (virtual) time of the operation.
func (res *Result) Duration() sim.Time { return res.End - res.Start }

// AlgBandwidth returns the per-rank algorithm bandwidth in bytes/second:
// receive-buffer payload divided by operation time, the metric Figure 11
// plots ("per-process receive throughput").
func (res *Result) AlgBandwidth() float64 {
	if res.Duration() <= 0 {
		return 0
	}
	return res.RecvPerRank() / res.Duration().Seconds()
}

// RecvPerRank returns the per-rank network receive payload in bytes: the
// PerRank average when the extension is present, RecvBytes otherwise.
func (res *Result) RecvPerRank() float64 {
	if len(res.PerRank) == 0 {
		return float64(res.RecvBytes)
	}
	var recv float64
	for _, s := range res.PerRank {
		recv += float64(s.BytesReceived)
	}
	return recv / float64(len(res.PerRank))
}

// MaxRecovered returns the largest per-rank recovered-chunk count.
func (res *Result) MaxRecovered() int {
	max := 0
	for _, s := range res.PerRank {
		if s.Recovered > max {
			max = s.Recovered
		}
	}
	return max
}
