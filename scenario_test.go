package repro

// Tests for the scenario facade: the preset registry is reachable through
// the public surface and an applied scenario perturbs a System's fabric
// without breaking the unified Algorithm flow.

import (
	"slices"
	"testing"
)

func TestScenarioFacade(t *testing.T) {
	names := Scenarios()
	if len(names) < 6 {
		t.Fatalf("Scenarios() lists %d presets, want >= 6: %v", len(names), names)
	}
	if !slices.Contains(names, "quiet") || !slices.Contains(names, "tenant-50load") {
		t.Fatalf("Scenarios() = %v, missing core presets", names)
	}
	if _, err := NewScenario("definitely-not-registered"); err == nil {
		t.Fatal("unknown scenario did not error")
	}

	quietRun := func(name string) int64 {
		sys := newTestSystem(t)
		sc, err := NewScenario(name)
		if err != nil {
			t.Fatal(err)
		}
		act := sys.ApplyScenario(sc, 5)
		alg, err := NewAlgorithm(sys, "ring-allgather", AlgorithmOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var res *Result
		if err := alg.(Starter).Start(Op{Kind: Allgather, Bytes: 256 << 10},
			func(r *Result) { res = r; act.Stop() }); err != nil {
			t.Fatal(err)
		}
		sys.Run()
		if res == nil {
			t.Fatalf("allgather under %q did not complete", name)
		}
		if name != "quiet" && act.Stats().BackgroundPackets == 0 {
			t.Fatalf("%q injected no background traffic", name)
		}
		return int64(res.Duration())
	}
	quiet, tenant := quietRun("quiet"), quietRun("tenant-50load")
	if tenant <= quiet {
		t.Fatalf("tenant load did not slow the collective: %d ns vs quiet %d ns", tenant, quiet)
	}
}
