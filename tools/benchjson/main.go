// Command benchjson converts `go test -bench -benchmem` output into the
// repository's structured sweep-report JSON (the BENCH_*.json trajectory
// format) and optionally gates chosen metrics against a committed baseline.
//
// CI runs the engine/fabric/collective perf benchmarks, pipes the text
// through benchjson to produce BENCH_perf.json, and fails the job when
// allocs/op regresses more than the tolerance over PERF_BASELINE.json.
// Only machine-independent metrics (allocation counts, simulated events
// per op) are suitable for gating; wall-clock metrics (ns/op, events/sec)
// are recorded for the trajectory but vary across runners. Telemetry
// counters reported by the shard benchmarks ("epochs/op" ->
// epochs_per_op, "epoch-stalls/op" -> epoch_stalls_per_op) flow through
// the same pipeline as informational metrics: they appear in the
// trajectory but are gated only if named in -metric/-min-metric.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | \
//	  benchjson -out BENCH_perf.json -baseline PERF_BASELINE.json \
//	            -metric allocs_per_op -tol 0.20
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/sweep"
)

func main() {
	in := flag.String("in", "", "benchmark output to read (default stdin)")
	out := flag.String("out", "", "write the parsed report as JSON to this path")
	name := flag.String("name", "perf", "report name")
	baseline := flag.String("baseline", "", "baseline report to gate against")
	metrics := flag.String("metric", "allocs_per_op", "comma-separated metrics to gate")
	tol := flag.Float64("tol", 0.20, "relative regression tolerance for gated metrics")
	slack := flag.Float64("slack", 1, "absolute slack added on top of the relative tolerance (absorbs benchmem rounding)")
	minMetrics := flag.String("min-metric", "", "comma-separated metrics gated as floors: the run fails when a value drops below baseline*(1-min-tol)-min-slack (throughput metrics like events_per_sec_per_core)")
	minTol := flag.Float64("min-tol", 0.20, "relative drop tolerance for -min-metric floors")
	minSlack := flag.Float64("min-slack", 0, "absolute slack subtracted below the relative floor")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	flag.Parse()
	stop, err := cli.StartCPUProfile(*cpuprofile)
	if err != nil {
		fatalf(2, "benchjson: %v", err)
	}
	defer stop()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf(2, "benchjson: %v", err)
		}
		defer f.Close()
		r = f
	}
	recs, err := parse(r)
	if err != nil {
		fatalf(1, "benchjson: %v", err)
	}
	if len(recs) == 0 {
		fatalf(1, "benchjson: no benchmark lines found")
	}
	rep := sweep.Report{Name: *name, Records: recs}
	if err := sweep.WriteFiles(rep, *out, ""); err != nil {
		fatalf(1, "benchjson: %v", err)
	}
	if err := sweep.WriteTable(os.Stdout, recs); err != nil {
		fatalf(1, "benchjson: %v", err)
	}
	if *baseline == "" {
		return
	}
	base, err := sweep.LoadFile(*baseline)
	if err != nil {
		fatalf(1, "benchjson: %v", err)
	}
	failed := gate(base, rep, strings.Split(*metrics, ","), *tol, *slack)
	if *minMetrics != "" {
		failed = minGate(base, rep, strings.Split(*minMetrics, ","), *minTol, *minSlack) || failed
	}
	if failed {
		os.Exit(1)
	}
}

// fatalf prints to stderr and exits with the given code (2 invalid
// flags, 1 runtime failure), matching the repro exit-code convention.
func fatalf(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}

// parse extracts one Record per benchmark result line. A line looks like
//
//	BenchmarkFabricHop-8   30   231272 ns/op   8855383 hops/sec   109194 B/op   1099 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs — including any
// custom b.ReportMetric units.
func parse(r io.Reader) ([]sweep.Record, error) {
	var recs []sweep.Record
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
		m := map[string]float64{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			m[metricName(fields[i+1])] = v
		}
		recs = append(recs, sweep.Record{
			Spec:    sweep.Spec{Algorithm: name, Index: len(recs)},
			Metrics: m,
		})
	}
	return recs, sc.Err()
}

// metricName normalizes a go-bench unit into a metric identifier:
// "allocs/op" -> allocs_per_op, "events/sec" -> events_per_sec.
func metricName(unit string) string {
	unit = strings.ReplaceAll(unit, "/", "_per_")
	unit = strings.ReplaceAll(unit, "-", "_")
	return strings.ToLower(unit)
}

// gate compares the chosen metrics benchmark-by-benchmark (matched on
// name) and reports every regression beyond base*(1+tol)+slack. A
// benchmark present in the baseline but missing from the current run also
// fails: silently dropping a gated benchmark must not pass CI.
func gate(base, cur sweep.Report, metrics []string, tol, slack float64) bool {
	return gateBound(base, cur, metrics, func(bv, cv float64) (float64, bool) {
		limit := bv*(1+tol) + slack
		return limit, cv > limit
	})
}

// minGate is the floor-direction counterpart of gate, for throughput-style
// metrics where a DROP is the regression: fails when the current value
// falls below base*(1-tol)-slack.
func minGate(base, cur sweep.Report, metrics []string, tol, slack float64) bool {
	return gateBound(base, cur, metrics, func(bv, cv float64) (float64, bool) {
		limit := bv*(1-tol) - slack
		return limit, cv < limit
	})
}

// gateBound walks the baseline's benchmarks and applies a bound check to
// each gated metric; exceed reports the limit and whether (base, current)
// violates it.
func gateBound(base, cur sweep.Report, metrics []string, exceed func(bv, cv float64) (float64, bool)) (failed bool) {
	curByName := map[string]sweep.Record{}
	for _, r := range cur.Records {
		curByName[r.Spec.Algorithm] = r
	}
	for _, b := range base.Records {
		c, ok := curByName[b.Spec.Algorithm]
		if !ok {
			fmt.Printf("GATE FAIL %s: benchmark missing from current run\n", b.Spec.Algorithm)
			failed = true
			continue
		}
		for _, m := range metrics {
			m = strings.TrimSpace(m)
			bv, okB := b.Metrics[m]
			cv, okC := c.Metrics[m]
			if !okB {
				continue // this benchmark never had the metric; nothing to gate
			}
			if !okC {
				// The baseline gates this metric but the current run stopped
				// emitting it — losing a gate must not pass silently.
				fmt.Printf("GATE FAIL %s %s: metric missing from current run\n", b.Spec.Algorithm, m)
				failed = true
				continue
			}
			if limit, bad := exceed(bv, cv); bad {
				fmt.Printf("GATE FAIL %s %s: %.6g -> %.6g (limit %.6g)\n",
					b.Spec.Algorithm, m, bv, cv, limit)
				failed = true
			} else {
				fmt.Printf("gate ok   %s %s: %.6g -> %.6g (limit %.6g)\n",
					b.Spec.Algorithm, m, bv, cv, limit)
			}
		}
	}
	return failed
}
