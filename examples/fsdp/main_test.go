package main

import "testing"

// TestPipelineSmoke runs a scaled-down training step with both collective
// pairings — the example's core path — and checks the paper's
// application-level claim holds: the {mcast AG, inc RS} pairing beats
// {ring, ring} with better overlap. Sized for the -short suite.
func TestPipelineSmoke(t *testing.T) {
	const (
		smokeLayers = 3
		smokeShard  = 128 << 10
	)
	ring, err := runPipeline("fsdp-ring", smokeLayers, smokeShard)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := runPipeline("fsdp-inc", smokeLayers, smokeShard)
	if err != nil {
		t.Fatal(err)
	}
	if inc.StepTime() >= ring.StepTime() {
		t.Fatalf("inc pair (%v) should beat ring pair (%v)", inc.StepTime(), ring.StepTime())
	}
	for _, j := range []struct {
		name string
		rep  interface {
			OverlapFrac() float64
		}
	}{{"ring", ring}, {"inc", inc}} {
		if f := j.rep.OverlapFrac(); f <= 0 || f > 1 {
			t.Fatalf("%s overlap = %v, want in (0,1]", j.name, f)
		}
	}
	// Every layer contributes an AG, a compute, and an RS span.
	if got, want := len(ring.Spans), 3*smokeLayers; got != want {
		t.Fatalf("ring pipeline recorded %d spans, want %d", got, want)
	}
}
