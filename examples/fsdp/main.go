// FSDP pipeline: the motivating scenario of the paper's introduction. A
// fully-sharded-data-parallel training step walks the model layer by
// layer: the Allgather for layer i+1's sharded weights is prefetched while
// layer i computes, and the gradient Reduce-Scatter of layer i runs behind
// the compute of later layers. Allgather and Reduce-Scatter therefore
// overlap both with compute and with each other, competing for injection
// bandwidth (§II-A).
//
// The example runs the same pipeline twice — with the conventional
// {ring AG, ring RS} pair and with the paper's {multicast AG, in-network
// RS} pair — and reports step time, speedup, and the achieved
// communication/computation overlap. Both pairs are registry algorithms
// driven through the non-blocking Starter surface.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/verbs"
)

const (
	ranks       = 16
	layers      = 6
	shardBytes  = 512 << 10             // per-rank parameter shard per layer
	computeTime = 150 * sim.Microsecond // forward+backward compute per layer
)

// collectives abstracts the two Allgather/Reduce-Scatter pairings.
type collectives struct {
	name    string
	startAG func(n int, done func()) error
	startRS func(n int, done func()) error
}

// pairFrom wires two registry algorithms into the pipeline's start hooks.
func pairFrom(sys *repro.System, name, agAlgo string, agOpts repro.AlgorithmOptions, rsAlgo string) (collectives, error) {
	ag, err := repro.NewAlgorithm(sys, agAlgo, agOpts)
	if err != nil {
		return collectives{}, err
	}
	rs, err := repro.NewAlgorithm(sys, rsAlgo, repro.AlgorithmOptions{})
	if err != nil {
		return collectives{}, err
	}
	return collectives{
		name: name,
		startAG: func(n int, done func()) error {
			return ag.(repro.Starter).Start(repro.Op{Kind: repro.Allgather, Bytes: n},
				func(*repro.Result) { done() })
		},
		startRS: func(n int, done func()) error {
			return rs.(repro.Starter).Start(repro.Op{Kind: repro.ReduceScatter, Bytes: n},
				func(*repro.Result) { done() })
		},
	}, nil
}

func main() {
	ringTime, ringOverlap, err := runPipeline(ringPair)
	if err != nil {
		log.Fatal(err)
	}
	incTime, incOverlap, err := runPipeline(incPair)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFSDP step: %d layers x %d ranks, %d KiB shards, %v compute/layer\n",
		layers, ranks, shardBytes>>10, computeTime)
	fmt.Printf("  {AG ring,  RS ring}: step %v, comm/comp overlap %.0f%%\n", ringTime, ringOverlap*100)
	fmt.Printf("  {AG mcast, RS inc }: step %v, comm/comp overlap %.0f%%\n", incTime, incOverlap*100)
	fmt.Printf("  speedup: %.2fx (Appendix B bound at P=%d: %.2fx)\n",
		float64(ringTime)/float64(incTime), ranks, model.SpeedupINC(ranks))
}

// runPipeline executes one training step with the given collective pair
// and returns (step time, overlap fraction).
func runPipeline(build func(sys *repro.System) (collectives, error)) (sim.Time, float64, error) {
	sys, err := repro.NewSystem(repro.SystemConfig{Hosts: ranks, Topology: "star", Seed: 7})
	if err != nil {
		return 0, 0, err
	}
	cs, err := build(sys)
	if err != nil {
		return 0, 0, err
	}
	eng := sys.Engine

	var commBusy sim.Time // sum of collective durations (for overlap metric)
	timed := func(start func(n int, done func()) error, n int, done func()) error {
		t0 := eng.Now()
		return start(n, func() {
			commBusy += eng.Now() - t0
			done()
		})
	}

	agDone := make([]bool, layers)   // weights gathered
	compDone := make([]bool, layers) // layer computed
	pending := 0

	// Reduce-Scatters are issued onto one serial stream (as a framework
	// would enqueue them on a communication stream): a new RS starts when
	// the previous one completes.
	var rsQueue []int
	rsBusy := false
	var issueRS func()
	issueRS = func() {
		if rsBusy || len(rsQueue) == 0 {
			return
		}
		rsBusy = true
		n := rsQueue[0]
		rsQueue = rsQueue[1:]
		pending++
		if err := timed(cs.startRS, n, func() {
			pending--
			rsBusy = false
			issueRS()
		}); err != nil {
			log.Fatal(err)
		}
	}
	var tryCompute func(l int)
	tryCompute = func(l int) {
		if l >= layers || !agDone[l] || (l > 0 && !compDone[l-1]) {
			return
		}
		// Forward+backward for layer l.
		pending++
		eng.After(computeTime, func() {
			pending--
			compDone[l] = true
			// Gradients for this layer reduce-scatter in the background.
			rsQueue = append(rsQueue, shardBytes)
			issueRS()
			tryCompute(l + 1)
		})
	}
	var prefetch func(l int)
	prefetch = func(l int) {
		if l >= layers {
			return
		}
		pending++
		if err := timed(cs.startAG, shardBytes, func() {
			pending--
			agDone[l] = true
			tryCompute(l)
			prefetch(l + 1) // fetch the next layer's weights behind compute
		}); err != nil {
			log.Fatal(err)
		}
	}
	prefetch(0)
	end := sys.Run()
	if pending != 0 {
		return 0, 0, fmt.Errorf("fsdp (%s): %d operations never finished", cs.name, pending)
	}

	// Overlap: the fraction of communication time hidden behind compute or
	// other communication. Exposed = step - compute on the critical path.
	compute := sim.Time(layers) * computeTime
	exposed := end - compute
	if exposed < 0 {
		exposed = 0
	}
	overlap := 1 - float64(exposed)/float64(commBusy)
	if overlap < 0 {
		overlap = 0
	}
	fmt.Printf("%-22s finished at %v (comm busy %v, exposed %v)\n", cs.name, end, commBusy, exposed)
	return end, overlap, nil
}

// ringPair wires the conventional UCC/NCCL pairing.
func ringPair(sys *repro.System) (collectives, error) {
	return pairFrom(sys, "{AG ring, RS ring}",
		"ring-allgather", repro.AlgorithmOptions{}, "ring-reduce-scatter")
}

// incPair wires the paper's pairing: multicast Allgather on the receive
// path, in-network Reduce-Scatter on the send path.
func incPair(sys *repro.System) (collectives, error) {
	return pairFrom(sys, "{AG mcast, RS inc}",
		"mcast-allgather", repro.AlgorithmOptions{
			Core: core.Config{
				Transport: verbs.UD,
				Subgroups: 4,
				Chains:    ranks, // spread injection: the send path belongs to RS
			},
		}, "inc-reduce-scatter")
}
