// FSDP pipeline: the motivating scenario of the paper's introduction. A
// fully-sharded-data-parallel training step walks the model layer by
// layer: the Allgather for layer i+1's sharded weights is prefetched while
// layer i computes, and the gradient Reduce-Scatter of layer i runs behind
// the compute of later layers. Allgather and Reduce-Scatter therefore
// overlap both with compute and with each other, competing for injection
// bandwidth (§II-A).
//
// The example runs the same declarative workload DAG twice — with the
// conventional {ring AG, ring RS} pair and with the paper's {multicast AG,
// in-network RS} pair — and reports step time, speedup, and the achieved
// communication/computation overlap. The pipeline itself lives in
// internal/workload ("fsdp-ring"/"fsdp-inc" presets): per-layer prefetch,
// compute and gradient phases wired by dependency edges, with the
// Allgathers and Reduce-Scatters serialized on their communicator streams
// exactly as a framework enqueues them.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/model"
	"repro/internal/sim"
)

const (
	ranks       = 16
	layers      = 6
	shardBytes  = 512 << 10             // per-rank parameter shard per layer
	computeTime = 150 * sim.Microsecond // forward+backward compute per layer
)

func main() {
	ring, err := runPipeline("fsdp-ring", layers, shardBytes)
	if err != nil {
		log.Fatal(err)
	}
	inc, err := runPipeline("fsdp-inc", layers, shardBytes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFSDP step: %d layers x %d ranks, %d KiB shards, %v compute/layer\n",
		layers, ranks, shardBytes>>10, computeTime)
	fmt.Printf("  {AG ring,  RS ring}: step %v, comm/comp overlap %.0f%%\n",
		ring.StepTime(), ring.OverlapFrac()*100)
	fmt.Printf("  {AG mcast, RS inc }: step %v, comm/comp overlap %.0f%%\n",
		inc.StepTime(), inc.OverlapFrac()*100)
	fmt.Printf("  speedup: %.2fx (Appendix B bound at P=%d: %.2fx)\n",
		float64(ring.StepTime())/float64(inc.StepTime()), ranks, model.SpeedupINC(ranks))
}

// runPipeline executes one training step with the named collective pairing
// and returns the job's report (step time, spans, overlap).
func runPipeline(preset string, nLayers, shard int) (*repro.WorkloadJobReport, error) {
	sys, err := repro.NewSystem(repro.SystemConfig{Hosts: ranks, Topology: "star", Seed: 7})
	if err != nil {
		return nil, err
	}
	w, err := repro.NewWorkload(preset, repro.WorkloadConfig{
		Nodes: ranks, Layers: nLayers, ShardBytes: shard, Compute: computeTime,
	})
	if err != nil {
		return nil, err
	}
	rep, err := sys.RunWorkload(w)
	if err != nil {
		return nil, err
	}
	j := rep.Job("fsdp")
	fmt.Printf("%-22s finished at %v (comm busy %v, exposed %v)\n",
		preset, j.End, j.CommBusy, j.Exposed())
	return j, nil
}
