package main

import "testing"

// TestReplicationSmoke streams a shortened segment pipeline over the lossy
// fabric — the example's core path: multicast replication with slow-path
// repair and end-to-end verification, against the k-nomial baseline. Sized
// for the -short suite.
func TestReplicationSmoke(t *testing.T) {
	const smokeSegments = 2
	total, _, err := replicate(smokeSegments)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Fatalf("replication total = %v", total)
	}
	p2p, err := knomialBaseline(smokeSegments)
	if err != nil {
		t.Fatal(err)
	}
	if p2p <= total {
		t.Fatalf("multicast (%v) should beat the k-nomial baseline (%v)", total, p2p)
	}
}
