// Distributed file system replication: the paper's §VII deployment target
// for the constant-time Broadcast — replicating storage segments to a
// group of servers with a tight completion-time requirement. This example
// replicates a stream of segments over a lossy fabric, exercising the
// reliability slow path, and compares against a k-nomial tree replication.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/verbs"
)

const (
	replicas     = 12
	segmentBytes = 1 << 20 // 1 MiB storage segments
	segments     = 8
	dropRate     = 1e-4 // injected fabric corruption (paper: 1e-12..1e-15)
)

func main() {
	// Multicast replication with injected drops: the bitmap + fetch-ring
	// reliability layer must repair every loss.
	sys, err := repro.NewSystem(repro.SystemConfig{
		Hosts:        replicas,
		HostsPerLeaf: 4,
		Fabric:       fabric.Config{DropRate: dropRate},
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}
	comm, err := sys.NewCommunicator(sys.Hosts(), core.Config{
		Transport:   verbs.UD,
		Subgroups:   2,
		VerifyData:  true,
		CutoffAlpha: 200 * sim.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	var total sim.Time
	recovered := 0
	for seg := 0; seg < segments; seg++ {
		res, err := comm.RunBroadcast(0, segmentBytes)
		if err != nil {
			log.Fatalf("segment %d: %v", seg, err)
		}
		if err := comm.VerifyLast(); err != nil {
			log.Fatalf("segment %d corrupted: %v", seg, err)
		}
		total += res.Duration()
		recovered += res.MaxRecovered()
	}
	fmt.Printf("multicast replication: %d x %d MiB to %d replicas in %v (%.2f GiB/s per replica)\n",
		segments, segmentBytes>>20, replicas-1, total,
		float64(segments*segmentBytes)/total.Seconds()/(1<<30))
	fmt.Printf("  fabric drops repaired via RDMA-read fetch ring: %d chunks; all segments verified\n",
		recovered)

	// The same replication over a k-nomial unicast tree (no drops injected,
	// giving the baseline its best case).
	sys2, err := repro.NewSystem(repro.SystemConfig{Hosts: replicas, HostsPerLeaf: 4, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	team, err := sys2.NewTeam(sys2.Hosts(), coll.Config{VerifyData: true})
	if err != nil {
		log.Fatal(err)
	}
	var p2pTotal sim.Time
	for seg := 0; seg < segments; seg++ {
		res, err := team.RunKnomialBroadcast(0, segmentBytes)
		if err != nil {
			log.Fatal(err)
		}
		if err := team.VerifyBroadcast(0, segmentBytes); err != nil {
			log.Fatal(err)
		}
		p2pTotal += res.Duration()
	}
	fmt.Printf("k-nomial replication:  same job in %v -> multicast is %.2fx faster\n",
		p2pTotal, float64(p2pTotal)/float64(total))
}
