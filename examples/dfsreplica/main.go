// Distributed file system replication: the paper's §VII deployment target
// for the constant-time Broadcast — replicating storage segments to a
// group of servers with a tight completion-time requirement. This example
// replicates a stream of segments over a lossy fabric, exercising the
// reliability slow path, and compares against a k-nomial tree replication.
//
// The replication stream is the "dfs-replica" workload preset: a DAG of
// segment broadcasts serialized on one multicast communicator, so the next
// segment posts the moment the previous completes — a storage pipeline
// instead of a hand-rolled loop. The k-nomial baseline runs through the
// same registry surface.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/coll"
	"repro/internal/fabric"
	"repro/internal/sim"
)

const (
	replicas     = 12
	segmentBytes = 1 << 20 // 1 MiB storage segments
	segments     = 8
	dropRate     = 1e-4 // injected fabric corruption (paper: 1e-12..1e-15)
)

func main() {
	total, recovered, err := replicate(segments)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multicast replication: %d x %d MiB to %d replicas in %v (%.2f GiB/s per replica)\n",
		segments, segmentBytes>>20, replicas-1, total,
		float64(segments*segmentBytes)/total.Seconds()/(1<<30))
	fmt.Printf("  fabric drops repaired via RDMA-read fetch ring: %d chunks; all segments verified\n",
		recovered)

	p2pTotal, err := knomialBaseline(segments)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-nomial replication:  same job in %v -> multicast is %.2fx faster\n",
		p2pTotal, float64(p2pTotal)/float64(total))
}

// replicate streams segs segments through the dfs-replica workload on a
// lossy fabric: the bitmap + fetch-ring reliability layer must repair every
// loss. It returns the summed segment time and the repaired-chunk count.
func replicate(segs int) (sim.Time, int, error) {
	sys, err := repro.NewSystem(repro.SystemConfig{
		Hosts:        replicas,
		HostsPerLeaf: 4,
		Fabric:       fabric.Config{DropRate: dropRate},
		Seed:         11,
	})
	if err != nil {
		return 0, 0, err
	}
	w, err := repro.NewWorkload("dfs-replica", repro.WorkloadConfig{
		Nodes: replicas, ShardBytes: segmentBytes, Segments: segs, VerifyData: true,
	})
	if err != nil {
		return 0, 0, err
	}
	// Verify every segment end to end the moment it completes — the
	// communicator reuses its buffers for the next segment, so per-segment
	// integrity can only be checked from the completion hook.
	op := repro.Op{Kind: repro.Broadcast, Bytes: segmentBytes, Root: 0}
	var verifyErr error
	w.OnSpan = func(s repro.WorkloadSpan, alg repro.Algorithm) {
		if verifyErr != nil || alg == nil {
			return
		}
		if err := alg.(repro.Verifier).VerifyLast(op); err != nil {
			verifyErr = fmt.Errorf("segment %s corrupted: %w", s.Phase, err)
		}
	}
	rep, err := sys.RunWorkload(w)
	if err != nil {
		return 0, 0, err
	}
	if verifyErr != nil {
		return 0, 0, verifyErr
	}
	var total sim.Time
	recovered := 0
	for _, span := range rep.Job("replicate").Spans {
		total += span.Duration()
		recovered += span.Result.MaxRecovered()
	}
	return total, recovered, nil
}

// knomialBaseline replicates the same stream over a k-nomial unicast tree
// (no drops injected, giving the baseline its best case).
func knomialBaseline(segs int) (sim.Time, error) {
	op := repro.Op{Kind: repro.Broadcast, Bytes: segmentBytes, Root: 0}
	sys, err := repro.NewSystem(repro.SystemConfig{Hosts: replicas, HostsPerLeaf: 4, Seed: 12})
	if err != nil {
		return 0, err
	}
	knomial, err := repro.NewAlgorithm(sys, "knomial-broadcast", repro.AlgorithmOptions{
		Coll: coll.Config{VerifyData: true},
	})
	if err != nil {
		return 0, err
	}
	var total sim.Time
	for seg := 0; seg < segs; seg++ {
		res, err := knomial.Run(op)
		if err != nil {
			return 0, err
		}
		if err := knomial.(repro.Verifier).VerifyLast(op); err != nil {
			return 0, err
		}
		total += res.Duration()
	}
	return total, nil
}
