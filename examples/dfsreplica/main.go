// Distributed file system replication: the paper's §VII deployment target
// for the constant-time Broadcast — replicating storage segments to a
// group of servers with a tight completion-time requirement. This example
// replicates a stream of segments over a lossy fabric, exercising the
// reliability slow path, and compares against a k-nomial tree replication.
// Both replication schemes come from the unified algorithm registry.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/verbs"
)

const (
	replicas     = 12
	segmentBytes = 1 << 20 // 1 MiB storage segments
	segments     = 8
	dropRate     = 1e-4 // injected fabric corruption (paper: 1e-12..1e-15)
)

func main() {
	op := repro.Op{Kind: repro.Broadcast, Bytes: segmentBytes, Root: 0}

	// Multicast replication with injected drops: the bitmap + fetch-ring
	// reliability layer must repair every loss.
	sys, err := repro.NewSystem(repro.SystemConfig{
		Hosts:        replicas,
		HostsPerLeaf: 4,
		Fabric:       fabric.Config{DropRate: dropRate},
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}
	mcast, err := repro.NewAlgorithm(sys, "mcast-broadcast", repro.AlgorithmOptions{
		Core: core.Config{
			Transport:   verbs.UD,
			Subgroups:   2,
			VerifyData:  true,
			CutoffAlpha: 200 * sim.Microsecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	var total sim.Time
	recovered := 0
	for seg := 0; seg < segments; seg++ {
		res, err := mcast.Run(op)
		if err != nil {
			log.Fatalf("segment %d: %v", seg, err)
		}
		if err := mcast.(repro.Verifier).VerifyLast(op); err != nil {
			log.Fatalf("segment %d corrupted: %v", seg, err)
		}
		total += res.Duration()
		recovered += res.MaxRecovered()
	}
	fmt.Printf("multicast replication: %d x %d MiB to %d replicas in %v (%.2f GiB/s per replica)\n",
		segments, segmentBytes>>20, replicas-1, total,
		float64(segments*segmentBytes)/total.Seconds()/(1<<30))
	fmt.Printf("  fabric drops repaired via RDMA-read fetch ring: %d chunks; all segments verified\n",
		recovered)

	// The same replication over a k-nomial unicast tree (no drops injected,
	// giving the baseline its best case).
	sys2, err := repro.NewSystem(repro.SystemConfig{Hosts: replicas, HostsPerLeaf: 4, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	knomial, err := repro.NewAlgorithm(sys2, "knomial-broadcast", repro.AlgorithmOptions{
		Coll: coll.Config{VerifyData: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	var p2pTotal sim.Time
	for seg := 0; seg < segments; seg++ {
		res, err := knomial.Run(op)
		if err != nil {
			log.Fatal(err)
		}
		if err := knomial.(repro.Verifier).VerifyLast(op); err != nil {
			log.Fatal(err)
		}
		p2pTotal += res.Duration()
	}
	fmt.Printf("k-nomial replication:  same job in %v -> multicast is %.2fx faster\n",
		p2pTotal, float64(p2pTotal)/float64(total))
}
