// Quickstart: build a 16-node fat-tree, run the bandwidth-optimal multicast
// Allgather through the unified algorithm registry, verify the gathered
// data, and compare traffic against the ring baseline — the one-screen tour
// of the library.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/verbs"
)

const ranks = 16

// outcome carries both algorithms' results for one message size.
type outcome struct {
	mcast, ring           *repro.Result
	mcastBytes, ringBytes uint64
}

func main() {
	const msg = 256 << 10 // 256 KiB per rank, an FSDP-typical shard size
	out, err := run(msg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multicast allgather: %d ranks x %d KiB in %v (%.2f GiB/s per rank), data verified\n",
		ranks, msg>>10, out.mcast.Duration(), out.mcast.AlgBandwidth()/(1<<30))
	fmt.Printf("ring allgather:      same job in %v (%.2f GiB/s per rank)\n",
		out.ring.Duration(), out.ring.AlgBandwidth()/(1<<30))
	fmt.Printf("switch-port traffic: multicast %.1f MiB vs ring %.1f MiB -> %.2fx reduction (paper: ~2x)\n",
		float64(out.mcastBytes)/(1<<20), float64(out.ringBytes)/(1<<20),
		float64(out.ringBytes)/float64(out.mcastBytes))
}

// run executes the verified multicast Allgather and the ring baseline on
// fresh, identical fat-trees and returns both results with their
// switch-port traffic totals.
func run(msg int) (*outcome, error) {
	op := repro.Op{Kind: repro.Allgather, Bytes: msg}

	// A 16-host two-level fat-tree with 200 Gbit/s links.
	sys, err := repro.NewSystem(repro.SystemConfig{Hosts: ranks, HostsPerLeaf: 4})
	if err != nil {
		return nil, err
	}

	// The paper's protocol from the registry: UD multicast fast path, 4
	// parallel trees, real data so we can verify the result.
	mcast, err := repro.NewAlgorithm(sys, "mcast-allgather", repro.AlgorithmOptions{
		Core: core.Config{Transport: verbs.UD, Subgroups: 4, VerifyData: true},
	})
	if err != nil {
		return nil, err
	}
	res, err := mcast.Run(op)
	if err != nil {
		return nil, err
	}
	if err := mcast.(repro.Verifier).VerifyLast(op); err != nil {
		return nil, fmt.Errorf("allgather produced wrong bytes: %w", err)
	}

	// Same job with the ring baseline on a fresh, identical system —
	// swapping algorithms is just a different registry name.
	sys2, err := repro.NewSystem(repro.SystemConfig{Hosts: ranks, HostsPerLeaf: 4})
	if err != nil {
		return nil, err
	}
	ring, err := repro.NewAlgorithm(sys2, "ring-allgather", repro.AlgorithmOptions{})
	if err != nil {
		return nil, err
	}
	ringRes, err := ring.Run(op)
	if err != nil {
		return nil, err
	}
	return &outcome{
		mcast: res, ring: ringRes,
		mcastBytes: sys.Fabric.SwitchPortBytes(),
		ringBytes:  sys2.Fabric.SwitchPortBytes(),
	}, nil
}
