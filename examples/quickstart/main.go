// Quickstart: build a 16-node fat-tree, run the bandwidth-optimal multicast
// Allgather through the unified algorithm registry, verify the gathered
// data, and compare traffic against the ring baseline — the one-screen tour
// of the library.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/verbs"
)

func main() {
	const ranks = 16
	const msg = 256 << 10 // 256 KiB per rank, an FSDP-typical shard size
	op := repro.Op{Kind: repro.Allgather, Bytes: msg}

	// A 16-host two-level fat-tree with 200 Gbit/s links.
	sys, err := repro.NewSystem(repro.SystemConfig{Hosts: ranks, HostsPerLeaf: 4})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's protocol from the registry: UD multicast fast path, 4
	// parallel trees, real data so we can verify the result.
	mcast, err := repro.NewAlgorithm(sys, "mcast-allgather", repro.AlgorithmOptions{
		Core: core.Config{Transport: verbs.UD, Subgroups: 4, VerifyData: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := mcast.Run(op)
	if err != nil {
		log.Fatal(err)
	}
	if err := mcast.(repro.Verifier).VerifyLast(op); err != nil {
		log.Fatal("allgather produced wrong bytes: ", err)
	}
	mcastBytes := sys.Fabric.SwitchPortBytes()
	fmt.Printf("multicast allgather: %d ranks x %d KiB in %v (%.2f GiB/s per rank), data verified\n",
		ranks, msg>>10, res.Duration(), res.AlgBandwidth()/(1<<30))

	// Same job with the ring baseline on a fresh, identical system —
	// swapping algorithms is just a different registry name.
	sys2, err := repro.NewSystem(repro.SystemConfig{Hosts: ranks, HostsPerLeaf: 4})
	if err != nil {
		log.Fatal(err)
	}
	ring, err := repro.NewAlgorithm(sys2, "ring-allgather", repro.AlgorithmOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ringRes, err := ring.Run(op)
	if err != nil {
		log.Fatal(err)
	}
	ringBytes := sys2.Fabric.SwitchPortBytes()
	fmt.Printf("ring allgather:      same job in %v (%.2f GiB/s per rank)\n",
		ringRes.Duration(), ringRes.AlgBandwidth()/(1<<30))

	fmt.Printf("switch-port traffic: multicast %.1f MiB vs ring %.1f MiB -> %.2fx reduction (paper: ~2x)\n",
		float64(mcastBytes)/(1<<20), float64(ringBytes)/(1<<20),
		float64(ringBytes)/float64(mcastBytes))
}
