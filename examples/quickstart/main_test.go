package main

import "testing"

// TestQuickstartSmoke runs the example's core path at a -short-friendly
// size: the verified multicast Allgather must beat the ring baseline on
// switch-port traffic (the paper's ~2x claim) and produce a valid result.
func TestQuickstartSmoke(t *testing.T) {
	out, err := run(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if out.mcast.Duration() <= 0 || out.ring.Duration() <= 0 {
		t.Fatalf("degenerate durations: mcast %v, ring %v", out.mcast.Duration(), out.ring.Duration())
	}
	reduction := float64(out.ringBytes) / float64(out.mcastBytes)
	if reduction < 1.5 {
		t.Fatalf("traffic reduction = %.2fx, want >= 1.5x (mcast %d B, ring %d B)",
			reduction, out.mcastBytes, out.ringBytes)
	}
}
