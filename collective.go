// Package repro is the public face of the reproduction of "Network-
// Offloaded Bandwidth-Optimal Broadcast and Allgather for Distributed AI"
// (Khalilov et al., SC 2024): a deterministic simulation of RDMA fat-tree
// fabrics with hardware multicast, the paper's reliable multicast Broadcast
// and bandwidth-optimal Allgather protocols, a DPA SmartNIC offload model,
// and the point-to-point baselines they are evaluated against.
//
// A typical session builds a System (topology + fabric + per-host runtime),
// creates communicators or baseline teams on it, and runs collectives:
//
//	sys, _ := repro.NewSystem(repro.SystemConfig{Hosts: 16})
//	comm, _ := sys.NewCommunicator(sys.Hosts(), core.Config{Transport: verbs.UD})
//	res, _ := comm.RunAllgather(1 << 20)
//	fmt.Println(res.AlgBandwidth())
//
// The heavy lifting lives in the internal packages: sim (event engine),
// topology, fabric, verbs, dpa, core (the paper's contribution), coll
// (baselines), model (analytic cost models) and harness (per-figure
// experiment drivers).
package repro

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
)

// SystemConfig shapes a simulated cluster.
type SystemConfig struct {
	// Hosts is the number of compute endpoints. Zero defaults to 16.
	Hosts int
	// Topology selects the network shape: "fattree2" (default), "fattree3",
	// "testbed188" (the paper's 18-switch UCC testbed; forces Hosts=188),
	// or "star".
	Topology string
	// FatTree parameters for "fattree2" (defaults: 16 hosts/leaf, enough
	// spines for 2:1 oversubscription) and "fattree3" (radix).
	HostsPerLeaf int
	Spines       int
	Radix        int
	// Fabric tunes link bandwidth, latency, MTU, drops.
	Fabric fabric.Config
	// Cluster tunes per-host CPU and transport parameters.
	Cluster cluster.Config
	// Seed fixes the simulation's random stream (default 1).
	Seed uint64
}

// System bundles one simulation: engine, topology, fabric and the shared
// per-host runtime.
type System struct {
	Engine  *sim.Engine
	Graph   *topology.Graph
	Fabric  *fabric.Fabric
	Cluster *cluster.Cluster
}

// NewSystem builds a simulated cluster.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Hosts == 0 {
		cfg.Hosts = 16
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	var g *topology.Graph
	var err error
	switch cfg.Topology {
	case "", "fattree2":
		hpl := cfg.HostsPerLeaf
		if hpl == 0 {
			hpl = 16
		}
		spines := cfg.Spines
		if spines == 0 {
			spines = (hpl + 1) / 2
		}
		g, err = topology.TwoLevelFatTree(topology.FatTreeSpec{
			Hosts: cfg.Hosts, HostsPerLeaf: hpl, Spines: spines,
		})
	case "fattree3":
		radix := cfg.Radix
		if radix == 0 {
			radix = 8
		}
		g, err = topology.ThreeLevelFatTree(radix, cfg.Hosts)
	case "testbed188":
		g = topology.Testbed188()
	case "star":
		g = topology.Star(cfg.Hosts)
	default:
		return nil, fmt.Errorf("repro: unknown topology %q", cfg.Topology)
	}
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(cfg.Seed)
	f := fabric.New(eng, g, cfg.Fabric)
	return &System{
		Engine:  eng,
		Graph:   g,
		Fabric:  f,
		Cluster: cluster.New(f, cfg.Cluster),
	}, nil
}

// Hosts returns all endpoint node IDs.
func (s *System) Hosts() []topology.NodeID { return s.Graph.Hosts() }

// NewCommunicator creates a multicast-collective communicator over the
// given hosts, sharing the system's per-host runtime.
func (s *System) NewCommunicator(hosts []topology.NodeID, cfg core.Config) (*core.Communicator, error) {
	return core.NewCommunicatorOn(s.Cluster, hosts, cfg)
}

// NewTeam creates a point-to-point baseline team over the given hosts,
// sharing the system's per-host runtime.
func (s *System) NewTeam(hosts []topology.NodeID, cfg coll.Config) (*coll.Team, error) {
	return coll.NewTeam(s.Cluster, hosts, cfg)
}

// Run drives the simulation until no events remain and returns the final
// virtual time.
func (s *System) Run() sim.Time { return s.Engine.Run() }
