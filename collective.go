// Package repro is the public face of the reproduction of "Network-
// Offloaded Bandwidth-Optimal Broadcast and Allgather for Distributed AI"
// (Khalilov et al., SC 2024): a deterministic simulation of RDMA fat-tree
// fabrics with hardware multicast, the paper's reliable multicast Broadcast
// and bandwidth-optimal Allgather protocols, a DPA SmartNIC offload model,
// and the point-to-point baselines they are evaluated against.
//
// Every collective — the multicast protocol and the P2P baselines alike —
// is reached through one unified surface: an Op describes the operation, an
// Algorithm executes it, and every algorithm produces the same Result type.
// Algorithms() lists the registry ("mcast-allgather", "ring-allgather",
// "knomial-broadcast", the composed "ring-allreduce"/"mcast-allreduce", …)
// and NewAlgorithm instantiates one entry over a System:
//
//	sys, _ := repro.NewSystem(repro.SystemConfig{Hosts: 16})
//	alg, _ := repro.NewAlgorithm(sys, "mcast-allgather", repro.AlgorithmOptions{})
//	res, _ := alg.Run(repro.Op{Kind: repro.Allgather, Bytes: 1 << 20})
//	fmt.Println(res.AlgBandwidth())
//
// Instances persist transport state (queue pairs, registered buffers)
// across Run calls, so repeated operations measure a warm communicator.
// Algorithms that implement Starter also run non-blocking for workloads
// that overlap collectives with compute (the FSDP example). The lower-level
// System.NewCommunicator / System.NewTeam constructors remain for direct
// protocol access.
//
// The heavy lifting lives in the internal packages: sim (event engine),
// topology, fabric, verbs, dpa, core (the paper's contribution), coll
// (baselines), collective (shared Op/Result types), registry (the
// algorithm table), model (analytic cost models), sweep (the declarative
// parameter-grid engine behind every benchmark surface, re-exported here as
// SweepGrid/RunSweep), scenario (deterministic fault/straggler/multi-tenant
// perturbations, re-exported as Scenarios/NewScenario) and harness
// (per-figure experiment drivers).
package repro

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/registry"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Workload is a declarative, deterministic DAG of steps — compute phases on
// the cluster's host-CPU model, collective phases on per-job communicators
// ("comms", serial streams of registry algorithms) — executed by any number
// of concurrent jobs on one fabric. It is the subsystem behind the FSDP
// training step of §II-A: prefetched Allgathers and trailing
// Reduce-Scatters overlapping with compute and with each other.
type Workload = workload.Workload

// WorkloadJob, WorkloadComm and WorkloadPhase are the declaration
// vocabulary for hand-built DAGs (the presets cover the common shapes);
// WorkloadSpan is one recorded phase execution (see Workload.OnSpan for
// per-completion observation).
type (
	WorkloadJob   = workload.Job
	WorkloadComm  = workload.Comm
	WorkloadPhase = workload.Phase
	WorkloadSpan  = workload.Span
)

// WorkloadConfig parameterizes a preset workload (nodes, layers, shard
// size, compute per layer, tenant count, replication segments).
type WorkloadConfig = workload.Config

// WorkloadReport is the outcome of a workload run: per-job step time,
// per-phase spans, and the achieved communication/computation overlap.
// WorkloadJobReport is one job's view.
type (
	WorkloadReport    = workload.Report
	WorkloadJobReport = workload.JobReport
)

// Workloads returns the names of every preset workload, sorted
// ("dfs-replica", "fsdp-inc", "fsdp-ring", "fsdp-tenants").
func Workloads() []string { return workload.Names() }

// NewWorkload builds the named preset workload for the configuration.
func NewWorkload(name string, cfg WorkloadConfig) (Workload, error) { return workload.New(name, cfg) }

// RunWorkload executes the workload's jobs concurrently on the system's
// fabric, driving the engine until every phase completes, and returns the
// finalized report.
func (s *System) RunWorkload(w Workload) (*WorkloadReport, error) {
	return workload.Run(s.Cluster, w)
}

// Scenario is a named, deterministic perturbation/workload schedule: link
// degradations and flaps, drop hotspots, straggler hosts, incast bursts
// and multi-tenant background flows, armed on a System's fabric. The
// "quiet" scenario is the identity.
type Scenario = scenario.Scenario

// ActiveScenario is the handle to an installed scenario: Stop it when the
// measured workload completes so the engine drains; Stats reports the
// perturbation and background-traffic counters.
type ActiveScenario = scenario.Active

// ScenarioStats summarizes what an installed scenario did to the fabric.
type ScenarioStats = scenario.Stats

// Scenarios returns the names of every registered scenario preset, sorted
// ("quiet", "flap-spine", "straggler-1pct", "tenant-50load", ...).
func Scenarios() []string { return scenario.Names() }

// NewScenario instantiates a registered scenario preset by name. The empty
// name is an alias for "quiet".
func NewScenario(name string) (Scenario, error) { return scenario.New(name) }

// ApplyScenario arms the scenario on the system's fabric at the current
// virtual time. Injector randomness derives from seed alone (splitmix64
// streams), never from the system's RNG, so applying "quiet" is
// observationally identical to not applying anything.
func (s *System) ApplyScenario(sc Scenario, seed uint64) *ActiveScenario {
	return sc.Install(s.Fabric, seed)
}

// SweepGrid declares a parameter sweep: the cartesian product of every
// non-empty axis (algorithms × nodes × message sizes × transports ×
// threads × chunk sizes), expanded in deterministic row-major order with a
// decorrelated per-point seed derived from the grid index.
type SweepGrid = sweep.Grid

// SweepSpec is one fully-resolved point of a sweep.
type SweepSpec = sweep.Spec

// SweepRecord is the structured result of one sweep point: the spec, the
// driver's scalar metrics, and — for collective runs — the unified Result
// with its per-rank extension.
type SweepRecord = sweep.Record

// SweepReport is a named list of records: the JSON document the cmd
// binaries write with -json and CI uploads as BENCH_*.json.
type SweepReport = sweep.Report

// RunSweep expands the grid and executes fn over every point on a worker
// pool (workers <= 0 selects GOMAXPROCS), returning the records in grid
// order. The output — bytes included, once serialized — is independent of
// the worker count: kernels receive deterministic per-point seeds and
// records are collected by grid index.
func RunSweep(g SweepGrid, workers int, fn func(SweepSpec) (SweepRecord, error)) ([]SweepRecord, error) {
	return sweep.RunGrid(g, workers, fn)
}

// WriteSweepJSON serializes a report deterministically (same grid, same
// bytes — at any worker count).
func WriteSweepJSON(w io.Writer, rep SweepReport) error { return sweep.WriteJSON(w, rep) }

// LoadSweep reads a report previously written by WriteSweepJSON or a
// binary's -json flag.
func LoadSweep(path string) (SweepReport, error) { return sweep.LoadFile(path) }

// CompareSweeps diffs two reports point by point and returns every metric
// whose relative change exceeds tol — the baseline check behind the
// BENCH_*.json perf trajectory.
func CompareSweeps(base, cur SweepReport, tol float64) []sweep.Delta {
	return sweep.Compare(base, cur, tol)
}

// Op describes one collective operation: see collective.Op.
type Op = collective.Op

// Kind names a collective operation.
type Kind = collective.Kind

// The operations the registry's algorithms implement.
const (
	Allgather     = collective.Allgather
	Broadcast     = collective.Broadcast
	ReduceScatter = collective.ReduceScatter
	Allreduce     = collective.Allreduce
)

// Result is the unified outcome of one collective across all ranks,
// shared by the multicast protocol and every baseline.
type Result = collective.Result

// RankStats is the optional per-rank critical-path extension of a Result
// (the Figure-10 breakdown, produced by the mcast-* algorithms).
type RankStats = collective.RankStats

// Algorithm is one executable collective algorithm bound to a system.
type Algorithm = collective.Algorithm

// Starter is implemented by algorithms that also run non-blocking.
type Starter = collective.Starter

// Verifier is implemented by algorithms that can check payload integrity
// of their most recent operation (requires VerifyData in the options).
type Verifier = registry.Verifier

// AlgorithmOptions parameterizes NewAlgorithm: the rank subset and the
// per-stack tuning knobs.
type AlgorithmOptions = registry.Options

// Algorithms returns the names of every registered collective algorithm,
// sorted: multicast broadcast/allgather, the P2P allgather and broadcast
// baselines, ring and in-network reduce-scatter, and the composed
// allreduces.
func Algorithms() []string { return registry.Names() }

// NewAlgorithm instantiates a registered algorithm on the system's shared
// per-host runtime. opts.Hosts nil means every host.
//
// When the algorithm is partition-safe and the system's fabric is still
// pristine (no scenario applied, no NICs attached, no telemetry sinks
// wired into the options), the fabric is switched to partitioned execution
// first: per-shard channel ownership with keyed (time, order) event
// tie-breaks, making `Shards` a pure execution knob — byte-identical
// results, true multi-core scaling. A fabric that was already touched, or an
// algorithm that is not partition-safe, runs confined exactly as before.
func NewAlgorithm(sys *System, name string, opts AlgorithmOptions) (Algorithm, error) {
	if registry.PartitionSafe(name) &&
		opts.Core.Metrics == nil && opts.Core.Tracer == nil && opts.Coll.Metrics == nil {
		sys.Fabric.EnablePartition()
	}
	return registry.New(sys.Cluster, name, opts)
}

// SystemConfig shapes a simulated cluster.
type SystemConfig struct {
	// Hosts is the number of compute endpoints. Zero defaults to 16.
	Hosts int
	// Topology selects the network shape: "fattree2" (default), "fattree3",
	// "testbed188" (the paper's 18-switch UCC testbed; forces Hosts=188),
	// or "star".
	Topology string
	// FatTree parameters for "fattree2" (defaults: 16 hosts/leaf, enough
	// spines for 2:1 oversubscription) and "fattree3" (radix).
	HostsPerLeaf int
	Spines       int
	Radix        int
	// Fabric tunes link bandwidth, latency, MTU, drops.
	Fabric fabric.Config
	// Cluster tunes per-host CPU and transport parameters.
	Cluster cluster.Config
	// Seed fixes the simulation's random stream (default 1).
	Seed uint64
	// Shards selects conservative-parallel engine execution (sim.Sharded).
	// 0 or 1 is the plain serial engine; any value yields byte-identical
	// results — it is purely an execution knob.
	Shards int
}

// System bundles one simulation: engine, topology, fabric and the shared
// per-host runtime.
type System struct {
	Engine  *sim.Engine
	Graph   *topology.Graph
	Fabric  *fabric.Fabric
	Cluster *cluster.Cluster
}

// NewSystem builds a simulated cluster.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Hosts == 0 {
		cfg.Hosts = 16
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	var g *topology.Graph
	var err error
	switch cfg.Topology {
	case "", "fattree2":
		hpl := cfg.HostsPerLeaf
		if hpl == 0 {
			hpl = 16
		}
		spines := cfg.Spines
		if spines == 0 {
			spines = (hpl + 1) / 2
		}
		g, err = topology.TwoLevelFatTree(topology.FatTreeSpec{
			Hosts: cfg.Hosts, HostsPerLeaf: hpl, Spines: spines,
		})
	case "fattree3":
		radix := cfg.Radix
		if radix == 0 {
			radix = 8
		}
		g, err = topology.ThreeLevelFatTree(radix, cfg.Hosts)
	case "testbed188":
		g = topology.Testbed188()
	case "star":
		g = topology.Star(cfg.Hosts)
	default:
		return nil, fmt.Errorf("repro: unknown topology %q", cfg.Topology)
	}
	if err != nil {
		return nil, err
	}
	var eng *sim.Engine
	if cfg.Shards > 1 {
		_, eng = fabric.NewShardedEngine(cfg.Seed, g, cfg.Fabric, cfg.Shards)
	} else {
		eng = sim.NewEngine(cfg.Seed)
	}
	f := fabric.New(eng, g, cfg.Fabric)
	return &System{
		Engine:  eng,
		Graph:   g,
		Fabric:  f,
		Cluster: cluster.New(f, cfg.Cluster),
	}, nil
}

// Hosts returns all endpoint node IDs.
func (s *System) Hosts() []topology.NodeID { return s.Graph.Hosts() }

// NewCommunicator creates a multicast-collective communicator over the
// given hosts, sharing the system's per-host runtime.
func (s *System) NewCommunicator(hosts []topology.NodeID, cfg core.Config) (*core.Communicator, error) {
	return core.NewCommunicatorOn(s.Cluster, hosts, cfg)
}

// NewTeam creates a point-to-point baseline team over the given hosts,
// sharing the system's per-host runtime.
func (s *System) NewTeam(hosts []topology.NodeID, cfg coll.Config) (*coll.Team, error) {
	return coll.NewTeam(s.Cluster, hosts, cfg)
}

// Run drives the simulation until no events remain and returns the final
// virtual time.
func (s *System) Run() sim.Time { return s.Engine.Run() }
