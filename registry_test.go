package repro

// Tests for the unified collective surface: every registry entry runs a
// small operation end to end on a 16-host system and produces a sane
// unified Result, and the registry dispatch reproduces the exact virtual
// times the pre-registry code paths produced for a fixed seed.

import (
	"testing"

	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/verbs"
)

// newTestSystem builds the 16-host two-level fat-tree all registry tests
// share (same geometry as the ablation benchmarks).
func newTestSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(SystemConfig{Hosts: 16, HostsPerLeaf: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// supportedOp finds the operation kind an algorithm executes.
func supportedOp(alg Algorithm, n int) (Op, bool) {
	for _, k := range []Kind{Allgather, Broadcast, ReduceScatter, Allreduce} {
		op := Op{Kind: k, Bytes: n}
		if alg.Supports(op) {
			return op, true
		}
	}
	return Op{}, false
}

// TestRegistryAllAlgorithms runs every registered algorithm on a fresh
// 16-host system: each must support exactly the operations it claims and
// produce a Result with positive bandwidth.
func TestRegistryAllAlgorithms(t *testing.T) {
	names := Algorithms()
	if len(names) < 8 {
		t.Fatalf("registry lists %d algorithms, want >= 8: %v", len(names), names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			sys := newTestSystem(t)
			alg, err := NewAlgorithm(sys, name, AlgorithmOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if alg.Name() != name {
				t.Fatalf("Name() = %q, want %q", alg.Name(), name)
			}
			op, ok := supportedOp(alg, 64<<10)
			if !ok {
				t.Fatalf("%s supports no operation on 16 ranks", name)
			}
			res, err := alg.Run(op)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ranks != 16 {
				t.Fatalf("Ranks = %d, want 16", res.Ranks)
			}
			if res.Duration() <= 0 {
				t.Fatalf("Duration = %v, want > 0", res.Duration())
			}
			if bw := res.AlgBandwidth(); bw <= 0 {
				t.Fatalf("AlgBandwidth = %f, want > 0", bw)
			}
			// A second run on the same warm instance must also complete.
			if _, err := alg.Run(op); err != nil {
				t.Fatalf("second run: %v", err)
			}
		})
	}
}

// TestRegistryDeterminism pins the registry dispatch to the exact virtual
// times the direct core.Communicator / coll.Team call paths produce for a
// fixed seed: one multicast and one ring case, 16 hosts, seed 3, 1 MiB.
// The ring value is bit-identical to the seed commit. The multicast value
// is pinned to the deterministic control-plane ordering (sorted ctrlPeers):
// the seed commit created control QPs in Go map-iteration order, so its
// mcast timings wandered a few hundred ns between runs of the same binary;
// the pinned value is one of the orderings the seed could produce.
func TestRegistryDeterminism(t *testing.T) {
	const (
		goldenMcast = 722976 // ns, mcast-allgather, UD, 4 subgroups
		goldenRing  = 678008 // ns, ring-allgather
	)
	sys := newTestSystem(t)
	mcast, err := NewAlgorithm(sys, "mcast-allgather", AlgorithmOptions{
		Core: core.Config{Transport: verbs.UD, Subgroups: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mcast.Run(Op{Kind: Allgather, Bytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Duration()) != goldenMcast {
		t.Errorf("mcast-allgather duration = %d ns, want seed-identical %d ns", int64(res.Duration()), goldenMcast)
	}

	sys2 := newTestSystem(t)
	ring, err := NewAlgorithm(sys2, "ring-allgather", AlgorithmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := ring.Run(Op{Kind: Allgather, Bytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if int64(res2.Duration()) != goldenRing {
		t.Errorf("ring-allgather duration = %d ns, want seed-identical %d ns", int64(res2.Duration()), goldenRing)
	}
}

// TestRegistryVerifiedData checks end-to-end payload integrity through the
// unified surface for a multicast and a P2P algorithm.
func TestRegistryVerifiedData(t *testing.T) {
	cases := []struct {
		name string
		op   Op
		opts AlgorithmOptions
	}{
		{"mcast-allgather", Op{Kind: Allgather, Bytes: 32 << 10},
			AlgorithmOptions{Core: core.Config{Transport: verbs.UD, VerifyData: true}}},
		{"knomial-broadcast", Op{Kind: Broadcast, Bytes: 32 << 10},
			AlgorithmOptions{Coll: coll.Config{VerifyData: true}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sys := newTestSystem(t)
			alg, err := NewAlgorithm(sys, c.name, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := alg.Run(c.op); err != nil {
				t.Fatal(err)
			}
			v, ok := alg.(Verifier)
			if !ok {
				t.Fatalf("%s does not implement Verifier", c.name)
			}
			if err := v.VerifyLast(c.op); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRegistryAllreduceComposition checks the composed Allreduce spans
// both phases: it must take longer than its reduce-scatter half alone and
// move twice the shard volume per rank.
func TestRegistryAllreduceComposition(t *testing.T) {
	const n = 256 << 10
	sys := newTestSystem(t)
	ar, err := NewAlgorithm(sys, "ring-allreduce", AlgorithmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	arRes, err := ar.Run(Op{Kind: Allreduce, Bytes: n})
	if err != nil {
		t.Fatal(err)
	}
	sys2 := newTestSystem(t)
	rs, err := NewAlgorithm(sys2, "ring-reduce-scatter", AlgorithmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rsRes, err := rs.Run(Op{Kind: ReduceScatter, Bytes: n / 16})
	if err != nil {
		t.Fatal(err)
	}
	if arRes.Duration() <= rsRes.Duration() {
		t.Fatalf("allreduce (%v) not longer than its reduce-scatter half (%v)", arRes.Duration(), rsRes.Duration())
	}
	if want := 2 * 15 * (n / 16); arRes.RecvBytes != want {
		t.Fatalf("allreduce RecvBytes = %d, want %d", arRes.RecvBytes, want)
	}
}

// TestRegistryRejects covers the error paths: unknown names and
// unsupported operations.
func TestRegistryRejects(t *testing.T) {
	sys := newTestSystem(t)
	if _, err := NewAlgorithm(sys, "quantum-allgather", AlgorithmOptions{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	alg, err := NewAlgorithm(sys, "ring-allgather", AlgorithmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if alg.Supports(Op{Kind: Broadcast, Bytes: 4096}) {
		t.Fatal("ring-allgather claims to support broadcast")
	}
	if _, err := alg.Run(Op{Kind: Broadcast, Bytes: 4096, Root: 0}); err == nil {
		t.Fatal("ring-allgather ran a broadcast")
	}

	// Recursive doubling needs a power-of-two team.
	sys12, err := NewSystem(SystemConfig{Hosts: 12, HostsPerLeaf: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewAlgorithm(sys12, "rd-allgather", AlgorithmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rd.Supports(Op{Kind: Allgather, Bytes: 4096}) {
		t.Fatal("rd-allgather claims to support 12 ranks")
	}
}
