package repro

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// doorbell batch size, the degree of packet parallelism (subgroups),
// multicast parallelism (chains), staging (UD) vs zero-copy (UC) fast
// paths, slow-path cost under increasing fabric loss, and dedicated vs
// arbitrated receive workers. Each reports the effect through
// b.ReportMetric so `go test -bench=Ablation` prints the whole study.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// runAG builds a fresh 16-rank system and times one Allgather.
func runAG(b *testing.B, fcfg fabric.Config, ccfg core.Config, n int) (*core.Result, *System) {
	b.Helper()
	sys, err := NewSystem(SystemConfig{Hosts: 16, HostsPerLeaf: 4, Fabric: fcfg, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	comm, err := sys.NewCommunicator(sys.Hosts(), ccfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := comm.RunAllgather(n)
	if err != nil {
		b.Fatal(err)
	}
	return res, sys
}

// BenchmarkAblationSendBatch sweeps the doorbell batch size (§V-A): tiny
// batches stall the send path on completion round trips.
func BenchmarkAblationSendBatch(b *testing.B) {
	for _, batch := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				res, _ := runAG(b, fabric.Config{},
					core.Config{Transport: verbs.UD, SendBatch: batch}, 1<<20)
				bw = res.AlgBandwidth() / (1 << 30)
			}
			b.ReportMetric(bw, "GiB/s")
		})
	}
}

// BenchmarkAblationSubgroups sweeps packet parallelism (§IV-C): one
// CPU receive worker cannot drain the link; more trees add workers.
func BenchmarkAblationSubgroups(b *testing.B) {
	for _, s := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("subgroups=%d", s), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				res, _ := runAG(b, fabric.Config{},
					core.Config{Transport: verbs.UD, Subgroups: s}, 1<<20)
				bw = res.AlgBandwidth() / (1 << 30)
			}
			b.ReportMetric(bw, "GiB/s")
		})
	}
}

// BenchmarkAblationChains sweeps multicast parallelism (Appendix A):
// more concurrent roots shorten the schedule until the receive path
// saturates.
func BenchmarkAblationChains(b *testing.B) {
	for _, m := range []int{1, 2, 4, 16} {
		b.Run(fmt.Sprintf("chains=%d", m), func(b *testing.B) {
			var dur sim.Time
			for i := 0; i < b.N; i++ {
				res, _ := runAG(b, fabric.Config{},
					core.Config{Transport: verbs.UD, Chains: m, Subgroups: 4}, 1<<20)
				dur = res.Duration()
			}
			b.ReportMetric(dur.Micros(), "µs-op")
		})
	}
}

// BenchmarkAblationTransport compares the UD staging fast path against the
// UC zero-copy extension at equal chunk sizes and with UC multi-packet
// chunks (§V-B).
func BenchmarkAblationTransport(b *testing.B) {
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"UD-4KiB-staging", core.Config{Transport: verbs.UD, Subgroups: 4}},
		{"UC-4KiB-zerocopy", core.Config{Transport: verbs.UC, Subgroups: 4}},
		{"UC-64KiB-multipacket", core.Config{Transport: verbs.UC, Subgroups: 4, ChunkBytes: 64 << 10}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				res, _ := runAG(b, fabric.Config{}, c.cfg, 1<<20)
				bw = res.AlgBandwidth() / (1 << 30)
			}
			b.ReportMetric(bw, "GiB/s")
		})
	}
}

// BenchmarkAblationLossRate quantifies the slow-path cost as fabric loss
// grows from lossless to broken.
func BenchmarkAblationLossRate(b *testing.B) {
	for _, drop := range []float64{0, 1e-4, 1e-3, 1e-2} {
		b.Run(fmt.Sprintf("drop=%g", drop), func(b *testing.B) {
			var dur sim.Time
			var recovered int
			for i := 0; i < b.N; i++ {
				res, _ := runAG(b, fabric.Config{DropRate: drop},
					core.Config{Transport: verbs.UD, CutoffAlpha: 100 * sim.Microsecond}, 1<<20)
				dur = res.Duration()
				recovered = res.MaxRecovered()
			}
			b.ReportMetric(dur.Micros(), "µs-op")
			b.ReportMetric(float64(recovered), "chunks-recovered")
		})
	}
}

// BenchmarkAblationArbitration compares dedicated receive workers against
// the §V-C shared arbiters when two communicators run concurrently.
func BenchmarkAblationArbitration(b *testing.B) {
	run := func(arbitrated bool) sim.Time {
		sys, err := NewSystem(SystemConfig{Hosts: 8, Topology: "star", Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.Config{Transport: verbs.UD, Subgroups: 2, ArbitratedRx: arbitrated}
		c1, err := sys.NewCommunicator(sys.Hosts(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		c2, err := sys.NewCommunicator(sys.Hosts(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := c1.StartAllgather(1<<20, nil); err != nil {
			b.Fatal(err)
		}
		if err := c2.StartAllgather(1<<20, nil); err != nil {
			b.Fatal(err)
		}
		return sys.Run()
	}
	for _, arb := range []bool{false, true} {
		name := "dedicated"
		if arb {
			name = "arbitrated"
		}
		b.Run(name, func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				t = run(arb)
			}
			b.ReportMetric(t.Micros(), "µs-pair")
		})
	}
}

// BenchmarkAblationBaselines times every Allgather algorithm on the same
// 16-rank system through the unified registry: the library-selection view
// of Figure 11.
func BenchmarkAblationBaselines(b *testing.B) {
	// The multicast protocol gets the paper's 4 parallel trees; the P2P
	// baselines run with library defaults.
	opts := map[string]AlgorithmOptions{
		"mcast-allgather": {Core: core.Config{Transport: verbs.UD, Subgroups: 4}},
	}
	for _, name := range []string{"mcast-allgather", "ring-allgather", "linear-allgather", "rd-allgather", "bruck-allgather"} {
		b.Run(name, func(b *testing.B) {
			var dur sim.Time
			for i := 0; i < b.N; i++ {
				sys, err := NewSystem(SystemConfig{Hosts: 16, HostsPerLeaf: 4, Seed: 3})
				if err != nil {
					b.Fatal(err)
				}
				alg, err := NewAlgorithm(sys, name, opts[name])
				if err != nil {
					b.Fatal(err)
				}
				res, err := alg.Run(Op{Kind: Allgather, Bytes: 1 << 20})
				if err != nil {
					b.Fatal(err)
				}
				dur = res.Duration()
			}
			b.ReportMetric(dur.Micros(), "µs-op")
		})
	}
}

// BenchmarkParallelSimulations demonstrates that independent simulations
// scale across OS threads: the engine is single-threaded per instance, so
// throughput studies parallelize by running one simulation per goroutine.
func BenchmarkParallelSimulations(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	b.SetParallelism(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		seeds := make(chan uint64, workers)
		for s := 0; s < workers; s++ {
			seeds <- uint64(s + 1)
		}
		close(seeds)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for seed := range seeds {
					sys, err := NewSystem(SystemConfig{Hosts: 8, Topology: "star", Seed: seed})
					if err != nil {
						b.Error(err)
						return
					}
					comm, err := sys.NewCommunicator(sys.Hosts(), core.Config{Transport: verbs.UD})
					if err != nil {
						b.Error(err)
						return
					}
					if _, err := comm.RunAllgather(256 << 10); err != nil {
						b.Error(err)
					}
				}
			}()
		}
		wg.Wait()
	}
	b.ReportMetric(float64(workers), "sims/iter")
}
