// Command agbench regenerates the at-scale collective experiments on the
// 188-node UCC-testbed model: Figure 10 (protocol critical-path breakdown,
// median phase fractions across ranks) and Figure 11 (Broadcast/Allgather
// throughput against P2P baselines). Each figure is a declarative grid
// executed on the sweep engine's worker pool.
//
// Usage:
//
//	agbench -fig 10 [-nodes 4,16,64,188] [-sizes 4096,65536,1048576]
//	agbench -fig 11 [-nodes 188] [-sizes ...] [-json fig11.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/harness"
	"repro/internal/sweep"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (10 or 11)")
	nodesFlag := flag.String("nodes", "", "comma-separated node counts (fig 10) or single count (fig 11)")
	sizesFlag := flag.String("sizes", "", "comma-separated message sizes in bytes")
	jsonPath := flag.String("json", "", "write sweep records as JSON to this path")
	csvPath := flag.String("csv", "", "write sweep records as CSV to this path")
	flag.Parse()
	defer cli.StartCPUProfile()()
	harness.SetShards(cli.Shards())

	var recs []sweep.Record
	var err error
	switch *fig {
	case 10:
		nodes := parseInts(*nodesFlag, []int{4, 16, 64, 188})
		sizes := parseInts(*sizesFlag, []int{4096, 65536, 1 << 20})
		fmt.Println("== Figure 10: Allgather critical-path breakdown (median across ranks) ==")
		recs, err = harness.Fig10Records(nodes, sizes)
	case 11:
		nodes := parseInts(*nodesFlag, []int{188})
		sizes := parseInts(*sizesFlag, []int{16 << 10, 64 << 10, 256 << 10, 1 << 20})
		fmt.Printf("== Figure 11: per-rank receive throughput at %d nodes (56 Gbit/s links) ==\n", nodes[0])
		recs, err = harness.Fig11Records(nodes[0], sizes)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		cli.Fatalf(1, "agbench: %v", err)
	}
	if err := sweep.WriteTable(os.Stdout, recs); err != nil {
		cli.Fatalf(1, "agbench: %v", err)
	}
	switch *fig {
	case 10:
		fmt.Println("paper: from 16 nodes on, 99% of progress-path time is the multicast datapath.")
	case 11:
		fmt.Println("paper: mcast broadcast beats k-nomial/binary tree; mcast allgather matches ring at 128-256 KiB.")
	}
	name := fmt.Sprintf("agbench-fig%d", *fig)
	if err := sweep.WriteFiles(sweep.Report{Name: name, Records: recs}, *jsonPath, *csvPath); err != nil {
		cli.Fatalf(1, "agbench: %v", err)
	}
}

func parseInts(s string, def []int) []int {
	if s == "" {
		return def
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			cli.Fatalf(2, "agbench: bad integer %q", part)
		}
		out = append(out, v)
	}
	return out
}
