// Command agbench regenerates the at-scale collective experiments on the
// 188-node UCC-testbed model: Figure 10 (protocol critical-path breakdown)
// and Figure 11 (Broadcast/Allgather throughput against P2P baselines).
//
// Usage:
//
//	agbench -fig 10 [-nodes 4,16,64,188] [-sizes 4096,65536,1048576]
//	agbench -fig 11 [-nodes 188] [-sizes ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/harness"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (10 or 11)")
	nodesFlag := flag.String("nodes", "", "comma-separated node counts (fig 10) or single count (fig 11)")
	sizesFlag := flag.String("sizes", "", "comma-separated message sizes in bytes")
	flag.Parse()

	switch *fig {
	case 10:
		nodes := parseInts(*nodesFlag, []int{4, 16, 64, 188})
		sizes := parseInts(*sizesFlag, []int{4096, 65536, 1 << 20})
		fig10(nodes, sizes)
	case 11:
		nodes := parseInts(*nodesFlag, []int{188})
		sizes := parseInts(*sizesFlag, []int{16 << 10, 64 << 10, 256 << 10, 1 << 20})
		fig11(nodes[0], sizes)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseInts(s string, def []int) []int {
	if s == "" {
		return def
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "agbench: bad integer %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func fig10(nodes, sizes []int) {
	fmt.Println("== Figure 10: Allgather critical-path breakdown (median across ranks) ==")
	pts, err := harness.Fig10Breakdown(nodes, sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agbench:", err)
		os.Exit(1)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "nodes\tmessage\tRNR sync\tmulticast\tfinal sync\ttotal")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%s\t%.1f%%\t%.1f%%\t%.1f%%\t%v\n",
			p.Nodes, size(p.MsgBytes),
			p.BarrierFrac*100, p.McastFrac*100, p.FinalFrac*100, p.Total)
	}
	w.Flush()
	fmt.Println("paper: from 16 nodes on, 99% of progress-path time is the multicast datapath.")
}

func fig11(nodes int, sizes []int) {
	fmt.Printf("== Figure 11: per-rank receive throughput at %d nodes (56 Gbit/s links) ==\n", nodes)
	pts, err := harness.Fig11Throughput(nodes, sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agbench:", err)
		os.Exit(1)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "operation\talgorithm\tmessage\tGiB/s")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%s\t%s\t%.3f\n", p.Op, p.Algo, size(p.MsgBytes), p.GiBps)
	}
	w.Flush()
	fmt.Println("paper: mcast broadcast beats k-nomial/binary tree; mcast allgather matches ring at 128-256 KiB.")
}

func size(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
