// Deprecated: agbench is now a thin shim over `repro ag`. The flag
// surface is unchanged; prefer the repro binary (and its declarative
// manifests under manifests/) for new work.
package main

import (
	"fmt"
	"os"

	"repro/internal/command"
)

func main() {
	fmt.Fprintln(os.Stderr, "# agbench is deprecated; use: repro ag (or repro run <manifest>)")
	os.Exit(command.Run(append([]string{"ag"}, os.Args[1:]...), os.Stdout, os.Stderr))
}
