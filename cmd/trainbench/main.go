// Command trainbench measures application-level training workloads: it
// expands a workload × shard-size × scenario grid on the sweep engine's
// worker pool, executes every point's declarative DAG (internal/workload —
// FSDP steps with prefetched Allgathers and trailing Reduce-Scatters,
// multi-tenant trainers, the DFS replication stream) on a full-bandwidth
// star fabric, and reports step time, communication busy/exposed time, and
// the achieved communication/computation overlap.
//
// Usage:
//
//	trainbench [-workloads fsdp-ring,fsdp-inc] [-nodes 16] [-shard 524288]
//	           [-layers 6] [-compute 150] [-jobs 2] [-scenarios flap-spine]
//	           [-seed 21] [-workers 0] [-json train.json] [-csv train.csv]
//	           [-compare base.json -tol 0.05] [-trace timeline.txt]
//
// -workloads takes a comma list of preset names or "all". -scenarios composes
// a chaos preset onto the live training step ("quiet" is kept in the list
// automatically so slowdown_vs_quiet has its anchor); without the flag the
// points run on the quiet fabric. -trace re-runs the first point with a
// protocol tracer attached and writes the Figure-9 phase timeline. Like
// every binary in this repository the output is deterministic: the same
// flags produce byte-identical -json files at any -workers count.
//
// Invalid parameters exit with status 2; simulation failures (and -compare
// regressions) with 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"

	"repro/internal/cli"
	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func main() {
	workloadsFlag := flag.String("workloads", "fsdp-ring,fsdp-inc",
		"comma list of workload presets to run, or \"all\"")
	nodes := flag.Int("nodes", 16, "hosts per job (>= 2)")
	shard := flag.Int("shard", 512<<10, "per-rank shard/segment bytes (> 0)")
	layers := flag.Int("layers", 6, "FSDP model depth (> 0)")
	computeUS := flag.Int("compute", 150, "forward+backward compute per layer in microseconds (>= 0)")
	jobs := flag.Int("jobs", 2, "tenant count of multi-job presets (> 0)")
	scenariosFlag := flag.String("scenarios", "",
		"comma list of scenario presets to compose onto the step, or \"all\" (empty: quiet fabric)")
	seed := flag.Uint64("seed", 21, "base sweep seed (per-point seeds derive from it)")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write sweep records as JSON to this path")
	csvPath := flag.String("csv", "", "write sweep records as CSV to this path")
	comparePath := flag.String("compare", "", "baseline BENCH_*.json to diff the records against")
	tol := flag.Float64("tol", 0.05, "relative tolerance for -compare")
	cli.RegisterTrace()
	flag.Parse()
	defer cli.StartCPUProfile()()
	harness.SetShards(cli.Shards())

	if *nodes < 2 {
		cli.Fatalf(2, "trainbench: nodes must be >= 2, got %d", *nodes)
	}
	if *shard <= 0 || *layers <= 0 || *computeUS < 0 || *jobs <= 0 {
		cli.Fatalf(2, "trainbench: shard/layers/jobs must be positive and compute >= 0")
	}
	var workloads []string
	if *workloadsFlag == "all" {
		workloads = workload.Names()
	} else {
		workloads = cli.SplitList(*workloadsFlag)
		for _, w := range workloads {
			if !slices.Contains(workload.Names(), w) {
				cli.Fatalf(2, "trainbench: unknown workload %q (have %v)", w, workload.Names())
			}
		}
	}
	if len(workloads) == 0 {
		cli.Fatalf(2, "trainbench: no workloads given")
	}
	var scenarios []string
	switch *scenariosFlag {
	case "":
		// Quiet fabric, no scenario axis: grids without the axis stay as
		// they were before scenarios existed.
	case "all":
		scenarios = scenario.Names()
	default:
		scenarios = cli.SplitList(*scenariosFlag)
		for _, s := range scenarios {
			if _, err := scenario.New(s); err != nil {
				cli.Fatalf(2, "trainbench: %v", err)
			}
		}
	}
	if len(scenarios) > 0 && !slices.Contains(scenarios, scenario.Quiet) {
		// slowdown_vs_quiet needs its anchor point.
		scenarios = append([]string{scenario.Quiet}, scenarios...)
	}

	cfg := harness.TrainConfig{
		Layers:  *layers,
		Compute: sim.Time(*computeUS) * sim.Microsecond,
		Jobs:    *jobs,
	}
	grid := harness.TrainGrid(workloads, []int{*nodes}, []int{*shard}, scenarios, *seed)
	fmt.Printf("== trainbench: %d workloads x %d scenarios, %d nodes, %d KiB shards, %d layers ==\n",
		len(workloads), max(1, len(scenarios)), *nodes, *shard>>10, *layers)
	recs, err := harness.TrainRecords(grid, *workers, cfg)
	if err != nil {
		cli.Fatalf(1, "trainbench: %v", err)
	}
	if err := sweep.WriteTable(os.Stdout, recs); err != nil {
		cli.Fatalf(1, "trainbench: %v", err)
	}
	fmt.Println("overlap_frac is the share of communication hidden behind compute or other communication.")
	rep := sweep.Report{Name: "trainbench", Records: recs}
	if err := sweep.WriteFiles(rep, *jsonPath, *csvPath); err != nil {
		cli.Fatalf(1, "trainbench: %v", err)
	}

	if cli.TracePath() != "" {
		// Re-run the first point with a protocol tracer attached; the
		// traced run is independent of the sweep records above.
		timeline, err := harness.TrainTrace(grid.Expand()[0], cfg)
		if err != nil {
			cli.Fatalf(1, "trainbench: trace: %v", err)
		}
		cli.WriteTrace(timeline)
	}

	if *comparePath != "" {
		base, err := sweep.LoadFile(*comparePath)
		if err != nil {
			cli.Fatalf(1, "trainbench: %v", err)
		}
		deltas := sweep.Compare(base, rep, *tol)
		fmt.Printf("# vs %s (tol %.0f%%):\n", *comparePath, *tol*100)
		sweep.WriteDeltas(os.Stdout, deltas)
		if len(deltas) > 0 {
			os.Exit(1)
		}
	}
}
