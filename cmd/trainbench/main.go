// Deprecated: trainbench is now a thin shim over `repro train`. The flag
// surface is unchanged; prefer the repro binary (and its declarative
// manifests under manifests/) for new work.
package main

import (
	"fmt"
	"os"

	"repro/internal/command"
)

func main() {
	fmt.Fprintln(os.Stderr, "# trainbench is deprecated; use: repro train (or repro run <manifest>)")
	os.Exit(command.Run(append([]string{"train"}, os.Args[1:]...), os.Stdout, os.Stderr))
}
