// Command osu is an OSU-microbenchmark-style driver for the simulated
// collectives, mirroring the measurement methodology of the paper's
// evaluation (§VI-A): warm-up iterations excluded, per-rank timings over
// many iterations, medians with nonparametric confidence intervals
// (Hoefler–Belli guidelines).
//
// Every algorithm is dispatched through the unified registry: the -op and
// -algo flags join into a registry name (e.g. -op allgather -algo mcast
// runs "mcast-allgather").
//
// Usage:
//
//	osu -op allgather -algo mcast -nodes 32 -sizes 4096:1048576 -iters 20
//	osu -op broadcast -algo knomial -nodes 188
//	osu -op allreduce -algo ring -nodes 64
//
// Operations and algorithms: allgather (mcast, ring, linear, rd, bruck),
// broadcast (mcast, knomial, binary, chain), reduce-scatter (ring, inc),
// allreduce (ring, mcast — the composed ring Reduce-Scatter + Allgather).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/fabric"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

func main() {
	opFlag := flag.String("op", "allgather", "collective: allgather, broadcast, reduce-scatter or allreduce")
	algo := flag.String("algo", "mcast", "algorithm family (joined with -op into a registry name, e.g. mcast-allgather)")
	nodes := flag.Int("nodes", 32, "participating nodes (<=188)")
	sizesFlag := flag.String("sizes", "4096:1048576", "size range min:max (doubling) or comma list")
	iters := flag.Int("iters", 10, "measured iterations per size")
	warmup := flag.Int("warmup", 2, "warm-up iterations per size (excluded)")
	linkGbps := flag.Float64("link", 56, "link bandwidth in Gbit/s (testbed: 56)")
	jitter := flag.Int("jitter", 0, "per-delivery network noise in microseconds (enables run-to-run variability)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "osu:", err)
		os.Exit(2)
	}
	if *nodes < 1 || *nodes > 188 {
		fmt.Fprintln(os.Stderr, "osu: nodes must be in [1,188]")
		os.Exit(2)
	}

	// The communicator persists across iterations and sizes (buffers
	// cached, QPs warm), as OSU benchmarks do.
	eng := sim.NewEngine(*seed)
	g := topology.Testbed188()
	f := fabric.New(eng, g, fabric.Config{
		LinkBandwidth: *linkGbps * 1e9 / 8,
		ReorderJitter: sim.Time(*jitter) * sim.Microsecond,
	})
	name := *algo + "-" + *opFlag
	alg, err := registry.New(cluster.New(f, cluster.Config{}), name, registry.Options{
		Hosts: g.Hosts()[:*nodes],
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "osu:", err)
		os.Exit(2)
	}

	fmt.Printf("# OSU-style %s / %s, %d nodes, %.0f Gbit/s links, %d iters (+%d warmup)\n",
		*opFlag, name, *nodes, *linkGbps, *iters, *warmup)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "size\tmedian µs\tCI95 low\tCI95 high\tmin µs\tmax µs\tGiB/s")
	for _, n := range sizes {
		op := collective.Op{Kind: collective.Kind(*opFlag), Bytes: n}
		if !alg.Supports(op) {
			fmt.Fprintf(os.Stderr, "osu: %s does not support %s of %d bytes on %d nodes\n", name, op.Kind, n, *nodes)
			os.Exit(2)
		}
		var lat []float64
		var recvPerRank float64
		for i := 0; i < *warmup+*iters; i++ {
			res, err := alg.Run(op)
			if err != nil {
				fmt.Fprintf(os.Stderr, "osu: size %d iter %d: %v\n", n, i, err)
				os.Exit(1)
			}
			if i >= *warmup {
				lat = append(lat, res.Duration().Micros())
				recvPerRank = res.RecvPerRank()
			}
		}
		s := stats.Summarize(lat)
		// Bandwidth numerator is the per-rank network receive payload, the
		// same semantic AlgBandwidth and Figure 11 use. For the multicast
		// broadcast this averages in the root's zero receive ((P-1)/P · n),
		// while the P2P broadcasts report a flat n per rank.
		bw := recvPerRank / (s.Median / 1e6) / (1 << 30)
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.3f\n",
			n, s.Median, s.CILow, s.CIHigh, s.Min, s.Max, bw)
	}
	w.Flush()
}

func parseSizes(s string) ([]int, error) {
	if strings.Contains(s, ":") {
		parts := strings.SplitN(s, ":", 2)
		lo, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, err
		}
		hi, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		if lo <= 0 || hi < lo {
			return nil, fmt.Errorf("bad size range %q", s)
		}
		var out []int
		for n := lo; n <= hi; n *= 2 {
			out = append(out, n)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
