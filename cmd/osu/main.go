// Deprecated: osu is now a thin shim over `repro osu`. The flag
// surface is unchanged; prefer the repro binary (and its declarative
// manifests under manifests/) for new work.
package main

import (
	"fmt"
	"os"

	"repro/internal/command"
)

func main() {
	fmt.Fprintln(os.Stderr, "# osu is deprecated; use: repro osu (or repro run <manifest>)")
	os.Exit(command.Run(append([]string{"osu"}, os.Args[1:]...), os.Stdout, os.Stderr))
}
